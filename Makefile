# Verification entry points. `make verify` is the tier-1 gate: vet,
# build, full test suite, then the race detector over the packages with
# concurrency (the probe scheduler, the thread-safe simulator, and the
# campaign that drives them in parallel).

GO ?= go

.PHONY: verify build test vet race bench-sched

verify: vet build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/netsim/... ./internal/probesched/... ./internal/comap/...

# Scheduler speedup: the quickstart campaign at 1 vs N workers.
bench-sched:
	$(GO) test ./internal/probesched/ -run XXX -bench BenchmarkParallelCampaign -benchtime 3x
