# Verification entry points. `make verify` is the tier-1 gate: gofmt,
# vet, build, full test suite, then the race detector over the packages
# with concurrency (the probe scheduler, the thread-safe simulator, and
# the campaign that drives them in parallel), the fault-plane gates
# (fast-path equivalence, zero-fault golden equivalence, and the
# graceful-degradation chaos sweep), and finally the allocation gate
# (bench-mem), which fails on a >10% bytes_per_op regression against
# the previous PR's benchmark archive.

GO ?= go

.PHONY: verify build test fmt vet race race-infer equivalence chaos bench bench-mem bench-sched bench-diff serve-bench profile

verify: fmt vet build test race race-infer equivalence chaos bench-mem serve-bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# gofmt as a gate: the target fails (and lists the offenders) when any
# tracked Go file needs reformatting.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/netsim/... ./internal/probesched/... ./internal/comap/... ./internal/snapshot/...

# Race-detect the parallel-inference paths specifically (short mode so
# the sharded mapping/graph/alias/figure tests run without the full
# multi-grid campaigns).
race-infer:
	$(GO) test -race -short -count=1 \
		-run 'MapFold|Reduce|Deterministic|GoldenDigest|NodeAddrsSorted' \
		./internal/probesched/ ./internal/comap/ ./internal/core/ ./internal/alias/ ./internal/mobilemap/ ./internal/dnsdb/

# Probe fast-path equivalence: the campaign digest must match the
# golden captured before the fast path (LPM FIB + compiled flows)
# landed, across a GOMAXPROCS x workers grid. The zero-fault-plan test
# extends the same guarantee to the fault layer: an installed-but-empty
# FaultPlan may not move a byte.
equivalence:
	$(GO) test ./internal/probesched/ -run 'TestFastPathMatchesGoldenDigest|TestZeroFaultPlanMatchesGoldenDigest' -count=1

# Graceful degradation: the faulted campaign must stay deterministic
# across worker counts, account for every probe, and the chaos sweep's
# CO recall must slide rather than cliff as the loss grid worsens.
chaos:
	$(GO) test ./internal/probesched/ -run TestFaultedCampaignDeterministicAcrossWorkers -count=1
	$(GO) run ./cmd/chaossweep -icmp-rate 2 -check

# Scheduler speedup: the quickstart campaign at 1 vs N workers.
bench-sched:
	$(GO) test ./internal/probesched/ -run XXX -bench BenchmarkParallelCampaign -benchtime 3x

# Campaign benchmarks, archived as JSON for before/after diffs (see
# EXPERIMENTS.md): the end-to-end campaign plus its collection and
# inference halves across the workers={1,2,4,8} grid, and the faulted
# campaign across the loss grid (benchjson archives the loss rate).
bench:
	( $(GO) test ./internal/netsim/ -run XXX -bench 'BenchmarkProbe' -benchmem ; \
	  $(GO) test ./internal/probesched/ -run XXX \
		-bench 'BenchmarkParallelCampaign|BenchmarkCampaignCollect|BenchmarkCampaignInfer|BenchmarkFaultedCampaign' \
		-benchmem -benchtime 3x ) \
		| $(GO) run ./cmd/benchjson > BENCH_PR5.json

# Allocation gate: rerun the campaign bench with -benchmem, archive the
# numbers, and fail if any benchmark's bytes_per_op regressed more than
# 10% against the previous PR's archive (benchjson -prev exits nonzero
# on regression). This is what keeps the memory-engine wins from
# quietly eroding. Writes its own archive (BENCH_MEM.json) so it never
# clobbers the full `make bench` archive.
bench-mem:
	$(GO) test ./internal/probesched/ -run XXX \
		-bench 'BenchmarkParallelCampaign' -benchmem -benchtime 3x \
		| $(GO) run ./cmd/benchjson -prev BENCH_PR4.json > BENCH_MEM.json

# Per-benchmark time/bytes/allocs comparison of the current archive
# over the previous PR's.
bench-diff:
	$(GO) run ./cmd/benchjson -diff BENCH_PR4.json BENCH_PR5.json

# Resident-service bench: the regiond load generator hammers the
# snapshot store from 10k concurrent clients while three background
# refreshes swap the artifact, and benchjson archives the per-op
# mean/p50/p99 latencies and throughput (the p50_ns/p99_ns/qps pairs
# land in each entry's extra-metrics map) as BENCH_PR6.json. The race
# half of the same guarantee — no torn snapshot is ever observable —
# runs under `make race` via internal/snapshot's swap test.
serve-bench:
	$(GO) run ./cmd/regiond -loadgen -clients 10000 -duration 2s -swaps 3 \
		| $(GO) run ./cmd/benchjson > BENCH_PR6.json

# CPU+heap profiles of a full campaign run, ready for `go tool pprof`.
profile:
	$(GO) run ./cmd/regionmap -cpuprofile cpu.out -memprofile mem.out > /dev/null
	@echo "wrote cpu.out and mem.out; inspect with: $(GO) tool pprof cpu.out"
