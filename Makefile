# Verification entry points. `make verify` is the tier-1 gate: vet,
# build, full test suite, then the race detector over the packages with
# concurrency (the probe scheduler, the thread-safe simulator, and the
# campaign that drives them in parallel), and finally the fault-plane
# gates: fast-path equivalence, zero-fault golden equivalence, and the
# graceful-degradation chaos sweep.

GO ?= go

.PHONY: verify build test vet race race-infer equivalence chaos bench bench-sched bench-diff

verify: vet build test race race-infer equivalence chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/netsim/... ./internal/probesched/... ./internal/comap/...

# Race-detect the parallel-inference paths specifically (short mode so
# the sharded mapping/graph/alias/figure tests run without the full
# multi-grid campaigns).
race-infer:
	$(GO) test -race -short -count=1 \
		-run 'MapFold|Reduce|Deterministic|GoldenDigest|NodeAddrsSorted' \
		./internal/probesched/ ./internal/comap/ ./internal/core/ ./internal/alias/ ./internal/mobilemap/ ./internal/dnsdb/

# Probe fast-path equivalence: the campaign digest must match the
# golden captured before the fast path (LPM FIB + compiled flows)
# landed, across a GOMAXPROCS x workers grid. The zero-fault-plan test
# extends the same guarantee to the fault layer: an installed-but-empty
# FaultPlan may not move a byte.
equivalence:
	$(GO) test ./internal/probesched/ -run 'TestFastPathMatchesGoldenDigest|TestZeroFaultPlanMatchesGoldenDigest' -count=1

# Graceful degradation: the faulted campaign must stay deterministic
# across worker counts, account for every probe, and the chaos sweep's
# CO recall must slide rather than cliff as the loss grid worsens.
chaos:
	$(GO) test ./internal/probesched/ -run TestFaultedCampaignDeterministicAcrossWorkers -count=1
	$(GO) run ./cmd/chaossweep -icmp-rate 2 -check

# Scheduler speedup: the quickstart campaign at 1 vs N workers.
bench-sched:
	$(GO) test ./internal/probesched/ -run XXX -bench BenchmarkParallelCampaign -benchtime 3x

# Campaign benchmarks, archived as JSON for before/after diffs (see
# EXPERIMENTS.md): the end-to-end campaign plus its collection and
# inference halves across the workers={1,2,4,8} grid, and the faulted
# campaign across the loss grid (benchjson archives the loss rate).
bench:
	( $(GO) test ./internal/netsim/ -run XXX -bench 'BenchmarkProbe' -benchmem ; \
	  $(GO) test ./internal/probesched/ -run XXX \
		-bench 'BenchmarkParallelCampaign|BenchmarkCampaignCollect|BenchmarkCampaignInfer|BenchmarkFaultedCampaign' \
		-benchmem -benchtime 3x ) \
		| $(GO) run ./cmd/benchjson > BENCH_PR4.json

# Per-benchmark speedup of the current archive over the previous PR's.
bench-diff:
	$(GO) run ./cmd/benchjson -diff BENCH_PR3.json BENCH_PR4.json
