# Verification entry points. `make verify` is the tier-1 gate: vet,
# build, full test suite, then the race detector over the packages with
# concurrency (the probe scheduler, the thread-safe simulator, and the
# campaign that drives them in parallel).

GO ?= go

.PHONY: verify build test vet race equivalence bench bench-sched

verify: vet build test race equivalence

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/netsim/... ./internal/probesched/... ./internal/comap/...

# Probe fast-path equivalence: the campaign digest must match the
# golden captured before the fast path (LPM FIB + compiled flows)
# landed, across a GOMAXPROCS x workers grid.
equivalence:
	$(GO) test ./internal/probesched/ -run TestFastPathMatchesGoldenDigest -count=1

# Scheduler speedup: the quickstart campaign at 1 vs N workers.
bench-sched:
	$(GO) test ./internal/probesched/ -run XXX -bench BenchmarkParallelCampaign -benchtime 3x

# Probe fast-path benchmarks, archived as JSON for before/after diffs
# (see EXPERIMENTS.md).
bench:
	( $(GO) test ./internal/netsim/ -run XXX -bench 'BenchmarkProbe' -benchmem ; \
	  $(GO) test ./internal/probesched/ -run XXX -bench BenchmarkParallelCampaign -benchmem -benchtime 3x ) \
		| $(GO) run ./cmd/benchjson > BENCH_PR2.json
