# Verification entry points. `make verify` is the tier-1 gate: gofmt,
# vet, build, full test suite, then the race detector over the packages
# with concurrency (the probe scheduler, the thread-safe simulator, and
# the campaign that drives them in parallel), the fault-plane gates
# (fast-path equivalence, zero-fault golden equivalence, and the
# graceful-degradation chaos sweep), the crash-safety gate (the
# kill/resume grid plus the chaossweep -kill-after smoke) and the
# supervised-daemon race gate (race-regiond), the FIB differential gate
# (fib-diff), the allocation gate (bench-mem), which fails on a >10%
# bytes_per_op regression against the previous PR's benchmark archive,
# and the anti-superlinear scaling gate (bench-scale), which fails when
# a 10x topology costs more than 18x the paper-size wall time.

GO ?= go

.PHONY: verify build test fmt vet race race-infer race-regiond equivalence chaos crash fib-diff bench bench-mem bench-sched bench-diff bench-scale bench-window fuzz-seg serve-bench profile clean

verify: fmt vet build test race race-infer race-regiond equivalence chaos crash fib-diff fuzz-seg bench-mem serve-bench bench-scale bench-window

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# gofmt as a gate: the target fails (and lists the offenders) when any
# tracked Go file needs reformatting.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/netsim/... ./internal/probesched/... ./internal/comap/... ./internal/snapshot/...

# Race-detect the parallel-inference paths specifically (short mode so
# the sharded mapping/graph/alias/figure tests run without the full
# multi-grid campaigns).
race-infer:
	$(GO) test -race -short -count=1 \
		-run 'MapFold|Reduce|Deterministic|GoldenDigest|NodeAddrsSorted' \
		./internal/probesched/ ./internal/comap/ ./internal/core/ ./internal/alias/ ./internal/mobilemap/ ./internal/dnsdb/

# Probe fast-path equivalence: the campaign digest must match the
# golden captured before the fast path (LPM FIB + compiled flows)
# landed, across a GOMAXPROCS x workers grid. The zero-fault-plan test
# extends the same guarantee to the fault layer: an installed-but-empty
# FaultPlan may not move a byte.
equivalence:
	$(GO) test ./internal/probesched/ -run 'TestFastPathMatchesGoldenDigest|TestZeroFaultPlanMatchesGoldenDigest' -count=1

# Graceful degradation: the faulted campaign must stay deterministic
# across worker counts, account for every probe, and the chaos sweep's
# CO recall must slide rather than cliff as the loss grid worsens.
chaos:
	$(GO) test ./internal/probesched/ -run TestFaultedCampaignDeterministicAcrossWorkers -count=1
	$(GO) run ./cmd/chaossweep -icmp-rate 2 -check

# Supervised-daemon race gate: the regiond refresh supervisor under the
# race detector — panic recovery, the failure ledger feeding /v1/health,
# and shutdown racing a refresh that publishes into a live store while
# concurrent readers hammer the health endpoint.
race-regiond:
	$(GO) test -race -count=1 ./cmd/regiond/

# Crash-safety gate: the durable spill engine end to end. The grid test
# kills a durable campaign at the first window seal, mid-campaign, the
# last window seal, and mid-checkpoint-rename — across window sizes and
# worker counts — then resumes over the surviving spill directory with a
# cold simulator and requires bit-identical golden digests. The
# traceroute tests pin manifest recovery classification (including a
# decode fuzz corpus), and the segfault tests pin the injected-fault
# filesystem's crash model itself. The chaossweep smoke exercises the
# same guarantee through the real CLI binary.
crash:
	$(GO) test ./internal/probesched/ -count=1 \
		-run 'TestDurableCampaignMatchesGoldenDigest|TestDurableKillAndResumeGrid|TestDurableCompleteReplayMatchesGolden'
	$(GO) test ./internal/traceroute/ ./internal/segfault/ -count=1
	$(GO) run ./cmd/chaossweep -kill-after 40 -trace-window 16

# FIB differential gate: the compiled prefix-set trie that now serves
# route resolution must answer every lookup identically to the retained
# masked-prefix reference index, across randomized prefix sets (seeded,
# so failures reproduce) and the full simulator integration path.
fib-diff:
	$(GO) test ./internal/netsim/ -run 'TestTrieFIBMatchesMaskedReference|TestTrieFIBNetworkIntegration|FuzzTrieFIBDifferential' -count=1

# Anti-superlinear scaling gate: run the end-to-end cable campaign at
# 1x/3x/10x topology scale (10x = 340 regions, >1M allocated subscriber
# addresses across both operators), archive the curve as BENCH_PR7.json,
# and fail when the 10x/1x wall-time ratio exceeds 18 (a quadratic term
# in any stage pushes it past 40). -benchtime 1x: each scale point is a
# full campaign, one run each is the measurement — which makes the
# ratio noisy on a shared box (the 10x run is memory-bound and gains
# less from an idle machine than the CPU-bound 1x denominator, so the
# same code measures anywhere from 12.8x to 15.5x across a day). The
# limit leaves ~30% headroom over the ~13.8x measured back-to-back
# against the PR 7 baseline; it exists to catch quadratic blowups, not
# 10% drift.
bench-scale:
	$(GO) test ./internal/core/ -run XXX -bench BenchmarkScaleCampaign \
		-benchmem -benchtime 1x -timeout 30m \
		| $(GO) run ./cmd/benchjson -scale-gate 18 > BENCH_PR7.json

# Streaming-engine memory gate: the 10x campaign through shrinking
# trace windows against the 1x and 10x resident anchors, archived as
# BENCH_PR8.json. benchjson -mem-ceiling 3 fails when the smallest
# windowed 10x run allocates more than 3x the 1x resident baseline per
# op — windowed memory must track the window, not the campaign.
bench-window:
	$(GO) test ./internal/core/ -run XXX -bench BenchmarkWindowedCampaign \
		-benchmem -benchtime 1x -timeout 30m \
		| $(GO) run ./cmd/benchjson -mem-ceiling 3 > BENCH_PR8.json

# Segment-decoder fuzz smoke: five seconds of coverage-guided mutation
# over the spill-log frames. The decoder must reject arbitrary
# corruption with its named errors, never a panic or an OOM-sized
# allocation; the seed corpus covers truncation, CRC damage, and count
# inflation.
fuzz-seg:
	$(GO) test ./internal/traceroute/ -run XXX -fuzz FuzzSegmentDecode -fuzztime 5s

# Scheduler speedup: the quickstart campaign at 1 vs N workers.
bench-sched:
	$(GO) test ./internal/probesched/ -run XXX -bench BenchmarkParallelCampaign -benchtime 3x

# Campaign benchmarks, archived as JSON for before/after diffs (see
# EXPERIMENTS.md): the end-to-end campaign plus its collection and
# inference halves across the workers={1,2,4,8} grid, and the faulted
# campaign across the loss grid (benchjson archives the loss rate).
bench:
	( $(GO) test ./internal/netsim/ -run XXX -bench 'BenchmarkProbe' -benchmem ; \
	  $(GO) test ./internal/probesched/ -run XXX \
		-bench 'BenchmarkParallelCampaign|BenchmarkCampaignCollect|BenchmarkCampaignInfer|BenchmarkFaultedCampaign' \
		-benchmem -benchtime 3x ) \
		| $(GO) run ./cmd/benchjson > BENCH_PR5.json

# Allocation gate: rerun the campaign bench with -benchmem, archive the
# numbers, and fail if any benchmark's bytes_per_op regressed more than
# 10% against the previous PR's archive (benchjson -prev exits nonzero
# on regression). This is what keeps the memory-engine wins from
# quietly eroding. Writes its own archive (BENCH_MEM.json) so it never
# clobbers the full `make bench` archive.
bench-mem:
	$(GO) test ./internal/probesched/ -run XXX \
		-bench 'BenchmarkParallelCampaign' -benchmem -benchtime 3x \
		| $(GO) run ./cmd/benchjson -prev BENCH_PR4.json > BENCH_MEM.json

# Per-benchmark time/bytes/allocs comparison of the current archive
# over the previous PR's.
bench-diff:
	$(GO) run ./cmd/benchjson -diff BENCH_PR4.json BENCH_PR5.json

# Resident-service bench: the regiond load generator hammers the
# snapshot store from 10k concurrent clients while three background
# refreshes swap the artifact, and benchjson archives the per-op
# mean/p50/p99 latencies and throughput (the p50_ns/p99_ns/qps pairs
# land in each entry's extra-metrics map) as BENCH_PR6.json. The race
# half of the same guarantee — no torn snapshot is ever observable —
# runs under `make race` via internal/snapshot's swap test.
serve-bench:
	$(GO) run ./cmd/regiond -loadgen -clients 10000 -duration 2s -swaps 3 \
		| $(GO) run ./cmd/benchjson > BENCH_PR6.json

# CPU+heap profiles of a full campaign run, ready for `go tool pprof`.
profile:
	$(GO) run ./cmd/regionmap -cpuprofile cpu.out -memprofile mem.out > /dev/null
	@echo "wrote cpu.out and mem.out; inspect with: $(GO) tool pprof cpu.out"

# Remove run artifacts: profiles, stray spill directories left by
# interrupted windowed runs (a clean exit removes its own), crash-smoke
# scratch dirs a failed -kill-after run leaves for inspection, and
# orphaned manifest temp files from a crash mid-publish.
clean:
	rm -rf .spill-* .crash-* cpu.out mem.out
	find . -name '*.manifest.tmp' -delete
