// Command attmap runs the AT&T case study (paper §6): bootstrapping
// from lightspeed rDNS, McTraceroute WiFi vantage points, DPR through
// the MPLS tunnels, last-mile-link EdgeCO clustering, and the San Diego
// CO-level topology of Fig. 13, plus the Table 2 latency study.
//
// Usage:
//
//	attmap [-seed N] [-pings N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
)

func main() {
	var cfg cli.Config
	cfg.BindSeed(flag.CommandLine, 21, "scenario seed")
	pings := flag.Int("pings", 100, "TTL-limited echos per customer (Table 2)")
	cfg.BindParallel(flag.CommandLine)
	flag.Parse()

	fmt.Printf("building the AT&T-like scenario (seed %d) and running the campaign...\n", cfg.Seed)
	stAny, err := core.NewStudy("att", cfg.Seed, cfg.Options()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "attmap:", err)
		os.Exit(1)
	}
	st := stAny.(*core.ATTStudy)
	res := st.Result()

	fmt.Printf("\n== region inventory (Appendix C) ==\n")
	fmt.Printf("lightspeed city codes with backbone tags: %d\n", len(res.CodeToTag))
	codes := make([]string, 0, len(res.CodeToTag))
	for c := range res.CodeToTag {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	shown := 0
	for _, c := range codes {
		if shown++; shown > 8 {
			fmt.Printf("  ... and %d more\n", len(codes)-8)
			break
		}
		fmt.Printf("  %s -> %s (%d lspgws)\n", c, res.CodeToTag[c], len(res.Lspgws[c]))
	}

	fig := st.Figure13()
	fmt.Printf("\n== San Diego (Fig. 13) ==\n")
	fmt.Printf("router level:  %d backbone, %d aggregation, %d edge routers\n",
		fig.BackboneRouters, fig.AggRouters, fig.EdgeRouters)
	fmt.Printf("CO level:      %d EdgeCOs (%d with two routers, %d dual-homed to two aggs)\n",
		fig.EdgeCOs, fig.TwoRouterEdges, fig.DualHomedEdges)
	fmt.Printf("backbone:      %d BackboneCO (full mesh to aggs: %v)\n", fig.BackboneCOs, fig.FullMesh)

	edge, agg := st.Table6()
	fmt.Printf("\n== router prefixes (Table 6) ==\n")
	for _, p := range edge {
		fmt.Printf("  edge %s\n", p)
	}
	for _, p := range agg {
		fmt.Printf("  agg  %s\n", p)
	}

	ark, mc := st.McComparison()
	fmt.Printf("\n== McTraceroute (§6.1) ==\n")
	fmt.Printf("distinct paths: ark/atlas=%d  mctraceroute=%d  (ratio %.2f; paper ~0.5)\n",
		ark, mc, float64(ark)/float64(mc))

	fmt.Printf("\n== EdgeCO latency from a Los Angeles cloud VM (§6.3, Table 2) ==\n")
	lat := st.EdgeLatency(*pings)
	var ms []float64
	for _, d := range lat.PerDevice {
		ms = append(ms, float64(d)/float64(time.Millisecond))
	}
	sort.Float64s(ms)
	var mean float64
	for _, v := range ms {
		mean += v
	}
	mean /= float64(len(ms))
	fmt.Printf("devices=%d min=%.1fms mean=%.1fms max=%.1fms\n", len(ms), ms[0], mean, ms[len(ms)-1])
	outliers := 0
	for _, v := range ms {
		if v > 2*mean {
			outliers++
		}
	}
	fmt.Printf("outliers above 2x the mean: %d (the Calexico / El Centro effect)\n", outliers)
}
