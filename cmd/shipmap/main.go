// Command shipmap runs the mobile-carrier study (paper §7): it ships
// simulated phones for all three carriers across the 12 itineraries,
// runs the IPv6 bit-field inference of §7.2 over the geo-tagged rounds,
// and prints the Fig. 14-18 and Table 7/8 results.
//
// Usage:
//
//	shipmap [-seed N] [-carrier att-mobile|verizon|tmobile|all] [-map]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/ship"
)

func main() {
	var cfg cli.Config
	cfg.BindSeed(flag.CommandLine, 51, "scenario seed")
	carrier := flag.String("carrier", "all", "carrier to report, or all")
	showMap := flag.Bool("map", false, "print the Fig. 18 latency hexes")
	csvPath := flag.String("csv", "", "write the raw rounds of -carrier to a CSV file")
	cfg.BindParallel(flag.CommandLine)
	flag.Parse()

	fmt.Printf("building carriers (seed %d) and shipping phones across 12 itineraries...\n", cfg.Seed)
	stAny, err := core.NewStudy("mobile", cfg.Seed, cfg.Options()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shipmap:", err)
		os.Exit(1)
	}
	st := stAny.(*core.MobileStudy)

	carriers := core.CarrierNames
	if *carrier != "all" {
		carriers = []string{*carrier}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shipmap:", err)
			os.Exit(1)
		}
		if err := ship.WriteCSV(f, st.Rounds(carriers[0])); err != nil {
			fmt.Fprintln(os.Stderr, "shipmap:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "shipmap:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s rounds to %s\n", carriers[0], *csvPath)
	}

	states, rates := st.Figure15()
	fmt.Printf("\n== coverage (Fig. 15) ==\nstates traversed: %d\n", len(states))
	for _, c := range carriers {
		fmt.Printf("  %-10s rounds=%d success=%.0f%%\n", c, len(st.Rounds(c)), 100*rates[c])
	}

	fmt.Printf("\n== energy (Fig. 14) ==\n")
	for _, r := range st.Figure14() {
		fmt.Printf("  %-28s active=%v energy=%.1fmAh battery=%.1f days\n",
			r.Mode, r.Active.Round(time.Second), r.EnergymAh, r.BatteryDays)
	}

	fmt.Printf("\n== IPv6 address plans (Fig. 16) and architectures (Fig. 17) ==\n")
	for _, c := range carriers {
		a := st.Analysis(c)
		fmt.Printf("  %-10s user=/%d region=%v pgw=%v router=%v %v arch=%s providers=%v\n",
			c, a.UserPrefixLen, a.RegionField, a.PGWField, a.RouterBase, a.RouterField, a.Arch, a.Providers)
	}

	fmt.Printf("\n== packet gateways per region (Tables 7 and 8) ==\n")
	for _, c := range carriers {
		rows := st.PGWTable(c)
		if len(rows) == 0 {
			continue
		}
		exact := 0
		fmt.Printf("  %-10s", c)
		for _, r := range rows {
			fmt.Printf(" %s=%d", r.Region, r.Inferred)
			if r.Inferred == r.Truth {
				exact++
			}
		}
		fmt.Printf("  [%d/%d match ground truth]\n", exact, len(rows))
	}

	if *showMap {
		fmt.Printf("\n== latency map (Fig. 18) ==\n")
		for _, c := range carriers {
			fmt.Printf("%s:\n", c)
			for _, h := range st.Figure18(c) {
				fmt.Printf("  (%6.1f,%7.1f) %4.0fms\n", h.Center.Lat, h.Center.Lon, h.Value)
			}
		}
	}
}
