// Command papertables regenerates every table and figure of the
// paper's evaluation in one run, printing measured values next to the
// paper's numbers. This is the non-benchmark form of the bench harness
// and the source of EXPERIMENTS.md.
//
// Usage:
//
//	papertables [-seed N] [-study cable|att|mobile|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/comap"
	"repro/internal/core"
)

func main() {
	var cfg cli.Config
	cfg.BindSeed(flag.CommandLine, 7, "scenario seed")
	study := flag.String("study", "all", "cable, att, mobile, or all")
	cfg.BindParallel(flag.CommandLine)
	flag.Parse()

	if *study == "all" || *study == "cable" {
		cable(cfg.Seed, &cfg)
	}
	if *study == "all" || *study == "att" {
		att(cfg.Seed*3, &cfg)
	}
	if *study == "all" || *study == "mobile" {
		mobile(cfg.Seed*7+2, &cfg)
	}
}

// launch builds the named study at a derived seed through the registry,
// sharing the sweep's option bridge.
func launch(name string, seed int64, cfg *cli.Config) core.Study {
	st, err := core.NewStudy(name, seed, cfg.Options()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "papertables:", err)
		os.Exit(1)
	}
	return st
}

func cable(seed int64, cfg *cli.Config) {
	fmt.Printf("=== cable study (§5), seed %d ===\n", seed)
	st := launch("cable", seed, cfg).(*core.CableStudy)
	st.Result("comcast")
	st.Result("charter")

	tbl := st.Table1()
	fmt.Println("\nTable 1 — aggregation types (paper: comcast 5/11/12, charter 0/0/6):")
	for _, isp := range []string{"comcast", "charter"} {
		fmt.Printf("  %-8s single=%d two=%d multi=%d\n",
			isp, tbl[isp][comap.AggSingle], tbl[isp][comap.AggTwo], tbl[isp][comap.AggMulti])
	}

	cos, aggs := st.Figure7()
	fmt.Println("\nFigure 7 — region sizes (paper: charter regions several times larger):")
	for _, isp := range []string{"comcast", "charter"} {
		fmt.Printf("  %-8s regions=%d COs/region=%v AggCOs/region=%v\n", isp, len(cos[isp]),
			summarize(cos[isp]), summarize(aggs[isp]))
	}

	fmt.Println("\nTables 3 and 4 — pipeline accounting:")
	for _, isp := range []string{"comcast", "charter"} {
		m := st.Table3(isp)
		p := st.Table4(isp)
		fmt.Printf("  %-8s mapping %d->%d (alias +%d ~%d -%d, subnet +%d ~%d); pruned backbone=%d cross=%d single=%d mpls=%d\n",
			isp, m.Initial, m.Final, m.AliasAdded, m.AliasChanged, m.AliasRemoved,
			m.SubnetAdded, m.SubnetChanged,
			p.BackboneCOAdjs, p.CrossRegionCOAdjs, p.SingleCOAdjs, p.MPLSCOAdjs)
	}

	for _, isp := range []string{"comcast", "charter"} {
		e := st.Entries(isp)
		fmt.Printf("§5.2.5 %-8s backbone entry pairs=%d regions<2=%d inter-region pairs=%d\n",
			isp, e.BackboneEntryPairs, e.RegionsUnderTwo, e.InterRegionPairs)
	}

	com := st.RedundancyStats("comcast")
	cha := st.RedundancyStats("charter")
	exSE := st.RedundancyStats("charter", "southeast")
	fmt.Printf("B.4 single-upstream: comcast=%.1f%% charter=%.1f%% (exSE %.1f%%); paper 11.4/37.7/29.0\n",
		100*com.SingleUpstreamFrac, 100*cha.SingleUpstreamFrac, 100*exSE.SingleUpstreamFrac)
	fmt.Printf("§5.5 EdgeCO:AggCO = %.1fx (paper 7.7x)\n",
		float64(com.EdgeCOs+cha.EdgeCOs)/float64(com.AggCOs+cha.AggCOs))
	fmt.Printf("§5.1 direct-targeting gain: comcast=%.1fx charter=%.1fx (paper 5.3x / 2.6x)\n",
		st.DirectTargetingGain("comcast"), st.DirectTargetingGain("charter"))

	fmt.Println("\nFigure 9 — Northeast medians (paper: CT worst from every cloud):")
	for _, r := range st.Figure9(50) {
		fmt.Printf("  %-7s %-10s %s %.1fms\n", r.Provider, r.Region, r.State, r.MedianMs)
	}

	fig := st.Figure10(30, 500)
	fmt.Println("\nFigure 10 — latency CDFs (paper: cloud at 5ms < 0.2; agg at 5ms > 0.8):")
	pts := []float64{5, 10, 15, 20, 30, 55}
	fmt.Printf("  cloud->edge %s\n  agg->edge   %s\n",
		fig.CloudToEdge.Series(pts), fig.AggToEdge.Series(pts))

	fmt.Println("\nvalidation (stand-in for §5.4):")
	for _, isp := range []string{"comcast", "charter"} {
		fmt.Printf("  %s mean CO F1 = %.3f\n", isp, st.Score(isp).MeanF1())
	}
}

func att(seed int64, cfg *cli.Config) {
	fmt.Printf("\n=== AT&T study (§6), seed %d ===\n", seed)
	st := launch("att", seed, cfg).(*core.ATTStudy)
	fig := st.Figure13()
	fmt.Printf("Figure 13: bb=%d agg=%d edge=%d routers; %d EdgeCOs; %d BackboneCO (mesh=%v); paper 2/4/84, 42, 1\n",
		fig.BackboneRouters, fig.AggRouters, fig.EdgeRouters, fig.EdgeCOs, fig.BackboneCOs, fig.FullMesh)
	edge, agg := st.Table6()
	fmt.Printf("Table 6: %d edge /24s + %d agg /24 (paper 6+1)\n", len(edge), len(agg))
	ark, mc := st.McComparison()
	fmt.Printf("§6.1 McTraceroute: ark=%d mc=%d paths, ratio %.2f (paper ~0.5)\n", ark, mc, float64(ark)/float64(mc))
	fmt.Printf("Table 2: %s\n", st.Table2(100))
	outliers, mean := st.LatencyOutliers(100)
	fmt.Printf("Table 2: mean=%.1fms outliers>2x=%d (paper 4.3ms, 2 outliers)\n", mean, outliers)
}

func mobile(seed int64, cfg *cli.Config) {
	fmt.Printf("\n=== mobile study (§7), seed %d ===\n", seed)
	st := launch("mobile", seed, cfg).(*core.MobileStudy)
	states, rates := st.Figure15()
	fmt.Printf("Figure 15: %d states (paper 40); success", len(states))
	for _, c := range core.CarrierNames {
		fmt.Printf(" %s=%.0f%%", c, 100*rates[c])
	}
	fmt.Println(" (paper 75-84%)")
	for _, r := range st.Figure14() {
		fmt.Printf("Figure 14: %-28s active=%v energy=%.1fmAh battery=%.1fd\n",
			r.Mode, r.Active.Round(time.Second), r.EnergymAh, r.BatteryDays)
	}
	for _, c := range core.CarrierNames {
		a := st.Analysis(c)
		fmt.Printf("Figure 16/17: %-10s user=/%d region=%v pgw=%v arch=%s providers=%v\n",
			c, a.UserPrefixLen, a.RegionField, a.PGWField, a.Arch, a.Providers)
	}
	for _, c := range []string{"att-mobile", "verizon"} {
		rows := st.PGWTable(c)
		exact := 0
		for _, r := range rows {
			if r.Inferred == r.Truth {
				exact++
			}
		}
		fmt.Printf("Table 7/8: %-10s %d/%d region PGW counts exact\n", c, exact, len(rows))
	}
	for _, c := range core.CarrierNames {
		hx := st.Figure18(c)
		var med float64
		if len(hx) > 0 {
			var vals []float64
			for _, h := range hx {
				vals = append(vals, h.Value)
			}
			med = summarizeMedian(vals)
		}
		fmt.Printf("Figure 18: %-10s hexes=%d median minRTT=%.0fms\n", c, len(hx), med)
	}
}

func summarize(xs []float64) string {
	if len(xs) == 0 {
		return "none"
	}
	min, max, sum := xs[0], xs[0], 0.0
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		sum += x
	}
	return fmt.Sprintf("min=%.0f mean=%.0f max=%.0f", min, sum/float64(len(xs)), max)
}

func summarizeMedian(xs []float64) float64 {
	c := append([]float64(nil), xs...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j-1] > c[j]; j-- {
			c[j-1], c[j] = c[j], c[j-1]
		}
	}
	return c[len(c)/2]
}
