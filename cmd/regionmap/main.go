// Command regionmap runs the cable-ISP mapping study end to end (paper
// §5): it synthesizes the Comcast- and Charter-like operators, runs the
// traceroute/rDNS/alias campaign from the standard vantage points, runs
// both inference phases, and prints the regional topologies, the Table
// 1/3/4 statistics, and the ground-truth validation scores.
//
// Usage:
//
//	regionmap [-seed N] [-isp comcast|charter] [-region NAME] [-v]
//	          [-loss RATE] [-icmp-rate N] [-retries N]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// The -loss / -icmp-rate flags inject deterministic faults into the
// measurement plane (see netsim.FaultPlan); -retries opts the campaign
// into resilient probing. With any of the three set, a coverage report
// is printed to stderr alongside the usual output.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cli"
	"repro/internal/comap"
	"repro/internal/core"
)

func main() {
	var cfg cli.Config
	cfg.BindSeed(flag.CommandLine, 7)
	isp := flag.String("isp", "comcast", "operator to report: comcast or charter")
	region := flag.String("region", "", "print one region's full CO graph")
	dot := flag.Bool("dot", false, "with -region: emit Graphviz DOT instead of text")
	asJSON := flag.Bool("json", false, "emit the full inference as JSON")
	resil := flag.Bool("resilience", false, "print the §8 failure-impact analysis per region")
	verbose := flag.Bool("v", false, "print every region summary")
	cfg.BindParallel(flag.CommandLine)
	cfg.BindBudget(flag.CommandLine)
	cfg.BindLoss(flag.CommandLine)
	cfg.BindICMPRate(flag.CommandLine)
	cfg.BindRetries(flag.CommandLine, 0)
	cfg.BindScale(flag.CommandLine)
	cfg.BindWindow(flag.CommandLine)
	cfg.BindProfiles(flag.CommandLine)
	flag.Parse()

	if *isp != "comcast" && *isp != "charter" {
		fmt.Fprintln(os.Stderr, "regionmap: -isp must be comcast or charter")
		os.Exit(2)
	}
	defer cfg.StartProfiling()()

	fmt.Fprintf(os.Stderr, "building scenario (seed %d) and running the %s campaign...\n", cfg.Seed, *isp)
	stAny, err := core.NewStudy("cable", cfg.Seed, cfg.Options()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "regionmap:", err)
		os.Exit(1)
	}
	st := stAny.(*core.CableStudy)
	res := st.Result(*isp)
	defer st.Close() // Table1 below runs both operators; close the study, not just res
	if cfg.Faulted() {
		res.Coverage.Write(os.Stderr)
	}

	if *asJSON {
		if err := res.WriteJSON(os.Stdout, *isp); err != nil {
			fmt.Fprintln(os.Stderr, "regionmap:", err)
			os.Exit(1)
		}
		return
	}

	if *region != "" {
		g := res.Inference.Regions[*region]
		if g == nil {
			fmt.Fprintf(os.Stderr, "regionmap: region %q not found\n", *region)
			os.Exit(1)
		}
		if *dot {
			if err := g.WriteDOT(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "regionmap:", err)
				os.Exit(1)
			}
			return
		}
		printRegion(g)
		return
	}

	fmt.Printf("\n== %s: %d regions inferred ==\n", *isp, len(res.Inference.Regions))
	tbl := st.Table1()[*isp]
	fmt.Printf("aggregation types (Table 1): single=%d two=%d multi-level=%d\n",
		tbl[comap.AggSingle], tbl[comap.AggTwo], tbl[comap.AggMulti])

	m := st.Table3(*isp)
	fmt.Printf("mapping (Table 3): initial=%d alias(ch/add/rm)=%d/%d/%d subnet(ch/add)=%d/%d final=%d p2p=/%d\n",
		m.Initial, m.AliasChanged, m.AliasAdded, m.AliasRemoved,
		m.SubnetChanged, m.SubnetAdded, m.Final, res.Inference.P2PBits)

	p := st.Table4(*isp)
	fmt.Printf("pruning (Table 4): IP adjs=%d CO adjs=%d backbone=%d cross-region=%d single=%d mpls=%d\n",
		p.InitialIPAdjs, p.InitialCOAdjs, p.BackboneCOAdjs, p.CrossRegionCOAdjs, p.SingleCOAdjs, p.MPLSCOAdjs)

	e := st.Entries(*isp)
	fmt.Printf("entries (§5.2.5): backbone pairs=%d regions<2=%d inter-region pairs=%d\n",
		e.BackboneEntryPairs, e.RegionsUnderTwo, e.InterRegionPairs)

	r := st.RedundancyStats(*isp)
	fmt.Printf("redundancy (B.4): single-upstream=%.1f%% edge:agg=%.1fx\n",
		100*r.SingleUpstreamFrac, r.EdgePerAggRatio)

	if *verbose {
		names := make([]string, 0, len(res.Inference.Regions))
		for n := range res.Inference.Regions {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			g := res.Inference.Regions[n]
			fmt.Printf("  %-14s COs=%-4d edges=%-4d aggs=%-3d type=%-11s entries=%d\n",
				n, len(g.COs), len(g.Edges), len(g.AggCOs()), g.Classify(), len(g.Entries))
		}
	}

	if *resil {
		fmt.Println("\nresilience (§8): worst single-CO failure and entry-loss survivability per region:")
		for _, rep := range st.Resilience(*isp) {
			worst, ok := rep.WorstCO()
			if !ok {
				continue
			}
			fmt.Printf("  %-14s worst-CO strands %3.0f%% (%s); survives entry loss: %v\n",
				rep.Region, 100*worst.Frac(), worst.Element, rep.EntryLossSurvivable())
		}
	}

	fmt.Printf("\nvalidation vs ground truth (stand-in for §5.4 operator interviews):\n%s", st.Score(*isp))
}

func printRegion(g *comap.RegionGraph) {
	fmt.Printf("region %s: %d COs, %d edges, type %s\n", g.Region, len(g.COs), len(g.Edges), g.Classify())
	fmt.Println("AggCOs:")
	for _, key := range g.AggCOs() {
		fmt.Printf("  %s (out-degree %d)\n", key, g.OutDegree(key))
	}
	fmt.Println("AggCO groups (shared fiber rings):")
	for _, grp := range g.AggGroups {
		fmt.Printf("  %v\n", grp)
	}
	fmt.Println("entries:")
	for _, e := range g.Entries {
		fmt.Printf("  %s -> %v\n", e.From, e.FirstCOs)
	}
	fmt.Println("edges:")
	type edge struct {
		a, b string
		n    int
	}
	var edges []edge
	for e, n := range g.Edges {
		edges = append(edges, edge{e[0], e[1], n})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		fmt.Printf("  %s -> %s (%d traces)\n", e.a, e.b, e.n)
	}
}
