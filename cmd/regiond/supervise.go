package main

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// supervisor owns the background refresh loop. The historical loop was
// a bare `for range time.Tick` goroutine: a panicking refresh killed
// the whole daemon, a persistently failing one retried at full cadence
// forever, and neither left a trace a health probe could see. The
// supervisor hardens all three edges:
//
//   - panics inside a refresh are recovered and recorded as failures —
//     the daemon keeps serving the last good snapshot;
//   - consecutive failures back the cadence off exponentially
//     (every × 2^failures, capped at 2^6) so a wedged measurement
//     plane is not hammered at full rate;
//   - a failure ledger (consecutive count, last error, last success
//     instant) feeds /v1/health, which reports "degraded" until the
//     next success clears it.
//
// The loop exits when its context cancels (SIGTERM in main); the
// in-flight refresh sees the same context, so a durable campaign
// checkpoints its spill and the next boot resumes it.
type supervisor struct {
	every   time.Duration
	refresh func(context.Context) error
	logf    func(format string, args ...any)

	mu          sync.Mutex
	failures    int
	lastErr     string
	lastSuccess time.Time
	successes   int
}

// backoffCap bounds the exponential backoff shift: 2^6 = 64x the base
// refresh interval.
const backoffCap = 6

func newSupervisor(every time.Duration, refresh func(context.Context) error, logf func(string, ...any)) *supervisor {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &supervisor{
		every:   every,
		refresh: refresh,
		logf:    logf,
		// The boot snapshot counts as the initial success: snapshot age
		// in /v1/health measures from here until the first refresh.
		lastSuccess: time.Now(),
	}
}

// delay is the wait before the next refresh attempt, doubled per
// consecutive failure up to the cap. Deterministic in the failure
// count, so tests can pin the schedule.
func (sv *supervisor) delay() time.Duration {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	shift := sv.failures
	if shift > backoffCap {
		shift = backoffCap
	}
	return sv.every << shift
}

// refreshSafe runs one attempt, converting a panic into an error so
// the loop (and the daemon) outlives it.
func (sv *supervisor) refreshSafe(ctx context.Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("refresh panicked: %v", r)
		}
	}()
	return sv.refresh(ctx)
}

// observe files one attempt's outcome into the ledger.
func (sv *supervisor) observe(err error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if err != nil {
		sv.failures++
		sv.lastErr = err.Error()
		return
	}
	sv.failures = 0
	sv.lastErr = ""
	sv.lastSuccess = time.Now()
	sv.successes++
}

// run loops refresh attempts until ctx cancels. Cancellation wins every
// race: it is checked again after each attempt, so a refresh that
// failed *because* of the cancel never schedules another timer.
func (sv *supervisor) run(ctx context.Context) {
	timer := time.NewTimer(sv.delay())
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		err := sv.refreshSafe(ctx)
		sv.observe(err)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			sv.logf("refresh failed (consecutive failures %d, next attempt in %v): %v",
				sv.consecutiveFailures(), sv.delay(), err)
		}
		timer.Reset(sv.delay())
	}
}

func (sv *supervisor) consecutiveFailures() int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.failures
}

// refreshHealth is the supervisor's slice of /v1/health.
type refreshHealth struct {
	// Status is "ok" while the last refresh succeeded, "degraded" after
	// any failure (the daemon still serves the last good snapshot).
	Status string `json:"status"`
	// ConsecutiveFailures counts refresh attempts since the last
	// success; the backoff doubles with each one.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// LastError is the most recent failure's message, empty when ok.
	LastError string `json:"last_error,omitempty"`
	// SnapshotAgeSeconds is how stale the served snapshot is: seconds
	// since the last successful refresh (or boot).
	SnapshotAgeSeconds float64 `json:"snapshot_age_s"`
}

// health snapshots the ledger.
func (sv *supervisor) health() refreshHealth {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	h := refreshHealth{
		Status:              "ok",
		ConsecutiveFailures: sv.failures,
		LastError:           sv.lastErr,
		SnapshotAgeSeconds:  time.Since(sv.lastSuccess).Seconds(),
	}
	if sv.failures > 0 {
		h.Status = "degraded"
	}
	return h
}
