package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/netip"
	"time"

	"repro/internal/comap"
	"repro/internal/core"
	"repro/internal/snapshot"
)

// service owns one snapshot store per measured operator. The stores and
// results maps are written only during bootstrap, before any handler or
// refresher runs (refreshes re-publish into existing stores from a
// single background goroutine); every query is an atomic store.Load
// plus reads of the immutable snapshot — no locks anywhere on the read
// path.
type service struct {
	study string
	seed  int64
	opts  []core.Option

	isps    []string
	stores  map[string]*snapshot.Store
	results map[string]*comap.Result

	// sup is the background-refresh supervisor, nil when the daemon
	// serves the boot snapshot forever; /v1/health folds its failure
	// ledger in when present.
	sup *supervisor
}

func newService(study string, seed int64, opts []core.Option) *service {
	return &service{
		study: study, seed: seed, opts: opts,
		stores:  map[string]*snapshot.Store{},
		results: map[string]*comap.Result{},
	}
}

// runStudy executes the study through the registry and returns the
// per-operator pipeline results in campaign order.
func (s *service) runStudy(ctx context.Context) ([]string, map[string]*comap.Result, error) {
	st, err := core.NewStudy(s.study, s.seed, s.opts...)
	if err != nil {
		return nil, nil, err
	}
	res, err := st.Run(ctx)
	if err != nil {
		return nil, nil, err
	}
	if len(res.CableISPs) == 0 {
		return nil, nil, fmt.Errorf("study %q produces no snapshot-servable reports (only cable campaigns build comap reports)", s.study)
	}
	return res.CableISPs, res.Cable, nil
}

// compile builds one operator's result into a snapshot and publishes it
// to that operator's store.
func (s *service) compile(isp string) error {
	store, ok := s.stores[isp]
	if !ok {
		return fmt.Errorf("no store for operator %q", isp)
	}
	snap, err := snapshot.Build(snapshot.Meta{
		Study: s.study, ISP: isp, Seed: s.seed, BuiltAt: time.Now(),
	}, s.results[isp])
	if err != nil {
		return fmt.Errorf("%s: %w", isp, err)
	}
	_, err = store.Publish(snap)
	return err
}

// bootstrap runs the study once, creates the per-operator stores, and
// publishes version 1 of each snapshot. It must complete before the
// listener (or loadgen) starts: it is the only writer of the maps.
func (s *service) bootstrap(ctx context.Context) error {
	isps, results, err := s.runStudy(ctx)
	if err != nil {
		return err
	}
	s.isps, s.results = isps, results
	for _, isp := range isps {
		s.stores[isp] = &snapshot.Store{}
		if err := s.compile(isp); err != nil {
			return err
		}
	}
	s.releaseSpill()
	return nil
}

// releaseSpill closes every retained result's spilled trace archive (a
// no-op for resident campaigns). Snapshot compiles read only the
// inference artifacts, never the raw paths, so the spill files can go
// as soon as the snapshots are published — a windowed regiond does not
// accumulate a spill directory per refresh.
func (s *service) releaseSpill() {
	for _, r := range s.results {
		r.Close()
	}
}

// refresh re-runs the full campaign and swaps each operator's fresh
// snapshot into its existing store. Every snapshot is built before any
// is published: a refresh that fails anywhere — campaign, compile —
// publishes nothing and leaves every store serving its last good
// artifact (the supervisor reports the failure through /v1/health).
// Readers holding the superseded artifact keep it; new loads observe
// the new version.
func (s *service) refresh(ctx context.Context) error {
	isps, results, err := s.runStudy(ctx)
	if err != nil {
		return err
	}
	published := false
	defer func() {
		if !published {
			// The rejected results' spill files have no further use.
			for _, r := range results {
				r.Close()
			}
		}
	}()
	snaps := make(map[string]*snapshot.Snapshot, len(isps))
	for _, isp := range isps {
		if _, ok := s.stores[isp]; !ok {
			return fmt.Errorf("refresh produced unknown operator %q", isp)
		}
		snap, err := snapshot.Build(snapshot.Meta{
			Study: s.study, ISP: isp, Seed: s.seed, BuiltAt: time.Now(),
		}, results[isp])
		if err != nil {
			return fmt.Errorf("%s: %w", isp, err)
		}
		snaps[isp] = snap
	}
	for _, isp := range isps {
		if _, err := s.stores[isp].Publish(snaps[isp]); err != nil {
			return err
		}
	}
	published = true
	s.results = results
	s.releaseSpill()
	return nil
}

// recompile rebuilds every operator's snapshot from the retained study
// results — a full artifact compile (interning, columns, LPM tables),
// not a re-measurement — and swaps each in. The loadgen writer uses
// this so its refresh cadence is bounded by compile time, not campaign
// time.
func (s *service) recompile() error {
	for _, isp := range s.isps {
		if err := s.compile(isp); err != nil {
			return err
		}
	}
	return nil
}

// snap resolves the request's operator (?isp=, default the first
// measured one) to its current snapshot.
func (s *service) snap(w http.ResponseWriter, r *http.Request) *snapshot.Snapshot {
	isp := r.URL.Query().Get("isp")
	if isp == "" {
		isp = s.isps[0]
	}
	store, ok := s.stores[isp]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown operator %q (serving %v)", isp, s.isps)
		return nil
	}
	snap := store.Load()
	if snap == nil {
		httpError(w, http.StatusServiceUnavailable, "no snapshot published yet for %q", isp)
		return nil
	}
	return snap
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handler builds the query surface. Every endpoint resolves one
// immutable snapshot up front and reads only from it, so a refresh
// mid-request is invisible.
func (s *service) handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /v1/health", func(w http.ResponseWriter, r *http.Request) {
		versions := map[string]uint64{}
		for isp, store := range s.stores {
			versions[isp] = store.Version()
		}
		body := map[string]any{"status": "ok", "study": s.study, "seed": s.seed, "versions": versions}
		if s.sup != nil {
			rh := s.sup.health()
			body["refresh"] = rh
			// A failing refresh degrades the whole health verdict; the
			// daemon still answers queries from the last good snapshot.
			body["status"] = rh.Status
		}
		writeJSON(w, body)
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if snap := s.snap(w, r); snap != nil {
			writeJSON(w, snap.Stats())
		}
	})

	mux.HandleFunc("GET /v1/lookup", func(w http.ResponseWriter, r *http.Request) {
		snap := s.snap(w, r)
		if snap == nil {
			return
		}
		q := r.URL.Query()
		switch {
		case q.Get("addr") != "":
			addr, err := netip.ParseAddr(q.Get("addr"))
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad addr: %v", err)
				return
			}
			co, ok := snap.LookupAddr(addr)
			if !ok {
				httpError(w, http.StatusNotFound, "%s maps to no CO", addr)
				return
			}
			writeJSON(w, co)
		case q.Get("prefix") != "":
			p, err := netip.ParsePrefix(q.Get("prefix"))
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad prefix: %v", err)
				return
			}
			cos := snap.LookupPrefix(p)
			if cos == nil {
				cos = []snapshot.CO{} // an empty range is [], not null
			}
			writeJSON(w, cos)
		default:
			httpError(w, http.StatusBadRequest, "need ?addr= or ?prefix=")
		}
	})

	mux.HandleFunc("GET /v1/regions", func(w http.ResponseWriter, r *http.Request) {
		if snap := s.snap(w, r); snap != nil {
			writeJSON(w, snap.RegionNames())
		}
	})

	mux.HandleFunc("GET /v1/region/{name}", func(w http.ResponseWriter, r *http.Request) {
		snap := s.snap(w, r)
		if snap == nil {
			return
		}
		rr, ok := snap.Region(r.PathValue("name"))
		if !ok {
			httpError(w, http.StatusNotFound, "region %q not in snapshot", r.PathValue("name"))
			return
		}
		writeJSON(w, rr)
	})

	// The full report is pre-marshaled at snapshot build, so this is a
	// single buffer write.
	mux.HandleFunc("GET /v1/report", func(w http.ResponseWriter, r *http.Request) {
		if snap := s.snap(w, r); snap != nil {
			w.Header().Set("Content-Type", "application/json")
			w.Write(snap.ReportJSON())
		}
	})

	mux.HandleFunc("GET /v1/coverage", func(w http.ResponseWriter, r *http.Request) {
		if snap := s.snap(w, r); snap != nil {
			writeJSON(w, snap.Coverage())
		}
	})

	mux.HandleFunc("GET /v1/table1", func(w http.ResponseWriter, r *http.Request) {
		if snap := s.snap(w, r); snap != nil {
			writeJSON(w, snap.Table1())
		}
	})

	mux.HandleFunc("GET /v1/figure7", func(w http.ResponseWriter, r *http.Request) {
		if snap := s.snap(w, r); snap != nil {
			writeJSON(w, snap.Figure7())
		}
	})

	return mux
}
