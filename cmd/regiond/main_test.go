package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"strings"
	"testing"

	"repro/internal/comap"
	"repro/internal/snapshot"
	"repro/internal/topogen"
	"repro/internal/vclock"
)

// quickstartService builds a service over the quickstart-scale
// single-region campaign, injected directly so the test does not pay
// for the full-profile study run.
func quickstartService(t *testing.T) *service {
	t.Helper()
	scenario := topogen.NewScenario(42)
	profile := topogen.ComcastProfile()
	profile.Regions = []topogen.CableRegionSpec{{
		Name:     "bverton",
		Anchor:   "Beaverton",
		Backbone: []string{"Seattle", "Sunnyvale"},
		Type:     topogen.DualAgg,
		EdgeCOs:  12,
	}}
	isp := scenario.BuildCable(profile)
	var vps []netip.Addr
	for _, city := range []string{"Seattle", "San Francisco", "Denver", "Chicago", "New York"} {
		vps = append(vps, scenario.AddTransitVP(city).Addr)
	}
	res := comap.Run(&comap.Campaign{
		Net:       scenario.Net,
		DNS:       scenario.DNS,
		Clock:     vclock.New(scenario.Epoch()),
		ISP:       "comcast",
		Seed:      42,
		VPs:       vps,
		Announced: isp.Announced,
	})

	svc := newService("cable", 42, nil)
	svc.isps = []string{"comcast"}
	svc.results["comcast"] = res
	svc.stores["comcast"] = &snapshot.Store{}
	if err := svc.compile("comcast"); err != nil {
		t.Fatal(err)
	}
	return svc
}

func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func getJSON(t *testing.T, h http.Handler, url string, v any) {
	t.Helper()
	code, body := get(t, h, url)
	if code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, code, body)
	}
	if err := json.Unmarshal([]byte(body), v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}

func TestEndpointsServeSnapshot(t *testing.T) {
	svc := quickstartService(t)
	h := svc.handler()
	snap := svc.stores["comcast"].Load()

	var health struct {
		Status   string            `json:"status"`
		Versions map[string]uint64 `json:"versions"`
	}
	getJSON(t, h, "/v1/health", &health)
	if health.Status != "ok" || health.Versions["comcast"] != 1 {
		t.Errorf("health = %+v, want ok with comcast v1", health)
	}

	var stats snapshot.Stats
	getJSON(t, h, "/v1/stats", &stats)
	if stats.ISP != "comcast" || stats.COs == 0 || stats.SchemaVersion != comap.ReportSchemaVersion {
		t.Errorf("stats = %+v", stats)
	}

	// Every region the snapshot knows must be extractable, and the names
	// endpoint must list it.
	var names []string
	getJSON(t, h, "/v1/regions", &names)
	if len(names) == 0 {
		t.Fatal("no regions served")
	}
	for _, name := range names {
		var rr comap.RegionReport
		getJSON(t, h, "/v1/region/"+name, &rr)
		if rr.Name != name {
			t.Errorf("region %q extract named %q", name, rr.Name)
		}
	}
	if code, _ := get(t, h, "/v1/region/atlantis"); code != http.StatusNotFound {
		t.Errorf("missing region = %d, want 404", code)
	}

	// Address lookup round-trips through the LPM tables.
	probe := snap.LookupPrefix(netip.MustParsePrefix("0.0.0.0/0"))[0].Addrs[0]
	var co snapshot.CO
	getJSON(t, h, "/v1/lookup?addr="+probe.String(), &co)
	if co.Key == "" || co.Region == "" {
		t.Errorf("lookup(%s) = %+v", probe, co)
	}
	var cos []snapshot.CO
	getJSON(t, h, "/v1/lookup?prefix=0.0.0.0/0", &cos)
	if len(cos) == 0 {
		t.Error("whole-space prefix lookup returned nothing")
	}
	if code, _ := get(t, h, "/v1/lookup?addr=203.0.113.99"); code != http.StatusNotFound {
		t.Errorf("unmapped addr = %d, want 404", code)
	}
	if code, _ := get(t, h, "/v1/lookup?addr=not-an-ip"); code != http.StatusBadRequest {
		t.Errorf("bad addr = %d, want 400", code)
	}
	if code, _ := get(t, h, "/v1/lookup"); code != http.StatusBadRequest {
		t.Errorf("no query = %d, want 400", code)
	}

	// The report endpoint serves the pre-marshaled bytes verbatim.
	if code, body := get(t, h, "/v1/report"); code != http.StatusOK || body != string(snap.ReportJSON()) {
		t.Errorf("report endpoint differs from snapshot ReportJSON (code %d)", code)
	}

	var table1 map[string]int
	getJSON(t, h, "/v1/table1", &table1)
	total := 0
	for _, n := range table1 {
		total += n
	}
	if total != stats.Regions {
		t.Errorf("table1 sums to %d regions, want %d", total, stats.Regions)
	}
	var fig7 []snapshot.RegionSize
	getJSON(t, h, "/v1/figure7", &fig7)
	if len(fig7) != stats.Regions {
		t.Errorf("figure7 rows = %d, want %d", len(fig7), stats.Regions)
	}

	if code, body := get(t, h, "/v1/stats?isp=atlantis"); code != http.StatusNotFound || !strings.Contains(body, "unknown operator") {
		t.Errorf("unknown isp = %d %q, want 404", code, body)
	}
}

// TestRecompileSwapsVersion: a recompile republishes every operator at
// the next version, and queries see the new artifact.
func TestRecompileSwapsVersion(t *testing.T) {
	svc := quickstartService(t)
	h := svc.handler()
	if err := svc.recompile(); err != nil {
		t.Fatal(err)
	}
	var stats snapshot.Stats
	getJSON(t, h, "/v1/stats", &stats)
	if stats.Version != 2 {
		t.Errorf("stats.Version = %d after recompile, want 2", stats.Version)
	}
	if !svc.stores["comcast"].Load().Consistent() {
		t.Error("recompiled snapshot inconsistent")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns what it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var sb strings.Builder
		io.Copy(&sb, r)
		done <- sb.String()
	}()
	fn()
	w.Close()
	return <-done
}

// TestLoadgenSmoke exercises the harness end to end at a tiny scale:
// the bench lines must appear and the store must finish at version
// 1+swaps.
func TestLoadgenSmoke(t *testing.T) {
	svc := quickstartService(t)
	out := captureStdout(t, func() {
		if err := runLoadgen(svc, 32, 200_000_000, 2, "/scale=1x"); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"BenchmarkServeLookupAddr", "BenchmarkServeLookupRange", "BenchmarkServeAll/clients=32/scale=1x", "p50_ns", "p99_ns", "qps"} {
		if !strings.Contains(out, want) {
			t.Errorf("loadgen output missing %q:\n%s", want, out)
		}
	}
	if v := svc.stores["comcast"].Version(); v != 3 {
		t.Errorf("store version after 2 swaps = %d, want 3", v)
	}
}
