// Command regiond is the resident topology service: it runs the named
// measurement study once at startup, compiles the inference into an
// immutable snapshot per operator (see internal/snapshot), and serves
// concurrent queries over HTTP — CO lookup by address or prefix through
// the snapshot's compiled LPM tables, region-graph extracts, coverage
// and confidence statistics, and the paper's Table 1 / Figure 7 series.
//
// Refreshes re-run the full campaign in the background and install the
// new artifact with a single atomic pointer swap; queries in flight
// keep the snapshot they loaded and never see a torn artifact. The read
// path takes no locks (verified under -race by the snapshot swap test).
// The refresh loop is supervised: a panicking or failing refresh is
// recovered into a failure ledger, retried with exponential backoff,
// and reported as "degraded" by /v1/health while the daemon keeps
// serving the last good snapshot. SIGTERM/SIGINT drain the HTTP server
// gracefully and cancel any in-flight refresh at its next probe-batch
// boundary — a durable campaign checkpoints its spill so the next boot
// resumes it.
//
// Usage:
//
//	regiond [-listen ADDR] [-study cable] [-seed N] [-refresh DUR]
//	        [-loss RATE] [-icmp-rate N] [-retries N] [-budget N]
//
//	regiond -loadgen [-clients N] [-duration DUR] [-swaps N]
//
// With -loadgen no listener starts: the in-process load generator
// hammers the snapshot store from -clients concurrent goroutines while
// -swaps background refreshes rotate the artifact, then reports per-op
// p50/p99 latency in `go test -bench` format so `make serve-bench` can
// archive it through cmd/benchjson (BENCH_PR6.json).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
)

func main() {
	var cfg cli.Config
	cfg.BindSeed(flag.CommandLine, 7)
	study := flag.String("study", "cable", "registered study to run and serve (see core.StudyNames)")
	listen := flag.String("listen", "127.0.0.1:8714", "HTTP listen address")
	refresh := flag.Duration("refresh", 0, "re-run the campaign and swap in a fresh snapshot at this interval (0 = serve the boot snapshot forever)")
	loadgen := flag.Bool("loadgen", false, "run the in-process load generator instead of serving HTTP")
	clients := flag.Int("clients", 10000, "with -loadgen: concurrent client goroutines")
	duration := flag.Duration("duration", 2*time.Second, "with -loadgen: how long the clients hammer")
	swaps := flag.Int("swaps", 3, "with -loadgen: background snapshot refreshes performed during the run")
	cfg.BindParallel(flag.CommandLine)
	cfg.BindBudget(flag.CommandLine)
	cfg.BindLoss(flag.CommandLine)
	cfg.BindICMPRate(flag.CommandLine)
	cfg.BindRetries(flag.CommandLine, 0)
	cfg.BindScale(flag.CommandLine)
	cfg.BindWindow(flag.CommandLine)
	cfg.BindProfiles(flag.CommandLine)
	flag.Parse()
	defer cfg.StartProfiling()()

	// SIGTERM/SIGINT cancel this context: the supervisor stops, an
	// in-flight refresh campaign exits at its next flush boundary (a
	// durable one checkpoints its spill for the next boot to resume),
	// and the HTTP server drains gracefully.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svc := newService(*study, cfg.Seed, cfg.Options())
	fmt.Fprintf(os.Stderr, "regiond: running the %s study (seed %d)...\n", *study, cfg.Seed)
	start := time.Now()
	if err := svc.bootstrap(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "regiond:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "regiond: snapshot v1 ready for %v in %v\n",
		svc.isps, time.Since(start).Round(time.Millisecond))

	if *loadgen {
		if err := runLoadgen(svc, *clients, *duration, *swaps, cfg.ScaleTag()); err != nil {
			fmt.Fprintln(os.Stderr, "regiond:", err)
			os.Exit(1)
		}
		return
	}

	if *refresh > 0 {
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "regiond: "+format+"\n", args...)
		}
		svc.sup = newSupervisor(*refresh, func(ctx context.Context) error {
			if err := svc.refresh(ctx); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "regiond: refreshed to v%d\n", svc.stores[svc.isps[0]].Version())
			return nil
		}, logf)
		go svc.sup.run(ctx)
	}

	srv := &http.Server{Addr: *listen, Handler: svc.handler()}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "regiond: signal received, shutting down...")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "regiond: shutdown:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "regiond: listening on http://%s\n", *listen)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "regiond:", err)
		os.Exit(1)
	}
	<-shutdownDone
	fmt.Fprintln(os.Stderr, "regiond: bye")
}
