package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/snapshot"
)

// TestSupervisorRecoversFromPanicAndBacksOff drives the supervisor
// through the full failure arc with an injected refresh function — two
// panics, one plain error, then success — and checks the ledger at
// every step: panics are recovered into failures, the backoff doubles
// per consecutive failure, health degrades with the failure count and
// last error, and one success clears everything.
func TestSupervisorRecoversFromPanicAndBacksOff(t *testing.T) {
	var calls atomic.Int32
	refreshed := make(chan int, 16)
	sv := newSupervisor(time.Millisecond, func(ctx context.Context) error {
		n := int(calls.Add(1))
		refreshed <- n
		switch n {
		case 1, 2:
			panic("injected refresh panic")
		case 3:
			return errors.New("injected refresh error")
		default:
			return nil
		}
	}, t.Logf)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); sv.run(ctx) }()

	wait := func(n int) {
		t.Helper()
		for {
			select {
			case got := <-refreshed:
				if got == n {
					return
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("refresh attempt %d never ran", n)
			}
		}
	}

	wait(2) // two panics survived: the daemon goroutine is still alive
	waitLedger := func(check func(refreshHealth) bool) refreshHealth {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			h := sv.health()
			if check(h) {
				return h
			}
			if time.Now().After(deadline) {
				t.Fatalf("ledger never reached expected state; last %+v", h)
			}
			time.Sleep(time.Millisecond)
		}
	}
	h := waitLedger(func(h refreshHealth) bool { return h.ConsecutiveFailures >= 2 })
	if h.Status != "degraded" || !strings.Contains(h.LastError, "injected refresh panic") {
		t.Fatalf("after two panics: %+v", h)
	}
	if d := sv.delay(); d != time.Millisecond<<2 {
		t.Fatalf("backoff after 2 failures = %v, want %v", d, time.Millisecond<<2)
	}

	wait(4) // the error attempt, then the success
	h = waitLedger(func(h refreshHealth) bool { return h.ConsecutiveFailures == 0 })
	if h.Status != "ok" || h.LastError != "" {
		t.Fatalf("after success: %+v", h)
	}
	if d := sv.delay(); d != time.Millisecond {
		t.Fatalf("backoff after success = %v, want base %v", d, time.Millisecond)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor did not stop on context cancel")
	}
}

// TestSupervisorBackoffCap pins the exponential cap: the delay stops
// doubling at 2^backoffCap times the base interval.
func TestSupervisorBackoffCap(t *testing.T) {
	sv := newSupervisor(time.Second, func(context.Context) error { return nil }, nil)
	for i := 0; i < backoffCap+20; i++ {
		sv.observe(errors.New("x"))
	}
	if d := sv.delay(); d != time.Second<<backoffCap {
		t.Fatalf("capped delay = %v, want %v", d, time.Second<<backoffCap)
	}
}

// TestHealthReportsDegradedRefresh pins the /v1/health contract: a
// service whose supervisor has logged failures reports top-level
// "degraded" with the ledger attached, and flips back to "ok" once a
// refresh succeeds — all while the stores keep serving.
func TestHealthReportsDegradedRefresh(t *testing.T) {
	svc := newService("cable", 7, nil)
	svc.isps = []string{"comcast"}
	svc.stores["comcast"] = &snapshot.Store{}
	sv := newSupervisor(time.Minute, func(context.Context) error { return nil }, nil)
	svc.sup = sv
	handler := svc.handler()

	health := func() (status string, rh refreshHealth) {
		t.Helper()
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/health", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("health returned %d: %s", rec.Code, rec.Body)
		}
		var body struct {
			Status  string        `json:"status"`
			Refresh refreshHealth `json:"refresh"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("health body %q: %v", rec.Body, err)
		}
		return body.Status, body.Refresh
	}

	if status, rh := health(); status != "ok" || rh.Status != "ok" {
		t.Fatalf("fresh service health = %s / %+v, want ok", status, rh)
	}
	sv.observe(errors.New("campaign wedged"))
	sv.observe(errors.New("campaign wedged again"))
	status, rh := health()
	if status != "degraded" || rh.Status != "degraded" {
		t.Fatalf("after failures health = %s / %+v, want degraded", status, rh)
	}
	if rh.ConsecutiveFailures != 2 || !strings.Contains(rh.LastError, "wedged again") {
		t.Fatalf("ledger in health = %+v", rh)
	}
	sv.observe(nil)
	if status, rh := health(); status != "ok" || rh.ConsecutiveFailures != 0 || rh.LastError != "" {
		t.Fatalf("after recovery health = %s / %+v, want ok", status, rh)
	}
}

// TestSupervisorShutdownRefreshRace runs the supervisor at full tilt —
// a refresh that publishes into a live store and panics every third
// call — while concurrent readers hammer /v1/health and the snapshot
// store, then cancels mid-flight. Run under -race (make verify does),
// this is the shutdown/refresh/health race check: the ledger, the
// store swaps, and the cancellation path must all be data-race free,
// and cancellation must win promptly even against a failing refresh.
func TestSupervisorShutdownRefreshRace(t *testing.T) {
	store := &snapshot.Store{}
	svc := newService("cable", 42, nil)
	svc.isps = []string{"comcast"}
	svc.stores["comcast"] = store

	var calls atomic.Int32
	sv := newSupervisor(time.Microsecond, func(ctx context.Context) error {
		n := calls.Add(1)
		if n%3 == 0 {
			panic("periodic injected panic")
		}
		if _, err := store.Publish(&snapshot.Snapshot{}); err != nil {
			return err
		}
		return nil
	}, nil)
	svc.sup = sv

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); sv.run(ctx) }()

	handler := svc.handler()
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/health", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("health returned %d", rec.Code)
					return
				}
				var body struct {
					Status  string         `json:"status"`
					Refresh *refreshHealth `json:"refresh"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					t.Errorf("health body: %v", err)
					return
				}
				if body.Refresh == nil || (body.Status != "ok" && body.Status != "degraded") {
					t.Errorf("health reported %+v", body)
					return
				}
				store.Load()
			}
		}()
	}

	// Let refreshes, panics, and reads interleave, then shut down.
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() < 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor did not stop on cancel")
	}
	close(stopReaders)
	wg.Wait()
	if calls.Load() == 0 {
		t.Fatal("refresh never ran")
	}
}
