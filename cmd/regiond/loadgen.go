package main

import (
	"fmt"
	"math/bits"
	"math/rand"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The load generator measures the resident query path itself — snapshot
// load, LPM lookup, region extract, stats — not HTTP framing, so the
// numbers bound what any transport can deliver. Each client goroutine
// runs a fixed op mix against the store while a background writer
// performs full snapshot rebuild+swap cycles; per-op latencies go into
// per-client log-bucketed histograms that are merged once at the end,
// so the measurement adds no shared state to the hammered path.

// opKinds is the measured query mix: address lookups dominate (the
// paper's applications resolve customer addresses), with narrow prefix
// scans, region extracts, stats reads, and wide prefix-range scans
// (/16 sweeps returning hundreds of COs — the outage-mapping query
// shape, and the op whose cost actually grows with snapshot scale)
// behind them.
var opKinds = []struct {
	name   string
	weight int
}{
	{"LookupAddr", 55},
	{"LookupPrefix", 15},
	{"Region", 10},
	{"Stats", 10},
	{"LookupRange", 10},
}

// hist is a log2-bucketed latency histogram: bucket i counts latencies
// with bit-length i nanoseconds. 64 buckets cover any duration, and
// reconstruction error (a bucket spans [2^(i-1), 2^i)) is well under
// the run-to-run noise of a p99.
type hist struct {
	count [64]uint64
	total uint64
	sumNs uint64
}

func (h *hist) record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	h.count[bits.Len64(ns)%64]++
	h.total++
	h.sumNs += ns
}

func (h *hist) merge(o *hist) {
	for i, c := range o.count {
		h.count[i] += c
	}
	h.total += o.total
	h.sumNs += o.sumNs
}

// percentile returns the latency at quantile q as the geometric middle
// of the bucket holding that rank.
func (h *hist) percentile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.count {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			lo := float64(uint64(1) << (i - 1))
			return lo * 1.5
		}
	}
	return 0
}

func (h *hist) mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sumNs) / float64(h.total)
}

// runLoadgen hammers the bootstrapped service from clients goroutines
// for the given duration while performing swaps background refreshes,
// then prints one `go test -bench`-shaped line per op kind plus an
// aggregate line with throughput, for cmd/benchjson to archive. tag is
// appended to every benchmark name (e.g. "/scale=10x" when the service
// was booted on a scaled topology) so scaled runs archive under
// distinct names instead of clobbering the paper-size numbers.
func runLoadgen(svc *service, clients int, duration time.Duration, swaps int, tag string) error {
	if clients < 1 {
		return fmt.Errorf("-clients must be >= 1")
	}
	isp := svc.isps[0]
	store := svc.stores[isp]
	base := store.Load()

	// Sample the query targets once from the boot snapshot: known
	// interface addresses (plus a miss probe), the /24s they live in,
	// and the region names. Refreshed snapshots of the same seed carry
	// the same address space, so the targets stay valid across swaps.
	var addrs []netip.Addr
	var prefixes []netip.Prefix
	var ranges []netip.Prefix
	seen16 := map[netip.Prefix]bool{}
	for _, co := range base.LookupPrefix(netip.MustParsePrefix("0.0.0.0/0")) {
		addrs = append(addrs, co.Addrs...)
		if p, err := co.Addrs[0].Prefix(24); err == nil {
			prefixes = append(prefixes, p)
		}
		// Wide /16 ranges for the LookupRange op, deduplicated: at paper
		// scale an operator spans a handful of /16s, at 10x scale dozens,
		// so the op's result set grows with the snapshot.
		if p, err := co.Addrs[0].Prefix(16); err == nil && !seen16[p] {
			seen16[p] = true
			ranges = append(ranges, p)
		}
	}
	regions := base.RegionNames()
	if len(addrs) == 0 || len(regions) == 0 || len(ranges) == 0 {
		return fmt.Errorf("boot snapshot has no addresses or regions to query")
	}

	// Cumulative weights for the op mix.
	cum := make([]int, len(opKinds)+1)
	for i, k := range opKinds {
		cum[i+1] = cum[i] + k.weight
	}
	weightSum := cum[len(opKinds)]

	fmt.Printf("regiond loadgen: %d clients, %v, %d refresh swaps, %d GOMAXPROCS\n",
		clients, duration, swaps, runtime.GOMAXPROCS(0))

	perClient := make([][]hist, clients)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		perClient[c] = make([]hist, len(opKinds))
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*2654435761 + 1))
			hs := perClient[c]
			for !stop.Load() {
				op := 0
				w := rng.Intn(weightSum)
				for cum[op+1] <= w {
					op++
				}
				start := time.Now()
				s := store.Load()
				switch op {
				case 0:
					s.LookupAddr(addrs[rng.Intn(len(addrs))])
				case 1:
					s.LookupPrefix(prefixes[rng.Intn(len(prefixes))])
				case 2:
					s.Region(regions[rng.Intn(len(regions))])
				case 3:
					s.Stats()
				case 4:
					s.LookupPrefix(ranges[rng.Intn(len(ranges))])
				}
				hs[op].record(time.Since(start))
				// Yield between ops: clients that spin without parking
				// hold their whole 10ms preemption slice, which starves
				// the swap writer into multi-second publishes on small
				// hosts. The yield sits outside the timed window, so the
				// percentiles still measure the op, not the scheduler.
				runtime.Gosched()
			}
		}(c)
	}

	// The writer performs real rebuild+swap cycles — a full snapshot
	// compile from the retained study results per swap, spread across
	// the window — so the percentiles include reads taken
	// mid-publication. Recompiling rather than re-measuring keeps the
	// swap cadence near the loadgen window; -refresh in serve mode
	// re-runs the whole campaign. -duration is a minimum: the clients
	// keep hammering until every requested swap has been published, so
	// the reported percentiles always cover all the swaps.
	started := time.Now()
	swapErr := make(chan error, 1)
	var swapped atomic.Int32
	go func() {
		defer close(swapErr)
		gap := duration / time.Duration(swaps+1)
		for i := 0; i < swaps; i++ {
			time.Sleep(gap)
			if err := svc.recompile(); err != nil {
				swapErr <- err
				return
			}
			swapped.Add(1)
		}
	}()

	time.Sleep(duration)
	err, errSent := <-swapErr // readers run on until the last swap publishes
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(started)
	if errSent && err != nil {
		return fmt.Errorf("refresh during loadgen: %w", err)
	}

	merged := make([]hist, len(opKinds))
	for _, hs := range perClient {
		for i := range hs {
			merged[i].merge(&hs[i])
		}
	}
	var all hist
	for i := range merged {
		all.merge(&merged[i])
	}
	if all.total == 0 {
		return fmt.Errorf("loadgen recorded no operations")
	}

	// `go test -bench` format: name, iteration count, then (value, unit)
	// pairs. benchjson understands ns/op natively and archives p50_ns /
	// p99_ns / qps through its extra-metrics map.
	for i, k := range opKinds {
		h := &merged[i]
		if h.total == 0 {
			continue
		}
		fmt.Printf("BenchmarkServe%s/clients=%d%s \t%d \t%.1f ns/op \t%.0f p50_ns \t%.0f p99_ns\n",
			k.name, clients, tag, h.total, h.mean(), h.percentile(0.50), h.percentile(0.99))
	}
	qps := float64(all.total) / elapsed.Seconds()
	fmt.Printf("BenchmarkServeAll/clients=%d%s \t%d \t%.1f ns/op \t%.0f p50_ns \t%.0f p99_ns \t%.0f qps\n",
		clients, tag, all.total, all.mean(), all.percentile(0.50), all.percentile(0.99), qps)
	fmt.Printf("loadgen: %d ops in %v (%.0f qps) across %d swaps; final snapshot v%d\n",
		all.total, elapsed.Round(time.Millisecond), qps, swapped.Load(), store.Version())
	return nil
}
