// Command benchjson converts `go test -bench` text output read from
// stdin into a JSON array, one object per benchmark result line, so
// bench runs can be archived and diffed (see `make bench`, which writes
// BENCH_PR3.json).
//
// Usage:
//
//	go test -bench . -benchmem | benchjson > out.json
//	go test -bench . -benchmem | benchjson -prev BENCH_PR2.json > out.json
//	benchjson -diff BENCH_PR2.json BENCH_PR3.json
//
// With -prev, the speedup of each parsed benchmark over the matching
// entry in the previous archive is reported on stderr alongside the
// JSON, and the process exits nonzero when any benchmark present in
// both runs grew its bytes_per_op by more than -max-bytes-growth
// (default 10%) — the allocation-regression gate `make bench-mem`
// relies on. With -diff, no stdin is read: the two archives are
// compared and the per-benchmark table (time and, when -benchmem data
// exists, bytes/allocs) goes to stdout; names present in only one
// archive are reported as new/gone rather than failing.
//
// With -scale-gate R, results whose names carry a "scale=Nx" token are
// grouped and the run fails when the ns/op ratio between the largest and
// smallest scale exceeds R — the anti-superlinear gate `make bench-scale`
// relies on (a quadratic term turns a 10x topology into a 40x+ runtime).
//
// With -mem-ceiling R, results whose names carry a "window=..." token
// are grouped and the run fails when the smallest finite window at the
// largest scale allocates more than R times the bytes_per_op of the
// smallest scale's window=unbounded anchor — the streaming-engine
// memory gate `make bench-window` relies on (a windowed 10x campaign
// whose allocations still scale with campaign size blows the ceiling).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name string `json:"name"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Loss is the injected per-link loss rate, parsed from a
	// "loss=RATE" token in the benchmark name (fault-injection benches
	// encode their fault grid in sub-benchmark names); absent otherwise.
	Loss *float64 `json:"loss,omitempty"`
	// Extra carries custom metrics keyed by their unit token — any
	// (value, unit) pair beyond the standard ns/op, B/op, allocs/op.
	// The regiond load generator reports p50_ns, p99_ns, and qps this
	// way; previously unknown units were silently dropped.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// lossRe extracts the loss rate a faulted benchmark encodes in its name,
// e.g. BenchmarkFaultedCampaign/loss=0.10-8.
var lossRe = regexp.MustCompile(`loss=([0-9.]+)`)

// scaleRe extracts the scale multiplier a scaling-curve benchmark encodes
// in its name, e.g. BenchmarkScaleCampaign/scale=10x-8.
var scaleRe = regexp.MustCompile(`scale=([0-9]+)x`)

// windowRe extracts the trace-window token a streaming-engine benchmark
// encodes in its name, e.g. BenchmarkWindowedCampaign/scale=10x/window=4096-8.
var windowRe = regexp.MustCompile(`window=([0-9]+|unbounded)`)

// parseLine parses one "BenchmarkX-8  10  123 ns/op  45 B/op  6 allocs/op"
// line; ok is false for non-benchmark output (headers, PASS, ok lines).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[fields[i+1]] = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	if m := lossRe.FindStringSubmatch(r.Name); m != nil {
		if v, err := strconv.ParseFloat(m[1], 64); err == nil {
			r.Loss = &v
		}
	}
	return r, true
}

// loadArchive reads a previously written benchjson JSON array.
func loadArchive(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// fmtMem renders an optional -benchmem value; "-" when the run was
// taken without -benchmem.
func fmtMem(v *float64) string {
	if v == nil {
		return "-"
	}
	return strconv.FormatFloat(*v, 'f', 0, 64)
}

// writeDiff prints a per-benchmark comparison of old vs new, keyed by
// benchmark name. Speedup is old/new ns/op, so >1 means the new run is
// faster; the memory columns come from -benchmem runs and show "-"
// when either side lacks them. Benchmarks present on only one side are
// listed as new/gone, never silently dropped.
func writeDiff(w io.Writer, old, new []Result) {
	byName := map[string]Result{}
	for _, r := range old {
		byName[r.Name] = r
	}
	seen := map[string]bool{}
	fmt.Fprintf(w, "%-70s %14s %14s %8s %12s %12s %10s %10s\n",
		"benchmark", "old ns/op", "new ns/op", "speedup",
		"old B/op", "new B/op", "old allocs", "new allocs")
	for _, r := range new {
		o, ok := byName[r.Name]
		if !ok {
			fmt.Fprintf(w, "%-70s %14s %14.0f %8s %12s %12s %10s %10s\n",
				r.Name, "-", r.NsPerOp, "new", "-", fmtMem(r.BytesPerOp), "-", fmtMem(r.AllocsPerOp))
			continue
		}
		seen[r.Name] = true
		fmt.Fprintf(w, "%-70s %14.0f %14.0f %7.2fx %12s %12s %10s %10s\n",
			r.Name, o.NsPerOp, r.NsPerOp, o.NsPerOp/r.NsPerOp,
			fmtMem(o.BytesPerOp), fmtMem(r.BytesPerOp), fmtMem(o.AllocsPerOp), fmtMem(r.AllocsPerOp))
	}
	for _, o := range old {
		if !seen[o.Name] {
			fmt.Fprintf(w, "%-70s %14.0f %14s %8s %12s %12s %10s %10s\n",
				o.Name, o.NsPerOp, "-", "gone", fmtMem(o.BytesPerOp), "-", fmtMem(o.AllocsPerOp), "-")
		}
	}
}

// bytesRegressions returns one message per benchmark whose bytes_per_op
// grew more than maxGrowth (fractional) over the old archive. Only
// benchmarks present in both archives with -benchmem data on both sides
// are gated; new, gone, or time-only benchmarks cannot fail the gate.
func bytesRegressions(old, new []Result, maxGrowth float64) []string {
	byName := map[string]Result{}
	for _, r := range old {
		byName[r.Name] = r
	}
	var bad []string
	for _, r := range new {
		o, ok := byName[r.Name]
		if !ok || o.BytesPerOp == nil || r.BytesPerOp == nil || *o.BytesPerOp == 0 {
			continue
		}
		if growth := *r.BytesPerOp / *o.BytesPerOp; growth > 1+maxGrowth {
			bad = append(bad, fmt.Sprintf("%s: bytes_per_op %.0f -> %.0f (%.1f%% growth, limit %.0f%%)",
				r.Name, *o.BytesPerOp, *r.BytesPerOp, (growth-1)*100, maxGrowth*100))
		}
	}
	return bad
}

// scaleGateFailures enforces the anti-superlinear gate on scaling-curve
// benchmarks: results whose names carry a "scale=Nx" token are grouped by
// family (the name with that token removed), and within each family the
// ns/op ratio between the largest and smallest scale must not exceed
// maxRatio. A topology 10x the paper's size is allowed to cost somewhat
// more than 10x (constant-overhead amortization differs), but a quadratic
// term blows far past the gate. Families with fewer than two scale points
// cannot fail.
func scaleGateFailures(results []Result, maxRatio float64) []string {
	type point struct {
		scale float64
		ns    float64
	}
	families := map[string][]point{}
	for _, r := range results {
		m := scaleRe.FindStringSubmatch(r.Name)
		if m == nil {
			continue
		}
		scale, err := strconv.ParseFloat(m[1], 64)
		if err != nil || scale == 0 {
			continue
		}
		family := strings.Replace(r.Name, m[0], "", 1)
		families[family] = append(families[family], point{scale: scale, ns: r.NsPerOp})
	}
	var bad []string
	for family, pts := range families {
		lo, hi := pts[0], pts[0]
		for _, p := range pts[1:] {
			if p.scale < lo.scale {
				lo = p
			}
			if p.scale > hi.scale {
				hi = p
			}
		}
		if lo.scale == hi.scale || lo.ns == 0 {
			continue
		}
		if ratio := hi.ns / lo.ns; ratio > maxRatio {
			bad = append(bad, fmt.Sprintf("%s: ns/op grew %.1fx from scale=%.0fx to scale=%.0fx (limit %.0fx)",
				family, ratio, lo.scale, hi.scale, maxRatio))
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: scale gate OK: %s %.0fx->%.0fx time ratio %.1fx (limit %.0fx)\n",
				family, lo.scale, hi.scale, ratio, maxRatio)
		}
	}
	return bad
}

// memCeilingFailures enforces the streaming-engine memory gate on
// window-curve benchmarks: results whose names carry a "window=..."
// token are grouped by family (the name with the window and scale=Nx
// tokens removed), and within each family the smallest finite window at
// the largest scale must keep its memory within maxRatio times the
// smallest scale's window=unbounded anchor. The gated metric is the
// benchmark's "live_bytes" extra metric when present — the post-GC
// retained heap, the peak-RSS proxy the window bench reports — falling
// back to -benchmem bytes_per_op (cumulative allocation) otherwise. A
// windowed campaign at 10x the paper footprint legitimately retains a
// few times the 1x resident run (the topology itself is 10x), but
// nowhere near the 10x a resident archive costs — O(window) memory,
// not O(campaign). Families missing the anchor, a finite window, or
// memory data cannot fail.
func memCeilingFailures(results []Result, maxRatio float64) []string {
	type point struct {
		scale  float64
		window float64 // 0 encodes window=unbounded
		mem    *float64
		unit   string
	}
	families := map[string][]point{}
	for _, r := range results {
		wm := windowRe.FindStringSubmatch(r.Name)
		if wm == nil {
			continue
		}
		p := point{scale: 1, mem: r.BytesPerOp, unit: "bytes_per_op"}
		if v, ok := r.Extra["live_bytes"]; ok {
			live := v
			p.mem, p.unit = &live, "live_bytes"
		}
		if wm[1] != "unbounded" {
			w, err := strconv.ParseFloat(wm[1], 64)
			if err != nil || w == 0 {
				continue
			}
			p.window = w
		}
		family := strings.Replace(r.Name, wm[0], "", 1)
		if sm := scaleRe.FindStringSubmatch(family); sm != nil {
			if s, err := strconv.ParseFloat(sm[1], 64); err == nil && s > 0 {
				p.scale = s
			}
			family = strings.Replace(family, sm[0], "", 1)
		}
		families[family] = append(families[family], p)
	}
	var bad []string
	for family, pts := range families {
		var anchor, gated *point
		for i := range pts {
			p := &pts[i]
			if p.mem == nil {
				continue
			}
			if p.window == 0 {
				if anchor == nil || p.scale < anchor.scale {
					anchor = p
				}
				continue
			}
			if gated == nil || p.scale > gated.scale ||
				(p.scale == gated.scale && p.window < gated.window) {
				gated = p
			}
		}
		if anchor == nil || gated == nil || *anchor.mem == 0 || anchor.unit != gated.unit {
			continue
		}
		ratio := *gated.mem / *anchor.mem
		if ratio > maxRatio {
			bad = append(bad, fmt.Sprintf(
				"%s: scale=%.0fx window=%.0f %s %.0f is %.1fx the scale=%.0fx unbounded anchor %.0f (limit %.0fx)",
				family, gated.scale, gated.window, gated.unit, *gated.mem, ratio, anchor.scale, *anchor.mem, maxRatio))
		} else {
			fmt.Fprintf(os.Stderr,
				"benchjson: mem ceiling OK: %s scale=%.0fx window=%.0f %s is %.1fx the scale=%.0fx unbounded anchor (limit %.0fx)\n",
				family, gated.scale, gated.window, gated.unit, ratio, anchor.scale, maxRatio)
		}
	}
	return bad
}

func main() {
	prev := flag.String("prev", "", "previous benchjson archive to report speedups against (stderr); exits nonzero on bytes_per_op regression")
	diff := flag.Bool("diff", false, "compare two archives given as arguments instead of reading stdin")
	maxBytesGrowth := flag.Float64("max-bytes-growth", 0.10, "with -prev: allowed fractional bytes_per_op growth before the exit status turns nonzero")
	scaleGate := flag.Float64("scale-gate", 0, "max allowed ns/op ratio between the largest and smallest scale=Nx variants of each benchmark; 0 disables")
	memCeiling := flag.Float64("mem-ceiling", 0, "max allowed bytes_per_op ratio of the smallest window=N variant over the window=unbounded smallest-scale anchor; 0 disables")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff old.json new.json")
			os.Exit(2)
		}
		old, err := loadArchive(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		cur, err := loadArchive(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		writeDiff(os.Stdout, old, cur)
		return
	}

	results := []Result{} // non-nil so no-benchmark input encodes as []
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so the human-readable report still shows
		// up on stderr when stdout is redirected to the JSON file.
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	var gateFailures []string
	if *prev != "" {
		old, err := loadArchive(*prev)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr)
		writeDiff(os.Stderr, old, results)
		gateFailures = bytesRegressions(old, results, *maxBytesGrowth)
	}
	if *scaleGate > 0 {
		gateFailures = append(gateFailures, scaleGateFailures(results, *scaleGate)...)
	}
	if *memCeiling > 0 {
		gateFailures = append(gateFailures, memCeilingFailures(results, *memCeiling)...)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	// The gate reports after the JSON is written: a regression should
	// fail the build without losing the archive that shows it.
	if len(gateFailures) > 0 {
		for _, f := range gateFailures {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", f)
		}
		os.Exit(1)
	}
}
