// Command benchjson converts `go test -bench` text output read from
// stdin into a JSON array, one object per benchmark result line, so
// bench runs can be archived and diffed (see `make bench`, which writes
// BENCH_PR2.json).
//
// Usage:
//
//	go test -bench . -benchmem | benchjson > out.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name string `json:"name"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// parseLine parses one "BenchmarkX-8  10  123 ns/op  45 B/op  6 allocs/op"
// line; ok is false for non-benchmark output (headers, PASS, ok lines).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}

func main() {
	results := []Result{} // non-nil so no-benchmark input encodes as []
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so the human-readable report still shows
		// up on stderr when stdout is redirected to the JSON file.
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}
