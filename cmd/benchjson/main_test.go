package main

import "testing"

func TestParseLineStandardUnits(t *testing.T) {
	r, ok := parseLine("BenchmarkParallelCampaign/workers=4-8 \t3\t123456789 ns/op\t4096 B/op\t77 allocs/op")
	if !ok {
		t.Fatal("standard -benchmem line did not parse")
	}
	if r.Name != "BenchmarkParallelCampaign/workers=4-8" || r.Iterations != 3 || r.NsPerOp != 123456789 {
		t.Errorf("parsed %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 4096 || r.AllocsPerOp == nil || *r.AllocsPerOp != 77 {
		t.Errorf("memory fields: %+v", r)
	}
	if r.Extra != nil {
		t.Errorf("standard units leaked into Extra: %v", r.Extra)
	}
}

// TestParseLineExtraUnits pins the contract with the regiond load
// generator: its p50_ns / p99_ns / qps pairs must survive into the
// archive instead of being dropped.
func TestParseLineExtraUnits(t *testing.T) {
	r, ok := parseLine("BenchmarkServeAll/clients=10000 \t344668 \t4577.4 ns/op \t384 p50_ns \t98304 p99_ns \t144749 qps")
	if !ok {
		t.Fatal("loadgen line did not parse")
	}
	if r.NsPerOp != 4577.4 || r.Iterations != 344668 {
		t.Errorf("parsed %+v", r)
	}
	want := map[string]float64{"p50_ns": 384, "p99_ns": 98304, "qps": 144749}
	for k, v := range want {
		if r.Extra[k] != v {
			t.Errorf("Extra[%s] = %v, want %v", k, r.Extra[k], v)
		}
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"ok  \trepro/internal/probesched\t2.1s",
		"PASS",
		"goos: linux",
		"loadgen: 344668 ops in 2.381s (144749 qps) across 3 swaps; final snapshot v4",
		"regiond loadgen: 10000 clients, 2s, 3 refresh swaps, 1 GOMAXPROCS",
		"BenchmarkBroken notanint 5 ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed non-benchmark line %q", line)
		}
	}
}

func TestParseLineLossGrid(t *testing.T) {
	r, ok := parseLine("BenchmarkFaultedCampaign/loss=0.10-8 \t3\t999 ns/op")
	if !ok || r.Loss == nil || *r.Loss != 0.10 {
		t.Fatalf("loss grid line: ok=%v r=%+v", ok, r)
	}
}
