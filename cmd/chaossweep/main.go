// Command chaossweep measures how gracefully the inference pipeline
// degrades under an injected-fault measurement plane. It sweeps a grid
// of link-loss rates (optionally with ICMP rate limiting layered on),
// reruns the full cable campaign at each cell with the resilient
// probing policy, scores the inferred maps against ground truth, and
// prints one row per cell: probe-outcome accounting, hop yield, and
// CO/edge recovery quality. The point of the table is the shape of the
// curve — recall should slide, not fall off a cliff, as the plane gets
// worse.
//
// Usage:
//
//	chaossweep [-seed N] [-isp comcast|charter] [-grid 0,0.05,0.1,0.2]
//	           [-icmp-rate N] [-retries N] [-check]
//	           [-cpuprofile FILE] [-memprofile FILE]
//
//	chaossweep -kill-after N [-isp comcast|charter] [-window W]
//
// Every cell rebuilds the same seeded scenario, so cells differ only in
// the installed fault plan; output is byte-identical at any -parallel
// value. With -check the sweep exits nonzero unless degradation is
// graceful (see the check in main).
//
// With -kill-after N the sweep becomes the crash-safety smoke instead:
// it runs the durable windowed campaign uninterrupted for a baseline
// digest, re-runs it with an injected crash at the Nth spill-log fsync
// (the process dies mid-campaign, mid-fsync), resumes a fresh study
// over the surviving spill directory, and exits nonzero unless the
// resumed digest matches the baseline bit for bit.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/probesched"
	"repro/internal/segfault"
	"repro/internal/traceroute"
)

func main() {
	var cfg cli.Config
	cfg.BindSeed(flag.CommandLine, 7)
	isp := flag.String("isp", "comcast", "operator to score: comcast or charter")
	grid := flag.String("grid", "0,0.02,0.05,0.1,0.2", "comma-separated per-link loss rates to sweep (loss compounds per link traversal, so deep hops see far higher probe loss)")
	cfg.BindICMPRate(flag.CommandLine, "per-router ICMP replies/sec cap applied at every nonzero-loss cell (0 = no rate limiting)")
	cfg.BindRetries(flag.CommandLine, 3, "per-hop attempts for the resilient cells (0 = engine default, no resilience)")
	backoff := flag.Duration("backoff", 200*time.Millisecond, "virtual backoff added per retry")
	breaker := flag.Int("breaker", 10, "circuit-breaker threshold (zero-yield traces before a VP is benched; 0 = off)")
	cfg.BindParallel(flag.CommandLine)
	cfg.BindScale(flag.CommandLine)
	cfg.BindWindow(flag.CommandLine)
	check := flag.Bool("check", false, "exit nonzero unless degradation is graceful")
	killAfter := flag.Int("kill-after", 0, "crash-safety smoke: crash the durable campaign at this spill-log fsync, resume, and require a bit-identical result (skips the loss sweep)")
	cfg.BindProfiles(flag.CommandLine, "write a CPU profile of the sweep to this file")
	flag.Parse()

	if *isp != "comcast" && *isp != "charter" {
		fmt.Fprintln(os.Stderr, "chaossweep: -isp must be comcast or charter")
		os.Exit(2)
	}
	if *killAfter > 0 {
		os.Exit(runKillResume(cfg, *isp, *killAfter))
	}
	losses, err := parseGrid(*grid)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaossweep:", err)
		os.Exit(2)
	}
	defer cfg.StartProfiling()()

	type row struct {
		loss     float64
		stats    probesched.ProbeStats
		hopYield float64
		cos      int
		recall   float64
		f1       float64
		conf     float64
	}
	var rows []row
	fmt.Printf("%-6s %8s %8s %8s %8s %7s %6s %8s %8s %6s\n",
		"loss", "sent", "lost", "ratelim", "retries", "yield", "COs", "CO-rec", "CO-F1", "conf")
	for _, loss := range losses {
		// Cells assemble options by hand rather than through cfg.Options:
		// the loss rate varies per cell and the resilience policy carries
		// the sweep's -backoff/-breaker knobs.
		opts := []core.Option{core.WithParallelism(cfg.Parallel)}
		if loss > 0 || cfg.ICMPRate > 0 {
			plan := netsim.FaultPlan{Seed: uint64(cfg.Seed), LinkLoss: loss}
			if loss > 0 {
				// Rate limiting only joins nonzero-loss cells so the
				// loss=0 column stays the pristine baseline.
				plan.ICMPRate = cfg.ICMPRate
			}
			opts = append(opts, core.WithFaults(plan))
		}
		if cfg.Retries > 0 {
			opts = append(opts, core.WithResilience(probesched.Resilience{
				Attempts:         cfg.Retries,
				RetryBackoff:     *backoff,
				BreakerThreshold: *breaker,
			}))
		}
		if cfg.Scaled() {
			opts = append(opts, core.WithScale(cfg.ScaleValue()))
		}
		if cfg.TraceWindow > 0 {
			opts = append(opts, core.WithTraceWindow(cfg.TraceWindow))
			if cfg.SpillDir != "" {
				opts = append(opts, core.WithSpillDir(cfg.SpillDir))
			}
		}
		stAny, err := core.NewStudy("cable", cfg.Seed, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaossweep:", err)
			os.Exit(1)
		}
		st := stAny.(*core.CableStudy)
		res := st.Result(*isp)
		cov := res.Coverage
		if !cov.Probes.Consistent() {
			fmt.Fprintf(os.Stderr, "chaossweep: loss=%.2f: probe ledger inconsistent: %+v\n",
				loss, cov.Probes)
			os.Exit(1)
		}
		score := st.Score(*isp)
		st.Close() // release the cell's spill files before the next cell
		r := row{
			loss:     loss,
			stats:    cov.Probes,
			hopYield: cov.HopYield(),
			recall:   meanCORecall(score),
			f1:       score.MeanF1(),
		}
		var confSum float64
		for _, rc := range cov.Regions {
			r.cos += rc.COs
			confSum += rc.MeanConfidence
		}
		if len(cov.Regions) > 0 {
			r.conf = confSum / float64(len(cov.Regions))
		}
		rows = append(rows, r)
		fmt.Printf("%-6.2f %8d %8d %8d %8d %6.1f%% %6d %8.3f %8.3f %6.2f\n",
			r.loss, r.stats.Sent, r.stats.Lost, r.stats.RateLimited, r.stats.Retries,
			100*r.hopYield, r.cos, r.recall, r.f1, r.conf)
	}

	if !*check {
		return
	}
	// Graceful-degradation check: the pristine cell must score best (or
	// tie within noise), and no moderate-loss cell may collapse below
	// half the pristine recall — that would be a cliff, not a slide.
	// "Moderate" is per-link loss <= 10%: loss compounds per traversal
	// (a probe to hop h crosses 2(h+1) links), so 10% per link already
	// means ~85% probe loss at hop 7; beyond that the plane is dark and
	// collapse is physics, not fragility.
	base := rows[0].recall
	if base == 0 {
		fmt.Fprintln(os.Stderr, "chaossweep: pristine recall is zero; nothing to degrade from")
		os.Exit(1)
	}
	const noise = 0.02
	for _, r := range rows[1:] {
		if r.recall > base+noise {
			fmt.Fprintf(os.Stderr, "chaossweep: loss=%.2f recall %.3f exceeds pristine %.3f beyond noise\n",
				r.loss, r.recall, base)
			os.Exit(1)
		}
		if r.loss <= 0.10 && r.recall < base/2 {
			fmt.Fprintf(os.Stderr, "chaossweep: cliff at loss=%.2f: recall %.3f < half of pristine %.3f\n",
				r.loss, r.recall, base)
			os.Exit(1)
		}
	}
	fmt.Println("degradation: graceful")
}

// runKillResume is the -kill-after mode: baseline, injected crash,
// resume, digest compare. The resumed study is built from scratch —
// cold simulator counters, fresh virtual clock — so only the spill
// directory's log and checkpoints carry the crashed run's state, and a
// digest match certifies the checkpoint/resume path end to end.
func runKillResume(cfg cli.Config, isp string, killAfter int) int {
	window := cfg.TraceWindow
	if window == 0 {
		window = 64 // durable spill requires windowed collection
	}
	opts := func(dir string, fsys segfault.FS) []core.Option {
		o := []core.Option{
			core.WithParallelism(cfg.Parallel),
			core.WithTraceWindow(window),
			core.WithSpillDir(dir),
			core.WithDurable(),
		}
		if fsys != nil {
			o = append(o, core.WithSpillFS(fsys))
		}
		if cfg.Scaled() {
			o = append(o, core.WithScale(cfg.ScaleValue()))
		}
		return o
	}
	// digest runs the durable study over dir and hashes everything the
	// pipeline produced: the full region-graph report plus the probe
	// ledger (the ledger catches a resume that rebuilt the right map
	// from the wrong amount of work).
	digest := func(dir string, fsys segfault.FS) (string, *traceroute.Resume, error) {
		stAny, err := core.NewStudy("cable", cfg.Seed, opts(dir, fsys)...)
		if err != nil {
			return "", nil, err
		}
		st := stAny.(*core.CableStudy)
		res, err := st.ResultContext(context.Background(), isp)
		if err != nil {
			return "", nil, err
		}
		var b strings.Builder
		if err := res.WriteJSON(&b, isp); err != nil {
			return "", nil, err
		}
		fmt.Fprintf(&b, "probes %+v\n", res.Coverage.Probes)
		sum := sha256.Sum256([]byte(b.String()))
		resumed := res.Collection.Resumed
		if err := st.Close(); err != nil {
			return "", nil, err
		}
		return hex.EncodeToString(sum[:]), resumed, nil
	}
	// crash runs the campaign expecting the injected plan to kill it;
	// anything other than a segfault.ErrCrash unwind is a real failure.
	crash := func(dir string, fsys segfault.FS) (err error) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if e, ok := r.(error); ok && errors.Is(e, segfault.ErrCrash) {
				err = nil
				return
			}
			panic(r)
		}()
		stAny, err := core.NewStudy("cable", cfg.Seed, opts(dir, fsys)...)
		if err != nil {
			return err
		}
		if _, err := stAny.(*core.CableStudy).ResultContext(context.Background(), isp); err != nil {
			return err
		}
		return fmt.Errorf("campaign survived -kill-after %d (too few spill fsyncs at window %d?)", killAfter, window)
	}

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "chaossweep:", err)
		return 1
	}
	mkdir := func(label string) (string, error) {
		return os.MkdirTemp(".", ".crash-"+label+"-")
	}

	baseDir, err := mkdir("baseline")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(baseDir)
	baseline, _, err := digest(baseDir, nil)
	if err != nil {
		return fail(fmt.Errorf("baseline run: %w", err))
	}
	fmt.Printf("baseline  %s  (isp=%s window=%d)\n", baseline, isp, window)

	killDir, err := mkdir("kill")
	if err != nil {
		return fail(err)
	}
	inj := segfault.Inject(segfault.OS, segfault.Plan{
		Seed:           uint64(cfg.Seed),
		CrashOnLogSync: killAfter,
	})
	if err := crash(killDir, inj); err != nil {
		return fail(fmt.Errorf("crash run: %w", err))
	}
	fmt.Printf("killed    campaign at spill-log fsync #%d\n", killAfter)

	resumed, rec, err := digest(killDir, nil)
	if err != nil {
		return fail(fmt.Errorf("resumed run: %w", err))
	}
	how := "restarted fresh"
	if rec != nil && rec.Resumed {
		how = "resumed from checkpoint"
	}
	fmt.Printf("resumed   %s  (%s)\n", resumed, how)

	if resumed != baseline {
		fmt.Fprintf(os.Stderr, "chaossweep: resumed digest differs from baseline — crash recovery is not bit-identical\n")
		return 1
	}
	os.RemoveAll(killDir)
	fmt.Println("crash recovery: bit-identical")
	return 0
}

// meanCORecall averages per-region CO recall.
func meanCORecall(s metrics.ISPScore) float64 {
	if len(s.Regions) == 0 {
		return 0
	}
	var sum float64
	for _, r := range s.Regions {
		sum += r.COs.Recall
	}
	return sum / float64(len(s.Regions))
}

func parseGrid(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v < 0 || v >= 1 {
			return nil, fmt.Errorf("bad -grid entry %q (want rates in [0,1))", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-grid is empty")
	}
	return out, nil
}
