package dnsdb

import (
	"fmt"
	"net/netip"
	"regexp"
	"testing"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestLookupPriority(t *testing.T) {
	d := New()
	d.SetSnapshot(a("10.0.0.1"), "old-name.example.net")
	d.SetLive(a("10.0.0.1"), "new-name.example.net")
	d.SetSnapshot(a("10.0.0.2"), "only-snapshot.example.net")
	d.SetLive(a("10.0.0.3"), "only-live.example.net")

	if n, _ := d.Name(a("10.0.0.1")); n != "new-name.example.net" {
		t.Errorf("Name prefers %q, want live record", n)
	}
	if n, _ := d.Name(a("10.0.0.2")); n != "only-snapshot.example.net" {
		t.Errorf("Name fallback = %q", n)
	}
	if n, _ := d.Name(a("10.0.0.3")); n != "only-live.example.net" {
		t.Errorf("Name live-only = %q", n)
	}
	if _, ok := d.Name(a("10.0.0.4")); ok {
		t.Error("Name for unknown address returned a record")
	}
}

func TestDigAndSnapshotAreSeparate(t *testing.T) {
	d := New()
	d.SetSnapshot(a("10.0.0.1"), "snap.example.net")
	if _, ok := d.Dig(a("10.0.0.1")); ok {
		t.Error("Dig returned a snapshot-only record")
	}
	if _, ok := d.SnapshotLookup(a("10.0.0.1")); !ok {
		t.Error("SnapshotLookup missed its record")
	}
}

func TestSetEmptyDeletes(t *testing.T) {
	d := New()
	d.SetLive(a("10.0.0.1"), "x.example.net")
	d.SetLive(a("10.0.0.1"), "")
	if _, ok := d.Dig(a("10.0.0.1")); ok {
		t.Error("empty SetLive did not delete")
	}
	d.SetSnapshot(a("10.0.0.2"), "y.example.net")
	d.SetSnapshot(a("10.0.0.2"), "")
	if d.SnapshotSize() != 0 {
		t.Error("empty SetSnapshot did not delete")
	}
}

func TestScanSnapshot(t *testing.T) {
	d := New()
	for i := 0; i < 20; i++ {
		d.SetSnapshot(a(fmt.Sprintf("10.0.0.%d", i+1)), fmt.Sprintf("host-%d.lightspeed.sndgca.sbcglobal.net", i))
	}
	for i := 0; i < 5; i++ {
		d.SetSnapshot(a(fmt.Sprintf("10.0.1.%d", i+1)), fmt.Sprintf("cr%d.sd2ca.ip.att.net", i))
	}
	re := regexp.MustCompile(`\.lightspeed\.[a-z]{6}\.sbcglobal\.net$`)
	got := d.ScanSnapshot(re)
	if len(got) != 20 {
		t.Fatalf("matched %d entries, want 20", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Addr.Less(got[i].Addr) {
			t.Fatal("scan results not sorted by address")
		}
	}
	if d.SnapshotSize() != 25 || d.LiveSize() != 0 {
		t.Errorf("sizes = %d live %d snapshot", d.LiveSize(), d.SnapshotSize())
	}
}
