// Package dnsdb models the two reverse-DNS sources the paper combines: a
// live zone queried with dig, and a periodically-captured whole-Internet
// snapshot in the style of Rapid7's Sonar rDNS dataset. The snapshot is
// what campaigns scan for target selection; the live zone is fresher and
// is preferred when mapping addresses to COs (Appendix B.1).
//
// The topology generators populate both layers, injecting the staleness
// and gaps that drive the paper's filtering heuristics: snapshot entries
// may be missing, and either layer may carry an outdated name from a
// previous assignment of the address.
package dnsdb

import (
	"net/netip"
	"regexp"
	"sort"

	"repro/internal/probesched"
	"repro/internal/symtab"
)

// DB holds the live PTR zone and the scanned snapshot. Both layers store
// interned name symbols rather than strings: an address whose live and
// snapshot records agree (the common case — staleness is the exception
// the generators inject) references one table entry instead of carrying
// two map values, and lookups hand back the table's canonical string
// instance, so repeated Name calls never copy. The table is append-only;
// deleting a record drops the address key but retains the (shared) name,
// which is the right trade for snapshot-scale churn.
type DB struct {
	names    *symtab.Table
	live     map[netip.Addr]symtab.Sym
	snapshot map[netip.Addr]symtab.Sym
	// sorted is the lazily built address-ordered snapshot index that
	// ScanSnapshot filters; nil means stale (rebuilt on next scan).
	// Mutators invalidate it, so the per-scan cost is one pass over the
	// index instead of a fresh sort of the whole snapshot every call.
	sorted []Entry
}

// New returns an empty database.
func New() *DB {
	return &DB{
		names:    symtab.New(0),
		live:     map[netip.Addr]symtab.Sym{},
		snapshot: map[netip.Addr]symtab.Sym{},
	}
}

// SetLive records the current PTR record for addr (what dig returns).
func (d *DB) SetLive(addr netip.Addr, name string) {
	d.sorted = nil
	if name == "" {
		delete(d.live, addr)
		return
	}
	d.live[addr] = d.names.Intern(name)
}

// SetSnapshot records the PTR record captured in the scan dataset.
func (d *DB) SetSnapshot(addr netip.Addr, name string) {
	d.sorted = nil
	if name == "" {
		delete(d.snapshot, addr)
		return
	}
	d.snapshot[addr] = d.names.Intern(name)
}

// Dig performs a live PTR lookup.
func (d *DB) Dig(addr netip.Addr) (string, bool) {
	s, ok := d.live[addr]
	if !ok {
		return "", false
	}
	return d.names.Str(s), true
}

// SnapshotLookup returns the snapshot PTR record for addr.
func (d *DB) SnapshotLookup(addr netip.Addr) (string, bool) {
	s, ok := d.snapshot[addr]
	if !ok {
		return "", false
	}
	return d.names.Str(s), true
}

// Name implements the paper's lookup priority: the live record when one
// exists, the snapshot otherwise.
func (d *DB) Name(addr netip.Addr) (string, bool) {
	if s, ok := d.live[addr]; ok {
		return d.names.Str(s), true
	}
	s, ok := d.snapshot[addr]
	if !ok {
		return "", false
	}
	return d.names.Str(s), true
}

// Entry is one (address, hostname) pair from the snapshot.
type Entry struct {
	Addr netip.Addr
	Name string
}

// sortedIndex returns the address-ordered snapshot, rebuilding it if a
// mutator ran since the last scan.
func (d *DB) sortedIndex() []Entry {
	if d.sorted == nil && len(d.snapshot) > 0 {
		idx := make([]Entry, 0, len(d.snapshot))
		for a, s := range d.snapshot {
			idx = append(idx, Entry{Addr: a, Name: d.names.Str(s)})
		}
		sort.Slice(idx, func(i, j int) bool { return idx[i].Addr.Less(idx[j].Addr) })
		d.sorted = idx
	}
	return d.sorted
}

// ScanSnapshot returns every snapshot entry whose hostname matches re,
// sorted by address; this is the paper's Rapid7-based target selection.
// Successive scans (campaigns run one per stage per operator) share one
// lazily built sorted index instead of re-sorting the snapshot per call.
func (d *DB) ScanSnapshot(re *regexp.Regexp) []Entry {
	return d.ScanSnapshotParallel(re, 1)
}

// ScanSnapshotParallel is ScanSnapshot with the regex filter sharded
// across workers (0 selects GOMAXPROCS): contiguous index shards
// collect their hits privately and the per-shard hit lists concatenate
// in shard order, so the output is the same address-sorted entry list
// at any worker count. The index build itself stays serial (one sort,
// amortized across scans); matching is where the time goes on
// Rapid7-scale snapshots.
func (d *DB) ScanSnapshotParallel(re *regexp.Regexp, workers int) []Entry {
	idx := d.sortedIndex()
	pool := probesched.New(workers, nil)
	return probesched.Reduce(pool, len(idx),
		func() []Entry { return nil },
		func(out []Entry, i int) []Entry {
			if re.MatchString(idx[i].Name) {
				out = append(out, idx[i])
			}
			return out
		},
		func(into, from []Entry) []Entry { return append(into, from...) })
}

// SnapshotSize reports the number of snapshot records.
func (d *DB) SnapshotSize() int { return len(d.snapshot) }

// LiveSize reports the number of live records.
func (d *DB) LiveSize() int { return len(d.live) }
