package prefixset

import (
	"math/rand"
	"net/netip"
	"testing"
)

func mustP(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func mustA(s string) netip.Addr   { return netip.MustParseAddr(s) }

// TestPairKey4Stability pins the packed pair-key bit layout: src in
// the high 32 bits, dst in the low 32, big-endian byte order. The
// campaign flush dedup and its presized map footprint were validated
// against exactly this layout; a change here would silently invalidate
// the golden campaign digests' performance envelope.
func TestPairKey4Stability(t *testing.T) {
	cases := []struct {
		src, dst string
		want     uint64
	}{
		{"0.0.0.0", "0.0.0.0", 0x0000000000000000},
		{"1.2.3.4", "5.6.7.8", 0x0102030405060708},
		{"255.255.255.255", "0.0.0.1", 0xFFFFFFFF00000001},
		{"10.0.0.1", "10.0.0.1", 0x0A0000010A000001},
		{"192.168.1.254", "172.16.254.1", 0xC0A801FEAC10FE01},
	}
	for _, c := range cases {
		got, ok := PairKey4(mustA(c.src), mustA(c.dst))
		if !ok || got != c.want {
			t.Errorf("PairKey4(%s, %s) = %#x, %v; want %#x, true", c.src, c.dst, got, ok, c.want)
		}
	}
	// Non-v4 operands (including 4-in-6) must refuse, matching the
	// historical Is4 guard.
	if _, ok := PairKey4(mustA("::1"), mustA("1.2.3.4")); ok {
		t.Error("PairKey4 accepted a v6 src")
	}
	if _, ok := PairKey4(mustA("::ffff:1.2.3.4"), mustA("5.6.7.8")); ok {
		t.Error("PairKey4 accepted a 4-in-6 src")
	}
}

func TestSetAddContains(t *testing.T) {
	s := NewSet(mustP("10.0.0.0/8"), mustP("192.168.1.0/24"), mustP("2001:db8::/32"))
	for _, a := range []string{"10.1.2.3", "10.255.255.255", "192.168.1.77", "2001:db8::1"} {
		if !s.Contains(mustA(a)) {
			t.Errorf("Contains(%s) = false, want true", a)
		}
	}
	for _, a := range []string{"11.0.0.1", "192.168.2.1", "2001:db9::1"} {
		if s.Contains(mustA(a)) {
			t.Errorf("Contains(%s) = true, want false", a)
		}
	}
	// Family separation: a v4 address must never match a v6 prefix
	// covering its 4-in-6 image, and vice versa.
	s2 := NewSet(mustP("::ffff:0a00:0000/104"))
	if s2.Contains(mustA("10.1.2.3")) {
		t.Error("v4 address matched a v6 prefix")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if got := NewSet(mustP("10.0.0.0/8"), mustP("10.0.0.0/8")).Len(); got != 1 {
		t.Errorf("duplicate Add counted: Len = %d, want 1", got)
	}
}

func TestSetEachCanonicalOrder(t *testing.T) {
	s := NewSet(
		mustP("10.0.1.0/24"), mustP("10.0.0.0/16"), mustP("9.0.0.0/8"),
		mustP("10.0.1.128/25"), mustP("172.16.0.0/12"),
	)
	want := []string{"9.0.0.0/8", "10.0.0.0/16", "10.0.1.0/24", "10.0.1.128/25", "172.16.0.0/12"}
	got := s.Prefixes()
	if len(got) != len(want) {
		t.Fatalf("got %d prefixes, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("Prefixes()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestAggregate(t *testing.T) {
	cases := []struct {
		in, want []string
	}{
		// Exact sibling halves merge, recursively.
		{[]string{"10.0.0.0/25", "10.0.0.128/25"}, []string{"10.0.0.0/24"}},
		{[]string{"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"}, []string{"10.0.0.0/22"}},
		// Covered detail disappears.
		{[]string{"10.0.0.0/8", "10.1.2.0/24", "10.9.9.9/32"}, []string{"10.0.0.0/8"}},
		// Non-siblings never merge.
		{[]string{"10.0.1.0/24", "10.0.2.0/24"}, []string{"10.0.1.0/24", "10.0.2.0/24"}},
		// Merge then the pair is covered by nothing further.
		{[]string{"0.0.0.0/1", "128.0.0.0/1"}, []string{"0.0.0.0/0"}},
	}
	for _, c := range cases {
		in := NewSet()
		for _, p := range c.in {
			in.Add(mustP(p))
		}
		got := in.Aggregate().Prefixes()
		if len(got) != len(c.want) {
			t.Errorf("Aggregate(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i].String() != c.want[i] {
				t.Errorf("Aggregate(%v)[%d] = %s, want %s", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestEachAddrOrderedAndDeduped(t *testing.T) {
	s := NewSet(mustP("10.0.0.0/30"), mustP("10.0.0.2/32"), mustP("10.0.0.8/31"))
	want := []string{"10.0.0.0", "10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.8", "10.0.0.9"}
	got := s.Addrs()
	if len(got) != len(want) {
		t.Fatalf("Addrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("Addrs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

// brute is the oracle: an explicit membership function over a bounded
// universe.
type brute func(a netip.Addr) bool

func bruteOf(ps []netip.Prefix) brute {
	return func(a netip.Addr) bool {
		for _, p := range ps {
			if p.Contains(a) {
				return true
			}
		}
		return false
	}
}

// universe16 enumerates 10.7.x.y — 65536 addresses, small enough to
// brute-force every set-algebra law against.
func universe16(f func(a netip.Addr)) {
	for x := 0; x < 256; x++ {
		for y := 0; y < 256; y++ {
			f(netip.AddrFrom4([4]byte{10, 7, byte(x), byte(y)}))
		}
	}
}

func randomPrefixes(rng *rand.Rand, n int) []netip.Prefix {
	out := make([]netip.Prefix, 0, n)
	for i := 0; i < n; i++ {
		bits := 18 + rng.Intn(15) // /18../32, all inside or overlapping 10.7/16
		a := netip.AddrFrom4([4]byte{10, 7, byte(rng.Intn(256)), byte(rng.Intn(256))})
		p, err := a.Prefix(bits)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

// TestSetAlgebraAgainstBruteForce drives Union/Intersect/Diff/
// Aggregate over seeded random prefix soups and checks membership of
// every address in the universe against the brute-force oracle.
func TestSetAlgebraAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		psA := randomPrefixes(rng, 2+rng.Intn(10))
		psB := randomPrefixes(rng, 2+rng.Intn(10))
		A, B := NewSet(psA...), NewSet(psB...)
		bA, bB := bruteOf(psA), bruteOf(psB)

		union := A.Union(B)
		inter := A.Intersect(B)
		diff := A.Diff(B)
		agg := A.Aggregate()

		universe16(func(a netip.Addr) {
			if got, want := union.Contains(a), bA(a) || bB(a); got != want {
				t.Fatalf("round %d: Union.Contains(%s) = %v, want %v", round, a, got, want)
			}
			if got, want := inter.Contains(a), bA(a) && bB(a); got != want {
				t.Fatalf("round %d: Intersect.Contains(%s) = %v, want %v", round, a, got, want)
			}
			if got, want := diff.Contains(a), bA(a) && !bB(a); got != want {
				t.Fatalf("round %d: Diff.Contains(%s) = %v, want %v", round, a, got, want)
			}
			if got, want := agg.Contains(a), bA(a); got != want {
				t.Fatalf("round %d: Aggregate.Contains(%s) = %v, want %v", round, a, got, want)
			}
		})

		// Aggregate must be canonical: disjoint, sorted, and stable
		// under re-aggregation.
		aggPs := agg.Prefixes()
		for i := 1; i < len(aggPs); i++ {
			if aggPs[i-1].Overlaps(aggPs[i]) {
				t.Fatalf("round %d: aggregate not disjoint: %s overlaps %s", round, aggPs[i-1], aggPs[i])
			}
			if !aggPs[i-1].Addr().Less(aggPs[i].Addr()) {
				t.Fatalf("round %d: aggregate out of order: %s before %s", round, aggPs[i-1], aggPs[i])
			}
		}
		if !agg.Aggregate().Equal(agg) {
			t.Fatalf("round %d: aggregate not a fixed point", round)
		}
	}
}

func TestTablePutGetDelete(t *testing.T) {
	var tb Table
	if _, ok := tb.Get(mustP("10.0.0.0/8")); ok {
		t.Fatal("Get on empty table succeeded")
	}
	tb.Put(mustP("10.0.0.0/8"), 1)
	tb.Put(mustP("10.0.0.0/16"), 2)
	tb.Put(mustP("10.0.0.0/24"), 3)
	if v, ok := tb.Lookup(mustA("10.0.0.9")); !ok || v != 3 {
		t.Errorf("Lookup(10.0.0.9) = %d, %v; want 3, true", v, ok)
	}
	if v, ok := tb.Lookup(mustA("10.0.9.9")); !ok || v != 2 {
		t.Errorf("Lookup(10.0.9.9) = %d, %v; want 2, true", v, ok)
	}
	if v, ok := tb.Lookup(mustA("10.9.9.9")); !ok || v != 1 {
		t.Errorf("Lookup(10.9.9.9) = %d, %v; want 1, true", v, ok)
	}
	if _, ok := tb.Lookup(mustA("11.0.0.1")); ok {
		t.Error("Lookup(11.0.0.1) matched")
	}
	if prev, existed := tb.Put(mustP("10.0.0.0/16"), 9); !existed || prev != 2 {
		t.Errorf("Put overwrite: prev=%d existed=%v; want 2, true", prev, existed)
	}
	if v, _ := tb.Get(mustP("10.0.0.0/16")); v != 9 {
		t.Errorf("Get after overwrite = %d, want 9", v)
	}
	if tb.PutIfAbsent(mustP("10.0.0.0/16"), 7) {
		t.Error("PutIfAbsent replaced an existing entry")
	}
	if v, _ := tb.Get(mustP("10.0.0.0/16")); v != 9 {
		t.Errorf("PutIfAbsent clobbered: Get = %d, want 9", v)
	}
	if !tb.Delete(mustP("10.0.0.0/16")) {
		t.Error("Delete of present prefix returned false")
	}
	if tb.Delete(mustP("10.0.0.0/16")) {
		t.Error("Delete of absent prefix returned true")
	}
	if v, ok := tb.Lookup(mustA("10.0.9.9")); !ok || v != 1 {
		t.Errorf("Lookup after delete = %d, %v; want 1, true (fell back to /8)", v, ok)
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tb.Len())
	}
}

// TestDeleteRestoresStructure: a table that stored and deleted a
// prefix must compile byte-identically to one that never saw it.
func TestDeleteRestoresStructure(t *testing.T) {
	var a, b Table
	for _, p := range []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "172.16.0.0/12"} {
		a.Put(mustP(p), 1)
		b.Put(mustP(p), 1)
	}
	a.Put(mustP("10.1.3.0/24"), 5)
	a.Put(mustP("192.168.0.0/16"), 6)
	a.Delete(mustP("10.1.3.0/24"))
	a.Delete(mustP("192.168.0.0/16"))
	ca, cb := a.Compile(), b.Compile()
	if ca.Nodes() != cb.Nodes() || ca.Len() != cb.Len() {
		t.Fatalf("structure differs: nodes %d vs %d, len %d vs %d",
			ca.Nodes(), cb.Nodes(), ca.Len(), cb.Len())
	}
	for i := 0; i < ca.Nodes(); i++ {
		if ca.hi[i] != cb.hi[i] || ca.lo[i] != cb.lo[i] || ca.bits[i] != cb.bits[i] ||
			ca.has[i] != cb.has[i] || ca.left[i] != cb.left[i] || ca.right[i] != cb.right[i] {
			t.Fatalf("node %d differs after delete round-trip", i)
		}
	}
}

// TestCompiledMatchesMutable: the compiled walk must agree with the
// mutable trie's lookup on random tables and random probes, v4 and v6.
func TestCompiledMatchesMutable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tb Table
	for i := 0; i < 4000; i++ {
		var a netip.Addr
		var bits int
		if i%5 == 0 {
			var b [16]byte
			rng.Read(b[:])
			b[0], b[1] = 0x20, 0x01
			a = netip.AddrFrom16(b)
			bits = 16 + rng.Intn(113)
		} else {
			a = netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
			bits = 8 + rng.Intn(25)
		}
		p, err := a.Prefix(bits)
		if err != nil {
			continue
		}
		tb.PutIfAbsent(p, int32(i))
	}
	c := tb.Compile()
	if c.Len() != tb.Len() {
		t.Fatalf("Compiled.Len = %d, Table.Len = %d", c.Len(), tb.Len())
	}
	for i := 0; i < 20000; i++ {
		var probe netip.Addr
		if i%4 == 0 {
			var b [16]byte
			rng.Read(b[:])
			b[0], b[1] = 0x20, 0x01
			probe = netip.AddrFrom16(b)
		} else {
			probe = netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
		}
		mv, mok := tb.Lookup(probe)
		cv, cok := c.Lookup(probe)
		if mv != cv || mok != cok {
			t.Fatalf("probe %s: mutable (%d,%v) != compiled (%d,%v)", probe, mv, mok, cv, cok)
		}
	}
}

func BenchmarkCompiledLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var tb Table
	for i := 0; i < 100000; i++ {
		a := netip.AddrFrom4([4]byte{byte(rng.Intn(64)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
		p, _ := a.Prefix(12 + rng.Intn(13))
		tb.PutIfAbsent(p, int32(i))
	}
	c := tb.Compile()
	probes := make([]netip.Addr, 1024)
	for i := range probes {
		probes[i] = netip.AddrFrom4([4]byte{byte(rng.Intn(64)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
	}
	b.ReportMetric(float64(c.Nodes()), "nodes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(probes[i%len(probes)])
	}
}

func BenchmarkTableBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	type entry struct {
		p netip.Prefix
		v int32
	}
	entries := make([]entry, 0, 100000)
	for i := 0; i < 100000; i++ {
		a := netip.AddrFrom4([4]byte{byte(rng.Intn(64)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
		p, _ := a.Prefix(12 + rng.Intn(13))
		entries = append(entries, entry{p, int32(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tb Table
		for _, e := range entries {
			tb.PutIfAbsent(e.p, e.v)
		}
		tb.Compile()
	}
}
