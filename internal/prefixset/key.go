// Package prefixset is the address-set algebra engine: a
// path-compressed binary trie over 128-bit-capable keys with set
// operations (union, intersection, difference, aggregation), canonical
// iteration, a value-carrying table variant, and a compiled immutable
// form for lookup-heavy consumers (the netsim FIB and the snapshot
// address index). One trie node per branching point — never one per
// bit — keeps a million-route table at a few million nodes of walk
// depth bounded by the key width, and the compiled form flattens the
// node graph into structure-of-arrays storage so a longest-prefix
// match is a handful of cache lines with zero pointer chasing.
//
// IPv4 and IPv6 never share a trie: v4 keys occupy the top 32 bits of
// a separate 32-bit-deep root, so a v4 lookup can never match a v6
// prefix or vice versa (the same family separation the per-bit-length
// masked tables enforced via Addr.Prefix errors). 4-in-6 mapped
// addresses are treated by their native bit length, matching
// netip.Prefix semantics throughout the repo.
package prefixset

import (
	"encoding/binary"
	"math/bits"
	"net/netip"
)

// key is an address value in trie bit order: bit 0 is the most
// significant bit of hi. IPv4 addresses occupy hi's top 32 bits and
// live in the 32-bit v4 trie; IPv6 uses the full 128 bits.
type key struct{ hi, lo uint64 }

// keyOf converts an address to its trie key and family width (32 or
// 128).
func keyOf(a netip.Addr) (key, uint8) {
	if a.Is4() {
		b := a.As4()
		return key{hi: uint64(binary.BigEndian.Uint32(b[:])) << 32}, 32
	}
	b := a.As16()
	return key{hi: binary.BigEndian.Uint64(b[:8]), lo: binary.BigEndian.Uint64(b[8:])}, 128
}

// masked zeroes every bit of k past the first b.
func (k key) masked(b uint8) key {
	switch {
	case b == 0:
		return key{}
	case b <= 64:
		return key{hi: k.hi & (^uint64(0) << (64 - b))}
	case b >= 128:
		return k
	default:
		return key{hi: k.hi, lo: k.lo & (^uint64(0) << (128 - b))}
	}
}

// bit returns bit i of k (0 = most significant).
func (k key) bit(i uint8) int {
	if i < 64 {
		return int(k.hi >> (63 - i) & 1)
	}
	return int(k.lo >> (127 - i) & 1)
}

// withBit returns k with bit i set to v, masked to i+1 bits.
func (k key) withBit(i uint8, v int) key {
	k = k.masked(i + 1)
	if v == 0 {
		return k.masked(i)
	}
	if i < 64 {
		k.hi |= 1 << (63 - i)
	} else {
		k.lo |= 1 << (127 - i)
	}
	return k
}

// commonBits counts the leading bits a and b share, capped at max.
func commonBits(a, b key, max uint8) uint8 {
	n := uint8(bits.LeadingZeros64(a.hi ^ b.hi))
	if n == 64 {
		n += uint8(bits.LeadingZeros64(a.lo ^ b.lo))
	}
	if n > max {
		n = max
	}
	return n
}

// prefix reconstructs the netip.Prefix for a key of b bits in the
// given family (v4 keys live in the top 32 bits).
func (k key) prefix(b uint8, v4 bool) netip.Prefix {
	if v4 {
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(k.hi>>32))
		return netip.PrefixFrom(netip.AddrFrom4(buf), int(b))
	}
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], k.hi)
	binary.BigEndian.PutUint64(buf[8:], k.lo)
	return netip.PrefixFrom(netip.AddrFrom16(buf), int(b))
}

// addr reconstructs the address for a full-width key.
func (k key) addr(v4 bool) netip.Addr {
	if v4 {
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(k.hi>>32))
		return netip.AddrFrom4(buf)
	}
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], k.hi)
	binary.BigEndian.PutUint64(buf[8:], k.lo)
	return netip.AddrFrom16(buf)
}

// next returns the key one address after k at full family width, and
// ok=false on wraparound. Used by address iteration over small sets.
func (k key) next(v4 bool) (key, bool) {
	if v4 {
		v := uint32(k.hi >> 32)
		if v == ^uint32(0) {
			return key{}, false
		}
		return key{hi: uint64(v+1) << 32}, true
	}
	lo := k.lo + 1
	hi := k.hi
	if lo == 0 {
		hi++
		if hi == 0 {
			return key{}, false
		}
	}
	return key{hi: hi, lo: lo}, true
}

// PairKey4 packs an IPv4 (src, dst) pair into one injective uint64 —
// src in the high 32 bits, dst in the low 32 — for flat dedup sets.
// This is the single shared definition of the packed pair key the
// campaign flush dedup relies on (it was previously open-coded at the
// use sites); its bit layout is pinned by TestPairKey4Stability and
// must never change, since presized map footprints and the golden
// campaign digests were validated against it. ok is false for any
// non-IPv4 operand (including 4-in-6 mapped addresses, which As4 would
// accept but the historical open-coded Is4 guard rejected).
func PairKey4(src, dst netip.Addr) (uint64, bool) {
	if !src.Is4() || !dst.Is4() {
		return 0, false
	}
	s, d := src.As4(), dst.As4()
	return uint64(binary.BigEndian.Uint32(s[:]))<<32 | uint64(binary.BigEndian.Uint32(d[:])), true
}
