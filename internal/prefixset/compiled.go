package prefixset

import "net/netip"

// Compiled is the immutable, flattened form of a trie pair: the node
// graph laid out as structure-of-arrays (preorder per family), child
// links as int32 indices, terminal values inline. Lookup is a pure
// array walk — no pointers, no maps, no per-bit-length probes — so a
// longest-prefix match over a million-route table touches a handful
// of cache lines. A Compiled is safe for unlimited concurrent use.
type Compiled struct {
	hi, lo []uint64
	bits   []uint8
	// has marks terminal nodes; val is the stored value (Table) or 0
	// (Set).
	has []bool
	val []int32
	// left/right are child indices; -1 = none.
	left, right []int32
	// root4/root6 index each family's root; -1 = empty family.
	root4, root6 int32
	// n is the stored prefix count.
	n int
}

// compile flattens both family tries.
func compile(v4, v6 *trie) *Compiled {
	c := &Compiled{root4: -1, root6: -1, n: v4.n + v6.n}
	total := countNodes(v4.root) + countNodes(v6.root)
	c.hi = make([]uint64, 0, total)
	c.lo = make([]uint64, 0, total)
	c.bits = make([]uint8, 0, total)
	c.has = make([]bool, 0, total)
	c.val = make([]int32, 0, total)
	c.left = make([]int32, 0, total)
	c.right = make([]int32, 0, total)
	c.root4 = c.flatten(v4.root)
	c.root6 = c.flatten(v6.root)
	return c
}

// flatten appends the subtree in preorder and returns its root index.
func (c *Compiled) flatten(n *node) int32 {
	if n == nil {
		return -1
	}
	i := int32(len(c.hi))
	c.hi = append(c.hi, n.k.hi)
	c.lo = append(c.lo, n.k.lo)
	c.bits = append(c.bits, n.bits)
	c.has = append(c.has, n.has)
	c.val = append(c.val, n.val)
	c.left = append(c.left, -1)
	c.right = append(c.right, -1)
	c.left[i] = c.flatten(n.child[0])
	c.right[i] = c.flatten(n.child[1])
	return i
}

// Len is the number of stored prefixes.
func (c *Compiled) Len() int { return c.n }

// Nodes is the flattened node count (sizing diagnostics).
func (c *Compiled) Nodes() int { return len(c.bits) }

// Lookup returns the value of the longest stored prefix covering a,
// or ok=false when no prefix matches. Family separation is structural:
// a v4 address only ever walks the v4 root.
func (c *Compiled) Lookup(a netip.Addr) (int32, bool) {
	k, kb := keyOf(a)
	i := c.root6
	if a.Is4() {
		i = c.root4
	}
	best, found := int32(0), false
	for i >= 0 {
		b := c.bits[i]
		if b > kb {
			break
		}
		nk := key{hi: c.hi[i], lo: c.lo[i]}
		if commonBits(nk, k, b) < b {
			break
		}
		if c.has[i] {
			best, found = c.val[i], true
		}
		if b == kb {
			break
		}
		if k.bit(b) == 0 {
			i = c.left[i]
		} else {
			i = c.right[i]
		}
	}
	return best, found
}

// Contains reports whether a is covered by any stored prefix.
func (c *Compiled) Contains(a netip.Addr) bool {
	_, ok := c.Lookup(a)
	return ok
}

// Each walks the stored prefixes in the same canonical order as
// Set.Each.
func (c *Compiled) Each(f func(netip.Prefix, int32) bool) {
	if !c.eachFrom(c.root4, true, f) {
		return
	}
	c.eachFrom(c.root6, false, f)
}

func (c *Compiled) eachFrom(i int32, v4 bool, f func(netip.Prefix, int32) bool) bool {
	if i < 0 {
		return true
	}
	if c.has[i] {
		k := key{hi: c.hi[i], lo: c.lo[i]}
		if !f(k.prefix(c.bits[i], v4), c.val[i]) {
			return false
		}
	}
	return c.eachFrom(c.left[i], v4, f) && c.eachFrom(c.right[i], v4, f)
}
