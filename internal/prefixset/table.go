package prefixset

import "net/netip"

// Table is a mutable prefix → int32 map with longest-prefix-match
// lookup, the value-carrying sibling of Set: the netsim FIB maps
// prefixes to owner indices through one, and the snapshot address
// index maps interface blocks to CO indices. The zero value is an
// empty table. Not safe for concurrent mutation; Compile for the
// lock-free read side.
type Table struct {
	v4, v6 trie
}

func (t *Table) tree(v4 bool) *trie {
	if v4 {
		return &t.v4
	}
	return &t.v6
}

// Put stores prefix → v, overwriting any previous value; prev/existed
// report what was there.
func (t *Table) Put(p netip.Prefix, v int32) (prev int32, existed bool) {
	k, _ := keyOf(p.Addr())
	tr := t.tree(p.Addr().Is4())
	if old := get(tr.root, k, uint8(p.Bits())); old != nil {
		prev, existed = old.val, true
	}
	var added bool
	tr.root, added = insert(tr.root, k, uint8(p.Bits()), v, true)
	if added {
		tr.n++
	}
	return prev, existed
}

// PutIfAbsent stores prefix → v only when the exact prefix is not yet
// present; ok reports whether the store happened. This is the
// first-declaration-wins discipline the FIB build needs.
func (t *Table) PutIfAbsent(p netip.Prefix, v int32) bool {
	k, _ := keyOf(p.Addr())
	tr := t.tree(p.Addr().Is4())
	var added bool
	tr.root, added = insert(tr.root, k, uint8(p.Bits()), v, false)
	if added {
		tr.n++
	}
	return added
}

// Get returns the value stored for exactly p.
func (t *Table) Get(p netip.Prefix) (int32, bool) {
	k, _ := keyOf(p.Addr())
	if n := get(t.tree(p.Addr().Is4()).root, k, uint8(p.Bits())); n != nil {
		return n.val, true
	}
	return 0, false
}

// Delete removes exactly p; ok reports whether it was present. The
// trie re-collapses, so a table that stored and deleted a prefix
// compiles byte-identically to one that never saw it.
func (t *Table) Delete(p netip.Prefix) bool {
	k, _ := keyOf(p.Addr())
	tr := t.tree(p.Addr().Is4())
	var removed bool
	tr.root, removed = remove(tr.root, k, uint8(p.Bits()))
	if removed {
		tr.n--
	}
	return removed
}

// Lookup returns the value of the longest stored prefix covering a.
func (t *Table) Lookup(a netip.Addr) (int32, bool) {
	k, kb := keyOf(a)
	return lookup(t.tree(a.Is4()).root, k, kb)
}

// Len is the stored prefix count.
func (t *Table) Len() int { return t.v4.n + t.v6.n }

// Each walks (prefix, value) pairs in canonical order.
func (t *Table) Each(f func(netip.Prefix, int32) bool) {
	ok := true
	walk := func(n *node, v4 bool) {
		var rec func(n *node) bool
		rec = func(n *node) bool {
			if n == nil {
				return true
			}
			if n.has && !f(n.k.prefix(n.bits, v4), n.val) {
				return false
			}
			return rec(n.child[0]) && rec(n.child[1])
		}
		if ok {
			ok = rec(n)
		}
	}
	walk(t.v4.root, true)
	walk(t.v6.root, false)
}

// Compile freezes the table into its immutable lookup form.
func (t *Table) Compile() *Compiled { return compile(&t.v4, &t.v6) }
