package prefixset

import "net/netip"

// Set is a mutable address set represented as prefixes in a pair of
// path-compressed tries (one per family). The set's semantics are over
// addresses: two Sets storing different prefix decompositions of the
// same address space are Equal, and Aggregate canonicalizes any Set to
// its minimal prefix list. The zero value is an empty set ready to
// use. Not safe for concurrent mutation; Compile for the lock-free
// read side.
type Set struct {
	v4, v6 trie
}

// NewSet returns an empty set pre-seeded with the given prefixes.
func NewSet(prefixes ...netip.Prefix) *Set {
	s := &Set{}
	for _, p := range prefixes {
		s.Add(p)
	}
	return s
}

func (s *Set) tree(v4 bool) *trie {
	if v4 {
		return &s.v4
	}
	return &s.v6
}

// Add inserts a prefix; adding a stored prefix is a no-op. Returns s
// for chaining.
func (s *Set) Add(p netip.Prefix) *Set {
	k, _ := keyOf(p.Addr())
	t := s.tree(p.Addr().Is4())
	var added bool
	t.root, added = insert(t.root, k, uint8(p.Bits()), 0, false)
	if added {
		t.n++
	}
	return s
}

// AddAddr inserts a single address (a full-width prefix).
func (s *Set) AddAddr(a netip.Addr) *Set {
	return s.Add(netip.PrefixFrom(a, a.BitLen()))
}

// Len is the number of stored prefixes (not covered addresses; a Set
// holding 10.0.0.0/8 has Len 1).
func (s *Set) Len() int { return s.v4.n + s.v6.n }

// Contains reports whether the address is covered by any stored
// prefix.
func (s *Set) Contains(a netip.Addr) bool {
	k, kb := keyOf(a)
	_, ok := lookup(s.tree(a.Is4()).root, k, kb)
	return ok
}

// Encloses reports whether a single stored prefix covers all of p.
func (s *Set) Encloses(p netip.Prefix) bool {
	k, _ := keyOf(p.Addr())
	b := uint8(p.Bits())
	n := s.tree(p.Addr().Is4()).root
	for n != nil && n.bits <= b {
		if commonBits(n.k, k, n.bits) < n.bits {
			return false
		}
		if n.has {
			return true
		}
		if n.bits == b {
			return false
		}
		n = n.child[k.bit(n.bits)]
	}
	return false
}

// Each walks the stored prefixes in canonical order (a prefix before
// any longer prefix inside it; disjoint prefixes in ascending address
// order), stopping early if f returns false.
func (s *Set) Each(f func(netip.Prefix) bool) {
	if !each(s.v4.root, true, f) {
		return
	}
	each(s.v6.root, false, f)
}

// Prefixes returns the stored prefixes in canonical order.
func (s *Set) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, s.Len())
	s.Each(func(p netip.Prefix) bool { out = append(out, p); return true })
	return out
}

// EachAddr enumerates every covered address in strictly ascending
// order (v4 first), with overlap between stored prefixes collapsed.
// Only sane for sets covering a bounded address count — target lists,
// not announced pools.
func (s *Set) EachAddr(f func(netip.Addr) bool) {
	walk := func(t *trie, v4 bool) bool {
		width := uint8(32)
		if !v4 {
			width = 128
		}
		ok := true
		eachAggregated(t.root, width, func(k key, b uint8) bool {
			cur := k
			for {
				if !f(cur.addr(v4)) {
					ok = false
					return false
				}
				nx, carry := cur.next(v4)
				if !carry {
					return true
				}
				// Stop once the increment leaves the span.
				if commonBits(nx, k, b) < b {
					return true
				}
				cur = nx
			}
		})
		return ok
	}
	if !walk(&s.v4, true) {
		return
	}
	walk(&s.v6, false)
}

// Addrs materializes EachAddr.
func (s *Set) Addrs() []netip.Addr {
	var out []netip.Addr
	s.EachAddr(func(a netip.Addr) bool { out = append(out, a); return true })
	return out
}

// Union returns a new set covering every address in s or o.
func (s *Set) Union(o *Set) *Set {
	out := NewSet()
	s.Each(func(p netip.Prefix) bool { out.Add(p); return true })
	o.Each(func(p netip.Prefix) bool { out.Add(p); return true })
	return out
}

// Intersect returns a new set covering exactly the addresses in both s
// and o. Each emitted prefix comes from whichever side was longer
// (more specific) over the overlap.
func (s *Set) Intersect(o *Set) *Set {
	out := NewSet()
	s.Each(func(p netip.Prefix) bool {
		v4 := p.Addr().Is4()
		k, _ := keyOf(p.Addr())
		coveredWithin(o.tree(v4).root, k.masked(uint8(p.Bits())), uint8(p.Bits()), v4,
			func(q netip.Prefix) bool { out.Add(q); return true })
		return true
	})
	return out
}

// Diff returns a new set covering the addresses in s but not in o,
// expressed as the maximal prefixes of each s-prefix that dodge o's
// coverage (prefix splitting).
func (s *Set) Diff(o *Set) *Set {
	out := NewSet()
	s.Each(func(p netip.Prefix) bool {
		v4 := p.Addr().Is4()
		k, _ := keyOf(p.Addr())
		width := uint8(32)
		if !v4 {
			width = 128
		}
		minus(k.masked(uint8(p.Bits())), uint8(p.Bits()), width, o.tree(v4).root, v4,
			func(q netip.Prefix) bool { out.Add(q); return true })
		return true
	})
	return out
}

// Aggregate returns the canonical minimal form: redundant (covered)
// prefixes dropped and complete sibling pairs merged bottom-up, so
// two /25 halves become their /24 and a /32 inside a stored /24
// disappears. Equal address sets aggregate to identical prefix lists.
func (s *Set) Aggregate() *Set {
	out := NewSet()
	emit := func(v4 bool) func(k key, b uint8) bool {
		return func(k key, b uint8) bool { out.Add(k.prefix(b, v4)); return true }
	}
	eachAggregated(s.v4.root, 32, emit(true))
	eachAggregated(s.v6.root, 128, emit(false))
	return out
}

// Equal reports address-set equality (independent of stored
// decomposition).
func (s *Set) Equal(o *Set) bool {
	a, b := s.Aggregate().Prefixes(), o.Aggregate().Prefixes()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Compile freezes the set into its immutable lookup form.
func (s *Set) Compile() *Compiled { return compile(&s.v4, &s.v6) }

// eachAggregated emits the maximal covered spans of the subtree in
// ascending address order: the canonical disjoint decomposition of the
// covered address space. width is kept for symmetry with the family
// walkers (span fullness itself is derivable from node depths alone).
func eachAggregated(n *node, width uint8, f func(k key, b uint8) bool) bool {
	_ = width
	return emitSpans(n, f)
}

// isFull reports whether n's entire span is covered: n terminates a
// stored prefix, or both exact halves (children at bits+1 — path
// compression means a child may sit deeper, a smaller span) are full.
func isFull(n *node) bool {
	if n == nil {
		return false
	}
	if n.has {
		return true
	}
	c0, c1 := n.child[0], n.child[1]
	return c0 != nil && c1 != nil &&
		c0.bits == n.bits+1 && c1.bits == n.bits+1 &&
		isFull(c0) && isFull(c1)
}

// emitSpans emits the maximal covered spans under n, in ascending
// address order; a full subtree emits exactly its own span, so
// complete sibling pairs merge bottom-up and covered detail below a
// stored prefix disappears.
func emitSpans(n *node, f func(k key, b uint8) bool) bool {
	if n == nil {
		return true
	}
	if isFull(n) {
		return f(n.k, n.bits)
	}
	// Not full and no terminal here, so both children exist.
	return emitSpans(n.child[0], f) && emitSpans(n.child[1], f)
}

// coveredWithin emits the maximal subprefixes of (k, b) covered by the
// address set under n: the whole of (k, b) when an ancestor terminal
// covers it, otherwise every covered span inside it.
func coveredWithin(n *node, k key, b uint8, v4 bool, f func(netip.Prefix) bool) bool {
	for n != nil && n.bits < b {
		if commonBits(n.k, k, n.bits) < n.bits {
			return true // disjoint
		}
		if n.has {
			return f(k.prefix(b, v4)) // ancestor covers all of p
		}
		n = n.child[k.bit(n.bits)]
	}
	if n == nil || commonBits(n.k, k, b) < b {
		return true
	}
	// n's subtree sits at or below p: emit its covered spans.
	width := uint8(32)
	if !v4 {
		width = 128
	}
	return eachAggregated(n, width, func(sk key, sb uint8) bool {
		return f(sk.prefix(sb, v4))
	})
}

// minus emits the maximal subprefixes of (k, b) NOT covered by the
// address set under n, in ascending order.
func minus(k key, b, width uint8, n *node, v4 bool, f func(netip.Prefix) bool) bool {
	if n == nil {
		return f(k.prefix(b, v4))
	}
	limit := b
	if n.bits < limit {
		limit = n.bits
	}
	if commonBits(k, n.k, limit) < limit {
		// Disjoint: nothing under n touches p.
		return f(k.prefix(b, v4))
	}
	if n.bits <= b {
		if n.has {
			return true // fully covered
		}
		if n.bits == b {
			return minusChildren(k, b, width, n, v4, f)
		}
		return minus(k, b, width, n.child[k.bit(n.bits)], v4, f)
	}
	// n sits strictly inside p: split p one level; the half that
	// branches away from n's key is wholly uncovered (n's subtree is
	// the only coverage inside p), the half containing n recurses.
	for i := 0; i < 2; i++ {
		half := k.withBit(b, i)
		if i == n.k.bit(b) {
			if !minus(half, b+1, width, n, v4, f) {
				return false
			}
		} else if !f(half.prefix(b+1, v4)) {
			return false
		}
	}
	return true
}

// minusChildren subtracts n's children from p == n's span (n itself
// stores no terminal here).
func minusChildren(k key, b, width uint8, n *node, v4 bool, f func(netip.Prefix) bool) bool {
	if b >= width {
		// Full-width prefix with no terminal at n: nothing below can
		// exist, so p is uncovered.
		return f(k.prefix(b, v4))
	}
	for i := 0; i < 2; i++ {
		half := k.withBit(b, i)
		if !minus(half, b+1, width, n.child[i], v4, f) {
			return false
		}
	}
	return true
}
