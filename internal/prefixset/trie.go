package prefixset

import "net/netip"

// This file is the shared mutable trie under Set and Table: insert
// with split-on-divergence path compression, exact get/remove with
// re-collapse, longest-prefix lookup, and the canonical walk.

// node is one path-compressed trie node: a prefix of k's first bits
// bits. A node either terminates a stored prefix (has), branches
// (both children non-nil), or both; single-child chains are collapsed
// on insert and re-collapsed on delete, so the node count is bounded
// by 2x the stored prefix count per family.
type node struct {
	k     key
	bits  uint8
	has   bool
	val   int32
	child [2]*node
}

// trie is one family's tree plus its stored-prefix count.
type trie struct {
	root *node
	n    int
}

// insert adds (k, b) with value v under n and returns the new subtree
// root. When the prefix is already present, overwrite selects whether
// v replaces the stored value; added reports whether a new prefix was
// stored (false for duplicates).
func insert(n *node, k key, b uint8, v int32, overwrite bool) (_ *node, added bool) {
	k = k.masked(b)
	if n == nil {
		return &node{k: k, bits: b, has: true, val: v}, true
	}
	limit := n.bits
	if b < limit {
		limit = b
	}
	cp := commonBits(n.k, k, limit)
	if cp < n.bits {
		// The new prefix diverges above n (or is a proper ancestor):
		// split with a branch node at the divergence point.
		br := &node{k: k.masked(cp), bits: cp}
		br.child[n.k.bit(cp)] = n
		if cp == b {
			br.has, br.val = true, v
		} else {
			br.child[k.bit(cp)] = &node{k: k, bits: b, has: true, val: v}
		}
		return br, true
	}
	// n's prefix covers the new key's first n.bits bits.
	if b == n.bits {
		if !n.has {
			n.has, n.val = true, v
			return n, true
		}
		if overwrite {
			n.val = v
		}
		return n, false
	}
	i := k.bit(n.bits)
	n.child[i], added = insert(n.child[i], k, b, v, overwrite)
	return n, added
}

// get returns the node storing exactly (k, b), or nil.
func get(n *node, k key, b uint8) *node {
	k = k.masked(b)
	for n != nil && n.bits <= b {
		if commonBits(n.k, k, n.bits) < n.bits {
			return nil
		}
		if n.bits == b {
			if n.has {
				return n
			}
			return nil
		}
		n = n.child[k.bit(n.bits)]
	}
	return nil
}

// lookup returns the value of the longest stored prefix covering the
// full-width key k.
func lookup(n *node, k key, kb uint8) (int32, bool) {
	best, found := int32(0), false
	for n != nil && n.bits <= kb {
		if commonBits(n.k, k, n.bits) < n.bits {
			break
		}
		if n.has {
			best, found = n.val, true
		}
		if n.bits == kb {
			break
		}
		n = n.child[k.bit(n.bits)]
	}
	return best, found
}

// remove deletes exactly (k, b); removed is false when it was not
// stored. Pruning re-collapses pass-through nodes so the structure
// (and therefore iteration order and compiled layout) is identical to
// a trie that never held the prefix.
func remove(n *node, k key, b uint8) (_ *node, removed bool) {
	if n == nil || n.bits > b || commonBits(n.k, k.masked(b), n.bits) < n.bits {
		return n, false
	}
	if n.bits == b {
		if !n.has {
			return n, false
		}
		n.has = false
		return prune(n), true
	}
	i := k.bit(n.bits)
	n.child[i], removed = remove(n.child[i], k, b)
	if removed {
		return prune(n), true
	}
	return n, false
}

// prune collapses n if it no longer terminates a prefix and has at
// most one child.
func prune(n *node) *node {
	if n.has {
		return n
	}
	c0, c1 := n.child[0], n.child[1]
	if c0 != nil && c1 != nil {
		return n
	}
	if c0 != nil {
		return c0
	}
	return c1
}

// each walks stored prefixes in canonical order — a prefix before any
// longer prefix it contains, siblings in address order — which for
// disjoint prefixes is exactly ascending address order. Returns false
// if f stopped the walk.
func each(n *node, v4 bool, f func(netip.Prefix) bool) bool {
	if n == nil {
		return true
	}
	if n.has && !f(n.k.prefix(n.bits, v4)) {
		return false
	}
	return each(n.child[0], v4, f) && each(n.child[1], v4, f)
}

// count of nodes in the subtree (compiled-form sizing).
func countNodes(n *node) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.child[0]) + countNodes(n.child[1])
}
