package metrics

import (
	"strings"
	"testing"

	"repro/internal/comap"
	"repro/internal/geo"
	"repro/internal/topogen"
)

// mkTruth builds a ground-truth region: one AggCO over n EdgeCOs.
func mkTruth(n int) *topogen.Region {
	reg := &topogen.Region{
		Name:            "r",
		ISP:             "x",
		COs:             map[string]*topogen.CO{},
		BackboneEntries: []string{"bb1", "bb2"},
	}
	city := geo.MustByName("Denver")
	agg := &topogen.CO{ID: "x/r/agg", Tag: "agg", Role: topogen.AggCO, City: city}
	reg.COs[agg.ID] = agg
	for i := 0; i < n; i++ {
		tag := edgeTag(i)
		co := &topogen.CO{ID: "x/r/" + tag, Tag: tag, Role: topogen.EdgeCO, City: city, Upstream: []string{agg.ID}}
		reg.COs[co.ID] = co
	}
	return reg
}

func edgeTag(i int) string { return "e" + string(rune('a'+i)) }

// mkInferred builds an inferred graph matching k of the truth's n
// EdgeCOs plus extra phantom COs.
func mkInferred(match, phantom int) *comap.RegionGraph {
	g := &comap.RegionGraph{Region: "r", COs: map[string]*comap.CONode{}, Edges: map[[2]string]int{}}
	g.COs["r/agg"] = &comap.CONode{Key: "r/agg", Tag: "agg", IsAgg: true}
	add := func(tag string) {
		key := "r/" + tag
		g.COs[key] = &comap.CONode{Key: key, Tag: tag}
		g.Edges[[2]string{"r/agg", key}] = 2
	}
	for i := 0; i < match; i++ {
		add(edgeTag(i))
	}
	for i := 0; i < phantom; i++ {
		add("phantom" + string(rune('a'+i)))
	}
	g.Entries = []comap.Entry{
		{From: "bb:one", FirstCOs: []string{"r/agg"}},
		{From: "bb:two", FirstCOs: []string{"r/agg"}},
	}
	return g
}

func TestScoreRegionPerfect(t *testing.T) {
	truth := mkTruth(5)
	g := mkInferred(5, 0)
	sc := ScoreRegion(g, truth)
	if sc.COs.Precision != 1 || sc.COs.Recall != 1 {
		t.Errorf("CO score = %v", sc.COs)
	}
	if sc.Edges.Precision != 1 || sc.Edges.Recall != 1 {
		t.Errorf("edge score = %v", sc.Edges)
	}
	if sc.AggCOs.Precision != 1 || sc.AggCOs.Recall != 1 {
		t.Errorf("agg score = %v", sc.AggCOs)
	}
	if sc.EntryRecall != 1 {
		t.Errorf("entry recall = %v", sc.EntryRecall)
	}
}

func TestScoreRegionPartial(t *testing.T) {
	truth := mkTruth(6)
	g := mkInferred(4, 2) // 4 true edges + 2 phantoms (+ the agg)
	sc := ScoreRegion(g, truth)
	// COs: tp=5 (agg + 4 edges), fp=2, fn=2.
	if sc.COs.TruePos != 5 || sc.COs.FalsePos != 2 || sc.COs.FalseNeg != 2 {
		t.Errorf("CO counts = %v", sc.COs)
	}
	if sc.COs.F1() >= 1 || sc.COs.F1() <= 0 {
		t.Errorf("F1 = %v", sc.COs.F1())
	}
	// Entries: only 1 of 2 backbone entries inferred this time.
	g.Entries = g.Entries[:1]
	sc = ScoreRegion(g, truth)
	if sc.EntryRecall != 0.5 {
		t.Errorf("entry recall = %v, want 0.5", sc.EntryRecall)
	}
}

func TestScoreISPAndRender(t *testing.T) {
	truth := &topogen.ISP{Name: "x", Regions: map[string]*topogen.Region{"r": mkTruth(4)}}
	inf := &comap.Inference{Regions: map[string]*comap.RegionGraph{
		"r":       mkInferred(4, 0),
		"unknown": mkInferred(1, 0), // no truth: skipped
	}}
	sc := ScoreISP(inf, truth)
	if len(sc.Regions) != 1 {
		t.Fatalf("scored regions = %d", len(sc.Regions))
	}
	if sc.MeanF1() != 1 {
		t.Errorf("mean F1 = %v", sc.MeanF1())
	}
	out := sc.String()
	if !strings.Contains(out, "x: 1 regions scored") || !strings.Contains(out, "entries R=1.00") {
		t.Errorf("render = %q", out)
	}
	if (ISPScore{}).MeanF1() != 0 {
		t.Error("empty score mean F1 != 0")
	}
}

func TestEntryRecallNoTruthEntries(t *testing.T) {
	truth := mkTruth(3)
	truth.BackboneEntries = nil
	sc := ScoreRegion(mkInferred(3, 0), truth)
	if sc.EntryRecall != 1 {
		t.Errorf("regions without entries should score recall 1, got %v", sc.EntryRecall)
	}
}
