// Package metrics provides the statistics the paper's evaluation
// reports (CDFs, histograms, medians) and the ground-truth scoring that
// stands in for the paper's operator validation (§5.4): CO and edge
// precision/recall, AggCO classification accuracy, and entry recall.
// It is the only package allowed to consume both inference output and
// generator ground truth.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the samples.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len reports the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns the fraction of samples <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := q * float64(len(c.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(c.sorted) {
		return c.sorted[lo]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Median is the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range c.sorted {
		s += v
	}
	return s / float64(len(c.sorted))
}

// Min and Max return the extremes.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Series renders the CDF at the given points as "x:frac" pairs, the
// format the bench harness prints for figure reproduction.
func (c *CDF) Series(points []float64) string {
	var b strings.Builder
	for i, x := range points {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g:%.2f", x, c.At(x))
	}
	return b.String()
}

// Histogram buckets samples into labeled ranges (paper Table 2 style).
type Histogram struct {
	Bounds []float64 // bucket upper bounds; a final +inf bucket is implied
	Counts []int
}

// NewHistogram buckets samples by the given upper bounds.
func NewHistogram(bounds []float64, samples []float64) *Histogram {
	h := &Histogram{Bounds: bounds, Counts: make([]int, len(bounds)+1)}
	for _, s := range samples {
		i := sort.SearchFloat64s(bounds, s)
		h.Counts[i]++
	}
	return h
}

// String renders "<=b0:n0 <=b1:n1 ... >bk:nk".
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h.Counts {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i < len(h.Bounds) {
			fmt.Fprintf(&b, "<=%g:%d", h.Bounds[i], c)
		} else {
			fmt.Fprintf(&b, ">%g:%d", h.Bounds[len(h.Bounds)-1], c)
		}
	}
	return b.String()
}

// PrecisionRecall holds a scoring pair.
type PrecisionRecall struct {
	Precision float64
	Recall    float64
	// TruePos, FalsePos, FalseNeg are the raw counts.
	TruePos, FalsePos, FalseNeg int
}

// Score computes precision/recall from set membership: inferred and
// truth are sets of comparable keys.
func Score(inferred, truth map[string]bool) PrecisionRecall {
	var pr PrecisionRecall
	for k := range inferred {
		if truth[k] {
			pr.TruePos++
		} else {
			pr.FalsePos++
		}
	}
	for k := range truth {
		if !inferred[k] {
			pr.FalseNeg++
		}
	}
	if pr.TruePos+pr.FalsePos > 0 {
		pr.Precision = float64(pr.TruePos) / float64(pr.TruePos+pr.FalsePos)
	}
	if pr.TruePos+pr.FalseNeg > 0 {
		pr.Recall = float64(pr.TruePos) / float64(pr.TruePos+pr.FalseNeg)
	}
	return pr
}

// F1 returns the harmonic mean of precision and recall.
func (pr PrecisionRecall) F1() float64 {
	if pr.Precision+pr.Recall == 0 {
		return 0
	}
	return 2 * pr.Precision * pr.Recall / (pr.Precision + pr.Recall)
}

func (pr PrecisionRecall) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f (tp=%d fp=%d fn=%d)", pr.Precision, pr.Recall, pr.TruePos, pr.FalsePos, pr.FalseNeg)
}
