package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4, 5})
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.At(3); got != 0.6 {
		t.Errorf("At(3) = %v, want 0.6", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v, want 1", got)
	}
	if got := c.Median(); got != 3 {
		t.Errorf("Median = %v", got)
	}
	if got := c.Mean(); got != 3 {
		t.Errorf("Mean = %v", got)
	}
	if c.Min() != 1 || c.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", c.Min(), c.Max())
	}
}

func TestCDFQuantileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var clean []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c := NewCDF(clean)
		// Quantile is monotone and bounded by the extremes.
		prev := c.Quantile(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			v := c.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return c.Quantile(0) == c.Min() && c.Quantile(1) == c.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAtMonotonic(t *testing.T) {
	f := func(raw []float64, probes []float64) bool {
		var clean []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		c := NewCDF(clean)
		last := -1.0
		var ps []float64
		for _, p := range probes {
			if !math.IsNaN(p) && !math.IsInf(p, 0) {
				ps = append(ps, p)
			}
		}
		// Monotonicity over sorted probe points.
		for _, p := range NewCDF(ps).sorted {
			v := c.At(p)
			if v < last-1e-12 || v < 0 || v > 1 {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyCDF(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 {
		t.Error("empty CDF At != 0")
	}
	if !math.IsNaN(c.Median()) || !math.IsNaN(c.Mean()) || !math.IsNaN(c.Min()) || !math.IsNaN(c.Max()) {
		t.Error("empty CDF statistics should be NaN")
	}
}

func TestSeries(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	got := c.Series([]float64{2, 4})
	if got != "2:0.50 4:1.00" {
		t.Errorf("Series = %q", got)
	}
}

func TestHistogram(t *testing.T) {
	// Table 2 style: latency buckets.
	h := NewHistogram([]float64{4, 5, 6, 7}, []float64{3.5, 4.5, 4.9, 5.5, 6.5, 9.5, 9.9})
	want := []int{1, 2, 1, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d (%s)", i, c, want[i], h)
		}
	}
	if h.String() == "" {
		t.Error("empty render")
	}
}

func TestScore(t *testing.T) {
	inferred := map[string]bool{"a": true, "b": true, "c": true}
	truth := map[string]bool{"b": true, "c": true, "d": true}
	pr := Score(inferred, truth)
	if pr.TruePos != 2 || pr.FalsePos != 1 || pr.FalseNeg != 1 {
		t.Fatalf("counts = %+v", pr)
	}
	if math.Abs(pr.Precision-2.0/3) > 1e-9 || math.Abs(pr.Recall-2.0/3) > 1e-9 {
		t.Errorf("P/R = %v/%v", pr.Precision, pr.Recall)
	}
	if math.Abs(pr.F1()-2.0/3) > 1e-9 {
		t.Errorf("F1 = %v", pr.F1())
	}
	empty := Score(nil, nil)
	if empty.Precision != 0 || empty.Recall != 0 || empty.F1() != 0 {
		t.Error("empty score should be zero")
	}
}
