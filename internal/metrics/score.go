package metrics

import (
	"fmt"
	"strings"

	"repro/internal/comap"
	"repro/internal/topogen"
)

// RegionScore compares one inferred region graph against ground truth.
type RegionScore struct {
	Region string
	COs    PrecisionRecall
	Edges  PrecisionRecall
	AggCOs PrecisionRecall
	// EntryRecall is the fraction of true entries (backbone COs and
	// feeder regions) that the inference recovered.
	EntryRecall float64
}

// ScoreRegion evaluates inferred CO and edge sets against the generator
// truth. Edges are compared undirected at the CO-tag level.
func ScoreRegion(g *comap.RegionGraph, truth *topogen.Region) RegionScore {
	sc := RegionScore{Region: g.Region}

	inferredCOs := map[string]bool{}
	for _, n := range g.COs {
		inferredCOs[n.Tag] = true
	}
	trueCOs := map[string]bool{}
	for _, co := range truth.COs {
		trueCOs[co.Tag] = true
	}
	sc.COs = Score(inferredCOs, trueCOs)

	undirected := func(a, b string) string {
		if a > b {
			a, b = b, a
		}
		return a + "|" + b
	}
	inferredEdges := map[string]bool{}
	for e := range g.Edges {
		ta, tb := g.COs[e[0]], g.COs[e[1]]
		if ta == nil || tb == nil {
			continue
		}
		inferredEdges[undirected(ta.Tag, tb.Tag)] = true
	}
	trueEdges := map[string]bool{}
	for _, co := range truth.COs {
		for _, up := range co.Upstream {
			parent := truth.COs[up]
			if parent == nil {
				continue // backbone or cross-region upstream
			}
			trueEdges[undirected(co.Tag, parent.Tag)] = true
		}
	}
	sc.Edges = Score(inferredEdges, trueEdges)

	inferredAgg := map[string]bool{}
	for _, key := range g.AggCOs() {
		inferredAgg[g.COs[key].Tag] = true
	}
	trueAgg := map[string]bool{}
	for _, co := range truth.COs {
		if co.Role == topogen.AggCO {
			trueAgg[co.Tag] = true
		}
	}
	sc.AggCOs = Score(inferredAgg, trueAgg)

	// Entries: backbone CLLI-ish IDs cannot be compared tag-for-tag
	// (inference keys them by rDNS tag, truth by generator ID), so we
	// score recall by count category: number of distinct backbone
	// entries and feeder regions recovered.
	wantEntries := len(truth.BackboneEntries) + len(truth.EntryRegions)
	if wantEntries > 0 {
		gotBB := map[string]bool{}
		gotRegions := map[string]bool{}
		for _, e := range g.Entries {
			if strings.HasPrefix(e.From, "bb:") {
				gotBB[e.From] = true
			} else if i := strings.IndexByte(e.From, '/'); i > 0 {
				gotRegions[e.From[:i]] = true
			}
		}
		got := len(gotBB)
		if got > len(truth.BackboneEntries) {
			got = len(truth.BackboneEntries)
		}
		gotR := 0
		for _, r := range truth.EntryRegions {
			if gotRegions[r] {
				gotR++
			}
		}
		sc.EntryRecall = float64(got+gotR) / float64(wantEntries)
	} else {
		sc.EntryRecall = 1
	}
	return sc
}

// ISPScore aggregates region scores for one operator.
type ISPScore struct {
	ISP     string
	Regions []RegionScore
}

// ScoreISP scores every inferred region against its ground truth.
func ScoreISP(inf *comap.Inference, truth *topogen.ISP) ISPScore {
	out := ISPScore{ISP: truth.Name}
	names := make([]string, 0, len(inf.Regions))
	for name := range inf.Regions {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		t := truth.Regions[name]
		if t == nil {
			continue
		}
		out.Regions = append(out.Regions, ScoreRegion(inf.Regions[name], t))
	}
	return out
}

// MeanF1 summarizes an operator's CO-recovery quality.
func (s ISPScore) MeanF1() float64 {
	if len(s.Regions) == 0 {
		return 0
	}
	var sum float64
	for _, r := range s.Regions {
		sum += r.COs.F1()
	}
	return sum / float64(len(s.Regions))
}

// String renders a per-region summary table.
func (s ISPScore) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d regions scored\n", s.ISP, len(s.Regions))
	for _, r := range s.Regions {
		fmt.Fprintf(&b, "  %-14s COs %s | edges P=%.2f R=%.2f | agg P=%.2f R=%.2f | entries R=%.2f\n",
			r.Region, r.COs, r.Edges.Precision, r.Edges.Recall,
			r.AggCOs.Precision, r.AggCOs.Recall, r.EntryRecall)
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
