package segfault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeLog(t *testing.T, fs FS, path string, chunks [][]byte) error {
	t.Helper()
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	for _, c := range chunks {
		if _, err := f.Write(c); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "traces.seg")
	if err := writeLog(t, OS, log, [][]byte{[]byte("abc"), []byte("def")}); err != nil {
		t.Fatalf("writeLog: %v", err)
	}
	got, err := OS.ReadFile(log)
	if err != nil || string(got) != "abcdef" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	n, err := OS.Size(log)
	if err != nil || n != 6 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if err := OS.Truncate(log, 3); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	f, err := OS.OpenAppend(log)
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	if _, err := f.Write([]byte("XY")); err != nil {
		t.Fatalf("append write: %v", err)
	}
	f.Close()
	got, _ = OS.ReadFile(log)
	if string(got) != "abcXY" {
		t.Fatalf("after truncate+append = %q, want abcXY", got)
	}
	dst := filepath.Join(dir, "renamed.seg")
	if err := OS.Rename(log, dst); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := OS.Remove(dst); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("file survived Remove: %v", err)
	}
}

func TestCrashOnLogSync(t *testing.T) {
	dir := t.TempDir()
	fs := Inject(OS, Plan{CrashOnLogSync: 2})
	log := filepath.Join(dir, "traces.seg")
	err := writeLog(t, fs, log, [][]byte{[]byte("w1"), []byte("w2"), []byte("w3")})
	if !errors.Is(err, ErrCrash) {
		t.Fatalf("want ErrCrash, got %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() = false after crash point fired")
	}
	// Everything after the crash fails with ErrCrash.
	if _, err := fs.ReadFile(log); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash ReadFile = %v, want ErrCrash", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "other.seg")); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash Create = %v, want ErrCrash", err)
	}
	if err := fs.Rename(log, log+"x"); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash Rename = %v, want ErrCrash", err)
	}
	// The first write was synced before the crash; the second was
	// written but never synced, so the crash dropped it.
	got, err := OS.ReadFile(log)
	if err != nil {
		t.Fatalf("ReadFile via OS: %v", err)
	}
	if string(got) != "w1" {
		t.Fatalf("durable content = %q, want exactly the synced prefix w1", got)
	}
}

func TestCrashOnLogWriteTearsDeterministically(t *testing.T) {
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	tornLen := func(seed uint64) int {
		dir := t.TempDir()
		fs := Inject(OS, Plan{Seed: seed, CrashOnLogWrite: 2})
		log := filepath.Join(dir, "traces.seg")
		err := writeLog(t, fs, log, [][]byte{[]byte("w1"), payload})
		if !errors.Is(err, ErrCrash) {
			t.Fatalf("seed %d: want ErrCrash, got %v", seed, err)
		}
		got, err := OS.ReadFile(log)
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		if string(got[:2]) != "w1" {
			t.Fatalf("seed %d: first write lost: %q", seed, got[:2])
		}
		torn := got[2:]
		if len(torn) >= len(payload) {
			t.Fatalf("seed %d: torn write persisted fully (%d bytes)", seed, len(torn))
		}
		for i, b := range torn {
			if b != payload[i] {
				t.Fatalf("seed %d: torn byte %d = %d, want %d", seed, i, b, payload[i])
			}
		}
		return len(torn)
	}
	a1, a2 := tornLen(7), tornLen(7)
	if a1 != a2 {
		t.Fatalf("same seed tore at %d then %d bytes; want deterministic", a1, a2)
	}
	if b := tornLen(99); b == a1 {
		t.Logf("seeds 7 and 99 tore at the same offset (%d); possible but unlikely", b)
	}
}

func TestCrashOnRenameKeepsOldTarget(t *testing.T) {
	dir := t.TempDir()
	fs := Inject(OS, Plan{CrashOnRename: 2})
	tmp := filepath.Join(dir, "m.tmp")
	dst := filepath.Join(dir, "m.json")
	os.WriteFile(tmp, []byte("v1"), 0o644)
	if err := fs.Rename(tmp, dst); err != nil {
		t.Fatalf("rename 1: %v", err)
	}
	os.WriteFile(tmp, []byte("v2"), 0o644)
	if err := fs.Rename(tmp, dst); !errors.Is(err, ErrCrash) {
		t.Fatalf("rename 2 = %v, want ErrCrash", err)
	}
	got, _ := os.ReadFile(dst)
	if string(got) != "v1" {
		t.Fatalf("target after crashed rename = %q, want old content v1", got)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("temp file should survive crashed rename: %v", err)
	}
}

func TestTransientFaults(t *testing.T) {
	dir := t.TempDir()
	fs := Inject(OS, Plan{FailLogSync: 1, ShortWrite: 2})
	log := filepath.Join(dir, "traces.seg")
	f, err := fs.Create(log)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("abcd")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 1 = %v, want ErrInjected", err)
	}
	if errors.Is(f.Sync(), ErrInjected) {
		t.Fatal("sync 2 should succeed (fault is one-shot)")
	}
	n, err := f.Write([]byte("efgh"))
	if !errors.Is(err, ErrInjected) || n != 2 {
		t.Fatalf("short write = (%d, %v), want (2, ErrInjected)", n, err)
	}
	if fs.Crashed() {
		t.Fatal("transient faults must not latch the crashed state")
	}
	// Non-log files never see log faults.
	m, err := fs.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatalf("manifest Create: %v", err)
	}
	defer m.Close()
	if _, err := m.Write([]byte("{}")); err != nil {
		t.Fatalf("manifest write: %v", err)
	}
	if err := m.Sync(); err != nil {
		t.Fatalf("manifest sync: %v", err)
	}
}
