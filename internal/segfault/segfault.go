// Package segfault is the injectable filesystem seam under the durable
// spill-log writer. The crash-safety contract of the streaming campaign
// engine — a killed campaign resumes at the last checkpoint with
// bit-identical output — is only testable if tests can kill the writer
// at precise, reproducible points: after the Nth sealed window, halfway
// through a frame write (leaving a torn tail for the resume
// classification to truncate), or during the manifest rename. The FS
// interface covers exactly the operations the writer performs; OS is
// the passthrough implementation, and Inject wraps any FS with a
// deterministic fault plan keyed by the campaign seed.
//
// An injected crash is not a transient error: once a plan fires its
// crash point, every subsequent operation on the filesystem fails with
// ErrCrash, the way a dead process stops issuing syscalls. Callers
// simulate process death by letting the error propagate (the campaign
// engine panics on spill errors), recovering, and reopening the spill
// through a fresh FS — exactly the sequence a real restart performs.
package segfault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// ErrCrash is the sentinel every operation returns once a plan's crash
// point has fired. Test with errors.Is.
var ErrCrash = errors.New("segfault: injected crash")

// ErrInjected is the sentinel for non-fatal injected failures (a
// transient fsync error, a failed rename): the operation fails but the
// filesystem keeps working. Test with errors.Is.
var ErrInjected = errors.New("segfault: injected fault")

// File is the subset of *os.File the segment writer needs.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// FS is the filesystem surface of the durable spill path. *os.File
// satisfies File directly, so OS is a thin passthrough.
type FS interface {
	Create(path string) (File, error)
	// OpenAppend opens an existing file for writing at its current end
	// (resume reopens the truncated log this way).
	OpenAppend(path string) (File, error)
	ReadFile(path string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	Size(path string) (int64, error)
	Truncate(path string, size int64) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(path string) (File, error) { return os.Create(path) }

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) ReadFile(path string) ([]byte, error)   { return os.ReadFile(path) }
func (osFS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error               { return os.Remove(path) }
func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }
func (osFS) Size(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Plan describes deterministic faults. Counters are 1-based ordinals
// over the matching operations since the FS was built; zero disables a
// fault. The log/manifest distinction keys off the path suffix: ".seg"
// is the segment log, everything else (the manifest and its temp file)
// is metadata.
type Plan struct {
	// Seed keys the torn-write split point, so different campaign seeds
	// tear frames at different byte offsets.
	Seed uint64
	// CrashOnLogSync crashes on the nth Sync of the segment log, first
	// discarding every byte written since the last successful sync (the
	// unsynced page-cache tail a power loss would eat). Seals sync
	// exactly once, so n maps 1:1 onto sealed windows: n=1 dies sealing
	// the first window (nothing durable), n=k dies sealing window k
	// (windows 1..k-1 durable).
	CrashOnLogSync int
	// CrashOnLogWrite crashes during the nth Write to the segment log,
	// persisting only a seeded prefix of the buffer — a torn tail for
	// the resume classifier.
	CrashOnLogWrite int
	// CrashOnRename crashes on the nth manifest rename: the windows are
	// durable but the manifest pointing at the newest of them is not.
	CrashOnRename int
	// FailLogSync makes the nth log Sync fail with ErrInjected without
	// entering the crashed state (a transient EIO).
	FailLogSync int
	// ShortWrite makes the nth log Write report fewer bytes than given
	// without crashing (exercises the writer's short-write handling).
	ShortWrite int
}

// Inject wraps under with a fault plan. The returned FS is safe for
// use from one goroutine at a time per file, like the writer itself;
// the shared counters are mutex-guarded so independent files may be
// driven from tests freely.
func Inject(under FS, plan Plan) *InjectFS {
	return &InjectFS{under: under, plan: plan}
}

// InjectFS is an FS that fails according to a Plan. See Inject.
type InjectFS struct {
	under FS
	plan  Plan

	mu        sync.Mutex
	logSyncs  int
	logWrites int
	renames   int
	crashed   bool
}

// Crashed reports whether the plan's crash point has fired.
func (f *InjectFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Counts reports the log-sync, log-write, and rename ordinals observed
// so far. Kill grids run one instrumented (non-crashing) pass first and
// derive their crash ordinals from these totals, so the grid tracks the
// workload instead of hard-coding operation counts.
func (f *InjectFS) Counts() (logSyncs, logWrites, renames int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.logSyncs, f.logWrites, f.renames
}

// check returns ErrCrash when the FS is already dead.
func (f *InjectFS) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrash
	}
	return nil
}

func (f *InjectFS) crash() error {
	f.mu.Lock()
	f.crashed = true
	f.mu.Unlock()
	return ErrCrash
}

func isLog(path string) bool { return strings.HasSuffix(path, ".seg") }

func (f *InjectFS) Create(path string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	file, err := f.under.Create(path)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: f, f: file, log: isLog(path)}, nil
}

func (f *InjectFS) OpenAppend(path string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	size, err := f.under.Size(path)
	if err != nil {
		return nil, err
	}
	file, err := f.under.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	// Bytes already on disk count as synced: resume only reopens logs
	// whose durable prefix it just validated.
	return &injectFile{fs: f, f: file, log: isLog(path), size: size, synced: size}, nil
}

func (f *InjectFS) ReadFile(path string) ([]byte, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.under.ReadFile(path)
}

func (f *InjectFS) Rename(oldpath, newpath string) error {
	if err := f.check(); err != nil {
		return err
	}
	f.mu.Lock()
	f.renames++
	fire := f.plan.CrashOnRename > 0 && f.renames == f.plan.CrashOnRename
	f.mu.Unlock()
	if fire {
		// The temp file stays behind, the target keeps its old content
		// (or stays absent) — the atomic-rename failure mode.
		return f.crash()
	}
	return f.under.Rename(oldpath, newpath)
}

func (f *InjectFS) Remove(path string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.under.Remove(path)
}

func (f *InjectFS) Size(path string) (int64, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	return f.under.Size(path)
}

func (f *InjectFS) Truncate(path string, size int64) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.under.Truncate(path, size)
}

// injectFile applies the plan's write/sync faults to one open file. For
// log files it tracks the synced watermark so a sync crash can discard
// the unsynced tail, the way power loss discards the page cache.
type injectFile struct {
	fs     *InjectFS
	f      File
	log    bool
	size   int64
	synced int64
}

// mix is a splitmix64 step: the deterministic tear-point draw.
func mix(vs ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		h ^= v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
	}
	return h
}

func (jf *injectFile) Write(p []byte) (int, error) {
	if err := jf.fs.check(); err != nil {
		return 0, err
	}
	if !jf.log {
		return jf.f.Write(p)
	}
	fs := jf.fs
	fs.mu.Lock()
	fs.logWrites++
	n := fs.logWrites
	tear := fs.plan.CrashOnLogWrite > 0 && n == fs.plan.CrashOnLogWrite
	short := fs.plan.ShortWrite > 0 && n == fs.plan.ShortWrite
	seed := fs.plan.Seed
	fs.mu.Unlock()
	switch {
	case tear:
		// Persist a seeded prefix of this write on top of the synced
		// watermark, then die: the on-disk log ends inside a frame, which
		// is exactly the torn tail the resume path must classify and
		// truncate. Earlier unsynced writes are discarded first — a torn
		// frame survives a crash only as far as the storage got.
		jf.f.Truncate(jf.synced)
		jf.f.Seek(jf.synced, io.SeekStart)
		keep := 0
		if len(p) > 0 {
			keep = int(mix(seed, uint64(n)) % uint64(len(p)))
		}
		if keep > 0 {
			jf.f.Write(p[:keep])
			jf.f.Sync()
		}
		return keep, jf.fs.crash()
	case short:
		keep := len(p) / 2
		wrote, err := jf.f.Write(p[:keep])
		jf.size += int64(wrote)
		if err != nil {
			return wrote, err
		}
		return wrote, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, wrote, len(p))
	}
	wrote, err := jf.f.Write(p)
	jf.size += int64(wrote)
	return wrote, err
}

func (jf *injectFile) Sync() error {
	if err := jf.fs.check(); err != nil {
		return err
	}
	if !jf.log {
		return jf.f.Sync()
	}
	fs := jf.fs
	fs.mu.Lock()
	fs.logSyncs++
	n := fs.logSyncs
	crash := fs.plan.CrashOnLogSync > 0 && n == fs.plan.CrashOnLogSync
	fail := fs.plan.FailLogSync > 0 && n == fs.plan.FailLogSync
	fs.mu.Unlock()
	if crash {
		// Model the conservative outcome: nothing written since the last
		// successful sync survives. The unsynced tail is dropped before
		// the crash latches.
		jf.f.Truncate(jf.synced)
		jf.f.Sync()
		return jf.fs.crash()
	}
	if fail {
		return fmt.Errorf("%w: fsync", ErrInjected)
	}
	if err := jf.f.Sync(); err != nil {
		return err
	}
	jf.synced = jf.size
	return nil
}

func (jf *injectFile) Close() error {
	// Close always reaches the real file so tests never leak
	// descriptors, but reports the crashed state.
	err := jf.f.Close()
	if cerr := jf.fs.check(); cerr != nil {
		return cerr
	}
	return err
}

func (jf *injectFile) Truncate(size int64) error {
	if err := jf.fs.check(); err != nil {
		return err
	}
	return jf.f.Truncate(size)
}

func (jf *injectFile) Seek(offset int64, whence int) (int64, error) {
	if err := jf.fs.check(); err != nil {
		return 0, err
	}
	return jf.f.Seek(offset, whence)
}
