// Package mobilemap infers mobile-carrier topology from geo-tagged
// ShipTraceroute rounds (§7.2): which bit fields of the carrier's IPv6
// addresses encode the region, EdgeCO, and packet gateway; how many
// packet gateways serve each region (Tables 7 and 8); and which Fig. 17
// architecture the carrier uses.
//
// The analysis sees only what a real measurement would: user addresses,
// traceroute hops, OpenCellID-derived tower locations, and reverse DNS.
// It never touches the generator's profiles.
package mobilemap

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/dnsdb"
	"repro/internal/geo"
	"repro/internal/ipalloc"
	"repro/internal/probesched"
	"repro/internal/ship"
	"repro/internal/symtab"
)

// Level is one geographically-stable prefix level of the user address
// space: a prefix length whose value only changes when the phone moves.
type Level struct {
	PrefixLen int
	// Changes counts value transitions over the journey; DistinctValues
	// counts the values seen (the paper's "/40 prefix only changes 11
	// times" observations).
	Changes        int
	DistinctValues int
}

// Field is an inferred bit field.
type Field struct {
	Start int
	Len   int
}

func (f Field) String() string {
	if f.Len == 0 {
		return "none"
	}
	return fmt.Sprintf("bits %d-%d", f.Start, f.Start+f.Len-1)
}

// Arch mirrors the Fig. 17 classification.
type Arch uint8

const (
	// ArchUnknown means insufficient evidence.
	ArchUnknown Arch = iota
	// ArchSingleEdge is AT&T-like: one region level, own backbone.
	ArchSingleEdge
	// ArchMultiEdge is Verizon-like: hierarchical region levels sharing
	// backbone exits.
	ArchMultiEdge
	// ArchMultiBackbone is T-Mobile-like: no geographic user field and
	// several wholesale backbone providers.
	ArchMultiBackbone
)

func (a Arch) String() string {
	switch a {
	case ArchSingleEdge:
		return "single-edge"
	case ArchMultiEdge:
		return "multi-edge"
	case ArchMultiBackbone:
		return "multi-backbone"
	}
	return "unknown"
}

// Analysis is the inference output for one carrier.
type Analysis struct {
	// UserPrefixLen is the carrier-constant user prefix.
	UserPrefixLen int
	// GeoLevels are prefix levels stable at a fixed location but
	// changing across the country, shortest first.
	GeoLevels []Level
	// RegionField covers the bits between the carrier prefix and the
	// deepest geographic level; PGWField covers the bits that cycle on
	// re-registration at one location.
	RegionField Field
	PGWField    Field
	// RouterField is the infrastructure-address bit field that changes
	// in lockstep with the user region field.
	RouterBase  netip.Addr
	RouterField Field
	// PGWCounts maps each observed region value to its distinct PGW
	// field values (Tables 7 and 8). For carriers without a region
	// field the single key 0 holds the carrier-wide count.
	PGWCounts map[uint64]int
	// Providers are the distinct upstream networks observed right after
	// the carrier's infrastructure (rDNS-derived).
	Providers []string
	// Arch is the Fig. 17 classification.
	Arch Arch
}

// moveThresholdKm separates "stationary" re-registrations from actual
// movement; tower-location quantization stays well below it.
const moveThresholdKm = 40

// Analyze infers the carrier structure from measurement rounds,
// sequentially.
func Analyze(rounds []ship.Round, dns *dnsdb.DB) *Analysis {
	return AnalyzeParallel(rounds, dns, 1)
}

// AnalyzeParallel is Analyze with the per-nibble statistics sweep and
// the router-field candidate scan sharded across workers (0 selects
// GOMAXPROCS). Each nibble position and each candidate bit range is
// evaluated independently over the (read-only) rounds, and the merge
// walks shards in canonical order, so the analysis is byte-identical at
// any worker count.
func AnalyzeParallel(rounds []ship.Round, dns *dnsdb.DB, workers int) *Analysis {
	pool := probesched.New(workers, nil)
	a := &Analysis{PGWCounts: map[uint64]int{}}
	var ok []ship.Round
	for _, r := range rounds {
		if r.OK && r.UserAddr.IsValid() {
			ok = append(ok, r)
		}
	}
	if len(ok) < 4 {
		return a
	}
	sort.SliceStable(ok, func(i, j int) bool { return ok[i].At.Before(ok[j].At) })

	// Carrier prefix: the longest nibble-aligned prefix shared by every
	// user address.
	a.UserPrefixLen = commonPrefixLen(ok)

	// Per-nibble behaviour: for each 4-bit slice, count transitions and
	// how many happened without movement. Nibbles of a geographic field
	// change only when the phone moves; nibbles of the PGW field cycle
	// across re-registrations at one location; untouched plan bits stay
	// constant.
	type stats struct {
		changes, stationary, distinct int
	}
	type nibbleAcc struct {
		nibble map[int]stats // keyed by nibble start bit
		prefix map[int]stats // keyed by prefix length
	}
	// Each nibble position's statistics depend only on the sorted round
	// sequence, so the positions shard across workers; the per-shard
	// maps have disjoint keys (one per position) and union cleanly.
	var starts []int
	for start := a.UserPrefixLen; start < 64; start += 4 {
		starts = append(starts, start)
	}
	acc := probesched.Reduce(pool, len(starts),
		func() nibbleAcc { return nibbleAcc{nibble: map[int]stats{}, prefix: map[int]stats{}} },
		func(acc nibbleAcc, si int) nibbleAcc {
			start := starts[si]
			ns := stats{}
			ps := stats{}
			seenN := map[uint64]bool{}
			seenP := map[uint64]bool{}
			L := start + 4
			for i := range ok {
				nv := ipalloc.V6Bits(ok[i].UserAddr, start, 4)
				pv := ipalloc.V6Bits(ok[i].UserAddr, 0, L)
				seenN[nv] = true
				seenP[pv] = true
				if i == 0 {
					continue
				}
				stationary := geo.DistanceKm(ok[i].TowerLoc, ok[i-1].TowerLoc) < moveThresholdKm
				if nv != ipalloc.V6Bits(ok[i-1].UserAddr, start, 4) {
					ns.changes++
					if stationary {
						ns.stationary++
					}
				}
				if pv != ipalloc.V6Bits(ok[i-1].UserAddr, 0, L) {
					ps.changes++
					if stationary {
						ps.stationary++
					}
				}
			}
			ns.distinct = len(seenN)
			ps.distinct = len(seenP)
			acc.nibble[start] = ns
			acc.prefix[L] = ps
			return acc
		},
		func(into, from nibbleAcc) nibbleAcc {
			for k, v := range from.nibble {
				into.nibble[k] = v
			}
			for k, v := range from.prefix {
				into.prefix[k] = v
			}
			return into
		})
	nibble, prefix := acc.nibble, acc.prefix

	// Classify nibbles against the stationary re-registrations: a PGW
	// nibble changes on a large share of them (gateways cycle on every
	// re-attach), while a geographic nibble almost never does — at most
	// the occasional rebalance onto a neighboring EdgeCO (§7.2.2). The
	// rate per stationary transition is robust to how much of the
	// journey was spent moving.
	stationaryTransitions := 0
	for i := 1; i < len(ok); i++ {
		if geo.DistanceKm(ok[i].TowerLoc, ok[i-1].TowerLoc) < moveThresholdKm {
			stationaryTransitions++
		}
	}
	kind := map[int]byte{} // 'c' constant, 'g' geo, 'p' pgw
	for start := a.UserPrefixLen; start < 64; start += 4 {
		s := nibble[start]
		switch {
		case s.changes == 0:
			kind[start] = 'c'
		case stationaryTransitions > 0 && float64(s.stationary)/float64(stationaryTransitions) >= 0.3:
			kind[start] = 'p'
		case stationaryTransitions == 0 && float64(s.stationary)/float64(s.changes) >= 0.15:
			// No dwell data: fall back to the fraction-of-changes rule.
			kind[start] = 'p'
		default:
			kind[start] = 'g'
		}
	}

	// Geographic levels: prefix boundaries at the end of geo nibbles,
	// collapsing consecutive boundaries with identical change counts
	// into the deepest one (several nibbles of one field change
	// together).
	var rawLevels []Level
	for start := a.UserPrefixLen; start < 64; start += 4 {
		if kind[start] != 'g' {
			continue
		}
		L := start + 4
		s := prefix[L]
		rawLevels = append(rawLevels, Level{PrefixLen: L, Changes: s.changes, DistinctValues: s.distinct})
	}
	for i, lv := range rawLevels {
		if i+1 < len(rawLevels) &&
			rawLevels[i+1].PrefixLen == lv.PrefixLen+4 &&
			rawLevels[i+1].Changes == lv.Changes {
			continue // same field, deeper boundary follows
		}
		a.GeoLevels = append(a.GeoLevels, lv)
	}
	regionEnd := a.UserPrefixLen
	if n := len(a.GeoLevels); n > 0 {
		regionEnd = a.GeoLevels[n-1].PrefixLen
		a.RegionField = Field{Start: a.UserPrefixLen, Len: regionEnd - a.UserPrefixLen}
	}

	// PGW field: the maximal run of re-registration-cycling nibbles
	// after the geographic field.
	pgwStart, pgwEnd := 0, 0
	for start := regionEnd; start < 64; start += 4 {
		if kind[start] == 'p' {
			if pgwStart == 0 {
				pgwStart = start
			}
			pgwEnd = start + 4
		} else if pgwStart != 0 {
			break
		}
	}
	if pgwStart == 0 {
		pgwStart, pgwEnd = regionEnd, regionEnd
	}
	a.PGWField = Field{Start: pgwStart, Len: pgwEnd - pgwStart}

	// PGW counts per region value.
	perRegion := map[uint64]map[uint64]bool{}
	for _, r := range ok {
		var region uint64
		if a.RegionField.Len > 0 {
			region = ipalloc.V6Bits(r.UserAddr, a.RegionField.Start, a.RegionField.Len)
		}
		pgw := ipalloc.V6Bits(r.UserAddr, a.PGWField.Start, a.PGWField.Len)
		if perRegion[region] == nil {
			perRegion[region] = map[uint64]bool{}
		}
		perRegion[region][pgw] = true
	}
	for region, set := range perRegion {
		a.PGWCounts[region] = len(set)
	}

	a.inferRouterField(pool, ok, dns)
	a.inferProviders(ok, dns)

	// Fig. 17 classification.
	switch {
	case a.RegionField.Len == 0 && len(a.Providers) >= 2:
		a.Arch = ArchMultiBackbone
	case len(a.GeoLevels) >= 2:
		a.Arch = ArchMultiEdge
	case len(a.GeoLevels) == 1:
		a.Arch = ArchSingleEdge
	}
	return a
}

// commonPrefixLen finds the longest nibble-aligned prefix shared by all
// user addresses.
func commonPrefixLen(rounds []ship.Round) int {
	L := 64
	first := rounds[0].UserAddr
	for _, r := range rounds[1:] {
		for L > 0 && ipalloc.V6Bits(first, 0, L) != ipalloc.V6Bits(r.UserAddr, 0, L) {
			L -= 4
		}
	}
	return L
}

// inferRouterField finds the infrastructure address base (the most
// common non-user /32 among hops) and the bit range that partitions
// rounds identically to the user region field.
func (a *Analysis) inferRouterField(pool *probesched.Pool, rounds []ship.Round, dns *dnsdb.DB) {
	if a.RegionField.Len == 0 {
		// Still find the infrastructure base for reporting.
		a.RouterBase = dominantInfraBase(rounds, rounds[0].UserAddr, dns)
		return
	}
	base := dominantInfraBase(rounds, rounds[0].UserAddr, dns)
	a.RouterBase = base
	if !base.IsValid() {
		return
	}
	// Candidate nibble ranges in the infrastructure addresses, in
	// canonical (length, start) order; the winner is the FIRST
	// consistent candidate in that order. Each candidate's consistency
	// check is independent of the others, so the grid shards across
	// workers and the merge keeps the first hit in shard (= canonical)
	// order — identical to the sequential scan, which never stopped
	// early either.
	var grid []Field
	for length := 4; length <= 16; length += 4 {
		for start := 32; start+length <= 80; start += 4 {
			grid = append(grid, Field{Start: start, Len: length})
		}
	}
	a.RouterField = probesched.Reduce(pool, len(grid),
		func() Field { return Field{} },
		func(best Field, gi int) Field {
			if best.Len != 0 {
				return best
			}
			start, length := grid[gi].Start, grid[gi].Len
			forward := map[uint64]uint64{}
			backward := map[uint64]uint64{}
			consistent := true
			samples := 0
		roundLoop:
			for _, r := range rounds {
				region := ipalloc.V6Bits(r.UserAddr, a.RegionField.Start, a.RegionField.Len)
				for _, h := range r.Hops {
					if !sameBase(h, base, 32) {
						continue
					}
					v := ipalloc.V6Bits(h, start, length)
					samples++
					if prev, okf := forward[region]; okf && prev != v {
						consistent = false
						break roundLoop
					}
					forward[region] = v
					if prev, okb := backward[v]; okb && prev != region {
						consistent = false
						break roundLoop
					}
					backward[v] = region
				}
			}
			if consistent && samples > 0 && len(forward) >= 2 {
				return grid[gi]
			}
			return best
		},
		func(into, from Field) Field {
			if into.Len != 0 {
				return into
			}
			return from
		})
}

// dominantInfraBase returns the /32 base most early-path hops share:
// the carrier's packet-core space. User-space, IPv4, and rDNS-named
// (foreign or backbone) hops are excluded — the carriers' CO routers
// answer unnamed, like AT&T's wireline COs.
func dominantInfraBase(rounds []ship.Round, userAddr netip.Addr, dns *dnsdb.DB) netip.Addr {
	counts := map[uint64]int{}
	var rep map[uint64]netip.Addr = map[uint64]netip.Addr{}
	userBase := ipalloc.V6Bits(userAddr, 0, 32)
	for _, r := range rounds {
		for i, h := range r.Hops {
			if i >= 4 {
				break // the packet core is the first few hops
			}
			if !h.Is6() || h.Is4In6() {
				continue
			}
			b := ipalloc.V6Bits(h, 0, 32)
			if b == userBase {
				continue
			}
			if dns != nil {
				if _, named := dns.Name(h); named {
					continue
				}
			}
			counts[b]++
			rep[b] = h
		}
	}
	// Ties break toward the numerically lowest base: counts is a Go map,
	// and "first key wins" would make the reported base depend on map
	// iteration order.
	bestN := 0
	var best netip.Addr
	for b, n := range counts {
		cand := maskTo32(rep[b])
		if n > bestN || n == bestN && best.IsValid() && cand.Less(best) {
			bestN = n
			best = cand
		}
	}
	return best
}

func maskTo32(a netip.Addr) netip.Addr {
	p := netip.PrefixFrom(a, 32)
	return p.Masked().Addr()
}

func sameBase(a, base netip.Addr, bits int) bool {
	return ipalloc.V6Bits(a, 0, bits) == ipalloc.V6Bits(base, 0, bits)
}

// inferProviders extracts the distinct upstream networks seen right
// after the carrier's infrastructure hops, using reverse DNS.
func (a *Analysis) inferProviders(rounds []ship.Round, dns *dnsdb.DB) {
	// The interner is the dedup set; its first-seen order is discarded by
	// the sort, so only distinctness matters here.
	seen := symtab.New(0)
	for _, r := range rounds {
		for _, h := range r.Hops {
			name, ok := dns.Name(h)
			if !ok {
				continue
			}
			prov := providerOf(name)
			if prov != "" {
				seen.Intern(prov)
				break // first named upstream per round
			}
		}
	}
	for s := 0; s < seen.Len(); s++ {
		a.Providers = append(a.Providers, seen.Str(symtab.Sym(s)))
	}
	sort.Strings(a.Providers)
}

// providerOf maps an upstream hop name to a provider label: the label
// under the public suffix, skipping generic transit.
func providerOf(name string) string {
	labels := strings.Split(name, ".")
	if len(labels) < 3 {
		return ""
	}
	// e.g. ae1.cr1.chcgil.zayo.example.net -> zayo;
	//      0.ge-1-0-0.nycmny.alter.net -> alter
	for i := len(labels) - 2; i > 0; i-- {
		l := labels[i]
		if l == "example" || l == "net" || l == "com" {
			continue
		}
		if l == "transit" {
			return "" // shared long-haul, not a carrier upstream
		}
		return l
	}
	return ""
}
