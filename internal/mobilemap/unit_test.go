package mobilemap

// Unit tests for the analysis helpers over synthetic rounds.

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ipalloc"
	"repro/internal/ship"
)

func mkRound(at int, loc geo.Point, user string, hops ...string) ship.Round {
	r := ship.Round{
		At:       time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(at) * time.Hour),
		TowerLoc: loc,
		TrueLoc:  loc,
		OK:       true,
		UserAddr: netip.MustParseAddr(user),
	}
	for _, h := range hops {
		r.Hops = append(r.Hops, netip.MustParseAddr(h))
	}
	return r
}

func TestProviderOf(t *testing.T) {
	tests := map[string]string{
		"ae1.cr1.chcgil.zayo.example.net":    "zayo",
		"0.ge-1-0-0.nycmny.alter.net":        "alter",
		"xe-6.cr.dnvrco.transit.example.net": "", // shared long-haul: skipped
		"short":                              "",
		"":                                   "",
	}
	for name, want := range tests {
		if got := providerOf(name); got != want {
			t.Errorf("providerOf(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	rounds := []ship.Round{
		mkRound(0, geo.Point{}, "2600:380:6c00::1"),
		mkRound(1, geo.Point{}, "2600:380:1000::2"),
		mkRound(2, geo.Point{}, "2600:380:ff00::3"),
	}
	if got := commonPrefixLen(rounds); got != 32 {
		t.Errorf("commonPrefixLen = %d, want 32", got)
	}
	same := []ship.Round{
		mkRound(0, geo.Point{}, "2600:380::1"),
		mkRound(1, geo.Point{}, "2600:380::1"),
	}
	if got := commonPrefixLen(same); got != 64 {
		t.Errorf("identical addresses prefix = %d, want the 64-bit cap", got)
	}
}

func TestDominantInfraBaseFilters(t *testing.T) {
	// Hops: user-space (skipped), IPv4 transit (skipped), named v6
	// (skipped), and the unnamed infra base (counted).
	rounds := []ship.Round{
		mkRound(0, geo.Point{}, "2600:380::1",
			"2600:380::ffff", // user space
			"2600:300:20::1", // infra
			"144.232.0.1",    // IPv4 transit
		),
		mkRound(1, geo.Point{}, "2600:380::2",
			"2600:300:20::9",
			"2600:300:20::a",
		),
	}
	base := dominantInfraBase(rounds, rounds[0].UserAddr, nil)
	if base.String() != "2600:300::" {
		t.Errorf("base = %v, want 2600:300::", base)
	}
	// No infra hops at all: invalid base, no panic.
	none := []ship.Round{mkRound(0, geo.Point{}, "2600:380::1", "2600:380::ffff")}
	if b := dominantInfraBase(none, none[0].UserAddr, nil); b.IsValid() {
		t.Errorf("base from user-only hops = %v", b)
	}
}

// TestSyntheticPlanRecovery drives Analyze over a hand-built journey
// with a known plan: region byte at 32-39 (two cities), pgw nibble at
// 40-43 (cycling during a dwell).
func TestSyntheticPlanRecovery(t *testing.T) {
	west := geo.MustByName("Los Angeles").Point
	east := geo.MustByName("New York").Point
	user := func(region, pgw, host uint64) string {
		a := ipalloc.V6WithFields(netip.MustParseAddr("2600:380::"),
			ipalloc.Field{Start: 32, Len: 8, Value: region},
			ipalloc.Field{Start: 40, Len: 4, Value: pgw},
			ipalloc.Field{Start: 96, Len: 32, Value: host})
		return a.String()
	}
	var rounds []ship.Round
	at := 0
	// Dwell in LA: region 0x10, pgws cycling 0..2.
	for i := 0; i < 12; i++ {
		rounds = append(rounds, mkRound(at, west, user(0x13, uint64(i%3), uint64(at))))
		at++
	}
	// Drive east: region flips to 0x20 halfway.
	for i := 0; i < 10; i++ {
		f := float64(i) / 9
		loc := geo.Interpolate(west, east, f)
		region := uint64(0x13)
		if f > 0.5 {
			region = 0x25
		}
		rounds = append(rounds, mkRound(at, loc, user(region, uint64(i%3), uint64(at))))
		at++
	}
	// Dwell in NY.
	for i := 0; i < 12; i++ {
		rounds = append(rounds, mkRound(at, east, user(0x25, uint64(i%3), uint64(at))))
		at++
	}
	a := Analyze(rounds, nil)
	if a.UserPrefixLen != 32 {
		t.Errorf("prefix = /%d", a.UserPrefixLen)
	}
	if a.RegionField != (Field{Start: 32, Len: 8}) {
		t.Errorf("region field = %v", a.RegionField)
	}
	if a.PGWField != (Field{Start: 40, Len: 4}) {
		t.Errorf("pgw field = %v", a.PGWField)
	}
	if got := a.PGWCounts[0x13]; got != 3 {
		t.Errorf("LA pgw count = %d, want 3", got)
	}
	if got := a.PGWCounts[0x25]; got != 3 {
		t.Errorf("NY pgw count = %d, want 3", got)
	}
	if a.Arch != ArchSingleEdge {
		t.Errorf("arch = %v", a.Arch)
	}
}

func TestFieldString(t *testing.T) {
	if got := (Field{}).String(); got != "none" {
		t.Errorf("empty field = %q", got)
	}
	if got := (Field{Start: 32, Len: 8}).String(); got != "bits 32-39" {
		t.Errorf("field = %q", got)
	}
}

func TestArchString(t *testing.T) {
	for arch, want := range map[Arch]string{
		ArchUnknown: "unknown", ArchSingleEdge: "single-edge",
		ArchMultiEdge: "multi-edge", ArchMultiBackbone: "multi-backbone",
	} {
		if arch.String() != want {
			t.Errorf("Arch %d = %q", arch, arch.String())
		}
	}
}
