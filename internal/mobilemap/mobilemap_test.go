package mobilemap

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/cellgeo"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/ship"
	"repro/internal/topogen"
	"repro/internal/traceroute"
	"repro/internal/vclock"
)

type fixture struct {
	s        *topogen.Scenario
	carriers map[string]*topogen.MobileCarrier
	rounds   map[string][]ship.Round
	analyses map[string]*Analysis
}

var fx *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if fx != nil {
		return fx
	}
	s := topogen.NewScenario(51)
	carriers := map[string]*topogen.MobileCarrier{
		"att":     s.BuildMobileCarrier(topogen.ATTMobileProfile()),
		"verizon": s.BuildMobileCarrier(topogen.VerizonProfile()),
		"tmobile": s.BuildMobileCarrier(topogen.TMobileProfile()),
	}
	target := &netsim.Host{
		Addr:           netip.MustParseAddr("2001:db8:a5::1"),
		Router:         s.TransitPoP(geo.MustByName("Chicago").Point),
		ISP:            "neighbor-as",
		Loc:            geo.MustByName("Chicago").Point,
		RespondsToPing: true,
	}
	if err := s.Net.AddHost(target); err != nil {
		t.Fatal(err)
	}
	server := &netsim.Host{
		Addr:           netip.MustParseAddr("2001:db8:ca1d::1"),
		Router:         s.TransitPoP(geo.MustByName("San Diego").Point),
		ISP:            "caida",
		Loc:            geo.MustByName("San Diego").Point,
		RespondsToPing: true,
	}
	if err := s.Net.AddHost(server); err != nil {
		t.Fatal(err)
	}
	rounds := map[string][]ship.Round{}
	analyses := map[string]*Analysis{}
	for name, carrier := range carriers {
		c := &ship.Campaign{
			Net:     s.Net,
			Clock:   vclock.New(s.Epoch()),
			Modem:   carrier.NewModem(),
			CellDB:  cellgeo.NewDB(0.25),
			Targets: []netip.Addr{target.Addr},
			Server:  server.Addr,
			Mode:    traceroute.Parallel,
		}
		var rs []ship.Round
		for _, it := range ship.Shipments() {
			rs = append(rs, c.Run(it)...)
		}
		rounds[name] = rs
		analyses[name] = Analyze(rs, s.DNS)
	}
	fx = &fixture{s: s, carriers: carriers, rounds: rounds, analyses: analyses}
	return fx
}

func TestFig16aATTFields(t *testing.T) {
	a := getFixture(t).analyses["att"]
	if a.UserPrefixLen != 32 {
		t.Errorf("user prefix = /%d, want /32 (2600:380)", a.UserPrefixLen)
	}
	if len(a.GeoLevels) != 1 {
		t.Fatalf("geo levels = %+v, want exactly one (/40 region)", a.GeoLevels)
	}
	if a.GeoLevels[0].PrefixLen != 40 {
		t.Errorf("region level = /%d, want /40", a.GeoLevels[0].PrefixLen)
	}
	if a.RegionField != (Field{Start: 32, Len: 8}) {
		t.Errorf("region field = %v, want bits 32-39", a.RegionField)
	}
	if a.PGWField != (Field{Start: 40, Len: 4}) {
		t.Errorf("pgw field = %v, want bits 40-43", a.PGWField)
	}
	if a.Arch != ArchSingleEdge {
		t.Errorf("arch = %v, want single-edge", a.Arch)
	}
}

func TestTable7ATTPGWCounts(t *testing.T) {
	f := getFixture(t)
	a := f.analyses["att"]
	truth := f.carriers["att"]
	// The journey visits most regions; every visited region's inferred
	// PGW count must match the ground truth (Table 7).
	matched := 0
	for _, reg := range truth.Regions {
		got, visited := a.PGWCounts[reg.Spec.UserBits]
		if !visited {
			continue
		}
		matched++
		// Sparse visits may miss a gateway or two; substantial regions
		// should be within one of truth.
		if diff := got - len(reg.PGWs); diff > 0 || diff < -2 {
			t.Errorf("region %s: inferred %d PGWs, truth %d", reg.Spec.Name, got, len(reg.PGWs))
		}
	}
	if matched < 9 {
		t.Errorf("only %d/11 regions observed", matched)
	}
	// Dwell regions get full coverage: Chicago (CHC) holds parcels.
	chc := a.PGWCounts[0xb0]
	if chc != 5 {
		t.Errorf("CHC PGWs = %d, want 5", chc)
	}
}

func TestFig16bVerizonFields(t *testing.T) {
	a := getFixture(t).analyses["verizon"]
	if a.UserPrefixLen != 24 {
		t.Errorf("user prefix = /%d, want /24 (2600:10xx)", a.UserPrefixLen)
	}
	if len(a.GeoLevels) < 2 {
		t.Fatalf("geo levels = %+v, want a backbone level and an EdgeCO level", a.GeoLevels)
	}
	deepest := a.GeoLevels[len(a.GeoLevels)-1]
	if deepest.PrefixLen != 40 {
		t.Errorf("EdgeCO level = /%d, want /40", deepest.PrefixLen)
	}
	// Backbone level changes strictly less often than the EdgeCO level.
	first := a.GeoLevels[0]
	if first.Changes >= deepest.Changes {
		t.Errorf("backbone level changes (%d) should be fewer than EdgeCO level changes (%d)", first.Changes, deepest.Changes)
	}
	if a.PGWField != (Field{Start: 40, Len: 4}) {
		t.Errorf("pgw field = %v, want bits 40-43", a.PGWField)
	}
	if a.Arch != ArchMultiEdge {
		t.Errorf("arch = %v, want multi-edge", a.Arch)
	}
	// The alter.net backbone shows up as the single provider.
	if len(a.Providers) != 1 || a.Providers[0] != "alter" {
		t.Errorf("providers = %v, want [alter]", a.Providers)
	}
}

func TestTable8VerizonPGWCounts(t *testing.T) {
	f := getFixture(t)
	a := f.analyses["verizon"]
	truth := f.carriers["verizon"]
	matched, bad := 0, 0
	for _, reg := range truth.Regions {
		got, visited := a.PGWCounts[reg.Spec.UserBits]
		if !visited {
			continue
		}
		matched++
		if got > len(reg.PGWs) {
			bad++
			t.Errorf("region %s: inferred %d PGWs, truth %d", reg.Spec.Name, got, len(reg.PGWs))
		}
	}
	if matched < 15 {
		t.Errorf("only %d/29 Verizon regions observed", matched)
	}
}

func TestFig16cTMobileFields(t *testing.T) {
	a := getFixture(t).analyses["tmobile"]
	if a.UserPrefixLen != 32 {
		t.Errorf("user prefix = /%d, want /32 (2607:fb90)", a.UserPrefixLen)
	}
	if a.RegionField.Len != 0 {
		t.Errorf("region field = %v, want none (no geographic user bits)", a.RegionField)
	}
	if a.PGWField != (Field{Start: 32, Len: 8}) {
		t.Errorf("pgw field = %v, want bits 32-39", a.PGWField)
	}
	if a.Arch != ArchMultiBackbone {
		t.Errorf("arch = %v, want multi-backbone", a.Arch)
	}
	if len(a.Providers) < 2 {
		t.Errorf("providers = %v, want several wholesale backbones", a.Providers)
	}
}

func TestVerizonRouterFieldLockstep(t *testing.T) {
	a := getFixture(t).analyses["verizon"]
	if !a.RouterBase.IsValid() {
		t.Fatal("no infrastructure base inferred")
	}
	if got := a.RouterBase.String(); got[:9] != "2001:4888" {
		t.Errorf("router base = %s, want 2001:4888::", got)
	}
	if a.RouterField.Len == 0 {
		t.Error("no router region field found (Fig. 16b bits 64-75)")
	} else if a.RouterField.Start < 60 || a.RouterField.Start > 72 {
		t.Errorf("router field = %v, want around bits 64-75", a.RouterField)
	}
}

func TestATTRouterField(t *testing.T) {
	a := getFixture(t).analyses["att"]
	if !a.RouterBase.IsValid() {
		t.Fatal("no infrastructure base inferred")
	}
	if got := a.RouterBase.String()[:8]; got != "2600:300" {
		t.Errorf("router base = %s, want 2600:300::", a.RouterBase)
	}
	if a.RouterField.Len == 0 {
		t.Error("no router region field found (Fig. 16a bits 32-47)")
	} else if a.RouterField.Start != 32 && a.RouterField.Start != 36 && a.RouterField.Start != 40 {
		t.Errorf("router field = %v, want within bits 32-47", a.RouterField)
	}
}

func TestAnalysisDeterministic(t *testing.T) {
	f := getFixture(t)
	a1 := Analyze(f.rounds["att"], f.s.DNS)
	a2 := Analyze(f.rounds["att"], f.s.DNS)
	if a1.RegionField != a2.RegionField || a1.PGWField != a2.PGWField || a1.Arch != a2.Arch {
		t.Error("analysis not deterministic")
	}
}

func TestEmptyRounds(t *testing.T) {
	a := Analyze(nil, nil)
	if a.Arch != ArchUnknown {
		t.Errorf("empty analysis arch = %v", a.Arch)
	}
	var none []ship.Round
	for i := 0; i < 3; i++ {
		none = append(none, ship.Round{At: time.Now()})
	}
	if got := Analyze(none, nil); got.Arch != ArchUnknown {
		t.Error("signal-less rounds should yield no inference")
	}
}
