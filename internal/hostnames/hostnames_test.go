package hostnames

import "testing"

// TestPaperExamples feeds the exact hostnames from the paper's Fig. 5
// and Fig. 12 through the parser.
func TestPaperExamples(t *testing.T) {
	tests := []struct {
		name string
		want Info
	}{
		// Fig. 5a — Charter path into Southern California.
		{"bu-ether15.lsancarc0yw-bcr00.tbone.rr.com",
			Info{ISP: "charter", CO: "lsancarc", Role: RoleBackbone, Backbone: true}},
		{"agg2.lsancarc01r.socal.rr.com",
			Info{ISP: "charter", CO: "lsancarc", Region: "socal", Role: RoleAgg}},
		{"agg1.sndhcaax01r.socal.rr.com",
			Info{ISP: "charter", CO: "sndhcaax", Region: "socal", Role: RoleAgg}},
		{"agg1.sndgcaxk01h.socal.rr.com",
			Info{ISP: "charter", CO: "sndgcaxk", Region: "socal", Role: RoleEdge}},
		{"agg1.sndgcaxk02m.socal.rr.com",
			Info{ISP: "charter", CO: "sndgcaxk", Region: "socal", Role: RoleEdge}},
		// Fig. 5b — Comcast path into Beaverton, OR.
		{"be-1102-cr02.sunnyvale.ca.ibone.comcast.net",
			Info{ISP: "comcast", CO: "sunnyvale.ca", Role: RoleBackbone, Backbone: true}},
		{"ae-72-ar01.beaverton.or.bverton.comcast.net",
			Info{ISP: "comcast", CO: "beaverton.or", Region: "bverton", Role: RoleAgg}},
		{"ae-1-rur201.troutdale.or.bverton.comcast.net",
			Info{ISP: "comcast", CO: "troutdale.or", Region: "bverton", Role: RoleEdge}},
		{"po-1-1-cbr01.troutdale.or.bverton.comcast.net",
			Info{ISP: "comcast", CO: "troutdale.or", Region: "bverton", Role: RoleEdge}},
		// Fig. 12 — AT&T.
		{"cr2.sd2ca.ip.att.net",
			Info{ISP: "att", CO: "sd2ca", Role: RoleBackbone, Backbone: true}},
		{"107-200-91-1.lightspeed.sndgca.sbcglobal.net",
			Info{ISP: "att", CO: "sndgca", Role: RoleLastMile}},
		// §7.2.2 — Verizon speedtest server in the Vista, CA EdgeCO.
		{"cavt.ost.myvzw.com",
			Info{ISP: "verizon", CO: "cavt", Role: RoleLastMile}},
	}
	for _, tt := range tests {
		got, ok := Parse(tt.name)
		if !ok {
			t.Errorf("Parse(%q) failed", tt.name)
			continue
		}
		if got != tt.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tt.name, got, tt.want)
		}
	}
}

func TestNonMatches(t *testing.T) {
	for _, name := range []string{
		"",
		"example.com",
		"xe-6.cr.dnvrco.transit.example.net",
		"agg1.short01r.socal.rr.com", // CLLI too short
		"be-1102-xx02.sunnyvale.ca.ibone.comcast.net", // unknown role token
		"google-public-dns-a.google.com",
	} {
		if info, ok := Parse(name); ok {
			t.Errorf("Parse(%q) unexpectedly matched: %+v", name, info)
		}
	}
}

func TestSubscriberNames(t *testing.T) {
	info, ok := Parse("c-73-0-59-1.hsd1.us.comcast.net")
	if !ok || info.Role != RoleLastMile || info.CO != "" {
		t.Errorf("comcast subscriber = %+v, %v", info, ok)
	}
	info, ok = Parse("cpe-76-167-26-170.socal.res.rr.com")
	if !ok || info.Role != RoleLastMile {
		t.Errorf("charter subscriber = %+v, %v", info, ok)
	}
}

func TestCOKey(t *testing.T) {
	tests := []struct {
		in   Info
		want string
	}{
		{Info{CO: "troutdale.or", Region: "bverton"}, "bverton/troutdale.or"},
		{Info{CO: "sunnyvale.ca", Backbone: true}, "bb:sunnyvale.ca"},
		{Info{CO: "sndgca"}, "sndgca"},
		{Info{}, ""},
	}
	for _, tt := range tests {
		if got := tt.in.COKey(); got != tt.want {
			t.Errorf("COKey(%+v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestTargetRegexes(t *testing.T) {
	if !TargetRegex("comcast").MatchString("ae-72-ar01.beaverton.or.bverton.comcast.net") {
		t.Error("comcast target regex misses agg router")
	}
	if !TargetRegex("comcast").MatchString("be-1102-cr02.sunnyvale.ca.ibone.comcast.net") {
		t.Error("comcast target regex misses backbone router")
	}
	if TargetRegex("comcast").MatchString("c-73-0-59-1.hsd1.us.comcast.net") {
		t.Error("comcast target regex matches subscribers")
	}
	if !TargetRegex("charter").MatchString("agg1.sndgcaxk02m.socal.rr.com") {
		t.Error("charter target regex misses edge router")
	}
	if TargetRegex("charter").MatchString("cpe-76-167-26-170.socal.res.rr.com") {
		t.Error("charter target regex matches subscribers")
	}
	if !TargetRegex("att").MatchString("107-200-91-1.lightspeed.sndgca.sbcglobal.net") {
		t.Error("att target regex misses lspgw")
	}
	if TargetRegex("att").MatchString("cr2.sd2ca.ip.att.net") {
		t.Error("att lspgw regex matches backbone names")
	}
	if TargetRegex("nosuch").MatchString("anything") {
		t.Error("unknown ISP regex should match nothing")
	}
}

func TestRoleString(t *testing.T) {
	for role, want := range map[Role]string{
		RoleUnknown: "unknown", RoleBackbone: "backbone", RoleAgg: "agg",
		RoleEdge: "edge", RoleLastMile: "lastmile",
	} {
		if role.String() != want {
			t.Errorf("Role(%d).String() = %s", role, role.String())
		}
	}
}
