// Package hostnames extracts topology semantics from router reverse-DNS
// names, the way the paper's hand-crafted regexes do (§5, Fig. 5,
// Fig. 12): the CO identifier (a CLLI fragment for Charter, a location
// name for Comcast, a six-character city code for AT&T lightspeed
// gateways), the regional-network tag, and the router role implied by
// the name.
package hostnames

import (
	"regexp"
	"sync"
)

// Role is the router function implied by a hostname.
type Role uint8

const (
	// RoleUnknown means the name carried no role hint.
	RoleUnknown Role = iota
	// RoleBackbone marks operator backbone routers (ibone/tbone/ip.att).
	RoleBackbone
	// RoleAgg marks aggregation routers.
	RoleAgg
	// RoleEdge marks edge (cable/remote) routers.
	RoleEdge
	// RoleLastMile marks subscriber-side devices (DSLAMs, ONTs, CPE).
	RoleLastMile
)

func (r Role) String() string {
	switch r {
	case RoleBackbone:
		return "backbone"
	case RoleAgg:
		return "agg"
	case RoleEdge:
		return "edge"
	case RoleLastMile:
		return "lastmile"
	}
	return "unknown"
}

// Info is what a hostname reveals.
type Info struct {
	// ISP is the operator the naming convention belongs to.
	ISP string
	// CO is the central-office tag: "troutdale.or" (Comcast style),
	// "sndgcaxk" (Charter 8-char CLLI), "sndgca" (AT&T lightspeed city
	// code), "sd2ca" (AT&T backbone region tag).
	CO string
	// Region is the regional-network tag when present ("bverton",
	// "socal"); empty for backbone names.
	Region string
	Role   Role
	// Backbone is true for operator backbone PoP names.
	Backbone bool
}

var (
	comcastBackboneRe = regexp.MustCompile(`^(?:be|ae|po)-[\d-]+-cr\d+\.([a-z0-9]+\.[a-z]{2})\.ibone\.comcast\.net$`)
	comcastRegionalRe = regexp.MustCompile(`^(?:ae|po)-[\d-]+-(ar|cbr|rur)\d+\.([a-z0-9]+\.[a-z]{2})\.([a-z0-9]+)\.comcast\.net$`)
	comcastSubRe      = regexp.MustCompile(`^c-[\d-]+\.hsd\d\.[a-z]{2}\.comcast\.net$`)

	charterBackboneRe = regexp.MustCompile(`^bu-ether\d+\.([a-z]{8})[0-9a-z]{3}-bcr\d+\.tbone\.rr\.com$`)
	charterRegionalRe = regexp.MustCompile(`^agg\d+\.([a-z]{8})(\d{2})([rmh])\.([a-z0-9]+)\.rr\.com$`)
	charterSubRe      = regexp.MustCompile(`^cpe-[\d-]+\.[a-z0-9]+\.res\.rr\.com$`)

	attLightspeedRe = regexp.MustCompile(`^([\d-]+)\.lightspeed\.([a-z]{6})\.sbcglobal\.net$`)
	attBackboneRe   = regexp.MustCompile(`^[a-z]+\d*\.([a-z0-9]+)\.ip\.att\.net$`)

	vzBackboneRe  = regexp.MustCompile(`\.alter\.net$`)
	vzSpeedtestRe = regexp.MustCompile(`^([a-z]{4})\.ost\.myvzw\.com$`)
)

// parsed memoizes Parse results. Campaigns look the same router names
// up once per trace hop, so the regex cascade runs once per distinct
// name instead of once per call. The snapshot-scale name population is
// bounded (topogen assigns a few names per device), so the cache needs
// no eviction.
var parsed sync.Map // string -> parseResult

type parseResult struct {
	info Info
	// coKey caches info.COKey(): the key is built (and allocated) once
	// per distinct name, and every ParseWithKey hit hands back the same
	// string instance — so downstream map inserts and interner lookups
	// of the key never re-concatenate it.
	coKey string
	ok    bool
}

// Parse extracts Info from a hostname; ok is false when no convention
// matched. Results are memoized per distinct name.
func Parse(name string) (Info, bool) {
	info, _, ok := ParseWithKey(name)
	return info, ok
}

// ParseWithKey is Parse plus the memoized COKey of the parsed name; the
// returned key is the same string instance on every call with the same
// name.
func ParseWithKey(name string) (Info, string, bool) {
	if v, hit := parsed.Load(name); hit {
		r := v.(parseResult)
		return r.info, r.coKey, r.ok
	}
	info, ok := parseOne(name)
	res := parseResult{info: info, ok: ok}
	if ok {
		res.coKey = info.COKey()
	}
	// Keyless subscriber CPE names are the one population that scales
	// with the allocated address space rather than the router count, and
	// campaigns look each up only a handful of times — memoizing them
	// grows the cache with campaign scale for no canonical key and
	// little regex saving (their dedicated patterns sit early in the
	// cascade). Everything else memoizes: router names recur once per
	// trace hop, and keyed last-mile names (AT&T lightspeed) must keep
	// handing back one canonical key instance.
	if !ok || info.Role != RoleLastMile || res.coKey != "" {
		parsed.Store(name, res)
	}
	return info, res.coKey, ok
}

// parseOne runs the regex cascade for one hostname.
func parseOne(name string) (Info, bool) {
	if m := comcastBackboneRe.FindStringSubmatch(name); m != nil {
		return Info{ISP: "comcast", CO: m[1], Role: RoleBackbone, Backbone: true}, true
	}
	if m := comcastRegionalRe.FindStringSubmatch(name); m != nil {
		role := RoleEdge
		if m[1] == "ar" {
			role = RoleAgg
		}
		return Info{ISP: "comcast", CO: m[2], Region: m[3], Role: role}, true
	}
	if comcastSubRe.MatchString(name) {
		return Info{ISP: "comcast", Role: RoleLastMile}, true
	}
	if m := charterBackboneRe.FindStringSubmatch(name); m != nil {
		return Info{ISP: "charter", CO: m[1], Role: RoleBackbone, Backbone: true}, true
	}
	if m := charterRegionalRe.FindStringSubmatch(name); m != nil {
		role := RoleEdge
		if m[3] == "r" {
			role = RoleAgg
		}
		return Info{ISP: "charter", CO: m[1], Region: m[4], Role: role}, true
	}
	if charterSubRe.MatchString(name) {
		return Info{ISP: "charter", Role: RoleLastMile}, true
	}
	if m := attLightspeedRe.FindStringSubmatch(name); m != nil {
		return Info{ISP: "att", CO: m[2], Role: RoleLastMile}, true
	}
	if m := attBackboneRe.FindStringSubmatch(name); m != nil {
		return Info{ISP: "att", CO: m[1], Role: RoleBackbone, Backbone: true}, true
	}
	if m := vzSpeedtestRe.FindStringSubmatch(name); m != nil {
		return Info{ISP: "verizon", CO: m[1], Role: RoleLastMile}, true
	}
	if vzBackboneRe.MatchString(name) {
		return Info{ISP: "verizon", Role: RoleBackbone, Backbone: true}, true
	}
	return Info{}, false
}

// COKey returns the key the mapping pipeline uses for a CO: region-
// qualified when a region tag is present, so identical CO tags in
// different regional networks stay distinct.
func (i Info) COKey() string {
	if i.CO == "" {
		return ""
	}
	if i.Backbone {
		return "bb:" + i.CO
	}
	if i.Region != "" {
		return i.Region + "/" + i.CO
	}
	return i.CO
}

// The per-operator target-selection regexes are fixed strings, so they
// compile once at init; TargetRegex used to recompile per call, which
// showed up in campaign profiles because every snapshot scan starts by
// asking for its regex.
var (
	comcastTargetRe = regexp.MustCompile(`^(?:ae|po|be)-[\d-]+-(?:ar|cbr|rur|cr)\d+\.[a-z0-9.]+\.comcast\.net$`)
	charterTargetRe = regexp.MustCompile(`^(?:agg\d+\.[a-z]{8}\d{2}[rmh]\.[a-z0-9]+|bu-ether\d+\.[a-z]{8}[0-9a-z]{3}-bcr\d+\.tbone)\.rr\.com$`)
	// The paper's lspgw pattern: ([\d-]+-1).lightspeed.([a-z]{6}).sbcglobal.net
	attTargetRe = regexp.MustCompile(`^[\d-]+\.lightspeed\.[a-z]{6}\.sbcglobal\.net$`)
	noTargetRe  = regexp.MustCompile(`$^`) // matches nothing
)

// TargetRegex returns the snapshot-scan regex the campaigns use for
// target selection against an operator (§5.1 step 2, §6.1, Appendix C).
// The returned regex is shared and must not be mutated.
func TargetRegex(isp string) *regexp.Regexp {
	switch isp {
	case "comcast":
		return comcastTargetRe
	case "charter":
		return charterTargetRe
	case "att":
		return attTargetRe
	default:
		return noTargetRe
	}
}
