package attmap

import (
	"net/netip"
	"sort"

	"repro/internal/alias"
	"repro/internal/hostnames"
	"repro/internal/probesched"
	"repro/internal/traceroute"
)

// mapRegion builds the router- and CO-level map of one region from
// internal vantage points plus inter-region DPR traceroutes (§6.1-6.2,
// Appendix C). boots is the bootstrap VP list with breaker-benched VPs
// already removed; stats receives every probe outcome of the region's
// waves (traceroute and alias alike).
func (c *Campaign) mapRegion(eng *traceroute.Engine, tag string, vps []netip.Addr, boots []netip.Addr, lspgws []netip.Addr, edgePrefixes []netip.Prefix, stats *probesched.ProbeStats) *RegionMap {
	rm := &RegionMap{
		Tag:              tag,
		RouterOf:         map[netip.Addr]netip.Addr{},
		Roles:            map[netip.Addr]RouterRole{},
		Links:            map[[2]netip.Addr]bool{},
		LspgwEdgeRouters: map[netip.Addr][]netip.Addr{},
	}
	isLspgw := map[netip.Addr]bool{}
	for _, l := range lspgws {
		isLspgw[l] = true
	}
	inEdge24 := func(a netip.Addr) bool {
		for _, pfx := range edgePrefixes {
			if pfx.Contains(a) {
				return true
			}
		}
		return false
	}

	// Collect traces: intra-region to every gateway, intra- and
	// inter-region DPR to every address of the discovered router /24s
	// (inter-region DPR is what exposes the backbone-to-agg links).
	// Each wave fans out over the probe scheduler and folds back in
	// submission order; the second wave must wait on the first because
	// its targets are hops the first wave observed.
	pool := probesched.New(c.Parallelism, c.Clock)
	var jobs []probesched.Request
	add := func(src, dst netip.Addr) {
		jobs = append(jobs, probesched.Request{Src: src, Dst: dst})
	}
	var traces []traceroute.Trace
	flush := func() {
		batch := eng.Traces(pool, jobs)
		for i := range batch {
			stats.Add(batch[i].Stats())
		}
		traces = append(traces, batch...)
		jobs = jobs[:0]
	}

	for i, dst := range lspgws {
		for k := 0; k < 3 && k < len(vps); k++ {
			add(vps[(i+k*5)%len(vps)], dst)
		}
	}
	sweep := func(srcs []netip.Addr, nSrc int) {
		for _, pfx := range edgePrefixes {
			for a := pfx.Addr().Next(); pfx.Contains(a); a = a.Next() {
				for k := 0; k < nSrc && k < len(srcs); k++ {
					add(srcs[(int(a.As4()[3])+k*7)%len(srcs)], a)
				}
			}
		}
	}
	sweep(vps, 2)
	sweep(boots, 2)
	flush()

	// Second DPR wave: unnamed addresses observed outside the known
	// /24s are candidate aggregation-router interfaces; targeting them
	// directly confirms their interconnections (Table 5).
	// The candidate scan shards the first-wave traces across the pool's
	// workers (per-shard address sets merged by union — the final list
	// is sorted, so shard order cannot matter).
	already := len(traces)
	candidateSet := probesched.Reduce(pool, already,
		func() map[netip.Addr]bool { return map[netip.Addr]bool{} },
		func(set map[netip.Addr]bool, i int) map[netip.Addr]bool {
			for _, h := range traces[i].ResponsiveHops() {
				a := h.Addr
				if isLspgw[a] || inEdge24(a) || set[a] {
					continue
				}
				if _, named := c.DNS.Name(a); named {
					continue
				}
				set[a] = true
			}
			return set
		},
		func(into, from map[netip.Addr]bool) map[netip.Addr]bool {
			for a := range from {
				into[a] = true
			}
			return into
		})
	var candidates []netip.Addr
	for a := range candidateSet {
		candidates = append(candidates, a)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Less(candidates[j]) })
	for i, a := range candidates {
		for k := 0; k < 2 && k < len(vps); k++ {
			add(vps[(i+k*3)%len(vps)], a)
		}
		for k := 0; k < 2 && k < len(boots); k++ {
			add(boots[(i+k*5)%len(boots)], a)
		}
	}
	flush()

	// In-region address set: seed with the gateway addresses, the
	// router /24s, and this region's backbone interfaces; expand once
	// to pull in the unnamed aggregation addresses adjacent to seeds.
	seed := func(a netip.Addr) bool {
		if isLspgw[a] || inEdge24(a) {
			return true
		}
		if name, ok := c.DNS.Name(a); ok {
			info, ok := hostnames.Parse(name)
			return ok && info.ISP == c.ISP && info.Backbone && info.CO == tag
		}
		return false
	}
	// Sharded like the candidate scan: inRegion is a pure set union over
	// per-trace contributions, so the merge order is immaterial.
	inRegion := probesched.Reduce(pool, len(traces),
		func() map[netip.Addr]bool { return map[netip.Addr]bool{} },
		func(set map[netip.Addr]bool, ti int) map[netip.Addr]bool {
			hops := traces[ti].ResponsiveHops()
			for i, h := range hops {
				if !seed(h.Addr) {
					continue
				}
				set[h.Addr] = true
				// Unnamed neighbors of seeds belong to the region.
				for _, j := range []int{i - 1, i + 1} {
					if j < 0 || j >= len(hops) {
						continue
					}
					n := hops[j]
					if absDiff(n.TTL, h.TTL) != 1 {
						continue
					}
					if _, named := c.DNS.Name(n.Addr); !named && !isLspgw[n.Addr] {
						set[n.Addr] = true
					}
				}
			}
			return set
		},
		func(into, from map[netip.Addr]bool) map[netip.Addr]bool {
			for a := range from {
				into[a] = true
			}
			return into
		})

	// Adjacencies and last-mile clustering signals, restricted to the
	// in-region set.
	// Sharded with contiguous-shard concatenation: adjs comes back in
	// trace order (every downstream consumer is a set insert anyway),
	// and lspgwPrev merges as a union of per-shard sets.
	type adj struct{ a, b netip.Addr }
	type adjAcc struct {
		adjs      []adj
		lspgwPrev map[netip.Addr]map[netip.Addr]bool
	}
	adjRes := probesched.Reduce(pool, len(traces),
		func() adjAcc { return adjAcc{lspgwPrev: map[netip.Addr]map[netip.Addr]bool{}} },
		func(a adjAcc, ti int) adjAcc {
			hops := traces[ti].ResponsiveHops()
			for i := 1; i < len(hops); i++ {
				prev, h := hops[i-1], hops[i]
				if h.TTL != prev.TTL+1 {
					continue
				}
				if !inRegion[prev.Addr] || !inRegion[h.Addr] {
					continue
				}
				a.adjs = append(a.adjs, adj{prev.Addr, h.Addr})
				if isLspgw[h.Addr] && !isLspgw[prev.Addr] {
					if a.lspgwPrev[h.Addr] == nil {
						a.lspgwPrev[h.Addr] = map[netip.Addr]bool{}
					}
					a.lspgwPrev[h.Addr][prev.Addr] = true
				}
			}
			return a
		},
		func(into, from adjAcc) adjAcc {
			into.adjs = append(into.adjs, from.adjs...)
			for l, prevs := range from.lspgwPrev {
				if into.lspgwPrev[l] == nil {
					into.lspgwPrev[l] = prevs
					continue
				}
				for p := range prevs {
					into.lspgwPrev[l][p] = true
				}
			}
			return into
		})
	adjs, lspgwPrev := adjRes.adjs, adjRes.lspgwPrev

	// Alias resolution from an internal VP over the region's router
	// addresses.
	var aliasTargets []netip.Addr
	for a := range inRegion {
		if !isLspgw[a] {
			aliasTargets = append(aliasTargets, a)
		}
	}
	sort.Slice(aliasTargets, func(i, j int) bool { return aliasTargets[i].Less(aliasTargets[j]) })
	resolver := &alias.Resolver{Net: c.Net, Clock: c.Clock, VP: vps[0], Parallelism: c.Parallelism, Stats: stats}
	groups := resolver.Resolve(aliasTargets)
	for _, a := range aliasTargets {
		rm.RouterOf[a] = groups.GroupOf(a)[0]
	}
	router := func(a netip.Addr) netip.Addr {
		if r, ok := rm.RouterOf[a]; ok {
			return r
		}
		rm.RouterOf[a] = a
		return a
	}

	// Edge routers: one hop from a last-mile link.
	edgeRouters := map[netip.Addr]bool{}
	for l, prevs := range lspgwPrev {
		for p := range prevs {
			r := router(p)
			edgeRouters[r] = true
			rm.LspgwEdgeRouters[l] = append(rm.LspgwEdgeRouters[l], r)
		}
	}
	for l, rs := range rm.LspgwEdgeRouters {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Less(rs[j]) })
		rm.LspgwEdgeRouters[l] = dedupAddrs(rs)
	}

	// Role classification per router group: operator backbone rDNS wins;
	// then last-mile adjacency or membership in a discovered edge /24
	// marks edge routers (the Table 6 distinction); the remaining
	// unnamed in-region routers form the aggregation layer.
	for a := range inRegion {
		if isLspgw[a] {
			continue
		}
		r := router(a)
		switch {
		case c.isBackboneAddr(a):
			rm.Roles[r] = RoleBackbone
		case rm.Roles[r] == RoleBackbone:
			// keep
		case edgeRouters[r] || inEdge24(a):
			rm.Roles[r] = RoleEdge
		case rm.Roles[r] == RoleEdge:
			// keep
		default:
			rm.Roles[r] = RoleAgg
		}
	}

	// Router-level links.
	for _, ad := range adjs {
		if isLspgw[ad.a] || isLspgw[ad.b] {
			continue
		}
		ra, rb := router(ad.a), router(ad.b)
		if ra != rb {
			rm.Links[linkKey(ra, rb)] = true
		}
	}

	// EdgeCO clustering: routers one hop from the same last-mile link
	// share an office.
	parent := map[netip.Addr]netip.Addr{}
	var find func(netip.Addr) netip.Addr
	find = func(x netip.Addr) netip.Addr {
		if p, ok := parent[x]; ok && p != x {
			root := find(p)
			parent[x] = root
			return root
		}
		parent[x] = x
		return x
	}
	for _, rs := range rm.LspgwEdgeRouters {
		for i := 1; i < len(rs); i++ {
			ra, rb := find(rs[0]), find(rs[i])
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	clusters := map[netip.Addr][]netip.Addr{}
	for r := range edgeRouters {
		root := find(r)
		clusters[root] = append(clusters[root], r)
	}
	for _, members := range clusters {
		sort.Slice(members, func(i, j int) bool { return members[i].Less(members[j]) })
		rm.EdgeCOs = append(rm.EdgeCOs, members)
	}
	sort.Slice(rm.EdgeCOs, func(i, j int) bool { return rm.EdgeCOs[i][0].Less(rm.EdgeCOs[j][0]) })

	// Prefix inventory (Table 6).
	edgeSet, aggSet := map[netip.Prefix]bool{}, map[netip.Prefix]bool{}
	for a := range inRegion {
		if isLspgw[a] || !a.Is4() {
			continue
		}
		pfx := netip.PrefixFrom(a, 24).Masked()
		switch rm.Roles[router(a)] {
		case RoleEdge:
			edgeSet[pfx] = true
		case RoleAgg:
			aggSet[pfx] = true
		}
	}
	for pfx := range edgeSet {
		rm.EdgePrefixes = append(rm.EdgePrefixes, pfx)
	}
	for pfx := range aggSet {
		if !edgeSet[pfx] {
			rm.AggPrefixes = append(rm.AggPrefixes, pfx)
		}
	}
	sort.Slice(rm.EdgePrefixes, func(i, j int) bool { return rm.EdgePrefixes[i].Addr().Less(rm.EdgePrefixes[j].Addr()) })
	sort.Slice(rm.AggPrefixes, func(i, j int) bool { return rm.AggPrefixes[i].Addr().Less(rm.AggPrefixes[j].Addr()) })
	return rm
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// isBackboneAddr reports whether an address carries operator backbone
// rDNS.
func (c *Campaign) isBackboneAddr(a netip.Addr) bool {
	name, ok := c.DNS.Name(a)
	if !ok {
		return false
	}
	info, ok := hostnames.Parse(name)
	return ok && info.ISP == c.ISP && info.Backbone
}

func dedupAddrs(sorted []netip.Addr) []netip.Addr {
	out := sorted[:0]
	for i, a := range sorted {
		if i == 0 || a != sorted[i-1] {
			out = append(out, a)
		}
	}
	return out
}
