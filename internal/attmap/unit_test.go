package attmap

// Unit tests for attmap helpers, complementing the end-to-end fixture
// tests.

import (
	"net/netip"
	"testing"

	"repro/internal/dnsdb"
	"repro/internal/traceroute"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestLinkKeyCanonical(t *testing.T) {
	a, b := addr("10.0.0.1"), addr("10.0.0.2")
	if linkKey(a, b) != linkKey(b, a) {
		t.Error("linkKey not symmetric")
	}
	if linkKey(a, b)[0] != a {
		t.Error("linkKey not canonical (smaller first)")
	}
}

func TestDedupAddrs(t *testing.T) {
	in := []netip.Addr{addr("10.0.0.1"), addr("10.0.0.1"), addr("10.0.0.2"), addr("10.0.0.2"), addr("10.0.0.3")}
	out := dedupAddrs(in)
	if len(out) != 3 {
		t.Errorf("dedup = %v", out)
	}
	if len(dedupAddrs(nil)) != 0 {
		t.Error("nil input mishandled")
	}
}

func TestBackboneTagTakesLast(t *testing.T) {
	dns := dnsdb.New()
	dns.SetLive(addr("12.0.0.1"), "cr1.la2ca.ip.att.net")
	dns.SetLive(addr("12.0.0.2"), "cr2.sd2ca.ip.att.net")
	tr := traceroute.Trace{
		Hops: []traceroute.Hop{
			{TTL: 1, Addr: addr("12.0.0.1"), Type: 1},
			{TTL: 2, Addr: addr("144.232.0.1"), Type: 1}, // unnamed transit
			{TTL: 3, Addr: addr("12.0.0.2"), Type: 1},
		},
	}
	if got := backboneTag(dns, tr); got != "sd2ca" {
		t.Errorf("backboneTag = %q, want the destination-side sd2ca", got)
	}
	if got := backboneTag(dns, traceroute.Trace{}); got != "" {
		t.Errorf("empty trace tag = %q", got)
	}
}

func TestEdgeRouter24Guards(t *testing.T) {
	dns := dnsdb.New()
	c := &Campaign{DNS: dns, ISP: "att"}
	mk := func(hops ...traceroute.Hop) traceroute.Trace {
		return traceroute.Trace{Hops: hops, Reached: true}
	}
	// Happy path: unnamed, TTL-contiguous penultimate hop.
	tr := mk(
		traceroute.Hop{TTL: 3, Addr: addr("71.144.1.9"), Type: 1},
		traceroute.Hop{TTL: 4, Addr: addr("107.192.0.1"), Type: 2},
	)
	pfx, ok := c.edgeRouter24(tr)
	if !ok || pfx.String() != "71.144.1.0/24" {
		t.Errorf("edgeRouter24 = %v %v", pfx, ok)
	}
	// A TTL gap (silent edge router) must not attribute the /24.
	gap := mk(
		traceroute.Hop{TTL: 2, Addr: addr("12.83.0.5"), Type: 1},
		traceroute.Hop{TTL: 4, Addr: addr("107.192.0.1"), Type: 2},
	)
	if _, ok := c.edgeRouter24(gap); ok {
		t.Error("gapped penultimate accepted")
	}
	// A named (backbone) penultimate must not be attributed either.
	dns.SetLive(addr("12.83.0.9"), "cr1.sd2ca.ip.att.net")
	named := mk(
		traceroute.Hop{TTL: 3, Addr: addr("12.83.0.9"), Type: 1},
		traceroute.Hop{TTL: 4, Addr: addr("107.192.0.1"), Type: 2},
	)
	if _, ok := c.edgeRouter24(named); ok {
		t.Error("named penultimate accepted")
	}
	// Unreached traces yield nothing.
	unreached := traceroute.Trace{Hops: tr.Hops}
	if _, ok := c.edgeRouter24(unreached); ok {
		t.Error("unreached trace accepted")
	}
}

func TestRegionMapAccessors(t *testing.T) {
	rm := &RegionMap{
		Roles: map[netip.Addr]RouterRole{
			addr("10.0.0.1"): RoleBackbone,
			addr("10.0.0.2"): RoleBackbone,
			addr("10.0.0.3"): RoleAgg,
			addr("10.0.0.4"): RoleEdge,
		},
		Links: map[[2]netip.Addr]bool{
			linkKey(addr("10.0.0.1"), addr("10.0.0.3")): true,
			linkKey(addr("10.0.0.2"), addr("10.0.0.3")): true,
		},
	}
	if got := rm.Routers(RoleBackbone); len(got) != 2 {
		t.Errorf("backbone routers = %v", got)
	}
	if !rm.BackboneFullMesh() {
		t.Error("full mesh over single agg not detected")
	}
	if rm.InferredBackboneCOs() != 1 {
		t.Errorf("backbone COs = %d", rm.InferredBackboneCOs())
	}
	// Break the mesh: two backbone routers become two separate offices.
	delete(rm.Links, linkKey(addr("10.0.0.2"), addr("10.0.0.3")))
	if rm.BackboneFullMesh() {
		t.Error("broken mesh still reported full")
	}
	if rm.InferredBackboneCOs() != 2 {
		t.Errorf("backbone COs = %d, want 2 without the mesh", rm.InferredBackboneCOs())
	}
	aggs := rm.AggsOfEdgeCO([]netip.Addr{addr("10.0.0.4")})
	if len(aggs) != 0 {
		t.Errorf("unlinked edge cluster has aggs %v", aggs)
	}
}

func TestRoleString(t *testing.T) {
	for role, want := range map[RouterRole]string{
		RoleUnknown: "unknown", RoleBackbone: "backbone", RoleAgg: "agg", RoleEdge: "edge",
	} {
		if role.String() != want {
			t.Errorf("Role %d = %q", role, role.String())
		}
	}
}
