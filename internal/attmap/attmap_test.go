package attmap

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/topogen"
	"repro/internal/vclock"
)

// fixture builds the AT&T scenario once: full San Diego detail, Ark
// bootstrap VPs in nearby regions, and region VPs (Atlas/Ark plus
// McTraceroute hotspots) in San Diego.
type fixture struct {
	s        *topogen.Scenario
	tel      *topogen.Telco
	res      *Result
	hotspots []topogen.WiFiHotspot
	arkAtlas []netip.Addr // the 10 conventional in-region VPs
	mcVPs    []netip.Addr // the hotspot VPs
}

var fx *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if fx != nil {
		return fx
	}
	s := topogen.NewScenario(21)
	tel := s.BuildTelco(topogen.ATTProfile())

	var bootstrap []netip.Addr
	for i, tag := range []string{"la2ca", "bkfdca", "frsnca", "sffca", "scrmca"} {
		bootstrap = append(bootstrap, s.AddTelcoVP(tel, tag, i).Addr)
	}
	// In-region: 2 Ark + 8 Atlas probes, then the WiFi hotspots.
	var arkAtlas []netip.Addr
	for i := 0; i < 10; i++ {
		arkAtlas = append(arkAtlas, s.AddTelcoVP(tel, "sd2ca", i*4).Addr)
	}
	hotspots := s.BuildWiFiHotspots(tel, "sd2ca", 58, 0.4)
	var mcVPs []netip.Addr
	for _, h := range hotspots {
		if h.Host != nil {
			mcVPs = append(mcVPs, h.Host.Addr)
		}
	}
	c := &Campaign{
		Net:          s.Net,
		DNS:          s.DNS,
		Clock:        vclock.New(s.Epoch()),
		ISP:          "att",
		BootstrapVPs: bootstrap,
		RegionVPs:    map[string][]netip.Addr{"sd2ca": append(append([]netip.Addr{}, arkAtlas...), mcVPs...)},
	}
	fx = &fixture{s: s, tel: tel, res: c.Run(), hotspots: hotspots, arkAtlas: arkAtlas, mcVPs: mcVPs}
	return fx
}

func TestRegionInventoryDiscovered(t *testing.T) {
	f := getFixture(t)
	// All 37 lightspeed codes should map to a backbone tag.
	if got := len(f.res.CodeToTag); got < 35 {
		t.Errorf("codes with backbone tags = %d, want ~37", got)
	}
	if f.res.CodeToTag["sndgca"] != "sd2ca" {
		t.Errorf("sndgca maps to %q, want sd2ca", f.res.CodeToTag["sndgca"])
	}
	if len(f.res.Lspgws["sndgca"]) == 0 {
		t.Error("no San Diego lspgw targets")
	}
}

func TestSanDiegoRouterLevel(t *testing.T) {
	f := getFixture(t)
	rm := f.res.Regions["sd2ca"]
	if rm == nil {
		t.Fatal("sd2ca not mapped")
	}
	bbs := rm.Routers(RoleBackbone)
	aggs := rm.Routers(RoleAgg)
	edges := rm.Routers(RoleEdge)
	// Fig. 13a ground shape: 2 backbone routers, 4 agg routers, ~84
	// edge routers.
	if len(bbs) != 2 {
		t.Errorf("backbone routers = %d, want 2", len(bbs))
	}
	if len(aggs) < 3 || len(aggs) > 6 {
		t.Errorf("agg routers = %d, want ~4", len(aggs))
	}
	if len(edges) < 70 || len(edges) > 90 {
		t.Errorf("edge routers = %d, want ~84", len(edges))
	}
}

func TestSanDiegoCOLevel(t *testing.T) {
	f := getFixture(t)
	rm := f.res.Regions["sd2ca"]
	if rm == nil {
		t.Fatal("sd2ca not mapped")
	}
	// Fig. 13b: ~42 EdgeCOs of two routers each, one BackboneCO.
	if got := len(rm.EdgeCOs); got < 36 || got > 46 {
		t.Errorf("EdgeCOs = %d, want ~42", got)
	}
	twoRouter := 0
	for _, cl := range rm.EdgeCOs {
		if len(cl) == 2 {
			twoRouter++
		}
	}
	if float64(twoRouter) < 0.8*float64(len(rm.EdgeCOs)) {
		t.Errorf("only %d/%d EdgeCOs clustered into router pairs", twoRouter, len(rm.EdgeCOs))
	}
	if !rm.BackboneFullMesh() {
		t.Error("backbone routers not fully meshed to agg routers")
	}
	if got := rm.InferredBackboneCOs(); got != 1 {
		t.Errorf("inferred BackboneCOs = %d, want 1", got)
	}
	// Every EdgeCO connects to exactly two agg routers.
	bad := 0
	for _, cl := range rm.EdgeCOs {
		if n := len(rm.AggsOfEdgeCO(cl)); n != 2 {
			bad++
		}
	}
	if bad > len(rm.EdgeCOs)/5 {
		t.Errorf("%d/%d EdgeCOs lack dual agg connectivity", bad, len(rm.EdgeCOs))
	}
}

func TestTable6Prefixes(t *testing.T) {
	f := getFixture(t)
	rm := f.res.Regions["sd2ca"]
	// The paper found ~6 EdgeCO /24s and 1 AggCO /24 in San Diego.
	if got := len(rm.EdgePrefixes); got < 5 || got > 14 {
		t.Errorf("edge prefixes = %d, want ~6-12", got)
	}
	if got := len(rm.AggPrefixes); got != 1 {
		t.Errorf("agg prefixes = %d, want 1", got)
	}
	// Compare with ground truth.
	truthEdge := map[netip.Prefix]bool{}
	for _, p := range f.tel.EdgePrefixes["sd2ca"] {
		truthEdge[p] = true
	}
	for _, p := range rm.EdgePrefixes {
		if !truthEdge[p] {
			t.Errorf("inferred edge prefix %v not in ground truth", p)
		}
	}
	if rm.AggPrefixes[0] != f.tel.AggPrefixes["sd2ca"][0] {
		t.Errorf("agg prefix %v != truth %v", rm.AggPrefixes[0], f.tel.AggPrefixes["sd2ca"][0])
	}
}

func TestMcTracerouteCoverage(t *testing.T) {
	f := getFixture(t)
	// §6.1: the Atlas/Ark probes reveal only about half the paths the
	// hotspot VPs reveal.
	c := &Campaign{Net: f.s.Net, DNS: f.s.DNS, Clock: vclock.New(f.s.Epoch()), ISP: "att"}
	targets := f.tel.EdgePrefixes["sd2ca"]
	var probeSet []netip.Addr
	for _, pfx := range targets {
		a := pfx.Addr()
		for i := 0; i < 24; i++ {
			a = a.Next()
			probeSet = append(probeSet, a)
		}
	}
	arkPaths := c.PathCoverage(f.arkAtlas, probeSet)
	mcPaths := c.PathCoverage(f.mcVPs, probeSet)
	if arkPaths == 0 || mcPaths == 0 {
		t.Fatalf("path counts: ark=%d mc=%d", arkPaths, mcPaths)
	}
	if float64(arkPaths) > 0.8*float64(mcPaths) {
		t.Errorf("Ark/Atlas paths (%d) not substantially fewer than McTraceroute paths (%d)", arkPaths, mcPaths)
	}
}

func TestTable2EdgeLatency(t *testing.T) {
	f := getFixture(t)
	// Google Cloud VM in Los Angeles.
	var vm netip.Addr
	for _, c := range f.s.Clouds {
		if c.Provider == "gcloud" && c.Region == "us-west2" {
			vm = c.Host.Addr
		}
	}
	if !vm.IsValid() {
		t.Fatal("no us-west2 VM")
	}
	c := &Campaign{Net: f.s.Net, DNS: f.s.DNS, Clock: vclock.New(f.s.Epoch()), ISP: "att"}
	sample := f.tel.MLabSample("sd2ca", 0.5)
	lat := c.MeasureEdgeLatency(vm, sample, "sd2ca", 20)
	if len(lat.PerDevice) < 20 {
		t.Fatalf("only %d devices measured", len(lat.PerDevice))
	}
	var ms []float64
	for _, d := range lat.PerDevice {
		ms = append(ms, float64(d)/float64(time.Millisecond))
	}
	mean := 0.0
	for _, v := range ms {
		mean += v
	}
	mean /= float64(len(ms))
	// Table 2 shape: single-digit latencies with a small set of distant
	// offices at more than twice the mean.
	if mean < 2 || mean > 8 {
		t.Errorf("mean EdgeCO latency %.2fms outside plausible band", mean)
	}
	outliers := 0
	for _, v := range ms {
		if v > 2*mean {
			outliers++
		}
	}
	if outliers == 0 {
		t.Error("no latency outliers; the Calexico/El Centro effect is missing")
	}
	if outliers > len(ms)/4 {
		t.Errorf("%d/%d outliers; distribution should be concentrated", outliers, len(ms))
	}
}

// TestNashvilleScenario: the region has a single inferred BackboneCO
// housing both backbone routers; its loss strands every EdgeCO, exactly
// the blast radius of the Christmas 2020 Nashville attack (§6.3).
func TestNashvilleScenario(t *testing.T) {
	f := getFixture(t)
	rm := f.res.Regions["sd2ca"]
	offices := rm.BackboneOffices()
	if len(offices) != 1 {
		t.Fatalf("backbone offices = %d, want 1 (full mesh)", len(offices))
	}
	if impact := rm.BackboneFailureImpact(offices[0]); impact != 1.0 {
		t.Errorf("BackboneCO loss impact = %.2f, want 1.0 (region-wide outage)", impact)
	}
	// Losing a single aggregation router strands nothing: every edge
	// router is dual-homed.
	aggs := rm.Routers(RoleAgg)
	if impact := rm.BackboneFailureImpact(aggs[:1]); impact != 0 {
		t.Errorf("single agg-router loss impact = %.2f, want 0", impact)
	}
}

// TestSecondRegionGeneralizes maps a second, smaller region (Dallas) in
// the same campaign; the pipeline is not San Diego-specific.
func TestSecondRegionGeneralizes(t *testing.T) {
	f := getFixture(t)
	s, tel := f.s, f.tel
	var vps []netip.Addr
	for i := 0; i < 6; i++ {
		vps = append(vps, s.AddTelcoVP(tel, "dlstx", i*2).Addr)
	}
	c := &Campaign{
		Net:          s.Net,
		DNS:          s.DNS,
		Clock:        vclock.New(s.Epoch()),
		ISP:          "att",
		BootstrapVPs: f.res.Lspgws["sndgca"][:0:0], // none; reuse in-region VPs below
		RegionVPs:    map[string][]netip.Addr{"dlstx": vps},
	}
	// Bootstrap needs out-of-region AT&T VPs; borrow the fixture's.
	c.BootstrapVPs = append(c.BootstrapVPs, fxBootstrap(s, tel)...)
	res := c.Run()
	rm := res.Regions["dlstx"]
	if rm == nil {
		t.Fatal("dlstx not mapped")
	}
	if got := len(rm.Routers(RoleBackbone)); got != 2 {
		t.Errorf("dlstx backbone routers = %d, want 2", got)
	}
	if got := len(rm.Routers(RoleAgg)); got < 3 || got > 6 {
		t.Errorf("dlstx agg routers = %d, want ~4", got)
	}
	// 14 EdgeCOs in the profile.
	if got := len(rm.EdgeCOs); got < 11 || got > 16 {
		t.Errorf("dlstx EdgeCOs = %d, want ~14", got)
	}
	if !rm.BackboneFullMesh() {
		t.Error("dlstx backbone not fully meshed")
	}
}

// fxBootstrap returns fresh out-of-region VPs for bootstrap probing.
func fxBootstrap(s *topogen.Scenario, tel *topogen.Telco) []netip.Addr {
	var out []netip.Addr
	for i, tag := range []string{"hstntx", "austx", "okcok", "stlsmo"} {
		out = append(out, s.AddTelcoVP(tel, tag, i+7).Addr)
	}
	return out
}
