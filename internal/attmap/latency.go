package attmap

import (
	"net/netip"
	"strings"
	"time"

	"repro/internal/hostnames"
	"repro/internal/ping"
	"repro/internal/probesched"
	"repro/internal/symtab"
	"repro/internal/traceroute"
)

// EdgeLatency is the Table 2 measurement: minimum RTT from a cloud VM to
// the EdgeCO-resident device in front of each customer.
type EdgeLatency struct {
	// PerDevice maps the penultimate-hop device address to its minimum
	// RTT.
	PerDevice map[netip.Addr]time.Duration
	// Customers maps each measured customer to its penultimate device.
	Customers map[netip.Addr]netip.Addr
}

// MeasureEdgeLatency reproduces §6.3: traceroute from the VM to each
// customer address, keep traces that cross the region's backbone and
// whose penultimate hop responded, then elicit responses from the
// penultimate device with TTL-limited echos and record the minimum RTT.
// The traceroute and ping phases each fan out over the probe scheduler;
// the barrier between them exists because each ping's TTL comes from
// its customer's trace.
func (c *Campaign) MeasureEdgeLatency(vm netip.Addr, customers []netip.Addr, regionTag string, pings int) EdgeLatency {
	if pings == 0 {
		pings = 100
	}
	out := EdgeLatency{
		PerDevice: map[netip.Addr]time.Duration{},
		Customers: map[netip.Addr]netip.Addr{},
	}
	eng := &traceroute.Engine{Net: c.Net, Clock: c.Clock, Attempts: 2, GapLimit: 4}
	pinger := &ping.Pinger{Net: c.Net, Clock: c.Clock}
	pool := probesched.New(c.Parallelism, c.Clock)

	traceJobs := make([]probesched.Request, len(customers))
	for i, cust := range customers {
		traceJobs[i] = probesched.Request{Src: vm, Dst: cust}
	}
	var pingJobs []probesched.Request
	for i, res := range pool.Fan(eng, traceJobs) {
		tr := res.(traceroute.Trace)
		// The customer itself is silent; require a responsive
		// penultimate device after this region's backbone.
		if !crossesBackbone(c, tr, regionTag) {
			continue
		}
		last, ok := tr.LastResponsive()
		if !ok {
			continue
		}
		pingJobs = append(pingJobs, probesched.Request{
			Src: vm, Dst: customers[i], TTL: last.TTL, Count: pings,
		})
	}
	for i, res := range pool.Fan(pinger, pingJobs) {
		po := res.(ping.Outcome)
		min, ok := po.Min()
		if !ok || !po.From.IsValid() {
			continue
		}
		out.Customers[pingJobs[i].Dst] = po.From
		if cur, seen := out.PerDevice[po.From]; !seen || min < cur {
			out.PerDevice[po.From] = min
		}
	}
	return out
}

func crossesBackbone(c *Campaign, tr traceroute.Trace, regionTag string) bool {
	for _, h := range tr.ResponsiveHops() {
		name, ok := c.DNS.Name(h.Addr)
		if !ok {
			continue
		}
		info, ok := hostnames.Parse(name)
		if ok && info.ISP == c.ISP && info.Backbone && info.CO == regionTag {
			return true
		}
	}
	return false
}

// PathCoverage counts the distinct IP paths (from the second hop, per
// §6.1) a set of vantage points observes toward the given targets; the
// McTraceroute evaluation compares hotspot VPs against Atlas/Ark VPs.
func (c *Campaign) PathCoverage(vps []netip.Addr, targets []netip.Addr) int {
	eng := &traceroute.Engine{Net: c.Net, Clock: c.Clock, Attempts: 2, GapLimit: 5}
	pool := probesched.New(c.Parallelism, c.Clock)
	var jobs []probesched.Request
	for _, vp := range vps {
		for _, dst := range targets {
			jobs = append(jobs, probesched.Request{Src: vp, Dst: dst})
		}
	}
	// The interner doubles as the dedup set: distinct path keys get
	// distinct symbols, so the table length IS the distinct-path count.
	seen := symtab.New(0)
	for _, res := range pool.Fan(eng, jobs) {
		tr := res.(traceroute.Trace)
		hops := tr.ResponsiveHops()
		if len(hops) < 2 {
			continue
		}
		var b strings.Builder
		for _, h := range hops[1:] {
			b.WriteString(h.Addr.String())
			b.WriteByte('>')
		}
		seen.Intern(b.String())
	}
	return seen.Len()
}
