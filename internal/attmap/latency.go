package attmap

import (
	"net/netip"
	"strings"
	"time"

	"repro/internal/hostnames"
	"repro/internal/ping"
	"repro/internal/traceroute"
)

// EdgeLatency is the Table 2 measurement: minimum RTT from a cloud VM to
// the EdgeCO-resident device in front of each customer.
type EdgeLatency struct {
	// PerDevice maps the penultimate-hop device address to its minimum
	// RTT.
	PerDevice map[netip.Addr]time.Duration
	// Customers maps each measured customer to its penultimate device.
	Customers map[netip.Addr]netip.Addr
}

// MeasureEdgeLatency reproduces §6.3: traceroute from the VM to each
// customer address, keep traces that cross the region's backbone and
// whose penultimate hop responded, then elicit responses from the
// penultimate device with TTL-limited echos and record the minimum RTT.
func (c *Campaign) MeasureEdgeLatency(vm netip.Addr, customers []netip.Addr, regionTag string, pings int) EdgeLatency {
	if pings == 0 {
		pings = 100
	}
	out := EdgeLatency{
		PerDevice: map[netip.Addr]time.Duration{},
		Customers: map[netip.Addr]netip.Addr{},
	}
	eng := &traceroute.Engine{Net: c.Net, Clock: c.Clock, Attempts: 2, GapLimit: 4}
	pinger := &ping.Pinger{Net: c.Net, Clock: c.Clock}
	for _, cust := range customers {
		tr := eng.Trace(vm, cust)
		// The customer itself is silent; require a responsive
		// penultimate device after this region's backbone.
		if !crossesBackbone(c, tr, regionTag) {
			continue
		}
		last, ok := tr.LastResponsive()
		if !ok {
			continue
		}
		series, from := pinger.TTLLimited(vm, cust, last.TTL, pings)
		min, ok := series.Min()
		if !ok || !from.IsValid() {
			continue
		}
		out.Customers[cust] = from
		if cur, seen := out.PerDevice[from]; !seen || min < cur {
			out.PerDevice[from] = min
		}
	}
	return out
}

func crossesBackbone(c *Campaign, tr traceroute.Trace, regionTag string) bool {
	for _, h := range tr.ResponsiveHops() {
		name, ok := c.DNS.Name(h.Addr)
		if !ok {
			continue
		}
		info, ok := hostnames.Parse(name)
		if ok && info.ISP == c.ISP && info.Backbone && info.CO == regionTag {
			return true
		}
	}
	return false
}

// PathCoverage counts the distinct IP paths (from the second hop, per
// §6.1) a set of vantage points observes toward the given targets; the
// McTraceroute evaluation compares hotspot VPs against Atlas/Ark VPs.
func (c *Campaign) PathCoverage(vps []netip.Addr, targets []netip.Addr) int {
	eng := &traceroute.Engine{Net: c.Net, Clock: c.Clock, Attempts: 2, GapLimit: 5}
	seen := map[string]bool{}
	for _, vp := range vps {
		for _, dst := range targets {
			tr := eng.Trace(vp, dst)
			hops := tr.ResponsiveHops()
			if len(hops) < 2 {
				continue
			}
			var b strings.Builder
			for _, h := range hops[1:] {
				b.WriteString(h.Addr.String())
				b.WriteByte('>')
			}
			seen[b.String()] = true
		}
	}
	return len(seen)
}
