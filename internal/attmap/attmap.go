// Package attmap implements the paper's AT&T case study (§6, Appendix
// C): bootstrapping region discovery from lightspeed DSLAM rDNS,
// discovering per-region EdgeCO router prefixes from inter- and
// intra-region traceroutes, revealing the MPLS-hidden aggregation layer
// with targeted (DPR) traceroutes, clustering routers into EdgeCOs via
// shared last-mile links, and inferring the CO-level topology of
// Fig. 13.
package attmap

import (
	"net/netip"
	"sort"

	"repro/internal/dnsdb"
	"repro/internal/hostnames"
	"repro/internal/netsim"
	"repro/internal/probesched"
	"repro/internal/symtab"
	"repro/internal/traceroute"
	"repro/internal/vclock"
)

// Campaign configures the AT&T measurement.
type Campaign struct {
	Net   *netsim.Network
	DNS   *dnsdb.DB
	Clock *vclock.Clock
	ISP   string

	// BootstrapVPs are Ark-style probes on the operator's DSL lines in
	// assorted regions (the paper used 5 near San Diego).
	BootstrapVPs []netip.Addr
	// RegionVPs are internal vantage points per backbone-region tag
	// (Atlas/Ark probes plus McTraceroute WiFi hosts).
	RegionVPs map[string][]netip.Addr

	// MaxBootstrapPerRegion bounds bootstrap traceroutes per lightspeed
	// code (the full 95,821-address sweep is unnecessary to find the
	// prefixes).
	MaxBootstrapPerRegion int

	// Parallelism is the probe-scheduler worker count (0 selects
	// GOMAXPROCS). Results are byte-identical at any value — see
	// internal/probesched — so this is purely a throughput knob.
	Parallelism int

	// Resilience opts the campaign into retries, probe budgets, and the
	// per-VP circuit breaker (zero value keeps historical behavior). The
	// breaker is fed from the bootstrap wave: a bootstrap VP with zero
	// yield there is dropped from every later DPR wave.
	Resilience probesched.Resilience
}

// RouterRole is the inferred function of a router group.
type RouterRole uint8

const (
	// RoleUnknown covers routers the inference could not place.
	RoleUnknown RouterRole = iota
	// RoleBackbone routers carry ip.att.net-style rDNS.
	RoleBackbone
	// RoleAgg routers appear between the backbone and edge routers.
	RoleAgg
	// RoleEdge routers sit one hop from last-mile links.
	RoleEdge
)

func (r RouterRole) String() string {
	switch r {
	case RoleBackbone:
		return "backbone"
	case RoleAgg:
		return "agg"
	case RoleEdge:
		return "edge"
	}
	return "unknown"
}

// RegionMap is the inferred router- and CO-level topology of one region.
type RegionMap struct {
	// Tag is the backbone rDNS region token (e.g. "sd2ca").
	Tag string
	// Codes are the lightspeed city codes aggregated by this backbone
	// region.
	Codes []string

	// RouterOf maps every observed address to its router representative
	// (alias-group root).
	RouterOf map[netip.Addr]netip.Addr
	// Roles classifies each router representative.
	Roles map[netip.Addr]RouterRole
	// Links are router-level adjacencies (undirected, canonical order).
	Links map[[2]netip.Addr]bool
	// EdgeCOs are clusters of edge routers sharing last-mile links.
	EdgeCOs [][]netip.Addr
	// EdgePrefixes and AggPrefixes are the discovered router /24s
	// (Table 6).
	EdgePrefixes []netip.Prefix
	AggPrefixes  []netip.Prefix
	// LspgwEdgeRouters maps each lightspeed gateway to the edge routers
	// observed serving it.
	LspgwEdgeRouters map[netip.Addr][]netip.Addr
}

// Routers returns the router representatives with the given role.
func (m *RegionMap) Routers(role RouterRole) []netip.Addr {
	var out []netip.Addr
	for r, ro := range m.Roles {
		if ro == role {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// BackboneFullMesh reports whether every backbone router links to every
// agg router — the §6.2 evidence for a single BackboneCO.
func (m *RegionMap) BackboneFullMesh() bool {
	bbs := m.Routers(RoleBackbone)
	aggs := m.Routers(RoleAgg)
	if len(bbs) == 0 || len(aggs) == 0 {
		return false
	}
	for _, bb := range bbs {
		for _, ag := range aggs {
			if !m.Links[linkKey(bb, ag)] {
				return false
			}
		}
	}
	return true
}

// InferredBackboneCOs returns 1 when the backbone routers form a full
// mesh to the aggregation routers (one office housing both routers),
// otherwise the number of backbone routers.
func (m *RegionMap) InferredBackboneCOs() int {
	if m.BackboneFullMesh() {
		return 1
	}
	return len(m.Routers(RoleBackbone))
}

// AggsOfEdgeCO returns the agg routers connected to any router of an
// EdgeCO cluster.
func (m *RegionMap) AggsOfEdgeCO(cluster []netip.Addr) []netip.Addr {
	set := map[netip.Addr]bool{}
	for _, er := range cluster {
		for _, ag := range m.Routers(RoleAgg) {
			if m.Links[linkKey(er, ag)] {
				set[ag] = true
			}
		}
	}
	out := make([]netip.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func linkKey(a, b netip.Addr) [2]netip.Addr {
	if b.Less(a) {
		a, b = b, a
	}
	return [2]netip.Addr{a, b}
}

// Result is the campaign output.
type Result struct {
	// Regions maps backbone tags to inferred topologies (only regions
	// with internal vantage points get router-level maps).
	Regions map[string]*RegionMap
	// CodeToTag records which backbone region serves each lightspeed
	// code (the region inventory of Appendix C).
	CodeToTag map[string]string
	// Lspgws lists the scan-selected gateway addresses per code.
	Lspgws map[string][]netip.Addr

	// Stats is the campaign-wide probe-outcome ledger (accounting only —
	// the inference never branches on it).
	Stats probesched.ProbeStats
	// QuarantinedVPs lists bootstrap VPs the circuit breaker benched.
	QuarantinedVPs []netip.Addr
}

// Run executes the full AT&T pipeline.
func (c *Campaign) Run() *Result {
	if c.MaxBootstrapPerRegion == 0 {
		c.MaxBootstrapPerRegion = 6
	}
	res := &Result{
		Regions:   map[string]*RegionMap{},
		CodeToTag: map[string]string{},
		Lspgws:    map[string][]netip.Addr{},
	}
	eng := &traceroute.Engine{Net: c.Net, Clock: c.Clock, Attempts: 2, GapLimit: 5}
	eng.ApplyResilience(c.Resilience)
	breaker := probesched.NewBreaker(c.Resilience.BreakerThreshold)

	// Target selection: every snapshot address matching the lightspeed
	// pattern, grouped by 6-character city code. The scan and grammar
	// sweep shard across the campaign workers; per-code lists
	// concatenate in shard order, preserving the address-sorted order
	// within each code.
	pool := probesched.New(c.Parallelism, c.Clock)
	re := hostnames.TargetRegex(c.ISP)
	scan := c.DNS.ScanSnapshotParallel(re, c.Parallelism)
	// City codes are interned per shard and the per-code lists live in a
	// dense slice indexed by symbol (Syms are 0..Len-1 by construction);
	// the shard-order table merge keeps concatenation order identical to
	// a sequential scan, and the string-keyed Lspgws map is materialized
	// once at the end.
	type lspAcc struct {
		syms  *symtab.Table
		addrs [][]netip.Addr // indexed by city-code Sym
	}
	lsp := probesched.Reduce(pool, len(scan),
		func() lspAcc { return lspAcc{syms: symtab.New(0)} },
		func(acc lspAcc, i int) lspAcc {
			info, ok := hostnames.Parse(scan[i].Name)
			if ok && info.ISP == c.ISP {
				s := acc.syms.Intern(info.CO)
				if int(s) == len(acc.addrs) {
					acc.addrs = append(acc.addrs, nil)
				}
				acc.addrs[s] = append(acc.addrs[s], scan[i].Addr)
			}
			return acc
		},
		func(into, from lspAcc) lspAcc {
			remap := into.syms.Merge(from.syms)
			for s, addrs := range from.addrs {
				t := int(remap[s])
				for t >= len(into.addrs) {
					into.addrs = append(into.addrs, nil)
				}
				into.addrs[t] = append(into.addrs[t], addrs...)
			}
			return into
		})
	for s, addrs := range lsp.addrs {
		if len(addrs) > 0 {
			res.Lspgws[lsp.syms.Str(symtab.Sym(s))] = addrs
		}
	}

	// Bootstrap: traceroute from the Ark-style VPs toward a few lspgws
	// per code; record the backbone tag seen en route and the /24 of
	// the hop immediately before the gateway (an EdgeCO router). The
	// traces fan out over the probe scheduler; the fold walks them in
	// submission (code, target, VP) order so the first-wins CodeToTag
	// assignment matches a sequential run.
	var jobs []probesched.Request
	var jobCode []string
	edge24s := map[string]map[netip.Prefix]bool{} // tag -> /24 set
	codes := make([]string, 0, len(res.Lspgws))
	for code := range res.Lspgws {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		targets := res.Lspgws[code]
		n := c.MaxBootstrapPerRegion
		if n > len(targets) {
			n = len(targets)
		}
		for i := 0; i < n; i++ {
			dst := targets[i*len(targets)/n]
			for _, vp := range c.BootstrapVPs {
				jobs = append(jobs, probesched.Request{Src: vp, Dst: dst})
				jobCode = append(jobCode, code)
			}
		}
	}
	eng.FoldTraces(pool, jobs, func(j int, tr traceroute.Trace) {
		res.Stats.Add(tr.Stats())
		breaker.Record(tr.Src, len(tr.ResponsiveHops()) == 0)
		code := jobCode[j]
		tag := backboneTag(c.DNS, tr)
		if tag == "" {
			return
		}
		if res.CodeToTag[code] == "" {
			res.CodeToTag[code] = tag
		}
		if pfx, ok := c.edgeRouter24(tr); ok {
			if edge24s[tag] == nil {
				edge24s[tag] = map[netip.Prefix]bool{}
			}
			edge24s[tag][pfx] = true
		}
	})

	// Bootstrap VPs with zero yield are benched before the DPR waves;
	// quarantine decisions run on the in-order fold above, so the list
	// (and every job schedule derived from it) is worker-count invariant.
	res.QuarantinedVPs = breaker.QuarantinedVPs()
	boots := make([]netip.Addr, 0, len(c.BootstrapVPs))
	for _, vp := range c.BootstrapVPs {
		if !breaker.Quarantined(vp) {
			boots = append(boots, vp)
		}
	}

	// Region mapping: for each region with internal VPs, sweep the
	// discovered router /24s (DPR reveals the MPLS-hidden agg layer),
	// trace to every lspgw, alias-resolve, and build the topology.
	// Region tags are walked in sorted order so multi-region campaigns
	// consume virtual time (and hence produce IP-ID-dependent MIDAR
	// evidence) in a fixed sequence.
	tags := make([]string, 0, len(c.RegionVPs))
	for tag := range c.RegionVPs {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		vps := c.RegionVPs[tag]
		if len(vps) == 0 {
			continue
		}
		// Walk the sorted code list, not the CodeToTag map: the lspgw
		// target order feeds straight into mapRegion's probe schedule,
		// so it must not depend on map iteration order.
		var lspgws []netip.Addr
		var regionCodes []string
		for _, code := range codes {
			if res.CodeToTag[code] == tag {
				regionCodes = append(regionCodes, code)
				lspgws = append(lspgws, res.Lspgws[code]...)
			}
		}
		var prefixes []netip.Prefix
		for pfx := range edge24s[tag] {
			prefixes = append(prefixes, pfx)
		}
		sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Addr().Less(prefixes[j].Addr()) })
		rm := c.mapRegion(eng, tag, vps, boots, lspgws, prefixes, &res.Stats)
		rm.Codes = regionCodes
		res.Regions[tag] = rm
	}
	return res
}

// backboneTag extracts the backbone region token serving the trace's
// destination: the LAST operator-backbone hop on the path (an
// inter-region path crosses the source region's backbone first).
func backboneTag(dns *dnsdb.DB, tr traceroute.Trace) string {
	tag := ""
	for _, h := range tr.ResponsiveHops() {
		name, ok := dns.Name(h.Addr)
		if !ok {
			continue
		}
		info, ok := hostnames.Parse(name)
		if ok && info.Backbone && info.ISP == "att" {
			tag = info.CO
		}
	}
	return tag
}

// edgeRouter24 returns the /24 of the hop immediately before a reached
// lightspeed gateway. The hop must be TTL-contiguous with the gateway (a
// silent EdgeCO router would otherwise attribute a backbone /24 to the
// edge) and must be unnamed, since the operator's CO routers carry no
// rDNS.
func (c *Campaign) edgeRouter24(tr traceroute.Trace) (netip.Prefix, bool) {
	hops := tr.ResponsiveHops()
	if !tr.Reached || len(hops) < 2 {
		return netip.Prefix{}, false
	}
	last := hops[len(hops)-1]
	prev := hops[len(hops)-2]
	if prev.TTL != last.TTL-1 || !prev.Addr.Is4() {
		return netip.Prefix{}, false
	}
	if _, named := c.DNS.Name(prev.Addr); named {
		return netip.Prefix{}, false
	}
	return netip.PrefixFrom(prev.Addr, 24).Masked(), true
}

// BackboneOffices groups the backbone routers into inferred offices:
// one shared office when they form a full mesh to the aggregation layer
// (§6.2's conclusion), otherwise one office per router.
func (m *RegionMap) BackboneOffices() [][]netip.Addr {
	bbs := m.Routers(RoleBackbone)
	if len(bbs) == 0 {
		return nil
	}
	if m.BackboneFullMesh() {
		return [][]netip.Addr{bbs}
	}
	out := make([][]netip.Addr, len(bbs))
	for i, bb := range bbs {
		out[i] = []netip.Addr{bb}
	}
	return out
}

// BackboneFailureImpact simulates the loss of one inferred BackboneCO
// (the Christmas 2020 Nashville attack) and returns the fraction of
// edge routers left with no path to any surviving backbone router.
func (m *RegionMap) BackboneFailureImpact(office []netip.Addr) float64 {
	failed := map[netip.Addr]bool{}
	for _, bb := range office {
		failed[bb] = true
	}
	// Adjacency over surviving routers.
	adj := map[netip.Addr][]netip.Addr{}
	for l := range m.Links {
		a, b := l[0], l[1]
		if failed[a] || failed[b] {
			continue
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	reach := map[netip.Addr]bool{}
	var queue []netip.Addr
	for _, bb := range m.Routers(RoleBackbone) {
		if !failed[bb] {
			reach[bb] = true
			queue = append(queue, bb)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if !reach[nb] {
				reach[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	edges := m.Routers(RoleEdge)
	if len(edges) == 0 {
		return 0
	}
	cut := 0
	for _, e := range edges {
		if !reach[e] {
			cut++
		}
	}
	return float64(cut) / float64(len(edges))
}
