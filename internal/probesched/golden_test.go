package probesched_test

import (
	"encoding/hex"
	"runtime"
	"testing"
)

// goldenCampaignDigest is the quickstart campaign digest captured on the
// slow path — linear destination resolution, per-probe path computation,
// per-job clock forks — immediately before the probe fast path (LPM FIB,
// compiled flows, hop replay) landed. The fast path must be
// bit-identical to that implementation, not merely self-consistent
// across worker counts, so this value is pinned rather than derived.
const goldenCampaignDigest = "30f935df9d973265eb27680b469cc04c2b2a8056bb635844f8b47b3d327555bd"

// goldenAliasDigest and goldenRegionGraphDigest pin the two inference
// stages the parallel pipeline reworked hardest: the alias-resolution
// evidence (Mercator + MIDAR groups and pair counts) and the region
// graphs as serialized into the report JSON. A whole-campaign mismatch
// plus these two localizes the drift to collection, aliasing, or graph
// construction.
const (
	goldenAliasDigest       = "c8965ee5b475627195de223721d28e1c2f0e1dfec21b85f38f3661e0f17d6d43"
	goldenRegionGraphDigest = "06413d1e832707f76250e923f766553d933fa210a28ff988a31385c5f7f4e4cf"
)

// TestFastPathMatchesGoldenDigest is the fast-path equivalence oracle:
// the campaign digest (serialized collection + report JSON + final
// virtual-clock reading) must equal the pre-fast-path golden across a
// GOMAXPROCS × worker-count grid.
func TestFastPathMatchesGoldenDigest(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	procsGrid := []int{1, 4}
	workersGrid := []int{1, 2, 4, 8}
	if testing.Short() {
		procsGrid = []int{prev}
		workersGrid = []int{1, 4}
	}
	for _, procs := range procsGrid {
		runtime.GOMAXPROCS(procs)
		for _, workers := range workersGrid {
			campaign, alias, graph := campaignDigests(t, workers)
			if got := hex.EncodeToString(campaign[:]); got != goldenCampaignDigest {
				t.Errorf("GOMAXPROCS=%d workers=%d: digest %s differs from pre-fast-path golden %s",
					procs, workers, got, goldenCampaignDigest)
			}
			if got := hex.EncodeToString(alias[:]); got != goldenAliasDigest {
				t.Errorf("GOMAXPROCS=%d workers=%d: alias digest %s differs from golden %s",
					procs, workers, got, goldenAliasDigest)
			}
			if got := hex.EncodeToString(graph[:]); got != goldenRegionGraphDigest {
				t.Errorf("GOMAXPROCS=%d workers=%d: region-graph digest %s differs from golden %s",
					procs, workers, got, goldenRegionGraphDigest)
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
	runtime.GOMAXPROCS(prev)
}
