package probesched_test

import (
	"encoding/hex"
	"runtime"
	"testing"
)

// goldenCampaignDigest is the quickstart campaign digest captured on the
// slow path — linear destination resolution, per-probe path computation,
// per-job clock forks — immediately before the probe fast path (LPM FIB,
// compiled flows, hop replay) landed. The fast path must be
// bit-identical to that implementation, not merely self-consistent
// across worker counts, so this value is pinned rather than derived.
//
// Re-pinned once when the report gained its explicit schema_version and
// generated_seed fields (comap.ReportSchemaVersion 2): the campaign and
// region-graph digests hash the report JSON, so the sanctioned schema
// bump moved exactly those two. The alias digest, which hashes no
// report bytes, did not move — evidence the bump touched serialization
// only, never a measurement or an inference.
const goldenCampaignDigest = "6c7e7c90bd1ad41073ce011ac9f4060a5d4310fc3ae95ac42aadd872ba1db758"

// goldenAliasDigest and goldenRegionGraphDigest pin the two inference
// stages the parallel pipeline reworked hardest: the alias-resolution
// evidence (Mercator + MIDAR groups and pair counts) and the region
// graphs as serialized into the report JSON. A whole-campaign mismatch
// plus these two localizes the drift to collection, aliasing, or graph
// construction.
const (
	goldenAliasDigest       = "c8965ee5b475627195de223721d28e1c2f0e1dfec21b85f38f3661e0f17d6d43"
	goldenRegionGraphDigest = "3e6f8f61d0de97f7b129439b10dd0aa8e098853105b0517da482c489ca454d1b"
)

// TestFastPathMatchesGoldenDigest is the fast-path equivalence oracle:
// the campaign digest (serialized collection + report JSON + final
// virtual-clock reading) must equal the pre-fast-path golden across a
// GOMAXPROCS × worker-count grid.
func TestFastPathMatchesGoldenDigest(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	procsGrid := []int{1, 4}
	workersGrid := []int{1, 2, 4, 8}
	if testing.Short() {
		procsGrid = []int{prev}
		workersGrid = []int{1, 4}
	}
	for _, procs := range procsGrid {
		runtime.GOMAXPROCS(procs)
		for _, workers := range workersGrid {
			campaign, alias, graph := campaignDigests(t, workers)
			if got := hex.EncodeToString(campaign[:]); got != goldenCampaignDigest {
				t.Errorf("GOMAXPROCS=%d workers=%d: digest %s differs from pre-fast-path golden %s",
					procs, workers, got, goldenCampaignDigest)
			}
			if got := hex.EncodeToString(alias[:]); got != goldenAliasDigest {
				t.Errorf("GOMAXPROCS=%d workers=%d: alias digest %s differs from golden %s",
					procs, workers, got, goldenAliasDigest)
			}
			if got := hex.EncodeToString(graph[:]); got != goldenRegionGraphDigest {
				t.Errorf("GOMAXPROCS=%d workers=%d: region-graph digest %s differs from golden %s",
					procs, workers, got, goldenRegionGraphDigest)
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
	runtime.GOMAXPROCS(prev)
}
