package probesched_test

import (
	"encoding/hex"
	"runtime"
	"testing"
)

// goldenCampaignDigest is the quickstart campaign digest captured on the
// slow path — linear destination resolution, per-probe path computation,
// per-job clock forks — immediately before the probe fast path (LPM FIB,
// compiled flows, hop replay) landed. The fast path must be
// bit-identical to that implementation, not merely self-consistent
// across worker counts, so this value is pinned rather than derived.
const goldenCampaignDigest = "30f935df9d973265eb27680b469cc04c2b2a8056bb635844f8b47b3d327555bd"

// TestFastPathMatchesGoldenDigest is the fast-path equivalence oracle:
// the campaign digest (serialized collection + report JSON + final
// virtual-clock reading) must equal the pre-fast-path golden across a
// GOMAXPROCS × worker-count grid.
func TestFastPathMatchesGoldenDigest(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	procsGrid := []int{1, 4}
	workersGrid := []int{1, 4}
	if testing.Short() {
		procsGrid = []int{prev}
		workersGrid = []int{1, 4}
	}
	for _, procs := range procsGrid {
		runtime.GOMAXPROCS(procs)
		for _, workers := range workersGrid {
			d := campaignDigest(t, workers)
			if got := hex.EncodeToString(d[:]); got != goldenCampaignDigest {
				t.Fatalf("GOMAXPROCS=%d workers=%d: digest %s differs from pre-fast-path golden %s",
					procs, workers, got, goldenCampaignDigest)
			}
		}
	}
	runtime.GOMAXPROCS(prev)
}
