package probesched

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/vclock"
)

// TestMapFoldStreamsInOrder checks that fold observes exactly the
// sequence (0, r0), (1, r1), ... at every worker count, and that the
// campaign clock lands on the same instant Map would have produced.
func TestMapFoldStreamsInOrder(t *testing.T) {
	const n = 1003
	jobs := make([]int, n)
	for i := range jobs {
		jobs[i] = i
	}
	run := func(clk *vclock.Clock, job int) int {
		// Uneven virtual cost so stragglers exercise the out-of-order
		// chunk completion path.
		clk.Advance(time.Duration(job%7+1) * time.Millisecond)
		return job * 3
	}

	var wantClock time.Time
	var wantOrder []int
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			clock := vclock.New(time.Unix(0, 0).UTC())
			p := New(workers, clock)
			var order []int
			var sum int
			MapFold(p, jobs, run, func(i int, r int) {
				order = append(order, i)
				sum += r
			})
			for i, got := range order {
				if got != i {
					t.Fatalf("fold index %d observed as %d", i, got)
				}
			}
			if len(order) != n {
				t.Fatalf("folded %d results, want %d", len(order), n)
			}
			if want := 3 * n * (n - 1) / 2; sum != want {
				t.Fatalf("folded sum = %d, want %d", sum, want)
			}
			if workers == 1 {
				wantClock = clock.Now()
				wantOrder = order
			} else {
				if !clock.Now().Equal(wantClock) {
					t.Fatalf("clock after MapFold = %v, want %v", clock.Now(), wantClock)
				}
				if len(order) != len(wantOrder) {
					t.Fatalf("fold count differs across workers")
				}
			}

			// Map over the same jobs must advance an identical total.
			clock2 := vclock.New(time.Unix(0, 0).UTC())
			res := Map(New(workers, clock2), jobs, run)
			if !clock2.Now().Equal(wantClock) {
				t.Fatalf("Map clock = %v, want %v", clock2.Now(), wantClock)
			}
			for i, r := range res {
				if r != i*3 {
					t.Fatalf("Map result[%d] = %d, want %d", i, r, i*3)
				}
			}
		})
	}
}

// TestMapFoldNilFold checks Map's delegation path: a nil fold must not
// deadlock (workers buffer chunk completions) and must return the full
// result slice.
func TestMapFoldNilFold(t *testing.T) {
	jobs := make([]int, 257)
	for i := range jobs {
		jobs[i] = i
	}
	p := New(4, vclock.New(time.Unix(0, 0).UTC()))
	res := Map(p, jobs, func(clk *vclock.Clock, job int) int { return job + 1 })
	for i, r := range res {
		if r != i+1 {
			t.Fatalf("result[%d] = %d, want %d", i, r, i+1)
		}
	}
}

// TestReduceMatchesSequential checks the shard-accumulate-merge result
// equals the sequential fold for a contiguity-sensitive accumulator
// (first-wins per key plus a count), at every worker count.
func TestReduceMatchesSequential(t *testing.T) {
	const n = 1201
	type acc struct {
		first map[int]int // key -> first index that produced it
		count int
	}
	key := func(i int) int { return i % 97 }
	initA := func() acc { return acc{first: make(map[int]int)} }
	accum := func(a acc, i int) acc {
		if _, ok := a.first[key(i)]; !ok {
			a.first[key(i)] = i
		}
		a.count++
		return a
	}
	merge := func(into, from acc) acc {
		for k, v := range from.first {
			if _, ok := into.first[k]; !ok {
				into.first[k] = v
			}
		}
		into.count += from.count
		return into
	}

	seq := initA()
	for i := 0; i < n; i++ {
		seq = accum(seq, i)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := New(workers, vclock.New(time.Unix(0, 0).UTC()))
			got := Reduce(p, n, initA, accum, merge)
			if got.count != seq.count {
				t.Fatalf("count = %d, want %d", got.count, seq.count)
			}
			if len(got.first) != len(seq.first) {
				t.Fatalf("len(first) = %d, want %d", len(got.first), len(seq.first))
			}
			for k, v := range seq.first {
				if got.first[k] != v {
					t.Fatalf("first[%d] = %d, want %d", k, got.first[k], v)
				}
			}
		})
	}
}

// TestReduceEmpty checks the n=0 path returns a bare init().
func TestReduceEmpty(t *testing.T) {
	p := New(4, vclock.New(time.Unix(0, 0).UTC()))
	got := Reduce(p, 0,
		func() int { return 42 },
		func(a int, i int) int { return a + i },
		func(into, from int) int { return into + from })
	if got != 42 {
		t.Fatalf("Reduce over empty range = %d, want 42", got)
	}
}
