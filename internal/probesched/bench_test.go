package probesched_test

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkParallelCampaign runs the quickstart cable campaign at 1 and
// N workers (N = GOMAXPROCS, plus fixed 4 for cross-host comparability).
// The outputs are byte-identical — see TestCampaignDeterministic-
// AcrossParallelism — so the ratio of these timings is pure scheduler
// speedup. On a single-core host the workload is CPU-bound and the
// ratio stays ~1; the speedup materializes with GOMAXPROCS > 1.
func BenchmarkParallelCampaign(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := quickstartCampaign(workers)
				b.StartTimer()
				col := c.Run()
				if len(col.Paths) == 0 {
					b.Fatal("campaign collected no paths")
				}
			}
		})
	}
}

func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}
