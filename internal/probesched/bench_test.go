package probesched_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/comap"
	"repro/internal/netsim"
	"repro/internal/probesched"
)

// BenchmarkParallelCampaign runs the quickstart cable campaign
// end-to-end (collection + inference) across the worker grid. The
// outputs are byte-identical — see TestCampaignDeterministic-
// AcrossParallelism — so the ratio of these timings is pure scheduler
// speedup. On a single-core host the workload is CPU-bound and the
// ratio stays ~1; the speedup materializes with GOMAXPROCS > 1.
//
// Beyond -benchmem's per-op totals, the bench reports allocation cost
// normalized per traceroute (allocs/trace, KB/trace): per-op numbers
// move when the scenario grows, but the per-trace cost is what the
// memory engine actually controls, so it is the comparable figure
// across PRs.
func BenchmarkParallelCampaign(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var allocs, bytes float64
			traces := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := quickstartCampaign(workers)
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				b.StartTimer()
				res := comap.Run(c)
				b.StopTimer()
				runtime.ReadMemStats(&m1)
				allocs += float64(m1.Mallocs - m0.Mallocs)
				bytes += float64(m1.TotalAlloc - m0.TotalAlloc)
				traces += res.Collection.TracesRun
				if len(res.Collection.Paths) == 0 {
					b.Fatal("campaign collected no paths")
				}
			}
			if traces > 0 {
				b.ReportMetric(allocs/float64(traces), "allocs/trace")
				b.ReportMetric(bytes/float64(traces)/1024, "KB/trace")
			}
		})
	}
}

// BenchmarkCampaignCollect times only the probing half: traceroute
// waves, rDNS-directed stages, and alias resolution, without Phase 1/2
// inference.
func BenchmarkCampaignCollect(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := quickstartCampaign(workers)
				b.StartTimer()
				col := c.Run()
				if len(col.Paths) == 0 {
					b.Fatal("campaign collected no paths")
				}
			}
		})
	}
}

// BenchmarkCampaignInfer times only the analysis half — the B.1
// mapping refinement and the Phase 2 graph construction — over one
// pre-collected quickstart collection.
func BenchmarkCampaignInfer(b *testing.B) {
	c := quickstartCampaign(1)
	col := c.Run()
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := comap.BuildMappingParallel(col, c.DNS, c.ISP, workers)
				inf := comap.BuildGraphsParallel(col, m, workers)
				if len(inf.Regions) == 0 {
					b.Fatal("inference produced no regions")
				}
			}
		})
	}
}

// BenchmarkFaultedCampaign runs the quickstart campaign through an
// increasingly lossy measurement plane with retries enabled, at
// GOMAXPROCS workers. The loss rate is encoded in the sub-benchmark
// name so benchjson archives it (the "loss" field): the cost of
// resilience shows up as extra probes per campaign, not extra cost per
// probe.
func BenchmarkFaultedCampaign(b *testing.B) {
	for _, loss := range []float64{0, 0.05, 0.10} {
		b.Run(fmt.Sprintf("loss=%.2f", loss), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := quickstartCampaign(runtime.GOMAXPROCS(0))
				if loss > 0 {
					c.Net.SetFaultPlan(netsim.FaultPlan{Seed: 7, LinkLoss: loss})
					c.Resilience = probesched.Resilience{
						Attempts:         3,
						RetryBackoff:     200 * time.Millisecond,
						BreakerThreshold: 10,
					}
				}
				b.StartTimer()
				res := comap.Run(c)
				if len(res.Collection.Paths) == 0 {
					b.Fatal("faulted campaign collected no paths")
				}
			}
		})
	}
}

func benchWorkerCounts() []int {
	counts := []int{1, 2, 4, 8}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 && n != 8 {
		counts = append(counts, n)
	}
	return counts
}
