package probesched_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/comap"
	"repro/internal/netsim"
	"repro/internal/probesched"
)

// BenchmarkParallelCampaign runs the quickstart cable campaign
// end-to-end (collection + inference) across the worker grid. The
// outputs are byte-identical — see TestCampaignDeterministic-
// AcrossParallelism — so the ratio of these timings is pure scheduler
// speedup. On a single-core host the workload is CPU-bound and the
// ratio stays ~1; the speedup materializes with GOMAXPROCS > 1.
func BenchmarkParallelCampaign(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := quickstartCampaign(workers)
				b.StartTimer()
				res := comap.Run(c)
				if len(res.Collection.Paths) == 0 {
					b.Fatal("campaign collected no paths")
				}
			}
		})
	}
}

// BenchmarkCampaignCollect times only the probing half: traceroute
// waves, rDNS-directed stages, and alias resolution, without Phase 1/2
// inference.
func BenchmarkCampaignCollect(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := quickstartCampaign(workers)
				b.StartTimer()
				col := c.Run()
				if len(col.Paths) == 0 {
					b.Fatal("campaign collected no paths")
				}
			}
		})
	}
}

// BenchmarkCampaignInfer times only the analysis half — the B.1
// mapping refinement and the Phase 2 graph construction — over one
// pre-collected quickstart collection.
func BenchmarkCampaignInfer(b *testing.B) {
	c := quickstartCampaign(1)
	col := c.Run()
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := comap.BuildMappingParallel(col, c.DNS, c.ISP, workers)
				inf := comap.BuildGraphsParallel(col, m, workers)
				if len(inf.Regions) == 0 {
					b.Fatal("inference produced no regions")
				}
			}
		})
	}
}

// BenchmarkFaultedCampaign runs the quickstart campaign through an
// increasingly lossy measurement plane with retries enabled, at
// GOMAXPROCS workers. The loss rate is encoded in the sub-benchmark
// name so benchjson archives it (the "loss" field): the cost of
// resilience shows up as extra probes per campaign, not extra cost per
// probe.
func BenchmarkFaultedCampaign(b *testing.B) {
	for _, loss := range []float64{0, 0.05, 0.10} {
		b.Run(fmt.Sprintf("loss=%.2f", loss), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := quickstartCampaign(runtime.GOMAXPROCS(0))
				if loss > 0 {
					c.Net.SetFaultPlan(netsim.FaultPlan{Seed: 7, LinkLoss: loss})
					c.Resilience = probesched.Resilience{
						Attempts:         3,
						RetryBackoff:     200 * time.Millisecond,
						BreakerThreshold: 10,
					}
				}
				b.StartTimer()
				res := comap.Run(c)
				if len(res.Collection.Paths) == 0 {
					b.Fatal("faulted campaign collected no paths")
				}
			}
		})
	}
}

func benchWorkerCounts() []int {
	counts := []int{1, 2, 4, 8}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 && n != 8 {
		counts = append(counts, n)
	}
	return counts
}
