package probesched_test

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/comap"
	"repro/internal/segfault"
	"repro/internal/traceroute"
)

// The crash-safe campaign's equivalence oracle: a durable campaign —
// uninterrupted, killed at an arbitrary point and resumed, or resumed
// from a complete log — must reproduce the same three pinned golden
// digests as the historical resident pipeline. The kill grid below
// crosses kill points (first window, mid-campaign, last window) with
// window sizes {16, 4096} and worker counts {1, 4}; every resumed run
// rebuilds the scenario from scratch (cold simulator counters, fresh
// virtual clock), so a digest match proves the checkpoint cursor and
// the log replay's IP-ID warm-up reconstruct the crashed process's
// state exactly.

// durableQuickstart is the quickstart campaign in durable windowed mode
// over dir, with spill I/O routed through fsys (nil = real OS).
func durableQuickstart(workers, window int, dir string, fsys segfault.FS) *comap.Campaign {
	c := quickstartCampaign(workers)
	c.TraceWindow = window
	c.SpillDir = dir
	c.Durable = true
	c.SpillFS = fsys
	return c
}

// runDurablePipeline runs the full pipeline and hashes it exactly as
// digestsOf does, additionally surfacing the campaign's resume record.
// closeRes=false leaves the durable spill on disk, simulating a process
// that completed its campaign but died before consuming it.
func runDurablePipeline(t *testing.T, c *comap.Campaign, closeRes bool) (campaign, aliasd, graph [32]byte, resumed *traceroute.Resume) {
	t.Helper()
	res := comap.Run(c)
	if closeRes {
		defer res.Close()
	}
	var report strings.Builder
	if err := res.WriteJSON(&report, "comcast"); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var b strings.Builder
	b.WriteString(serializeCollection(res.Collection))
	b.WriteString(report.String())
	fmt.Fprintf(&b, "clock %v\n", c.Clock.Now().UnixNano())
	campaign = sha256.Sum256([]byte(b.String()))
	aliasd = sha256.Sum256([]byte(serializeAliases(res.Collection)))
	graph = sha256.Sum256([]byte(report.String()))
	return campaign, aliasd, graph, res.Collection.Resumed
}

func checkGolden(t *testing.T, label string, campaign, aliasd, graph [32]byte) {
	t.Helper()
	if got := hex.EncodeToString(campaign[:]); got != goldenCampaignDigest {
		t.Errorf("%s: campaign digest %s differs from golden %s", label, got, goldenCampaignDigest)
	}
	if got := hex.EncodeToString(aliasd[:]); got != goldenAliasDigest {
		t.Errorf("%s: alias digest %s differs from golden %s", label, got, goldenAliasDigest)
	}
	if got := hex.EncodeToString(graph[:]); got != goldenRegionGraphDigest {
		t.Errorf("%s: region-graph digest %s differs from golden %s", label, got, goldenRegionGraphDigest)
	}
	if t.Failed() {
		t.FailNow()
	}
}

// crashDurable runs the campaign expecting its injected crash plan to
// fire; the unwound panic must classify as segfault.ErrCrash.
func crashDurable(t *testing.T, c *comap.Campaign) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("campaign survived its crash plan")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, segfault.ErrCrash) {
			t.Fatalf("campaign died with %v, want a segfault.ErrCrash", r)
		}
	}()
	comap.Run(c)
}

// TestDurableCampaignMatchesGoldenDigest pins that turning durability
// on — fsynced seals, manifests, flush checkpoints — is digest-neutral:
// an uninterrupted durable run equals the resident goldens at every
// window size and worker count the windowed goldens cover.
func TestDurableCampaignMatchesGoldenDigest(t *testing.T) {
	for _, window := range []int{16, 4096} {
		for _, workers := range []int{1, 4} {
			c := durableQuickstart(workers, window, t.TempDir(), nil)
			campaign, aliasd, graph, resumed := runDurablePipeline(t, c, true)
			if resumed == nil || resumed.Resumed {
				t.Fatalf("window=%d workers=%d: fresh durable run reported resume %+v", window, workers, resumed)
			}
			checkGolden(t, fmt.Sprintf("durable window=%d workers=%d", window, workers),
				campaign, aliasd, graph)
		}
	}
}

// TestDurableKillAndResumeGrid is the PR's acceptance grid: kill a
// durable campaign at the first window seal, mid-campaign, and the
// final window seal (ordinals learned from an instrumented pass, so the
// grid tracks the real workload), then resume over the surviving spill
// directory with a freshly built scenario and require bit-identical
// golden digests. A rename-crash cell covers the checkpoint-publish
// window too.
func TestDurableKillAndResumeGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full kill/resume grid; skipped with -short")
	}
	for _, window := range []int{16, 4096} {
		// Instrumented pass: count the log syncs and manifest renames one
		// complete collection performs at this window size (both are
		// fold-side and therefore worker-count invariant).
		meter := segfault.Inject(segfault.OS, segfault.Plan{})
		mc := durableQuickstart(4, window, t.TempDir(), meter)
		mcol := mc.Run()
		syncs, _, renames := meter.Counts()
		if err := mcol.Close(); err != nil {
			t.Fatalf("closing instrumented collection: %v", err)
		}
		if syncs < 3 {
			t.Fatalf("window=%d: instrumented run saw only %d log syncs", window, syncs)
		}

		// Log sync #1 is the header; #2 is the first window's seal; the
		// final sync seals the last window.
		kills := []struct {
			name string
			plan segfault.Plan
			// wantResumed, when true, requires recovery to find a usable
			// checkpoint (late kills always have one; the first-window
			// kill legitimately restarts fresh).
			wantResumed bool
		}{
			{"first-window", segfault.Plan{Seed: 101, CrashOnLogSync: 2}, false},
			{"mid-campaign", segfault.Plan{Seed: 102, CrashOnLogSync: 2 + (syncs-2)/2}, false},
			{"last-window", segfault.Plan{Seed: 103, CrashOnLogSync: syncs}, true},
			{"checkpoint-rename", segfault.Plan{Seed: 104, CrashOnRename: renames / 2}, false},
		}
		for _, workers := range []int{1, 4} {
			anyResumed := false
			for _, kill := range kills {
				label := fmt.Sprintf("window=%d workers=%d kill=%s", window, workers, kill.name)
				dir := t.TempDir()
				inj := segfault.Inject(segfault.OS, kill.plan)
				crashDurable(t, durableQuickstart(workers, window, dir, inj))
				if !inj.Crashed() {
					t.Fatalf("%s: crash plan never fired", label)
				}
				// Resume: pristine filesystem, fresh scenario, cold
				// counters — only the spill directory carries over.
				campaign, aliasd, graph, resumed := runDurablePipeline(t,
					durableQuickstart(workers, window, dir, nil), true)
				if resumed == nil {
					t.Fatalf("%s: resumed run carries no resume record", label)
				}
				if kill.wantResumed && !resumed.Resumed {
					t.Fatalf("%s: expected checkpoint recovery, got fresh restart (%s)", label, resumed.Reason)
				}
				anyResumed = anyResumed || resumed.Resumed
				checkGolden(t, label, campaign, aliasd, graph)
			}
			if !anyResumed {
				t.Fatalf("window=%d workers=%d: no kill point exercised checkpoint recovery", window, workers)
			}
		}
	}
}

// TestDurableCompleteReplayMatchesGolden covers the crash window after
// MarkComplete but before the result is consumed: the next run must
// recognize the complete log, skip collection entirely, replay it to
// warm the fresh simulator, re-run alias resolution live, and still hit
// the goldens — even at a different worker count.
func TestDurableCompleteReplayMatchesGolden(t *testing.T) {
	dir := t.TempDir()
	campaign, aliasd, graph, _ := runDurablePipeline(t, durableQuickstart(4, 16, dir, nil), false)
	checkGolden(t, "complete-replay first run", campaign, aliasd, graph)

	campaign, aliasd, graph, resumed := runDurablePipeline(t, durableQuickstart(1, 16, dir, nil), true)
	if resumed == nil || !resumed.Resumed || !resumed.Complete {
		t.Fatalf("second run over a complete log reported %+v, want complete replay", resumed)
	}
	checkGolden(t, "complete-replay second run", campaign, aliasd, graph)
}
