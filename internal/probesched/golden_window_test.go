package probesched_test

import (
	"encoding/hex"
	"testing"
)

// TestWindowedCampaignMatchesGoldenDigest is the streaming engine's
// equivalence oracle: the quickstart campaign run through spill-to-disk
// trace windows must reproduce the same three pinned digests as the
// resident archive, at every tested window size and worker count. The
// window sizes straddle the quickstart campaign's trace count — 16
// forces many sealed segments per stage (multi-window replay on every
// inference pass), 4096 holds each stage in a single window — so both
// the window-boundary and the window-interior code paths face the
// golden.
func TestWindowedCampaignMatchesGoldenDigest(t *testing.T) {
	for _, window := range []int{16, 4096} {
		for _, workers := range []int{1, 4} {
			c := quickstartCampaign(workers)
			c.TraceWindow = window
			c.SpillDir = t.TempDir()
			campaign, alias, graph := digestsOf(t, c)
			if got := hex.EncodeToString(campaign[:]); got != goldenCampaignDigest {
				t.Errorf("window=%d workers=%d: digest %s differs from golden %s",
					window, workers, got, goldenCampaignDigest)
			}
			if got := hex.EncodeToString(alias[:]); got != goldenAliasDigest {
				t.Errorf("window=%d workers=%d: alias digest %s differs from golden %s",
					window, workers, got, goldenAliasDigest)
			}
			if got := hex.EncodeToString(graph[:]); got != goldenRegionGraphDigest {
				t.Errorf("window=%d workers=%d: region-graph digest %s differs from golden %s",
					window, workers, got, goldenRegionGraphDigest)
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}
