package probesched_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/comap"
	"repro/internal/netsim"
	"repro/internal/probesched"
)

// faultedDigests runs the quickstart campaign with the given fault plan
// and resilience policy installed, returning the three stage digests
// plus the pipeline result for outcome-accounting assertions.
func faultedDigests(t *testing.T, workers int, plan netsim.FaultPlan, r probesched.Resilience) (campaign, alias, graph [32]byte, res *comap.Result) {
	t.Helper()
	c := quickstartCampaign(workers)
	c.Net.SetFaultPlan(plan)
	c.Resilience = r
	res = comap.Run(c)

	var report strings.Builder
	if err := res.WriteJSON(&report, "comcast"); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var b strings.Builder
	b.WriteString(serializeCollection(res.Collection))
	b.WriteString(report.String())
	fmt.Fprintf(&b, "clock %v\n", c.Clock.Now().UnixNano())
	campaign = sha256.Sum256([]byte(b.String()))
	alias = sha256.Sum256([]byte(serializeAliases(res.Collection)))
	graph = sha256.Sum256([]byte(report.String()))
	return campaign, alias, graph, res
}

// TestZeroFaultPlanMatchesGoldenDigest is the zero-fault equivalence
// oracle: installing the empty FaultPlan (with zero Resilience) must
// leave the campaign, alias, and region-graph digests bit-identical to
// the PR3 pinned goldens across the GOMAXPROCS × worker grid — the
// fault layer may not perturb a single byte until faults are actually
// configured.
func TestZeroFaultPlanMatchesGoldenDigest(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	procsGrid := []int{1, 4}
	workersGrid := []int{1, 4, 8}
	if testing.Short() {
		procsGrid = []int{prev}
		workersGrid = []int{1, 4}
	}
	for _, procs := range procsGrid {
		runtime.GOMAXPROCS(procs)
		for _, workers := range workersGrid {
			campaign, alias, graph, res := faultedDigests(t, workers, netsim.FaultPlan{}, probesched.Resilience{})
			if got := hex.EncodeToString(campaign[:]); got != goldenCampaignDigest {
				t.Errorf("GOMAXPROCS=%d workers=%d: empty plan drifted campaign digest %s from golden %s",
					procs, workers, got, goldenCampaignDigest)
			}
			if got := hex.EncodeToString(alias[:]); got != goldenAliasDigest {
				t.Errorf("GOMAXPROCS=%d workers=%d: empty plan drifted alias digest %s from golden %s",
					procs, workers, got, goldenAliasDigest)
			}
			if got := hex.EncodeToString(graph[:]); got != goldenRegionGraphDigest {
				t.Errorf("GOMAXPROCS=%d workers=%d: empty plan drifted region-graph digest %s from golden %s",
					procs, workers, got, goldenRegionGraphDigest)
			}
			// The new accounting must hold even on a perfect plane.
			if !res.Coverage.Probes.Consistent() {
				t.Errorf("GOMAXPROCS=%d workers=%d: inconsistent probe ledger %+v",
					procs, workers, res.Coverage.Probes)
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
	runtime.GOMAXPROCS(prev)
}

// TestFaultedCampaignDeterministicAcrossWorkers is the acceptance grid:
// with 10% link loss plus windowed ICMP rate limiting and a retrying,
// breaker-guarded campaign, the whole run must complete, account for
// every probe, and produce byte-identical digests at workers {1,4,8}.
func TestFaultedCampaignDeterministicAcrossWorkers(t *testing.T) {
	plan := netsim.FaultPlan{
		Seed:       7,
		LinkLoss:   0.10,
		ICMPRate:   2,
		ICMPWindow: 250 * time.Millisecond,
	}
	policy := probesched.Resilience{
		Attempts:         3,
		RetryBackoff:     200 * time.Millisecond,
		BreakerThreshold: 8,
	}
	workersGrid := []int{1, 4, 8}
	if testing.Short() {
		workersGrid = []int{1, 4}
	}
	type run struct {
		campaign, alias, graph [32]byte
		stats                  probesched.ProbeStats
	}
	var first run
	for i, workers := range workersGrid {
		campaign, alias, graph, res := faultedDigests(t, workers, plan, policy)
		stats := res.Coverage.Probes
		if !stats.Consistent() {
			t.Fatalf("workers=%d: sent=%d != replied=%d + lost=%d + rate-limited=%d",
				workers, stats.Sent, stats.Replied, stats.Lost, stats.RateLimited)
		}
		if stats.Sent == 0 || stats.Lost == 0 || stats.Retries == 0 {
			t.Fatalf("workers=%d: degenerate faulted ledger %+v", workers, stats)
		}
		if len(res.Inference.Regions) == 0 {
			t.Fatalf("workers=%d: faulted campaign inferred no regions", workers)
		}
		cur := run{campaign, alias, graph, stats}
		if i == 0 {
			first = cur
			continue
		}
		if cur != first {
			t.Errorf("workers=%d: faulted run diverged from workers=%d\n campaign %x vs %x\n alias %x vs %x\n graph %x vs %x\n stats %+v vs %+v",
				workers, workersGrid[0],
				cur.campaign, first.campaign, cur.alias, first.alias, cur.graph, first.graph,
				cur.stats, first.stats)
		}
	}
}
