// Package probesched is the deterministic parallel probe scheduler: it
// fans independent measurement jobs (traceroutes, ping series, alias
// probes) across a worker pool against a thread-safe netsim.Network and
// gathers the results in canonical submission order, so the same seed
// produces byte-identical campaign output at any GOMAXPROCS and any
// worker count — including workers=1, which is exactly the historical
// sequential path.
//
// # Why this is deterministic
//
// Three properties carry the proof:
//
//  1. Probe replies are pure functions of (network seed, probe
//     parameters): jitter, rate-limit draws, and ECMP tie-breaks in
//     netsim are splitmix-style hashes keyed by (seed, src, dst, ttl,
//     seq), never draws from a shared sequential RNG, so no job can
//     perturb another's replies. (IP-ID values additionally depend on
//     shared counters and virtual time, but traceroute and ping discard
//     them; the IP-ID-sensitive MIDAR stage always runs sequentially.)
//
//  2. Every job runs on a private Fork of the campaign clock taken at
//     batch start. A job's elapsed virtual time is a function of its
//     own replies only, so it too is schedule-independent.
//
//  3. After the batch, the campaign clock advances by the sum of
//     per-job elapsed times folded in submission order — the exact
//     total a sequential run would have accumulated — so everything
//     downstream (IP-ID velocity sampling, round timestamps) observes
//     the same virtual instant it always did.
//
// Results are gathered into a slice indexed by job position, so callers
// fold them in submission order no matter which worker finished first.
package probesched

import (
	"fmt"
	"net/netip"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vclock"
)

// JobPanicError is the typed error a panicking job is converted into.
// The pool recovers the panic on the worker, lets every other job (and
// the fold, and the clock advance) finish normally, then re-panics with
// this error — carrying the canonical job index and the original stack
// — from the caller's goroutine. One bad job therefore cannot deadlock
// a batch or strand worker goroutines, but it also cannot be silently
// swallowed. When several jobs panic, the lowest job index wins (it is
// the one a sequential run would have hit first).
type JobPanicError struct {
	// Job is the canonical index of the panicking job (or, for Reduce,
	// the accumulator index being folded when the panic fired).
	Job int
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *JobPanicError) Error() string {
	return fmt.Sprintf("probesched: job %d panicked: %v", e.Job, e.Value)
}

// Pool schedules probe jobs over a fixed number of workers against one
// campaign clock. A Pool is cheap to create; campaigns typically build
// one per collection stage. The zero-value Pool is not usable;
// construct with New.
type Pool struct {
	workers int
	clock   *vclock.Clock
}

// New returns a pool with the given worker count on the given campaign
// clock. workers <= 0 selects runtime.GOMAXPROCS(0). The clock must not
// be nil for pools that schedule probes (Map, MapFold, Fan); a
// compute-only pool used exclusively with Reduce may pass a nil clock,
// since analysis work consumes no virtual time.
func New(workers int, clock *vclock.Clock) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, clock: clock}
}

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Clock returns the campaign clock the pool advances after each batch.
func (p *Pool) Clock() *vclock.Clock { return p.clock }

// Map runs one job per element of jobs across the pool's workers and
// returns the results in job order. Each invocation of run receives a
// private clock forked from the campaign clock at batch start; after
// every job completes, the campaign clock advances by the sum of
// per-job elapsed virtual times, folded in job order. Both the result
// slice and the final clock reading are therefore independent of worker
// count and goroutine scheduling.
func Map[J, R any](p *Pool, jobs []J, run func(clk *vclock.Clock, job J) R) []R {
	return mapFold(p, jobs, run, nil)
}

// MapFold runs jobs like Map but streams the results, in job order, to
// fold on the caller's goroutine while later jobs are still in flight.
// Workers claim contiguous job chunks and announce each finished chunk;
// the caller folds a chunk as soon as every earlier chunk has been
// folded. This removes the collect-everything-then-fold barrier that
// serialized campaign result handling behind the slowest worker: at any
// instant the fold is consuming chunk k while workers produce chunks
// k+1....
//
// Determinism is unchanged from Map: fold observes exactly the sequence
// (0, r0), (1, r1), ... regardless of worker count or scheduling, and
// the campaign clock advances by the identical job-order elapsed total
// after the batch. fold must not submit probes on the campaign clock
// (it runs before the batch advance).
func MapFold[J, R any](p *Pool, jobs []J, run func(clk *vclock.Clock, job J) R, fold func(i int, r R)) {
	mapFold(p, jobs, run, fold)
}

// MapFoldScratch runs jobs like MapFold but additionally leases every
// worker chunk a scratch value: get is called when a worker starts a
// chunk, each of the chunk's jobs runs with that scratch, and put is
// called only after the chunk's results have been folded. Results may
// therefore reference their chunk's scratch (the columnar trace store
// hands out views into a shared hop buffer this way) — the scratch is
// guaranteed alive until the fold has consumed them, and put typically
// resets and pools it for the next chunk. On the workers<=1 sequential
// path every job is its own chunk: get, run, fold, put, in job order.
// fold must be non-nil. Determinism matches MapFold exactly.
func MapFoldScratch[J, R, S any](p *Pool, jobs []J, get func() S, put func(S),
	run func(clk *vclock.Clock, scratch S, job J) R, fold func(i int, r R)) {
	mapFoldCore(p, jobs, get, put, run, fold, false)
}

// chunksPerWorker over-partitions the job list so a straggler chunk
// cannot idle the other workers; minChunk bounds the per-chunk
// bookkeeping for short job lists.
const (
	chunksPerWorker = 8
	minChunk        = 4
)

// noScratch is the empty scratch type of the Map/MapFold paths.
type noScratch = struct{}

func noScratchGet() noScratch { return noScratch{} }
func noScratchPut(noScratch)  {}

func mapFold[J, R any](p *Pool, jobs []J, run func(clk *vclock.Clock, job J) R, fold func(i int, r R)) []R {
	wrapped := func(clk *vclock.Clock, _ noScratch, job J) R { return run(clk, job) }
	// With no fold the caller needs the full result slice (Map); with a
	// fold the core streams results through pooled per-chunk buffers and
	// never materializes the batch.
	return mapFoldCore(p, jobs, noScratchGet, noScratchPut, wrapped, fold, fold == nil)
}

// mapFoldCore is the shared engine behind Map, MapFold, and
// MapFoldScratch. When collect is true it writes results into one
// batch-sized slice and returns it (the Map contract; fold, if any,
// still streams in job order). When collect is false, results live in
// per-chunk buffers recycled through a sync.Pool the moment the fold
// has consumed them, so a large batch costs O(in-flight chunks) result
// memory instead of O(jobs) — the campaign fold path's main saving.
//
// Determinism is identical either way: fold observes exactly the
// sequence (0, r0), (1, r1), ..., and the campaign clock advances by
// the per-job elapsed total. Elapsed time is accumulated per chunk and
// the chunk totals summed in chunk order; integer addition of
// durations makes that the same sum a per-job fold in job order would
// produce, so the clock reading is bit-identical to the historical
// path.
func mapFoldCore[J, R, S any](p *Pool, jobs []J, get func() S, put func(S),
	run func(clk *vclock.Clock, scratch S, job J) R, fold func(i int, r R), collect bool) []R {
	n := len(jobs)
	if n == 0 {
		return nil
	}
	start := p.clock.Now()
	var out []R
	if collect {
		out = make([]R, n)
	}

	// Each worker owns one clock and resets it to the batch-start
	// instant between jobs — equivalent to forking a fresh clock per
	// job (a job only ever observes "start plus its own advances") but
	// without the per-job allocation. A panicking job is recovered into
	// its chunk's first-panic slot so the batch still completes (its
	// result stays the zero value, which the fold observes like any
	// other); the elapsed time it consumed before dying is still charged
	// to the campaign clock, exactly as a sequential run would have.
	runJob := func(clk *vclock.Clock, scratch S, i int, dst *R, elapsed *time.Duration, pe **JobPanicError) {
		clk.Reset(start)
		defer func() {
			*elapsed += clk.Since(start)
			if v := recover(); v != nil && *pe == nil {
				*pe = &JobPanicError{Job: i, Value: v, Stack: debug.Stack()}
			}
		}()
		*dst = run(clk, scratch, jobs[i])
	}

	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// The historical sequential path: run and fold interleaved, in
		// job order. Each job is its own scratch chunk: the scratch is
		// returned (and typically reset) only after the fold consumed
		// the result that may reference it.
		clk := vclock.New(start)
		var total time.Duration
		var firstPanic *JobPanicError
		var slot R
		for i := range jobs {
			dst := &slot
			if collect {
				dst = &out[i]
			} else {
				var zero R
				slot = zero
			}
			scratch := get()
			runJob(clk, scratch, i, dst, &total, &firstPanic)
			if fold != nil {
				fold(i, *dst)
			}
			put(scratch)
		}
		p.clock.Advance(total)
		if firstPanic != nil {
			panic(firstPanic)
		}
		return out
	}

	chunk := (n + workers*chunksPerWorker - 1) / (workers * chunksPerWorker)
	if chunk < minChunk {
		chunk = minChunk
	}
	numChunks := (n + chunk - 1) / chunk
	span := func(c int) (int, int) {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	elapsed := make([]time.Duration, numChunks)
	panics := make([]*JobPanicError, numChunks)
	// Streaming mode parks each finished chunk's result buffer and
	// scratch until the folder reaches it in canonical order; buffers
	// recycle through bufPool once folded.
	var (
		bufs      []*[]R
		scratches []S
		bufPool   sync.Pool
	)
	if !collect {
		bufs = make([]*[]R, numChunks)
		scratches = make([]S, numChunks)
		bufPool.New = func() any { s := make([]R, 0, chunk); return &s }
	}
	// done is buffered to numChunks so workers never block on a slow
	// folder (or on nobody draining it when fold is nil).
	done := make(chan int, numChunks)
	// Streaming mode bounds in-flight chunks: a worker must take a token
	// before claiming a chunk index, and the folder returns the token
	// only after folding that chunk. With a slow fold (the windowed
	// campaign flush spilling segments to disk) workers therefore park
	// instead of racing ahead and parking O(numChunks) result buffers —
	// resident result memory is O(workers), independent of batch size.
	// quit unblocks token waiters when folding ends (or panics), so no
	// worker goroutine can leak.
	var tokens chan struct{}
	var quit chan struct{}
	if !collect {
		maxInFlight := workers * 2
		if maxInFlight > numChunks {
			maxInFlight = numChunks
		}
		tokens = make(chan struct{}, maxInFlight)
		for i := 0; i < maxInFlight; i++ {
			tokens <- struct{}{}
		}
		quit = make(chan struct{})
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			clk := vclock.New(start)
			for {
				if tokens != nil {
					select {
					case <-tokens:
					case <-quit:
						return
					}
				}
				c := int(next.Add(1)) - 1
				if c >= numChunks {
					return
				}
				lo, hi := span(c)
				scratch := get()
				var buf []R
				var bp *[]R
				if !collect {
					// Zero-scrub the recycled buffer so a panicked job
					// folds as the zero value, like a fresh slice would.
					bp = bufPool.Get().(*[]R)
					buf = (*bp)[:0]
					var zero R
					for i := lo; i < hi; i++ {
						buf = append(buf, zero)
					}
				}
				for i := lo; i < hi; i++ {
					var dst *R
					if collect {
						dst = &out[i]
					} else {
						dst = &buf[i-lo]
					}
					runJob(clk, scratch, i, dst, &elapsed[c], &panics[c])
				}
				if collect {
					put(scratch)
				} else {
					*bp = buf
					bufs[c] = bp
					scratches[c] = scratch
				}
				done <- c
			}
		}()
	}
	if fold != nil {
		// Fold chunks in canonical order as they complete; the
		// channel receive orders each chunk's result writes before
		// the fold reads them. The deferred close frees token waiters
		// even if a fold call panics — workers must never outlive the
		// batch.
		func() {
			if quit != nil {
				defer close(quit)
			}
			ready := make([]bool, numChunks)
			nextFold := 0
			for finished := 0; finished < numChunks; finished++ {
				ready[<-done] = true
				for nextFold < numChunks && ready[nextFold] {
					lo, hi := span(nextFold)
					if collect {
						for i := lo; i < hi; i++ {
							fold(i, out[i])
						}
					} else {
						buf := *bufs[nextFold]
						for i := lo; i < hi; i++ {
							fold(i, buf[i-lo])
						}
						put(scratches[nextFold])
						bufPool.Put(bufs[nextFold])
						bufs[nextFold] = nil
						tokens <- struct{}{}
					}
					nextFold++
				}
			}
		}()
	}
	wg.Wait()

	var total time.Duration
	for _, d := range elapsed {
		total += d
	}
	p.clock.Advance(total)
	for _, pe := range panics {
		if pe != nil {
			panic(pe)
		}
	}
	return out
}

// Reduce shards the index range [0, n) into contiguous spans, builds
// one accumulator per span on the pool's workers (init once per span,
// then accum over the span's indices in ascending order), and merges
// the partial accumulators in span order. It is the shard-accumulate-
// merge primitive the inference half of the pipeline parallelizes with.
//
// The result equals the sequential fold
//
//	a := init(); for i := 0..n-1 { a = accum(a, i) }
//
// for any (accum, merge) pair where merging two accumulators built over
// adjacent index ranges equals accumulating over the concatenated range
// — true for set unions, count sums, and first-wins assignments over
// disjoint keys, which is what the analysis passes use. Reduce never
// touches the pool's clock: analysis work consumes no virtual time.
func Reduce[A any](p *Pool, n int, init func() A, accum func(a A, i int) A, merge func(into, from A) A) A {
	if n == 0 {
		return init()
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		a, pe := reduceSpan(init, accum, 0, n)
		if pe != nil {
			panic(pe)
		}
		return a
	}
	spans := workers * 4
	if spans > n {
		spans = n
	}
	chunk := (n + spans - 1) / spans
	numSpans := (n + chunk - 1) / chunk
	partial := make([]A, numSpans)
	panics := make([]*JobPanicError, numSpans)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= numSpans {
					return
				}
				lo, hi := c*chunk, (c+1)*chunk
				if hi > n {
					hi = n
				}
				partial[c], panics[c] = reduceSpan(init, accum, lo, hi)
			}
		}()
	}
	wg.Wait()
	// Re-raise before merging: a panicked span holds a half-built
	// accumulator that merge must never observe. Lowest span (and hence
	// lowest index) wins, matching the sequential failure point.
	for _, pe := range panics {
		if pe != nil {
			panic(pe)
		}
	}
	a := partial[0]
	for _, b := range partial[1:] {
		a = merge(a, b)
	}
	return a
}

// reduceSpan accumulates one contiguous index span, converting a panic
// in init or accum into a *JobPanicError carrying the index being
// folded, so one bad element cannot strand the other Reduce workers.
func reduceSpan[A any](init func() A, accum func(a A, i int) A, lo, hi int) (a A, pe *JobPanicError) {
	cur := lo
	defer func() {
		if v := recover(); v != nil {
			pe = &JobPanicError{Job: cur, Value: v, Stack: debug.Stack()}
		}
	}()
	a = init()
	for cur = lo; cur < hi; cur++ {
		a = accum(a, cur)
	}
	return a, nil
}

// Request describes one probe job in the unified format both
// measurement engines accept: a traceroute or a ping series from Src
// toward Dst. Engine-specific knobs (probe counts, TTL caps, protocol)
// live on the engine; the request carries only what varies per job.
type Request struct {
	// Src is the vantage-point host address; Dst the probe target.
	Src, Dst netip.Addr
	// TTL, when nonzero, selects the TTL-limited echo mode of the ping
	// engine (the §6.3 trick). Traceroute engines ignore it.
	TTL int
	// Count is the ping-series length. Traceroute engines ignore it.
	Count int
}

// Result is the engine-specific outcome of one Request: a
// traceroute.Trace from the traceroute engine, a ping.Outcome from the
// ping engine. Callers assert the type matching the Prober they
// submitted to.
type Result any

// Prober is the unified measurement-engine interface: one probe job in,
// one result out, on the supplied clock. Both traceroute.Engine and
// ping.Pinger implement it, which is what lets campaign sweeps, DPR
// passes, alias probing, and latency studies share this scheduler path.
//
// Implementations must be safe for concurrent Probe calls with distinct
// clocks; the engines guarantee this by treating their configuration as
// read-only and carrying all per-job state on the stack.
type Prober interface {
	Probe(clk *vclock.Clock, req Request) Result
}

// Fan submits one job per request against the prober and returns the
// results in request order, with the same clock semantics as Map.
func (p *Pool) Fan(pr Prober, reqs []Request) []Result {
	return Map(p, reqs, func(clk *vclock.Clock, req Request) Result {
		return pr.Probe(clk, req)
	})
}
