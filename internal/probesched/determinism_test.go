package probesched_test

import (
	"crypto/sha256"
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/comap"
	"repro/internal/topogen"
	"repro/internal/vclock"
)

// quickstartCampaign builds the quickstart-scale single-region cable
// scenario and its campaign, ready to run.
func quickstartCampaign(workers int) *comap.Campaign {
	scenario := topogen.NewScenario(42)
	profile := topogen.ComcastProfile()
	profile.Regions = []topogen.CableRegionSpec{{
		Name:     "bverton",
		Anchor:   "Beaverton",
		Backbone: []string{"Seattle", "Sunnyvale"},
		Type:     topogen.DualAgg,
		EdgeCOs:  12,
	}}
	isp := scenario.BuildCable(profile)
	var vps []netip.Addr
	for _, city := range []string{"Seattle", "San Francisco", "Denver", "Chicago", "New York"} {
		vps = append(vps, scenario.AddTransitVP(city).Addr)
	}
	return &comap.Campaign{
		Net:         scenario.Net,
		DNS:         scenario.DNS,
		Clock:       vclock.New(scenario.Epoch()),
		ISP:         "comcast",
		Seed:        42,
		VPs:         vps,
		Announced:   isp.Announced,
		Parallelism: workers,
	}
}

// serializeCollection renders every field of a Collection in a canonical
// order, so two byte-identical collections serialize identically and any
// divergence (path order, hop content, alias evidence) changes the hash.
func serializeCollection(col *comap.Collection) string {
	var b strings.Builder
	col.EachPath(func(_ int, p comap.Path, stage string) {
		fmt.Fprintf(&b, "path %s>%s stage=%s reached=%v hops=", p.Src, p.Dst, stage, p.Reached)
		for j, h := range p.Hops {
			fmt.Fprintf(&b, "%s/gap=%v,", h, p.Gaps[j])
		}
		b.WriteByte('\n')
	})
	observed := make([]string, 0, len(col.Observed))
	for a := range col.Observed {
		observed = append(observed, a.String())
	}
	sort.Strings(observed)
	fmt.Fprintf(&b, "observed %s\n", strings.Join(observed, ","))
	for _, a := range col.ScanTargets {
		fmt.Fprintf(&b, "scan %s\n", a)
	}
	var pairs []string
	for p := range col.FalsePairs {
		pairs = append(pairs, p[0].String()+">"+p[1].String())
	}
	sort.Strings(pairs)
	fmt.Fprintf(&b, "false %s\n", strings.Join(pairs, ","))
	pairs = pairs[:0]
	for p := range col.DirectPairs {
		pairs = append(pairs, p[0].String()+">"+p[1].String())
	}
	sort.Strings(pairs)
	fmt.Fprintf(&b, "direct %s\n", strings.Join(pairs, ","))
	for _, a := range col.AliasTargets {
		fmt.Fprintf(&b, "aliastarget %s\n", a)
	}
	if col.Aliases != nil {
		for _, g := range col.Aliases.Groups() {
			fmt.Fprintf(&b, "aliasgroup %v\n", g)
		}
		fmt.Fprintf(&b, "evidence mercator=%d midar=%d\n", col.Aliases.MercatorPairs, col.Aliases.MIDARPairs)
	}
	return b.String()
}

// serializeAliases renders the alias-resolution evidence alone: every
// resolved group plus the per-technique pair counts.
func serializeAliases(col *comap.Collection) string {
	var b strings.Builder
	for _, a := range col.AliasTargets {
		fmt.Fprintf(&b, "aliastarget %s\n", a)
	}
	if col.Aliases != nil {
		for _, g := range col.Aliases.Groups() {
			fmt.Fprintf(&b, "aliasgroup %v\n", g)
		}
		fmt.Fprintf(&b, "evidence mercator=%d midar=%d\n", col.Aliases.MercatorPairs, col.Aliases.MIDARPairs)
	}
	return b.String()
}

// campaignDigest runs the full pipeline and hashes the serialized
// Collection together with the report JSON (the Table 1/3/4 content)
// and the final virtual-clock reading.
func campaignDigest(t *testing.T, workers int) [32]byte {
	t.Helper()
	d, _, _ := campaignDigests(t, workers)
	return d
}

// campaignDigests runs the full pipeline once and returns three hashes:
// the whole-campaign digest (collection + report + clock), the
// alias-resolution digest, and the region-graph (report JSON) digest.
// The narrower digests attribute a whole-campaign mismatch to the
// stage that drifted.
func campaignDigests(t *testing.T, workers int) (campaign, alias, graph [32]byte) {
	t.Helper()
	return digestsOf(t, quickstartCampaign(workers))
}

// digestsOf runs an already-configured campaign through the pipeline
// and hashes it — the windowed-engine goldens reuse it with TraceWindow
// set on the same quickstart campaign.
func digestsOf(t *testing.T, c *comap.Campaign) (campaign, alias, graph [32]byte) {
	t.Helper()
	res := comap.Run(c)
	defer res.Close()

	var report strings.Builder
	if err := res.WriteJSON(&report, "comcast"); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	var b strings.Builder
	b.WriteString(serializeCollection(res.Collection))
	b.WriteString(report.String())
	fmt.Fprintf(&b, "clock %v\n", c.Clock.Now().UnixNano())
	campaign = sha256.Sum256([]byte(b.String()))
	alias = sha256.Sum256([]byte(serializeAliases(res.Collection)))
	graph = sha256.Sum256([]byte(report.String()))
	return campaign, alias, graph
}

// TestProbeBudgetCapsAndStaysDeterministic checks MaxTraces truncates
// the canonical job list identically at every worker count.
func TestProbeBudgetCapsAndStaysDeterministic(t *testing.T) {
	digest := func(workers int) ([32]byte, int) {
		c := quickstartCampaign(workers)
		c.MaxTraces = 60
		c.SkipAlias = true
		col := c.Run()
		if len(col.Paths) > 60 {
			t.Fatalf("workers=%d: %d paths exceed the 60-trace budget", workers, len(col.Paths))
		}
		return sha256.Sum256([]byte(serializeCollection(col))), len(col.Paths)
	}
	base, n := digest(1)
	if n == 0 {
		t.Fatal("budgeted campaign collected nothing")
	}
	for _, workers := range []int{4, 8} {
		if got, _ := digest(workers); got != base {
			t.Fatalf("workers=%d: budgeted collection diverges from sequential", workers)
		}
	}
}

// TestCampaignDeterministicAcrossParallelism is the PR's acceptance
// check: the quickstart cable campaign must produce byte-identical
// output — collection, inferred tables, and final virtual time — at
// GOMAXPROCS 1, 4, and 8 crossed with worker counts 1, 4, and 8.
func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign; skipped with -short")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var want [32]byte
	first := true
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 4, 8} {
			got := campaignDigest(t, workers)
			if first {
				want = got
				first = false
				continue
			}
			if got != want {
				t.Fatalf("GOMAXPROCS=%d workers=%d: digest %x differs from baseline %x",
					procs, workers, got, want)
			}
		}
	}
}
