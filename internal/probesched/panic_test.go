package probesched

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"repro/internal/vclock"
)

func catchJobPanic(t *testing.T, f func()) *JobPanicError {
	t.Helper()
	var pe *JobPanicError
	func() {
		defer func() {
			v := recover()
			if v == nil {
				t.Fatal("expected a panic, got none")
			}
			var ok bool
			pe, ok = v.(*JobPanicError)
			if !ok {
				t.Fatalf("panic value is %T, want *JobPanicError", v)
			}
		}()
		f()
	}()
	return pe
}

func TestMapSurvivesPanickingJob(t *testing.T) {
	for _, workers := range []int{1, 4} {
		start := time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
		clk := vclock.New(start)
		p := New(workers, clk)
		jobs := make([]int, 64)
		for i := range jobs {
			jobs[i] = i
		}
		var out []int
		pe := catchJobPanic(t, func() {
			out = Map(p, jobs, func(c *vclock.Clock, j int) int {
				c.Advance(time.Millisecond)
				if j == 17 {
					panic(errors.New("boom"))
				}
				return j * 2
			})
		})
		if pe.Job != 17 {
			t.Errorf("workers=%d: panic job = %d, want 17", workers, pe.Job)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: panic stack not captured", workers)
		}
		if pe.Error() == "" {
			t.Errorf("workers=%d: empty error string", workers)
		}
		if out != nil {
			t.Errorf("workers=%d: Map returned a slice despite panicking", workers)
		}
		// Every job (including the panicking one, which advanced its
		// clock before dying) is charged to the campaign clock.
		if got := clk.Since(start); got != 64*time.Millisecond {
			t.Errorf("workers=%d: clock advanced %v, want 64ms", workers, got)
		}
	}
}

func TestMapFoldSurvivesPanickingJob(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers, vclock.New(time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)))
		jobs := make([]int, 48)
		for i := range jobs {
			jobs[i] = i + 1
		}
		folded := make([]int, 0, len(jobs))
		pe := catchJobPanic(t, func() {
			MapFold(p, jobs,
				func(c *vclock.Clock, j int) int {
					if j == 30 {
						panic("mapfold boom")
					}
					return j
				},
				func(i int, r int) { folded = append(folded, r) })
		})
		if pe.Job != 29 {
			t.Errorf("workers=%d: panic job = %d, want 29", workers, pe.Job)
		}
		// The fold saw every job in canonical order, with the zero value
		// standing in for the dead one.
		if len(folded) != len(jobs) {
			t.Fatalf("workers=%d: fold saw %d of %d jobs", workers, len(folded), len(jobs))
		}
		for i, r := range folded {
			want := i + 1
			if i == 29 {
				want = 0
			}
			if r != want {
				t.Errorf("workers=%d: fold[%d] = %d, want %d", workers, i, r, want)
			}
		}
	}
}

func TestReduceSurvivesPanickingAccum(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers, nil)
		pe := catchJobPanic(t, func() {
			Reduce(p, 100,
				func() int { return 0 },
				func(a, i int) int {
					if i == 41 {
						panic("reduce boom")
					}
					return a + i
				},
				func(into, from int) int { return into + from })
		})
		if pe.Job != 41 {
			t.Errorf("workers=%d: panic job = %d, want 41", workers, pe.Job)
		}
	}
}

func TestLowestJobIndexPanicWins(t *testing.T) {
	p := New(4, vclock.New(time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)))
	jobs := make([]int, 64)
	pe := catchJobPanic(t, func() {
		Map(p, jobs, func(c *vclock.Clock, j int) int {
			panic("all boom")
		})
	})
	if pe.Job != 0 {
		t.Errorf("panic job = %d, want 0 (lowest index)", pe.Job)
	}
}

func TestProbeStatsAccounting(t *testing.T) {
	var s ProbeStats
	s.Observe(true, false, false)
	s.Observe(false, true, false)
	s.Observe(false, false, true)
	s.Observe(false, false, false)
	if !s.Consistent() {
		t.Fatalf("inconsistent ledger: %+v", s)
	}
	if s.Sent != 4 || s.Replied != 1 || s.RateLimited != 1 || s.Lost != 2 || s.Retries != 1 {
		t.Errorf("ledger = %+v", s)
	}
	var total ProbeStats
	total.Add(s)
	total.Add(s)
	if total.Sent != 8 || !total.Consistent() {
		t.Errorf("after Add: %+v", total)
	}
	if lr := total.LossRate(); lr != 0.5 {
		t.Errorf("loss rate = %v, want 0.5", lr)
	}
	if (ProbeStats{}).LossRate() != 0 {
		t.Error("empty ledger loss rate != 0")
	}
}

func TestBreaker(t *testing.T) {
	vp1 := netip.MustParseAddr("10.1.0.1")
	vp2 := netip.MustParseAddr("10.0.0.1")
	vp3 := netip.MustParseAddr("10.2.0.1")
	b := NewBreaker(3)
	for i := 0; i < 2; i++ {
		b.Record(vp1, true)
	}
	if b.Quarantined(vp1) {
		t.Error("quarantined below threshold")
	}
	b.Record(vp1, true)
	if !b.Quarantined(vp1) {
		t.Error("zero-yield VP not quarantined at threshold")
	}
	// vp2 answers once early; any number of empty traces afterwards
	// must not bench it — healthy VPs sweep long runs of dark targets.
	b.Record(vp2, false)
	for i := 0; i < 10; i++ {
		b.Record(vp2, true)
	}
	if b.Quarantined(vp2) {
		t.Error("VP with lifetime yield quarantined")
	}
	for i := 0; i < 3; i++ {
		b.Record(vp3, true)
	}
	got := b.QuarantinedVPs()
	if len(got) != 2 || got[0] != vp1 || got[1] != vp3 {
		t.Errorf("QuarantinedVPs = %v, want sorted [%v %v]", got, vp1, vp3)
	}

	var nilB *Breaker
	nilB.Record(vp1, true)
	if nilB.Quarantined(vp1) || nilB.QuarantinedVPs() != nil {
		t.Error("nil breaker not inert")
	}
	if NewBreaker(0) != nil {
		t.Error("NewBreaker(0) should return the inert nil breaker")
	}
	if (Resilience{}).Enabled() {
		t.Error("zero Resilience reports enabled")
	}
	if !(Resilience{Attempts: 3}).Enabled() {
		t.Error("nonzero Resilience reports disabled")
	}
}
