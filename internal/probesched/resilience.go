package probesched

import (
	"net/netip"
	"sort"
	"time"
)

// Resilience configures how measurement loops respond to a lossy
// measurement plane: extra per-hop attempts with deterministic
// virtual-clock backoff, a per-trace probe budget, and a per-vantage-
// point circuit breaker. The zero value disables everything — engines
// behave bit-identically to their historical selves — so installing a
// Resilience is always an explicit opt-in (legitimate timeouts exist
// even without injected faults, and retrying them would change pinned
// campaign digests).
type Resilience struct {
	// Attempts, when > 0, overrides the engine's per-hop attempt count
	// (traceroute defaults to 2; raise it to ride out link loss).
	Attempts int
	// RetryBackoff is extra virtual wait added before each retry of a
	// timed-out probe, scaled by the retry ordinal: the k-th retry waits
	// Timeout + k*RetryBackoff. Backoff consumes virtual time only, so
	// it is free in wall-clock terms but lets rate-limit and blackout
	// windows pass before the retry fires.
	RetryBackoff time.Duration
	// TraceBudget, when > 0, caps the total probes one trace may emit;
	// a trace that exhausts it stops early and is marked truncated.
	TraceBudget int
	// BreakerThreshold, when > 0, quarantines a vantage point once it
	// has run this many traces without a single one producing a
	// responsive hop. Any lifetime success protects the VP for good —
	// see Breaker for why the bar is set that high.
	BreakerThreshold int
}

// Enabled reports whether any resilience behavior is configured.
func (r Resilience) Enabled() bool {
	return r.Attempts > 0 || r.RetryBackoff > 0 || r.TraceBudget > 0 || r.BreakerThreshold > 0
}

// ProbeStats is the typed probe-outcome ledger resilient measurement
// loops maintain: every probe sent lands in exactly one of the three
// outcome buckets, so coverage reports can account for the whole
// campaign (Sent == Replied + Lost + RateLimited always).
type ProbeStats struct {
	// Sent counts probes emitted.
	Sent int `json:"sent"`
	// Replied counts probes that got any usable answer.
	Replied int `json:"replied"`
	// Lost counts probes that timed out for reasons other than rate
	// limiting (in-flight loss, silent/blacked-out hops, dead VPs,
	// dead addresses).
	Lost int `json:"lost"`
	// RateLimited counts probes suppressed by ICMP rate limiting.
	RateLimited int `json:"rate_limited"`
	// Retries counts the subset of Sent that were retransmissions.
	Retries int `json:"retries"`
}

// Observe files one probe into its outcome bucket; retry marks it a
// retransmission.
func (s *ProbeStats) Observe(replied, rateLimited, retry bool) {
	s.Sent++
	switch {
	case replied:
		s.Replied++
	case rateLimited:
		s.RateLimited++
	default:
		s.Lost++
	}
	if retry {
		s.Retries++
	}
}

// Add folds another ledger into this one.
func (s *ProbeStats) Add(o ProbeStats) {
	s.Sent += o.Sent
	s.Replied += o.Replied
	s.Lost += o.Lost
	s.RateLimited += o.RateLimited
	s.Retries += o.Retries
}

// Consistent reports whether every sent probe is accounted for.
func (s ProbeStats) Consistent() bool {
	return s.Sent == s.Replied+s.Lost+s.RateLimited
}

// LossRate is the fraction of sent probes that got no answer at all.
func (s ProbeStats) LossRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Lost) / float64(s.Sent)
}

// Breaker is a per-vantage-point circuit breaker: a VP that has run
// BreakerThreshold or more traces without a single responsive hop —
// zero lifetime yield — is quarantined, and later stages stop
// scheduling work from it.
//
// The bar is deliberately "never answered", not "N consecutive
// failures": in a sweep-heavy campaign most traces target dark /24
// addresses and come back completely empty even from a perfectly
// healthy VP, so any streak-based rule short enough to be useful would
// bench healthy probers mid-sweep. Zero lifetime yield is the one
// signal the measurement itself can distinguish — a dead or offline VP
// never answers from anywhere, while a healthy VP answers at least for
// responsive targets.
//
// A Breaker is not safe for concurrent use; campaigns call Record from
// the in-order fold goroutine only, and consult Quarantined when
// building the next stage's job list — stages are sequential barriers,
// so the decisions (and everything downstream) are independent of
// worker count.
//
// The nil *Breaker is inert: Record is a no-op and nothing is ever
// quarantined, so callers can thread one pointer through unconditionally.
type Breaker struct {
	threshold int
	dead      map[netip.Addr]int
	alive     map[netip.Addr]bool
}

// NewBreaker returns a breaker quarantining VPs with zero yield across
// threshold traces, or nil (inert) when threshold <= 0.
func NewBreaker(threshold int) *Breaker {
	if threshold <= 0 {
		return nil
	}
	return &Breaker{
		threshold: threshold,
		dead:      map[netip.Addr]int{},
		alive:     map[netip.Addr]bool{},
	}
}

// Record files the outcome of one trace from vp; dead means the trace
// produced no responsive hop at all.
func (b *Breaker) Record(vp netip.Addr, dead bool) {
	if b == nil {
		return
	}
	if !dead {
		b.alive[vp] = true
		return
	}
	b.dead[vp]++
}

// Quarantined reports whether vp has been benched: threshold empty
// traces on record and not one responsive trace ever.
func (b *Breaker) Quarantined(vp netip.Addr) bool {
	return b != nil && !b.alive[vp] && b.dead[vp] >= b.threshold
}

// QuarantinedVPs lists benched vantage points in address order.
func (b *Breaker) QuarantinedVPs() []netip.Addr {
	if b == nil {
		return nil
	}
	var out []netip.Addr
	for vp := range b.dead {
		if b.Quarantined(vp) {
			out = append(out, vp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// BreakerState is a serializable breaker snapshot, part of the
// checkpoint cursor a durable campaign writes at every flush boundary.
// Breaker evolution cannot be reconstructed from the spill log alone —
// traces with zero responsive hops bump dead counts but are never
// spilled — so resume restores the snapshot instead of re-deriving it.
// Entries are sorted, making equal states byte-equal when marshaled
// (netip.Addr marshals via its text form).
type BreakerState struct {
	// Dead lists per-VP zero-yield trace counts, ascending by address.
	Dead []BreakerEntry `json:"dead,omitempty"`
	// Alive lists VPs with at least one lifetime responsive trace,
	// ascending.
	Alive []netip.Addr `json:"alive,omitempty"`
}

// BreakerEntry is one VP's zero-yield count.
type BreakerEntry struct {
	VP    netip.Addr `json:"vp"`
	Count int        `json:"count"`
}

// State snapshots the breaker. A nil breaker snapshots to the zero
// state.
func (b *Breaker) State() BreakerState {
	var s BreakerState
	if b == nil {
		return s
	}
	for vp, n := range b.dead {
		s.Dead = append(s.Dead, BreakerEntry{VP: vp, Count: n})
	}
	sort.Slice(s.Dead, func(i, j int) bool { return s.Dead[i].VP.Less(s.Dead[j].VP) })
	for vp := range b.alive {
		s.Alive = append(s.Alive, vp)
	}
	sort.Slice(s.Alive, func(i, j int) bool { return s.Alive[i].Less(s.Alive[j]) })
	return s
}

// Restore overwrites the breaker's ledgers with a snapshot. A nil
// breaker ignores it (resilience off means nothing was snapshot
// either).
func (b *Breaker) Restore(s BreakerState) {
	if b == nil {
		return
	}
	b.dead = make(map[netip.Addr]int, len(s.Dead))
	for _, e := range s.Dead {
		b.dead[e.VP] = e.Count
	}
	b.alive = make(map[netip.Addr]bool, len(s.Alive))
	for _, vp := range s.Alive {
		b.alive[vp] = true
	}
}
