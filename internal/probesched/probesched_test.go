package probesched

import (
	"testing"
	"time"

	"repro/internal/vclock"
)

var epoch = time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)

func TestMapPreservesJobOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		clk := vclock.New(epoch)
		p := New(workers, clk)
		jobs := make([]int, 50)
		for i := range jobs {
			jobs[i] = i
		}
		out := Map(p, jobs, func(_ *vclock.Clock, j int) int { return j * j })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapAdvancesClockBySum(t *testing.T) {
	// Each job advances its private clock by (i+1) ms; the campaign
	// clock must end up at the sum regardless of worker count.
	jobs := make([]int, 20)
	for i := range jobs {
		jobs[i] = i
	}
	var want time.Duration
	for i := range jobs {
		want += time.Duration(i+1) * time.Millisecond
	}
	for _, workers := range []int{1, 4, 16} {
		clk := vclock.New(epoch)
		p := New(workers, clk)
		Map(p, jobs, func(c *vclock.Clock, j int) struct{} {
			c.Advance(time.Duration(j+1) * time.Millisecond)
			return struct{}{}
		})
		if got := clk.Since(epoch); got != want {
			t.Fatalf("workers=%d: clock advanced %v, want %v", workers, got, want)
		}
	}
}

func TestMapForksFromBatchStart(t *testing.T) {
	clk := vclock.New(epoch)
	clk.Advance(time.Hour)
	p := New(4, clk)
	starts := Map(p, []int{0, 1, 2, 3}, func(c *vclock.Clock, _ int) time.Time {
		return c.Now()
	})
	for i, s := range starts {
		if !s.Equal(epoch.Add(time.Hour)) {
			t.Fatalf("job %d saw clock %v, want batch start %v", i, s, epoch.Add(time.Hour))
		}
	}
}

func TestMapEmptyAndDefaults(t *testing.T) {
	clk := vclock.New(epoch)
	p := New(0, clk)
	if p.Workers() < 1 {
		t.Fatalf("New(0, ...) workers = %d, want >= 1", p.Workers())
	}
	if p.Clock() != clk {
		t.Fatal("Clock() did not return the campaign clock")
	}
	if out := Map(p, nil, func(*vclock.Clock, int) int { return 1 }); out != nil {
		t.Fatalf("Map over no jobs = %v, want nil", out)
	}
	if !clk.Now().Equal(epoch) {
		t.Fatal("empty Map moved the clock")
	}
}

// echoProber returns its request so Fan ordering is observable.
type echoProber struct{}

func (echoProber) Probe(clk *vclock.Clock, req Request) Result {
	clk.Advance(time.Millisecond)
	return req
}

func TestFanReturnsRequestOrder(t *testing.T) {
	clk := vclock.New(epoch)
	p := New(8, clk)
	reqs := make([]Request, 30)
	for i := range reqs {
		reqs[i] = Request{TTL: i}
	}
	out := p.Fan(echoProber{}, reqs)
	if len(out) != len(reqs) {
		t.Fatalf("Fan returned %d results, want %d", len(out), len(reqs))
	}
	for i, r := range out {
		if r.(Request).TTL != i {
			t.Fatalf("out[%d] = %+v, want TTL %d", i, r, i)
		}
	}
	if got, want := clk.Since(epoch), 30*time.Millisecond; got != want {
		t.Fatalf("clock advanced %v, want %v", got, want)
	}
}

func TestRequestZeroValueIsTraceShape(t *testing.T) {
	var r Request
	if r.TTL != 0 || r.Count != 0 {
		t.Fatal("zero Request must select plain traceroute semantics")
	}
}
