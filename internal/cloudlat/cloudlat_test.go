package cloudlat

import (
	"net/netip"
	"testing"

	"repro/internal/topogen"
	"repro/internal/vclock"
)

// buildStudy creates a Comcast-like scenario and a Study over its cloud
// VMs, with a reduced ping count to keep the test fast.
func buildStudy(t *testing.T) (*Study, *topogen.Scenario, *topogen.ISP) {
	t.Helper()
	s := topogen.NewScenario(3)
	comcast := s.BuildCable(topogen.ComcastProfile())
	var vms []VM
	for _, c := range s.Clouds {
		vms = append(vms, VM{Provider: c.Provider, Region: c.Region, Addr: c.Host.Addr})
	}
	study := &Study{Net: s.Net, Clock: vclock.New(s.Epoch()), VMs: vms, Pings: 10}
	return study, s, comcast
}

// edgeAddrsByState gathers one uplink interface address per EdgeCO,
// grouped by state, from the ground truth (the unit under test here is
// the measurement, not the inference).
func edgeAddrsByState(isp *topogen.ISP, region string) map[string][]netip.Addr {
	out := map[string][]netip.Addr{}
	reg := isp.Regions[region]
	for _, co := range reg.COsByRole(topogen.EdgeCO) {
		r := co.Routers[0]
		ifaces := r.Interfaces()
		if len(ifaces) == 0 {
			continue
		}
		out[co.City.State] = append(out[co.City.State], ifaces[0].Addr)
	}
	return out
}

func TestFigure9ConnecticutPenalty(t *testing.T) {
	study, _, comcast := buildStudy(t)
	byState := edgeAddrsByState(comcast, "boston")
	for st, addrs := range edgeAddrsByState(comcast, "hartford") {
		byState[st] = append(byState[st], addrs...)
	}
	if len(byState["MA"]) == 0 || len(byState["CT"]) == 0 {
		t.Fatalf("state grouping incomplete: %v", keys(byState))
	}
	rows := study.Figure9([]string{"gcloud"}, byState)
	med := map[string]float64{}
	for _, r := range rows {
		med[r.State] = r.MedianMs
	}
	// The paper's Fig. 9 anomaly: Connecticut, despite being closest to
	// the cloud site, has the worst median latency because it reaches
	// the backbone through the Massachusetts AggCOs.
	if med["CT"] <= med["MA"] {
		t.Errorf("CT median %.2fms should exceed MA median %.2fms", med["CT"], med["MA"])
	}
	for _, st := range []string{"NH", "VT"} {
		if med[st] == 0 {
			t.Errorf("no median for %s", st)
		}
		if med[st] <= med["MA"]-1 {
			t.Errorf("%s median %.2f far below MA %.2f; scatter broken", st, med[st], med["MA"])
		}
	}
	// Absolute sanity: single-digit-to-low-20s milliseconds.
	for st, m := range med {
		if m < 3 || m > 40 {
			t.Errorf("%s median %.2fms outside plausible band", st, m)
		}
	}
}

func TestClosestVMPicksEastForBoston(t *testing.T) {
	study, _, comcast := buildStudy(t)
	byState := edgeAddrsByState(comcast, "boston")
	var all []netip.Addr
	for _, a := range byState {
		all = append(all, a...)
	}
	vm, ok := study.ClosestVM("aws", all[:10])
	if !ok {
		t.Fatal("no aws VM")
	}
	if vm.Region != "us-east-1" {
		t.Errorf("closest aws region for Boston = %s, want us-east-1", vm.Region)
	}
}

func TestFigure10Shapes(t *testing.T) {
	study, _, comcast := buildStudy(t)
	// Build agg-edge pairs from ground truth for two regions.
	var pairs []EdgePair
	for _, regName := range []string{"boston", "denver"} {
		reg := comcast.Regions[regName]
		for _, co := range reg.COsByRole(topogen.EdgeCO) {
			var up *topogen.CO
			for _, u := range co.Upstream {
				if c := reg.COs[u]; c != nil && c.Role == topogen.AggCO {
					up = c
					break
				}
			}
			if up == nil {
				continue
			}
			pairs = append(pairs, EdgePair{
				Edge: co.Routers[0].Interfaces()[0].Addr,
				Agg:  up.Routers[0].Interfaces()[0].Addr,
			})
		}
		if len(pairs) > 40 {
			break
		}
	}
	if len(pairs) < 20 {
		t.Fatalf("only %d pairs", len(pairs))
	}
	fig := study.Figure10(pairs)
	if fig.CloudToEdge.Len() == 0 || fig.AggToEdge.Len() == 0 {
		t.Fatal("empty CDFs")
	}
	// Fig. 10 shape: the AggCO-to-EdgeCO latency distribution sits far
	// below the cloud-to-EdgeCO distribution.
	if fig.AggToEdge.Median() >= fig.CloudToEdge.Median() {
		t.Errorf("agg median %.2f >= cloud median %.2f", fig.AggToEdge.Median(), fig.CloudToEdge.Median())
	}
	// Most EdgeCOs are within 5ms of their AggCO.
	if got := fig.AggToEdge.At(5); got < 0.7 {
		t.Errorf("AggToEdge.At(5ms) = %.2f, want >= 0.7", got)
	}
}

func keys(m map[string][]netip.Addr) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestClosestVMNoProvider(t *testing.T) {
	study, _, _ := buildStudy(t)
	if _, ok := study.ClosestVM("nosuch", nil); ok {
		t.Error("ClosestVM invented a VM for an unknown provider")
	}
}

func TestPairRTT(t *testing.T) {
	study, _, comcast := buildStudy(t)
	reg := comcast.Regions["denver"]
	var pair EdgePair
	for _, co := range reg.COsByRole(topogen.EdgeCO) {
		var up *topogen.CO
		for _, u := range co.Upstream {
			if c := reg.COs[u]; c != nil && c.Role == topogen.AggCO {
				up = c
				break
			}
		}
		if up == nil {
			continue
		}
		pair = EdgePair{Edge: co.Routers[0].Interfaces()[0].Addr, Agg: up.Routers[0].Interfaces()[0].Addr}
		break
	}
	ms, ok := study.PairRTT(pair)
	if !ok {
		t.Fatal("PairRTT failed")
	}
	if ms < 0 || ms > 10 {
		t.Errorf("agg-edge RTT = %.2fms, want small positive", ms)
	}
	// Unmeasurable pair: invalid addresses.
	if _, ok := study.PairRTT(EdgePair{}); ok {
		t.Error("PairRTT on zero pair succeeded")
	}
}
