// Package cloudlat implements the paper's cloud-to-EdgeCO latency
// studies (§5.5): 100-ping minimum RTT measurements from VMs in every
// U.S. cloud region toward EdgeCO router addresses, the closest-region
// selection, the Fig. 9 per-state medians, and the Fig. 10 CDFs of
// cloud-to-EdgeCO versus AggCO-to-EdgeCO latency.
package cloudlat

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/ping"
	"repro/internal/probesched"
	"repro/internal/vclock"
)

// VM is one cloud vantage point.
type VM struct {
	Provider string
	Region   string
	Addr     netip.Addr
}

// Study carries the measurement context.
type Study struct {
	Net   *netsim.Network
	Clock *vclock.Clock
	VMs   []VM
	// Pings per target (the paper used 100).
	Pings int
	// Parallelism is the probe-scheduler worker count (0 selects
	// GOMAXPROCS). Ping series are independent, so every figure is
	// byte-identical at any value — see internal/probesched.
	Parallelism int
}

func (s *Study) pings() int {
	if s.Pings == 0 {
		return 100
	}
	return s.Pings
}

// MinRTT measures the minimum RTT from src to dst.
func (s *Study) MinRTT(src, dst netip.Addr) (time.Duration, bool) {
	p := &ping.Pinger{Net: s.Net, Clock: s.Clock}
	series := p.Ping(src, dst, s.pings())
	return series.Min()
}

// ClosestVM picks, per provider, the cloud region with the lowest
// minimum RTT to the highest number of targets (§5.5's selection rule).
func (s *Study) ClosestVM(provider string, targets []netip.Addr) (VM, bool) {
	type cand struct {
		vm   VM
		wins int
	}
	var cands []cand
	for _, vm := range s.VMs {
		if vm.Provider == provider {
			cands = append(cands, cand{vm: vm})
		}
	}
	if len(cands) == 0 {
		return VM{}, false
	}
	// All (target, candidate-region) ping series are independent; fan
	// them out and fold wins in the original target-major order.
	p := &ping.Pinger{Net: s.Net, Clock: s.Clock}
	pool := probesched.New(s.Parallelism, s.Clock)
	jobs := make([]probesched.Request, 0, len(targets)*len(cands))
	for _, t := range targets {
		for i := range cands {
			jobs = append(jobs, probesched.Request{Src: cands[i].vm.Addr, Dst: t, Count: s.pings()})
		}
	}
	outs := pool.Fan(p, jobs)
	for ti := range targets {
		best := -1
		var bestRTT time.Duration
		for i := range cands {
			rtt, ok := outs[ti*len(cands)+i].(ping.Outcome).Min()
			if !ok {
				continue
			}
			if best < 0 || rtt < bestRTT {
				best, bestRTT = i, rtt
			}
		}
		if best >= 0 {
			cands[best].wins++
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].wins != cands[j].wins {
			return cands[i].wins > cands[j].wins
		}
		return cands[i].vm.Region < cands[j].vm.Region
	})
	return cands[0].vm, true
}

// Fig9Row is one bar of the paper's Fig. 9: the median across a state's
// EdgeCOs of the minimum RTT from a provider's closest cloud region.
type Fig9Row struct {
	Provider string
	Region   string // the chosen cloud region
	State    string
	MedianMs float64
	Targets  int
}

// Figure9 reproduces the Fig. 9 measurement for one set of states. The
// caller supplies EdgeCO router addresses grouped by state (derived from
// inferred CO locations, as the paper derives them from rDNS).
func (s *Study) Figure9(providers []string, targetsByState map[string][]netip.Addr) []Fig9Row {
	var all []netip.Addr
	var states []string
	for st, ts := range targetsByState {
		states = append(states, st)
		all = append(all, ts...)
	}
	sort.Strings(states)
	var rows []Fig9Row
	p := &ping.Pinger{Net: s.Net, Clock: s.Clock}
	pool := probesched.New(s.Parallelism, s.Clock)
	for _, prov := range providers {
		vm, ok := s.ClosestVM(prov, all)
		if !ok {
			continue
		}
		// One ping series per (state, EdgeCO target), fanned out; medians
		// fold per state in sorted-state order.
		var jobs []probesched.Request
		var jobState []string
		for _, st := range states {
			for _, t := range targetsByState[st] {
				jobs = append(jobs, probesched.Request{Src: vm.Addr, Dst: t, Count: s.pings()})
				jobState = append(jobState, st)
			}
		}
		msByState := map[string][]float64{}
		for j, out := range pool.Fan(p, jobs) {
			if rtt, ok := out.(ping.Outcome).Min(); ok {
				msByState[jobState[j]] = append(msByState[jobState[j]], float64(rtt)/float64(time.Millisecond))
			}
		}
		for _, st := range states {
			ms := msByState[st]
			if len(ms) == 0 {
				continue
			}
			rows = append(rows, Fig9Row{
				Provider: prov,
				Region:   vm.Region,
				State:    st,
				MedianMs: metrics.NewCDF(ms).Median(),
				Targets:  len(ms),
			})
		}
	}
	return rows
}

// EdgePair couples an EdgeCO router address with an upstream AggCO
// router address on the same path, for the Fig. 10b AggCO-to-EdgeCO
// latency estimate.
type EdgePair struct {
	Edge netip.Addr
	Agg  netip.Addr
}

// Fig10 holds the two CDFs of the paper's Fig. 10 (in milliseconds).
type Fig10 struct {
	CloudToEdge *metrics.CDF
	AggToEdge   *metrics.CDF
}

// Figure10 measures, for every pair, the minimum RTT from the nearest
// cloud VM to the EdgeCO (10a) and the AggCO-to-EdgeCO RTT estimated as
// the difference of minimum RTTs along the shared path (10b). Pairs fan
// out over the probe scheduler; each pair's VM scan stays sequential
// inside its job because the agg leg targets whichever VM won the scan.
func (s *Study) Figure10(pairs []EdgePair) Fig10 {
	type pairRes struct {
		cloud, agg time.Duration
		ok         bool
	}
	pool := probesched.New(s.Parallelism, s.Clock)
	results := probesched.Map(pool, pairs, func(clk *vclock.Clock, pair EdgePair) pairRes {
		cs := *s
		cs.Clock = clk
		cloud, agg, ok := cs.pairRTTs(pair)
		return pairRes{cloud, agg, ok}
	})
	var cloudMs, aggMs []float64
	for _, r := range results {
		if !r.ok {
			continue
		}
		cloudMs = append(cloudMs, float64(r.cloud)/float64(time.Millisecond))
		if r.agg >= 0 {
			aggMs = append(aggMs, float64(r.agg)/float64(time.Millisecond))
		}
	}
	return Fig10{
		CloudToEdge: metrics.NewCDF(cloudMs),
		AggToEdge:   metrics.NewCDF(aggMs),
	}
}

// PairRTT estimates the AggCO-to-EdgeCO RTT of one pair in
// milliseconds, using the minimum-RTT difference from the nearest cloud
// VM along the shared path (§5.5's estimation method).
func (s *Study) PairRTT(pair EdgePair) (float64, bool) {
	_, agg, ok := s.pairRTTs(pair)
	if !ok || agg < 0 {
		return 0, false
	}
	return float64(agg) / float64(time.Millisecond), true
}

// pairRTTs returns the cloud-to-edge minimum RTT and the estimated
// agg-to-edge difference (-1 when the agg leg was unmeasurable).
func (s *Study) pairRTTs(pair EdgePair) (cloud, agg time.Duration, ok bool) {
	bestOK := false
	var best time.Duration
	var bestVM VM
	for _, vm := range s.VMs {
		rtt, ok := s.MinRTT(vm.Addr, pair.Edge)
		if !ok {
			continue
		}
		if !bestOK || rtt < best {
			best, bestVM, bestOK = rtt, vm, true
		}
	}
	if !bestOK {
		return 0, 0, false
	}
	aggRTT, okAgg := s.MinRTT(bestVM.Addr, pair.Agg)
	if !okAgg || aggRTT > best {
		return best, -1, true
	}
	return best, best - aggRTT, true
}
