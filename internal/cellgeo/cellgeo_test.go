package cellgeo

import (
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func TestRoundTripAccuracy(t *testing.T) {
	db := NewDB(0.25)
	for _, city := range geo.All() {
		id := db.CellIDAt(city.Point)
		got, ok := db.Lookup(id)
		if !ok {
			t.Fatalf("Lookup(%d) failed for %s", id, city.Name)
		}
		// Tower quantization error stays under ~25 km.
		if d := geo.DistanceKm(city.Point, got); d > 25 {
			t.Errorf("%s: tower %f km away", city.Name, d)
		}
	}
}

func TestCellIDStability(t *testing.T) {
	db := NewDB(0.25)
	p := geo.MustByName("Denver").Point
	if db.CellIDAt(p) != db.CellIDAt(p) {
		t.Error("cell ID not deterministic")
	}
	q := geo.Point{Lat: p.Lat + 2, Lon: p.Lon + 2}
	if db.CellIDAt(p) == db.CellIDAt(q) {
		t.Error("distant points share a tower")
	}
}

func TestLookupProperty(t *testing.T) {
	db := NewDB(0.25)
	f := func(latSeed, lonSeed uint16) bool {
		p := geo.Point{
			Lat: 24 + float64(latSeed%2500)/100,   // 24..49
			Lon: -125 + float64(lonSeed%5800)/100, // -125..-67
		}
		id := db.CellIDAt(p)
		tower, ok := db.Lookup(id)
		return ok && geo.DistanceKm(p, tower) < 30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidID(t *testing.T) {
	db := NewDB(0.25)
	if _, ok := db.Lookup(0); ok {
		t.Error("ID 0 should be invalid (latitude -90000 * spacing)")
	}
}

func TestDefaultSpacing(t *testing.T) {
	db := NewDB(0)
	if db.SpacingDeg <= 0 {
		t.Error("default spacing not applied")
	}
}
