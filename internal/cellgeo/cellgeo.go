// Package cellgeo is the OpenCellID stand-in (§7.1.1): shipped phones
// log the cell ID of the serving tower, and the campaign converts IDs to
// locations through a public tower database. The synthetic database
// places towers on a grid, so lookups carry the same tens-of-kilometers
// quantization error the real database has in rural areas.
package cellgeo

import (
	"math"

	"repro/internal/geo"
)

// DB resolves cell IDs to tower locations.
type DB struct {
	// SpacingDeg is the tower-grid pitch in degrees (~0.3 near towns in
	// the real database; coarser here to model rural sparsity).
	SpacingDeg float64
}

// NewDB returns a database with the given tower grid pitch.
func NewDB(spacingDeg float64) *DB {
	if spacingDeg <= 0 {
		spacingDeg = 0.25
	}
	return &DB{SpacingDeg: spacingDeg}
}

// CellIDAt returns the ID of the tower serving a location — what the
// phone reads from its modem.
func (d *DB) CellIDAt(p geo.Point) uint64 {
	row := int64(math.Round(p.Lat / d.SpacingDeg))
	col := int64(math.Round(p.Lon / d.SpacingDeg))
	// Pack row and col into one ID with an offset so negatives fit.
	return uint64(row+90000)<<32 | uint64(col+180000)&0xffffffff
}

// Lookup returns the tower location for an ID; ok is false for IDs the
// database has never seen (malformed).
func (d *DB) Lookup(id uint64) (geo.Point, bool) {
	row := int64(id>>32) - 90000
	col := int64(id&0xffffffff) - 180000
	lat := float64(row) * d.SpacingDeg
	lon := float64(col) * d.SpacingDeg
	if lat < -90 || lat > 90 || lon < -360 || lon > 360 {
		return geo.Point{}, false
	}
	return geo.Point{Lat: lat, Lon: lon}, true
}
