package comap

import (
	"strings"
	"testing"

	"repro/internal/topogen"
	"repro/internal/vclock"
)

// pipelineFixture runs the full pipeline once per ISP and caches the
// results; the underlying campaign is the expensive part of this test
// suite.
type fixture struct {
	scenario *topogen.Scenario
	comcast  *topogen.ISP
	charter  *topogen.ISP
	resC     *Result // comcast
	resH     *Result // charter
}

var fx *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if fx != nil {
		return fx
	}
	s := topogen.NewScenario(7)
	comcast := s.BuildCable(topogen.ComcastProfile())
	charter := s.BuildCable(topogen.CharterProfile())
	vps := s.StandardVPs(comcast, charter)
	run := func(isp *topogen.ISP) *Result {
		c := &Campaign{
			Net:       s.Net,
			DNS:       s.DNS,
			Clock:     vclock.New(s.Epoch()),
			ISP:       isp.Name,
			VPs:       vps,
			Announced: isp.Announced,
		}
		return Run(c)
	}
	fx = &fixture{
		scenario: s,
		comcast:  comcast,
		charter:  charter,
		resC:     run(comcast),
		resH:     run(charter),
	}
	return fx
}

func TestPipelineDiscoversAllRegions(t *testing.T) {
	f := getFixture(t)
	for _, tt := range []struct {
		isp *topogen.ISP
		res *Result
	}{{f.comcast, f.resC}, {f.charter, f.resH}} {
		for name := range tt.isp.Regions {
			g := tt.res.Inference.Regions[name]
			if g == nil {
				t.Errorf("%s: region %q not discovered", tt.isp.Name, name)
				continue
			}
			truth := tt.isp.Regions[name]
			found := float64(len(g.COs))
			actual := float64(len(truth.COs))
			if found < 0.6*actual {
				t.Errorf("%s/%s: found %d COs of %d", tt.isp.Name, name, len(g.COs), len(truth.COs))
			}
		}
	}
}

func TestCORecoveryPrecision(t *testing.T) {
	f := getFixture(t)
	// Inferred CO tags must correspond to ground-truth COs of the same
	// region: phantom COs from stale rDNS should have been pruned.
	for _, tt := range []struct {
		isp *topogen.ISP
		res *Result
	}{{f.comcast, f.resC}, {f.charter, f.resH}} {
		total, phantom := 0, 0
		for name, g := range tt.res.Inference.Regions {
			truth := tt.isp.Regions[name]
			if truth == nil {
				t.Errorf("%s: inferred unknown region %q", tt.isp.Name, name)
				continue
			}
			tags := map[string]bool{}
			for _, co := range truth.COs {
				tags[co.Tag] = true
			}
			for _, node := range g.COs {
				total++
				if !tags[node.Tag] {
					phantom++
				}
			}
		}
		if total == 0 {
			t.Fatalf("%s: empty inference", tt.isp.Name)
		}
		if frac := float64(phantom) / float64(total); frac > 0.03 {
			t.Errorf("%s: phantom CO fraction %.3f (%d/%d), want <= 3%%", tt.isp.Name, frac, phantom, total)
		}
	}
}

func TestP2PBitsInferred(t *testing.T) {
	f := getFixture(t)
	if got := f.resC.Inference.P2PBits; got != 30 {
		t.Errorf("comcast p2p bits = %d, want 30", got)
	}
	if got := f.resH.Inference.P2PBits; got != 31 {
		t.Errorf("charter p2p bits = %d, want 31", got)
	}
}

func TestAggCOIdentification(t *testing.T) {
	f := getFixture(t)
	// In bverton (dual-agg) the two ground-truth AggCO tags must be
	// classified as AggCOs.
	g := f.resC.Inference.Regions["bverton"]
	if g == nil {
		t.Fatal("bverton missing")
	}
	truth := f.comcast.Regions["bverton"]
	wantAgg := map[string]bool{}
	for _, co := range truth.COs {
		if co.Role == topogen.AggCO {
			wantAgg[co.Tag] = true
		}
	}
	gotAgg := map[string]bool{}
	for _, key := range g.AggCOs() {
		gotAgg[g.COs[key].Tag] = true
	}
	for tag := range wantAgg {
		if !gotAgg[tag] {
			t.Errorf("ground-truth AggCO %q not classified as AggCO", tag)
		}
	}
	// Few false AggCOs.
	extra := 0
	for tag := range gotAgg {
		if !wantAgg[tag] {
			extra++
		}
	}
	if extra > 2 {
		t.Errorf("%d spurious AggCOs in bverton", extra)
	}
}

func TestClassification(t *testing.T) {
	f := getFixture(t)
	wantType := func(layers int) AggType {
		switch layers {
		case 1:
			return AggSingle
		case 2:
			return AggTwo
		default:
			return AggMulti
		}
	}
	misses := 0
	for name, truth := range f.comcast.Regions {
		g := f.resC.Inference.Regions[name]
		if g == nil {
			continue
		}
		if g.Classify() != wantType(truth.AggLayers) {
			misses++
			t.Logf("comcast/%s classified %v, truth %d layers", name, g.Classify(), truth.AggLayers)
		}
	}
	if misses > 5 {
		t.Errorf("comcast type misclassifications = %d of 28", misses)
	}
	for name := range f.charter.Regions {
		g := f.resH.Inference.Regions[name]
		if g == nil {
			t.Errorf("charter/%s missing", name)
			continue
		}
		if got := g.Classify(); got != AggMulti {
			t.Errorf("charter/%s classified %v, want multi-level", name, got)
		}
	}
}

func TestEntryInference(t *testing.T) {
	f := getFixture(t)
	// boston: two backbone entries.
	g := f.resC.Inference.Regions["boston"]
	if g == nil {
		t.Fatal("boston missing")
	}
	bb := 0
	for _, e := range g.Entries {
		if strings.HasPrefix(e.From, "bb:") {
			bb++
		}
	}
	if bb < 2 {
		t.Errorf("boston backbone entries = %d, want >= 2 (%v)", bb, g.Entries)
	}
	// hartford: entered via boston COs, not the backbone.
	h := f.resC.Inference.Regions["hartford"]
	if h == nil {
		t.Fatal("hartford missing")
	}
	viaBoston, viaBackbone := false, false
	for _, e := range h.Entries {
		if strings.HasPrefix(e.From, "boston/") {
			viaBoston = true
		}
		if strings.HasPrefix(e.From, "bb:") {
			viaBackbone = true
		}
	}
	if !viaBoston {
		t.Errorf("hartford lacks a boston entry: %v", h.Entries)
	}
	if viaBackbone {
		t.Errorf("hartford shows a direct backbone entry it should not have: %v", h.Entries)
	}
	// centralca: both backbone and sanfrancisco entries.
	cc := f.resC.Inference.Regions["centralca"]
	if cc == nil {
		t.Fatal("centralca missing")
	}
	viaSF, viaBB := false, false
	for _, e := range cc.Entries {
		if strings.HasPrefix(e.From, "sanfrancisco/") {
			viaSF = true
		}
		if strings.HasPrefix(e.From, "bb:") {
			viaBB = true
		}
	}
	if !viaSF || !viaBB {
		t.Errorf("centralca entries: viaSF=%v viaBB=%v (%v)", viaSF, viaBB, cc.Entries)
	}
}

func TestPruneStatsShape(t *testing.T) {
	f := getFixture(t)
	for _, res := range []*Result{f.resC, f.resH} {
		p := res.Inference.Prune
		if p.InitialIPAdjs == 0 || p.InitialCOAdjs == 0 {
			t.Fatal("no adjacencies collected")
		}
		if p.BackboneIPAdjs == 0 {
			t.Error("no backbone adjacencies pruned; paths never crossed the backbone?")
		}
		if p.CrossRegionCOAdjs == 0 {
			t.Error("no cross-region adjacencies pruned; stale-rDNS noise missing?")
		}
	}
	// Comcast has more stale rDNS, so it loses relatively more
	// cross-region CO adjacencies than Charter (Table 4's contrast).
	cFrac := float64(f.resC.Inference.Prune.CrossRegionCOAdjs) / float64(f.resC.Inference.Prune.InitialCOAdjs)
	hFrac := float64(f.resH.Inference.Prune.CrossRegionCOAdjs) / float64(f.resH.Inference.Prune.InitialCOAdjs)
	if cFrac <= hFrac {
		t.Errorf("cross-region CO prune fraction: comcast %.3f <= charter %.3f", cFrac, hFrac)
	}
}

func TestMappingStatsShape(t *testing.T) {
	f := getFixture(t)
	for _, tt := range []struct {
		name string
		res  *Result
	}{{"comcast", f.resC}, {"charter", f.resH}} {
		st := tt.res.Mapping.Stats
		if st.Initial == 0 {
			t.Fatalf("%s: empty initial mapping", tt.name)
		}
		if st.AliasAdded == 0 && st.AliasChanged == 0 {
			t.Errorf("%s: alias resolution refined nothing", tt.name)
		}
		if st.SubnetAdded == 0 && st.SubnetChanged == 0 {
			t.Errorf("%s: p2p subnet stage refined nothing", tt.name)
		}
		if st.Final < st.Initial {
			t.Errorf("%s: mapping shrank %d -> %d", tt.name, st.Initial, st.Final)
		}
	}
}

func TestMPLSFalseEdgeRemoval(t *testing.T) {
	f := getFixture(t)
	// In the maine region, no surviving edge should run from a tier-1
	// AggCO tag straight to an EdgeCO that the ground truth places under
	// a tier-2 AggCO.
	truth := f.charter.Regions["maine"]
	g := f.resH.Inference.Regions["maine"]
	if g == nil {
		t.Fatal("maine missing")
	}
	if len(f.resH.Collection.FalsePairs) == 0 {
		t.Fatal("no MPLS false pairs detected in charter")
	}
	if f.resH.Inference.Prune.MPLSCOAdjs == 0 {
		t.Error("no CO adjacencies removed by the MPLS heuristic")
	}
	// Ground-truth tier-1 tags.
	tier1 := map[string]bool{}
	childOfTier2 := map[string]bool{}
	for _, co := range truth.COs {
		if co.Role == topogen.AggCO && co.Tier == 1 {
			tier1[co.Tag] = true
		}
	}
	for _, co := range truth.COs {
		if co.Role != topogen.EdgeCO {
			continue
		}
		for _, up := range co.Upstream {
			parent := truth.COs[up]
			if parent != nil && parent.Role == topogen.AggCO && parent.Tier == 2 {
				childOfTier2[co.Tag] = true
			}
		}
	}
	bad := 0
	for e := range g.Edges {
		a, b := g.COs[e[0]], g.COs[e[1]]
		if a != nil && b != nil && tier1[a.Tag] && childOfTier2[b.Tag] {
			bad++
		}
	}
	if bad > 3 {
		t.Errorf("%d false tier1->edge adjacencies survived MPLS pruning", bad)
	}
}

func TestSoutheastRedundancyInvisible(t *testing.T) {
	f := getFixture(t)
	// The southeast region's redundant uplinks never carry traffic, so
	// single-upstream EdgeCOs should dominate there (the B.4 anomaly).
	se := f.resH.Inference.Regions["southeast"]
	other := f.resH.Inference.Regions["socal"]
	if se == nil || other == nil {
		t.Fatal("regions missing")
	}
	frac := func(g *RegionGraph) float64 {
		ups := g.UpstreamCount()
		single, total := 0, 0
		for _, n := range ups {
			if n == 0 {
				continue
			}
			total++
			if n == 1 {
				single++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(single) / float64(total)
	}
	if fse, fso := frac(se), frac(other); fse <= fso {
		t.Errorf("southeast single-upstream fraction %.2f <= socal %.2f; hidden redundancy not reproduced", fse, fso)
	}
}

// TestCharterBuildingRedundancy exercises the §1 claim end to end: the
// inferred Charter graphs expose multi-building cities including dual
// AggCO buildings in the metros.
func TestCharterBuildingRedundancy(t *testing.T) {
	f := getFixture(t)
	totalMulti, totalRedundant := 0, 0
	for _, g := range f.resH.Inference.Regions {
		stats := BuildingRedundancy(g)
		if stats.Cities == 0 {
			t.Errorf("%s: no CLLI-tagged COs", g.Region)
		}
		totalMulti += stats.MultiBuilding
		totalRedundant += stats.RedundantAggCities
	}
	if totalMulti < 6 {
		t.Errorf("multi-building cities = %d, want at least one per region", totalMulti)
	}
	if totalRedundant < 3 {
		t.Errorf("dual-AggCO-building cities = %d", totalRedundant)
	}
	// Comcast's location-style tags are not CLLI: the analysis reports
	// no buildings rather than garbage.
	for _, g := range f.resC.Inference.Regions {
		if stats := BuildingRedundancy(g); stats.Cities != 0 {
			t.Errorf("comcast %s: CLLI analysis matched %d location tags", g.Region, stats.Cities)
			break
		}
	}
}

// TestMultiLevelTierStructure pins the structural insight behind
// Classify: in multi-level regions the §5.2.2 out-degree threshold
// selects the second-tier AggCOs (each serving many EdgeCOs), while the
// top layer — whose out-degree is just a handful of sub-AggCOs — often
// falls below it. Tiering is therefore signalled by AggCO count.
func TestMultiLevelTierStructure(t *testing.T) {
	f := getFixture(t)
	truth := f.comcast.Regions["sanfrancisco"]
	g := f.resC.Inference.Regions["sanfrancisco"]
	if g == nil {
		t.Fatal("sanfrancisco missing")
	}
	tier2Tags := map[string]bool{}
	for _, co := range truth.COs {
		if co.Role == topogen.AggCO && co.Tier == 2 {
			tier2Tags[co.Tag] = true
		}
	}
	aggTags := map[string]bool{}
	for _, key := range g.AggCOs() {
		aggTags[g.COs[key].Tag] = true
	}
	for tag := range tier2Tags {
		if !aggTags[tag] {
			t.Errorf("tier-2 AggCO %q not classified", tag)
		}
	}
	if got := g.Classify(); got != AggMulti {
		t.Errorf("sanfrancisco classified %v", got)
	}
}
