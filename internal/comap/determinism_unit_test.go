package comap

// Determinism tests for report-facing code paths: anything that walks a
// Go map into user-visible output must impose its own order. These run
// the same input through each path repeatedly; Go randomizes map
// iteration per range statement, so a missing sort shows up as a
// mismatch within a single process run.

import (
	"fmt"
	"reflect"
	"testing"
)

// edgeEdgeGraph builds a graph with several aggregation stars plus a
// mesh of edge-to-edge artifacts so removeEdgeEdgeEdges has many
// eligible deletions to order.
func edgeEdgeGraph() *RegionGraph {
	var edges [][2]string
	for _, agg := range []string{"aggA", "aggB", "aggC"} {
		edges = append(edges, starEdges(agg, 10)...)
	}
	for i := 0; i < 9; i++ {
		edges = append(edges,
			[2]string{fmt.Sprintf("aggA-e%02d", i), fmt.Sprintf("aggB-e%02d", i+1)},
			[2]string{fmt.Sprintf("aggB-e%02d", i), fmt.Sprintf("aggC-e%02d", i+1)},
		)
	}
	g := buildGraph("r", edges)
	identifyAggCOs(g)
	return g
}

func TestRemoveEdgeEdgeEdgesDeterministic(t *testing.T) {
	serialize := func(g *RegionGraph) string {
		keys := make([][2]string, 0, len(g.Edges))
		for e := range g.Edges {
			keys = append(keys, e)
		}
		sortPairs(keys)
		return fmt.Sprintf("%v removed=%d", keys, g.EdgesRemovedEdgeEdge)
	}
	base := edgeEdgeGraph()
	removeEdgeEdgeEdges(base)
	want := serialize(base)
	for run := 0; run < 10; run++ {
		g := edgeEdgeGraph()
		removeEdgeEdgeEdges(g)
		if got := serialize(g); got != want {
			t.Fatalf("run %d diverged:\n got %s\nwant %s", run, got, want)
		}
	}
}

func TestBuildingRedundancyDeterministic(t *testing.T) {
	build := func() *RegionGraph {
		var edges [][2]string
		// 12 CLLI cities with 3 buildings each, linked pairwise so every
		// CO survives with edges.
		for c := 0; c < 12; c++ {
			city := fmt.Sprintf("%cttlwa", 'a'+c)
			edges = append(edges,
				[2]string{city + "aa", city + "bb"},
				[2]string{city + "aa", city + "cc"},
			)
		}
		return buildGraph("r", edges)
	}
	want := BuildingRedundancy(build())
	if want.MultiBuilding != 12 {
		t.Fatalf("multi-building cities = %d, want 12", want.MultiBuilding)
	}
	for city, keys := range want.Buildings {
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("city %s buildings unsorted: %v", city, keys)
			}
		}
	}
	for run := 0; run < 10; run++ {
		if got := BuildingRedundancy(build()); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d diverged:\n got %+v\nwant %+v", run, got, want)
		}
	}
}

// TestNodeAddrsSorted checks the pipeline attaches CO addresses in
// sorted order; figures use Addrs[0] as a node's representative, so an
// unsorted list makes downstream probing schedules input-dependent on
// map iteration.
func TestNodeAddrsSorted(t *testing.T) {
	f := getFixture(t)
	for _, res := range []*Result{f.resC, f.resH} {
		for name, g := range res.Inference.Regions {
			for key, node := range g.COs {
				for i := 1; i < len(node.Addrs); i++ {
					if !node.Addrs[i-1].Less(node.Addrs[i]) {
						t.Fatalf("region %s CO %s Addrs unsorted: %v", name, key, node.Addrs)
					}
				}
			}
		}
	}
}
