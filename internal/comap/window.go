package comap

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/probesched"
	"repro/internal/traceroute"
)

// Windowed collection: when a Campaign sets TraceWindow, the flush fold
// no longer appends paths to one resident archive. Each kept trace is
// encoded into a traceroute segment log instead, sealed every
// TraceWindow traces (and at stage boundaries), and every inference
// pass replays the log window-at-a-time — resident path memory is
// O(window) regardless of campaign size. The replay reconstructs
// exactly the Path values the resident flush would have built (same
// responsive-hop filtering, same gap tracking, same order), which is
// why the golden digests are bit-identical at any window size.

// spillArchive is the on-disk form of a Collection's path archive.
type spillArchive struct {
	logPath string
	// dir is removed on Close when the archive created it (the default
	// SpillDir="" case); a caller-provided directory is left alone.
	dir     string
	ownsDir bool
	nPaths  int
}

// newSpillArchive places the segment log in dir, or in a fresh
// .spill-* directory under the working directory when dir is empty.
// name is the log's file name: campaigns derive it from the ISP under
// study, so two campaigns sharing one caller-provided SpillDir (the
// cable study probes comcast and charter back to back) never clobber
// each other's logs — which matters once durable logs outlive the
// process that wrote them.
func newSpillArchive(dir, name string) (*spillArchive, error) {
	sp := &spillArchive{dir: dir}
	if sp.dir == "" {
		d, err := os.MkdirTemp(".", ".spill-")
		if err != nil {
			return nil, err
		}
		sp.dir, sp.ownsDir = d, true
	}
	sp.logPath = filepath.Join(sp.dir, name)
	return sp, nil
}

// Close removes the spill files (and the directory, when owned). The
// log's durable manifest, when one exists, goes with it: Close means
// the campaign was consumed, so the crash-recovery state is garbage.
func (sp *spillArchive) Close() error {
	if sp == nil {
		return nil
	}
	if sp.ownsDir {
		return os.RemoveAll(sp.dir)
	}
	err := os.Remove(sp.logPath)
	mp := traceroute.ManifestPath(sp.logPath)
	for _, p := range []string{mp, mp + ".tmp"} {
		if rmErr := os.Remove(p); rmErr != nil && !os.IsNotExist(rmErr) && err == nil {
			err = rmErr
		}
	}
	return err
}

// windowScratch is the pooled decode state one replay pass cycles
// through: the reusable Segment plus the Path/hop/gap arenas the
// window's paths are carved from. Everything is sized once per window
// (capacities kept across windows), so a full-archive replay allocates
// only on high-water-mark growth.
type windowScratch struct {
	seg   traceroute.Segment
	paths []Path
	hops  []netip.Addr
	gaps  []bool
}

var windowScratches = sync.Pool{New: func() any { return new(windowScratch) }}

// decode converts the scratch's current segment into Path values. The
// arenas are grown to final size before any sub-slice is carved, so a
// later trace's rows can never reallocate an earlier path's backing
// array.
func (ws *windowScratch) decode() []Path {
	n := ws.seg.NumTraces()
	total := 0
	for i := 0; i < n; i++ {
		tv := ws.seg.View(i)
		for k := 0; k < tv.NumHops(); k++ {
			if tv.HopResponded(k) {
				total++
			}
		}
	}
	if cap(ws.hops) < total {
		ws.hops = make([]netip.Addr, total)
		ws.gaps = make([]bool, total)
	}
	hops, gaps := ws.hops[:total], ws.gaps[:total]
	paths := ws.paths[:0]
	off := 0
	for i := 0; i < n; i++ {
		tv := ws.seg.View(i)
		start := off
		gap := false
		for k := 0; k < tv.NumHops(); k++ {
			if !tv.HopResponded(k) {
				gap = true
				continue
			}
			hops[off] = tv.Hop(k).Addr
			gaps[off] = gap
			gap = false
			off++
		}
		paths = append(paths, Path{
			Src: tv.Src, Dst: tv.Dst, Reached: tv.Reached,
			Hops: hops[start:off:off],
			Gaps: gaps[start:off:off],
		})
	}
	ws.paths = paths
	return paths
}

// replay streams the archive's windows through fn in log order. base is
// the global index of the window's first path — base+j addresses path j
// exactly as the resident archive's flat index does. The window's Path
// values are valid only during the callback (arenas recycle).
//
// Decode failures panic: the log was written by this process moments
// ago, so a bad frame is a programming error or disk fault, not an
// input condition the pipeline can recover from.
func (sp *spillArchive) replay(fn func(base int, paths []Path, stage string)) {
	r, err := traceroute.OpenSegmentLog(sp.logPath)
	if err != nil {
		panic(fmt.Errorf("comap: replaying spill archive: %w", err))
	}
	defer r.Close()
	ws := windowScratches.Get().(*windowScratch)
	defer windowScratches.Put(ws)
	base := 0
	for {
		ok, err := r.Next(&ws.seg)
		if err != nil {
			panic(fmt.Errorf("comap: replaying spill archive: %w", err))
		}
		if !ok {
			break
		}
		paths := ws.decode()
		fn(base, paths, ws.seg.Stage)
		base += len(paths)
	}
	if base != sp.nPaths {
		panic(fmt.Sprintf("comap: spill archive replayed %d paths, recorded %d", base, sp.nPaths))
	}
}

// stageAt is the resident stage lookup, tolerating hand-built
// collections (unit tests) that populate Paths without StageOf.
func (c *Collection) stageAt(i int) string {
	if i < len(c.StageOf) {
		return c.StageOf[i]
	}
	return ""
}

// NumPaths reports the archive size: resident paths or spilled traces.
func (c *Collection) NumPaths() int {
	if c.spill != nil {
		return c.spill.nPaths
	}
	return len(c.Paths)
}

// EachPath visits every collected path in canonical (submission) order
// with its global index and collection stage — the sequential iteration
// surface that works identically for resident and spilled archives.
// Spilled Path values are valid only during the callback.
func (c *Collection) EachPath(fn func(i int, p Path, stage string)) {
	if c.spill != nil {
		c.spill.replay(func(base int, paths []Path, stage string) {
			for j, p := range paths {
				fn(base+j, p, stage)
			}
		})
		return
	}
	for i, p := range c.Paths {
		fn(i, p, c.stageAt(i))
	}
}

// Close releases the collection's spill files, if any. Resident
// collections need no cleanup; Close is idempotent.
func (c *Collection) Close() error {
	sp := c.spill
	c.spill = nil
	return sp.Close()
}

// foldPaths is the archive-shape-independent form of the inference
// passes' shard-accumulate-merge: the same (init, accum, merge)
// contract as probesched.Reduce, with accum handed the path and stage
// directly so it never indexes a resident slice.
//
// Resident archives reduce over the flat path slice exactly as before.
// Spilled archives replay window-at-a-time: each window reduces across
// the pool's workers, and window accumulators merge in window order.
// Because windows partition the global index range contiguously and in
// order, this is the same shard structure Reduce itself builds — for
// the concatenation-homomorphic (accum, merge) pairs the passes use,
// the result is identical for any window size and worker count.
func foldPaths[A any](pool *probesched.Pool, col *Collection, init func() A,
	accum func(a A, i int, p Path, stage string) A,
	merge func(into, from A) A) A {
	if col.spill == nil {
		return probesched.Reduce(pool, len(col.Paths), init,
			func(a A, i int) A { return accum(a, i, col.Paths[i], col.stageAt(i)) },
			merge)
	}
	var acc A
	first := true
	col.spill.replay(func(base int, paths []Path, stage string) {
		part := probesched.Reduce(pool, len(paths), init,
			func(a A, j int) A { return accum(a, base+j, paths[j], stage) },
			merge)
		if first {
			acc, first = part, false
		} else {
			acc = merge(acc, part)
		}
	})
	if first {
		return init()
	}
	return acc
}
