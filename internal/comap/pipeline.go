package comap

// Result bundles everything one end-to-end run of the cable pipeline
// produces: the raw collection, the Phase 1 mapping, and the Phase 2
// inference.
type Result struct {
	Collection *Collection
	Mapping    *Mapping
	Inference  *Inference
}

// Run executes the full pipeline: collection, mapping, graphs.
func Run(c *Campaign) *Result {
	col := c.Run()
	m := BuildMapping(col, c.DNS, c.ISP)
	return &Result{
		Collection: col,
		Mapping:    m,
		Inference:  BuildGraphs(col, m),
	}
}

// StageAdjacencies counts the distinct intra-region CO adjacencies each
// collection stage observed (independently — a pair seen by several
// stages counts for each), quantifying §5.1's claim that directly
// targeting CO router interfaces reveals several times more
// interconnections than the /24 sweep alone.
func (r *Result) StageAdjacencies() map[string]int {
	perStage := map[string]map[[2]string]bool{}
	for i, p := range r.Collection.Paths {
		stage := r.Collection.StageOf[i]
		if perStage[stage] == nil {
			perStage[stage] = map[[2]string]bool{}
		}
		for h := 1; h < len(p.Hops); h++ {
			if p.Gaps[h] {
				continue
			}
			a, oka := r.Mapping.CO[p.Hops[h-1]]
			b, okb := r.Mapping.CO[p.Hops[h]]
			if !oka || !okb || a == b {
				continue
			}
			ra, okra := regionOf(a)
			rb, okrb := regionOf(b)
			if !okra || !okrb || ra != rb {
				continue
			}
			perStage[stage][[2]string{a, b}] = true
		}
	}
	out := map[string]int{}
	for stage, pairs := range perStage {
		out[stage] = len(pairs)
	}
	return out
}
