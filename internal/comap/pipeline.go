package comap

import "repro/internal/probesched"

// Result bundles everything one end-to-end run of the cable pipeline
// produces: the raw collection, the Phase 1 mapping, and the Phase 2
// inference.
type Result struct {
	Collection *Collection
	Mapping    *Mapping
	Inference  *Inference
	// Coverage accounts for how completely the (possibly faulted)
	// measurement plane was observed; see CoverageReport.
	Coverage CoverageReport

	// workers is the parallelism the pipeline ran with; post-hoc
	// analyses on the Result (StageAdjacencies) reuse it.
	workers int
}

// Run executes the full pipeline: collection, mapping, graphs. The
// campaign's Parallelism knob drives the inference half exactly as it
// drives collection — one worker-count setting end to end, with
// byte-identical output at any value.
func Run(c *Campaign) *Result {
	col := c.Run()
	m := BuildMappingParallel(col, c.DNS, c.ISP, c.Parallelism)
	inf := BuildGraphsParallel(col, m, c.Parallelism)
	return &Result{
		Collection: col,
		Mapping:    m,
		Inference:  inf,
		Coverage:   BuildCoverage(col, inf),
		workers:    c.Parallelism,
	}
}

// StageAdjacencies counts the distinct intra-region CO adjacencies each
// collection stage observed (independently — a pair seen by several
// stages counts for each), quantifying §5.1's claim that directly
// targeting CO router interfaces reveals several times more
// interconnections than the /24 sweep alone. The path scan shards
// across the pipeline's workers; per-stage pair sets union across
// shards, so the counts are shard-order independent.
func (r *Result) StageAdjacencies() map[string]int {
	pool := probesched.New(r.workers, nil)
	perStage := probesched.Reduce(pool, len(r.Collection.Paths),
		func() map[string]map[[2]string]bool { return map[string]map[[2]string]bool{} },
		func(acc map[string]map[[2]string]bool, i int) map[string]map[[2]string]bool {
			p := r.Collection.Paths[i]
			stage := r.Collection.StageOf[i]
			for h := 1; h < len(p.Hops); h++ {
				if p.Gaps[h] {
					continue
				}
				a, oka := r.Mapping.CO[p.Hops[h-1]]
				b, okb := r.Mapping.CO[p.Hops[h]]
				if !oka || !okb || a == b {
					continue
				}
				ra, okra := regionOf(a)
				rb, okrb := regionOf(b)
				if !okra || !okrb || ra != rb {
					continue
				}
				if acc[stage] == nil {
					acc[stage] = map[[2]string]bool{}
				}
				acc[stage][[2]string{a, b}] = true
			}
			return acc
		},
		func(into, from map[string]map[[2]string]bool) map[string]map[[2]string]bool {
			for stage, pairs := range from {
				if into[stage] == nil {
					into[stage] = pairs
					continue
				}
				for pair := range pairs {
					into[stage][pair] = true
				}
			}
			return into
		})
	out := map[string]int{}
	for stage, pairs := range perStage {
		out[stage] = len(pairs)
	}
	return out
}
