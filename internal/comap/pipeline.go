package comap

import (
	"context"
	"fmt"

	"repro/internal/probesched"
	"repro/internal/symtab"
)

// Result bundles everything one end-to-end run of the cable pipeline
// produces: the raw collection, the Phase 1 mapping, and the Phase 2
// inference.
type Result struct {
	Collection *Collection
	Mapping    *Mapping
	Inference  *Inference
	// Coverage accounts for how completely the (possibly faulted)
	// measurement plane was observed; see CoverageReport.
	Coverage CoverageReport
	// Seed is the campaign's scenario seed, surfaced in the Report as
	// generated_seed.
	Seed int64

	// workers is the parallelism the pipeline ran with; post-hoc
	// analyses on the Result (StageAdjacencies) reuse it.
	workers int
}

// Close releases the collection's spill files when the campaign ran
// windowed. Post-hoc path scans (StageAdjacencies, digest serializers)
// must run before Close; everything else on the Result stays valid.
func (r *Result) Close() error {
	if r == nil || r.Collection == nil {
		return nil
	}
	return r.Collection.Close()
}

// Run executes the full pipeline: collection, mapping, graphs. The
// campaign's Parallelism knob drives the inference half exactly as it
// drives collection — one worker-count setting end to end, with
// byte-identical output at any value.
func Run(c *Campaign) *Result {
	r, err := RunContext(context.Background(), c)
	if err != nil {
		panic(fmt.Errorf("comap: pipeline aborted: %w", err))
	}
	return r
}

// RunContext is Run with cooperative cancellation threaded into the
// collection's flush loop (see Campaign.RunContext); inference only
// starts once collection completed.
func RunContext(ctx context.Context, c *Campaign) (*Result, error) {
	col, err := c.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	m := BuildMappingParallel(col, c.DNS, c.ISP, c.Parallelism)
	inf := BuildGraphsParallel(col, m, c.Parallelism)
	return &Result{
		Collection: col,
		Mapping:    m,
		Inference:  inf,
		Coverage:   BuildCoverage(col, inf),
		Seed:       c.Seed,
		workers:    c.Parallelism,
	}, nil
}

// StageAdjacencies counts the distinct intra-region CO adjacencies each
// collection stage observed (independently — a pair seen by several
// stages counts for each), quantifying §5.1's claim that directly
// targeting CO router interfaces reveals several times more
// interconnections than the /24 sweep alone. The path scan shards
// across the pipeline's workers; per-stage pair sets union across
// shards, so the counts are shard-order independent.
func (r *Result) StageAdjacencies() map[string]int {
	pool := probesched.New(r.workers, nil)
	// Region lookups go through a snapshot of the per-symbol region tags
	// (the interned table is append-only, so the snapshot covers every
	// symbol the mapping can produce) and the pair sets are keyed by
	// interned symbols — no strings on the scan path.
	m := r.Mapping
	regions := make([]struct {
		region symtab.Sym
		ok     bool
	}, m.Syms.Len())
	for s := range regions {
		if rg, ok := regionOf(m.Syms.Str(symtab.Sym(s))); ok {
			regions[s].region = m.Syms.Intern(rg)
			regions[s].ok = true
		}
	}
	perStage := foldPaths(pool, r.Collection,
		func() map[string]map[[2]symtab.Sym]bool { return map[string]map[[2]symtab.Sym]bool{} },
		func(acc map[string]map[[2]symtab.Sym]bool, _ int, p Path, stage string) map[string]map[[2]symtab.Sym]bool {
			for h := 1; h < len(p.Hops); h++ {
				if p.Gaps[h] {
					continue
				}
				a, oka := m.COSym[p.Hops[h-1]]
				b, okb := m.COSym[p.Hops[h]]
				if !oka || !okb || a == b {
					continue
				}
				ra, rb := regions[a], regions[b]
				if !ra.ok || !rb.ok || ra.region != rb.region {
					continue
				}
				if acc[stage] == nil {
					acc[stage] = map[[2]symtab.Sym]bool{}
				}
				acc[stage][[2]symtab.Sym{a, b}] = true
			}
			return acc
		},
		func(into, from map[string]map[[2]symtab.Sym]bool) map[string]map[[2]symtab.Sym]bool {
			for stage, pairs := range from {
				if into[stage] == nil {
					into[stage] = pairs
					continue
				}
				for pair := range pairs {
					into[stage][pair] = true
				}
			}
			return into
		})
	out := map[string]int{}
	for stage, pairs := range perStage {
		out[stage] = len(pairs)
	}
	return out
}
