package comap

import (
	"context"
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/alias"
	"repro/internal/dnsdb"
	"repro/internal/hostnames"
	"repro/internal/netsim"
	"repro/internal/prefixset"
	"repro/internal/probesched"
	"repro/internal/segfault"
	"repro/internal/traceroute"
	"repro/internal/vclock"
)

// Campaign is the Phase 1 measurement configuration for one cable
// operator (§5.1).
type Campaign struct {
	Net   *netsim.Network
	DNS   *dnsdb.DB
	Clock *vclock.Clock
	// ISP selects the hostname convention under study.
	ISP string
	// Seed is the scenario seed the probed topology was generated from;
	// it is carried into the Report (generated_seed) so a served
	// artifact names the world it measured. Zero when the caller did
	// not thread one — the campaign itself never consumes it.
	Seed int64
	// VPs are the vantage-point host addresses (the paper used 47 in
	// access, cloud, and transit networks).
	VPs []netip.Addr
	// Announced is the operator's routed address space (BGP-derived in
	// the paper); the /24 sweep enumerates it.
	Announced []netip.Prefix
	// SweepVPs and TargetVPs bound how many VPs probe each /24 and each
	// rDNS-selected target (rotated deterministically for coverage).
	SweepVPs  int
	TargetVPs int

	// Parallelism is the probe-scheduler worker count (0 selects
	// GOMAXPROCS). Collections are byte-identical at any value — see
	// internal/probesched for why — so this is purely a throughput knob.
	Parallelism int
	// MaxTraces caps the total traceroutes submitted across all stages
	// (0 = unlimited): the probe-budget knob of the core options API.
	// Jobs beyond the budget are dropped from the tail of each stage's
	// canonical job list, so a given budget is deterministic too.
	MaxTraces int

	// Resilience opts the campaign's probing into retry/backoff/budget
	// behavior and the per-VP circuit breaker. The zero value keeps the
	// campaign bit-identical to its historical (and golden-digested)
	// behavior: even legitimate timeouts would otherwise be retried,
	// changing every downstream observation.
	Resilience probesched.Resilience

	// TraceWindow, when positive, streams the campaign through the
	// windowed engine: kept traces spill to a segment log in windows of
	// this many traces, and inference replays the log window-at-a-time
	// instead of holding the archive resident. Fault-free campaigns are
	// bit-identical at any window size (the golden-equivalence tests pin
	// this); under an active FaultPlan the time-windowed faults observe
	// slightly different virtual clocks than an unbounded run — still
	// deterministic for fixed settings, but not byte-equal across window
	// sizes. Zero keeps the historical resident archive.
	TraceWindow int
	// SpillDir hosts the segment log (TraceWindow mode only). Empty
	// creates a .spill-* directory under the working directory, removed
	// by Collection.Close; a provided directory is reused and only the
	// log file itself is cleaned up.
	SpillDir string
	// Durable opts the windowed spill into crash-safe mode: every
	// sealed window is fsynced and indexed in an atomically published
	// manifest, a cursor checkpoint lands at every flush boundary, and
	// a campaign restarted over the same SpillDir resumes — re-probing
	// only the windows the crash lost — with bit-identical results.
	// Requires TraceWindow > 0 and an explicit SpillDir (an owned
	// temp directory cannot be found again after a crash).
	Durable bool
	// SpillFS is the filesystem seam durable spill I/O goes through;
	// nil selects the real OS. The crash tests inject segfault plans
	// here — production callers leave it nil.
	SpillFS segfault.FS

	// SkipDirectTargeting disables step 2 (rDNS-selected targets); used
	// by the ablation benches to quantify the paper's 5.3x claim.
	SkipDirectTargeting bool
	// SkipMPLSPass disables the Vanaubel-style follow-up traceroutes
	// and false-edge detection.
	SkipMPLSPass bool
	// SkipAlias disables alias resolution.
	SkipAlias bool
}

// Collection is the raw measurement output of a campaign.
type Collection struct {
	// Paths and StageOf form the resident archive (TraceWindow == 0).
	// Windowed campaigns leave both nil and keep the archive in spill;
	// consumers iterate either shape through NumPaths/EachPath (or the
	// internal foldPaths), never these fields directly.
	Paths []Path
	// StageOf tags each path index with its collection stage: "sweep",
	// "direct", or "mpls".
	StageOf []string
	// spill is the on-disk archive of a windowed campaign; nil when
	// resident. Collection.Close releases it.
	spill *spillArchive
	// Observed is every responsive hop address seen.
	Observed map[netip.Addr]bool
	// ScanTargets are the snapshot addresses matching the operator's
	// router-name regexes.
	ScanTargets []netip.Addr
	// FalsePairs are IP adjacencies identified as MPLS tunnel
	// entry/exit pairs (false links); DirectPairs were confirmed as
	// physically adjacent by a traceroute addressed to the second
	// address (where an LSP cannot hide interior hops).
	FalsePairs  map[[2]netip.Addr]bool
	DirectPairs map[[2]netip.Addr]bool
	// Aliases is the alias-resolution result (nil when skipped).
	Aliases *alias.Result
	// AliasTargets is the address set fed to alias resolution.
	AliasTargets []netip.Addr

	// Stats is the campaign-wide probe-outcome ledger (traceroute and
	// alias probes both land here); Sent == Replied + Lost + RateLimited
	// always. TracesRun / EmptyTraces / TruncatedTraces count whole
	// traces; HopRowsProbed / HopRowsAnswered count hop rows across all
	// traces (answered/probed is the campaign's hop yield). Quarantined
	// lists vantage points the circuit breaker benched. All of this is
	// accounting only — it never feeds inference, and none of it enters
	// the pinned campaign digests.
	Stats           probesched.ProbeStats
	TracesRun       int
	EmptyTraces     int
	TruncatedTraces int
	HopRowsProbed   int
	HopRowsAnswered int
	Quarantined     []netip.Addr

	// Resumed reports what the durable spill log's recovery decided at
	// startup (fresh, resumed at a checkpoint, or complete-replay); nil
	// for non-durable campaigns. Accounting only — resumed campaigns
	// reproduce the uninterrupted collection bit for bit.
	Resumed *traceroute.Resume
}

func (c *Campaign) defaults() {
	if c.SweepVPs == 0 {
		c.SweepVPs = 4
	}
	if c.TargetVPs == 0 {
		c.TargetVPs = 8
	}
}

// engine builds a traceroute engine bound to the campaign clock.
func (c *Campaign) engine() *traceroute.Engine {
	eng := &traceroute.Engine{Net: c.Net, Clock: c.Clock, Attempts: 2, GapLimit: 5}
	eng.ApplyResilience(c.Resilience)
	return eng
}

// Run executes every collection stage and returns the raw observations.
// Within a stage every traceroute is independent, so jobs are built in
// canonical (target, VP-rotation) order, fanned across the probe
// scheduler, and folded back in that same order; stages themselves stay
// sequential barriers because each derives its target list from the
// previous stage's observations.
func (c *Campaign) Run() *Collection {
	col, err := c.RunContext(context.Background())
	if err != nil {
		// Background contexts never cancel; keep the historical
		// no-error signature for the callers that use it.
		panic(fmt.Errorf("comap: campaign aborted: %w", err))
	}
	return col
}

// RunContext is Run with cooperative cancellation: the flush loop
// checks ctx at every flush boundary and, once cancelled, stops before
// submitting the next probe batch and returns ctx's error. The check
// sits on batch boundaries only, so cancellation is digest-neutral —
// whatever a cancelled campaign did probe is exactly the prefix an
// uninterrupted run would have produced. A cancelled durable campaign
// leaves its spill log, manifest, and last checkpoint on disk, so the
// next RunContext over the same SpillDir resumes where it stopped; a
// cancelled non-durable campaign removes its spill (nothing can use
// it).
func (c *Campaign) RunContext(ctx context.Context) (col *Collection, err error) {
	c.defaults()
	col = &Collection{
		Observed:    map[netip.Addr]bool{},
		FalsePairs:  map[[2]netip.Addr]bool{},
		DirectPairs: map[[2]netip.Addr]bool{},
	}
	eng := c.engine()
	pool := probesched.New(c.Parallelism, c.Clock)

	// Windowed mode spills kept traces to a segment log as they fold in.
	// Setup failures panic: a campaign that cannot open its spill file
	// has no degraded mode to fall back to (silently going resident
	// would defeat the caller's memory bound).
	var writer *traceroute.SegmentWriter
	var rs *resumeState
	if c.Durable && c.TraceWindow <= 0 {
		panic(fmt.Errorf("comap: Durable requires TraceWindow > 0 (only windowed campaigns spill)"))
	}
	if c.TraceWindow > 0 {
		if c.Durable && c.SpillDir == "" {
			panic(fmt.Errorf("comap: Durable requires an explicit SpillDir (an owned temp dir cannot be found again after a crash)"))
		}
		sp, err := newSpillArchive(c.SpillDir, c.spillName())
		if err != nil {
			panic(fmt.Errorf("comap: creating spill archive: %w", err))
		}
		col.spill = sp
		if c.Durable {
			fsys := c.SpillFS
			if fsys == nil {
				fsys = segfault.OS
			}
			w, res, err := traceroute.OpenDurableSegmentLog(sp.logPath, c.fingerprint(), fsys)
			if err != nil {
				// Leave the files: whatever is on disk stays resumable.
				panic(fmt.Errorf("comap: opening durable spill log: %w", err))
			}
			writer = w
			col.Resumed = res
			if res.Resumed {
				rs = &resumeState{
					checkpoints: res.Checkpoints,
					cursor:      logCursor{path: sp.logPath},
				}
			}
		} else {
			w, err := traceroute.CreateSegmentLog(sp.logPath)
			if err != nil {
				sp.Close()
				panic(fmt.Errorf("comap: creating spill log: %w", err))
			}
			writer = w
		}
	}

	// Cancellation unwinds as a panic from the flush loop; turn it back
	// into an error here, closing the log file handle but leaving a
	// durable campaign's spill state on disk for the resume.
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		cc, ok := r.(campaignCancelled)
		if !ok {
			panic(r)
		}
		if rs != nil {
			rs.cursor.close()
		}
		if writer != nil {
			writer.Close()
		}
		if !c.Durable {
			col.spill.Close()
		}
		col, err = nil, cc.err
	}()

	// The /24 sweep dominates job volume, so its size (clamped by the
	// probe budget) presizes the dedup set and job list: the dedup map
	// showed up at ~30% of collection CPU in profiles, most of it
	// incremental rehash growth.
	var sweep []netip.Addr
	for _, pfx := range c.Announced {
		sweep = append(sweep, enumerate24s(pfx)...)
	}
	hint := len(sweep) * c.SweepVPs * 2
	if c.MaxTraces > 0 && hint > c.MaxTraces*2 {
		hint = c.MaxTraces * 2
	}
	// The dedup set keys IPv4 (src,dst) pairs through the shared
	// prefixset.PairKey4 packing — injective, since each address is
	// exactly its 32-bit value — which more than halves the set's
	// footprint vs [2]netip.Addr keys (48-byte keys, most of it Addr
	// internals). Non-IPv4 pairs (none in the cable campaigns, but the
	// API allows them) fall back to a wide map.
	seen := make(map[uint64]bool, hint) // packed (src,dst) pairs already traced
	var seenWide map[[2]netip.Addr]bool
	submitted := 0

	// The circuit breaker benches dead VPs between stages: Record runs
	// only on the in-order fold goroutine, and Quarantined is consulted
	// only while building the next stage's job list (stages are
	// sequential barriers), so its decisions are worker-count invariant.
	breaker := probesched.NewBreaker(c.Resilience.BreakerThreshold)

	// Windowed mode also bounds the pending-job list: instead of
	// accumulating a whole stage's jobs before scheduling, the list
	// drains through the scheduler every few windows' worth. Fault-free
	// probing is time-independent (replies are pure functions of seed
	// and flow), so splitting a stage into several scheduler batches
	// folds the identical trace sequence and advances the clock by the
	// identical total — the windowed golden tests pin this. Resident
	// mode keeps the one-batch-per-stage shape (under an active fault
	// plan, batch boundaries are clock-visible).
	jobFlushEvery := 0
	jobsCap := hint / 2
	if c.TraceWindow > 0 {
		jobFlushEvery = 4 * c.TraceWindow
		if jobFlushEvery < 1024 {
			jobFlushEvery = 1024
		}
		if jobsCap > jobFlushEvery {
			jobsCap = jobFlushEvery
		}
	}
	jobs := make([]probesched.Request, 0, jobsCap)
	curStage := ""
	var flush func()
	add := func(src, dst netip.Addr) {
		if c.MaxTraces > 0 && submitted+len(jobs) >= c.MaxTraces {
			return
		}
		if breaker.Quarantined(src) {
			return
		}
		if key, ok := prefixset.PairKey4(src, dst); ok {
			if seen[key] {
				return
			}
			seen[key] = true
		} else {
			if seenWide == nil {
				seenWide = map[[2]netip.Addr]bool{}
			}
			key := [2]netip.Addr{src, dst}
			if seenWide[key] {
				return
			}
			seenWide[key] = true
		}
		jobs = append(jobs, probesched.Request{Src: src, Dst: dst})
		if jobFlushEvery > 0 && len(jobs) >= jobFlushEvery {
			flush()
		}
	}
	// Kept paths carve their Hops/Gaps out of shared arena chunks instead
	// of two exact-size allocations per path; the chunks stay alive for
	// the Collection's lifetime through the path slices, and each carve is
	// capacity-clamped so an append on one path can never bleed into the
	// next path's region.
	var hopArena []netip.Addr
	var gapArena []bool
	const arenaChunk = 4096

	// Durable campaigns track the flush schedule: flushOrdinal counts
	// completed flushes (live or restored), and lastCursor is the most
	// recent checkpoint state, re-used by MarkComplete.
	flushOrdinal := 0
	var lastCursor resumeCursor
	takeCursor := func(stage string) resumeCursor {
		return resumeCursor{
			Stage:           stage,
			Flush:           flushOrdinal,
			Submitted:       submitted,
			ClockNS:         c.Clock.Now().UnixNano(),
			TracesRun:       col.TracesRun,
			EmptyTraces:     col.EmptyTraces,
			TruncatedTraces: col.TruncatedTraces,
			HopRowsProbed:   col.HopRowsProbed,
			HopRowsAnswered: col.HopRowsAnswered,
			Stats:           col.Stats,
			Paths:           col.NumPaths(),
			Breaker:         breaker.State(),
		}
	}

	// flush runs the accumulated jobs through the scheduler, streaming
	// each trace into the collection in submission order while later
	// jobs are still probing (traceroute.FoldTraces). Windowed mode
	// encodes kept traces into the spill log instead of carving resident
	// paths; the scheduler's backpressure keeps in-flight chunks bounded
	// while this fold writes to disk.
	//
	// Durable mode adds two behaviors at the flush boundary. Going in,
	// a flush whose ordinal has a surviving checkpoint is *restored*
	// instead of probed: its traces are already in the recovered log,
	// so the flush drops the (identically regenerated) job batch,
	// streams the log windows through Observed and the simulator's
	// IP-ID warm-up, and restores the checkpoint cursor. Going out, a
	// live flush seals the open window and checkpoints the new cursor,
	// making everything up to this boundary crash-recoverable.
	flush = func() {
		if cerr := ctx.Err(); cerr != nil {
			// The pending batch was never submitted; the previous flush's
			// checkpoint already covers everything probed so far.
			panic(campaignCancelled{cerr})
		}
		stage := curStage
		if rs != nil && flushOrdinal < len(rs.checkpoints) {
			chk := rs.checkpoints[flushOrdinal]
			var cur resumeCursor
			if jerr := json.Unmarshal(chk.State, &cur); jerr != nil {
				panic(fmt.Errorf("comap: decoding resume checkpoint %d: %w", flushOrdinal, jerr))
			}
			if cur.Flush != flushOrdinal+1 || cur.Stage != stage ||
				cur.Submitted != submitted+len(jobs) || cur.Paths != chk.Paths {
				panic(fmt.Errorf("comap: resume regeneration diverged at flush %d (stage %q->%q, submitted %d->%d): refusing to replay a log this configuration did not write",
					flushOrdinal, cur.Stage, stage, cur.Submitted, submitted+len(jobs)))
			}
			submitted += len(jobs)
			jobs = jobs[:0]
			rs.cursor.advanceTo(chk.Paths, func(tv traceroute.TraceView, _ string) {
				for k := 0; k < tv.NumHops(); k++ {
					if !tv.HopResponded(k) {
						continue
					}
					h := tv.Hop(k)
					col.Observed[h.Addr] = true
					c.Net.WarmReply(h.Addr, h.TTL == 1, h.Type == netsim.TTLExceeded)
				}
			})
			col.spill.nPaths = chk.Paths
			col.TracesRun = cur.TracesRun
			col.EmptyTraces = cur.EmptyTraces
			col.TruncatedTraces = cur.TruncatedTraces
			col.HopRowsProbed = cur.HopRowsProbed
			col.HopRowsAnswered = cur.HopRowsAnswered
			col.Stats = cur.Stats
			breaker.Restore(cur.Breaker)
			c.Clock.AdvanceTo(time.Unix(0, cur.ClockNS))
			lastCursor = cur
			flushOrdinal++
			return
		}
		if rs != nil {
			// First live flush: every restored flush precedes it, so the
			// recovered-log read cursor is spent.
			rs.cursor.close()
			if writer == nil {
				panic(fmt.Errorf("comap: complete recovered log but regeneration wants to probe at flush %d: regeneration diverged", flushOrdinal))
			}
		}
		submitted += len(jobs)
		eng.FoldTracesColumnar(pool, jobs, func(_ int, tv traceroute.TraceView) {
			// Count responsive hops first: all-timeout traces (most of
			// the /24 sweep) are dropped without allocating, and kept
			// paths get exactly-sized slices. Hop rows live in the
			// chunk's columnar store, valid exactly for this fold call.
			n := tv.NumHops()
			resp := 0
			for k := 0; k < n; k++ {
				if tv.HopResponded(k) {
					resp++
				}
			}
			col.TracesRun++
			col.Stats.Add(tv.Stats())
			col.HopRowsProbed += n
			col.HopRowsAnswered += resp
			if tv.Truncated {
				col.TruncatedTraces++
			}
			breaker.Record(tv.Src, resp == 0)
			if resp == 0 {
				col.EmptyTraces++
				return
			}
			if writer != nil {
				for k := 0; k < n; k++ {
					if tv.HopResponded(k) {
						col.Observed[tv.Hop(k).Addr] = true
					}
				}
				if err := writer.Append(stage, tv); err != nil {
					panic(fmt.Errorf("comap: spilling trace: %w", err))
				}
				col.spill.nPaths++
				if writer.Count() >= c.TraceWindow {
					if err := writer.Seal(); err != nil {
						panic(fmt.Errorf("comap: sealing window: %w", err))
					}
				}
				return
			}
			if cap(hopArena)-len(hopArena) < resp {
				grow := arenaChunk
				if grow < resp {
					grow = resp
				}
				hopArena = make([]netip.Addr, 0, grow)
				gapArena = make([]bool, 0, grow)
			}
			lo := len(hopArena)
			hopArena = hopArena[:lo+resp]
			gapArena = gapArena[:lo+resp]
			p := Path{
				Src: tv.Src, Dst: tv.Dst, Reached: tv.Reached,
				Hops: hopArena[lo : lo+resp : lo+resp],
				Gaps: gapArena[lo : lo+resp : lo+resp],
			}
			gap := false
			w := 0
			for k := 0; k < n; k++ {
				if !tv.HopResponded(k) {
					gap = true
					continue
				}
				h := tv.Hop(k)
				p.Hops[w] = h.Addr
				p.Gaps[w] = gap
				w++
				gap = false
				col.Observed[h.Addr] = true
			}
			col.Paths = append(col.Paths, p)
			col.StageOf = append(col.StageOf, stage)
		})
		jobs = jobs[:0]
		flushOrdinal++
		if c.Durable && writer != nil {
			// Seal the open window (Checkpoint seals first) and publish
			// the cursor: the durability boundary every crash between
			// here and the next checkpoint rolls back to. Extra seals at
			// flush boundaries are replay-neutral — window layout never
			// enters the digests.
			lastCursor = takeCursor(stage)
			buf, merr := json.Marshal(lastCursor)
			if merr != nil {
				panic(fmt.Errorf("comap: encoding resume cursor: %w", merr))
			}
			if cerr := writer.Checkpoint(col.spill.nPaths, buf); cerr != nil {
				panic(fmt.Errorf("comap: checkpointing spill log: %w", cerr))
			}
		}
	}

	// Stage 1: traceroute to an address in every /24 of the announced
	// space to expose at least one router per EdgeCO.
	curStage = "sweep"
	for i, dst := range sweep {
		for k := 0; k < c.SweepVPs && k < len(c.VPs); k++ {
			add(c.VPs[(i+k*7)%len(c.VPs)], dst)
		}
	}
	flush()

	// Stage 2: traceroute to every address whose snapshot rDNS matches
	// the operator's router-name regexes. Both the regex scan and the
	// hostname-grammar sweep shard across the campaign workers; shard
	// hit lists concatenate in shard order, preserving the
	// address-sorted target order the probe schedule depends on.
	re := hostnames.TargetRegex(c.ISP)
	scan := c.DNS.ScanSnapshotParallel(re, c.Parallelism)
	col.ScanTargets = probesched.Reduce(pool, len(scan),
		func() []netip.Addr { return nil },
		func(out []netip.Addr, i int) []netip.Addr {
			if _, ok := hostnames.Parse(scan[i].Name); ok {
				out = append(out, scan[i].Addr)
			}
			return out
		},
		func(into, from []netip.Addr) []netip.Addr { return append(into, from...) })
	if !c.SkipDirectTargeting {
		curStage = "direct"
		for i, dst := range col.ScanTargets {
			for k := 0; k < c.TargetVPs && k < len(c.VPs); k++ {
				add(c.VPs[(i+k*11)%len(c.VPs)], dst)
			}
		}
		flush()
	}

	// Stage 3: traceroute to every intermediate address observed, to
	// reveal MPLS tunnel interiors (Vanaubel et al.), then flag tunnel
	// entry/exit pairs as false links. The observed set goes through
	// the prefix-set engine: canonical iteration IS ascending address
	// order (v4 before v6, same as the sort it replaces), with no
	// intermediate slice to sort.
	if !c.SkipMPLSPass {
		curStage = "mpls"
		obs := prefixset.NewSet()
		for a := range col.Observed {
			obs.AddAddr(a)
		}
		inter := obs.Addrs()
		for i, dst := range inter {
			for k := 0; k < 3 && k < len(c.VPs); k++ {
				add(c.VPs[(i+k*13)%len(c.VPs)], dst)
			}
		}
		flush()
	}
	// The archive is complete: seal and close the spill log before the
	// first replaying pass (findFalsePairs and everything downstream).
	// Durable campaigns mark the manifest complete first, so a crash
	// from here on resumes as a pure replay with no re-collection.
	if rs != nil {
		rs.cursor.close()
	}
	if writer != nil {
		if c.Durable {
			buf, merr := json.Marshal(lastCursor)
			if merr != nil {
				panic(fmt.Errorf("comap: encoding resume cursor: %w", merr))
			}
			if cerr := writer.MarkComplete(col.spill.nPaths, buf); cerr != nil {
				panic(fmt.Errorf("comap: completing spill manifest: %w", cerr))
			}
		}
		if err := writer.Close(); err != nil {
			panic(fmt.Errorf("comap: closing spill log: %w", err))
		}
	}
	// Post-collection passes run on the (now durable) archive; a cancel
	// landing here still aborts promptly, and a durable campaign
	// resumes as a complete-replay.
	if cerr := ctx.Err(); cerr != nil {
		panic(campaignCancelled{cerr})
	}
	if !c.SkipMPLSPass {
		c.findFalsePairs(col, pool)
	}

	// Alias resolution over the rDNS-selected addresses, every observed
	// operator address, and their /30 subnet neighbors (Appendix B.1).
	// Mercator probing runs globally; the IP-ID stage runs per regional
	// network, as the paper does ("all IP addresses routed by each
	// regional network"), which also keeps counter-projection collisions
	// rare.
	if !c.SkipAlias {
		col.AliasTargets = c.aliasTargets(col)
		res := alias.NewResult()
		resolver := &alias.Resolver{
			Net: c.Net, Clock: c.Clock, VP: c.VPs[0],
			Parallelism: c.Parallelism,
			Stats:       &col.Stats,
		}
		resolver.MercatorInto(col.AliasTargets, res)
		for _, part := range c.partitionByRegion(col) {
			resolver.MIDARInto(part, res)
		}
		// All evidence is in; drop the per-target union-find state so a
		// retained collection holds only the multi-member groups.
		res.Compact()
		col.Aliases = res
	}
	col.Quarantined = breaker.QuarantinedVPs()
	return col, nil
}

// partitionByRegion splits the alias targets by regional network: named
// addresses by their rDNS region tag, unnamed addresses by the dominant
// region of the paths they appear in, and the remainder into bounded
// chunks.
func (c *Campaign) partitionByRegion(col *Collection) [][]netip.Addr {
	regionOfAddr := map[netip.Addr]string{}
	for _, a := range col.AliasTargets {
		if name, ok := c.DNS.Name(a); ok {
			if info, ok := hostnames.Parse(name); ok && info.ISP == c.ISP {
				if info.Backbone {
					regionOfAddr[a] = "backbone"
				} else if info.Region != "" {
					regionOfAddr[a] = info.Region
				}
			}
		}
	}
	// Attribute unnamed addresses by path context. The same walk
	// records which backbone addresses co-occur with each region's
	// hops, so scaled topologies can bound the backbone ride-along
	// (below) to the PoPs that actually serve the region.
	votes := map[netip.Addr]map[string]int{}
	bbSeen := map[string]map[netip.Addr]bool{}
	col.EachPath(func(_ int, p Path, _ string) {
		// Dominant region among named hops.
		count := map[string]int{}
		for _, h := range p.Hops {
			if r, ok := regionOfAddr[h]; ok && r != "backbone" {
				count[r]++
			}
		}
		for _, h := range p.Hops {
			if regionOfAddr[h] != "backbone" {
				continue
			}
			for r := range count {
				if bbSeen[r] == nil {
					bbSeen[r] = map[netip.Addr]bool{}
				}
				bbSeen[r][h] = true
			}
		}
		dom, tied := majority(count)
		if dom == "" || tied {
			return
		}
		for _, h := range p.Hops {
			if _, ok := regionOfAddr[h]; ok {
				continue
			}
			if votes[h] == nil {
				votes[h] = map[string]int{}
			}
			votes[h][dom]++
		}
	})
	for a, v := range votes {
		if top, tied := majority(v); !tied && top != "" {
			regionOfAddr[a] = top
		}
	}

	parts := map[string][]netip.Addr{}
	var misc []netip.Addr
	for _, a := range col.AliasTargets {
		if r, ok := regionOfAddr[a]; ok {
			parts[r] = append(parts[r], a)
		} else {
			misc = append(misc, a)
		}
	}
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// bbRideCap bounds the per-region backbone ride-along. Paper-size
	// topologies stay far under it, so every regional partition keeps
	// the full backbone set exactly as before; scaled topologies (where
	// the backbone interface count grows with the region count, and
	// partitions x backbone would make the IP-ID stage quadratic) trim
	// the ride-along to the backbone addresses co-observed on the
	// region's own paths.
	const bbRideCap = 1000
	backbone := parts["backbone"]
	var out [][]netip.Addr
	for _, k := range keys {
		part := parts[k]
		if k != "backbone" {
			// Stale rDNS sometimes hangs a regional name on a backbone
			// router interface; grouping it with the backbone routers
			// is what corrects the name, so the backbone addresses ride
			// along in every regional partition.
			ride := backbone
			if len(backbone) > bbRideCap {
				ride = ride[:0:0]
				for _, a := range backbone {
					if bbSeen[k][a] {
						ride = append(ride, a)
					}
				}
			}
			part = append(append([]netip.Addr{}, part...), ride...)
		}
		out = append(out, part)
	}
	// Bound the unattributed chunk size.
	const chunk = 2000
	for len(misc) > 0 {
		n := chunk
		if n > len(misc) {
			n = len(misc)
		}
		out = append(out, misc[:n])
		misc = misc[n:]
	}
	return out
}

// enumerate24s lists the .1 address of every /24 inside pfx.
func enumerate24s(pfx netip.Prefix) []netip.Addr {
	if !pfx.Addr().Is4() {
		return nil
	}
	if pfx.Bits() > 24 {
		return []netip.Addr{pfx.Addr().Next()}
	}
	n := 1 << (24 - pfx.Bits())
	out := make([]netip.Addr, 0, n)
	b := pfx.Masked().Addr().As4()
	for i := 0; i < n; i++ {
		base := (uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8) + uint32(i)<<8
		out = append(out, netip.AddrFrom4([4]byte{byte(base >> 24), byte(base >> 16), byte(base >> 8), 1}))
	}
	return out
}

// aliasTargets assembles the alias-resolution input set as prefix-set
// algebra instead of per-address map scans:
//
//	targets = scan ∪ ((∪ /30-blocks of observed ∩ announced) ∩ announced)
//
// An observed in-ISP address pulls in its whole /30 (itself plus the
// Appendix B.1 subnet neighbors), clipped back to the announced space
// — the intersection replaces the old per-neighbor inISP linear scan
// over Announced, which at scaled route tables was a measurable
// fraction of the alias stage. Scan-matched addresses join
// unconditionally: interconnect subnets live in the neighbor's space.
// Address enumeration over the aggregated set is ascending with
// overlap collapsed, byte-identical to the sorted map-key order it
// replaces (the golden alias digest pins this).
func (c *Campaign) aliasTargets(col *Collection) []netip.Addr {
	announced := prefixset.NewSet(c.Announced...)
	blocks := prefixset.NewSet()
	for a := range col.Observed {
		if !announced.Contains(a) {
			continue
		}
		if a.Is4() {
			if p, err := a.Prefix(30); err == nil {
				blocks.Add(p)
				continue
			}
		}
		blocks.AddAddr(a)
	}
	targets := blocks.Intersect(announced)
	// Every address whose rDNS matched the operator's regexes belongs in
	// the alias set even when it falls outside the announced blocks.
	for _, a := range col.ScanTargets {
		targets.AddAddr(a)
	}
	return targets.Addrs()
}

// subnet30Neighbors returns the other (up to three) addresses of a's
// /30 in out[:n]; the fixed-size return keeps the per-address call
// allocation-free.
func subnet30Neighbors(a netip.Addr) (out [3]netip.Addr, n int) {
	if !a.Is4() {
		return out, 0
	}
	b := a.As4()
	base := b[3] &^ 3
	for off := byte(0); off < 4; off++ {
		nb := netip.AddrFrom4([4]byte{b[0], b[1], b[2], base | off})
		if nb != a {
			out[n] = nb
			n++
		}
	}
	return out, n
}

// p2pMate returns the interface address expected on the far side of a
// point-to-point link from a: the other usable address of a's /31 or
// /30 (bits as inferred for the operator).
func p2pMate(a netip.Addr, bits int) (netip.Addr, bool) {
	if !a.Is4() {
		return netip.Addr{}, false
	}
	b := a.As4()
	switch bits {
	case 31:
		return netip.AddrFrom4([4]byte{b[0], b[1], b[2], b[3] ^ 1}), true
	case 30:
		switch b[3] & 3 {
		case 1:
			return netip.AddrFrom4([4]byte{b[0], b[1], b[2], b[3] + 1}), true
		case 2:
			return netip.AddrFrom4([4]byte{b[0], b[1], b[2], b[3] - 1}), true
		}
	}
	return netip.Addr{}, false
}

// findFalsePairs applies the Vanaubel test: a pair adjacent in some path
// but separated by intermediate hops in a path destined to the pair's
// second address is an MPLS entry/exit artifact.
//
// Both scans are forward path folds (no random access into the
// archive), so the test runs identically over resident and spilled
// collections: pass one collects the distinct adjacent pairs, pass two
// checks every reached path against the pairs ending at its
// destination. The verdicts are set inserts ORed over paths, so the
// pass-two iteration order (unlike the historical pair-major loop) is
// immaterial.
func (c *Campaign) findFalsePairs(col *Collection, pool *probesched.Pool) {
	// Presize off the collection's own ledger: answered hop rows bound
	// the adjacency count, so the maps never rehash mid-build. Windowed
	// runs cap the hint at a few windows' worth of rows — the full
	// ledger hint over-allocates by the archive/window ratio exactly
	// when the caller asked for bounded memory (distinct pairs plateau
	// long before the row count at campaign scale; growth past the hint
	// just rehashes).
	hint := col.HopRowsAnswered
	if c.TraceWindow > 0 && hint > 8*c.TraceWindow {
		hint = 8 * c.TraceWindow
	}
	// init runs once per reduce shard (and per window), so each shard
	// presizes a fraction; the merged survivor rehashes at most a couple
	// of times instead of once per insert.
	shardHint := hint / 4
	adj := foldPaths(pool, col,
		func() map[[2]netip.Addr]bool { return make(map[[2]netip.Addr]bool, shardHint) },
		func(set map[[2]netip.Addr]bool, _ int, p Path, _ string) map[[2]netip.Addr]bool {
			for i := 1; i < len(p.Hops); i++ {
				if p.Gaps[i] {
					continue
				}
				set[[2]netip.Addr{p.Hops[i-1], p.Hops[i]}] = true
			}
			return set
		},
		func(into, from map[[2]netip.Addr]bool) map[[2]netip.Addr]bool {
			if len(from) > len(into) {
				into, from = from, into
			}
			for k := range from {
				into[k] = true
			}
			return into
		})
	// Invert: for each adjacency (a, b), the candidate first elements a
	// keyed by the pair's second address b — pass two looks up a path's
	// own destination instead of scanning paths per pair.
	pairsBySecond := make(map[netip.Addr][]netip.Addr, len(adj))
	for pair := range adj {
		pairsBySecond[pair[1]] = append(pairsBySecond[pair[1]], pair[0])
	}
	type verdicts struct {
		falsePairs  map[[2]netip.Addr]bool
		directPairs map[[2]netip.Addr]bool
	}
	v := foldPaths(pool, col,
		func() verdicts {
			return verdicts{map[[2]netip.Addr]bool{}, map[[2]netip.Addr]bool{}}
		},
		func(acc verdicts, _ int, p Path, _ string) verdicts {
			if !p.Reached {
				return acc
			}
			b := p.Dst
			cands := pairsBySecond[b]
			if len(cands) == 0 {
				return acc
			}
			// Last occurrences, matching the historical scan exactly.
			bPos := -1
			for i, h := range p.Hops {
				if h == b {
					bPos = i
				}
			}
			for _, a := range cands {
				aPos := -1
				for i, h := range p.Hops {
					if h == a {
						aPos = i
					}
				}
				switch {
				case aPos >= 0 && bPos > aPos+1:
					// Separated by revealed interior hops: tunnel artifact.
					acc.falsePairs[[2]netip.Addr{a, b}] = true
				case aPos >= 0 && bPos == aPos+1 && !p.Gaps[bPos]:
					// Still adjacent when the LSP cannot hide anything:
					// genuine physical link.
					acc.directPairs[[2]netip.Addr{a, b}] = true
				}
			}
			return acc
		},
		func(into, from verdicts) verdicts {
			for k := range from.falsePairs {
				into.falsePairs[k] = true
			}
			for k := range from.directPairs {
				into.directPairs[k] = true
			}
			return into
		})
	col.FalsePairs, col.DirectPairs = v.falsePairs, v.directPairs
}

// Probes returns a rough count of injected packets; exported for the
// bench harness narration.
func (c *Collection) Probes() int {
	n := 0
	c.EachPath(func(_ int, p Path, _ string) {
		n += len(p.Hops)
	})
	return n
}
