package comap

import (
	"math"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/probesched"
	"repro/internal/symtab"
)

// Inference is the Phase 2 output: one inferred graph per regional
// network plus the pruning and mapping accounting.
type Inference struct {
	Regions map[string]*RegionGraph
	Prune   PruneStats
	Map     MappingStats
	P2PBits int
}

// regionOf splits a CO key into its region tag; backbone keys return
// ("", false).
func regionOf(key string) (string, bool) {
	if isBackboneKey(key) {
		return "", false
	}
	i := strings.IndexByte(key, '/')
	if i < 0 {
		return "", false
	}
	return key[:i], true
}

// BuildGraphs runs Phase 2 of the pipeline (§5.2) sequentially: extract
// CO adjacencies, prune noise, identify AggCOs, repair the ring/star
// structure, and infer entry points.
func BuildGraphs(col *Collection, m *Mapping) *Inference {
	return BuildGraphsParallel(col, m, 1)
}

// BuildGraphsParallel is BuildGraphs with the adjacency-record pass and
// the entry-inference path scan sharded across workers (0 selects
// GOMAXPROCS) as shard-accumulate-merge passes: contiguous path shards
// accumulate private IP-adjacency and CO-path maps, merged in shard
// order. The merged maps are identical at any worker count because
// every write is either a set insert or a same-key-same-value
// assignment (an IP adjacency's CO pair depends only on the frozen
// mapping, not on which shard records it), so the output graphs are
// byte-identical to the sequential build.
func BuildGraphsParallel(col *Collection, m *Mapping, workers int) *Inference {
	pool := probesched.New(workers, nil)
	inf := &Inference{
		Regions: map[string]*RegionGraph{},
		Map:     m.Stats,
		P2PBits: m.P2PBits,
	}

	// Per-symbol classification, computed once over the CO-key universe
	// so the sharded passes below never touch a string: the region tag is
	// interned into the mapping's own table (appending beyond nCO, which
	// the fixed loop bound ignores) and backbone-ness is precomputed.
	nCO := m.Syms.Len()
	infos := make([]symInfo, nCO)
	for s := 0; s < nCO; s++ {
		key := m.Syms.Str(symtab.Sym(s))
		if r, ok := regionOf(key); ok {
			infos[s] = symInfo{region: m.Syms.Intern(r), hasRegion: true}
		} else {
			infos[s] = symInfo{backbone: isBackboneKey(key)}
		}
	}

	// Collect IP adjacencies where both addresses carry CO mappings,
	// counting the distinct paths supporting each CO adjacency. Pairs
	// are interned symbols (8 bytes), not strings; the string keys
	// reappear only at the RegionGraph boundary.
	//
	// Support is a running tally, not a path-index set: downstream only
	// ever consumes the count. Within a shard the accumulator sees a
	// pair's observations in nondecreasing path order, so counting pi
	// transitions counts distinct paths; shards (and spill windows)
	// cover ascending disjoint index ranges, so merged counts sum
	// exactly. The per-pair set this replaces was the single largest
	// allocation of the inference half at campaign scale.
	type coPair = [2]symtab.Sym
	type pathTally struct {
		count  int
		lastPi int
	}
	type recordAcc struct {
		ipAdjs  map[[2]netip.Addr]coPair
		coPaths map[coPair]pathTally
	}
	rec := foldPaths(pool, col,
		func() recordAcc {
			return recordAcc{
				ipAdjs:  map[[2]netip.Addr]coPair{},
				coPaths: map[coPair]pathTally{},
			}
		},
		func(acc recordAcc, pi int, p Path, _ string) recordAcc {
			for i := 1; i < len(p.Hops); i++ {
				if p.Gaps[i] {
					continue
				}
				x, y := p.Hops[i-1], p.Hops[i]
				cox, okx := m.COSym[x]
				coy, oky := m.COSym[y]
				if !okx || !oky || cox == coy {
					continue
				}
				pair := coPair{cox, coy}
				acc.ipAdjs[[2]netip.Addr{x, y}] = pair
				if t, ok := acc.coPaths[pair]; !ok || t.lastPi != pi {
					t.count++
					t.lastPi = pi
					acc.coPaths[pair] = t
				}
			}
			return acc
		},
		func(into, from recordAcc) recordAcc {
			for k, v := range from.ipAdjs {
				into.ipAdjs[k] = v
			}
			for pair, t := range from.coPaths {
				it := into.coPaths[pair]
				it.count += t.count
				it.lastPi = t.lastPi
				into.coPaths[pair] = it
			}
			return into
		})
	ipAdjs, coPaths := rec.ipAdjs, rec.coPaths
	inf.Prune.InitialIPAdjs = len(ipAdjs)
	inf.Prune.InitialCOAdjs = len(coPaths)

	// Remove MPLS tunnel entry/exit artifacts (Appendix B.2). A CO
	// adjacency falls when some supporting IP pair was shown to be a
	// tunnel artifact and no supporting IP pair was confirmed as a
	// physical link by the targeted traceroutes.
	anyFalse := map[coPair]bool{}
	anyDirect := map[coPair]bool{}
	for ipPair, pair := range ipAdjs {
		if col.FalsePairs[ipPair] {
			anyFalse[pair] = true
			inf.Prune.MPLSIPAdjs++
			delete(ipAdjs, ipPair)
		} else if col.DirectPairs[ipPair] {
			anyDirect[pair] = true
		}
	}
	support := map[coPair]int{}
	for _, pair := range ipAdjs {
		support[pair]++
	}
	for pair := range coPaths {
		if anyFalse[pair] && !anyDirect[pair] || support[pair] == 0 {
			inf.Prune.MPLSCOAdjs++
			delete(coPaths, pair)
		}
	}

	// Classify and prune: backbone adjacencies feed entry inference;
	// cross-region adjacencies are mostly stale-rDNS artifacts (real
	// inter-region entries are re-added by §5.2.5 with stronger
	// evidence); single-observation adjacencies are traceroute noise.
	for pair, tally := range coPaths {
		ix, iy := infos[pair[0]], infos[pair[1]]
		switch {
		case !ix.hasRegion || !iy.hasRegion:
			inf.Prune.BackboneCOAdjs++
			inf.Prune.BackboneIPAdjs += support[pair]
			delete(coPaths, pair)
		case ix.region != iy.region:
			inf.Prune.CrossRegionCOAdjs++
			inf.Prune.CrossRegionIPAdjs += support[pair]
			delete(coPaths, pair)
		case tally.count < 2:
			inf.Prune.SingleCOAdjs++
			inf.Prune.SingleIPAdjs += support[pair]
			delete(coPaths, pair)
		}
	}

	// Build per-region graphs from the surviving adjacencies, converting
	// the interned pairs back to strings at this boundary.
	for pair, tally := range coPaths {
		region := m.Syms.Str(infos[pair[0]].region)
		g := inf.Regions[region]
		if g == nil {
			g = &RegionGraph{Region: region, COs: map[string]*CONode{}, Edges: map[[2]string]int{}}
			inf.Regions[region] = g
		}
		spair := [2]string{m.Syms.Str(pair[0]), m.Syms.Str(pair[1])}
		g.Edges[spair] = tally.count
		for _, key := range spair {
			if g.COs[key] == nil {
				g.COs[key] = &CONode{Key: key, Tag: key[strings.IndexByte(key, '/')+1:]}
			}
		}
	}
	// Attach mapped addresses to CO nodes.
	for a, key := range m.CO {
		region, ok := regionOf(key)
		if !ok {
			continue
		}
		if g := inf.Regions[region]; g != nil {
			if n := g.COs[key]; n != nil {
				n.Addrs = append(n.Addrs, a)
			}
		}
	}
	// The attach loop above walks a map, so sort each node's address
	// list; consumers index Addrs[0] as the node's representative.
	for _, g := range inf.Regions {
		for _, n := range g.COs {
			sort.Slice(n.Addrs, func(i, j int) bool { return n.Addrs[i].Less(n.Addrs[j]) })
		}
	}

	for _, g := range inf.Regions {
		identifyAggCOs(g)
		removeEdgeEdgeEdges(g)
		identifyAggCOs(g) // re-run on the cleaned graph
		pairAggCOsAndComplete(g)
	}
	inferEntries(pool, col, m, infos, inf)
	return inf
}

// symInfo is the per-CO-symbol classification BuildGraphsParallel
// precomputes: the interned region tag (when the key is region-qualified)
// and whether the key is a backbone key.
type symInfo struct {
	region    symtab.Sym
	hasRegion bool
	backbone  bool
}

// identifyAggCOs classifies COs whose out-degree exceeds the regional
// mean plus one standard deviation (§5.2.2).
func identifyAggCOs(g *RegionGraph) {
	if len(g.COs) == 0 {
		return
	}
	var sum, sumSq float64
	for key := range g.COs {
		d := float64(g.OutDegree(key))
		sum += d
		sumSq += d * d
	}
	n := float64(len(g.COs))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	thresh := mean + std
	for key, node := range g.COs {
		node.IsAgg = float64(g.OutDegree(key)) > thresh && g.OutDegree(key) >= 2
	}
}

// removeEdgeEdgeEdges drops EdgeCO-to-EdgeCO edges (stale-rDNS
// artifacts) unless the source CO aggregates several EdgeCOs that have
// no AggCO connectivity of their own — a small AggCO (§B.3).
func removeEdgeEdgeEdges(g *RegionGraph) {
	agg := map[string]bool{}
	for key, node := range g.COs {
		agg[key] = node.IsAgg
	}
	// hasAggLink reports whether a CO interconnects with any AggCO.
	hasAggLink := func(key string) bool {
		for e := range g.Edges {
			if e[0] == key && agg[e[1]] || e[1] == key && agg[e[0]] {
				return true
			}
		}
		return false
	}
	// Walk the edges in sorted order: each deletion feeds back into the
	// dependents and hasAggLink tests for later edges, so iterating the
	// map directly would let Go's randomized order pick which of two
	// mutually-dependent edge-edge edges survives.
	edges := make([][2]string, 0, len(g.Edges))
	for e := range g.Edges {
		edges = append(edges, e)
	}
	sortPairs(edges)
	for _, e := range edges {
		x, y := e[0], e[1]
		if agg[x] || agg[y] {
			continue
		}
		// Count x's outgoing edges to unaggregated EdgeCOs.
		dependents := 0
		for e2 := range g.Edges {
			if e2[0] != x || agg[e2[1]] {
				continue
			}
			if !hasAggLink(e2[1]) {
				dependents++
			}
		}
		if dependents >= 2 {
			continue // x functions as a small AggCO
		}
		delete(g.Edges, e)
		g.EdgesRemovedEdgeEdge++
	}
	// Drop COs that lost every edge.
	for key := range g.COs {
		if g.OutDegree(key) == 0 && g.InDegree(key) == 0 {
			delete(g.COs, key)
		}
	}
}

// pairAggCOsAndComplete groups AggCOs that serve nearly the same EdgeCO
// sets (they terminate the same fiber rings) and adds the missing
// AggCO-to-EdgeCO edges implied by ring membership (§5.2.4, B.3).
func pairAggCOsAndComplete(g *RegionGraph) {
	// EdgeCO sets per AggCO (only edges toward non-Agg COs).
	down := map[string]map[string]bool{}
	var aggs []string
	for key, node := range g.COs {
		if !node.IsAgg {
			continue
		}
		aggs = append(aggs, key)
		down[key] = map[string]bool{}
		for e := range g.Edges {
			if e[0] == key && g.COs[e[1]] != nil && !g.COs[e[1]].IsAgg {
				down[key][e[1]] = true
			}
		}
	}
	sortStrings(aggs)

	overlap := func(x, y string) int {
		n := 0
		for k := range down[x] {
			if down[y][k] {
				n++
			}
		}
		return n
	}
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" || parent[x] == x {
			parent[x] = x
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	union := func(x, y string) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[ry] = rx
		}
	}
	paired := map[string]bool{}
	for i, x := range aggs {
		for _, y := range aggs[i+1:] {
			nx, ny := len(down[x]), len(down[y])
			if nx == 0 || ny == 0 {
				continue
			}
			ov := overlap(x, y)
			if float64(ov) >= 0.75*float64(nx) && float64(ov) >= 0.5*float64(ny) ||
				float64(ov) >= 0.75*float64(ny) && float64(ov) >= 0.5*float64(nx) {
				union(x, y)
				paired[x], paired[y] = true, true
			}
		}
	}
	// Second chance: 3/4 overlap one-way when neither is paired yet.
	for i, x := range aggs {
		for _, y := range aggs[i+1:] {
			if paired[x] || paired[y] || len(down[x]) == 0 || len(down[y]) == 0 {
				continue
			}
			ov := overlap(x, y)
			if float64(ov) >= 0.75*float64(len(down[x])) || float64(ov) >= 0.75*float64(len(down[y])) {
				union(x, y)
				paired[x], paired[y] = true, true
			}
		}
	}

	groups := map[string][]string{}
	for _, a := range aggs {
		root := find(a)
		groups[root] = append(groups[root], a)
	}
	for _, members := range groups {
		sortStrings(members)
		g.AggGroups = append(g.AggGroups, members)
		if len(members) < 2 {
			continue
		}
		// Ring completion: every member connects to the union of the
		// group's EdgeCOs.
		all := map[string]bool{}
		for _, a := range members {
			for e := range down[a] {
				all[e] = true
			}
		}
		for _, a := range members {
			for e := range all {
				pair := [2]string{a, e}
				if g.Edges[pair] == 0 {
					g.Edges[pair] = 1 // inferred, not observed
					g.EdgesAddedRing++
				}
			}
		}
	}
	// Deterministic group order.
	sortGroups(g.AggGroups)
}

func sortGroups(groups [][]string) {
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j-1][0] > groups[j][0]; j-- {
			groups[j-1], groups[j] = groups[j], groups[j-1]
		}
	}
}

// inferEntries re-adds region entry points with the strong-evidence rule
// of §5.2.5: a triplet (co_i, r1) -> (co_j, r2) -> (co_k, r2) marks co_i
// as a candidate entry into r2, kept only when it demonstrably leads to
// two or more COs of the region.
func inferEntries(pool *probesched.Pool, col *Collection, m *Mapping, infos []symInfo, inf *Inference) {
	type entryKey struct {
		from   symtab.Sym
		region symtab.Sym
	}
	// pc is one CO along a projected path. The region is carried as an
	// interned symbol plus a presence bit: hasRegion stands in for the
	// string code's region != "" tests, so backbone COs (no region) never
	// compare equal to each other through a shared zero value.
	type pc struct {
		co        symtab.Sym
		region    symtab.Sym
		hasRegion bool
		gapped    bool
	}
	// The triplet scan shards the paths across workers; firstCOs and
	// reached are per-(entry, CO) set inserts, so the shard-order union
	// equals the sequential scan. Each shard keeps one reusable cos
	// scratch — per-path append growth was the single largest allocation
	// site in the whole inference after the mapping passes were interned.
	type entryAcc struct {
		firstCOs map[entryKey]map[symtab.Sym]bool
		reached  map[entryKey]map[symtab.Sym]bool
		cos      []pc
	}
	mergeSets := func(into, from map[entryKey]map[symtab.Sym]bool) {
		for k, set := range from {
			if into[k] == nil {
				into[k] = set
				continue
			}
			for co := range set {
				into[k][co] = true
			}
		}
	}
	acc := foldPaths(pool, col,
		func() entryAcc {
			return entryAcc{
				firstCOs: map[entryKey]map[symtab.Sym]bool{},
				reached:  map[entryKey]map[symtab.Sym]bool{},
			}
		},
		func(acc entryAcc, _ int, p Path, _ string) entryAcc {
			// Project the path onto mapped COs, collapsing repeats and
			// respecting gaps.
			cos := acc.cos[:0]
			for i, h := range p.Hops {
				co, ok := m.COSym[h]
				if !ok {
					continue
				}
				if len(cos) > 0 && cos[len(cos)-1].co == co {
					continue
				}
				si := infos[co]
				cos = append(cos, pc{co: co, region: si.region, hasRegion: si.hasRegion, gapped: p.Gaps[i]})
			}
			acc.cos = cos
			for i := 0; i+2 < len(cos); i++ {
				a, b, c := cos[i], cos[i+1], cos[i+2]
				if b.gapped || c.gapped {
					continue
				}
				if !b.hasRegion || !(c.hasRegion && b.region == c.region) ||
					(a.hasRegion && a.region == b.region) {
					continue
				}
				k := entryKey{from: a.co, region: b.region}
				if acc.firstCOs[k] == nil {
					acc.firstCOs[k] = map[symtab.Sym]bool{}
					acc.reached[k] = map[symtab.Sym]bool{}
				}
				acc.firstCOs[k][b.co] = true
				// Every subsequent CO in the same region strengthens the
				// evidence.
				for _, later := range cos[i+1:] {
					if later.hasRegion && later.region == b.region {
						acc.reached[k][later.co] = true
					}
				}
			}
			return acc
		},
		func(into, from entryAcc) entryAcc {
			mergeSets(into.firstCOs, from.firstCOs)
			mergeSets(into.reached, from.reached)
			return into
		})
	firstCOs, reached := acc.firstCOs, acc.reached
	for k, rs := range reached {
		// The paper requires an entry to lead to two or more COs of the
		// region; we additionally require three for inter-region
		// (non-backbone) entries, which stale rDNS fabricates more
		// easily than backbone entries.
		need := 2
		if !infos[k.from].backbone {
			need = 3
		}
		if len(rs) < need {
			continue
		}
		g := inf.Regions[m.Syms.Str(k.region)]
		if g == nil {
			continue
		}
		var first []string
		for co := range firstCOs[k] {
			s := m.Syms.Str(co)
			if g.COs[s] != nil {
				first = append(first, s)
			}
		}
		if len(first) == 0 {
			continue
		}
		sortStrings(first)
		g.Entries = append(g.Entries, Entry{From: m.Syms.Str(k.from), FirstCOs: first})
	}
	for _, g := range inf.Regions {
		sortEntries(g.Entries)
	}
}

func sortEntries(es []Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j-1].From > es[j].From; j-- {
			es[j-1], es[j] = es[j], es[j-1]
		}
	}
}
