package comap

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the region graph in Graphviz DOT form, mirroring the
// paper's Fig. 6 presentation: AggCOs highlighted, entry points drawn
// as external nodes, and inferred (ring-completed) edges dashed.
func (g *RegionGraph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Region)
	b.WriteString("  rankdir=TB;\n  node [shape=ellipse fontsize=10];\n")

	keys := make([]string, 0, len(g.COs))
	for k := range g.COs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		node := g.COs[k]
		attrs := ""
		if node.IsAgg {
			attrs = " style=filled fillcolor=orange"
		}
		fmt.Fprintf(&b, "  %q [label=%q%s];\n", k, node.Tag, attrs)
	}

	type edge struct {
		a, b string
		n    int
	}
	var edges []edge
	for e, n := range g.Edges {
		edges = append(edges, edge{e[0], e[1], n})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		style := ""
		if e.n <= 1 {
			// Count 1 marks ring-completion edges added by §5.2.4
			// rather than observed in traceroute.
			style = " [style=dashed]"
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", e.a, e.b, style)
	}

	for _, entry := range g.Entries {
		fmt.Fprintf(&b, "  %q [shape=box style=filled fillcolor=lightgrey];\n", entry.From)
		for _, co := range entry.FirstCOs {
			fmt.Fprintf(&b, "  %q -> %q [color=grey];\n", entry.From, co)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
