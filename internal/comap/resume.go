// Checkpoint/resume for durable campaigns. A durable campaign
// checkpoints a cursor into its spill log's manifest at every flush
// boundary; after a crash, the campaign re-runs its deterministic job
// generator from the top, and every flush whose checkpoint survived is
// *skipped* instead of probed — the trace bytes are already durable, so
// the flush restores the cursor (clock, counters, breaker) and streams
// the corresponding log windows through the simulator's IP-ID warm-up
// (netsim.WarmReply) so subsequent live probes observe exactly the
// counter state the crashed process left behind. The first flush with
// no surviving checkpoint probes live, and everything downstream is
// bit-identical to an uninterrupted run: the resume grid in
// internal/probesched pins the recovered digests against the golden
// constants.
package comap

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/probesched"
	"repro/internal/traceroute"
)

// fingerprint identifies the campaign configuration a durable spill
// log belongs to. Resume refuses a log whose fingerprint differs —
// replaying traces measured under a different seed, fault plan, or
// probe schedule would silently corrupt the collection. Parallelism is
// deliberately excluded: collections are worker-count invariant, so a
// campaign may resume at a different worker count.
func (c *Campaign) fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "comap-campaign/v1\n")
	fmt.Fprintf(h, "isp=%s seed=%d window=%d budget=%d sweepvps=%d targetvps=%d\n",
		c.ISP, c.Seed, c.TraceWindow, c.MaxTraces, c.SweepVPs, c.TargetVPs)
	fmt.Fprintf(h, "skip=%t,%t,%t\n", c.SkipDirectTargeting, c.SkipMPLSPass, c.SkipAlias)
	fmt.Fprintf(h, "resilience=%+v\n", c.Resilience)
	fmt.Fprintf(h, "epoch=%d\n", c.Clock.Now().UnixNano())
	fmt.Fprintf(h, "faults=%+v\n", c.Net.Faults())
	for _, vp := range c.VPs {
		fmt.Fprintf(h, "vp=%s\n", vp)
	}
	for _, p := range c.Announced {
		fmt.Fprintf(h, "announced=%s\n", p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// spillName is the campaign's segment-log file name. Per-ISP names let
// several campaigns share one caller-provided SpillDir without
// clobbering each other's durable state. The ".seg" suffix is load-
// bearing: the fault-injection filesystem (internal/segfault) keys its
// log-operation counters on it.
func (c *Campaign) spillName() string {
	if c.ISP == "" {
		return "traces.seg"
	}
	return "traces-" + c.ISP + ".seg"
}

// resumeCursor is the JSON checkpoint state a durable campaign writes
// into the manifest at every flush boundary: everything the flush loop
// mutates that cannot be reconstructed from the spill log alone. Trace
// bytes and observed hops replay from the log; the virtual clock, the
// probe ledgers (dropped traces leave no log entry), and the breaker
// restore from here.
type resumeCursor struct {
	// Stage and Flush locate the checkpoint in the generator's
	// deterministic schedule: Flush is the 1-based count of completed
	// flushes. Resume regeneration asserts both — a mismatch means the
	// generator no longer reproduces the original schedule, and the
	// campaign must not trust the log.
	Stage string `json:"stage"`
	Flush int    `json:"flush"`
	// Submitted counts traceroute jobs handed to the scheduler (the
	// MaxTraces budget cursor).
	Submitted int `json:"submitted"`
	// ClockNS is the virtual clock reading after the flush, restored
	// via AdvanceTo so time-windowed faults replay identically.
	ClockNS int64 `json:"clock_ns"`
	// Whole-trace and hop-row ledgers (see Collection).
	TracesRun       int `json:"traces_run"`
	EmptyTraces     int `json:"empty_traces"`
	TruncatedTraces int `json:"truncated_traces"`
	HopRowsProbed   int `json:"hop_rows_probed"`
	HopRowsAnswered int `json:"hop_rows_answered"`
	// Stats is the campaign-wide probe-outcome ledger.
	Stats probesched.ProbeStats `json:"stats"`
	// Paths is the durable path count, cross-checked against the
	// manifest checkpoint's own count.
	Paths int `json:"paths"`
	// Breaker snapshots the circuit breaker: empty traces bump its dead
	// counts but are never spilled, so it cannot be replayed.
	Breaker probesched.BreakerState `json:"breaker"`
}

// logCursor streams the recovered prefix of a durable spill log in
// window order during resume regeneration. Skipped flushes consume it
// strictly forward (checkpoint path counts are ascending), so one pass
// with O(window) memory covers every skip.
type logCursor struct {
	path  string
	r     *traceroute.SegmentReader
	seg   traceroute.Segment
	paths int
}

// advanceTo decodes windows until exactly target paths have been
// visited. Checkpoints sit on window boundaries, so a window that
// would overshoot the target means the regeneration diverged from the
// log — a programming error, not an input condition; it panics.
func (lc *logCursor) advanceTo(target int, visit func(tv traceroute.TraceView, stage string)) {
	if lc.paths >= target {
		if lc.paths != target {
			panic(fmt.Errorf("comap: resume checkpoint at %d paths behind log cursor %d: regeneration diverged", target, lc.paths))
		}
		return
	}
	if lc.r == nil {
		r, err := traceroute.OpenSegmentLog(lc.path)
		if err != nil {
			panic(fmt.Errorf("comap: replaying recovered spill log: %w", err))
		}
		lc.r = r
	}
	for lc.paths < target {
		ok, err := lc.r.Next(&lc.seg)
		if err != nil {
			panic(fmt.Errorf("comap: replaying recovered spill log: %w", err))
		}
		if !ok {
			panic(fmt.Errorf("comap: recovered spill log ends at %d paths, checkpoint expects %d", lc.paths, target))
		}
		for i := 0; i < lc.seg.NumTraces(); i++ {
			visit(lc.seg.View(i), lc.seg.Stage)
			lc.paths++
		}
	}
	if lc.paths != target {
		panic(fmt.Errorf("comap: recovered spill window overshoots checkpoint (%d paths, expected %d): regeneration diverged", lc.paths, target))
	}
}

// close releases the cursor's reader; idempotent. The skip phase is a
// strict prefix of the flush schedule, so the first live flush closes
// the cursor before appending to the log.
func (lc *logCursor) close() {
	if lc.r != nil {
		lc.r.Close()
		lc.r = nil
	}
}

// resumeState is the regeneration context of a resumed campaign: the
// surviving checkpoints (consumed by flush ordinal) and the log cursor
// streaming the recovered windows.
type resumeState struct {
	checkpoints []traceroute.Checkpoint
	cursor      logCursor
}

// campaignCancelled carries a context-cancellation out of the flush
// loop; RunContext recovers it into an ordinary error return.
type campaignCancelled struct{ err error }
