package comap

import (
	"encoding/json"
	"io"
	"net/netip"
	"sort"
)

// ReportSchemaVersion identifies the wire schema of Report. Version 1
// was the implicit, unversioned schema the one-shot cmds printed before
// the resident service landed; version 2 made the version explicit and
// added generated_seed so a long-lived artifact names the world it was
// measured from. Renaming, removing, or retyping any serialized field
// requires bumping this constant — TestReportSchemaStable pins the
// field set for the current version and fails otherwise.
const ReportSchemaVersion = 2

// Report is the JSON-serializable form of an inference result, for
// downstream tooling (GIS overlays, resilience dashboards, diffing
// runs) and the unit the resident service (cmd/regiond) versions,
// caches, and serves.
type Report struct {
	// SchemaVersion is ReportSchemaVersion as of serialization, so a
	// consumer holding an archived artifact can tell which schema it
	// speaks before decoding the rest.
	SchemaVersion int `json:"schema_version"`
	// GeneratedSeed is the scenario seed the measured topology was
	// generated from (zero when the campaign was built without one).
	GeneratedSeed int64          `json:"generated_seed"`
	ISP           string         `json:"isp"`
	P2PBits       int            `json:"p2p_bits"`
	Mapping       MappingStats   `json:"mapping"`
	Pruning       PruneStats     `json:"pruning"`
	Regions       []RegionReport `json:"regions"`
}

// RegionReport serializes one region graph.
type RegionReport struct {
	Name      string       `json:"name"`
	Type      string       `json:"type"`
	COs       []COReport   `json:"cos"`
	Edges     []EdgeReport `json:"edges"`
	AggGroups [][]string   `json:"agg_groups,omitempty"`
	Entries   []Entry      `json:"entries,omitempty"`
}

// COReport serializes one central office.
type COReport struct {
	Key   string       `json:"key"`
	Tag   string       `json:"tag"`
	IsAgg bool         `json:"is_agg"`
	Addrs []netip.Addr `json:"addrs,omitempty"`
}

// EdgeReport serializes one CO adjacency with its observation count.
type EdgeReport struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Count int    `json:"count"`
}

// BuildReport assembles the serializable form of a pipeline result.
func (r *Result) BuildReport(isp string) Report {
	rep := Report{
		SchemaVersion: ReportSchemaVersion,
		GeneratedSeed: r.Seed,
		ISP:           isp,
		P2PBits:       r.Inference.P2PBits,
		Mapping:       r.Mapping.Stats,
		Pruning:       r.Inference.Prune,
	}
	names := make([]string, 0, len(r.Inference.Regions))
	for n := range r.Inference.Regions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := r.Inference.Regions[n]
		rr := RegionReport{
			Name:      n,
			Type:      g.Classify().String(),
			AggGroups: g.AggGroups,
			Entries:   g.Entries,
		}
		keys := make([]string, 0, len(g.COs))
		for k := range g.COs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			node := g.COs[k]
			addrs := append([]netip.Addr(nil), node.Addrs...)
			sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
			rr.COs = append(rr.COs, COReport{Key: k, Tag: node.Tag, IsAgg: node.IsAgg, Addrs: addrs})
		}
		var edges []EdgeReport
		for e, count := range g.Edges {
			edges = append(edges, EdgeReport{From: e[0], To: e[1], Count: count})
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		rr.Edges = edges
		rep.Regions = append(rep.Regions, rr)
	}
	return rep
}

// WriteJSON streams the report as indented JSON.
func (r *Result) WriteJSON(w io.Writer, isp string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.BuildReport(isp))
}
