package comap

// Unit tests for the Phase 2 graph algorithms over hand-built graphs,
// complementing the end-to-end pipeline tests in comap_test.go.

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// buildGraph constructs a RegionGraph from edge pairs.
func buildGraph(region string, edges [][2]string) *RegionGraph {
	g := &RegionGraph{Region: region, COs: map[string]*CONode{}, Edges: map[[2]string]int{}}
	for _, e := range edges {
		g.Edges[e] = 2
		for _, key := range e {
			if g.COs[key] == nil {
				g.COs[key] = &CONode{Key: key, Tag: key}
			}
		}
	}
	return g
}

// star builds agg -> e1..eN edges.
func starEdges(agg string, n int) [][2]string {
	var out [][2]string
	for i := 0; i < n; i++ {
		out = append(out, [2]string{agg, fmt.Sprintf("%s-e%02d", agg, i)})
	}
	return out
}

func TestIdentifyAggCOsStar(t *testing.T) {
	g := buildGraph("r", starEdges("agg", 12))
	identifyAggCOs(g)
	if !g.COs["agg"].IsAgg {
		t.Error("hub not classified as AggCO")
	}
	for key, node := range g.COs {
		if key != "agg" && node.IsAgg {
			t.Errorf("leaf %s classified as AggCO", key)
		}
	}
}

func TestIdentifyAggCOsRequiresDegreeTwo(t *testing.T) {
	// A 2-CO graph: out-degree 1 must never be an AggCO even when it
	// exceeds mean+stddev.
	g := buildGraph("r", [][2]string{{"a", "b"}})
	identifyAggCOs(g)
	if g.COs["a"].IsAgg {
		t.Error("degree-1 CO classified as AggCO")
	}
}

func TestRemoveEdgeEdgeEdges(t *testing.T) {
	edges := starEdges("agg", 10)
	// A stale-rDNS artifact: two leaves appear connected.
	edges = append(edges, [2]string{"agg-e00", "agg-e01"})
	g := buildGraph("r", edges)
	identifyAggCOs(g)
	removeEdgeEdgeEdges(g)
	if _, ok := g.Edges[[2]string{"agg-e00", "agg-e01"}]; ok {
		t.Error("edge-to-edge artifact survived")
	}
	if g.EdgesRemovedEdgeEdge != 1 {
		t.Errorf("removed = %d, want 1", g.EdgesRemovedEdgeEdge)
	}
	// Legitimate edges intact.
	if len(g.Edges) != 10 {
		t.Errorf("edges = %d, want 10", len(g.Edges))
	}
}

func TestSmallAggCOException(t *testing.T) {
	// x aggregates two EdgeCOs that have no AggCO connectivity of their
	// own: B.3 keeps those edges (x functions as a small AggCO).
	edges := starEdges("agg", 10)
	edges = append(edges,
		[2]string{"agg", "x"},
		[2]string{"x", "orphan1"},
		[2]string{"x", "orphan2"},
	)
	g := buildGraph("r", edges)
	identifyAggCOs(g)
	removeEdgeEdgeEdges(g)
	if _, ok := g.Edges[[2]string{"x", "orphan1"}]; !ok {
		t.Error("small-AggCO edge x->orphan1 pruned")
	}
	if _, ok := g.Edges[[2]string{"x", "orphan2"}]; !ok {
		t.Error("small-AggCO edge x->orphan2 pruned")
	}
}

func TestPairAggCOsRingCompletion(t *testing.T) {
	// Two AggCOs share 8 of 10 EdgeCOs; pairing should add the missing
	// edges so both serve the union.
	var edges [][2]string
	for i := 0; i < 10; i++ {
		e := fmt.Sprintf("e%02d", i)
		edges = append(edges, [2]string{"aggA", e})
		if i >= 2 { // aggB misses e00 and e01
			edges = append(edges, [2]string{"aggB", e})
		}
	}
	g := buildGraph("r", edges)
	identifyAggCOs(g)
	if !g.COs["aggA"].IsAgg || !g.COs["aggB"].IsAgg {
		t.Fatal("agg pair not classified")
	}
	pairAggCOsAndComplete(g)
	foundPair := false
	for _, grp := range g.AggGroups {
		if len(grp) == 2 {
			foundPair = true
		}
	}
	if !foundPair {
		t.Fatalf("agg pair not grouped: %v", g.AggGroups)
	}
	for _, e := range []string{"e00", "e01"} {
		if _, ok := g.Edges[[2]string{"aggB", e}]; !ok {
			t.Errorf("ring completion did not add aggB->%s", e)
		}
	}
	if g.EdgesAddedRing != 2 {
		t.Errorf("added = %d, want 2", g.EdgesAddedRing)
	}
}

func TestPairAggCOsRejectsDisjoint(t *testing.T) {
	// Two AggCOs with disjoint EdgeCO sets must not pair.
	var edges [][2]string
	for i := 0; i < 8; i++ {
		edges = append(edges, [2]string{"aggA", fmt.Sprintf("a%02d", i)})
		edges = append(edges, [2]string{"aggB", fmt.Sprintf("b%02d", i)})
	}
	g := buildGraph("r", edges)
	identifyAggCOs(g)
	pairAggCOsAndComplete(g)
	for _, grp := range g.AggGroups {
		if len(grp) > 1 {
			t.Fatalf("disjoint AggCOs grouped: %v", grp)
		}
	}
	if g.EdgesAddedRing != 0 {
		t.Errorf("ring completion added %d edges to disjoint stars", g.EdgesAddedRing)
	}
}

func TestClassify(t *testing.T) {
	single := buildGraph("r", starEdges("agg", 8))
	identifyAggCOs(single)
	if got := single.Classify(); got != AggSingle {
		t.Errorf("single star = %v", got)
	}

	// Dual: two AggCOs over the same edges, no agg-agg edge.
	var dualEdges [][2]string
	for i := 0; i < 8; i++ {
		e := fmt.Sprintf("e%02d", i)
		dualEdges = append(dualEdges, [2]string{"aggA", e}, [2]string{"aggB", e})
	}
	dual := buildGraph("r", dualEdges)
	identifyAggCOs(dual)
	if got := dual.Classify(); got != AggTwo {
		t.Errorf("dual star = %v", got)
	}

	// Multi: top pair aggregates a second tier.
	multiEdges := append([][2]string{}, dualEdges...)
	multiEdges = append(multiEdges, [2]string{"top", "aggA"}, [2]string{"top", "aggB"})
	for i := 0; i < 6; i++ {
		multiEdges = append(multiEdges, [2]string{"top", fmt.Sprintf("t%02d", i)})
	}
	multi := buildGraph("r", multiEdges)
	identifyAggCOs(multi)
	if got := multi.Classify(); got != AggMulti {
		t.Errorf("multi-level = %v", got)
	}
}

func TestDegreesAndRoleAccessors(t *testing.T) {
	g := buildGraph("r", starEdges("agg", 5))
	identifyAggCOs(g)
	if got := g.OutDegree("agg"); got != 5 {
		t.Errorf("OutDegree = %d", got)
	}
	if got := g.InDegree("agg-e03"); got != 1 {
		t.Errorf("InDegree = %d", got)
	}
	if len(g.AggCOs()) != 1 || len(g.EdgeCOs()) != 5 {
		t.Errorf("role accessors: aggs=%d edges=%d", len(g.AggCOs()), len(g.EdgeCOs()))
	}
	ups := g.UpstreamCount()
	for _, e := range g.EdgeCOs() {
		if ups[e] != 1 {
			t.Errorf("upstream count for %s = %d", e, ups[e])
		}
	}
}

func TestMajority(t *testing.T) {
	top, tied := majority(map[string]int{"a": 3, "b": 1})
	if top != "a" || tied {
		t.Errorf("majority = %q tied=%v", top, tied)
	}
	_, tied = majority(map[string]int{"a": 2, "b": 2})
	if !tied {
		t.Error("tie not detected")
	}
	top, tied = majority(map[string]int{})
	if top != "" || tied {
		t.Errorf("empty majority = %q tied=%v", top, tied)
	}
}

func TestRegionOf(t *testing.T) {
	if r, ok := regionOf("bverton/troutdale.or"); !ok || r != "bverton" {
		t.Errorf("regionOf = %q %v", r, ok)
	}
	if _, ok := regionOf("bb:sunnyvale.ca"); ok {
		t.Error("backbone key treated as regional")
	}
	if _, ok := regionOf("noslash"); ok {
		t.Error("malformed key treated as regional")
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildGraph("r", starEdges("agg", 3))
	identifyAggCOs(g)
	g.Edges[[2]string{"agg", "ring-added"}] = 1 // inferred edge
	g.COs["ring-added"] = &CONode{Key: "ring-added", Tag: "ring-added"}
	g.Entries = []Entry{{From: "bb:x", FirstCOs: []string{"agg"}}}
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "r"`,
		`fillcolor=orange`,   // the AggCO
		`style=dashed`,       // the inferred edge
		`"bb:x" -> "agg"`,    // the entry
		`"agg" -> "agg-e00"`, // an observed edge
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var sb2 strings.Builder
	if err := g.WriteDOT(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("DOT output not deterministic")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	g := buildGraph("r", starEdges("agg", 3))
	identifyAggCOs(g)
	g.Entries = []Entry{{From: "bb:x", FirstCOs: []string{"agg"}}}
	res := &Result{
		Collection: &Collection{},
		Mapping:    &Mapping{Stats: MappingStats{Initial: 10, Final: 12}, P2PBits: 30},
		Inference:  &Inference{Regions: map[string]*RegionGraph{"r": g}, P2PBits: 30},
	}
	var sb strings.Builder
	if err := res.WriteJSON(&sb, "testisp"); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.ISP != "testisp" || back.P2PBits != 30 {
		t.Errorf("header = %+v", back)
	}
	if len(back.Regions) != 1 || back.Regions[0].Name != "r" {
		t.Fatalf("regions = %+v", back.Regions)
	}
	rr := back.Regions[0]
	if rr.Type != "single" || len(rr.COs) != 4 || len(rr.Edges) != 3 || len(rr.Entries) != 1 {
		t.Errorf("region report = %+v", rr)
	}
	// Deterministic serialization.
	var sb2 strings.Builder
	if err := res.WriteJSON(&sb2, "testisp"); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("JSON not deterministic")
	}
}

func TestBuildingRedundancyUnit(t *testing.T) {
	g := buildGraph("socal", [][2]string{
		{"lsancaaa", "sndgcaxk"},
		{"lsancabb", "sndgcaxk"},
		{"lsancaaa", "anhmcaaa"},
		{"lsancabb", "anhmcaaa"},
	})
	g.COs["lsancaaa"].IsAgg = true
	g.COs["lsancabb"].IsAgg = true
	// A non-CLLI tag must be ignored.
	g.COs["oddtag"] = &CONode{Key: "oddtag", Tag: "troutdale.or"}
	stats := BuildingRedundancy(g)
	if stats.Cities != 3 {
		t.Errorf("cities = %d, want 3 (lsanca, sndgca, anhmca)", stats.Cities)
	}
	if stats.MultiBuilding != 1 {
		t.Errorf("multi-building cities = %d, want 1 (lsanca)", stats.MultiBuilding)
	}
	if stats.RedundantAggCities != 1 {
		t.Errorf("redundant agg cities = %d, want 1", stats.RedundantAggCities)
	}
	if got := stats.Buildings["lsanca"]; len(got) != 2 {
		t.Errorf("lsanca buildings = %v", got)
	}
}

func TestDiffReports(t *testing.T) {
	mkReport := func(mutate func(*RegionGraph)) Report {
		g := buildGraph("r", starEdges("agg", 4))
		identifyAggCOs(g)
		if mutate != nil {
			mutate(g)
		}
		res := &Result{
			Mapping:   &Mapping{Stats: MappingStats{}, P2PBits: 30},
			Inference: &Inference{Regions: map[string]*RegionGraph{"r": g}, P2PBits: 30},
		}
		return res.BuildReport("x")
	}
	base := mkReport(nil)
	if d := DiffReports(base, base); !d.Empty() {
		t.Errorf("self-diff not empty: %+v", d)
	}
	changed := mkReport(func(g *RegionGraph) {
		delete(g.Edges, [2]string{"agg", "agg-e00"})
		delete(g.COs, "agg-e00")
		g.COs["newco"] = &CONode{Key: "newco", Tag: "newco"}
		g.Edges[[2]string{"agg", "newco"}] = 3
	})
	d := DiffReports(base, changed)
	if d.Empty() {
		t.Fatal("diff of modified graph is empty")
	}
	rd := d.Regions["r"]
	if len(rd.COsAdded) != 1 || rd.COsAdded[0] != "newco" {
		t.Errorf("COs added = %v", rd.COsAdded)
	}
	if len(rd.COsRemoved) != 1 || rd.COsRemoved[0] != "agg-e00" {
		t.Errorf("COs removed = %v", rd.COsRemoved)
	}
	if len(rd.EdgesAdded) != 1 || len(rd.EdgesRemoved) != 1 {
		t.Errorf("edges added=%v removed=%v", rd.EdgesAdded, rd.EdgesRemoved)
	}
	// Region appearing/disappearing.
	extra := mkReport(nil)
	extra.Regions = append(extra.Regions, RegionReport{Name: "zz", Type: "single"})
	d2 := DiffReports(base, extra)
	if len(d2.RegionsAdded) != 1 || d2.RegionsAdded[0] != "zz" {
		t.Errorf("regions added = %v", d2.RegionsAdded)
	}
	d3 := DiffReports(extra, base)
	if len(d3.RegionsRemoved) != 1 {
		t.Errorf("regions removed = %v", d3.RegionsRemoved)
	}
}
