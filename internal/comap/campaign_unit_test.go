package comap

// Unit tests for the collection-stage heuristics over synthetic data.

import (
	"net/netip"
	"testing"

	"repro/internal/dnsdb"
	"repro/internal/probesched"
)

func TestFindFalsePairs(t *testing.T) {
	c := &Campaign{}
	col := &Collection{
		Observed:    map[netip.Addr]bool{},
		FalsePairs:  map[[2]netip.Addr]bool{},
		DirectPairs: map[[2]netip.Addr]bool{},
		Paths: []Path{
			// Original trace: (ingress a) -> (egress b) appear adjacent.
			{Dst: a("203.0.113.1"), Reached: true,
				Hops: []netip.Addr{a("10.0.0.1"), a("10.0.0.2")},
				Gaps: []bool{false, false}},
			// DPR trace to b: the interior hop 10.0.0.9 appears between
			// them.
			{Dst: a("10.0.0.2"), Reached: true,
				Hops: []netip.Addr{a("10.0.0.1"), a("10.0.0.9"), a("10.0.0.2")},
				Gaps: []bool{false, false, false}},
			// A genuine adjacency confirmed by a trace addressed to its
			// second hop.
			{Dst: a("203.0.113.2"), Reached: true,
				Hops: []netip.Addr{a("10.0.1.1"), a("10.0.1.2")},
				Gaps: []bool{false, false}},
			{Dst: a("10.0.1.2"), Reached: true,
				Hops: []netip.Addr{a("10.0.1.1"), a("10.0.1.2")},
				Gaps: []bool{false, false}},
		},
	}
	c.findFalsePairs(col, probesched.New(1, nil))
	if !col.FalsePairs[[2]netip.Addr{a("10.0.0.1"), a("10.0.0.2")}] {
		t.Error("tunnel entry/exit pair not flagged false")
	}
	if col.FalsePairs[[2]netip.Addr{a("10.0.1.1"), a("10.0.1.2")}] {
		t.Error("genuine adjacency flagged false")
	}
	if !col.DirectPairs[[2]netip.Addr{a("10.0.1.1"), a("10.0.1.2")}] {
		t.Error("genuine adjacency not confirmed direct")
	}
}

func TestPartitionByRegion(t *testing.T) {
	dns := dnsdb.New()
	name := func(addr, co, region string) {
		n := "ae-1-ar01." + co + ".ca." + region + ".comcast.net"
		dns.SetLive(a(addr), n)
		dns.SetSnapshot(a(addr), n)
	}
	name("10.0.0.1", "aaa", "west")
	name("10.0.0.2", "bbb", "west")
	name("10.0.1.1", "ccc", "east")
	bb := "be-100-cr01.hub.ca.ibone.comcast.net"
	dns.SetLive(a("10.0.9.1"), bb)
	dns.SetSnapshot(a("10.0.9.1"), bb)

	c := &Campaign{DNS: dns, ISP: "comcast"}
	col := &Collection{
		AliasTargets: []netip.Addr{
			a("10.0.0.1"), a("10.0.0.2"), a("10.0.1.1"), a("10.0.9.1"),
			a("10.0.0.9"), // unnamed, appears on a west path below
			a("10.0.7.7"), // unnamed, unattributed
		},
		Paths: []Path{
			{Hops: []netip.Addr{a("10.0.0.1"), a("10.0.0.9"), a("10.0.0.2")},
				Gaps: []bool{false, false, false}},
		},
	}
	parts := c.partitionByRegion(col)
	if len(parts) < 3 {
		t.Fatalf("partitions = %d", len(parts))
	}
	find := func(addr netip.Addr) []int {
		var idx []int
		for i, p := range parts {
			for _, x := range p {
				if x == addr {
					idx = append(idx, i)
				}
			}
		}
		return idx
	}
	// Same-region named addresses and the path-attributed unnamed one
	// share a partition.
	w1 := find(a("10.0.0.1"))
	w9 := find(a("10.0.0.9"))
	if len(w1) != 1 || len(w9) != 1 || w1[0] != w9[0] {
		t.Errorf("west members split: %v vs %v", w1, w9)
	}
	// The east address is elsewhere.
	e := find(a("10.0.1.1"))
	if len(e) != 1 || e[0] == w1[0] {
		t.Errorf("east partition = %v (west=%v)", e, w1)
	}
	// The backbone address joins every regional partition (stale-name
	// correction requires it to meet its router-mates anywhere).
	bbIdx := find(a("10.0.9.1"))
	if len(bbIdx) < 3 {
		t.Errorf("backbone address appears in %d partitions, want all regionals + its own", len(bbIdx))
	}
	// The unattributed address lands in a bounded misc chunk.
	if misc := find(a("10.0.7.7")); len(misc) != 1 {
		t.Errorf("misc address partitions = %v", misc)
	}
}
