package comap

// Unit tests for the Phase 1 mapping helpers.

import (
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/dnsdb"
	"repro/internal/probesched"
	"repro/internal/symtab"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestP2PMate(t *testing.T) {
	tests := []struct {
		in   string
		bits int
		want string
		ok   bool
	}{
		{"10.0.0.1", 30, "10.0.0.2", true},
		{"10.0.0.2", 30, "10.0.0.1", true},
		{"10.0.0.0", 30, "", false}, // network address
		{"10.0.0.3", 30, "", false}, // broadcast address
		{"10.0.0.4", 31, "10.0.0.5", true},
		{"10.0.0.5", 31, "10.0.0.4", true},
		{"10.0.0.255", 31, "10.0.0.254", true},
	}
	for _, tt := range tests {
		got, ok := p2pMate(a(tt.in), tt.bits)
		if ok != tt.ok {
			t.Errorf("p2pMate(%s,/%d) ok=%v want %v", tt.in, tt.bits, ok, tt.ok)
			continue
		}
		if ok && got != a(tt.want) {
			t.Errorf("p2pMate(%s,/%d) = %v want %v", tt.in, tt.bits, got, tt.want)
		}
	}
	if _, ok := p2pMate(netip.MustParseAddr("2001:db8::1"), 31); ok {
		t.Error("IPv6 address accepted")
	}
}

func TestP2PMateInvolution(t *testing.T) {
	f := func(b4 [4]byte, pick bool) bool {
		addr := netip.AddrFrom4(b4)
		bits := 30
		if pick {
			bits = 31
		}
		m, ok := p2pMate(addr, bits)
		if !ok {
			return true
		}
		back, ok2 := p2pMate(m, bits)
		return ok2 && back == addr // mate of mate is self
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubnet30Neighbors(t *testing.T) {
	nbrs, n := subnet30Neighbors(a("10.0.0.5"))
	if n != 3 {
		t.Fatalf("neighbors = %v (n=%d)", nbrs, n)
	}
	want := map[string]bool{"10.0.0.4": true, "10.0.0.6": true, "10.0.0.7": true}
	for _, x := range nbrs[:n] {
		if !want[x.String()] {
			t.Errorf("unexpected neighbor %v", x)
		}
	}
	if _, n := subnet30Neighbors(a("2001:db8::1")); n != 0 {
		t.Error("IPv6 produced neighbors")
	}
}

func TestEnumerate24s(t *testing.T) {
	got := enumerate24s(netip.MustParsePrefix("10.1.0.0/22"))
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	want := []string{"10.1.0.1", "10.1.1.1", "10.1.2.1", "10.1.3.1"}
	for i, w := range want {
		if got[i] != a(w) {
			t.Errorf("[%d] = %v, want %v", i, got[i], w)
		}
	}
	// A prefix smaller than /24 yields one probe inside it.
	small := enumerate24s(netip.MustParsePrefix("10.9.9.128/25"))
	if len(small) != 1 || !netip.MustParsePrefix("10.9.9.128/25").Contains(small[0]) {
		t.Errorf("small prefix probes = %v", small)
	}
	if enumerate24s(netip.MustParsePrefix("2001:db8::/32")) != nil {
		t.Error("IPv6 prefix enumerated")
	}
}

// TestInitialMappingPriorities verifies dig-over-snapshot priority and
// ISP filtering in BuildMapping's first stage.
func TestInitialMappingPriorities(t *testing.T) {
	dns := dnsdb.New()
	// Address with a fresh live name and a stale snapshot name.
	dns.SetLive(a("10.0.0.1"), "ae-1-ar01.fresh.or.bverton.comcast.net")
	dns.SetSnapshot(a("10.0.0.1"), "ae-1-ar01.stale.or.bverton.comcast.net")
	// Address named for another operator: not mapped for comcast.
	dns.SetSnapshot(a("10.0.0.2"), "agg1.sndgcaxk01m.socal.rr.com")
	// Subscriber name: never mapped.
	dns.SetSnapshot(a("10.0.0.3"), "c-10-0-0-3.hsd1.us.comcast.net")

	col := &Collection{
		Observed: map[netip.Addr]bool{
			a("10.0.0.1"): true, a("10.0.0.2"): true, a("10.0.0.3"): true,
		},
		FalsePairs:  map[[2]netip.Addr]bool{},
		DirectPairs: map[[2]netip.Addr]bool{},
	}
	m := BuildMapping(col, dns, "comcast")
	if got := m.CO[a("10.0.0.1")]; got != "bverton/fresh.or" {
		t.Errorf("priority mapping = %q, want the live name's CO", got)
	}
	if _, ok := m.CO[a("10.0.0.2")]; ok {
		t.Error("foreign-operator name mapped")
	}
	if _, ok := m.CO[a("10.0.0.3")]; ok {
		t.Error("subscriber name mapped")
	}
	if m.Stats.Initial != 1 || m.Stats.Final != 1 {
		t.Errorf("stats = %+v", m.Stats)
	}
}

// TestSubnetRefinementVote rebuilds the Fig. 19 example: two paths show
// x followed by y and z; the mates y' and z' map to CO2, outvoting x's
// initial CO1 mapping.
func TestSubnetRefinementVote(t *testing.T) {
	dns := dnsdb.New()
	name := func(addr, co string) {
		dns.SetLive(a(addr), "ae-1-ar01."+co+".ca.socalx.comcast.net")
		dns.SetSnapshot(a(addr), "ae-1-ar01."+co+".ca.socalx.comcast.net")
	}
	name("10.0.0.1", "coone") // x: stale mapping says CO1
	// y = 10.0.0.5 (mate 10.0.0.6 -> CO2), z = 10.0.0.9 (mate .10 -> CO2)
	name("10.0.0.6", "cotwo")
	name("10.0.0.10", "cotwo")
	name("10.0.0.5", "cothree") // y itself: the next router
	name("10.0.0.9", "cothree")

	col := &Collection{
		Observed:    map[netip.Addr]bool{},
		FalsePairs:  map[[2]netip.Addr]bool{},
		DirectPairs: map[[2]netip.Addr]bool{},
		Paths: []Path{
			{Src: a("192.0.2.1"), Dst: a("198.51.100.1"),
				Hops: []netip.Addr{a("10.0.0.1"), a("10.0.0.5")}, Gaps: []bool{false, false}},
			{Src: a("192.0.2.1"), Dst: a("198.51.100.2"),
				Hops: []netip.Addr{a("10.0.0.1"), a("10.0.0.9")}, Gaps: []bool{false, false}},
		},
	}
	for _, p := range col.Paths {
		for _, h := range p.Hops {
			col.Observed[h] = true
		}
	}
	// Make the mates visible to the mapping universe via alias targets.
	col.AliasTargets = []netip.Addr{a("10.0.0.6"), a("10.0.0.10")}

	m := BuildMapping(col, dns, "comcast")
	if got := m.CO[a("10.0.0.1")]; got != "socalx/cotwo.ca" {
		t.Errorf("x remapped to %q, want CO2 (Fig. 19)", got)
	}
	if m.Stats.SubnetChanged != 1 {
		t.Errorf("SubnetChanged = %d, want 1", m.Stats.SubnetChanged)
	}
}

func TestInferP2PBitsFromOffsets(t *testing.T) {
	mk := func(addrs ...string) (*Collection, *Mapping) {
		col := &Collection{FalsePairs: map[[2]netip.Addr]bool{}, DirectPairs: map[[2]netip.Addr]bool{}}
		m := &Mapping{
			CO:    map[netip.Addr]string{},
			Syms:  symtab.New(0),
			COSym: map[netip.Addr]symtab.Sym{},
		}
		var hops []netip.Addr
		var gaps []bool
		for _, s := range addrs {
			hops = append(hops, a(s))
			gaps = append(gaps, false)
			m.CO[a(s)] = "r/c" + s
			m.COSym[a(s)] = m.Syms.Intern("r/c" + s)
		}
		col.Paths = []Path{{Hops: hops, Gaps: gaps}}
		return col, m
	}
	// /30 style: offsets 1 and 2 only.
	col, m := mk("10.0.0.1", "10.0.1.2", "10.0.2.1", "10.0.3.2", "10.0.4.1")
	if got := inferP2PBits(probesched.New(1, nil), col, m); got != 30 {
		t.Errorf("offsets {1,2} inferred /%d, want /30", got)
	}
	// /31 style: all offsets.
	col, m = mk("10.0.0.0", "10.0.1.3", "10.0.2.1", "10.0.3.2", "10.0.4.0", "10.0.5.3")
	if got := inferP2PBits(probesched.New(1, nil), col, m); got != 31 {
		t.Errorf("uniform offsets inferred /%d, want /31", got)
	}
	// No data: default /30.
	if got := inferP2PBits(probesched.New(1, nil), &Collection{}, &Mapping{COSym: map[netip.Addr]symtab.Sym{}}); got != 30 {
		t.Errorf("empty default = /%d", got)
	}
}
