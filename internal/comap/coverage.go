package comap

import (
	"fmt"
	"io"
	"net/netip"
	"sort"

	"repro/internal/probesched"
)

// CoverageReport quantifies how completely a campaign measured what it
// set out to measure — the graceful-degradation companion to the
// inference Report. Under a faulted measurement plane the inferred
// graphs shrink; this report says how much raw signal was lost on the
// way (probe outcomes, trace yield, hop yield) and how much confidence
// the remaining per-CO inferences carry. It is accounting about the
// measurement, derived only from probe outcomes and the inferred
// graphs, never from simulator ground truth — and it deliberately
// lives outside the JSON inference Report whose bytes the golden
// digests pin.
type CoverageReport struct {
	// Probes is the campaign-wide outcome ledger; Consistent() holds.
	Probes probesched.ProbeStats
	// Traces counts traceroutes run; EmptyTraces those with no
	// responsive hop at all; TruncatedTraces those stopped by the
	// probe budget.
	Traces          int
	EmptyTraces     int
	TruncatedTraces int
	// HopRowsProbed / HopRowsAnswered measure hop yield across traces.
	HopRowsProbed   int
	HopRowsAnswered int
	// DistinctAddrs is the number of distinct responsive addresses
	// observed.
	DistinctAddrs int
	// QuarantinedVPs lists vantage points the circuit breaker benched.
	QuarantinedVPs []netip.Addr
	// Regions breaks the inferred map down per regional network, in
	// region order.
	Regions []RegionCoverage
}

// RegionCoverage is one region's slice of the coverage report.
type RegionCoverage struct {
	Region string
	// COs and AggCOs count inferred central offices.
	COs    int
	AggCOs int
	// Addrs counts interface addresses attached to the region's COs.
	Addrs int
	// MeanConfidence and MinConfidence aggregate per-CO evidence
	// confidence (see COConfidence).
	MeanConfidence float64
	MinConfidence  float64
}

// HopYield is the fraction of probed hop rows that answered.
func (r CoverageReport) HopYield() float64 {
	if r.HopRowsProbed == 0 {
		return 0
	}
	return float64(r.HopRowsAnswered) / float64(r.HopRowsProbed)
}

// COConfidence scores one inferred CO by its supporting evidence: the
// interface addresses mapped to it plus the edges it participates in,
// squashed into (0,1) by e/(e+2). A CO seen through one address and no
// edges scores 1/3; one with five addresses and three edges scores
// 0.8. The scale is heuristic but monotone in evidence, which is what
// the chaos sweep needs: as faults eat observations, confidence must
// fall before the CO disappears outright — degradation, not a cliff.
func COConfidence(g *RegionGraph, key string) float64 {
	node := g.COs[key]
	if node == nil {
		return 0
	}
	evidence := len(node.Addrs)
	for pair := range g.Edges {
		if pair[0] == key || pair[1] == key {
			evidence++
		}
	}
	return float64(evidence) / float64(evidence+2)
}

// BuildCoverage assembles the coverage report for one campaign run.
func BuildCoverage(col *Collection, inf *Inference) CoverageReport {
	r := CoverageReport{
		Probes:          col.Stats,
		Traces:          col.TracesRun,
		EmptyTraces:     col.EmptyTraces,
		TruncatedTraces: col.TruncatedTraces,
		HopRowsProbed:   col.HopRowsProbed,
		HopRowsAnswered: col.HopRowsAnswered,
		DistinctAddrs:   len(col.Observed),
		QuarantinedVPs:  col.Quarantined,
	}
	if inf == nil {
		return r
	}
	regions := make([]string, 0, len(inf.Regions))
	for name := range inf.Regions {
		regions = append(regions, name)
	}
	sort.Strings(regions)
	for _, name := range regions {
		g := inf.Regions[name]
		rc := RegionCoverage{Region: name, COs: len(g.COs)}
		keys := make([]string, 0, len(g.COs))
		for k := range g.COs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sum float64
		min := 1.0
		for _, k := range keys {
			node := g.COs[k]
			if node.IsAgg {
				rc.AggCOs++
			}
			rc.Addrs += len(node.Addrs)
			conf := COConfidence(g, k)
			sum += conf
			if conf < min {
				min = conf
			}
		}
		if len(keys) > 0 {
			rc.MeanConfidence = sum / float64(len(keys))
			rc.MinConfidence = min
		}
		r.Regions = append(r.Regions, rc)
	}
	return r
}

// Write renders the report as a human-readable table.
func (r CoverageReport) Write(w io.Writer) {
	fmt.Fprintf(w, "probes: sent=%d replied=%d lost=%d rate-limited=%d retries=%d\n",
		r.Probes.Sent, r.Probes.Replied, r.Probes.Lost, r.Probes.RateLimited, r.Probes.Retries)
	fmt.Fprintf(w, "traces: run=%d empty=%d truncated=%d  hop yield: %d/%d (%.1f%%)  addrs=%d\n",
		r.Traces, r.EmptyTraces, r.TruncatedTraces,
		r.HopRowsAnswered, r.HopRowsProbed, 100*r.HopYield(), r.DistinctAddrs)
	if len(r.QuarantinedVPs) > 0 {
		fmt.Fprintf(w, "quarantined VPs: %v\n", r.QuarantinedVPs)
	}
	for _, rc := range r.Regions {
		fmt.Fprintf(w, "region %-10s COs=%-3d agg=%-2d addrs=%-4d confidence mean=%.2f min=%.2f\n",
			rc.Region, rc.COs, rc.AggCOs, rc.Addrs, rc.MeanConfidence, rc.MinConfidence)
	}
}
