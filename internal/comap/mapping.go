package comap

import (
	"net/netip"

	"repro/internal/dnsdb"
	"repro/internal/hostnames"
	"repro/internal/probesched"
	"repro/internal/symtab"
)

// Mapping is the Phase 1 result: every relevant address mapped to a CO
// key, with the refinement accounting of paper Table 3.
//
// The mapping is built on interned CO-key symbols (Syms/COSym) — every
// vote, census, and graph pass compares 4-byte Syms instead of strings
// — and the string-keyed views (CO, Backbone) are materialized once at
// the end, so everything digest-visible is byte-identical to the
// string-keyed implementation.
type Mapping struct {
	// CO maps interface addresses to region-qualified CO keys.
	CO map[netip.Addr]string
	// Backbone marks addresses mapped to operator backbone PoPs.
	Backbone map[netip.Addr]bool
	// NameOf records the hostname used for each mapped address.
	NameOf map[netip.Addr]string
	// P2PBits is the operator's inferred point-to-point subnet size.
	P2PBits int
	Stats   MappingStats

	// Syms interns every distinct CO key, in the canonical first-seen
	// order of the address-sharded rDNS sweep (shard tables merge in
	// shard order, so IDs are worker-invariant; see internal/symtab).
	// Phase 2 additionally interns region tags into the same table.
	Syms *symtab.Table
	// COSym is the interned form of CO: COSym[a] == Syms.Intern(CO[a]).
	COSym map[netip.Addr]symtab.Sym
}

// backboneSym reports whether an interned CO key is a backbone key.
func (m *Mapping) backboneSym(s symtab.Sym) bool {
	return isBackboneKey(m.Syms.Str(s))
}

// BuildMapping runs Appendix B.1 sequentially: initial rDNS mapping
// (dig priority), alias-group majority remapping, and point-to-point-
// subnet refinement.
func BuildMapping(col *Collection, dns *dnsdb.DB, isp string) *Mapping {
	return BuildMappingParallel(col, dns, isp, 1)
}

// BuildMappingParallel is BuildMapping with the rDNS sweep, the p2p-bit
// census, and the mate-vote scan sharded across workers (0 selects
// GOMAXPROCS). The output is byte-identical at any worker count: every
// sharded pass accumulates into per-shard sets or same-key-same-value
// maps whose union is independent of shard boundaries, and every
// order-sensitive step (majority votes, stats, final application) runs
// on the merged result exactly as the sequential code did.
func BuildMappingParallel(col *Collection, dns *dnsdb.DB, isp string, workers int) *Mapping {
	pool := probesched.New(workers, nil)
	m := &Mapping{}

	// The universe of addresses worth mapping: everything observed in
	// traceroutes, every scan target, and every alias target (which
	// includes /30 neighbors).
	universe := map[netip.Addr]bool{}
	for a := range col.Observed {
		universe[a] = true
	}
	for _, a := range col.ScanTargets {
		universe[a] = true
	}
	for _, a := range col.AliasTargets {
		universe[a] = true
	}

	// Initial mapping from reverse DNS, preferring live records. The
	// sweep shards the universe across workers; each address's verdict
	// depends only on the (read-only) DNS layers, so the per-shard maps
	// have disjoint keys and their union is order-independent.
	addrs := make([]netip.Addr, 0, len(universe))
	for a := range universe {
		addrs = append(addrs, a)
	}
	// Each shard interns CO keys into a private table; merging the shard
	// tables in shard order reproduces the sequential first-seen symbol
	// assignment (symtab's determinism property), and the per-address
	// verdicts remap through the merge's translation table.
	type rdnsAcc struct {
		syms   *symtab.Table
		co     map[netip.Addr]symtab.Sym
		nameOf map[netip.Addr]string
	}
	rdns := probesched.Reduce(pool, len(addrs),
		func() rdnsAcc {
			return rdnsAcc{
				syms:   symtab.New(0),
				co:     map[netip.Addr]symtab.Sym{},
				nameOf: map[netip.Addr]string{},
			}
		},
		func(acc rdnsAcc, i int) rdnsAcc {
			a := addrs[i]
			name, ok := dns.Name(a)
			if !ok {
				return acc
			}
			info, key, ok := hostnames.ParseWithKey(name)
			if !ok || info.ISP != isp {
				return acc
			}
			if key == "" || info.Role == hostnames.RoleLastMile {
				return acc
			}
			acc.co[a] = acc.syms.Intern(key)
			acc.nameOf[a] = name
			return acc
		},
		func(into, from rdnsAcc) rdnsAcc {
			remap := into.syms.Merge(from.syms)
			for a, s := range from.co {
				into.co[a] = remap[s]
				into.nameOf[a] = from.nameOf[a]
			}
			return into
		})
	m.Syms, m.COSym, m.NameOf = rdns.syms, rdns.co, rdns.nameOf
	m.Stats.Initial = len(m.COSym)

	// Alias-group majority vote (paper: "we remap all addresses in the
	// group to that CO"; ties remove the group's mappings).
	if col.Aliases != nil {
		votes := map[symtab.Sym]int{}
		for _, group := range col.Aliases.Groups() {
			for s := range votes {
				delete(votes, s)
			}
			for _, a := range group {
				if co, ok := m.COSym[a]; ok {
					votes[co]++
				}
			}
			if len(votes) == 0 {
				continue
			}
			top, tied := majoritySym(m.Syms, votes)
			if tied {
				for _, a := range group {
					if _, ok := m.COSym[a]; ok {
						delete(m.COSym, a)
						m.Stats.AliasRemoved++
					}
				}
				continue
			}
			for _, a := range group {
				cur, ok := m.COSym[a]
				switch {
				case !ok:
					m.COSym[a] = top
					m.Stats.AliasAdded++
				case cur != top:
					m.COSym[a] = top
					m.Stats.AliasChanged++
				}
			}
		}
	}

	// Infer the operator's point-to-point subnet convention from the
	// addresses in the traceroutes.
	m.P2PBits = inferP2PBits(pool, col, m)

	// Point-to-point-subnet refinement (Fig. 19): for each observed
	// adjacency x -> y, the other address of y's subnet most likely
	// belongs to the same router as x; vote on x's CO accordingly.
	// Each distinct mate contributes one vote regardless of how many
	// paths crossed the link (Fig. 19 counts addresses, not packets),
	// so one stale mate on a busy link cannot outvote the fresh ones.
	// The scan shards the paths across workers, accumulating the SET of
	// distinct (x, mate) pairs (union across shards restores the
	// sequential dedup); votes are then counted off the merged set, so a
	// pair straddling two shards still contributes exactly one vote.
	seenMate := foldPaths(pool, col,
		func() map[[2]netip.Addr]bool { return map[[2]netip.Addr]bool{} },
		func(set map[[2]netip.Addr]bool, _ int, p Path, _ string) map[[2]netip.Addr]bool {
			for i := 1; i < len(p.Hops); i++ {
				if p.Gaps[i] {
					continue
				}
				x, y := p.Hops[i-1], p.Hops[i]
				mate, ok := p2pMate(y, m.P2PBits)
				if !ok || mate == x {
					// When the mate is x itself the link is already
					// self-evident; no extra information.
					continue
				}
				set[[2]netip.Addr{x, mate}] = true
			}
			return set
		},
		func(into, from map[[2]netip.Addr]bool) map[[2]netip.Addr]bool {
			for k := range from {
				into[k] = true
			}
			return into
		})
	mateVotes := map[netip.Addr]map[symtab.Sym]int{}
	for pair := range seenMate {
		x, mate := pair[0], pair[1]
		co, ok := m.COSym[mate]
		if !ok {
			continue
		}
		if mateVotes[x] == nil {
			mateVotes[x] = map[symtab.Sym]int{}
		}
		mateVotes[x][co]++
	}
	for x, votes := range mateVotes {
		cur, has := m.COSym[x]
		if has {
			votes[cur]++ // the existing mapping counts as one vote
		}
		top, tied := majoritySym(m.Syms, votes)
		if tied {
			continue
		}
		switch {
		case !has:
			m.COSym[x] = top
			m.Stats.SubnetAdded++
		case top != cur:
			m.COSym[x] = top
			m.Stats.SubnetChanged++
		}
	}

	// Materialize the string-keyed views once; everything before this
	// point compared interned symbols only.
	m.CO = make(map[netip.Addr]string, len(m.COSym))
	m.Backbone = make(map[netip.Addr]bool, len(m.COSym))
	for a, s := range m.COSym {
		key := m.Syms.Str(s)
		m.CO[a] = key
		m.Backbone[a] = isBackboneKey(key)
	}
	m.Stats.Final = len(m.CO)
	return m
}

// majority returns the key with the strictly highest count; tied is true
// when two keys share the maximum.
func majority(votes map[string]int) (string, bool) {
	best, bestN, tied := "", -1, false
	for k, n := range votes {
		switch {
		case n > bestN:
			best, bestN, tied = k, n, false
		case n == bestN:
			tied = true
			if k < best {
				best = k // deterministic representative
			}
		}
	}
	return best, tied
}

// majoritySym is majority over interned keys. The tie-break compares the
// interned strings (not the Sym IDs) so the deterministic representative
// is the same key the string-keyed implementation would pick.
func majoritySym(t *symtab.Table, votes map[symtab.Sym]int) (symtab.Sym, bool) {
	var best symtab.Sym
	bestN, tied := -1, false
	for s, n := range votes {
		switch {
		case n > bestN:
			best, bestN, tied = s, n, false
		case n == bestN:
			tied = true
			if t.Str(s) < t.Str(best) {
				best = s // deterministic representative
			}
		}
	}
	return best, tied
}

func isBackboneKey(key string) bool {
	return len(key) > 3 && key[:3] == "bb:"
}

// inferP2PBits recovers the operator's interconnect convention from the
// last-two-bit distribution of intermediate hop addresses: /30 subnets
// only ever expose offsets 1 and 2 (offsets 0 and 3 are the network and
// broadcast addresses), while /31 subnets use all four offsets evenly.
// Loopback-style canonical reply addresses add uniform noise, so the
// decision threshold sits well above it.
func inferP2PBits(pool *probesched.Pool, col *Collection, m *Mapping) int {
	// Sharded census: accumulate the set of distinct qualifying
	// addresses (union across shards = the sequential dedup), then count
	// last-two-bit offsets off the merged set.
	seen := foldPaths(pool, col,
		func() map[netip.Addr]bool { return map[netip.Addr]bool{} },
		func(set map[netip.Addr]bool, _ int, p Path, _ string) map[netip.Addr]bool {
			end := len(p.Hops)
			if p.Reached {
				end-- // the destination itself may be a host, not a router
			}
			for i := 0; i < end; i++ {
				h := p.Hops[i]
				if !h.Is4() || set[h] {
					continue
				}
				if _, ok := m.COSym[h]; !ok {
					continue // only the operator's own infrastructure counts
				}
				set[h] = true
			}
			return set
		},
		func(into, from map[netip.Addr]bool) map[netip.Addr]bool {
			for a := range from {
				into[a] = true
			}
			return into
		})
	var offsets [4]int
	for a := range seen {
		offsets[a.As4()[3]&3]++
	}
	total := offsets[0] + offsets[1] + offsets[2] + offsets[3]
	if total == 0 {
		return 30
	}
	fringe := float64(offsets[0]+offsets[3]) / float64(total)
	if fringe > 0.25 {
		return 31
	}
	return 30
}
