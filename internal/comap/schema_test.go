package comap

import (
	"reflect"
	"strings"
	"testing"
)

// pinnedReportSchemas pins the serialized field set of Report for every
// published schema version. The stable-schema test recomputes the
// current fingerprint by reflection and requires it to match the entry
// for ReportSchemaVersion exactly: renaming, dropping, or retyping a
// serialized field without bumping the version (and adding the new
// pinned fingerprint here) fails the build. Adding a version keeps the
// old entries — they document what archived artifacts of that version
// contain.
var pinnedReportSchemas = map[int]string{
	2: strings.Join([]string{
		"Report.SchemaVersion json=schema_version type=int",
		"Report.GeneratedSeed json=generated_seed type=int64",
		"Report.ISP json=isp type=string",
		"Report.P2PBits json=p2p_bits type=int",
		"Report.Mapping json=mapping type=comap.MappingStats",
		"MappingStats.Initial json=Initial type=int",
		"MappingStats.AliasChanged json=AliasChanged type=int",
		"MappingStats.AliasAdded json=AliasAdded type=int",
		"MappingStats.AliasRemoved json=AliasRemoved type=int",
		"MappingStats.SubnetChanged json=SubnetChanged type=int",
		"MappingStats.SubnetAdded json=SubnetAdded type=int",
		"MappingStats.Final json=Final type=int",
		"Report.Pruning json=pruning type=comap.PruneStats",
		"PruneStats.InitialIPAdjs json=InitialIPAdjs type=int",
		"PruneStats.InitialCOAdjs json=InitialCOAdjs type=int",
		"PruneStats.BackboneIPAdjs json=BackboneIPAdjs type=int",
		"PruneStats.BackboneCOAdjs json=BackboneCOAdjs type=int",
		"PruneStats.CrossRegionIPAdjs json=CrossRegionIPAdjs type=int",
		"PruneStats.CrossRegionCOAdjs json=CrossRegionCOAdjs type=int",
		"PruneStats.SingleIPAdjs json=SingleIPAdjs type=int",
		"PruneStats.SingleCOAdjs json=SingleCOAdjs type=int",
		"PruneStats.MPLSIPAdjs json=MPLSIPAdjs type=int",
		"PruneStats.MPLSCOAdjs json=MPLSCOAdjs type=int",
		"Report.Regions json=regions type=[]comap.RegionReport",
		"RegionReport.Name json=name type=string",
		"RegionReport.Type json=type type=string",
		"RegionReport.COs json=cos type=[]comap.COReport",
		"COReport.Key json=key type=string",
		"COReport.Tag json=tag type=string",
		"COReport.IsAgg json=is_agg type=bool",
		"COReport.Addrs json=addrs,omitempty type=[]netip.Addr",
		"RegionReport.Edges json=edges type=[]comap.EdgeReport",
		"EdgeReport.From json=from type=string",
		"EdgeReport.To json=to type=string",
		"EdgeReport.Count json=count type=int",
		"RegionReport.AggGroups json=agg_groups,omitempty type=[][]string",
		"RegionReport.Entries json=entries,omitempty type=[]comap.Entry",
		"Entry.From json=From type=string",
		"Entry.FirstCOs json=FirstCOs type=[]string",
	}, "\n"),
}

// schemaFingerprint walks a struct type depth-first in declaration
// order, emitting one line per exported serialized field: owning type,
// field name, json tag (the declared name when untagged, matching
// encoding/json), and the field's Go type. Named struct types reachable
// through fields are expanded once, inline, right after the field that
// first reaches them, so nesting changes move lines and change the
// fingerprint.
func schemaFingerprint(t reflect.Type) string {
	var b strings.Builder
	seen := map[reflect.Type]bool{}
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		if seen[t] {
			return
		}
		seen[t] = true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			tag := f.Tag.Get("json")
			if tag == "-" {
				continue
			}
			if tag == "" {
				tag = f.Name
			}
			b.WriteString(t.Name() + "." + f.Name + " json=" + tag + " type=" + f.Type.String() + "\n")
			ft := f.Type
			for ft.Kind() == reflect.Slice || ft.Kind() == reflect.Ptr {
				ft = ft.Elem()
			}
			// Expand named structs declared in this package; leave
			// foreign leaf types (netip.Addr) opaque — their wire form
			// is theirs to version.
			if ft.Kind() == reflect.Struct && ft.PkgPath() == t.PkgPath() {
				walk(ft)
			}
		}
	}
	walk(t)
	return strings.TrimSuffix(b.String(), "\n")
}

// TestReportSchemaStable is the no-silent-breakage gate for the served
// artifact format: the reflected schema of Report must match the
// fingerprint pinned for ReportSchemaVersion. A mismatch means a field
// was renamed, dropped, retyped, or reordered — bump the version and
// pin the new fingerprint rather than mutating an existing one.
func TestReportSchemaStable(t *testing.T) {
	pinned, ok := pinnedReportSchemas[ReportSchemaVersion]
	if !ok {
		t.Fatalf("ReportSchemaVersion %d has no pinned schema; add its fingerprint to pinnedReportSchemas", ReportSchemaVersion)
	}
	got := schemaFingerprint(reflect.TypeOf(Report{}))
	if got != pinned {
		t.Errorf("Report schema drifted from the version-%d pin without a version bump.\n--- pinned ---\n%s\n--- current ---\n%s",
			ReportSchemaVersion, pinned, got)
	}
}

// TestReportCarriesSchemaVersion checks BuildReport stamps the current
// version and the threaded seed.
func TestReportCarriesSchemaVersion(t *testing.T) {
	res := &Result{
		Mapping:   &Mapping{},
		Inference: &Inference{},
		Seed:      99,
	}
	rep := res.BuildReport("x")
	if rep.SchemaVersion != ReportSchemaVersion {
		t.Errorf("SchemaVersion = %d, want %d", rep.SchemaVersion, ReportSchemaVersion)
	}
	if rep.GeneratedSeed != 99 {
		t.Errorf("GeneratedSeed = %d, want 99", rep.GeneratedSeed)
	}
}
