package comap

import (
	"net/netip"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/probesched"
	"repro/internal/topogen"
	"repro/internal/vclock"
)

// TestCoverageQuarantinesOfflineVP pins the breaker path end to end: a
// vantage point forced offline by the fault plan yields only empty
// traces, the circuit breaker benches it between stages, and the
// coverage report both lists the quarantined VP and keeps the probe
// ledger consistent.
func TestCoverageQuarantinesOfflineVP(t *testing.T) {
	s := topogen.NewScenario(7)
	comcast := s.BuildCable(topogen.ComcastProfile())
	charter := s.BuildCable(topogen.CharterProfile())
	vps := s.StandardVPs(comcast, charter)
	if len(vps) < 2 {
		t.Fatalf("need at least 2 VPs, got %d", len(vps))
	}
	dead := vps[0]
	s.Net.SetFaultPlan(netsim.FaultPlan{
		Seed:       3,
		OfflineVPs: []netip.Addr{dead},
	})
	c := &Campaign{
		Net:       s.Net,
		DNS:       s.DNS,
		Clock:     vclock.New(s.Epoch()),
		ISP:       comcast.Name,
		VPs:       vps,
		Announced: comcast.Announced,
		Resilience: probesched.Resilience{
			BreakerThreshold: 3,
		},
	}
	res := Run(c)
	cov := res.Coverage

	found := false
	for _, vp := range cov.QuarantinedVPs {
		if vp == dead {
			found = true
		}
		if vp != dead {
			t.Errorf("unexpected quarantined VP %v (only %v is offline)", vp, dead)
		}
	}
	if !found {
		t.Fatalf("offline VP %v not quarantined; quarantined=%v empty traces=%d",
			dead, cov.QuarantinedVPs, cov.EmptyTraces)
	}
	if !cov.Probes.Consistent() {
		t.Fatalf("inconsistent probe ledger under faults: %+v", cov.Probes)
	}
	if cov.EmptyTraces < c.Resilience.BreakerThreshold {
		t.Errorf("breaker tripped with only %d empty traces, threshold %d",
			cov.EmptyTraces, c.Resilience.BreakerThreshold)
	}
	// Losing one VP must not kill the inference: the surviving VPs still
	// discover the regions.
	if len(cov.Regions) == 0 {
		t.Fatal("coverage report has no regions despite surviving VPs")
	}
	for _, rc := range cov.Regions {
		if rc.COs == 0 {
			t.Errorf("region %s inferred zero COs", rc.Region)
		}
		if rc.MeanConfidence <= 0 || rc.MeanConfidence >= 1 {
			t.Errorf("region %s mean confidence %v outside (0,1)", rc.Region, rc.MeanConfidence)
		}
		if rc.MinConfidence > rc.MeanConfidence {
			t.Errorf("region %s min confidence %v exceeds mean %v",
				rc.Region, rc.MinConfidence, rc.MeanConfidence)
		}
	}
	if cov.HopYield() <= 0 || cov.HopYield() > 1 {
		t.Errorf("hop yield %v outside (0,1]", cov.HopYield())
	}

	var b strings.Builder
	cov.Write(&b)
	out := b.String()
	for _, want := range []string{"probes:", "traces:", "quarantined VPs:", "region"} {
		if !strings.Contains(out, want) {
			t.Errorf("coverage table missing %q:\n%s", want, out)
		}
	}
}

// TestBuildCoverageNilInference checks the report builder tolerates a
// collection-only run (SkipAlias-style usage with no graphs built).
func TestBuildCoverageNilInference(t *testing.T) {
	col := &Collection{}
	col.Stats.Observe(true, false, false)
	col.Stats.Observe(false, false, false)
	r := BuildCoverage(col, nil)
	if len(r.Regions) != 0 {
		t.Fatalf("nil inference produced regions: %+v", r.Regions)
	}
	if !r.Probes.Consistent() || r.Probes.Sent != 2 {
		t.Fatalf("ledger not carried through: %+v", r.Probes)
	}
}
