package comap

import (
	"sort"

	"repro/internal/symtab"
)

// BuildingStats quantifies building-level structure recovered from
// CLLI-style CO tags (§1: "Layer 3 topology information, including
// hostnames ... can reveal building locations and building-level
// redundancy"). Charter's 8-character tags are a 6-character city code
// plus a 2-character building code, so two COs sharing a city code are
// distinct buildings in one city.
type BuildingStats struct {
	// Cities counts distinct 6-character city codes among CLLI-tagged
	// COs.
	Cities int
	// MultiBuilding counts cities with two or more CO buildings.
	MultiBuilding int
	// RedundantAggCities counts cities where at least two of the
	// buildings are AggCOs — the dual-building aggregation redundancy
	// the paper observes in Charter metros.
	RedundantAggCities int
	// Buildings maps each multi-building city code to its CO keys.
	Buildings map[string][]string
}

// BuildingRedundancy analyzes a region whose tags follow the CLLI
// convention (8 lowercase letters). Non-CLLI tags are ignored, so the
// function is safe to call on any operator's graph.
func BuildingRedundancy(g *RegionGraph) BuildingStats {
	stats := BuildingStats{Buildings: map[string][]string{}}
	// Group by city over the sorted CO keys so the per-city building
	// lists come out ordered by construction, not by map iteration.
	keys := make([]string, 0, len(g.COs))
	for key := range g.COs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	// City codes are interned; per-city building lists live in a dense
	// slice indexed by symbol. Because every key in one region graph
	// shares the "region/" prefix, walking the sorted keys yields city
	// codes in nondecreasing order, so the table's first-seen symbol
	// order IS sorted city order and the reporting loop below needs no
	// extra sort.
	citySyms := symtab.New(0)
	var byCity [][]string // indexed by city-code Sym
	for _, key := range keys {
		node := g.COs[key]
		if !isCLLITag(node.Tag) {
			continue
		}
		s := citySyms.Intern(node.Tag[:6])
		if int(s) == len(byCity) {
			byCity = append(byCity, nil)
		}
		byCity[s] = append(byCity[s], key)
	}
	stats.Cities = citySyms.Len()
	for s, keys := range byCity {
		if len(keys) < 2 {
			continue
		}
		stats.MultiBuilding++
		stats.Buildings[citySyms.Str(symtab.Sym(s))] = keys
		aggs := 0
		for _, k := range keys {
			if g.COs[k].IsAgg {
				aggs++
			}
		}
		if aggs >= 2 {
			stats.RedundantAggCities++
		}
	}
	return stats
}

// isCLLITag recognizes the 8-lowercase-letter building-code convention.
func isCLLITag(tag string) bool {
	if len(tag) != 8 {
		return false
	}
	for _, r := range tag {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}
