package comap

import "sort"

// ReportDiff captures what changed between two inference runs of the
// same operator — the longitudinal view the paper motivates ("the
// evolving Internet ecosystem", §1): campaigns repeated over time reveal
// new COs, decommissioned offices, and re-homed EdgeCOs.
type ReportDiff struct {
	// RegionsAdded / RegionsRemoved are regional networks present in
	// only one run.
	RegionsAdded   []string
	RegionsRemoved []string
	// Per-region changes, keyed by region name.
	Regions map[string]RegionDiff
}

// RegionDiff is the change set of one region.
type RegionDiff struct {
	COsAdded     []string
	COsRemoved   []string
	EdgesAdded   [][2]string
	EdgesRemoved [][2]string
	// TypeChanged holds "old->new" when the aggregation classification
	// moved.
	TypeChanged string
}

// Empty reports whether the region changed at all.
func (d RegionDiff) Empty() bool {
	return len(d.COsAdded) == 0 && len(d.COsRemoved) == 0 &&
		len(d.EdgesAdded) == 0 && len(d.EdgesRemoved) == 0 && d.TypeChanged == ""
}

// Empty reports whether anything changed between the runs.
func (d ReportDiff) Empty() bool {
	return len(d.RegionsAdded) == 0 && len(d.RegionsRemoved) == 0 && len(d.Regions) == 0
}

// DiffReports compares two reports region by region.
func DiffReports(old, new Report) ReportDiff {
	diff := ReportDiff{Regions: map[string]RegionDiff{}}
	oldRegions := map[string]RegionReport{}
	for _, r := range old.Regions {
		oldRegions[r.Name] = r
	}
	newRegions := map[string]RegionReport{}
	for _, r := range new.Regions {
		newRegions[r.Name] = r
	}
	for name := range newRegions {
		if _, ok := oldRegions[name]; !ok {
			diff.RegionsAdded = append(diff.RegionsAdded, name)
		}
	}
	for name := range oldRegions {
		if _, ok := newRegions[name]; !ok {
			diff.RegionsRemoved = append(diff.RegionsRemoved, name)
		}
	}
	sort.Strings(diff.RegionsAdded)
	sort.Strings(diff.RegionsRemoved)

	for name, o := range oldRegions {
		n, ok := newRegions[name]
		if !ok {
			continue
		}
		rd := diffRegion(o, n)
		if !rd.Empty() {
			diff.Regions[name] = rd
		}
	}
	return diff
}

func diffRegion(o, n RegionReport) RegionDiff {
	var d RegionDiff
	oldCOs := map[string]bool{}
	for _, co := range o.COs {
		oldCOs[co.Key] = true
	}
	newCOs := map[string]bool{}
	for _, co := range n.COs {
		newCOs[co.Key] = true
	}
	for k := range newCOs {
		if !oldCOs[k] {
			d.COsAdded = append(d.COsAdded, k)
		}
	}
	for k := range oldCOs {
		if !newCOs[k] {
			d.COsRemoved = append(d.COsRemoved, k)
		}
	}
	sort.Strings(d.COsAdded)
	sort.Strings(d.COsRemoved)

	oldEdges := map[[2]string]bool{}
	for _, e := range o.Edges {
		oldEdges[[2]string{e.From, e.To}] = true
	}
	newEdges := map[[2]string]bool{}
	for _, e := range n.Edges {
		newEdges[[2]string{e.From, e.To}] = true
	}
	for e := range newEdges {
		if !oldEdges[e] {
			d.EdgesAdded = append(d.EdgesAdded, e)
		}
	}
	for e := range oldEdges {
		if !newEdges[e] {
			d.EdgesRemoved = append(d.EdgesRemoved, e)
		}
	}
	sortPairs(d.EdgesAdded)
	sortPairs(d.EdgesRemoved)

	if o.Type != n.Type {
		d.TypeChanged = o.Type + "->" + n.Type
	}
	return d
}

func sortPairs(ps [][2]string) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}
