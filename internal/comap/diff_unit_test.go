package comap

import (
	"math/rand"
	"reflect"
	"testing"
)

// regionReport builds a minimal RegionReport for diff tests.
func regionReport(name, typ string, cos []string, edges [][2]string) RegionReport {
	rr := RegionReport{Name: name, Type: typ}
	for _, k := range cos {
		rr.COs = append(rr.COs, COReport{Key: k})
	}
	for _, e := range edges {
		rr.Edges = append(rr.Edges, EdgeReport{From: e[0], To: e[1], Count: 1})
	}
	return rr
}

func TestDiffReportsRegionAddRemove(t *testing.T) {
	old := Report{Regions: []RegionReport{
		regionReport("alpha", "single", []string{"alpha/aaa"}, nil),
		regionReport("beta", "single", []string{"beta/bbb"}, nil),
	}}
	new := Report{Regions: []RegionReport{
		regionReport("beta", "single", []string{"beta/bbb"}, nil),
		regionReport("gamma", "single", []string{"gamma/ccc"}, nil),
		regionReport("delta", "single", []string{"delta/ddd"}, nil),
	}}
	d := DiffReports(old, new)
	if got, want := d.RegionsAdded, []string{"delta", "gamma"}; !reflect.DeepEqual(got, want) {
		t.Errorf("RegionsAdded = %v, want %v (sorted)", got, want)
	}
	if got, want := d.RegionsRemoved, []string{"alpha"}; !reflect.DeepEqual(got, want) {
		t.Errorf("RegionsRemoved = %v, want %v", got, want)
	}
	if len(d.Regions) != 0 {
		t.Errorf("unchanged shared region produced a RegionDiff: %+v", d.Regions)
	}
	if d.Empty() {
		t.Error("diff with added/removed regions reported Empty")
	}
}

func TestDiffReportsChangedCOsAndEdges(t *testing.T) {
	old := Report{Regions: []RegionReport{regionReport("r", "single",
		[]string{"r/aaa", "r/bbb", "r/ccc"},
		[][2]string{{"r/aaa", "r/bbb"}, {"r/aaa", "r/ccc"}})}}
	new := Report{Regions: []RegionReport{regionReport("r", "two-level",
		[]string{"r/aaa", "r/ccc", "r/ddd"},
		[][2]string{{"r/aaa", "r/ccc"}, {"r/aaa", "r/ddd"}})}}
	d := DiffReports(old, new)
	rd, ok := d.Regions["r"]
	if !ok {
		t.Fatal("changed region missing from diff")
	}
	if got, want := rd.COsAdded, []string{"r/ddd"}; !reflect.DeepEqual(got, want) {
		t.Errorf("COsAdded = %v, want %v", got, want)
	}
	if got, want := rd.COsRemoved, []string{"r/bbb"}; !reflect.DeepEqual(got, want) {
		t.Errorf("COsRemoved = %v, want %v", got, want)
	}
	if got, want := rd.EdgesAdded, [][2]string{{"r/aaa", "r/ddd"}}; !reflect.DeepEqual(got, want) {
		t.Errorf("EdgesAdded = %v, want %v", got, want)
	}
	if got, want := rd.EdgesRemoved, [][2]string{{"r/aaa", "r/bbb"}}; !reflect.DeepEqual(got, want) {
		t.Errorf("EdgesRemoved = %v, want %v", got, want)
	}
	if rd.TypeChanged != "single->two-level" {
		t.Errorf("TypeChanged = %q", rd.TypeChanged)
	}
	if rd.Empty() {
		t.Error("changed region reported Empty")
	}
}

func TestDiffReportsIdenticalRunsEmpty(t *testing.T) {
	rep := Report{Regions: []RegionReport{regionReport("r", "single",
		[]string{"r/aaa", "r/bbb"}, [][2]string{{"r/aaa", "r/bbb"}})}}
	d := DiffReports(rep, rep)
	if !d.Empty() {
		t.Errorf("identical runs produced a non-empty diff: %+v", d)
	}
}

// buildingGraph assembles a RegionGraph whose COs carry CLLI-style tags,
// inserting keys in the given order (map insertion order feeds Go's
// randomized iteration differently, which is exactly what the
// determinism test shuffles).
func buildingGraph(order []int) *RegionGraph {
	type co struct {
		tag string
		agg bool
	}
	cos := []co{
		{"sndgcaxk", true},  // san diego, building xk, Agg
		{"sndgcaxa", true},  // san diego, building xa, Agg
		{"lsancabb", false}, // LA, building bb
		{"lsancacc", true},  // LA, building cc (one agg only)
		{"frsnocaa", false}, // fresno, single building
		{"notclli", false},  // ignored: 7 chars
		{"UPPERABC", false}, // ignored: uppercase
	}
	g := &RegionGraph{Region: "socal", COs: map[string]*CONode{}}
	for _, i := range order {
		c := cos[i]
		key := "socal/" + c.tag
		g.COs[key] = &CONode{Key: key, Tag: c.tag, IsAgg: c.agg}
	}
	return g
}

func TestBuildingRedundancyGrouping(t *testing.T) {
	order := []int{0, 1, 2, 3, 4, 5, 6}
	stats := BuildingRedundancy(buildingGraph(order))
	if stats.Cities != 3 {
		t.Errorf("Cities = %d, want 3 (sndgca, lsanca, frsnoc)", stats.Cities)
	}
	if stats.MultiBuilding != 2 {
		t.Errorf("MultiBuilding = %d, want 2", stats.MultiBuilding)
	}
	if stats.RedundantAggCities != 1 {
		t.Errorf("RedundantAggCities = %d, want 1 (only sndgca has two Aggs)", stats.RedundantAggCities)
	}
	want := map[string][]string{
		"sndgca": {"socal/sndgcaxa", "socal/sndgcaxk"},
		"lsanca": {"socal/lsancabb", "socal/lsancacc"},
	}
	if !reflect.DeepEqual(stats.Buildings, want) {
		t.Errorf("Buildings = %v, want %v (sorted keys within each city)", stats.Buildings, want)
	}
}

func TestBuildingRedundancyDeterministicUnderShuffle(t *testing.T) {
	base := BuildingRedundancy(buildingGraph([]int{0, 1, 2, 3, 4, 5, 6}))
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(7)
		got := BuildingRedundancy(buildingGraph(order))
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("insertion order %v changed the stats:\ngot  %+v\nwant %+v", order, got, base)
		}
	}
}
