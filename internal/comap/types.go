// Package comap implements the paper's cable-network mapping pipeline
// (§5, Appendices B.1-B.4): a traceroute campaign with rDNS-driven
// target selection, IP-to-CO mapping refined by alias resolution and
// point-to-point subnets (Phase 1), and CO-topology graph construction
// with noise pruning, AggCO identification, ring completion, and entry
// point inference (Phase 2).
//
// The pipeline consumes only measurement observations: traceroute paths,
// DNS lookups, and probe replies. Ground truth never enters here.
package comap

import (
	"net/netip"
)

// Path is the responsive hops of one traceroute, in TTL order, with the
// vantage point recorded for entry analysis.
type Path struct {
	Src  netip.Addr
	Dst  netip.Addr
	Hops []netip.Addr
	// Gaps[i] is true when one or more unresponsive hops preceded
	// Hops[i]; immediately adjacent hops (Gaps[i]==false) are the only
	// ones the paper treats as links.
	Gaps []bool
	// Reached is true when Dst itself answered.
	Reached bool
}

// MappingStats tracks how each refinement stage of Phase 1 modified the
// IP-to-CO mapping (paper Table 3).
type MappingStats struct {
	Initial int
	// Alias-resolution stage.
	AliasChanged int
	AliasAdded   int
	AliasRemoved int
	// Point-to-point-subnet stage.
	SubnetChanged int
	SubnetAdded   int
	// Final mapping size.
	Final int
}

// PruneStats tracks the adjacency pruning of Phase 2 (paper Table 4),
// in both unique IP-adjacency and unique CO-adjacency terms.
type PruneStats struct {
	InitialIPAdjs int
	InitialCOAdjs int

	BackboneIPAdjs int
	BackboneCOAdjs int

	CrossRegionIPAdjs int
	CrossRegionCOAdjs int

	SingleIPAdjs int
	SingleCOAdjs int

	MPLSIPAdjs int
	MPLSCOAdjs int
}

// CONode is one central office in an inferred region graph.
type CONode struct {
	// Key is the region-qualified CO identifier, e.g.
	// "bverton/troutdale.or" or "socal/sndgcaxk".
	Key string
	// Tag is the bare CO tag from rDNS.
	Tag string
	// IsAgg is the Phase 2 out-degree classification.
	IsAgg bool
	// Addrs are the interface addresses mapped to this CO.
	Addrs []netip.Addr
}

// Entry is an inferred entry point into a region (§5.2.5).
type Entry struct {
	// From is the entering CO: a backbone PoP ("bb:sunnyvale.ca") or a
	// CO of another region.
	From string
	// FirstCOs are the in-region COs the entry leads to.
	FirstCOs []string
}

// RegionGraph is the inferred CO topology of one regional network.
type RegionGraph struct {
	Region string
	COs    map[string]*CONode
	// Edges maps directed CO adjacencies to their observation counts.
	Edges map[[2]string]int
	// AggGroups are the related-AggCO sets inferred in §B.3 (AggCOs
	// believed to terminate the same fiber rings).
	AggGroups [][]string
	// Entries are the inferred entry points.
	Entries []Entry
	// EdgesRemovedEdgeEdge and EdgesAddedRing record the §B.3 graph
	// repairs for reporting.
	EdgesRemovedEdgeEdge int
	EdgesAddedRing       int
}

// AggType classifies a region's aggregation architecture (paper Fig. 8 /
// Table 1).
type AggType uint8

const (
	// AggSingle has one AggCO.
	AggSingle AggType = iota
	// AggTwo has a redundant AggCO pair.
	AggTwo
	// AggMulti has multiple aggregation levels.
	AggMulti
)

func (a AggType) String() string {
	switch a {
	case AggSingle:
		return "single"
	case AggTwo:
		return "two"
	case AggMulti:
		return "multi-level"
	}
	return "unknown"
}

// AggCOs returns the keys classified as aggregation COs, sorted.
func (g *RegionGraph) AggCOs() []string {
	var out []string
	for k, n := range g.COs {
		if n.IsAgg {
			out = append(out, k)
		}
	}
	sortStrings(out)
	return out
}

// EdgeCOs returns the keys not classified as aggregation COs, sorted.
func (g *RegionGraph) EdgeCOs() []string {
	var out []string
	for k, n := range g.COs {
		if !n.IsAgg {
			out = append(out, k)
		}
	}
	sortStrings(out)
	return out
}

// OutDegree returns the number of distinct outgoing CO edges from key.
func (g *RegionGraph) OutDegree(key string) int {
	n := 0
	for e := range g.Edges {
		if e[0] == key {
			n++
		}
	}
	return n
}

// InDegree returns the number of distinct incoming CO edges to key.
func (g *RegionGraph) InDegree(key string) int {
	n := 0
	for e := range g.Edges {
		if e[1] == key {
			n++
		}
	}
	return n
}

// Classify reports the region's aggregation archetype: multi-level when
// any AggCO aggregates another AggCO or when more than two AggCOs serve
// the region (in multi-level regions the top layer's out-degree — a
// handful of sub-AggCOs — falls below the §5.2.2 threshold, so the
// second tier's several AggCOs are the reliable tiering signal);
// otherwise by AggCO count.
func (g *RegionGraph) Classify() AggType {
	agg := map[string]bool{}
	for k, n := range g.COs {
		if n.IsAgg {
			agg[k] = true
		}
	}
	for e := range g.Edges {
		if agg[e[0]] && agg[e[1]] {
			return AggMulti
		}
	}
	if len(agg) <= 1 {
		return AggSingle
	}
	if len(agg) == 2 {
		return AggTwo
	}
	return AggMulti
}

// UpstreamCount returns, for every non-Agg CO, how many distinct COs
// have edges into it (the §B.4 redundancy statistic).
func (g *RegionGraph) UpstreamCount() map[string]int {
	out := map[string]int{}
	for k, n := range g.COs {
		if !n.IsAgg {
			out[k] = g.InDegree(k)
		}
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
