package ship

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteCSV streams the rounds as CSV with one row per measurement:
// timestamp, position (true and tower-derived), signal state, user
// address, minimum RTT, and radio-active time. This is the raw dataset
// the §7.2 inference consumes, in a form external tooling can re-analyze.
func WriteCSV(w io.Writer, rounds []Round) error {
	cw := csv.NewWriter(w)
	header := []string{
		"at", "true_lat", "true_lon", "tower_lat", "tower_lon",
		"cell_id", "ok", "paused", "user_addr", "min_rtt_ms", "active_ms", "hops",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rounds {
		addr := ""
		if r.UserAddr.IsValid() {
			addr = r.UserAddr.String()
		}
		row := []string{
			r.At.UTC().Format(time.RFC3339),
			fmt.Sprintf("%.4f", r.TrueLoc.Lat),
			fmt.Sprintf("%.4f", r.TrueLoc.Lon),
			fmt.Sprintf("%.4f", r.TowerLoc.Lat),
			fmt.Sprintf("%.4f", r.TowerLoc.Lon),
			strconv.FormatUint(r.CellID, 10),
			strconv.FormatBool(r.OK),
			strconv.FormatBool(r.Paused),
			addr,
			fmt.Sprintf("%.2f", float64(r.MinRTT)/float64(time.Millisecond)),
			fmt.Sprintf("%.1f", float64(r.Active)/float64(time.Millisecond)),
			strconv.Itoa(len(r.Hops)),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
