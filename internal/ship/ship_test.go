package ship

import (
	"encoding/csv"
	"net/netip"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/cellgeo"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/topogen"
	"repro/internal/traceroute"
	"repro/internal/vclock"
)

func energyDefault() energy.Model { return energy.Default() }

type fixture struct {
	s       *topogen.Scenario
	att     *topogen.MobileCarrier
	rounds  []Round // att, all 12 shipments
	targets []netip.Addr
	server  netip.Addr
}

var fx *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if fx != nil {
		return fx
	}
	s := topogen.NewScenario(41)
	att := s.BuildMobileCarrier(topogen.ATTMobileProfile())
	// Neighbor-AS targets and the reference server live behind transit.
	targets := []netip.Addr{
		addTransitHost(t, s, "Chicago", "2001:db8:a5::1"),
		addTransitHost(t, s, "Ashburn", "2001:db8:a5::2"),
	}
	server := addTransitHost(t, s, "San Diego", "2001:db8:ca1d::1")
	c := &Campaign{
		Net:     s.Net,
		Clock:   vclock.New(s.Epoch()),
		Modem:   att.NewModem(),
		CellDB:  cellgeo.NewDB(0.25),
		Targets: targets,
		Server:  server,
		Mode:    traceroute.Parallel,
	}
	var rounds []Round
	for _, it := range Shipments() {
		rounds = append(rounds, c.Run(it)...)
	}
	fx = &fixture{s: s, att: att, rounds: rounds, targets: targets, server: server}
	return fx
}

func addTransitHost(t *testing.T, s *topogen.Scenario, city, addr string) netip.Addr {
	t.Helper()
	a := netip.MustParseAddr(addr)
	h := &netsim.Host{
		Addr:           a,
		Router:         s.TransitPoP(geo.MustByName(city).Point),
		ISP:            "neighbor-as",
		Loc:            geo.MustByName(city).Point,
		AccessDelay:    150 * time.Microsecond,
		RespondsToPing: true,
	}
	if err := s.Net.AddHost(h); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestShipmentCoverage(t *testing.T) {
	f := getFixture(t)
	states := StatesCovered(f.rounds)
	if len(states) < 40 {
		t.Errorf("states covered = %d (%v), want >= 40 (Fig. 15)", len(states), states)
	}
	if len(f.rounds) < 300 {
		t.Errorf("rounds = %d; expected several hundred hourly rounds", len(f.rounds))
	}
}

func TestSuccessRateBand(t *testing.T) {
	f := getFixture(t)
	rate := SuccessRate(f.rounds)
	// The paper saw 75-84% across carriers.
	if rate < 0.65 || rate > 0.95 {
		t.Errorf("success rate = %.2f, want ~0.75-0.85", rate)
	}
}

func TestRoundsCarryMeasurements(t *testing.T) {
	f := getFixture(t)
	withHops, withRTT := 0, 0
	for _, r := range f.rounds {
		if !r.OK {
			continue
		}
		if len(r.Hops) > 0 {
			withHops++
		}
		if r.MinRTT > 0 {
			withRTT++
		}
		if !r.UserAddr.IsValid() {
			t.Fatal("OK round without a user address")
		}
		if d := geo.DistanceKm(r.TrueLoc, r.TowerLoc); d > 30 {
			t.Errorf("tower location %f km from truth", d)
		}
	}
	okCount := int(SuccessRate(f.rounds) * float64(len(f.rounds)))
	if withHops < okCount*9/10 {
		t.Errorf("only %d/%d OK rounds captured hops", withHops, okCount)
	}
	if withRTT < okCount*8/10 {
		t.Errorf("only %d/%d OK rounds measured RTT", withRTT, okCount)
	}
}

func TestLatencyMapShape(t *testing.T) {
	f := getFixture(t)
	hexes := LatencyMap(f.rounds, 1.5)
	if len(hexes) < 60 {
		t.Fatalf("populated hexes = %d, want broad coverage", len(hexes))
	}
	// Fig. 18a: the northern interior (no nearby AT&T mobile datacenter)
	// suffers much higher latency to San Diego than southern California.
	var mtRTT, caRTT float64
	mt := geo.MustByName("Billings").Point
	ca := geo.MustByName("Los Angeles").Point
	for _, h := range hexes {
		if geo.DistanceKm(h.Center, mt) < 300 && (mtRTT == 0 || h.Value < mtRTT) {
			mtRTT = h.Value
		}
		if geo.DistanceKm(h.Center, ca) < 200 && (caRTT == 0 || h.Value < caRTT) {
			caRTT = h.Value
		}
	}
	if mtRTT == 0 || caRTT == 0 {
		t.Skipf("sparse hexes near reference points (mt=%v ca=%v)", mtRTT, caRTT)
	}
	if mtRTT < caRTT+15 {
		t.Errorf("Montana min RTT %.1fms should far exceed LA's %.1fms", mtRTT, caRTT)
	}
}

func TestEnergyAccounting(t *testing.T) {
	f := getFixture(t)
	var total time.Duration
	n := 0
	for _, r := range f.rounds {
		if r.OK {
			total += r.Active
			n++
		}
	}
	if n == 0 {
		t.Fatal("no active rounds")
	}
	avg := total / time.Duration(n)
	if avg <= 0 || avg > 10*time.Minute {
		t.Errorf("average round active time = %v", avg)
	}
}

func TestDeterminism(t *testing.T) {
	// Two campaigns over identically-seeded scenarios agree.
	run := func() []Round {
		s := topogen.NewScenario(77)
		att := s.BuildMobileCarrier(topogen.ATTMobileProfile())
		target := addTransitHost(t, s, "Chicago", "2001:db8:a5::1")
		c := &Campaign{
			Net: s.Net, Clock: vclock.New(s.Epoch()), Modem: att.NewModem(),
			CellDB: cellgeo.NewDB(0.25), Targets: []netip.Addr{target},
		}
		return c.Run(Shipments()[3])
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("round counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].OK != r2[i].OK || r1[i].UserAddr != r2[i].UserAddr {
			t.Fatalf("round %d differs", i)
		}
	}
}

func TestPauseAtRest(t *testing.T) {
	s := topogen.NewScenario(88)
	att := s.BuildMobileCarrier(topogen.ATTMobileProfile())
	target := addTransitHost(t, s, "Chicago", "2001:db8:a5::9")
	run := func(pause bool) []Round {
		c := &Campaign{
			Net: s.Net, Clock: vclock.New(s.Epoch()), Modem: att.NewModem(),
			CellDB: cellgeo.NewDB(0.25), Targets: []netip.Addr{target},
			PauseAtRest: pause,
		}
		return c.Run(Shipments()[0]) // seattle itinerary, 10 dwell rounds
	}
	normal := run(false)
	paused := run(true)
	if len(normal) != len(paused) {
		t.Fatalf("round counts differ: %d vs %d", len(normal), len(paused))
	}
	nPaused := 0
	for _, r := range paused {
		if r.Paused {
			nPaused++
			if r.OK || r.UserAddr.IsValid() || r.Active != 0 {
				t.Error("paused round carries measurements")
			}
		}
	}
	if nPaused != 9 {
		t.Errorf("paused rounds = %d, want 9 (dwell 10 minus the first)", nPaused)
	}
	// Energy: paused journey costs strictly less.
	m := energyDefault()
	if JourneyEnergy(paused, m) >= JourneyEnergy(normal, m) {
		t.Error("pausing did not reduce journey energy")
	}
	// SuccessRate ignores paused rounds.
	if SuccessRate(paused) == 0 {
		t.Error("success rate treats paused rounds as failures")
	}
}

func TestWriteCSV(t *testing.T) {
	f := getFixture(t)
	var sb strings.Builder
	if err := WriteCSV(&sb, f.rounds[:25]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 26 {
		t.Fatalf("csv lines = %d, want header + 25 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "at,true_lat") {
		t.Errorf("header = %q", lines[0])
	}
	rec, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("csv does not re-parse: %v", err)
	}
	if len(rec) != 26 || len(rec[1]) != 12 {
		t.Errorf("parsed shape %dx%d", len(rec), len(rec[1]))
	}
}

// TestControlledDrive reproduces the §7.2.2 validation: driving from
// San Diego toward Los Angeles on the Verizon-like carrier, the moment
// the nearest speedtest server flips from the Vista site to the Azusa
// site, the EdgeCO bits of the user address flip in the same step.
func TestControlledDrive(t *testing.T) {
	s := topogen.NewScenario(61)
	vz := s.BuildMobileCarrier(topogen.VerizonProfile())
	clock := vclock.New(s.Epoch())
	samples := Drive(s.Net, s.DNS, clock, vz.NewModem(),
		geo.MustByName("San Diego").Point, geo.MustByName("Azusa").Point,
		24, regexp.MustCompile(`\.ost\.myvzw\.com$`))
	if len(samples) != 25 {
		t.Fatalf("samples = %d", len(samples))
	}
	names := map[string]bool{}
	for _, smp := range samples {
		if smp.NearestSpeedtest == "" {
			t.Fatal("sample without a nearest speedtest server")
		}
		names[smp.NearestSpeedtest] = true
	}
	if len(names) < 2 {
		t.Fatalf("drive never switched speedtest servers: %v", names)
	}
	if !names["cavi.ost.myvzw.com"] || !names["caaz.ost.myvzw.com"] {
		t.Errorf("expected the Vista and Azusa servers, got %v", names)
	}
	// Verizon's EdgeCO field is user bits 24-39; a small number of
	// misalignments is tolerated (the switch can land between steps,
	// and PGW-level churn does not count).
	aligned, violations := TransitionsAligned(samples, 24, 16)
	if aligned == 0 {
		t.Error("no aligned transitions observed")
	}
	if violations > aligned {
		t.Errorf("violations=%d aligned=%d; bit flips should track the serving site", violations, aligned)
	}
}
