// Package ship implements ShipTraceroute (§7.1): smartphones shipped by
// ground across the U.S., waking hourly to cycle airplane mode,
// re-register with the packet core, log the serving cell ID, and run an
// energy-efficient round of traceroutes to destinations in neighboring
// ASes plus a latency probe to a reference server.
package ship

import (
	"net/netip"
	"time"

	"repro/internal/cellgeo"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/probesched"
	"repro/internal/topogen"
	"repro/internal/traceroute"
	"repro/internal/vclock"
)

// Itinerary is one shipment: a truck route through waypoint cities plus
// a dwell at the destination hub.
type Itinerary struct {
	Name string
	// Waypoints are city names along the route, origin first.
	Waypoints []string
	// DwellRounds holds the parcel at the destination for extra
	// stationary measurement rounds (hubs hold parcels for ~a day),
	// which is what separates re-registration effects from movement.
	DwellRounds int
}

// Round is one hourly measurement.
type Round struct {
	At time.Time
	// TrueLoc is the parcel's actual position (ground truth, for map
	// scoring); TowerLoc is what OpenCellID reports for the logged cell
	// ID and is all the inference may use.
	TrueLoc  geo.Point
	CellID   uint64
	TowerLoc geo.Point
	// OK is false when in-vehicle signal was too weak to measure.
	OK bool
	// UserAddr is the phone's address for this registration.
	UserAddr netip.Addr
	// Hops are the responsive hops of the round's traceroute toward the
	// first target (all targets share the in-carrier path, §7.1.1).
	Hops []netip.Addr
	// MinRTT is the minimum RTT to the reference server (0 when
	// unreached).
	MinRTT time.Duration
	// Active is the radio-active time of the round (energy input).
	Active time.Duration
	// Paused marks rounds skipped by the accelerometer rest detector
	// (no wake-up, no probing).
	Paused bool
	// Stats is the round's probe-outcome ledger: every traceroute probe
	// and reference-server ping lands in exactly one bucket (accounting
	// only — the inference never reads it).
	Stats probesched.ProbeStats
}

// Campaign runs shipments for one carrier.
type Campaign struct {
	Net    *netsim.Network
	Clock  *vclock.Clock
	Modem  *topogen.Modem
	CellDB *cellgeo.DB
	// Targets are the traceroute destinations (one per neighboring AS;
	// the paper found one suffices since in-carrier paths coincide).
	Targets []netip.Addr
	// Server is the reference host for the Fig. 18 latency map.
	Server netip.Addr
	// SpeedKmh is the truck speed (default 80).
	SpeedKmh float64
	// SignalProb overrides the per-round signal model when > 0.
	SignalProb float64
	// CoverageBias shifts the signal model up or down; carriers differ
	// in rural coverage (the paper measured 75-84% round success).
	CoverageBias float64
	// Mode selects the scamper probing schedule (default Parallel, the
	// ShipTraceroute modification).
	Mode traceroute.Mode
	// PauseAtRest implements the §8 scalability idea: the accelerometer
	// detects the parcel resting at a hub and pauses measurement after
	// the first stationary round, saving wake-up energy at the cost of
	// the stationary re-registration samples.
	PauseAtRest bool
	// Parallelism is the probe-scheduler worker count for each round's
	// per-target traceroutes (0 selects GOMAXPROCS). Rounds are
	// byte-identical at any value — see internal/probesched.
	Parallelism int
	// Resilience opts the round traceroutes into retries, backoff, and
	// probe budgets (zero value keeps historical behavior).
	Resilience probesched.Resilience

	rng signalRNG
}

// signalRNG is a tiny deterministic generator for signal draws, seeded
// by the campaign inputs so runs are reproducible.
type signalRNG struct{ state uint64 }

func (r *signalRNG) next() float64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return float64(r.state>>11) / float64(1<<53)
}

// Run executes one itinerary and returns its rounds.
func (c *Campaign) Run(it Itinerary) []Round {
	if c.SpeedKmh == 0 {
		c.SpeedKmh = 80
	}
	c.rng.state = uint64(len(it.Name))*2654435761 + uint64(len(it.Waypoints))
	var rounds []Round
	// Walk the route, one round per hour of driving.
	for i := 0; i+1 < len(it.Waypoints); i++ {
		a := geo.MustByName(it.Waypoints[i])
		b := geo.MustByName(it.Waypoints[i+1])
		legKm := geo.DistanceKm(a.Point, b.Point) * 1.25 // roads wiggle
		hours := int(legKm/c.SpeedKmh) + 1
		for h := 0; h < hours; h++ {
			f := float64(h) / float64(hours)
			loc := geo.Interpolate(a.Point, b.Point, f)
			rounds = append(rounds, c.round(loc))
			c.Clock.Advance(time.Hour)
		}
	}
	// Destination dwell.
	dest := geo.MustByName(it.Waypoints[len(it.Waypoints)-1])
	for d := 0; d < it.DwellRounds; d++ {
		if c.PauseAtRest && d > 0 {
			// The accelerometer saw no motion since the last round:
			// stay asleep in airplane mode.
			rounds = append(rounds, Round{At: c.Clock.Now(), TrueLoc: dest.Point, Paused: true})
		} else {
			rounds = append(rounds, c.round(dest.Point))
		}
		c.Clock.Advance(time.Hour)
	}
	return rounds
}

// round wakes the phone, re-registers, and measures.
func (c *Campaign) round(loc geo.Point) Round {
	r := Round{At: c.Clock.Now(), TrueLoc: loc}
	r.CellID = c.CellDB.CellIDAt(loc)
	r.TowerLoc, _ = c.CellDB.Lookup(r.CellID)

	if !c.hasSignal(loc) {
		return r
	}
	r.OK = true
	att := c.Modem.Attach(loc)
	r.UserAddr = att.UserAddr

	eng := &traceroute.Engine{
		Net: c.Net, Clock: c.Clock, Mode: c.Mode,
		Attempts: 2, GapLimit: 4, MaxTTL: 24,
	}
	eng.ApplyResilience(c.Resilience)
	// The per-target traceroutes of a round are independent (the phone
	// runs them back to back), so they fan out over the probe scheduler.
	pool := probesched.New(c.Parallelism, c.Clock)
	jobs := make([]probesched.Request, len(c.Targets))
	for i, dst := range c.Targets {
		jobs[i] = probesched.Request{Src: att.Host.Addr, Dst: dst}
	}
	for i, res := range pool.Fan(eng, jobs) {
		tr := res.(traceroute.Trace)
		r.Active += tr.ActiveTime
		r.Stats.Add(tr.Stats())
		if i == 0 {
			for _, h := range tr.ResponsiveHops() {
				r.Hops = append(r.Hops, h.Addr)
			}
		}
	}
	if c.Server.IsValid() {
		best := time.Duration(0)
		for seq := 0; seq < 4; seq++ {
			reply := c.Net.Probe(c.Clock.Now(), netsim.ProbeSpec{
				Src: att.Host.Addr, Dst: c.Server, TTL: 40,
				Seq: uint32(seq), FlowID: uint16(seq),
			})
			r.Stats.Observe(reply.Type != netsim.Timeout,
				reply.Outcome() == netsim.OutcomeRateLimited, false)
			if reply.Type != netsim.EchoReply {
				continue
			}
			if best == 0 || reply.RTT < best {
				best = reply.RTT
			}
			c.Clock.Advance(reply.RTT)
		}
		r.MinRTT = best
	}
	return r
}

// hasSignal models in-vehicle coverage: strong near towns, weak in the
// emptiest stretches (the paper lost 16-25% of rounds).
func (c *Campaign) hasSignal(loc geo.Point) bool {
	p := c.SignalProb
	if p == 0 {
		nearest := geo.Nearest(loc)
		d := geo.DistanceKm(loc, nearest.Point)
		switch {
		case d < 60:
			p = 0.93
		case d < 150:
			p = 0.72
		default:
			p = 0.45
		}
		p += c.CoverageBias
		if p > 0.99 {
			p = 0.99
		}
		if p < 0.05 {
			p = 0.05
		}
	}
	return c.rng.next() < p
}

// Shipments returns the paper-style campaign: twelve destinations from
// a San Diego origin whose routes traverse 40+ states (Fig. 15).
func Shipments() []Itinerary {
	return []Itinerary{
		{Name: "seattle", Waypoints: []string{"San Diego", "Los Angeles", "Bakersfield", "Fresno", "Sacramento", "Redding", "Medford", "Eugene", "Portland", "Seattle"}, DwellRounds: 10},
		{Name: "boston", Waypoints: []string{"San Diego", "Phoenix", "Albuquerque", "Amarillo", "Oklahoma City", "Tulsa", "Saint Louis", "Indianapolis", "Columbus", "Pittsburgh", "Harrisburg", "Allentown", "New York", "Hartford", "Boston"}, DwellRounds: 10},
		{Name: "miami", Waypoints: []string{"San Diego", "Tucson", "El Paso", "San Antonio", "Houston", "Baton Rouge", "New Orleans", "Gulfport", "Mobile", "Tallahassee", "Orlando", "Miami"}, DwellRounds: 10},
		{Name: "fargo", Waypoints: []string{"San Diego", "Las Vegas", "Salt Lake City", "Pocatello", "Billings", "Bismarck", "Fargo"}, DwellRounds: 8},
		{Name: "chicago", Waypoints: []string{"San Diego", "Flagstaff", "Albuquerque", "Denver", "Omaha", "Des Moines", "Chicago"}, DwellRounds: 10},
		{Name: "atlanta", Waypoints: []string{"San Diego", "El Paso", "Dallas", "Little Rock", "Memphis", "Birmingham", "Atlanta"}, DwellRounds: 10},
		{Name: "washington", Waypoints: []string{"San Diego", "Amarillo", "Oklahoma City", "Fayetteville", "Nashville", "Knoxville", "Roanoke", "Washington"}, DwellRounds: 8},
		{Name: "minneapolis", Waypoints: []string{"San Diego", "Denver", "Cheyenne", "Rapid City", "Sioux Falls", "Minneapolis"}, DwellRounds: 8},
		{Name: "louisville", Waypoints: []string{"San Diego", "Albuquerque", "Wichita", "Kansas City", "Saint Louis", "Louisville"}, DwellRounds: 8},
		{Name: "detroit", Waypoints: []string{"San Diego", "Denver", "Lincoln", "Des Moines", "Madison", "Milwaukee", "Grand Rapids", "Detroit"}, DwellRounds: 8},
		{Name: "maine", Waypoints: []string{"San Diego", "Denver", "Chicago", "Toledo", "Cleveland", "Buffalo", "Syracuse", "Albany", "Burlington", "Montpelier", "Concord", "Portland, ME"}, DwellRounds: 8},
		{Name: "norfolk", Waypoints: []string{"San Diego", "Dallas", "Memphis", "Chattanooga", "Knoxville", "Asheville", "Charlotte", "Raleigh", "Norfolk"}, DwellRounds: 8},
	}
}

// StatesCovered returns the distinct states the rounds traversed
// (Fig. 15's 40-state coverage claim), approximated by nearest city.
func StatesCovered(rounds []Round) []string {
	seen := map[string]bool{}
	for _, r := range rounds {
		seen[geo.NearestState(r.TrueLoc)] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sortStrings(out)
	return out
}

// SuccessRate reports the fraction of attempted (non-paused) rounds
// with usable signal.
func SuccessRate(rounds []Round) float64 {
	ok, attempted := 0, 0
	for _, r := range rounds {
		if r.Paused {
			continue
		}
		attempted++
		if r.OK {
			ok++
		}
	}
	if attempted == 0 {
		return 0
	}
	return float64(ok) / float64(attempted)
}

// JourneyEnergy totals the battery cost of a journey in mAh under the
// given power model: each hour sleeps in airplane mode, and non-paused
// rounds additionally pay the wake-up plus radio-active drain.
func JourneyEnergy(rounds []Round, m energy.Model) float64 {
	var total float64
	for _, r := range rounds {
		total += m.SleepAirplanemAhPerHour
		if r.Paused {
			continue
		}
		total += m.WakeEnergymAh + r.Active.Seconds()*m.ActiveDrawmAhPerSec
	}
	return total
}

// CampaignStats folds every round's probe-outcome ledger into one
// journey-wide total (paused and no-signal rounds contribute zeros).
func CampaignStats(rounds []Round) probesched.ProbeStats {
	var s probesched.ProbeStats
	for i := range rounds {
		s.Add(rounds[i].Stats)
	}
	return s
}

// LatencyMap aggregates per-hex minimum RTT in milliseconds (Fig. 18).
func LatencyMap(rounds []Round, hexSizeDeg float64) []geo.HexValue {
	agg := geo.NewHexAggregate(hexSizeDeg)
	for _, r := range rounds {
		if !r.OK || r.MinRTT == 0 {
			continue
		}
		agg.Add(r.TowerLoc, float64(r.MinRTT)/float64(time.Millisecond))
	}
	return agg.Results()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
