package ship

import (
	"net/netip"
	"regexp"
	"time"

	"repro/internal/dnsdb"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/topogen"
	"repro/internal/vclock"
)

// DriveSample is one measurement of a controlled drive (§7.2.2): the
// paper drove from San Diego toward Irvine while tracerouting to every
// Verizon speedtest server, and checked that the moment the closest
// server switched, the expected user-address bits switched with it.
type DriveSample struct {
	Loc      geo.Point
	UserAddr netip.Addr
	// NearestSpeedtest is the rDNS name of the speedtest server with
	// the lowest RTT from this attachment.
	NearestSpeedtest string
	MinRTT           time.Duration
}

// Drive runs the controlled-drive experiment: attach every stepKm along
// the route and measure RTT to every host whose snapshot rDNS matches
// speedtestRe.
func Drive(net *netsim.Network, dns *dnsdb.DB, clock *vclock.Clock, modem *topogen.Modem,
	from, to geo.Point, steps int, speedtestRe *regexp.Regexp) []DriveSample {
	targets := dns.ScanSnapshot(speedtestRe)
	var out []DriveSample
	for s := 0; s <= steps; s++ {
		loc := geo.Interpolate(from, to, float64(s)/float64(steps))
		att := modem.Attach(loc)
		sample := DriveSample{Loc: loc, UserAddr: att.UserAddr}
		for _, tgt := range targets {
			var best time.Duration
			for seq := 0; seq < 3; seq++ {
				r := net.Probe(clock.Now(), netsim.ProbeSpec{
					Src: att.Host.Addr, Dst: tgt.Addr, TTL: 40,
					Seq: uint32(seq), FlowID: uint16(seq),
				})
				if r.Type != netsim.EchoReply {
					continue
				}
				if best == 0 || r.RTT < best {
					best = r.RTT
				}
				clock.Advance(r.RTT)
			}
			if best == 0 {
				continue
			}
			if sample.MinRTT == 0 || best < sample.MinRTT {
				sample.MinRTT = best
				sample.NearestSpeedtest = tgt.Name
			}
		}
		out = append(out, sample)
		clock.Advance(5 * time.Minute)
	}
	return out
}

// TransitionsAligned verifies the §7.2.2 consistency check: whenever
// the nearest speedtest server changes between consecutive samples, the
// user-address bits in [bitStart, bitStart+bitLen) change in the same
// step, and vice versa. It returns the number of aligned transitions
// and the number of violations.
func TransitionsAligned(samples []DriveSample, bitStart, bitLen int) (aligned, violations int) {
	for i := 1; i < len(samples); i++ {
		prev, cur := samples[i-1], samples[i]
		if prev.NearestSpeedtest == "" || cur.NearestSpeedtest == "" {
			continue
		}
		serverChanged := prev.NearestSpeedtest != cur.NearestSpeedtest
		bitsChanged := v6bits(prev.UserAddr, bitStart, bitLen) != v6bits(cur.UserAddr, bitStart, bitLen)
		switch {
		case serverChanged && bitsChanged:
			aligned++
		case serverChanged != bitsChanged:
			violations++
		}
	}
	return aligned, violations
}

func v6bits(a netip.Addr, start, length int) uint64 {
	b := a.As16()
	var v uint64
	for i := 0; i < length; i++ {
		bit := start + i
		if bit < 0 || bit > 127 {
			continue
		}
		v <<= 1
		if b[bit/8]>>(7-bit%8)&1 == 1 {
			v |= 1
		}
	}
	return v
}
