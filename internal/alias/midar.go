package alias

import (
	"math"
	"net/netip"
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/probesched"
)

// midar implements the IP-ID stage: velocity estimation over interleaved
// sampling rounds (so all targets share one time window and their
// counter projections are comparable), candidate pairing by (velocity,
// projected counter), and a two-epoch interleaved Monotonic Bound Test
// with a linear-fit residual criterion.
//
// Design notes mirroring MIDAR's engineering constraints:
//
//   - Sampling happens in rounds (every target probed once per round)
//     rather than target-by-target; otherwise the campaign clock drifts
//     far between targets and extrapolating counters back to a common
//     epoch amplifies velocity-estimate error beyond usefulness.
//   - Candidate pairs must project to nearby counter values at the
//     shared epoch; two routers only collide when both their velocities
//     and their counter phases align by chance.
//   - The MBT runs two bursts separated by a long gap. A true alias's
//     samples fall on one line (residuals are per-reply increments); two
//     distinct routers differ either in phase (alternating residual) or
//     in velocity (residual growing with the gap), so a small maximum
//     residual rejects them.
func (r *Resolver) midar(targets []netip.Addr, res *Result) {
	// Compile each target's forwarding path once up front; every
	// estimation-round and MBT probe across every pass replays the
	// compiled flow. Flow.Probe is bit-identical to Network.Probe (see
	// internal/netsim), so the reply stream — and hence the IP-ID
	// evidence — is unchanged; only the per-probe destination resolution
	// and path-cache lookups disappear. Flows live in one slice indexed
	// like targets (candidates keep a pointer into it), not a per-target
	// heap allocation.
	flows := make([]netsim.Flow, len(targets))
	for i, t := range targets {
		flows[i] = r.Net.CompileFlow(r.VP, t, 0)
	}
	for pass := 0; pass < r.Passes; pass++ {
		r.midarPass(targets, flows, res, pass)
	}
}

// midarScratch holds the IP-ID stage's reusable buffers: the flat
// estimation-sample grid (row i = target i's samples, EstimationSamples
// wide) with its per-row fill counts, plus the MBT's series and fit
// arrays. Reused across rounds, passes, and regional partitions, the
// whole IP-ID stage settles into zero steady-state allocation; a map of
// per-target append-grown slices was ~4.5k allocations per campaign.
type midarScratch struct {
	samples   []ipidSample
	counts    []int
	series    []ipidSample
	unwrapped []float64
	times     []float64
}

func (r *Resolver) midarPass(targets []netip.Addr, flows []netsim.Flow, res *Result, pass int) {
	epoch := r.Clock.Now()
	es := r.EstimationSamples
	sc := &r.scratch
	if cap(sc.samples) < len(targets)*es {
		sc.samples = make([]ipidSample, len(targets)*es)
	}
	if cap(sc.counts) < len(targets) {
		sc.counts = make([]int, len(targets))
	}
	grid := sc.samples[:len(targets)*es]
	counts := sc.counts[:len(targets)]
	for i := range counts {
		counts[i] = 0
	}
	for round := 0; round < es; round++ {
		for i := range targets {
			reply := flows[i].Probe(r.Clock.Now(), 64, netsim.ICMPEcho, uint32(1000+pass*32+round))
			r.observe(reply, false)
			if reply.Type == netsim.EchoReply {
				grid[i*es+counts[i]] = ipidSample{at: r.Clock.Now(), ipid: reply.IPID}
				counts[i]++
			}
			r.Clock.Advance(2 * time.Millisecond)
		}
		r.Clock.Advance(r.EstimationSpacing)
	}

	// The velocity fits are pure computation over the collected sample
	// series, so they shard across workers (the grid and counts are
	// read-only here); per-shard candidate lists concatenate in shard
	// order, preserving the target-order candidate list the pairing
	// stage expects.
	pool := probesched.New(r.Parallelism, nil)
	cands := probesched.Reduce(pool, len(targets),
		func() []candidate { return nil },
		func(out []candidate, i int) []candidate {
			s := grid[i*es : i*es+counts[i]]
			// Tolerate one rate-limited round; three samples still fit a
			// velocity.
			if len(s) < es-1 || len(s) < 3 {
				return out
			}
			c, ok := estimate(s, epoch)
			if !ok {
				return out
			}
			c.addr = targets[i]
			c.flow = &flows[i]
			return append(out, c)
		},
		func(into, from []candidate) []candidate { return append(into, from...) })

	// Candidate pairing: sort by projected counter value and compare
	// each candidate to neighbors within the projection window,
	// including wraparound pairs.
	sort.Slice(cands, func(i, j int) bool { return cands[i].projected < cands[j].projected })
	test := func(i, j int) {
		if res.SameRouter(cands[i].addr, cands[j].addr) {
			return
		}
		if !velocityCompatible(cands[i].velocity, cands[j].velocity, r.VelocityTolerance) {
			return
		}
		if r.monotonicBoundTest(cands[i], cands[j]) {
			res.union(cands[i].addr, cands[j].addr)
			res.MIDARPairs++
		}
	}
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].projected-cands[i].projected > projWindow {
				break
			}
			test(i, j)
		}
	}
	for i := len(cands) - 1; i >= 0 && 65536-cands[i].projected <= projWindow; i-- {
		for j := 0; j < i && cands[j].projected+65536-cands[i].projected <= projWindow; j++ {
			test(i, j)
		}
	}
}

// projWindow is the counter slack between projections of true aliases:
// per-reply increments during the campaign plus residual extrapolation
// error.
const projWindow = 250

// monotonicBoundTest interleaves probes to both addresses in two bursts
// separated by a long gap, unwraps the combined IP-ID series with the
// estimated velocity, and accepts the pair only when every step advances
// and a least-squares line fits the series with small residuals.
func (r *Resolver) monotonicBoundTest(a, b candidate) bool {
	v := (a.velocity + b.velocity) / 2
	series := r.scratch.series[:0]
	collect := func(n int) {
		for i := 0; i < n; i++ {
			for side := 0; side < 2; side++ {
				f := a.flow
				if side == 1 {
					f = b.flow
				}
				// Retry rate-limited probes; a lost sample shrinks the
				// series but does not abort the test.
				for att := 0; att < 3; att++ {
					reply := f.Probe(r.Clock.Now(), 64, netsim.ICMPEcho, uint32(2000+i*4+att))
					r.observe(reply, att > 0)
					if reply.Type == netsim.EchoReply {
						series = append(series, ipidSample{at: r.Clock.Now(), ipid: reply.IPID})
						r.Clock.Advance(500 * time.Millisecond)
						break
					}
					r.Clock.Advance(200 * time.Millisecond)
				}
			}
		}
	}
	collect(r.MBTSamples)
	r.Clock.Advance(10 * time.Minute)
	collect(r.MBTSamples)
	// Hand the (possibly grown) buffer back for the next invocation;
	// this call keeps using series, which is finished with before any
	// other MBT can run (the pairing loop is sequential).
	r.scratch.series = series
	// Demand most of both bursts: the test needs interleaved samples on
	// both sides of the long gap.
	if len(series) < 3*r.MBTSamples {
		return false
	}

	// Velocity-guided unwrap into a cumulative series.
	t0 := series[0].at
	if cap(r.scratch.unwrapped) < len(series) {
		r.scratch.unwrapped = make([]float64, len(series))
		r.scratch.times = make([]float64, len(series))
	}
	unwrapped := r.scratch.unwrapped[:len(series)]
	times := r.scratch.times[:len(series)]
	times[0] = 0
	cur := float64(series[0].ipid)
	for i := 1; i < len(series); i++ {
		dt := series[i].at.Sub(series[i-1].at).Seconds()
		d := float64(int32(series[i].ipid) - int32(series[i-1].ipid))
		expect := v * dt
		k := math.Round((expect - d) / 65536)
		d += 65536 * k
		if d <= 0 {
			return false // not monotonic under the shared-counter model
		}
		cur += d
		unwrapped[i] = cur
		times[i] = series[i].at.Sub(t0).Seconds()
	}
	unwrapped[0] = float64(series[0].ipid)

	// Least-squares line; residuals must stay within the per-reply
	// increment budget for a single shared counter.
	n := float64(len(series))
	var st, sy, stt, sty float64
	for i := range series {
		st += times[i]
		sy += unwrapped[i]
		stt += times[i] * times[i]
		sty += times[i] * unwrapped[i]
	}
	den := n*stt - st*st
	if den == 0 {
		return false
	}
	slope := (n*sty - st*sy) / den
	inter := (sy - slope*st) / n
	const maxResidual = 25.0
	for i := range series {
		res := unwrapped[i] - (inter + slope*times[i])
		if math.Abs(res) > maxResidual {
			return false
		}
	}
	return slope > 0
}
