package alias

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/vclock"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// starNet builds a hub router with several spoke routers; each spoke
// gets extra loopback-style interfaces so it has multiple aliases.
type star struct {
	net    *netsim.Network
	vp     *netsim.Host
	spokes []*netsim.Router
	// ifaces[i] lists the addresses of spoke i.
	ifaces [][]netip.Addr
}

func buildStar(t *testing.T, nSpokes, extraIfaces int) *star {
	t.Helper()
	net := netsim.New(77)
	hub := net.AddRouter(&netsim.Router{Name: "hub", ISP: "t"})
	st := &star{net: net}
	for i := 0; i < nSpokes; i++ {
		r := net.AddRouter(&netsim.Router{Name: fmt.Sprintf("spoke%d", i), ISP: "t", IPID: netsim.IPIDShared})
		r.IPIDVelocity = 50 + float64(i*40)
		linkA := addr(fmt.Sprintf("10.0.%d.1", i))
		linkB := addr(fmt.Sprintf("10.0.%d.2", i))
		if _, err := net.ConnectRouters(hub, r, linkA, linkB, time.Millisecond); err != nil {
			t.Fatal(err)
		}
		addrs := []netip.Addr{linkB}
		for k := 0; k < extraIfaces; k++ {
			a := addr(fmt.Sprintf("10.1.%d.%d", i, k+1))
			if _, err := net.AddIface(r, a); err != nil {
				t.Fatal(err)
			}
			addrs = append(addrs, a)
		}
		st.spokes = append(st.spokes, r)
		st.ifaces = append(st.ifaces, addrs)
	}
	st.vp = &netsim.Host{Addr: addr("192.168.0.1"), Router: hub, ISP: "t", RespondsToPing: true}
	if err := net.AddHost(st.vp); err != nil {
		t.Fatal(err)
	}
	return st
}

func newResolver(n *netsim.Network, vp netip.Addr) *Resolver {
	return &Resolver{
		Net:   n,
		Clock: vclock.New(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)),
		VP:    vp,
	}
}

func allTargets(st *star) []netip.Addr {
	var out []netip.Addr
	for _, g := range st.ifaces {
		out = append(out, g...)
	}
	return out
}

func TestMIDARGroupsSharedCounterRouter(t *testing.T) {
	st := buildStar(t, 4, 2)
	r := newResolver(st.net, st.vp.Addr)
	res := r.Resolve(allTargets(st))
	for i, group := range st.ifaces {
		for _, a := range group[1:] {
			if !res.SameRouter(group[0], a) {
				t.Errorf("spoke %d: %v and %v not grouped", i, group[0], a)
			}
		}
	}
	if res.MIDARPairs == 0 {
		t.Error("MIDAR produced no evidence")
	}
}

func TestNoFalseAliasesAcrossRouters(t *testing.T) {
	st := buildStar(t, 5, 2)
	r := newResolver(st.net, st.vp.Addr)
	res := r.Resolve(allTargets(st))
	for i := range st.ifaces {
		for j := i + 1; j < len(st.ifaces); j++ {
			for _, a := range st.ifaces[i] {
				for _, b := range st.ifaces[j] {
					if res.SameRouter(a, b) {
						t.Errorf("false alias across spokes %d/%d: %v %v", i, j, a, b)
					}
				}
			}
		}
	}
}

func TestRandomIPIDNotGrouped(t *testing.T) {
	st := buildStar(t, 3, 2)
	st.spokes[0].IPID = netsim.IPIDRandom
	r := newResolver(st.net, st.vp.Addr)
	res := r.Resolve(allTargets(st))
	g := st.ifaces[0]
	for _, a := range g[1:] {
		if res.SameRouter(g[0], a) {
			t.Errorf("random-IPID interfaces grouped: %v %v", g[0], a)
		}
	}
	// The other spokes must still resolve.
	if !res.SameRouter(st.ifaces[1][0], st.ifaces[1][1]) {
		t.Error("shared-counter spoke no longer grouped")
	}
}

func TestPerInterfaceIPIDNotGrouped(t *testing.T) {
	st := buildStar(t, 3, 2)
	st.spokes[1].IPID = netsim.IPIDPerInterface
	r := newResolver(st.net, st.vp.Addr)
	res := r.Resolve(allTargets(st))
	g := st.ifaces[1]
	for _, a := range g[1:] {
		if res.SameRouter(g[0], a) {
			t.Errorf("per-interface-IPID interfaces grouped: %v %v", g[0], a)
		}
	}
}

func TestMercatorGroupsCanonicalRouter(t *testing.T) {
	st := buildStar(t, 3, 2)
	// Spoke 0: random IPID (MIDAR-proof) but canonical replies.
	st.spokes[0].IPID = netsim.IPIDRandom
	st.spokes[0].ReplyAddr = netsim.ReplyCanonical
	st.spokes[0].Canonical = st.ifaces[0][1]
	r := newResolver(st.net, st.vp.Addr)
	res := r.Resolve(allTargets(st))
	if !res.SameRouter(st.ifaces[0][0], st.ifaces[0][1]) {
		t.Error("Mercator did not group canonical-reply router")
	}
	if res.MercatorPairs == 0 {
		t.Error("no Mercator evidence recorded")
	}
}

func TestGroupsOutputDeterministicAndComplete(t *testing.T) {
	st := buildStar(t, 4, 2)
	r1 := newResolver(st.net, st.vp.Addr)
	res1 := r1.Resolve(allTargets(st))
	g1 := res1.Groups()
	if len(g1) != 4 {
		t.Fatalf("groups = %d, want 4", len(g1))
	}
	for _, g := range g1 {
		if len(g) != 3 {
			t.Errorf("group size = %d, want 3", len(g))
		}
		for i := 1; i < len(g); i++ {
			if !g[i-1].Less(g[i]) {
				t.Error("group members not sorted")
			}
		}
	}
	// GroupOf is consistent with SameRouter.
	for _, a := range res1.GroupOf(st.ifaces[2][0]) {
		if !res1.SameRouter(a, st.ifaces[2][0]) {
			t.Error("GroupOf returned a non-alias")
		}
	}
}

func TestCompactPreservesAnswers(t *testing.T) {
	st := buildStar(t, 4, 2)
	r := newResolver(st.net, st.vp.Addr)
	res := r.Resolve(allTargets(st))

	targets := allTargets(st)
	before := fmt.Sprint(res.Groups())
	sameBefore := make([]bool, 0, len(targets)*len(targets))
	for _, a := range targets {
		for _, b := range targets {
			sameBefore = append(sameBefore, res.SameRouter(a, b))
		}
	}
	groupOfBefore := fmt.Sprint(res.GroupOf(st.ifaces[1][0]))

	res.Compact()
	if got := fmt.Sprint(res.Groups()); got != before {
		t.Errorf("Groups changed after Compact:\n got %s\nwant %s", got, before)
	}
	i := 0
	for _, a := range targets {
		for _, b := range targets {
			if res.SameRouter(a, b) != sameBefore[i] {
				t.Errorf("SameRouter(%v, %v) changed after Compact", a, b)
			}
			i++
		}
	}
	if got := fmt.Sprint(res.GroupOf(st.ifaces[1][0])); got != groupOfBefore {
		t.Errorf("GroupOf changed after Compact: got %s want %s", got, groupOfBefore)
	}
	// Compacted state holds only grouped members; singleton probes must
	// still answer as singletons via on-demand insertion.
	if res.SameRouter(addr("203.0.113.9"), targets[0]) {
		t.Error("unseen address grouped after Compact")
	}
}

func TestUnresponsiveTargetsSkipped(t *testing.T) {
	st := buildStar(t, 2, 1)
	st.spokes[0].ResponseProb = 0
	r := newResolver(st.net, st.vp.Addr)
	res := r.Resolve(allTargets(st))
	if res.SameRouter(st.ifaces[0][0], st.ifaces[0][1]) {
		t.Error("silent router got grouped")
	}
}

func TestHostsNeverGroupedWithRouters(t *testing.T) {
	st := buildStar(t, 2, 1)
	h := &netsim.Host{Addr: addr("192.168.5.5"), Router: st.spokes[0], ISP: "t", RespondsToPing: true}
	if err := st.net.AddHost(h); err != nil {
		t.Fatal(err)
	}
	targets := append(allTargets(st), h.Addr)
	r := newResolver(st.net, st.vp.Addr)
	res := r.Resolve(targets)
	for _, a := range allTargets(st) {
		if res.SameRouter(h.Addr, a) {
			t.Errorf("host grouped with router interface %v", a)
		}
	}
}

func TestVelocityCompatible(t *testing.T) {
	if !velocityCompatible(100, 110, 0.25) {
		t.Error("100 vs 110 should be compatible at 25%")
	}
	if velocityCompatible(100, 200, 0.25) {
		t.Error("100 vs 200 should be incompatible at 25%")
	}
	if !velocityCompatible(1, 5, 0.25) {
		t.Error("tiny velocities should pass via the absolute slack")
	}
}

func BenchmarkResolve(b *testing.B) {
	// 60 routers x 3 interfaces: a region-sized alias batch.
	st := buildStarB(b, 60, 2)
	targets := allTargets(st)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := newResolver(st.net, st.vp.Addr)
		res := r.Resolve(targets)
		if len(res.Groups()) == 0 {
			b.Fatal("no groups")
		}
	}
}

// buildStarB mirrors buildStar for benchmarks.
func buildStarB(b *testing.B, nSpokes, extraIfaces int) *star {
	b.Helper()
	net := netsim.New(77)
	hub := net.AddRouter(&netsim.Router{Name: "hub", ISP: "t"})
	st := &star{net: net}
	for i := 0; i < nSpokes; i++ {
		r := net.AddRouter(&netsim.Router{Name: fmt.Sprintf("spoke%d", i), ISP: "t", IPID: netsim.IPIDShared})
		r.IPIDVelocity = 20 + float64(i*7%280)
		linkA := addr(fmt.Sprintf("10.%d.%d.1", i/200, i%200))
		linkB := addr(fmt.Sprintf("10.%d.%d.2", i/200, i%200))
		if _, err := net.ConnectRouters(hub, r, linkA, linkB, time.Millisecond); err != nil {
			b.Fatal(err)
		}
		addrs := []netip.Addr{linkB}
		for k := 0; k < extraIfaces; k++ {
			a := addr(fmt.Sprintf("10.%d.%d.%d", 100+i/200, i%200, k+1))
			if _, err := net.AddIface(r, a); err != nil {
				b.Fatal(err)
			}
			addrs = append(addrs, a)
		}
		st.spokes = append(st.spokes, r)
		st.ifaces = append(st.ifaces, addrs)
	}
	st.vp = &netsim.Host{Addr: addr("192.168.0.1"), Router: hub, ISP: "t", RespondsToPing: true}
	if err := net.AddHost(st.vp); err != nil {
		b.Fatal(err)
	}
	return st
}
