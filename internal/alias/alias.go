// Package alias implements the two alias-resolution techniques the
// paper combines (§5.1): Mercator-style common-source-address probing
// (UDP probes to high ports; a router that answers from a different
// address than probed reveals an alias pair) and MIDAR-style IP-ID
// analysis (routers with a shared IP-ID counter produce interleavable
// monotonic sequences across their interfaces; the Monotonic Bound Test
// verifies candidate groups).
//
// The resolver sees only probe responses; it never touches the
// simulator's ground truth.
package alias

import (
	"math"
	"net/netip"
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/probesched"
	"repro/internal/vclock"
)

// Resolver runs alias resolution from one vantage point.
type Resolver struct {
	Net   *netsim.Network
	Clock *vclock.Clock
	// VP is the probing source (must be a registered host; pick one
	// inside the target ISP when its routers block external probes).
	VP netip.Addr
	// Parallelism is the worker count for the Mercator stage and for
	// MIDAR's velocity-fit computation (0 selects GOMAXPROCS). Mercator
	// probes are independent, so results are identical at any value.
	// MIDAR's probing always runs sequentially: its signal is the
	// time-interleaving of IP-ID samples across targets, which is
	// inherently order-dependent (replies draw on shared per-router
	// counters); only the pure-compute fit over the collected samples
	// shards across workers.
	Parallelism int

	// VelocityTolerance bounds the relative velocity mismatch for MIDAR
	// candidate pairs (default 0.25).
	VelocityTolerance float64
	// EstimationSamples and EstimationSpacing configure the velocity
	// estimation stage (defaults 4 samples, 10s apart).
	EstimationSamples int
	EstimationSpacing time.Duration
	// MBTSamples is the per-address sample count in the interleaved
	// Monotonic Bound Test (default 4).
	MBTSamples int
	// Passes re-runs the IP-ID stage so targets that lost estimation
	// samples to rate limiting get another chance (default 2, like
	// MIDAR's repeated elimination rounds).
	Passes int

	// Stats, when non-nil, accumulates the resolver's probe-outcome
	// ledger; campaigns point it at their collection-wide tally so
	// coverage reports account for alias probes too. Outcomes are filed
	// from the resolver's own (sequential) fold paths, never from
	// worker goroutines, so no synchronization is needed.
	Stats *probesched.ProbeStats

	// scratch reuses the MIDAR sampling grid and fit buffers across
	// passes and partitions (see midarScratch). Only the resolver's own
	// sequential probing path touches it.
	scratch midarScratch
}

// observe files one probe outcome into Stats, when attached.
func (r *Resolver) observe(reply netsim.Reply, retry bool) {
	if r.Stats == nil {
		return
	}
	r.Stats.Observe(reply.Type != netsim.Timeout,
		reply.Outcome() == netsim.OutcomeRateLimited, retry)
}

// Result holds resolved alias groups.
type Result struct {
	parent map[netip.Addr]netip.Addr
	rank   map[netip.Addr]int
	// MercatorPairs and MIDARPairs count evidence by technique, for
	// reporting.
	MercatorPairs int
	MIDARPairs    int
}

func newResult() *Result {
	return &Result{parent: map[netip.Addr]netip.Addr{}, rank: map[netip.Addr]int{}}
}

func (r *Result) find(a netip.Addr) netip.Addr {
	p, ok := r.parent[a]
	if !ok {
		r.parent[a] = a
		return a
	}
	if p == a {
		return a
	}
	root := r.find(p)
	r.parent[a] = root
	return root
}

func (r *Result) union(a, b netip.Addr) {
	ra, rb := r.find(a), r.find(b)
	if ra == rb {
		return
	}
	if r.rank[ra] < r.rank[rb] {
		ra, rb = rb, ra
	}
	r.parent[rb] = ra
	if r.rank[ra] == r.rank[rb] {
		r.rank[ra]++
	}
}

// SameRouter reports whether the resolver concluded a and b are
// interfaces of one router.
func (r *Result) SameRouter(a, b netip.Addr) bool {
	if a == b {
		return true
	}
	return r.find(a) == r.find(b)
}

// Groups returns every alias set with two or more members, each sorted,
// and the list sorted by first member, so output is deterministic.
func (r *Result) Groups() [][]netip.Addr {
	m := map[netip.Addr][]netip.Addr{}
	for a := range r.parent {
		root := r.find(a)
		m[root] = append(m[root], a)
	}
	var out [][]netip.Addr
	for _, g := range m {
		if len(g) < 2 {
			continue
		}
		sort.Slice(g, func(i, j int) bool { return g[i].Less(g[j]) })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Less(out[j][0]) })
	return out
}

// Compact freezes the result into its minimal read-only form: the
// multi-member groups are materialized and the union-find entries for
// singleton targets — one per probed address, the overwhelming
// majority — are dropped, with the survivors fully path-compressed.
// Groups, GroupOf, and SameRouter answer identically afterwards
// (absent addresses are singletons, exactly what the dropped entries
// encoded); callers must not file further union evidence into a
// compacted result. Campaigns call this once resolution and mapping
// are done, so a retained Result costs O(aliased addresses), not
// O(probed targets).
func (r *Result) Compact() {
	groups := r.Groups()
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	parent := make(map[netip.Addr]netip.Addr, n)
	for _, g := range groups {
		root := g[0]
		for _, a := range g {
			parent[a] = root
		}
	}
	r.parent = parent
	r.rank = nil
}

// GroupOf returns the full alias set containing a (always at least a
// itself).
func (r *Result) GroupOf(a netip.Addr) []netip.Addr {
	root := r.find(a)
	var out []netip.Addr
	for x := range r.parent {
		if r.find(x) == root {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func (r *Resolver) defaults() {
	if r.VelocityTolerance == 0 {
		r.VelocityTolerance = 0.25
	}
	if r.EstimationSamples == 0 {
		r.EstimationSamples = 4
	}
	if r.EstimationSpacing == 0 {
		r.EstimationSpacing = 10 * time.Second
	}
	if r.MBTSamples == 0 {
		r.MBTSamples = 4
	}
	if r.Passes == 0 {
		r.Passes = 2
	}
}

// NewResult returns an empty Result for accumulating evidence across
// several partitioned resolution calls.
func NewResult() *Result { return newResult() }

// Resolve runs Mercator then MIDAR over the targets and merges the
// evidence into one Result.
func (r *Resolver) Resolve(targets []netip.Addr) *Result {
	res := newResult()
	r.ResolveInto(targets, res)
	return res
}

// ResolveInto runs both techniques over targets, accumulating evidence
// into res. Callers that partition their target space (e.g. per regional
// network, as the paper does) share one Result across partitions.
func (r *Resolver) ResolveInto(targets []netip.Addr, res *Result) {
	r.MercatorInto(targets, res)
	r.MIDARInto(targets, res)
}

// MercatorInto runs only the common-source-address technique.
func (r *Resolver) MercatorInto(targets []netip.Addr, res *Result) {
	r.defaults()
	for _, t := range targets {
		res.find(t) // seed singletons so Groups/GroupOf see every target
	}
	r.mercator(targets, res)
}

// MIDARInto runs only the IP-ID technique. Keep partitions to a few
// thousand addresses: candidate pairing compares counter projections,
// and cramming the whole Internet into one projection space raises the
// collision rate, as it would for the real MIDAR.
func (r *Resolver) MIDARInto(targets []netip.Addr, res *Result) {
	r.defaults()
	for _, t := range targets {
		res.find(t)
	}
	r.midar(targets, res)
}

// mercator sends one UDP probe to a high port on each target; a
// port-unreachable from a different source address is an alias pair.
// The probes fan out over the scheduler; evidence folds in target order.
func (r *Resolver) mercator(targets []netip.Addr, res *Result) {
	pool := probesched.New(r.Parallelism, r.Clock)
	idx := make([]int, len(targets))
	for i := range idx {
		idx[i] = i
	}
	replies := probesched.Map(pool, idx, func(clk *vclock.Clock, i int) netsim.Reply {
		reply := r.Net.Probe(clk.Now(), netsim.ProbeSpec{
			Src: r.VP, Dst: targets[i], TTL: 64, Proto: netsim.UDP, Seq: uint32(i),
		})
		clk.Advance(20 * time.Millisecond)
		return reply
	})
	for i, reply := range replies {
		t := targets[i]
		r.observe(reply, false)
		if reply.Type == netsim.PortUnreachable && reply.From.IsValid() && reply.From != t {
			res.union(t, reply.From)
			res.MercatorPairs++
		}
	}
}

// ipidSample is one (virtual time, IP-ID) observation.
type ipidSample struct {
	at   time.Time
	ipid uint16
}

// candidate is an address that passed velocity estimation.
type candidate struct {
	addr netip.Addr
	// flow is the target's compiled forwarding path, shared with the
	// MBT stage so it probes without re-resolving.
	flow     *netsim.Flow
	velocity float64 // counts per second
	// projected is the counter value extrapolated to the estimation
	// epoch; aliases share both slope and intercept.
	projected float64
	last      ipidSample
}

// estimate fits a velocity to a sample series, rejecting series that are
// not monotonic modulo wraparound or that advance implausibly fast.
func estimate(samples []ipidSample, epoch time.Time) (candidate, bool) {
	const maxVelocity = 2000.0 // counts/s beyond which unwrap is ambiguous
	var total float64
	for i := 1; i < len(samples); i++ {
		d := int32(samples[i].ipid) - int32(samples[i-1].ipid)
		if d < 0 {
			d += 65536
		}
		dt := samples[i].at.Sub(samples[i-1].at).Seconds()
		if dt <= 0 {
			return candidate{}, false
		}
		v := float64(d) / dt
		if d == 0 || v > maxVelocity {
			return candidate{}, false
		}
		total += float64(d)
	}
	elapsed := samples[len(samples)-1].at.Sub(samples[0].at).Seconds()
	vel := total / elapsed
	// Check per-interval velocities are self-consistent (a random IP-ID
	// series occasionally unwraps to something monotonic but jittery).
	for i := 1; i < len(samples); i++ {
		d := int32(samples[i].ipid) - int32(samples[i-1].ipid)
		if d < 0 {
			d += 65536
		}
		dt := samples[i].at.Sub(samples[i-1].at).Seconds()
		v := float64(d) / dt
		if v > vel*3+30 || v < vel/3-30 {
			return candidate{}, false
		}
	}
	last := samples[len(samples)-1]
	proj := math.Mod(float64(last.ipid)-vel*last.at.Sub(epoch).Seconds(), 65536)
	if proj < 0 {
		proj += 65536
	}
	return candidate{velocity: vel, projected: proj, last: last}, true
}

func velocityCompatible(a, b, tol float64) bool {
	if a > b {
		a, b = b, a
	}
	return b <= a*(1+tol)+10
}
