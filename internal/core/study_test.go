package core_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/comap"
	"repro/internal/core"
)

// TestStudyRegistryNames checks the three paper studies are registered
// under their section names.
func TestStudyRegistryNames(t *testing.T) {
	want := []string{"att", "cable", "mobile"}
	if got := core.StudyNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("StudyNames() = %v, want %v", got, want)
	}
	if _, err := core.NewStudy("nope", 1); err == nil {
		t.Fatal("NewStudy(nope) did not error")
	}
}

// TestStudyRunMatchesDirectConstructor checks launching the cable study
// through the registry produces the same inference a direct constructor
// call does: the Study interface is a uniform entry point, not a second
// pipeline.
func TestStudyRunMatchesDirectConstructor(t *testing.T) {
	if testing.Short() {
		t.Skip("full cable campaign; skipped with -short")
	}
	st, err := core.NewStudy("cable", 7, core.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != "cable" {
		t.Fatalf("Name() = %q, want cable", st.Name())
	}
	res, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Study != "cable" || res.Seed != 7 {
		t.Fatalf("envelope identifies %q seed %d, want cable seed 7", res.Study, res.Seed)
	}
	reports := res.Reports()
	if len(reports) != 2 {
		t.Fatalf("Reports() returned %d reports, want 2", len(reports))
	}
	direct := core.NewCableStudy(7, core.WithParallelism(2))
	for i, isp := range core.CableISPs {
		if reports[i].ISP != isp {
			t.Fatalf("reports[%d].ISP = %q, want %q (campaign order)", i, reports[i].ISP, isp)
		}
		if reports[i].SchemaVersion != comap.ReportSchemaVersion {
			t.Errorf("%s report schema %d, want %d", isp, reports[i].SchemaVersion, comap.ReportSchemaVersion)
		}
		if reports[i].GeneratedSeed != 7 {
			t.Errorf("%s report generated_seed %d, want 7", isp, reports[i].GeneratedSeed)
		}
		want := direct.Result(isp).BuildReport(isp)
		if !reflect.DeepEqual(reports[i], want) {
			t.Errorf("%s registry-run report differs from direct-constructor report", isp)
		}
	}
}

// TestStudyRunHonorsCancellation checks a canceled context stops a run
// before its first campaign.
func TestStudyRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range core.StudyNames() {
		st, err := core.NewStudy(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Run(ctx); err == nil {
			t.Errorf("%s: Run with canceled context did not error", name)
		}
	}
}
