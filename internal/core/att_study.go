package core

import (
	"net/netip"
	"time"

	"repro/internal/attmap"
	"repro/internal/metrics"
	"repro/internal/topogen"
)

// ATTStudy is the §6 case study: the AT&T-like telco mapped from
// bootstrap probes, in-region Atlas/Ark probes, and McTraceroute WiFi
// hotspots, with the San Diego region at full detail.
type ATTStudy struct {
	Scenario *topogen.Scenario
	Telco    *topogen.Telco
	Hotspots []topogen.WiFiHotspot
	// ArkAtlasVPs are the conventional in-region probes; HotspotVPs are
	// the restaurant WiFi VPs; BootstrapVPs sit in nearby regions.
	ArkAtlasVPs  []netip.Addr
	HotspotVPs   []netip.Addr
	BootstrapVPs []netip.Addr

	cfg    Config
	seed   int64
	result *attmap.Result
}

// DetailRegion is the region mapped at full fidelity.
const DetailRegion = "sd2ca"

// NewATTStudy builds the AT&T scenario and its vantage points. Options
// configure parallelism and the clock origin; with no options the study
// behaves exactly as it always has.
func NewATTStudy(seed int64, opts ...Option) *ATTStudy {
	s := topogen.NewScenario(seed)
	tel := s.BuildTelco(topogen.ATTProfile())
	st := &ATTStudy{Scenario: s, Telco: tel, cfg: buildConfig(opts), seed: seed}
	st.cfg.installFaults(s.Net)
	for i, tag := range []string{"la2ca", "bkfdca", "frsnca", "sffca", "scrmca"} {
		st.BootstrapVPs = append(st.BootstrapVPs, s.AddTelcoVP(tel, tag, i).Addr)
	}
	for i := 0; i < 10; i++ {
		st.ArkAtlasVPs = append(st.ArkAtlasVPs, s.AddTelcoVP(tel, DetailRegion, i*4).Addr)
	}
	st.Hotspots = s.BuildWiFiHotspots(tel, DetailRegion, 58, 0.4)
	for _, h := range st.Hotspots {
		if h.Host != nil {
			st.HotspotVPs = append(st.HotspotVPs, h.Host.Addr)
		}
	}
	return st
}

func (st *ATTStudy) campaign() *attmap.Campaign {
	return &attmap.Campaign{
		Net:          st.Scenario.Net,
		DNS:          st.Scenario.DNS,
		Clock:        st.cfg.clock(st.Scenario.Epoch()),
		ISP:          "att",
		BootstrapVPs: st.BootstrapVPs,
		RegionVPs: map[string][]netip.Addr{
			DetailRegion: append(append([]netip.Addr{}, st.ArkAtlasVPs...), st.HotspotVPs...),
		},
		Parallelism: st.cfg.Parallelism,
		Resilience:  st.cfg.Resilience,
	}
}

// Result runs (once) and returns the inference.
func (st *ATTStudy) Result() *attmap.Result {
	if st.result == nil {
		st.result = st.campaign().Run()
	}
	return st.result
}

// Fig13Summary is the router- and CO-level shape of the detail region.
type Fig13Summary struct {
	BackboneRouters int
	AggRouters      int
	EdgeRouters     int
	EdgeCOs         int
	TwoRouterEdges  int
	BackboneCOs     int
	FullMesh        bool
	DualHomedEdges  int
}

// Figure13 summarizes the San Diego inference.
func (st *ATTStudy) Figure13() Fig13Summary {
	rm := st.Result().Regions[DetailRegion]
	if rm == nil {
		return Fig13Summary{}
	}
	out := Fig13Summary{
		BackboneRouters: len(rm.Routers(attmap.RoleBackbone)),
		AggRouters:      len(rm.Routers(attmap.RoleAgg)),
		EdgeRouters:     len(rm.Routers(attmap.RoleEdge)),
		EdgeCOs:         len(rm.EdgeCOs),
		BackboneCOs:     rm.InferredBackboneCOs(),
		FullMesh:        rm.BackboneFullMesh(),
	}
	for _, cl := range rm.EdgeCOs {
		if len(cl) == 2 {
			out.TwoRouterEdges++
		}
		if len(rm.AggsOfEdgeCO(cl)) == 2 {
			out.DualHomedEdges++
		}
	}
	return out
}

// Table6 returns the discovered edge and agg router /24s.
func (st *ATTStudy) Table6() (edge, agg []netip.Prefix) {
	rm := st.Result().Regions[DetailRegion]
	if rm == nil {
		return nil, nil
	}
	return rm.EdgePrefixes, rm.AggPrefixes
}

// McComparison reports distinct IP paths observed by the Atlas/Ark VPs
// versus the McTraceroute hotspot VPs over the region's router prefixes
// (§6.1: the conventional VPs found about half the paths).
func (st *ATTStudy) McComparison() (arkPaths, mcPaths int) {
	c := st.campaign()
	var probeSet []netip.Addr
	for _, pfx := range st.Telco.EdgePrefixes[DetailRegion] {
		a := pfx.Addr()
		for i := 0; i < 24; i++ {
			a = a.Next()
			probeSet = append(probeSet, a)
		}
	}
	return c.PathCoverage(st.ArkAtlasVPs, probeSet), c.PathCoverage(st.HotspotVPs, probeSet)
}

// Table2 measures the EdgeCO-device latency histogram from a Los
// Angeles cloud VM via M-Lab-style customer targets.
func (st *ATTStudy) Table2(pings int) *metrics.Histogram {
	lat := st.EdgeLatency(pings)
	var ms []float64
	for _, d := range lat.PerDevice {
		ms = append(ms, float64(d)/float64(time.Millisecond))
	}
	return metrics.NewHistogram([]float64{4, 5, 6, 7, 9, 10}, ms)
}

// EdgeLatency runs the §6.3 measurement and returns per-device minimum
// RTTs.
func (st *ATTStudy) EdgeLatency(pings int) attmap.EdgeLatency {
	var vm netip.Addr
	for _, c := range st.Scenario.Clouds {
		if c.Provider == "gcloud" && c.Region == "us-west2" {
			vm = c.Host.Addr
		}
	}
	sample := st.Telco.MLabSample(DetailRegion, 0.5)
	return st.campaign().MeasureEdgeLatency(vm, sample, DetailRegion, pings)
}

// LatencyOutliers reports the count of devices above twice the mean
// (the Calexico / El Centro effect) and the mean in milliseconds.
func (st *ATTStudy) LatencyOutliers(pings int) (outliers int, meanMs float64) {
	lat := st.EdgeLatency(pings)
	if len(lat.PerDevice) == 0 {
		return 0, 0
	}
	var sum float64
	var ms []float64
	for _, d := range lat.PerDevice {
		v := float64(d) / float64(time.Millisecond)
		ms = append(ms, v)
		sum += v
	}
	meanMs = sum / float64(len(ms))
	for _, v := range ms {
		if v > 2*meanMs {
			outliers++
		}
	}
	return outliers, meanMs
}
