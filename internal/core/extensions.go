package core

import (
	"sort"

	"repro/internal/cellgeo"
	"repro/internal/cloudlat"
	"repro/internal/edgeplan"
	"repro/internal/energy"
	"repro/internal/mobilemap"
	"repro/internal/resilience"
	"repro/internal/ship"
	"repro/internal/traceroute"
	"repro/internal/vclock"
)

// The paper's §8 sketches follow-on directions; this file implements
// them over the inference output: resilience analysis, edge-compute
// placement, and accelerometer-paused shipping.

// Resilience runs the failure-impact analysis over every inferred
// region of an operator, returned in region-name order.
func (st *CableStudy) Resilience(isp string) []resilience.Report {
	res := st.Result(isp)
	names := make([]string, 0, len(res.Inference.Regions))
	for n := range res.Inference.Regions {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]resilience.Report, 0, len(names))
	for _, n := range names {
		out = append(out, resilience.Analyze(res.Inference.Regions[n]))
	}
	return out
}

// EdgePlacement measures AggCO-to-EdgeCO latencies over the inferred
// graphs of both operators and greedily places edge compute in AggCOs
// to cover the target fraction of EdgeCOs within budgetMs (§8 "Edge
// Computing"). pings bounds measurement cost; maxPairs bounds the
// matrix size (0 = all pairs).
func (st *CableStudy) EdgePlacement(budgetMs, targetFrac float64, pings, maxPairs int) edgeplan.Comparison {
	study := st.cloudStudy(pings)
	lat := edgeplan.Latency{}
	n := 0
	for _, isp := range []string{"comcast", "charter"} {
		res := st.Result(isp)
		regionNames := make([]string, 0, len(res.Inference.Regions))
		for name := range res.Inference.Regions {
			regionNames = append(regionNames, name)
		}
		sort.Strings(regionNames)
		for _, name := range regionNames {
			g := res.Inference.Regions[name]
			edgeKeys := g.EdgeCOs()
			for _, key := range edgeKeys {
				node := g.COs[key]
				if len(node.Addrs) == 0 {
					continue
				}
				if maxPairs > 0 && n >= maxPairs {
					break
				}
				for e := range g.Edges {
					if e[1] != key {
						continue
					}
					up := g.COs[e[0]]
					if up == nil || !up.IsAgg || len(up.Addrs) == 0 {
						continue
					}
					ms, ok := study.PairRTT(cloudlat.EdgePair{Edge: node.Addrs[0], Agg: up.Addrs[0]})
					if !ok {
						continue
					}
					host := isp + ":" + up.Key
					if lat[host] == nil {
						lat[host] = map[string]float64{}
					}
					lat[host][isp+":"+key] = ms
					n++
					break
				}
			}
		}
	}
	return edgeplan.Compare(lat, budgetMs, targetFrac)
}

// PauseAblationResult compares ShipTraceroute with and without the §8
// accelerometer pause: journey energy against the PGW-inference cost of
// skipping stationary rounds.
type PauseAblationResult struct {
	NormalEnergymAh float64
	PausedEnergymAh float64
	NormalRounds    int
	PausedRounds    int
	// PGWExact counts AT&T regions with exact PGW-count inference.
	NormalPGWExact int
	PausedPGWExact int
	Regions        int
}

// RunPauseAblation ships one extra phone pair on the AT&T-like carrier,
// once probing every hour and once pausing while the parcel rests at
// the destination hub.
func (st *MobileStudy) RunPauseAblation() PauseAblationResult {
	model := energy.Default()
	run := func(pause bool) ([]ship.Round, float64) {
		c := &ship.Campaign{
			Net:         st.Scenario.Net,
			Clock:       vclock.New(st.Scenario.Epoch()),
			Modem:       st.Carriers["att-mobile"].NewModem(),
			CellDB:      cellgeo.NewDB(0.25),
			Targets:     st.Targets,
			Server:      st.Server,
			Mode:        traceroute.Parallel,
			PauseAtRest: pause,
		}
		var rounds []ship.Round
		for _, it := range ship.Shipments() {
			rounds = append(rounds, c.Run(it)...)
		}
		return rounds, ship.JourneyEnergy(rounds, model)
	}
	normal, normalE := run(false)
	paused, pausedE := run(true)

	exact := func(rounds []ship.Round) int {
		a := mobilemap.Analyze(rounds, st.Scenario.DNS)
		truth := st.Carriers["att-mobile"]
		n := 0
		for _, reg := range truth.Regions {
			if got, ok := a.PGWCounts[reg.Spec.UserBits]; ok && got == len(reg.PGWs) {
				n++
			}
		}
		return n
	}
	measured := func(rounds []ship.Round) int {
		n := 0
		for _, r := range rounds {
			if r.OK {
				n++
			}
		}
		return n
	}
	return PauseAblationResult{
		NormalEnergymAh: normalE,
		PausedEnergymAh: pausedE,
		NormalRounds:    measured(normal),
		PausedRounds:    measured(paused),
		NormalPGWExact:  exact(normal),
		PausedPGWExact:  exact(paused),
		Regions:         len(st.Carriers["att-mobile"].Regions),
	}
}
