package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/topogen"
)

// BenchmarkWindowedCampaign is the memory curve behind `make
// bench-window`: the full comcast pipeline at 10x topology scale run
// through the streaming engine at shrinking trace windows, against two
// unbounded-archive anchors (paper-size 1x and the resident 10x run).
// benchjson's -mem-ceiling flag fails the build when the smallest
// windowed 10x run retains more than 3x the live bytes of the 1x
// resident baseline — the gate that keeps campaign memory O(window),
// not O(campaign).
//
// Alongside the standard -benchmem B/op, each run reports live_bytes:
// the post-GC heap still retained while the study result is alive.
// B/op counts everything ever allocated; live_bytes is the peak-RSS
// proxy that shows the resident archive (or its absence) directly.
func BenchmarkWindowedCampaign(b *testing.B) {
	cases := []struct {
		mult   int
		window int
	}{
		{1, 0},
		{1, 4096},
		{3, 0},
		{3, 4096},
		{10, 0},
		{10, 65536},
		{10, 16384},
		{10, 4096},
	}
	for _, tc := range cases {
		wtag := "unbounded"
		if tc.window > 0 {
			wtag = fmt.Sprint(tc.window)
		}
		b.Run(fmt.Sprintf("scale=%dx/window=%s", tc.mult, wtag), func(b *testing.B) {
			var sc topogen.Scale
			if tc.mult > 1 {
				sc = topogen.Scale{Regions: tc.mult, Subscribers: tc.mult * 100000}
			}
			b.ReportAllocs()
			var live uint64
			for i := 0; i < b.N; i++ {
				opts := []Option{WithScale(sc)}
				if tc.window > 0 {
					opts = append(opts, WithTraceWindow(tc.window), WithSpillDir(b.TempDir()))
				}
				st := NewCableStudy(7, opts...)
				r := st.Result("comcast")
				if len(r.Inference.Regions) == 0 {
					b.Fatal("windowed campaign inferred no regions")
				}
				// Retained-heap reading while the result is still alive:
				// a resident archive is held here, a windowed one is on
				// disk. Two GC cycles, because sync.Pool victim caches
				// (the engine's pooled window scratch) survive the first.
				runtime.GC()
				runtime.GC()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > live {
					live = ms.HeapAlloc
				}
				if err := r.Close(); err != nil {
					b.Fatalf("closing result: %v", err)
				}
			}
			b.ReportMetric(float64(live), "live_bytes")
		})
	}
}
