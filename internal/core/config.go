package core

import (
	"time"

	"repro/internal/vclock"
)

// Config carries the study knobs shared by every case study. Studies
// are built with functional options, so zero-configuration calls keep
// their historical behavior:
//
//	st := core.NewCableStudy(7)                             // as before
//	st := core.NewCableStudy(7, core.WithParallelism(8))    // 8 probe workers
//	st := core.NewCableStudy(7, core.WithProbeBudget(5000)) // capped campaign
type Config struct {
	// Parallelism is the probe-scheduler worker count handed to every
	// campaign the study runs (0 selects GOMAXPROCS). Results are
	// byte-identical at any value — see internal/probesched.
	Parallelism int
	// ProbeBudget caps the total traceroutes a campaign may submit
	// (0 = unlimited). Only the cable campaign currently enforces it.
	ProbeBudget int
	// Start overrides the campaign clocks' origin instant; the zero
	// value keeps the scenario epoch.
	Start time.Time
}

// Option mutates a study Config; pass options to the New*Study
// constructors.
type Option func(*Config)

// WithParallelism sets the probe-scheduler worker count for every
// campaign the study runs. Output is identical at any value; higher
// counts only shorten wall-clock time on multi-core hosts.
func WithParallelism(n int) Option {
	return func(c *Config) { c.Parallelism = n }
}

// WithProbeBudget caps the total traceroutes a campaign may submit.
func WithProbeBudget(n int) Option {
	return func(c *Config) { c.ProbeBudget = n }
}

// WithClock starts the campaigns' virtual clocks at the given instant
// instead of the scenario epoch. Useful for replaying a campaign at a
// different virtual time (IP-ID velocities are time-dependent).
func WithClock(start time.Time) Option {
	return func(c *Config) { c.Start = start }
}

func buildConfig(opts []Option) Config {
	var c Config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// clock builds a campaign clock honoring the WithClock override, with
// the scenario epoch as the default origin.
func (c Config) clock(epoch time.Time) *vclock.Clock {
	start := c.Start
	if start.IsZero() {
		start = epoch
	}
	return vclock.New(start)
}
