package core

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/probesched"
	"repro/internal/segfault"
	"repro/internal/topogen"
	"repro/internal/vclock"
)

// Config carries the study knobs shared by every case study. Studies
// are built with functional options, so zero-configuration calls keep
// their historical behavior:
//
//	st := core.NewCableStudy(7)                             // as before
//	st := core.NewCableStudy(7, core.WithParallelism(8))    // 8 probe workers
//	st := core.NewCableStudy(7, core.WithProbeBudget(5000)) // capped campaign
type Config struct {
	// Parallelism is the probe-scheduler worker count handed to every
	// campaign the study runs (0 selects GOMAXPROCS). Results are
	// byte-identical at any value — see internal/probesched.
	Parallelism int
	// ProbeBudget caps the total traceroutes a campaign may submit
	// (0 = unlimited). Only the cable campaign currently enforces it.
	ProbeBudget int
	// Start overrides the campaign clocks' origin instant; the zero
	// value keeps the scenario epoch.
	Start time.Time
	// Faults, when non-nil, is installed on the scenario network after
	// it is built: every campaign the study runs measures through the
	// faulted plane. nil (the default) leaves the network pristine.
	Faults *netsim.FaultPlan
	// Resilience configures the campaigns' retry/budget/breaker policy;
	// the zero value keeps historical behavior exactly.
	Resilience probesched.Resilience
	// Scale enlarges the generated topology (region replication,
	// subscriber floor) before the campaigns run; the zero value keeps
	// the paper-size footprint exactly (see topogen.Scale).
	Scale topogen.Scale
	// TraceWindow streams campaigns through the windowed engine: kept
	// traces spill to disk in windows of this many traces and inference
	// replays them window-at-a-time, keeping path memory O(window)
	// instead of O(campaign). Zero (the default) keeps the resident
	// archive. Fault-free results are bit-identical at any value.
	TraceWindow int
	// SpillDir hosts the windowed engine's segment log; empty creates a
	// .spill-* directory under the working directory, cleaned up when
	// the result is closed.
	SpillDir string
	// Durable makes windowed campaigns crash-safe: sealed windows are
	// fsynced and indexed in a manifest, cursors checkpoint at every
	// flush boundary, and a study restarted over the same SpillDir
	// resumes — bit-identical to an uninterrupted run. Requires
	// TraceWindow and an explicit SpillDir.
	Durable bool
	// SpillFS is the filesystem seam durable spill I/O goes through;
	// nil selects the real OS. Crash tests inject fault plans here.
	SpillFS segfault.FS
}

// Option mutates a study Config; pass options to the New*Study
// constructors.
type Option func(*Config)

// WithParallelism sets the probe-scheduler worker count for every
// campaign the study runs. Output is identical at any value; higher
// counts only shorten wall-clock time on multi-core hosts.
func WithParallelism(n int) Option {
	return func(c *Config) { c.Parallelism = n }
}

// WithProbeBudget caps the total traceroutes a campaign may submit.
func WithProbeBudget(n int) Option {
	return func(c *Config) { c.ProbeBudget = n }
}

// WithClock starts the campaigns' virtual clocks at the given instant
// instead of the scenario epoch. Useful for replaying a campaign at a
// different virtual time (IP-ID velocities are time-dependent).
func WithClock(start time.Time) Option {
	return func(c *Config) { c.Start = start }
}

// WithFaults installs a fault plan on the study's network: link loss,
// ICMP rate limiting, blackouts, silent routers, and VP churn, all
// derived deterministically from the plan seed (see netsim.FaultPlan).
func WithFaults(p netsim.FaultPlan) Option {
	return func(c *Config) { c.Faults = &p }
}

// WithResilience opts the study's campaigns into retries with backoff,
// per-trace probe budgets, and the per-VP circuit breaker.
func WithResilience(r probesched.Resilience) Option {
	return func(c *Config) { c.Resilience = r }
}

// WithScale enlarges the study's generated topology: sc.Regions
// replicates every region that many times and sc.Subscribers floors the
// allocated subscriber address count per operator. The zero Scale is a
// no-op, so existing callers keep paper-size topologies and their
// pinned digests.
func WithScale(sc topogen.Scale) Option {
	return func(c *Config) { c.Scale = sc }
}

// WithTraceWindow bounds campaign memory: traces spill to disk in
// windows of n traces and inference replays them window-at-a-time. Zero
// keeps the resident archive. Fault-free campaign output is
// bit-identical at any window size; memory falls from O(campaign) to
// O(window).
func WithTraceWindow(n int) Option {
	return func(c *Config) { c.TraceWindow = n }
}

// WithSpillDir places the windowed engine's segment log in dir instead
// of a fresh .spill-* temp directory. The directory must exist; only
// the log file is removed on close.
func WithSpillDir(dir string) Option {
	return func(c *Config) { c.SpillDir = dir }
}

// WithDurable opts windowed campaigns into crash-safe spill: durable
// window logs with manifests and flush-boundary checkpoints, resumed
// automatically (and bit-identically) by the next run over the same
// SpillDir. Use with WithTraceWindow and WithSpillDir.
func WithDurable() Option {
	return func(c *Config) { c.Durable = true }
}

// WithSpillFS routes durable spill I/O through an injected filesystem
// (crash tests use internal/segfault plans); nil keeps the real OS.
func WithSpillFS(fsys segfault.FS) Option {
	return func(c *Config) { c.SpillFS = fsys }
}

func buildConfig(opts []Option) Config {
	var c Config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// installFaults applies the WithFaults plan (if any) to a freshly-built
// scenario network; study constructors call it once, after topology
// generation, so the fault hashes see the final network seed.
func (c Config) installFaults(n *netsim.Network) {
	if c.Faults != nil {
		n.SetFaultPlan(*c.Faults)
	}
}

// clock builds a campaign clock honoring the WithClock override, with
// the scenario epoch as the default origin.
func (c Config) clock(epoch time.Time) *vclock.Clock {
	start := c.Start
	if start.IsZero() {
		start = epoch
	}
	return vclock.New(start)
}
