package core

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/cloudlat"
	"repro/internal/comap"
	"repro/internal/metrics"
	"repro/internal/topogen"
)

// sortedRegions returns the region names in sorted order so figures
// that walk the inference emit rows independently of map iteration.
func sortedRegions(regions map[string]*comap.RegionGraph) []string {
	names := make([]string, 0, len(regions))
	for name := range regions {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// sortedCOKeys returns a region's CO keys in sorted order.
func sortedCOKeys(g *comap.RegionGraph) []string {
	keys := make([]string, 0, len(g.COs))
	for key := range g.COs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// CableStudy is the §5 case study: Comcast- and Charter-like operators
// mapped from 50+ vantage points.
type CableStudy struct {
	Scenario *topogen.Scenario
	Comcast  *topogen.ISP
	Charter  *topogen.ISP
	VPs      []netip.Addr

	cfg     Config
	seed    int64
	results map[string]*comap.Result
}

// NewCableStudy builds the scenario (both operators, clouds, VPs) for a
// seed. The measurement campaigns run lazily per operator. Options
// configure parallelism, probe budget, and the clock origin; with no
// options the study behaves exactly as it always has.
func NewCableStudy(seed int64, opts ...Option) *CableStudy {
	cfg := buildConfig(opts)
	s := topogen.NewScenario(seed)
	comcast := s.BuildCable(topogen.ComcastProfile().Scaled(cfg.Scale))
	charter := s.BuildCable(topogen.CharterProfile().Scaled(cfg.Scale))
	vps := s.StandardVPs(comcast, charter)
	cfg.installFaults(s.Net)
	return &CableStudy{
		Scenario: s,
		Comcast:  comcast,
		Charter:  charter,
		VPs:      vps,
		cfg:      cfg,
		seed:     seed,
		results:  map[string]*comap.Result{},
	}
}

func (st *CableStudy) truth(isp string) *topogen.ISP {
	if isp == "comcast" {
		return st.Comcast
	}
	return st.Charter
}

// Result runs (once) and returns the full pipeline output for an
// operator ("comcast" or "charter").
func (st *CableStudy) Result(isp string) *comap.Result {
	r, err := st.ResultContext(context.Background(), isp)
	if err != nil {
		panic(fmt.Errorf("core: cable study aborted: %w", err))
	}
	return r
}

// ResultContext is Result with cooperative cancellation threaded into
// the campaign's flush loop: a cancelled durable campaign checkpoints
// cleanly and resumes on the next run over the same SpillDir.
//
// Both operators probe one shared simulated network, so the later
// campaign's IP-ID reads depend on the earlier campaign's probe
// counters. A durable study resumed in a fresh process must therefore
// request results in the same operator order as the original run (as
// Study.Run and the cmd drivers do): completed campaigns replay from
// their logs, warming the shared counters the next campaign reads.
func (st *CableStudy) ResultContext(ctx context.Context, isp string) (*comap.Result, error) {
	if r, ok := st.results[isp]; ok {
		return r, nil
	}
	c := &comap.Campaign{
		Net:         st.Scenario.Net,
		DNS:         st.Scenario.DNS,
		Clock:       st.cfg.clock(st.Scenario.Epoch()),
		ISP:         isp,
		Seed:        st.seed,
		VPs:         st.VPs,
		Announced:   st.truth(isp).Announced,
		Parallelism: st.cfg.Parallelism,
		MaxTraces:   st.cfg.ProbeBudget,
		Resilience:  st.cfg.Resilience,
		TraceWindow: st.cfg.TraceWindow,
		SpillDir:    st.cfg.SpillDir,
		Durable:     st.cfg.Durable,
		SpillFS:     st.cfg.SpillFS,
	}
	r, err := comap.RunContext(ctx, c)
	if err != nil {
		return nil, err
	}
	st.results[isp] = r
	return r, nil
}

// Close releases every cached result's spilled trace archive. A
// windowed study leaves one spill directory per operator campaign, and
// Table1 and the figures run both operators — so callers release the
// study, not the single result they asked for.
func (st *CableStudy) Close() error {
	var first error
	for _, r := range st.results {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Table1 classifies every inferred region (paper Table 1): counts per
// aggregation archetype per operator.
func (st *CableStudy) Table1() map[string]map[comap.AggType]int {
	out := map[string]map[comap.AggType]int{}
	for _, isp := range []string{"comcast", "charter"} {
		counts := map[comap.AggType]int{}
		for _, g := range st.Result(isp).Inference.Regions {
			counts[g.Classify()]++
		}
		out[isp] = counts
	}
	return out
}

// Figure7 returns the per-region CO and AggCO counts whose CDFs the
// paper plots (AggCO defined as any CO with outgoing edges, §5.3).
func (st *CableStudy) Figure7() (cos, aggs map[string][]float64) {
	cos = map[string][]float64{}
	aggs = map[string][]float64{}
	for _, isp := range []string{"comcast", "charter"} {
		regions := st.Result(isp).Inference.Regions
		for _, name := range sortedRegions(regions) {
			g := regions[name]
			cos[isp] = append(cos[isp], float64(len(g.COs)))
			n := 0
			for key := range g.COs {
				if g.OutDegree(key) > 0 {
					n++
				}
			}
			aggs[isp] = append(aggs[isp], float64(n))
		}
	}
	return cos, aggs
}

// Table3 returns the Phase 1 mapping-refinement accounting.
func (st *CableStudy) Table3(isp string) comap.MappingStats {
	return st.Result(isp).Mapping.Stats
}

// Table4 returns the Phase 2 adjacency-pruning accounting.
func (st *CableStudy) Table4(isp string) comap.PruneStats {
	return st.Result(isp).Inference.Prune
}

// EntrySummary reports, per operator: total distinct backbone entry
// points across regions, regions with fewer than two backbone entries,
// and inter-region entries (§5.2.5).
type EntrySummary struct {
	BackboneEntryPairs int
	RegionsUnderTwo    int
	InterRegionEntries int
	// InterRegionPairs counts distinct (feeder region, fed region)
	// relationships, the unit §5.2.5 reports (e.g. Central California
	// fed by San Francisco).
	InterRegionPairs    int
	RegionsWithAnyEntry int
}

// Entries summarizes entry-point inference for an operator.
func (st *CableStudy) Entries(isp string) EntrySummary {
	var out EntrySummary
	regionPairs := map[string]bool{}
	for name, g := range st.Result(isp).Inference.Regions {
		bb := map[string]bool{}
		for _, e := range g.Entries {
			if strings.HasPrefix(e.From, "bb:") {
				bb[e.From] = true
			} else {
				out.InterRegionEntries++
				if i := strings.IndexByte(e.From, '/'); i > 0 {
					regionPairs[e.From[:i]+">"+name] = true
				}
			}
		}
		out.BackboneEntryPairs += len(bb)
		if len(bb) < 2 {
			out.RegionsUnderTwo++
		}
		if len(g.Entries) > 0 {
			out.RegionsWithAnyEntry++
		}
	}
	out.InterRegionPairs = len(regionPairs)
	return out
}

// Redundancy reports the §B.4 statistics: the fraction of EdgeCOs with
// a single upstream CO, and among those, the fraction hanging off
// another EdgeCO; plus the EdgeCO:AggCO ratio of §5.5.
type Redundancy struct {
	SingleUpstreamFrac float64
	SingleViaEdgeFrac  float64
	EdgeCOs, AggCOs    int
	EdgePerAggRatio    float64
}

// RedundancyStats computes B.4 for one operator, optionally excluding a
// region (the paper excludes Charter's southeast).
func (st *CableStudy) RedundancyStats(isp string, exclude ...string) Redundancy {
	skip := map[string]bool{}
	for _, e := range exclude {
		skip[e] = true
	}
	var r Redundancy
	single, singleViaEdge, connected := 0, 0, 0
	for name, g := range st.Result(isp).Inference.Regions {
		agg := map[string]bool{}
		for key := range g.COs {
			if g.OutDegree(key) > 0 {
				agg[key] = true
				r.AggCOs++
			} else {
				r.EdgeCOs++
			}
		}
		if skip[name] {
			continue
		}
		for key, node := range g.COs {
			if node.IsAgg {
				continue
			}
			ins := 0
			viaEdge := false
			for e := range g.Edges {
				if e[1] == key {
					ins++
					if !g.COs[e[0]].IsAgg {
						viaEdge = true
					}
				}
			}
			if ins == 0 {
				continue
			}
			connected++
			if ins == 1 {
				single++
				if viaEdge {
					singleViaEdge++
				}
			}
		}
	}
	if connected > 0 {
		r.SingleUpstreamFrac = float64(single) / float64(connected)
	}
	if single > 0 {
		r.SingleViaEdgeFrac = float64(singleViaEdge) / float64(single)
	}
	if r.AggCOs > 0 {
		r.EdgePerAggRatio = float64(r.EdgeCOs) / float64(r.AggCOs)
	}
	return r
}

// DirectTargetingGain returns how many times more intra-region CO
// adjacencies the rDNS-targeted traceroutes revealed over the /24 sweep
// (the paper's 5.3x / 2.6x claim).
func (st *CableStudy) DirectTargetingGain(isp string) float64 {
	stages := st.Result(isp).StageAdjacencies()
	sweep := stages["sweep"]
	if sweep == 0 {
		return 0
	}
	return float64(stages["direct"]+stages["mpls"]) / float64(sweep)
}

// cloudStudy builds the §5.5 latency study over the scenario's VMs.
func (st *CableStudy) cloudStudy(pings int) *cloudlat.Study {
	var vms []cloudlat.VM
	for _, c := range st.Scenario.Clouds {
		vms = append(vms, cloudlat.VM{Provider: c.Provider, Region: c.Region, Addr: c.Host.Addr})
	}
	return &cloudlat.Study{
		Net:         st.Scenario.Net,
		Clock:       st.cfg.clock(st.Scenario.Epoch()),
		VMs:         vms,
		Pings:       pings,
		Parallelism: st.cfg.Parallelism,
	}
}

// Figure9 measures the Northeast-states latency comparison from every
// cloud provider, using the inferred Comcast graphs to locate EdgeCOs
// by state (the boston region plus Connecticut).
func (st *CableStudy) Figure9(pings int) []cloudlat.Fig9Row {
	byState := map[string][]netip.Addr{}
	res := st.Result("comcast")
	for _, regionName := range []string{"boston", "hartford"} {
		g := res.Inference.Regions[regionName]
		if g == nil {
			continue
		}
		for _, key := range sortedCOKeys(g) {
			node := g.COs[key]
			if node.IsAgg || len(node.Addrs) == 0 {
				continue
			}
			// Comcast tags end in the state code: "troutdale.or".
			i := strings.LastIndexByte(node.Tag, '.')
			if i < 0 {
				continue
			}
			state := strings.ToUpper(node.Tag[i+1:])
			byState[state] = append(byState[state], node.Addrs[0])
		}
	}
	return st.cloudStudy(pings).Figure9([]string{"aws", "azure", "gcloud"}, byState)
}

// Figure10 measures the cloud-to-EdgeCO and AggCO-to-EdgeCO RTT CDFs
// over both operators' inferred graphs. maxPairs bounds runtime (0 =
// all).
func (st *CableStudy) Figure10(pings, maxPairs int) cloudlat.Fig10 {
	var pairs []cloudlat.EdgePair
	for _, isp := range []string{"comcast", "charter"} {
		res := st.Result(isp)
		regions := res.Inference.Regions
		for _, name := range sortedRegions(regions) {
			g := regions[name]
			for _, key := range sortedCOKeys(g) {
				node := g.COs[key]
				if node.IsAgg || len(node.Addrs) == 0 {
					continue
				}
				// Pick the smallest-keyed upstream AggCO with a known
				// address, so the probed pair set does not depend on map
				// iteration order.
				upstream := ""
				for e := range g.Edges {
					if e[1] != node.Key {
						continue
					}
					up := g.COs[e[0]]
					if up == nil || !up.IsAgg || len(up.Addrs) == 0 {
						continue
					}
					if upstream == "" || e[0] < upstream {
						upstream = e[0]
					}
				}
				if upstream != "" {
					pairs = append(pairs, cloudlat.EdgePair{Edge: node.Addrs[0], Agg: g.COs[upstream].Addrs[0]})
				}
			}
		}
	}
	if maxPairs > 0 && len(pairs) > maxPairs {
		// Deterministic thinning.
		step := len(pairs) / maxPairs
		var out []cloudlat.EdgePair
		for i := 0; i < len(pairs); i += step {
			out = append(out, pairs[i])
		}
		pairs = out
	}
	return st.cloudStudy(pings).Figure10(pairs)
}

// Score compares an operator's inference against ground truth.
func (st *CableStudy) Score(isp string) metrics.ISPScore {
	return metrics.ScoreISP(st.Result(isp).Inference, st.truth(isp))
}
