package core

import (
	"net/netip"
	"time"

	"repro/internal/cellgeo"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/mobilemap"
	"repro/internal/netsim"
	"repro/internal/ship"
	"repro/internal/topogen"
	"repro/internal/traceroute"
	"repro/internal/vclock"
)

// MobileStudy is the §7 case study: the three carrier archetypes mapped
// with ShipTraceroute and IPv6 field inference.
type MobileStudy struct {
	Scenario *topogen.Scenario
	Carriers map[string]*topogen.MobileCarrier
	// Targets are the neighbor-AS traceroute destinations; Server is
	// the reference host for the latency map.
	Targets []netip.Addr
	Server  netip.Addr

	cfg      Config
	seed     int64
	rounds   map[string][]ship.Round
	analyses map[string]*mobilemap.Analysis
}

// CarrierNames lists the studied carriers in stable order.
var CarrierNames = []string{"att-mobile", "tmobile", "verizon"}

// coverageBias models the carriers' differing rural coverage; the paper
// measured 82% (AT&T), 84% (Verizon), and 75% (T-Mobile) round success.
var coverageBias = map[string]float64{
	"att-mobile": 0.05,
	"verizon":    0.08,
	"tmobile":    -0.03,
}

// NewMobileStudy builds the mobile scenario: three carriers, targets in
// neighboring ASes, and a San Diego reference server. Options configure
// parallelism and the clock origin; with no options the study behaves
// exactly as it always has.
func NewMobileStudy(seed int64, opts ...Option) *MobileStudy {
	s := topogen.NewScenario(seed)
	st := &MobileStudy{
		Scenario: s,
		cfg:      buildConfig(opts),
		seed:     seed,
		Carriers: map[string]*topogen.MobileCarrier{
			"att-mobile": s.BuildMobileCarrier(topogen.ATTMobileProfile()),
			"verizon":    s.BuildMobileCarrier(topogen.VerizonProfile()),
			"tmobile":    s.BuildMobileCarrier(topogen.TMobileProfile()),
		},
		rounds:   map[string][]ship.Round{},
		analyses: map[string]*mobilemap.Analysis{},
	}
	st.cfg.installFaults(s.Net)
	add := func(city, addr string) netip.Addr {
		a := netip.MustParseAddr(addr)
		h := &netsim.Host{
			Addr:           a,
			Router:         s.TransitPoP(geo.MustByName(city).Point),
			ISP:            "neighbor-as",
			Loc:            geo.MustByName(city).Point,
			AccessDelay:    150 * time.Microsecond,
			RespondsToPing: true,
		}
		if err := s.Net.AddHost(h); err != nil {
			panic(err)
		}
		return a
	}
	st.Targets = []netip.Addr{
		add("Chicago", "2001:db8:a5::1"),
		add("Ashburn", "2001:db8:a5::2"),
	}
	st.Server = add("San Diego", "2001:db8:ca1d::1")
	return st
}

// Rounds runs (once) the full 12-shipment campaign for a carrier.
func (st *MobileStudy) Rounds(carrier string) []ship.Round {
	if rs, ok := st.rounds[carrier]; ok {
		return rs
	}
	c := &ship.Campaign{
		Net:          st.Scenario.Net,
		Clock:        st.cfg.clock(st.Scenario.Epoch()),
		Modem:        st.Carriers[carrier].NewModem(),
		CellDB:       cellgeo.NewDB(0.25),
		Targets:      st.Targets,
		Server:       st.Server,
		Mode:         traceroute.Parallel,
		CoverageBias: coverageBias[carrier],
		Parallelism:  st.cfg.Parallelism,
		Resilience:   st.cfg.Resilience,
	}
	var rs []ship.Round
	for _, it := range ship.Shipments() {
		rs = append(rs, c.Run(it)...)
	}
	st.rounds[carrier] = rs
	return rs
}

// Analysis runs (once) the §7.2 inference for a carrier.
func (st *MobileStudy) Analysis(carrier string) *mobilemap.Analysis {
	if a, ok := st.analyses[carrier]; ok {
		return a
	}
	a := mobilemap.AnalyzeParallel(st.Rounds(carrier), st.Scenario.DNS, st.cfg.Parallelism)
	st.analyses[carrier] = a
	return a
}

// Figure15 reports the states traversed and per-carrier round success
// rates.
func (st *MobileStudy) Figure15() (states []string, successRates map[string]float64) {
	successRates = map[string]float64{}
	var all []ship.Round
	for _, name := range CarrierNames {
		rs := st.Rounds(name)
		successRates[name] = ship.SuccessRate(rs)
		all = append(all, rs...)
	}
	return ship.StatesCovered(all), successRates
}

// Figure14 compares stock (sequential) and ShipTraceroute (parallel)
// scamper on one measurement round: active time, energy, and projected
// battery life.
type Fig14Row struct {
	Mode        string
	Active      time.Duration
	EnergymAh   float64
	BatteryDays float64
}

// Figure14 runs one round in each mode from a phone attached near the
// origin and prices it with the battery model.
func (st *MobileStudy) Figure14() []Fig14Row {
	model := energy.Default()
	modem := st.Carriers["att-mobile"].NewModem()
	att := modem.Attach(geo.MustByName("San Diego").Point)
	clock := vclock.New(st.Scenario.Epoch())
	// The paper's round probed 266 destinations; reuse the study's
	// targets cyclically to match the per-round probe volume.
	var rows []Fig14Row
	for _, mode := range []traceroute.Mode{traceroute.Sequential, traceroute.Parallel} {
		eng := &traceroute.Engine{Net: st.Scenario.Net, Clock: clock, Mode: mode, MaxTTL: 24, GapLimit: 4}
		var active time.Duration
		for i := 0; i < 266; i++ {
			tr := eng.Trace(att.Host.Addr, st.Targets[i%len(st.Targets)])
			active += tr.ActiveTime
		}
		name := "sequential (stock scamper)"
		if mode == traceroute.Parallel {
			name = "parallel (ShipTraceroute)"
		}
		rows = append(rows, Fig14Row{
			Mode:        name,
			Active:      active,
			EnergymAh:   model.RoundEnergy(active),
			BatteryDays: model.BatteryLifeDays(active, true),
		})
	}
	return rows
}

// Figure18 returns the latency-map hexes for a carrier.
func (st *MobileStudy) Figure18(carrier string) []geo.HexValue {
	return ship.LatencyMap(st.Rounds(carrier), 1.5)
}

// PGWTable compares inferred per-region PGW counts against ground truth
// (Tables 7 and 8). Only regions the campaign visited appear.
type PGWRow struct {
	Region   string
	Inferred int
	Truth    int
}

// PGWTable builds the Table 7/8 comparison for a carrier.
func (st *MobileStudy) PGWTable(carrier string) []PGWRow {
	a := st.Analysis(carrier)
	truth := st.Carriers[carrier]
	var rows []PGWRow
	for _, reg := range truth.Regions {
		got, visited := a.PGWCounts[reg.Spec.UserBits]
		if !visited {
			continue
		}
		rows = append(rows, PGWRow{Region: reg.Spec.Name, Inferred: got, Truth: len(reg.PGWs)})
	}
	return rows
}
