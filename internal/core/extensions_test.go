package core

import (
	"strings"
	"testing"

	"repro/internal/comap"
)

func TestResilienceExtension(t *testing.T) {
	st := getCable(t)
	reports := st.Resilience("comcast")
	if len(reports) != 28 {
		t.Fatalf("reports = %d", len(reports))
	}
	byRegion := map[string]int{}
	survivable := map[string]bool{}
	for i, rep := range reports {
		byRegion[rep.Region] = i
		survivable[rep.Region] = rep.EntryLossSurvivable()
	}
	// Dual-backbone regions survive the loss of either entry; the
	// single-entry regions (spokane, albuquerque) do not.
	for _, name := range []string{"boston", "dcmetro", "denver"} {
		if !survivable[name] {
			t.Errorf("%s should survive single entry loss", name)
		}
	}
	for _, name := range []string{"spokane", "albuquerque"} {
		if survivable[name] {
			t.Errorf("%s has one entry and should not survive its loss", name)
		}
	}
	// Single-AggCO regions have a dominant single point of failure.
	spokane := reports[byRegion["spokane"]]
	worst, ok := spokane.WorstCO()
	if !ok || worst.Frac() < 0.5 {
		t.Errorf("spokane worst CO failure = %+v, want a region-wide SPOF", worst)
	}
	// Dual-star regions keep every EdgeCO on single-CO failure except
	// chained EdgeCOs.
	boston := reports[byRegion["boston"]]
	if w, _ := boston.WorstCO(); w.Frac() > 0.3 {
		t.Errorf("boston worst CO strands %.0f%%; dual AggCOs should cap the blast radius", 100*w.Frac())
	}
}

func TestEdgePlacementExtension(t *testing.T) {
	st := getCable(t)
	cmp := st.EdgePlacement(5, 0.8, 8, 400)
	p := cmp.AggPlacement
	if p.Total < 200 {
		t.Fatalf("edge universe = %d", p.Total)
	}
	if p.Frac() < 0.8 {
		t.Errorf("coverage = %.2f, want >= 0.8 within 5ms", p.Frac())
	}
	// The whole point: far fewer host sites than EdgeCOs.
	if len(p.Hosts)*3 > p.Total {
		t.Errorf("placement needs %d hosts for %d EdgeCOs; expected a large saving", len(p.Hosts), p.Total)
	}
	for _, h := range p.Hosts {
		if !strings.Contains(h, ":") {
			t.Errorf("host key %q should be operator-qualified", h)
		}
	}
}

func TestPauseAblationExtension(t *testing.T) {
	st := getMobile(t)
	r := st.RunPauseAblation()
	if r.PausedEnergymAh >= r.NormalEnergymAh {
		t.Errorf("pausing saved nothing: %.0f vs %.0f mAh", r.PausedEnergymAh, r.NormalEnergymAh)
	}
	if r.PausedRounds >= r.NormalRounds {
		t.Errorf("paused campaign measured %d rounds vs %d", r.PausedRounds, r.NormalRounds)
	}
	// The tradeoff: pausing must not improve inference, and normal mode
	// should get most regions exactly right.
	if r.PausedPGWExact > r.NormalPGWExact {
		t.Errorf("pausing improved PGW inference: %d > %d", r.PausedPGWExact, r.NormalPGWExact)
	}
	if r.NormalPGWExact < r.Regions-2 {
		t.Errorf("normal mode PGW exact = %d of %d", r.NormalPGWExact, r.Regions)
	}
}

// TestSeedRobustness re-runs the headline cable shapes at additional
// seeds; the reproduction must not be an artifact of one RNG stream.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep skipped in -short mode")
	}
	for _, seed := range []int64{29, 83} {
		st := NewCableStudy(seed)
		st.Result("comcast")
		st.Result("charter")
		tbl := st.Table1()
		if got := tbl["charter"][comap.AggMulti]; got != 6 {
			t.Errorf("seed %d: charter multi-level regions = %d, want 6", seed, got)
		}
		com := st.RedundancyStats("comcast")
		char := st.RedundancyStats("charter")
		if com.SingleUpstreamFrac >= char.SingleUpstreamFrac {
			t.Errorf("seed %d: redundancy contrast inverted (%.3f vs %.3f)",
				seed, com.SingleUpstreamFrac, char.SingleUpstreamFrac)
		}
		for _, isp := range []string{"comcast", "charter"} {
			if f1 := st.Score(isp).MeanF1(); f1 < 0.8 {
				t.Errorf("seed %d: %s F1 = %.3f", seed, isp, f1)
			}
		}
		e := st.Entries("comcast")
		if e.BackboneEntryPairs < 40 {
			t.Errorf("seed %d: backbone entries = %d", seed, e.BackboneEntryPairs)
		}
	}
}
