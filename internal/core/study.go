package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/attmap"
	"repro/internal/comap"
	"repro/internal/mobilemap"
)

// Study is the uniform handle over the paper's case studies. Before it
// existed every caller was welded to one concrete constructor
// (NewCableStudy, NewATTStudy, NewMobileStudy) and one result shape, so
// a resident service — or any tool that launches "whatever campaign the
// operator named" — had to special-case all three. The registry keys
// builders by name; cmds launch uniformly through NewStudy and only
// downcast when they need a study's figure-specific accessors.
//
// Direct constructor calls in cmds are deprecated in favor of the
// registry; the constructors themselves remain the supported library
// API (tests and examples use them, and the registry builders are thin
// wrappers over them).
type Study interface {
	// Name is the registry key the study was built under.
	Name() string
	// Run executes every measurement campaign the study defines and
	// returns the uniform result envelope. Run honors ctx between
	// campaigns, and the cable study additionally threads it into each
	// campaign's flush loop: cancellation stops at the next probe-batch
	// boundary (digest-neutral) and returns ctx's error. A durable
	// cable campaign cancelled mid-flight leaves its checkpointed spill
	// state on disk and resumes on the next Run.
	Run(ctx context.Context) (*StudyResult, error)
}

// StudyResult is the envelope a Study run fills: one field per result
// family, nil when the study does not produce it. Cable carries the
// full per-operator pipeline results (the only family that builds
// schema-versioned comap Reports and therefore snapshots); ATT and
// Mobile carry their studies' native inferences.
type StudyResult struct {
	// Study and Seed identify the run.
	Study string
	Seed  int64
	// CableISPs lists the operators measured, in campaign order;
	// Cable maps each to its pipeline result.
	CableISPs []string
	Cable     map[string]*comap.Result
	// ATT is the §6 inference, when the study is "att".
	ATT *attmap.Result
	// Mobile maps carrier name to the §7.2 analysis, when "mobile".
	Mobile map[string]*mobilemap.Analysis
}

// Reports builds the schema-versioned comap Reports the run produced,
// one per measured cable operator, in campaign order. Studies without
// cable campaigns return nil — they have no snapshot-servable artifact
// yet.
func (r *StudyResult) Reports() []comap.Report {
	var out []comap.Report
	for _, isp := range r.CableISPs {
		if res := r.Cable[isp]; res != nil {
			out = append(out, res.BuildReport(isp))
		}
	}
	return out
}

// StudyBuilder constructs a Study for a seed; the shared options apply
// exactly as they do on the direct constructors.
type StudyBuilder func(seed int64, opts ...Option) Study

var studyRegistry = map[string]StudyBuilder{}

// RegisterStudy adds a builder under name. Registering a duplicate name
// panics: the registry is assembled from package init functions, and a
// silent overwrite would make "which study ran" depend on init order.
func RegisterStudy(name string, b StudyBuilder) {
	if _, dup := studyRegistry[name]; dup {
		panic(fmt.Sprintf("core: study %q registered twice", name))
	}
	studyRegistry[name] = b
}

// NewStudy builds the named study for a seed, or errors with the known
// names when the name is not registered.
func NewStudy(name string, seed int64, opts ...Option) (Study, error) {
	b, ok := studyRegistry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown study %q (known: %v)", name, StudyNames())
	}
	return b(seed, opts...), nil
}

// StudyNames returns the registered study names, sorted.
func StudyNames() []string {
	names := make([]string, 0, len(studyRegistry))
	for n := range studyRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterStudy("cable", func(seed int64, opts ...Option) Study {
		return NewCableStudy(seed, opts...)
	})
	RegisterStudy("att", func(seed int64, opts ...Option) Study {
		return NewATTStudy(seed, opts...)
	})
	RegisterStudy("mobile", func(seed int64, opts ...Option) Study {
		return NewMobileStudy(seed, opts...)
	})
}

// CableISPs lists the cable study's operators in campaign order.
var CableISPs = []string{"comcast", "charter"}

// Name implements Study.
func (st *CableStudy) Name() string { return "cable" }

// Run implements Study: both operators' campaigns, in order.
func (st *CableStudy) Run(ctx context.Context) (*StudyResult, error) {
	out := &StudyResult{
		Study:     st.Name(),
		Seed:      st.seed,
		CableISPs: CableISPs,
		Cable:     map[string]*comap.Result{},
	}
	for _, isp := range CableISPs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := st.ResultContext(ctx, isp)
		if err != nil {
			return nil, err
		}
		out.Cable[isp] = r
	}
	return out, nil
}

// Name implements Study.
func (st *ATTStudy) Name() string { return "att" }

// Run implements Study.
func (st *ATTStudy) Run(ctx context.Context) (*StudyResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &StudyResult{Study: st.Name(), Seed: st.seed, ATT: st.Result()}, nil
}

// Name implements Study.
func (st *MobileStudy) Name() string { return "mobile" }

// Run implements Study: every carrier's shipment campaign plus its
// §7.2 analysis.
func (st *MobileStudy) Run(ctx context.Context) (*StudyResult, error) {
	out := &StudyResult{
		Study:  st.Name(),
		Seed:   st.seed,
		Mobile: map[string]*mobilemap.Analysis{},
	}
	for _, carrier := range CarrierNames {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out.Mobile[carrier] = st.Analysis(carrier)
	}
	return out, nil
}
