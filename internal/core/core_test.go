package core

import (
	"testing"

	"repro/internal/comap"
)

var cable *CableStudy

func getCable(t *testing.T) *CableStudy {
	t.Helper()
	if cable == nil {
		cable = NewCableStudy(7)
		cable.Result("comcast")
		cable.Result("charter")
	}
	return cable
}

func TestTable1Shape(t *testing.T) {
	st := getCable(t)
	tbl := st.Table1()
	com := tbl["comcast"]
	cha := tbl["charter"]
	// Paper Table 1: Comcast 5/11/12, Charter 0/0/6. Allow small
	// classification error on Comcast's boundary cases.
	if com[comap.AggSingle] < 3 || com[comap.AggSingle] > 7 {
		t.Errorf("comcast single-agg regions = %d, want ~5", com[comap.AggSingle])
	}
	if com[comap.AggTwo] < 8 || com[comap.AggTwo] > 14 {
		t.Errorf("comcast two-agg regions = %d, want ~11", com[comap.AggTwo])
	}
	if com[comap.AggMulti] < 9 || com[comap.AggMulti] > 15 {
		t.Errorf("comcast multi-level regions = %d, want ~12", com[comap.AggMulti])
	}
	if cha[comap.AggMulti] != 6 || cha[comap.AggSingle] != 0 || cha[comap.AggTwo] != 0 {
		t.Errorf("charter classification = %v, want all 6 multi-level", cha)
	}
}

func TestFigure7Contrast(t *testing.T) {
	st := getCable(t)
	cos, aggs := st.Figure7()
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if len(cos["comcast"]) != 28 || len(cos["charter"]) != 6 {
		t.Fatalf("region counts: comcast=%d charter=%d", len(cos["comcast"]), len(cos["charter"]))
	}
	if mean(cos["charter"]) < 2.5*mean(cos["comcast"]) {
		t.Errorf("charter regions should hold far more COs: %.1f vs %.1f", mean(cos["charter"]), mean(cos["comcast"]))
	}
	if mean(aggs["charter"]) < 2*mean(aggs["comcast"]) {
		t.Errorf("charter regions should hold more AggCOs: %.1f vs %.1f", mean(aggs["charter"]), mean(aggs["comcast"]))
	}
}

func TestTables3And4Populated(t *testing.T) {
	st := getCable(t)
	for _, isp := range []string{"comcast", "charter"} {
		m := st.Table3(isp)
		if m.Initial == 0 || m.Final < m.Initial {
			t.Errorf("%s mapping stats implausible: %+v", isp, m)
		}
		p := st.Table4(isp)
		if p.InitialCOAdjs == 0 || p.BackboneCOAdjs == 0 {
			t.Errorf("%s prune stats implausible: %+v", isp, p)
		}
	}
}

func TestEntriesShape(t *testing.T) {
	st := getCable(t)
	com := st.Entries("comcast")
	// Ground truth has 53 (region, backboneCO) pairs; the paper
	// observed 57 of ~60 and missed three regions' second entries.
	if com.BackboneEntryPairs < 40 || com.BackboneEntryPairs > 60 {
		t.Errorf("comcast backbone entry pairs = %d, want ~50", com.BackboneEntryPairs)
	}
	if com.RegionsUnderTwo < 2 || com.RegionsUnderTwo > 6 {
		t.Errorf("comcast regions with <2 backbone entries = %d, want ~3", com.RegionsUnderTwo)
	}
	if com.InterRegionEntries == 0 {
		t.Error("no inter-region entries found (centralca/hartford)")
	}
	cha := st.Entries("charter")
	if cha.RegionsWithAnyEntry != 6 {
		t.Errorf("charter regions with entries = %d, want 6", cha.RegionsWithAnyEntry)
	}
	if cha.InterRegionEntries != 0 {
		t.Errorf("charter inter-region entries = %d, want 0 (§5.2.5)", cha.InterRegionEntries)
	}
}

func TestRedundancyContrast(t *testing.T) {
	st := getCable(t)
	com := st.RedundancyStats("comcast")
	cha := st.RedundancyStats("charter")
	// §B.4: 11.4% vs 37.7% single-upstream EdgeCOs.
	if com.SingleUpstreamFrac >= cha.SingleUpstreamFrac {
		t.Errorf("single-upstream: comcast %.3f should be below charter %.3f",
			com.SingleUpstreamFrac, cha.SingleUpstreamFrac)
	}
	if com.SingleUpstreamFrac < 0.03 || com.SingleUpstreamFrac > 0.25 {
		t.Errorf("comcast single-upstream frac = %.3f, want ~0.11", com.SingleUpstreamFrac)
	}
	if cha.SingleUpstreamFrac < 0.2 || cha.SingleUpstreamFrac > 0.55 {
		t.Errorf("charter single-upstream frac = %.3f, want ~0.38", cha.SingleUpstreamFrac)
	}
	// Excluding the southeast should lower Charter's fraction (§B.4's
	// 37.7% -> 29.0%).
	exSE := st.RedundancyStats("charter", "southeast")
	if exSE.SingleUpstreamFrac >= cha.SingleUpstreamFrac {
		t.Errorf("excluding southeast should reduce the fraction: %.3f vs %.3f",
			exSE.SingleUpstreamFrac, cha.SingleUpstreamFrac)
	}
	// §5.5: ~7.7x as many EdgeCOs as AggCOs across both operators.
	totalEdge := com.EdgeCOs + cha.EdgeCOs
	totalAgg := com.AggCOs + cha.AggCOs
	ratio := float64(totalEdge) / float64(totalAgg)
	if ratio < 4 || ratio > 12 {
		t.Errorf("EdgeCO:AggCO ratio = %.1f, want ~7.7", ratio)
	}
}

func TestDirectTargetingGain(t *testing.T) {
	st := getCable(t)
	// §5.1: 5.3x (Comcast) and 2.6x (Charter) more CO interconnections
	// from direct targeting than from the /24 sweep.
	for _, isp := range []string{"comcast", "charter"} {
		gain := st.DirectTargetingGain(isp)
		if gain < 1.0 {
			t.Errorf("%s direct-targeting gain = %.2f, want > 1", isp, gain)
		}
	}
}

func TestScoresHigh(t *testing.T) {
	st := getCable(t)
	for _, isp := range []string{"comcast", "charter"} {
		sc := st.Score(isp)
		if f1 := sc.MeanF1(); f1 < 0.85 {
			t.Errorf("%s mean CO F1 = %.3f, want >= 0.85\n%s", isp, f1, sc)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	st := getCable(t)
	rows := st.Figure9(12)
	med := map[string]map[string]float64{}
	for _, r := range rows {
		if med[r.Provider] == nil {
			med[r.Provider] = map[string]float64{}
		}
		med[r.Provider][r.State] = r.MedianMs
	}
	for _, prov := range []string{"aws", "azure", "gcloud"} {
		m := med[prov]
		if m == nil {
			t.Fatalf("no rows for %s", prov)
		}
		if m["CT"] == 0 || m["MA"] == 0 {
			t.Fatalf("%s: missing states: %v", prov, m)
		}
		if m["CT"] <= m["MA"] {
			t.Errorf("%s: CT %.1fms should exceed MA %.1fms (Fig. 9 anomaly)", prov, m["CT"], m["MA"])
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	st := getCable(t)
	fig := st.Figure10(10, 250)
	if fig.CloudToEdge.Len() < 100 || fig.AggToEdge.Len() < 100 {
		t.Fatalf("thin CDFs: cloud=%d agg=%d", fig.CloudToEdge.Len(), fig.AggToEdge.Len())
	}
	// Fig. 10a: most EdgeCOs beyond 5 ms of the nearest cloud.
	if at5 := fig.CloudToEdge.At(5); at5 > 0.45 {
		t.Errorf("cloud-to-edge CDF at 5ms = %.2f, want most mass beyond 5ms", at5)
	}
	// Fig. 10b: >80%% of EdgeCOs within 5 ms of their AggCO.
	if at5 := fig.AggToEdge.At(5); at5 < 0.75 {
		t.Errorf("agg-to-edge CDF at 5ms = %.2f, want >= 0.75", at5)
	}
}

var att *ATTStudy

func getATT(t *testing.T) *ATTStudy {
	t.Helper()
	if att == nil {
		att = NewATTStudy(21)
	}
	return att
}

func TestFigure13Summary(t *testing.T) {
	st := getATT(t)
	fig := st.Figure13()
	if fig.BackboneRouters != 2 {
		t.Errorf("backbone routers = %d, want 2", fig.BackboneRouters)
	}
	if fig.AggRouters < 3 || fig.AggRouters > 6 {
		t.Errorf("agg routers = %d, want ~4", fig.AggRouters)
	}
	if fig.EdgeRouters < 70 || fig.EdgeRouters > 90 {
		t.Errorf("edge routers = %d, want ~84", fig.EdgeRouters)
	}
	if fig.EdgeCOs < 36 || fig.EdgeCOs > 46 {
		t.Errorf("EdgeCOs = %d, want ~42", fig.EdgeCOs)
	}
	if fig.BackboneCOs != 1 || !fig.FullMesh {
		t.Errorf("backbone COs = %d (mesh=%v), want 1 full-mesh office", fig.BackboneCOs, fig.FullMesh)
	}
}

func TestATTStudyTable2(t *testing.T) {
	st := getATT(t)
	outliers, mean := st.LatencyOutliers(20)
	if mean < 2 || mean > 8 {
		t.Errorf("mean latency %.1fms, want single digits (paper: 4.3)", mean)
	}
	if outliers == 0 {
		t.Error("no >2x outliers (paper: Calexico and El Centro)")
	}
	hist := st.Table2(20)
	total := 0
	for _, c := range hist.Counts {
		total += c
	}
	if total < 20 {
		t.Errorf("histogram holds %d devices", total)
	}
}

func TestMcTracerouteGain(t *testing.T) {
	st := getATT(t)
	ark, mc := st.McComparison()
	if ark == 0 || mc == 0 {
		t.Fatalf("path counts ark=%d mc=%d", ark, mc)
	}
	if float64(ark) > 0.8*float64(mc) {
		t.Errorf("ark paths (%d) should be roughly half of McTraceroute's (%d)", ark, mc)
	}
}

var mob *MobileStudy

func getMobile(t *testing.T) *MobileStudy {
	t.Helper()
	if mob == nil {
		mob = NewMobileStudy(51)
	}
	return mob
}

func TestFigure14Energy(t *testing.T) {
	st := getMobile(t)
	rows := st.Figure14()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	seq, par := rows[0], rows[1]
	saving := 1 - par.EnergymAh/seq.EnergymAh
	// The paper measured 38%; the simulator's silent-hop timeouts give
	// parallel probing a somewhat larger edge. The claim under test is
	// a substantial-but-not-total reduction.
	if saving < 0.2 || saving > 0.7 {
		t.Errorf("energy saving = %.2f, want ~0.4-0.6 (Fig. 14)", saving)
	}
	if par.BatteryDays <= seq.BatteryDays {
		t.Error("parallel mode should extend battery life")
	}
	if par.BatteryDays < 8 || par.BatteryDays > 16 {
		t.Errorf("battery life = %.1f days, want ~12", par.BatteryDays)
	}
}

func TestFigure15Coverage(t *testing.T) {
	st := getMobile(t)
	states, rates := st.Figure15()
	if len(states) < 40 {
		t.Errorf("states = %d, want >= 40", len(states))
	}
	for name, rate := range rates {
		if rate < 0.6 || rate > 0.95 {
			t.Errorf("%s success rate = %.2f", name, rate)
		}
	}
}

func TestFigure17Classification(t *testing.T) {
	st := getMobile(t)
	want := map[string]string{
		"att-mobile": "single-edge",
		"verizon":    "multi-edge",
		"tmobile":    "multi-backbone",
	}
	for carrier, arch := range want {
		if got := st.Analysis(carrier).Arch.String(); got != arch {
			t.Errorf("%s arch = %s, want %s", carrier, got, arch)
		}
	}
}

func TestPGWTables(t *testing.T) {
	st := getMobile(t)
	for _, carrier := range []string{"att-mobile", "verizon"} {
		rows := st.PGWTable(carrier)
		if len(rows) < 8 {
			t.Errorf("%s: only %d regions visited", carrier, len(rows))
		}
		for _, r := range rows {
			if r.Inferred > r.Truth {
				t.Errorf("%s/%s: inferred %d PGWs exceeds truth %d", carrier, r.Region, r.Inferred, r.Truth)
			}
		}
	}
}

func TestFigure18Maps(t *testing.T) {
	st := getMobile(t)
	attHexes := st.Figure18("att-mobile")
	vzHexes := st.Figure18("verizon")
	if len(attHexes) < 50 || len(vzHexes) < 50 {
		t.Fatalf("sparse maps: att=%d vz=%d", len(attHexes), len(vzHexes))
	}
	// Verizon's denser EdgeCO deployment yields lower national median
	// latency than AT&T's 11 datacenters (Fig. 18a vs 18b).
	med := func(hexes []float64) float64 {
		c := append([]float64(nil), hexes...)
		for i := 1; i < len(c); i++ {
			for j := i; j > 0 && c[j-1] > c[j]; j-- {
				c[j-1], c[j] = c[j], c[j-1]
			}
		}
		return c[len(c)/2]
	}
	var attVals, vzVals []float64
	for _, h := range attHexes {
		attVals = append(attVals, h.Value)
	}
	for _, h := range vzHexes {
		vzVals = append(vzVals, h.Value)
	}
	if med(vzVals) >= med(attVals) {
		t.Errorf("verizon median hex RTT %.1f should be below att's %.1f", med(vzVals), med(attVals))
	}
}
