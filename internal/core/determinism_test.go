package core

// Figure outputs walk the inferred region graphs; these tests call each
// figure twice over one cached study and demand identical output, so a
// figure that iterates a Go map without sorting fails here rather than
// producing row orders that shuffle between runs.

import (
	"reflect"
	"testing"
)

func TestFigure7Deterministic(t *testing.T) {
	st := getCable(t)
	cos1, aggs1 := st.Figure7()
	cos2, aggs2 := st.Figure7()
	if !reflect.DeepEqual(cos1, cos2) || !reflect.DeepEqual(aggs1, aggs2) {
		t.Error("Figure7 output differs between identical calls")
	}
}

func TestFigure9Deterministic(t *testing.T) {
	st := getCable(t)
	r1 := st.Figure9(1)
	r2 := st.Figure9(1)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("Figure9 rows differ between identical calls:\n%+v\n%+v", r1, r2)
	}
}

func TestFigure10Deterministic(t *testing.T) {
	st := getCable(t)
	f1 := st.Figure10(1, 40)
	f2 := st.Figure10(1, 40)
	if !reflect.DeepEqual(f1, f2) {
		t.Error("Figure10 CDFs differ between identical calls")
	}
}
