package core

import (
	"fmt"
	"testing"

	"repro/internal/topogen"
)

// BenchmarkScaleCampaign is the scaling curve behind `make bench-scale`:
// the full comcast pipeline — topology generation, measurement campaign
// through the compiled trie FIB, and inference — at 1x, 3x, and 10x the
// paper footprint (10x is 280 comcast regions and a >=1M allocated
// subscriber floor). benchjson's -scale-gate flag fails the build when
// the 10x/1x time ratio goes superlinear past the gate, so a regression
// that reintroduces per-bit-length FIB probing (or any other
// scale-quadratic term) cannot land silently.
func BenchmarkScaleCampaign(b *testing.B) {
	for _, mult := range []int{1, 3, 10} {
		b.Run(fmt.Sprintf("scale=%dx", mult), func(b *testing.B) {
			var sc topogen.Scale
			if mult > 1 {
				sc = topogen.Scale{Regions: mult, Subscribers: mult * 100000}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st := NewCableStudy(7, WithScale(sc))
				r := st.Result("comcast")
				if len(r.Inference.Regions) == 0 {
					b.Fatal("scaled campaign inferred no regions")
				}
			}
		})
	}
}
