// Package core is the library facade: it assembles the simulated
// scenarios, runs the paper's three measurement studies (cable §5,
// AT&T §6, mobile §7), and exposes the per-table and per-figure results
// the evaluation reports.
//
// Downstream users build a study for a seed, run it, and read results:
//
//	st := core.NewCableStudy(1)
//	res := st.Result("comcast")
//	fmt.Println(st.Table1())
//
// Constructors take functional options for the shared study knobs:
//
//	st := core.NewCableStudy(1,
//		core.WithParallelism(8),    // probe-scheduler workers
//		core.WithProbeBudget(5000), // cap campaign traceroutes
//	)
//
// Parallelism never changes results: the probe scheduler
// (internal/probesched) gathers probe results in canonical order, so a
// study produces byte-identical tables at any worker count.
package core
