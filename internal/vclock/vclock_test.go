package vclock

import (
	"testing"
	"time"
)

func TestClock(t *testing.T) {
	start := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	c := New(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Advance(time.Second)
	if got := c.Since(start); got != time.Second {
		t.Errorf("Since = %v", got)
	}
	c.Advance(-time.Hour)
	if c.Now().Before(start) {
		t.Error("negative Advance moved time backwards")
	}
	c.AdvanceTo(start) // earlier: ignored
	if got := c.Since(start); got != time.Second {
		t.Errorf("AdvanceTo moved backwards: Since = %v", got)
	}
	later := start.Add(time.Hour)
	c.AdvanceTo(later)
	if !c.Now().Equal(later) {
		t.Errorf("AdvanceTo = %v", c.Now())
	}
}
