// Package vclock provides the virtual clock that measurement campaigns
// run on. Probes take (virtual) time proportional to their RTTs and
// timeouts, IP-ID counters advance with it, and multi-day campaigns such
// as ShipTraceroute complete instantly in wall-clock terms while keeping
// realistic timing relationships.
//
// Clocks are safe for concurrent use. The parallel probe scheduler
// (internal/probesched) gives every job a private Fork of the campaign
// clock and re-merges the elapsed virtual time in canonical job order,
// so concurrent probes observe consistent virtual time regardless of
// how the runtime interleaves them.
package vclock

import (
	"sync/atomic"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero Clock is
// not usable; construct with New (or Fork an existing clock).
//
// The representation is a fixed base instant plus an atomic nanosecond
// offset: reading and advancing are single atomic operations, which
// matters because probe loops consult the clock once or twice per
// probe. Wall-clock arithmetic on time.Time is exact integer
// nanoseconds, so base.Add(sum of advances) reads identically to the
// equivalent sequence of cumulative Adds.
type Clock struct {
	base time.Time
	off  atomic.Int64 // nanoseconds since base
}

// New returns a clock starting at the given instant.
func New(start time.Time) *Clock {
	return &Clock{base: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	return c.base.Add(time.Duration(c.off.Load()))
}

// Advance moves the clock forward by d (negative values are ignored so a
// buggy caller cannot move time backwards).
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.off.Add(int64(d))
	}
}

// AdvanceTo jumps to a later instant; earlier instants are ignored.
func (c *Clock) AdvanceTo(t time.Time) {
	target := int64(t.Sub(c.base))
	for {
		cur := c.off.Load()
		if target <= cur {
			return
		}
		if c.off.CompareAndSwap(cur, target) {
			return
		}
	}
}

// Reset rewinds the clock to t unconditionally — the one operation
// allowed to move time backwards. It exists for clock reuse: the probe
// scheduler keeps one clock per worker and resets it between jobs
// instead of allocating a fresh fork per job.
func (c *Clock) Reset(t time.Time) {
	c.off.Store(int64(t.Sub(c.base)))
}

// Since reports the elapsed virtual time from t.
func (c *Clock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Fork returns an independent child clock starting at this clock's
// current instant. Advancing the child never moves the parent: the
// scheduler accounts the child's elapsed time back into the parent
// explicitly, in canonical job order, so campaign timing is independent
// of goroutine interleaving.
func (c *Clock) Fork() *Clock {
	return New(c.Now())
}
