// Package vclock provides the virtual clock that measurement campaigns
// run on. Probes take (virtual) time proportional to their RTTs and
// timeouts, IP-ID counters advance with it, and multi-day campaigns such
// as ShipTraceroute complete instantly in wall-clock terms while keeping
// realistic timing relationships.
//
// Clocks are safe for concurrent use. The parallel probe scheduler
// (internal/probesched) gives every job a private Fork of the campaign
// clock and re-merges the elapsed virtual time in canonical job order,
// so concurrent probes observe consistent virtual time regardless of
// how the runtime interleaves them.
package vclock

import (
	"sync"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero Clock is
// not usable; construct with New (or Fork an existing clock).
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// New returns a clock starting at the given instant.
func New(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative values are ignored so a
// buggy caller cannot move time backwards).
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.mu.Lock()
		c.now = c.now.Add(d)
		c.mu.Unlock()
	}
}

// AdvanceTo jumps to a later instant; earlier instants are ignored.
func (c *Clock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}

// Since reports the elapsed virtual time from t.
func (c *Clock) Since(t time.Time) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now.Sub(t)
}

// Fork returns an independent child clock starting at this clock's
// current instant. Advancing the child never moves the parent: the
// scheduler accounts the child's elapsed time back into the parent
// explicitly, in canonical job order, so campaign timing is independent
// of goroutine interleaving.
func (c *Clock) Fork() *Clock {
	return New(c.Now())
}
