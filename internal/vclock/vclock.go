// Package vclock provides the virtual clock that measurement campaigns
// run on. Probes take (virtual) time proportional to their RTTs and
// timeouts, IP-ID counters advance with it, and multi-day campaigns such
// as ShipTraceroute complete instantly in wall-clock terms while keeping
// realistic timing relationships.
package vclock

import "time"

// Clock is a monotonically advancing virtual clock.
type Clock struct {
	now time.Time
}

// New returns a clock starting at the given instant.
func New(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Advance moves the clock forward by d (negative values are ignored so a
// buggy caller cannot move time backwards).
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now = c.now.Add(d)
	}
}

// AdvanceTo jumps to a later instant; earlier instants are ignored.
func (c *Clock) AdvanceTo(t time.Time) {
	if t.After(c.now) {
		c.now = t
	}
}

// Since reports the elapsed virtual time from t.
func (c *Clock) Since(t time.Time) time.Duration { return c.now.Sub(t) }
