package ipalloc

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestNextHostSkipsNetworkAndBroadcast(t *testing.T) {
	p := NewPool(netip.MustParsePrefix("10.0.0.0/24"))
	seen := map[netip.Addr]bool{}
	for i := 0; i < 254; i++ {
		a, err := p.NextHost()
		if err != nil {
			t.Fatalf("allocation %d: %v", i, err)
		}
		if seen[a] {
			t.Fatalf("duplicate address %v", a)
		}
		seen[a] = true
		b := a.As4()
		if b[3] == 0 || b[3] == 255 {
			t.Fatalf("allocated %v (network/broadcast)", a)
		}
	}
	if _, err := p.NextHost(); err == nil {
		t.Error("pool should be exhausted after 254 hosts")
	}
}

func TestNextSubnet(t *testing.T) {
	p := NewPool(netip.MustParsePrefix("10.0.0.0/16"))
	a, err := p.NextSubnet(24)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "10.0.0.0/24" {
		t.Errorf("first /24 = %s", a)
	}
	b, err := p.NextSubnet(24)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != "10.0.1.0/24" {
		t.Errorf("second /24 = %s", b)
	}
	// Mixing sizes still yields disjoint subnets.
	c, err := p.NextSubnet(30)
	if err != nil {
		t.Fatal(err)
	}
	if c.Overlaps(a) || c.Overlaps(b) {
		t.Errorf("subnet %s overlaps earlier allocations", c)
	}
	if _, err := p.NextSubnet(8); err == nil {
		t.Error("oversized subnet accepted")
	}
}

func TestNextSubnetExhaustion(t *testing.T) {
	p := NewPool(netip.MustParsePrefix("10.0.0.0/30"))
	if _, err := p.NextSubnet(30); err != nil {
		t.Fatal(err)
	}
	if _, err := p.NextSubnet(30); err == nil {
		t.Error("exhausted pool handed out a subnet")
	}
}

func TestNextP2P(t *testing.T) {
	p := NewPool(netip.MustParsePrefix("172.16.0.0/24"))
	s30, err := p.NextP2P(30)
	if err != nil {
		t.Fatal(err)
	}
	if s30.A.String() != "172.16.0.1" || s30.B.String() != "172.16.0.2" {
		t.Errorf("/30 pair = %v, %v", s30.A, s30.B)
	}
	s31, err := p.NextP2P(31)
	if err != nil {
		t.Fatal(err)
	}
	if !s31.Prefix.Contains(s31.A) || !s31.Prefix.Contains(s31.B) || s31.A == s31.B {
		t.Errorf("/31 pair = %v, %v in %v", s31.A, s31.B, s31.Prefix)
	}
	if s31.Prefix.Overlaps(s30.Prefix) {
		t.Error("p2p subnets overlap")
	}
	if _, err := p.NextP2P(29); err == nil {
		t.Error("non-p2p size accepted")
	}
}

func TestP2PPairsShareSubnet(t *testing.T) {
	p := NewPool(netip.MustParsePrefix("10.1.0.0/16"))
	f := func(n uint8) bool {
		bits := 30
		if n%2 == 0 {
			bits = 31
		}
		s, err := p.NextP2P(bits)
		if err != nil {
			return true // exhaustion is fine for the property
		}
		return s.Prefix.Contains(s.A) && s.Prefix.Contains(s.B) && s.A != s.B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestV6FieldsRoundTrip(t *testing.T) {
	base := netip.MustParseAddr("2600:380::")
	a := V6WithFields(base, Field{32, 8, 0x6c}, Field{48, 4, 0xb})
	if got := V6Bits(a, 32, 8); got != 0x6c {
		t.Errorf("bits 32-39 = %#x, want 0x6c", got)
	}
	if got := V6Bits(a, 48, 4); got != 0xb {
		t.Errorf("bits 48-51 = %#x, want 0xb", got)
	}
	// The paper's AT&T example: 2600:380:6c00::/40 user prefix.
	if got := a.String(); got[:12] != "2600:380:6cb"[:12] {
		// Field at 48 puts 0xb in the 4th nibble of the 4th group:
		// 2600:0380:6c00:b...
		_ = got
	}
	if got := V6Bits(a, 0, 16); got != 0x2600 {
		t.Errorf("bits 0-15 = %#x, want 0x2600", got)
	}
}

func TestV6FieldsProperty(t *testing.T) {
	base := netip.MustParseAddr("2001:4888::")
	f := func(start uint8, length uint8, value uint16) bool {
		s := int(start) % 112
		l := int(length)%16 + 1
		v := uint64(value) & (1<<l - 1)
		a := V6WithFields(base, Field{s, l, v})
		return V6Bits(a, s, l) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestV6LaterFieldWins(t *testing.T) {
	base := netip.MustParseAddr("::")
	a := V6WithFields(base, Field{0, 8, 0xff}, Field{4, 4, 0x0})
	if got := V6Bits(a, 0, 8); got != 0xf0 {
		t.Errorf("overlap result = %#x, want 0xf0", got)
	}
}

func TestV6BitsOutOfRange(t *testing.T) {
	a := netip.MustParseAddr("ffff::ffff")
	// Reading past bit 127 ignores the out-of-range bits.
	if got := V6Bits(a, 120, 8); got != 0xff {
		t.Errorf("last byte = %#x", got)
	}
	_ = V6Bits(a, 126, 8) // must not panic
}
