// Package ipalloc hands out addresses and subnets to the topology
// generators: sequential host addresses, point-to-point /30 and /31
// subnets (the conventions Comcast and Charter use to interconnect CO
// routers, per Appendix B.1), /24 router blocks (AT&T's per-region
// EdgeCO prefixes, per Appendix C), and IPv6 addresses with explicit bit
// fields (the mobile carriers' address plans, per Fig. 16).
package ipalloc

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Pool allocates addresses sequentially from a prefix.
type Pool struct {
	prefix netip.Prefix
	next   netip.Addr
}

// NewPool returns a pool over the given prefix. The first allocation is
// the first address after the prefix base (the .0 network address of an
// IPv4 block is skipped by NextHost).
func NewPool(p netip.Prefix) *Pool {
	return &Pool{prefix: p.Masked(), next: p.Masked().Addr()}
}

// Prefix returns the pool's covering prefix.
func (p *Pool) Prefix() netip.Prefix { return p.prefix }

// NextHost returns the next usable host address, skipping .0 and .255 in
// IPv4 /24 boundaries to stay plausible.
func (p *Pool) NextHost() (netip.Addr, error) {
	for {
		p.next = p.next.Next()
		if !p.prefix.Contains(p.next) {
			return netip.Addr{}, fmt.Errorf("ipalloc: pool %s exhausted", p.prefix)
		}
		if p.next.Is4() {
			b := p.next.As4()
			if b[3] == 0 || b[3] == 255 {
				continue
			}
		}
		return p.next, nil
	}
}

// NextSubnet carves the next subnet of the given prefix length out of
// the pool, advancing past it.
func (p *Pool) NextSubnet(bits int) (netip.Prefix, error) {
	if bits < p.prefix.Bits() {
		return netip.Prefix{}, fmt.Errorf("ipalloc: subnet /%d larger than pool %s", bits, p.prefix)
	}
	base := p.next
	if base == p.prefix.Addr() {
		// Nothing allocated yet: the first subnet starts at the base.
	} else {
		// Round up to the next /bits boundary after the last handout.
		base = nextBoundary(base, bits)
	}
	sub := netip.PrefixFrom(base, bits).Masked()
	if !p.prefix.Contains(sub.Addr()) || !p.prefix.Contains(lastAddr(sub)) {
		return netip.Prefix{}, fmt.Errorf("ipalloc: pool %s exhausted for /%d", p.prefix, bits)
	}
	p.next = lastAddr(sub)
	return sub, nil
}

func nextBoundary(a netip.Addr, bits int) netip.Addr {
	pfx := netip.PrefixFrom(a, bits).Masked()
	return lastAddr(pfx).Next()
}

func lastAddr(p netip.Prefix) netip.Addr {
	if p.Addr().Is4() {
		v := binary.BigEndian.Uint32(p.Addr().AsSlice())
		host := uint32(1)<<(32-p.Bits()) - 1
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v|host)
		return netip.AddrFrom4(b)
	}
	b := p.Addr().As16()
	for i := p.Bits(); i < 128; i++ {
		b[i/8] |= 1 << (7 - i%8)
	}
	return netip.AddrFrom16(b)
}

// P2P is a point-to-point subnet with its two usable addresses.
type P2P struct {
	Prefix netip.Prefix
	A, B   netip.Addr
}

// NextP2P carves a /30 (two usable addresses at offsets 1 and 2) or /31
// (offsets 0 and 1) point-to-point subnet from the pool.
func (p *Pool) NextP2P(bits int) (P2P, error) {
	if bits != 30 && bits != 31 {
		return P2P{}, fmt.Errorf("ipalloc: point-to-point subnets are /30 or /31, got /%d", bits)
	}
	sub, err := p.NextSubnet(bits)
	if err != nil {
		return P2P{}, err
	}
	if bits == 31 {
		return P2P{Prefix: sub, A: sub.Addr(), B: sub.Addr().Next()}, nil
	}
	a := sub.Addr().Next()
	return P2P{Prefix: sub, A: a, B: a.Next()}, nil
}

// V6WithFields builds an IPv6 address by writing bit fields onto a base
// address. Fields may overlap previous writes; later fields win. This is
// how the mobile generators express the Fig. 16 address plans, e.g.
//
//	V6WithFields(base, Field{32, 8, regionID}, Field{48, 4, pgwID})
func V6WithFields(base netip.Addr, fields ...Field) netip.Addr {
	b := base.As16()
	for _, f := range fields {
		setBits(&b, f.Start, f.Len, f.Value)
	}
	return netip.AddrFrom16(b)
}

// Field is one bit-aligned value inside an IPv6 address: Len bits
// starting at bit Start (0 = most significant bit of the address).
type Field struct {
	Start int
	Len   int
	Value uint64
}

func setBits(b *[16]byte, start, length int, value uint64) {
	for i := 0; i < length; i++ {
		bit := start + i
		if bit < 0 || bit > 127 {
			continue
		}
		mask := byte(1) << (7 - bit%8)
		if value>>(length-1-i)&1 == 1 {
			b[bit/8] |= mask
		} else {
			b[bit/8] &^= mask
		}
	}
}

// V6Bits extracts Len bits starting at Start from an IPv6 address. It is
// the read-side counterpart of V6WithFields and the primitive the mobile
// field-inference pipeline uses to compare address regions.
func V6Bits(a netip.Addr, start, length int) uint64 {
	b := a.As16()
	var v uint64
	for i := 0; i < length; i++ {
		bit := start + i
		if bit < 0 || bit > 127 {
			continue
		}
		v <<= 1
		if b[bit/8]>>(7-bit%8)&1 == 1 {
			v |= 1
		}
	}
	return v
}
