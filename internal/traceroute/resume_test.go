package traceroute

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/segfault"
)

// durableWindows appends windows [from, to) to w, sealing and
// checkpointing after each. Windows overlap in the shared view slice so
// a resumed writer must re-intern addresses the recovered prefix
// already interned — a wrong symbol-table rebuild corrupts the replay.
func durableWindows(w *SegmentWriter, views []TraceView, from, to int) error {
	for i := from; i < to; i++ {
		for _, tv := range views[i*3 : i*3+6] {
			if err := w.Append("sweep", tv); err != nil {
				return err
			}
		}
		if err := w.Seal(); err != nil {
			return err
		}
		state := json.RawMessage(fmt.Sprintf(`{"win":%d}`, i))
		if err := w.Checkpoint(i+1, state); err != nil {
			return err
		}
	}
	return nil
}

const resumeTestWindows = 6

func resumeTestViews(store *HopStore) []TraceView {
	rng := rand.New(rand.NewSource(11))
	return randomTraces(rng, store, resumeTestWindows*3+3)
}

// writeReferenceLog writes the full uninterrupted durable log and
// returns the replayed trace fingerprints every kill-and-resume variant
// must reproduce.
func writeReferenceLog(t *testing.T, views []TraceView) []string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "traces.seg")
	w, err := CreateDurableSegmentLog(path, "fp", segfault.OS)
	if err != nil {
		t.Fatal(err)
	}
	if err := durableWindows(w, views, 0, resumeTestWindows); err != nil {
		t.Fatal(err)
	}
	if err := w.MarkComplete(resumeTestWindows, json.RawMessage(`{"done":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return replayLog(t, path)
}

func TestDurableKillAndResume(t *testing.T) {
	var store HopStore
	views := resumeTestViews(&store)
	want := writeReferenceLog(t, views)

	// Each case kills the writer at a different point. wantWin is how
	// many sealed windows recovery must salvage; -1 means nothing
	// (fresh start).
	cases := []struct {
		name    string
		plan    segfault.Plan
		wantWin int
	}{
		// Log sync #1 is the header, #k+1 seals window k-1 (1-based).
		{"sync-crash-before-any-checkpoint", segfault.Plan{CrashOnLogSync: 2}, -1},
		{"sync-crash-window3", segfault.Plan{CrashOnLogSync: 5}, 3},
		{"sync-crash-last-window", segfault.Plan{CrashOnLogSync: resumeTestWindows + 1}, resumeTestWindows - 1},
		// Log write #1 is the header flush, #k+1 is the k-th window's
		// frame (1-based): tearing it salvages the k-1 before it.
		{"torn-write-window2", segfault.Plan{Seed: 7, CrashOnLogWrite: 3}, 1},
		{"torn-write-window4", segfault.Plan{Seed: 40, CrashOnLogWrite: 5}, 3},
		// Rename #1 publishes the empty manifest; window k (1-based)
		// renames at seal (#2k) and checkpoint (#2k+1). Crashing either
		// leaves window k durable but uncheckpointed, so it is dropped.
		{"rename-crash-at-seal3", segfault.Plan{CrashOnRename: 6}, 2},
		{"rename-crash-at-checkpoint3", segfault.Plan{CrashOnRename: 7}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "traces.seg")
			fs := segfault.Inject(segfault.OS, tc.plan)
			w, err := CreateDurableSegmentLog(path, "fp", fs)
			if err != nil {
				t.Fatalf("create: %v", err)
			}
			err = durableWindows(w, views, 0, resumeTestWindows)
			if !errors.Is(err, segfault.ErrCrash) {
				t.Fatalf("campaign survived the fault plan: %v", err)
			}
			w.Close() // a dying process still drops its descriptors

			// Restart: a fresh FS (the crash latch dies with the process)
			// and a resume-or-fresh open.
			w2, res, err := OpenDurableSegmentLog(path, "fp", segfault.OS)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			from := 0
			if tc.wantWin < 0 {
				if res.Resumed {
					t.Fatalf("expected fresh start, got resume: %+v", res)
				}
			} else {
				if !res.Resumed || res.Windows != tc.wantWin || res.FirstMissing != tc.wantWin {
					t.Fatalf("resume = %+v, want %d windows", res, tc.wantWin)
				}
				if res.Paths != tc.wantWin {
					t.Fatalf("resume paths = %d, want %d", res.Paths, tc.wantWin)
				}
				if n := len(res.Checkpoints); n != tc.wantWin {
					t.Fatalf("%d checkpoints survived, want %d", n, tc.wantWin)
				}
				from = tc.wantWin
			}
			if err := durableWindows(w2, views, from, resumeTestWindows); err != nil {
				t.Fatalf("resume append: %v", err)
			}
			if err := w2.MarkComplete(resumeTestWindows, json.RawMessage(`{"done":true}`)); err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			got := replayLog(t, path)
			if len(got) != len(want) {
				t.Fatalf("resumed log replays %d traces, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trace %d diverged after resume:\n got %s\nwant %s", i, got[i], want[i])
				}
			}

			// Third boot: the log is complete — no writer, replay only.
			w3, res3, err := OpenDurableSegmentLog(path, "fp", segfault.OS)
			if err != nil {
				t.Fatal(err)
			}
			if w3 != nil || !res3.Complete || res3.Windows != resumeTestWindows {
				t.Fatalf("complete reopen = writer %v, %+v", w3, res3)
			}
		})
	}
}

func TestDurableResumeRejectsForeignFingerprint(t *testing.T) {
	var store HopStore
	views := resumeTestViews(&store)
	path := filepath.Join(t.TempDir(), "traces.seg")
	w, err := CreateDurableSegmentLog(path, "fp-a", segfault.OS)
	if err != nil {
		t.Fatal(err)
	}
	if err := durableWindows(w, views, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, res, err := OpenDurableSegmentLog(path, "fp-b", segfault.OS)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.Resumed {
		t.Fatalf("resumed across a fingerprint change: %+v", res)
	}
	if n, _ := segfault.OS.Size(path); n != 8 {
		t.Fatalf("fresh log is %d bytes, want header only", n)
	}
}

func TestDurableResumeRejectsGarbageManifest(t *testing.T) {
	var store HopStore
	views := resumeTestViews(&store)
	path := filepath.Join(t.TempDir(), "traces.seg")
	w, err := CreateDurableSegmentLog(path, "fp", segfault.OS)
	if err != nil {
		t.Fatal(err)
	}
	if err := durableWindows(w, views, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ManifestPath(path), []byte("not json{"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, res, err := OpenDurableSegmentLog(path, "fp", segfault.OS)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.Resumed {
		t.Fatalf("resumed from a garbage manifest: %+v", res)
	}
}

// TestRecoveryClassification damages every region of a sealed frame —
// bit-flips across the whole payload, both frame-header fields, and a
// truncation at every byte of the final frame — and asserts the decode
// error class plus the exact number of windows recovery salvages.
func TestRecoveryClassification(t *testing.T) {
	var store HopStore
	views := resumeTestViews(&store)
	dir := t.TempDir()
	path := filepath.Join(dir, "traces.seg")
	w, err := CreateDurableSegmentLog(path, "fp", segfault.OS)
	if err != nil {
		t.Fatal(err)
	}
	const nWin = 3
	if err := durableWindows(w, views, 0, nWin); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	manifestBytes, err := os.ReadFile(ManifestPath(path))
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeManifest(manifestBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != nWin {
		t.Fatalf("reference log has %d windows, want %d", len(m.Segments), nWin)
	}

	// check writes a damaged copy, asserts the sequential decoder's
	// error class, then asserts recovery salvages exactly wantWin
	// windows (or starts fresh for wantWin == 0: no checkpoint
	// precedes window 0).
	check := func(t *testing.T, data []byte, wantErr error, wantWin int) {
		t.Helper()
		d := filepath.Join(t.TempDir(), "damaged")
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(d, "traces.seg")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ManifestPath(p), manifestBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if derr := decodeAll(p); !errors.Is(derr, wantErr) {
			t.Fatalf("decode error = %v, want %v", derr, wantErr)
		}
		w2, res, err := OpenDurableSegmentLog(p, "fp", segfault.OS)
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		if w2 != nil {
			defer w2.Close()
		}
		switch {
		case wantWin == 0 && res.Resumed:
			t.Fatalf("salvaged %d windows from damage before any checkpoint", res.Windows)
		case wantWin > 0 && (!res.Resumed || res.Windows != wantWin):
			t.Fatalf("recovery = %+v, want %d windows", res, wantWin)
		}
	}

	for win := 0; win < nWin; win++ {
		rec := m.Segments[win]
		lo, hi := rec.Offset, rec.Offset+rec.Length
		t.Run(fmt.Sprintf("win%d/flip-every-payload-byte", win), func(t *testing.T) {
			for off := lo + 8; off < hi; off++ {
				data := append([]byte(nil), good...)
				data[off] ^= 0x10
				check(t, data, ErrCorruptSegment, win)
			}
		})
		t.Run(fmt.Sprintf("win%d/flip-crc", win), func(t *testing.T) {
			data := append([]byte(nil), good...)
			data[lo+4] ^= 0x01
			check(t, data, ErrCorruptSegment, win)
		})
		t.Run(fmt.Sprintf("win%d/len-oversized", win), func(t *testing.T) {
			data := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(data[lo:], 1<<30)
			check(t, data, ErrTruncatedSegment, win)
		})
		t.Run(fmt.Sprintf("win%d/len-shrunk", win), func(t *testing.T) {
			data := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(data[lo:], uint32(rec.Length)-8-1)
			check(t, data, ErrCorruptSegment, win)
		})
	}
	// Truncate the log at every byte inside the final frame: always a
	// torn tail, always salvaging everything before it.
	last := m.Segments[nWin-1]
	t.Run("truncate-every-final-frame-byte", func(t *testing.T) {
		for cut := last.Offset + 1; cut < last.Offset+last.Length; cut++ {
			check(t, good[:cut], ErrTruncatedSegment, nWin-1)
		}
	})
	// Truncating exactly at a frame boundary is a clean-looking log
	// that simply misses windows; recovery still resumes there.
	t.Run("truncate-at-boundary", func(t *testing.T) {
		check(t, good[:last.Offset], nil, nWin-1)
	})
}
