// Manifest: the durable index over a segment log. The log alone says
// what was measured; the manifest says what is *known to be durable*
// and where collection can legally restart. It is rewritten via
// write-temp + fsync + rename after every sealed window and every
// checkpoint, so at any crash instant the manifest on disk is a
// complete, internally consistent description of some sealed prefix of
// the log — never a partial write.
//
// Resume trusts the intersection: a window counts only if the manifest
// records it AND its bytes decode with a matching CRC, and collection
// restarts at the newest checkpoint inside that validated prefix.
// Everything past the cut (torn frames, sealed-but-uncheckpointed
// windows from a crash between log fsync and manifest rename) is
// truncated away and re-measured — O(missing windows) of re-work, by
// construction.
package traceroute

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// manifestSchema is the manifest format version. It is part of the
// compatibility check, alongside the segment-log segVersion.
const manifestSchema = 1

// ErrBadManifest reports a manifest that fails decode or validation.
// Test with errors.Is.
var ErrBadManifest = errors.New("traceroute: bad manifest")

// SegmentRecord describes one sealed window of the log.
type SegmentRecord struct {
	// Offset is the byte offset of the frame header in the log.
	Offset int64 `json:"offset"`
	// Length is the full frame length (8-byte header + payload).
	Length int64 `json:"length"`
	// CRC is the frame's payload CRC32, duplicated from the log so
	// validation can match frames to records without trusting either
	// side alone.
	CRC uint32 `json:"crc"`
	// Stage is the collection stage the window belongs to.
	Stage string `json:"stage"`
	// Traces is the window's trace count.
	Traces int `json:"traces"`
}

// Checkpoint marks a log offset where collection may resume: a frame
// boundary at which the caller snapshotted its cursor (clock, probe
// ledger, breaker — whatever State carries; the log layer does not
// interpret it).
type Checkpoint struct {
	// Offset is the log length when the checkpoint was taken. Every
	// sealed window ends exactly at some checkpointable offset.
	Offset int64 `json:"offset"`
	// Paths counts the trace paths durable at this checkpoint, a cheap
	// cross-check the resuming caller asserts against its replay.
	Paths int `json:"paths"`
	// State is the caller's opaque cursor snapshot.
	State json.RawMessage `json:"state,omitempty"`
}

// Manifest is the JSON document describing a durable segment log.
type Manifest struct {
	// Schema is the manifest format version (manifestSchema).
	Schema int `json:"schema"`
	// SegVersion is the segment-log format version the log was written
	// with.
	SegVersion int `json:"seg_version"`
	// Fingerprint identifies the campaign configuration (seed, scale,
	// window size, fault plan, epoch — hashed by the caller). A resume
	// against a different fingerprint starts fresh: replaying another
	// campaign's windows would silently corrupt the inference.
	Fingerprint string `json:"fingerprint"`
	// Segments lists every sealed window, in log order.
	Segments []SegmentRecord `json:"segments"`
	// Checkpoints lists resume points, in log order.
	Checkpoints []Checkpoint `json:"checkpoints"`
	// Complete is set once collection finished: the log holds every
	// window and a resume replays instead of re-probing.
	Complete bool `json:"complete"`
}

// ManifestPath derives the manifest path for a segment log path
// ("traces.seg" -> "traces.manifest"). The temp file used during
// atomic rewrite is this path + ".tmp".
func ManifestPath(logPath string) string {
	return strings.TrimSuffix(logPath, ".seg") + ".manifest"
}

// DecodeManifest parses and validates manifest bytes. It never panics
// on hostile input; every failure wraps ErrBadManifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if m.Schema != manifestSchema {
		return nil, fmt.Errorf("%w: schema %d, want %d", ErrBadManifest, m.Schema, manifestSchema)
	}
	if m.SegVersion != segVersion {
		return nil, fmt.Errorf("%w: segment version %d, want %d", ErrBadManifest, m.SegVersion, segVersion)
	}
	// Segments must tile a contiguous region starting right after the
	// 8-byte log header.
	off := int64(8)
	for i, s := range m.Segments {
		if s.Offset != off {
			return nil, fmt.Errorf("%w: segment %d at offset %d, want %d", ErrBadManifest, i, s.Offset, off)
		}
		if s.Length < 9 || s.Traces < 1 {
			return nil, fmt.Errorf("%w: segment %d has length %d, %d traces", ErrBadManifest, i, s.Length, s.Traces)
		}
		off += s.Length
	}
	// Checkpoints must ascend and land on frame boundaries (the header
	// end or the end of some segment).
	bounds := map[int64]bool{8: true}
	end := int64(8)
	for _, s := range m.Segments {
		end = s.Offset + s.Length
		bounds[end] = true
	}
	prev := int64(-1)
	for i, c := range m.Checkpoints {
		if !bounds[c.Offset] {
			return nil, fmt.Errorf("%w: checkpoint %d offset %d is not a frame boundary", ErrBadManifest, i, c.Offset)
		}
		if c.Offset < prev || c.Paths < 0 {
			return nil, fmt.Errorf("%w: checkpoint %d (offset %d, paths %d) out of order", ErrBadManifest, i, c.Offset, c.Paths)
		}
		prev = c.Offset
	}
	if m.Complete && (len(m.Checkpoints) == 0 || m.Checkpoints[len(m.Checkpoints)-1].Offset != end) {
		return nil, fmt.Errorf("%w: complete without a final checkpoint at %d", ErrBadManifest, end)
	}
	return &m, nil
}

// encodeManifest is the inverse of DecodeManifest; indented so stray
// manifests are debuggable by eye.
func encodeManifest(m *Manifest) []byte {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		// Manifest is plain data; MarshalIndent cannot fail on it.
		panic(fmt.Sprintf("traceroute: manifest encode: %v", err))
	}
	return append(data, '\n')
}
