// Segment log: the spill-to-disk form of the columnar HopStore. The
// streaming campaign engine collects traces into fixed-size windows;
// each sealed window becomes one CRC-framed segment appended to a
// compact binary log, and inference replays the log window-at-a-time as
// TraceView spans over pooled columnar scratch — so a campaign's
// resident footprint is O(window), not O(archive).
//
// # On-disk format (little-endian throughout)
//
//	log    := header frame*
//	header := magic "TRSG" | version u16 | flags u16
//	frame  := payloadLen u32 | crc32(payload) u32 | payload
//
// A clean log ends exactly at a frame boundary; anything else decodes
// to ErrTruncatedSegment, and any framing/CRC/content violation to
// ErrCorruptSegment — named errors, never a panic (FuzzSegmentDecode
// pins that).
//
//	payload := stageLen uvarint | stage | traceCount uvarint
//	           | symCount uvarint | remap | addrDelta* | trace*
//
// Hop addresses are interned: each segment carries a dense local symbol
// table (symtab discipline), the serialized local→global remap
// (symtab.AppendRemap — the same translation tables the parallel
// pipeline's shard merges produce), and packed 4/16-byte address bytes
// only for symbols new to the log. A sequential reader therefore
// rebuilds the global address table without re-hashing anything, and a
// hop row costs a couple of varint bytes instead of a 16-byte address.
//
//	addrDelta := addrLen uvarint (4 or 16) | addr bytes   (one per new global sym, in assignment order)
//	trace     := srcSym+1 uvarint | dstSym+1 uvarint | flags u8
//	             | flowID uvarint | probes uvarint | replied uvarint
//	             | lost uvarint | rateLimited uvarint | retries uvarint
//	             | activeTime uvarint (ns) | numHops uvarint | hop*
//	hop       := addrSym+1 uvarint (0 = unresponsive "*") | ttl uvarint
//	             | rtt uvarint (ns) | type u8 | replyTTL u8
package traceroute

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/netip"
	"os"
	"time"

	"repro/internal/netsim"
	"repro/internal/segfault"
	"repro/internal/symtab"
)

const (
	segMagic   = "TRSG"
	segVersion = 1
)

// Named decode failures. Both wrap detail; test with errors.Is.
var (
	// ErrTruncatedSegment reports a log cut off mid-frame (an
	// interrupted writer, a partial copy).
	ErrTruncatedSegment = errors.New("traceroute: truncated segment log")
	// ErrCorruptSegment reports a log whose bytes fail validation: bad
	// magic, CRC mismatch, or a payload that does not decode.
	ErrCorruptSegment = errors.New("traceroute: corrupt segment log")
)

// SegmentWriter appends sealed trace windows to a segment log. Append
// encodes each trace into the open segment's body buffer immediately
// (the hop rows live in chunk scratch and are gone after the fold call,
// so nothing is deferred); Seal frames and flushes the accumulated
// window. The writer is single-goroutine, like the fold that feeds it.
type SegmentWriter struct {
	f  segfault.File
	bw *bufio.Writer

	// global interns packed address bytes across the whole log; local
	// re-interns the current segment's addresses densely so hop varints
	// stay small, and Seal merges local into global to produce the
	// frame's remap (symtab.Merge — the shard-table discipline).
	global *symtab.Table
	local  *symtab.Table

	stage string
	count int
	body  []byte
	head  []byte
	err   error

	// Durable mode (CreateDurableSegmentLog / OpenDurableSegmentLog):
	// every Seal fsyncs the log and atomically rewrites the manifest, so
	// a crash loses at most the open window. fsys nil = plain mode, no
	// manifest, no syncs — exactly the original writer.
	fsys     segfault.FS
	logPath  string
	manifest *Manifest
	off      int64
}

// CreateSegmentLog creates (truncating) a segment log at path and
// writes its header.
func CreateSegmentLog(path string) (*SegmentWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &SegmentWriter{
		f:      f,
		bw:     bufio.NewWriterSize(f, 1<<16),
		global: symtab.New(0),
		local:  symtab.New(0),
	}
	var hdr [8]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:], segVersion)
	binary.LittleEndian.PutUint16(hdr[6:], 0) // flags, reserved
	if _, err := w.bw.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// CreateDurableSegmentLog creates (truncating) a durable segment log:
// the header is synced immediately and an empty manifest stamped with
// fingerprint is published, so a crash at any later instant finds a
// decodable pair on disk. All I/O goes through fsys, the injectable
// filesystem seam (pass segfault.OS outside tests).
func CreateDurableSegmentLog(path, fingerprint string, fsys segfault.FS) (*SegmentWriter, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, err
	}
	w := &SegmentWriter{
		f:       f,
		bw:      bufio.NewWriterSize(f, 1<<16),
		global:  symtab.New(0),
		local:   symtab.New(0),
		fsys:    fsys,
		logPath: path,
		off:     8,
		manifest: &Manifest{
			Schema:      manifestSchema,
			SegVersion:  segVersion,
			Fingerprint: fingerprint,
		},
	}
	var hdr [8]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:], segVersion)
	binary.LittleEndian.PutUint16(hdr[6:], 0) // flags, reserved
	if _, err := w.bw.Write(hdr[:]); err == nil {
		err = w.bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := w.writeManifest(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// writeManifest atomically publishes the current manifest: write to a
// sibling temp file, fsync, rename over the target. A crash mid-write
// leaves the previous manifest intact (plus a stray .tmp that make
// clean sweeps).
func (w *SegmentWriter) writeManifest() error {
	if w.fsys == nil {
		return nil
	}
	path := ManifestPath(w.logPath)
	tmp := path + ".tmp"
	f, err := w.fsys.Create(tmp)
	if err != nil {
		w.err = err
		return err
	}
	if _, err := f.Write(encodeManifest(w.manifest)); err != nil {
		f.Close()
		w.err = err
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		w.err = err
		return err
	}
	if err := f.Close(); err != nil {
		w.err = err
		return err
	}
	if err := w.fsys.Rename(tmp, path); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Checkpoint seals any open window and records a resume point carrying
// the caller's opaque cursor snapshot. paths is the durable trace-path
// count, asserted by the resume replay. Durable logs only.
func (w *SegmentWriter) Checkpoint(paths int, state json.RawMessage) error {
	if w.err != nil {
		return w.err
	}
	if w.fsys == nil {
		return errors.New("traceroute: Checkpoint on a non-durable segment log")
	}
	if err := w.Seal(); err != nil {
		return err
	}
	w.manifest.Checkpoints = append(w.manifest.Checkpoints, Checkpoint{Offset: w.off, Paths: paths, State: state})
	return w.writeManifest()
}

// MarkComplete records the final checkpoint and flags the log complete:
// a later OpenDurableSegmentLog replays it instead of resuming
// collection. Durable logs only.
func (w *SegmentWriter) MarkComplete(paths int, state json.RawMessage) error {
	if w.err != nil {
		return w.err
	}
	if w.fsys == nil {
		return errors.New("traceroute: MarkComplete on a non-durable segment log")
	}
	if err := w.Seal(); err != nil {
		return err
	}
	w.manifest.Complete = true
	w.manifest.Checkpoints = append(w.manifest.Checkpoints, Checkpoint{Offset: w.off, Paths: paths, State: state})
	return w.writeManifest()
}

// Count reports the traces appended to the open (unsealed) segment.
func (w *SegmentWriter) Count() int { return w.count }

// appendAddr encodes an address as local-symbol-plus-one (0 encodes the
// invalid address, i.e. an unresponsive hop).
func (w *SegmentWriter) appendAddr(dst []byte, a netip.Addr) []byte {
	if !a.IsValid() {
		return append(dst, 0)
	}
	var s symtab.Sym
	if a.Is4() {
		k := a.As4()
		s = w.local.InternBytes(k[:])
	} else {
		k := a.As16()
		s = w.local.InternBytes(k[:])
	}
	return binary.AppendUvarint(dst, uint64(s)+1)
}

// Append encodes one trace into the open segment. A stage change seals
// the open segment first: a segment holds traces of exactly one
// collection stage, which is what lets replay attribute stages without
// per-trace tags.
func (w *SegmentWriter) Append(stage string, tv TraceView) error {
	if w.err != nil {
		return w.err
	}
	if w.count > 0 && stage != w.stage {
		if err := w.Seal(); err != nil {
			return err
		}
	}
	w.stage = stage
	b := w.body
	b = w.appendAddr(b, tv.Src)
	b = w.appendAddr(b, tv.Dst)
	var flags byte
	if tv.Reached {
		flags |= 1
	}
	if tv.Truncated {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(tv.FlowID))
	b = binary.AppendUvarint(b, uint64(tv.Probes))
	b = binary.AppendUvarint(b, uint64(tv.Replied))
	b = binary.AppendUvarint(b, uint64(tv.Lost))
	b = binary.AppendUvarint(b, uint64(tv.RateLimited))
	b = binary.AppendUvarint(b, uint64(tv.Retries))
	b = binary.AppendUvarint(b, uint64(tv.ActiveTime))
	n := tv.NumHops()
	b = binary.AppendUvarint(b, uint64(n))
	st, lo := tv.store, tv.lo
	for k := 0; k < n; k++ {
		b = w.appendAddr(b, st.addrs[lo+k])
		b = binary.AppendUvarint(b, uint64(st.ttls[lo+k]))
		b = binary.AppendUvarint(b, uint64(st.rtts[lo+k]))
		b = append(b, byte(st.types[lo+k]), st.replyTTLs[lo+k])
	}
	w.body = b
	w.count++
	return nil
}

// Seal frames the open segment — remap, address delta, trace bodies,
// CRC — writes it, and resets the window. Sealing an empty segment is a
// no-op, so callers may seal unconditionally at stage boundaries.
func (w *SegmentWriter) Seal() error {
	if w.err != nil {
		return w.err
	}
	if w.count == 0 {
		return nil
	}
	prevGlobal := w.global.Len()
	remap := w.global.Merge(w.local)
	head := w.head[:0]
	head = binary.AppendUvarint(head, uint64(len(w.stage)))
	head = append(head, w.stage...)
	head = binary.AppendUvarint(head, uint64(w.count))
	head = binary.AppendUvarint(head, uint64(len(remap)))
	head = symtab.AppendRemap(head, remap)
	// New-to-the-log addresses, in global assignment order (Merge
	// assigns ascending IDs in local first-seen order, so walking the
	// locals emits them ordered).
	for s, g := range remap {
		if int(g) >= prevGlobal {
			k := w.local.Str(symtab.Sym(s))
			head = binary.AppendUvarint(head, uint64(len(k)))
			head = append(head, k...)
		}
	}
	crc := crc32.ChecksumIEEE(head)
	crc = crc32.Update(crc, crc32.IEEETable, w.body)
	var fh [8]byte
	binary.LittleEndian.PutUint32(fh[0:], uint32(len(head)+len(w.body)))
	binary.LittleEndian.PutUint32(fh[4:], crc)
	if _, err := w.bw.Write(fh[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.bw.Write(head); err != nil {
		w.err = err
		return err
	}
	if _, err := w.bw.Write(w.body); err != nil {
		w.err = err
		return err
	}
	if w.fsys != nil {
		// Durability order: the frame's bytes reach the platter before
		// the manifest records them, so the manifest never points past
		// what a crash would leave behind.
		if err := w.bw.Flush(); err != nil {
			w.err = err
			return err
		}
		if err := w.f.Sync(); err != nil {
			w.err = err
			return err
		}
		frameLen := int64(8 + len(head) + len(w.body))
		w.manifest.Segments = append(w.manifest.Segments, SegmentRecord{
			Offset: w.off,
			Length: frameLen,
			CRC:    crc,
			Stage:  w.stage,
			Traces: w.count,
		})
		w.off += frameLen
	}
	w.head = head[:0]
	w.body = w.body[:0]
	w.count = 0
	w.local = symtab.New(0)
	return w.writeManifest()
}

// Close seals any open segment, flushes, and closes the file.
func (w *SegmentWriter) Close() error {
	err := w.Seal()
	if ferr := w.bw.Flush(); err == nil {
		err = ferr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Segment is one decoded window: trace scalars plus a columnar HopStore
// holding every hop row, exposed as TraceView spans. A Segment is
// reused across Next calls (buffers reset, capacity kept), so views are
// valid only until the next Next — the same lifetime contract as fold
// chunk scratch.
type Segment struct {
	// Stage is the collection stage the window's traces belong to.
	Stage  string
	store  HopStore
	traces []Trace
	los    []int32
}

// NumTraces reports the decoded trace count.
func (s *Segment) NumTraces() int { return len(s.traces) }

// View returns the i-th trace as a TraceView over the segment's
// columnar store.
func (s *Segment) View(i int) TraceView {
	hi := s.store.Len()
	if i+1 < len(s.los) {
		hi = int(s.los[i+1])
	}
	return TraceView{Trace: s.traces[i], store: &s.store, lo: int(s.los[i]), hi: hi}
}

func (s *Segment) reset() {
	s.Stage = ""
	s.store.Reset()
	s.traces = s.traces[:0]
	s.los = s.los[:0]
}

// SegmentReader replays a segment log sequentially. The file bytes are
// mapped read-only where the platform allows (see segio_unix.go) with a
// read-everything fallback elsewhere; decoding writes only into the
// caller's reusable Segment.
type SegmentReader struct {
	data  []byte
	off   int
	addrs []netip.Addr // global sym -> address
	unmap func() error
}

// mapSegment is the platform mapping seam. Tests swap in
// readSegmentFile to exercise the non-mmap fallback on any platform;
// everything else uses the build-tagged platformMapSegmentFile.
var mapSegment = platformMapSegmentFile

// OpenSegmentLog opens a log for replay and validates its header.
func OpenSegmentLog(path string) (*SegmentReader, error) {
	data, unmap, err := mapSegment(path)
	if err != nil {
		return nil, err
	}
	r := &SegmentReader{data: data, unmap: unmap}
	// Header validation failures must release the mapping before the
	// reader escapes — and surface an unmap failure rather than leak it.
	fail := func(err error) (*SegmentReader, error) {
		if cerr := r.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	if len(data) < 8 {
		return fail(fmt.Errorf("%w: %d-byte header", ErrTruncatedSegment, len(data)))
	}
	if string(data[:4]) != segMagic {
		magic := string(data[:4]) // copy out before Close unmaps data
		return fail(fmt.Errorf("%w: bad magic %q", ErrCorruptSegment, magic))
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != segVersion {
		return fail(fmt.Errorf("%w: unsupported version %d", ErrCorruptSegment, v))
	}
	r.off = 8
	return r, nil
}

// Close releases the mapping. Views into previously decoded Segments
// stay valid (they reference decoded scratch, not the mapping).
func (r *SegmentReader) Close() error {
	if r.unmap == nil {
		return nil
	}
	u := r.unmap
	r.unmap = nil
	r.data = nil
	return u()
}

// readSegmentFile is the buffered fallback when mmap is unavailable.
func readSegmentFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}

// uv decodes one uvarint from the front of b.
func uv(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrCorruptSegment)
	}
	return v, b[n:], nil
}

// Next decodes the next frame into seg (resetting it first). It returns
// false with a nil error at a clean end of log.
func (r *SegmentReader) Next(seg *Segment) (bool, error) {
	if r.off == len(r.data) {
		return false, nil
	}
	if len(r.data)-r.off < 8 {
		return false, fmt.Errorf("%w: %d trailing bytes", ErrTruncatedSegment, len(r.data)-r.off)
	}
	payloadLen := int(binary.LittleEndian.Uint32(r.data[r.off:]))
	wantCRC := binary.LittleEndian.Uint32(r.data[r.off+4:])
	if payloadLen > len(r.data)-r.off-8 {
		return false, fmt.Errorf("%w: frame wants %d bytes, %d remain", ErrTruncatedSegment, payloadLen, len(r.data)-r.off-8)
	}
	payload := r.data[r.off+8 : r.off+8+payloadLen]
	if crc := crc32.ChecksumIEEE(payload); crc != wantCRC {
		return false, fmt.Errorf("%w: crc %08x != %08x", ErrCorruptSegment, crc, wantCRC)
	}
	if err := r.decodePayload(payload, seg); err != nil {
		return false, err
	}
	r.off += 8 + payloadLen
	return true, nil
}

func (r *SegmentReader) decodePayload(b []byte, seg *Segment) error {
	seg.reset()
	stageLen, b, err := uv(b)
	if err != nil {
		return err
	}
	if stageLen > uint64(len(b)) {
		return fmt.Errorf("%w: stage length %d", ErrCorruptSegment, stageLen)
	}
	seg.Stage = string(b[:stageLen])
	b = b[stageLen:]
	traceCount, b, err := uv(b)
	if err != nil {
		return err
	}
	symCount, b, err := uv(b)
	if err != nil {
		return err
	}
	// Every trace costs >= 12 bytes and every symbol >= 1; a count past
	// that is corrupt, not a giant allocation.
	if traceCount > uint64(len(b)/12)+1 || symCount > uint64(len(b))+1 {
		return fmt.Errorf("%w: counts %d/%d exceed %d payload bytes", ErrCorruptSegment, traceCount, symCount, len(b))
	}
	remap, b, err := symtab.DecodeRemap(b)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptSegment, err)
	}
	if uint64(len(remap)) != symCount {
		return fmt.Errorf("%w: remap has %d entries, want %d", ErrCorruptSegment, len(remap), symCount)
	}
	// Address delta: each remap entry pointing at a fresh global ID
	// carries its packed bytes, in assignment order.
	for s, g := range remap {
		if int(g) < len(r.addrs) {
			continue
		}
		if int(g) != len(r.addrs) {
			return fmt.Errorf("%w: local sym %d maps to %d, next global is %d", ErrCorruptSegment, s, g, len(r.addrs))
		}
		var alen uint64
		alen, b, err = uv(b)
		if err != nil {
			return err
		}
		if alen != 4 && alen != 16 {
			return fmt.Errorf("%w: %d-byte address", ErrCorruptSegment, alen)
		}
		if uint64(len(b)) < alen {
			return fmt.Errorf("%w: short address bytes", ErrCorruptSegment)
		}
		var a netip.Addr
		if alen == 4 {
			a = netip.AddrFrom4([4]byte(b[:4]))
		} else {
			a = netip.AddrFrom16([16]byte(b[:16]))
		}
		r.addrs = append(r.addrs, a)
		b = b[alen:]
	}
	addrOf := func(v uint64) (netip.Addr, error) {
		if v == 0 {
			return netip.Addr{}, nil
		}
		if v-1 >= uint64(len(remap)) {
			return netip.Addr{}, fmt.Errorf("%w: local sym %d of %d", ErrCorruptSegment, v-1, len(remap))
		}
		return r.addrs[remap[v-1]], nil
	}
	for t := uint64(0); t < traceCount; t++ {
		var tr Trace
		var v uint64
		if v, b, err = uv(b); err != nil {
			return err
		}
		if tr.Src, err = addrOf(v); err != nil {
			return err
		}
		if v, b, err = uv(b); err != nil {
			return err
		}
		if tr.Dst, err = addrOf(v); err != nil {
			return err
		}
		if len(b) < 1 {
			return fmt.Errorf("%w: missing flags", ErrCorruptSegment)
		}
		flags := b[0]
		b = b[1:]
		tr.Reached = flags&1 != 0
		tr.Truncated = flags&2 != 0
		if v, b, err = uv(b); err != nil {
			return err
		}
		tr.FlowID = uint16(v)
		if v, b, err = uv(b); err != nil {
			return err
		}
		tr.Probes = int(v)
		if v, b, err = uv(b); err != nil {
			return err
		}
		tr.Replied = int(v)
		if v, b, err = uv(b); err != nil {
			return err
		}
		tr.Lost = int(v)
		if v, b, err = uv(b); err != nil {
			return err
		}
		tr.RateLimited = int(v)
		if v, b, err = uv(b); err != nil {
			return err
		}
		tr.Retries = int(v)
		if v, b, err = uv(b); err != nil {
			return err
		}
		tr.ActiveTime = time.Duration(v)
		var numHops uint64
		if numHops, b, err = uv(b); err != nil {
			return err
		}
		if numHops > uint64(len(b)/4)+1 {
			return fmt.Errorf("%w: %d hops in %d bytes", ErrCorruptSegment, numHops, len(b))
		}
		seg.los = append(seg.los, int32(seg.store.Len()))
		for k := uint64(0); k < numHops; k++ {
			var h Hop
			if v, b, err = uv(b); err != nil {
				return err
			}
			if h.Addr, err = addrOf(v); err != nil {
				return err
			}
			if v, b, err = uv(b); err != nil {
				return err
			}
			h.TTL = int(v)
			if v, b, err = uv(b); err != nil {
				return err
			}
			h.RTT = time.Duration(v)
			if len(b) < 2 {
				return fmt.Errorf("%w: short hop row", ErrCorruptSegment)
			}
			h.Type = netsim.ReplyType(b[0])
			h.ReplyTTL = b[1]
			b = b[2:]
			seg.store.push(h)
		}
		seg.traces = append(seg.traces, tr)
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: %d undecoded payload bytes", ErrCorruptSegment, len(b))
	}
	return nil
}
