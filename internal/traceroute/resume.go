// Resume: reopening a durable segment log after a crash. The recovery
// rule is deliberately narrow — a window counts only when the manifest
// records it AND its log bytes decode with the recorded CRC, and
// collection restarts at the newest checkpoint inside that doubly
// attested prefix. Anything else (a torn tail, a corrupt frame, sealed
// windows the manifest never learned about because the crash landed
// between log fsync and manifest rename) is truncated away and
// re-measured. Re-probing a window the disk already held is wasted
// work; replaying a window collection never cursored past is silent
// corruption. The rule wastes a little to corrupt nothing.
package traceroute

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/segfault"
	"repro/internal/symtab"
)

// Resume reports what OpenDurableSegmentLog recovered.
type Resume struct {
	// Resumed is true when a prior campaign's durable prefix was
	// recovered; false means a fresh log was created (Reason says why).
	Resumed bool
	// Reason is a one-line human-readable account of the decision.
	Reason string
	// Complete is true when the log holds the whole finished campaign:
	// replay it, do not re-collect. The returned writer is nil.
	Complete bool
	// Checkpoints are the surviving resume points, in cursor order;
	// index i is the i-th flush the original run checkpointed.
	Checkpoints []Checkpoint
	// Windows counts validated sealed windows kept in the log.
	Windows int
	// FirstMissing is the index of the first window absent from the
	// log — equal to Windows; re-collection starts there.
	FirstMissing int
	// DroppedFrames counts sealed windows discarded during recovery
	// (torn, corrupt, or past the last usable checkpoint).
	DroppedFrames int
	// Paths is the durable trace-path count at the final surviving
	// checkpoint, the caller's replay cross-check.
	Paths int
}

// OpenDurableSegmentLog reopens (or creates) the durable segment log
// at path. If a manifest with a matching fingerprint and a valid log
// prefix exist, it truncates any unusable tail, rewrites the manifest
// to match, and returns a writer positioned to append the first
// missing window — or a nil writer when the log is complete. In every
// other case (no manifest, wrong fingerprint, nothing salvageable) it
// starts a fresh log, never failing the campaign over a bad leftover.
func OpenDurableSegmentLog(path, fingerprint string, fsys segfault.FS) (*SegmentWriter, *Resume, error) {
	fresh := func(reason string) (*SegmentWriter, *Resume, error) {
		w, err := CreateDurableSegmentLog(path, fingerprint, fsys)
		if err != nil {
			return nil, nil, err
		}
		return w, &Resume{Reason: reason}, nil
	}

	mdata, err := fsys.ReadFile(ManifestPath(path))
	if err != nil {
		if errors.Is(err, segfault.ErrCrash) {
			return nil, nil, err
		}
		return fresh("no manifest")
	}
	m, err := DecodeManifest(mdata)
	if err != nil {
		return fresh(fmt.Sprintf("manifest rejected: %v", err))
	}
	if m.Fingerprint != fingerprint {
		return fresh("fingerprint mismatch: log belongs to a different campaign configuration")
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, segfault.ErrCrash) {
			return nil, nil, err
		}
		return fresh("manifest without log")
	}
	if len(data) < 8 || string(data[:4]) != segMagic ||
		binary.LittleEndian.Uint16(data[4:]) != segVersion {
		return fresh("log header invalid")
	}

	// Walk the log against the manifest: each frame must decode (the
	// reader classifies torn tails as ErrTruncatedSegment and bad bytes
	// as ErrCorruptSegment) and must match its record's CRC, length,
	// stage, and trace count.
	r := &SegmentReader{data: data, off: 8, unmap: func() error { return nil }}
	var seg Segment
	validEnd := int64(8)
	frames := 0
	tail := "clean end of log"
	for frames < len(m.Segments) {
		rec := m.Segments[frames]
		ok, err := r.Next(&seg)
		if err != nil {
			tail = fmt.Sprintf("window %d: %v", frames, err)
			break
		}
		if !ok {
			tail = fmt.Sprintf("log ends before recorded window %d", frames)
			break
		}
		frameCRC := binary.LittleEndian.Uint32(data[validEnd+4:])
		if int64(r.off)-validEnd != rec.Length || frameCRC != rec.CRC ||
			seg.Stage != rec.Stage || seg.NumTraces() != rec.Traces {
			tail = fmt.Sprintf("window %d does not match its manifest record", frames)
			break
		}
		validEnd = int64(r.off)
		frames++
	}

	// Resume at the newest checkpoint inside the validated prefix; the
	// checkpoint's cursor is only meaningful for bytes it had cursored
	// past, so valid frames beyond it are discarded too.
	cut := int64(-1)
	nCheck := 0
	for i, c := range m.Checkpoints {
		if c.Offset <= validEnd {
			cut = c.Offset
			nCheck = i + 1
		}
	}
	if cut < 0 {
		return fresh(fmt.Sprintf("no checkpoint survived (%s)", tail))
	}
	kept := 0
	for kept < frames && m.Segments[kept].Offset+m.Segments[kept].Length <= cut {
		kept++
	}
	dropped := len(m.Segments) - kept
	wasComplete := m.Complete
	m.Segments = m.Segments[:kept]
	m.Checkpoints = m.Checkpoints[:nCheck]
	m.Complete = wasComplete && dropped == 0
	res := &Resume{
		Resumed:       true,
		Complete:      m.Complete,
		Checkpoints:   m.Checkpoints,
		Windows:       kept,
		FirstMissing:  kept,
		DroppedFrames: dropped,
		Paths:         m.Checkpoints[nCheck-1].Paths,
	}

	if m.Complete {
		res.Reason = "complete campaign log: replay, no re-collection"
		return nil, res, nil
	}
	res.Reason = fmt.Sprintf("recovered %d windows to checkpoint %d (%s); %d dropped",
		kept, nCheck-1, tail, dropped)

	// Make disk agree with the pruned manifest before handing out the
	// writer: truncate the tail, republish the manifest, rebuild the
	// writer's global symbol table by replaying the kept prefix.
	if err := fsys.Truncate(path, cut); err != nil {
		return nil, nil, err
	}
	global := symtab.New(0)
	r2 := &SegmentReader{data: data[:cut], off: 8, unmap: func() error { return nil }}
	for {
		ok, err := r2.Next(&seg)
		if err != nil {
			return nil, nil, fmt.Errorf("traceroute: validated prefix failed replay: %w", err)
		}
		if !ok {
			break
		}
	}
	for _, a := range r2.addrs {
		if a.Is4() {
			k := a.As4()
			global.InternBytes(k[:])
		} else {
			k := a.As16()
			global.InternBytes(k[:])
		}
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, nil, err
	}
	w := &SegmentWriter{
		f:        f,
		bw:       bufio.NewWriterSize(f, 1<<16),
		global:   global,
		local:    symtab.New(0),
		fsys:     fsys,
		logPath:  path,
		manifest: m,
		off:      cut,
	}
	if err := w.writeManifest(); err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, res, nil
}
