package traceroute

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestNonMmapFallbackSeam replays a log through the buffered
// readSegmentFile path on every platform (segio_other.go is otherwise
// unreachable under a unix build) and checks it matches the mapped
// replay byte for byte.
func TestNonMmapFallbackSeam(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var store HopStore
	views := randomTraces(rng, &store, 12)
	path := filepath.Join(t.TempDir(), "traces.seg")
	writeLog(t, path, []string{"sweep", "direct"}, [][]TraceView{views[:7], views[7:]})
	mapped := replayLog(t, path)

	orig := mapSegment
	mapSegment = readSegmentFile
	defer func() { mapSegment = orig }()
	buffered := replayLog(t, path)
	if len(buffered) != len(mapped) {
		t.Fatalf("fallback replayed %d traces, mapped replayed %d", len(buffered), len(mapped))
	}
	for i := range mapped {
		if buffered[i] != mapped[i] {
			t.Fatalf("trace %d differs between mmap and fallback:\n %s\n %s", i, mapped[i], buffered[i])
		}
	}
}

// TestOpenReleasesMappingOnHeaderError pins the open-path cleanup
// contract: when header validation rejects a log, the mapping's release
// closure must have run exactly once before OpenSegmentLog returns.
func TestOpenReleasesMappingOnHeaderError(t *testing.T) {
	for name, mut := range map[string]func([]byte) []byte{
		"short-header": func(b []byte) []byte { return b[:5] },
		"bad-magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"bad-version": func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:], 99)
			return b
		},
	} {
		t.Run(name, func(t *testing.T) {
			data := mut(validLogBytes(t))
			path := filepath.Join(t.TempDir(), "bad.seg")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			released := 0
			orig := mapSegment
			mapSegment = func(p string) ([]byte, func() error, error) {
				d, _, err := readSegmentFile(p)
				return d, func() error { released++; return nil }, err
			}
			defer func() { mapSegment = orig }()
			r, err := OpenSegmentLog(path)
			if err == nil {
				r.Close()
				t.Fatal("damaged header accepted")
			}
			if released != 1 {
				t.Fatalf("release closure ran %d times, want 1", released)
			}
		})
	}
}

// randomTraces builds n traces with hop rows in one shared store,
// exercising v4/v6 addresses, unresponsive hops, zero-hop traces, and
// every scalar field.
func randomTraces(rng *rand.Rand, store *HopStore, n int) []TraceView {
	views := make([]TraceView, 0, n)
	randAddr := func() netip.Addr {
		if rng.Intn(8) == 0 {
			var b [16]byte
			rng.Read(b[:])
			return netip.AddrFrom16(b)
		}
		var b [4]byte
		rng.Read(b[:])
		return netip.AddrFrom4(b)
	}
	for i := 0; i < n; i++ {
		tr := Trace{
			Src:         randAddr(),
			Dst:         randAddr(),
			FlowID:      uint16(rng.Intn(1 << 16)),
			Reached:     rng.Intn(2) == 0,
			Probes:      rng.Intn(64),
			ActiveTime:  time.Duration(rng.Int63n(int64(time.Minute))),
			Replied:     rng.Intn(32),
			Lost:        rng.Intn(8),
			RateLimited: rng.Intn(4),
			Retries:     rng.Intn(4),
			Truncated:   rng.Intn(8) == 0,
		}
		lo := store.Len()
		numHops := rng.Intn(12)
		if i == 0 {
			numHops = 0 // always cover the zero-hop edge
		}
		if i == 1 {
			numHops = 1 // and the single-hop edge
		}
		for k := 0; k < numHops; k++ {
			h := Hop{
				TTL:      k + 1,
				RTT:      time.Duration(rng.Int63n(int64(200 * time.Millisecond))),
				Type:     netsim.ReplyType(rng.Intn(4)),
				ReplyTTL: uint8(rng.Intn(256)),
			}
			if h.Type != netsim.Timeout {
				h.Addr = randAddr()
			}
			store.push(h)
		}
		views = append(views, TraceView{Trace: tr, store: store, lo: lo, hi: store.Len()})
	}
	return views
}

// fingerprint renders a view into a comparable string covering every
// encoded field.
func fingerprint(stage string, tv TraceView) string {
	s := fmt.Sprintf("stage=%s %s>%s flow=%d reached=%v probes=%d act=%d replied=%d lost=%d rl=%d retries=%d trunc=%v hops=",
		stage, tv.Src, tv.Dst, tv.FlowID, tv.Reached, tv.Probes, tv.ActiveTime, tv.Replied, tv.Lost, tv.RateLimited, tv.Retries, tv.Truncated)
	for k := 0; k < tv.NumHops(); k++ {
		h := tv.Hop(k)
		s += fmt.Sprintf("[%d %s %d %d %d]", h.TTL, h.Addr, h.RTT, h.Type, h.ReplyTTL)
	}
	return s
}

func writeLog(t *testing.T, path string, stages []string, perStage [][]TraceView) {
	t.Helper()
	w, err := CreateSegmentLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, stage := range stages {
		for _, tv := range perStage[i] {
			if err := w.Append(stage, tv); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func replayLog(t *testing.T, path string) []string {
	t.Helper()
	r, err := OpenSegmentLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []string
	var seg Segment
	for {
		ok, err := r.Next(&seg)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		for i := 0; i < seg.NumTraces(); i++ {
			tv := seg.View(i)
			got = append(got, fingerprint(seg.Stage, tv))
		}
	}
	return got
}

func TestSegmentRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var store HopStore
			stages := []string{"sweep", "direct", "mpls"}
			perStage := make([][]TraceView, len(stages))
			var want []string
			for i, stage := range stages {
				n := rng.Intn(40)
				if i == 1 && seed == 0 {
					n = 0 // empty-window edge: Seal of nothing is a no-op
				}
				perStage[i] = randomTraces(rng, &store, n)
				for _, tv := range perStage[i] {
					want = append(want, fingerprint(stage, tv))
				}
			}
			path := filepath.Join(t.TempDir(), "traces.seg")
			writeLog(t, path, stages, perStage)
			got := replayLog(t, path)
			if len(got) != len(want) {
				t.Fatalf("replayed %d traces, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trace %d mismatch:\n got %s\nwant %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSegmentStageChangeSeals checks that Append auto-seals on a stage
// boundary, producing one single-stage segment per stage.
func TestSegmentStageChangeSeals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var store HopStore
	views := randomTraces(rng, &store, 6)
	path := filepath.Join(t.TempDir(), "traces.seg")
	w, err := CreateSegmentLog(path)
	if err != nil {
		t.Fatal(err)
	}
	stages := []string{"a", "a", "b", "b", "b", "c"}
	for i, tv := range views {
		if err := w.Append(stages[i], tv); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenSegmentLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var seg Segment
	var gotStages []string
	var gotCounts []int
	for {
		ok, err := r.Next(&seg)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		gotStages = append(gotStages, seg.Stage)
		gotCounts = append(gotCounts, seg.NumTraces())
	}
	wantStages := []string{"a", "b", "c"}
	wantCounts := []int{2, 3, 1}
	if fmt.Sprint(gotStages) != fmt.Sprint(wantStages) || fmt.Sprint(gotCounts) != fmt.Sprint(wantCounts) {
		t.Fatalf("got segments %v %v, want %v %v", gotStages, gotCounts, wantStages, wantCounts)
	}
}

// corruptLog writes a valid one-segment log and returns its bytes.
func validLogBytes(t *testing.T) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	var store HopStore
	views := randomTraces(rng, &store, 10)
	path := filepath.Join(t.TempDir(), "traces.seg")
	writeLog(t, path, []string{"sweep"}, [][]TraceView{views})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func decodeAll(path string) error {
	r, err := OpenSegmentLog(path)
	if err != nil {
		return err
	}
	defer r.Close()
	var seg Segment
	for {
		ok, err := r.Next(&seg)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

func TestSegmentDecodeErrors(t *testing.T) {
	data := validLogBytes(t)
	write := func(t *testing.T, b []byte) string {
		path := filepath.Join(t.TempDir(), "bad.seg")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	t.Run("valid", func(t *testing.T) {
		if err := decodeAll(write(t, data)); err != nil {
			t.Fatalf("valid log failed: %v", err)
		}
	})
	t.Run("truncated-header", func(t *testing.T) {
		err := decodeAll(write(t, data[:5]))
		if !errors.Is(err, ErrTruncatedSegment) {
			t.Fatalf("got %v, want ErrTruncatedSegment", err)
		}
	})
	t.Run("truncated-frame-header", func(t *testing.T) {
		err := decodeAll(write(t, data[:11]))
		if !errors.Is(err, ErrTruncatedSegment) {
			t.Fatalf("got %v, want ErrTruncatedSegment", err)
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		err := decodeAll(write(t, data[:len(data)-7]))
		if !errors.Is(err, ErrTruncatedSegment) {
			t.Fatalf("got %v, want ErrTruncatedSegment", err)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		b := append([]byte(nil), data...)
		b[0] = 'X'
		err := decodeAll(write(t, b))
		if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("got %v, want ErrCorruptSegment", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		b := append([]byte(nil), data...)
		binary.LittleEndian.PutUint16(b[4:], 99)
		err := decodeAll(write(t, b))
		if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("got %v, want ErrCorruptSegment", err)
		}
	})
	t.Run("flipped-payload-bit", func(t *testing.T) {
		b := append([]byte(nil), data...)
		b[len(b)/2] ^= 0x40
		err := decodeAll(write(t, b))
		if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("got %v, want ErrCorruptSegment", err)
		}
	})
	t.Run("oversized-frame-len", func(t *testing.T) {
		b := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(b[8:], 1<<30)
		err := decodeAll(write(t, b))
		if !errors.Is(err, ErrTruncatedSegment) {
			t.Fatalf("got %v, want ErrTruncatedSegment", err)
		}
	})
}

// FuzzSegmentDecode asserts the decoder never panics or over-allocates
// on arbitrary bytes — it must return a named error or decode cleanly.
func FuzzSegmentDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(validLogBytesFuzz())
	b := validLogBytesFuzz()
	if len(b) > 20 {
		f.Add(b[:len(b)-9])
		mut := append([]byte(nil), b...)
		mut[15] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		err := decodeAll(path)
		if err != nil && !errors.Is(err, ErrTruncatedSegment) && !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("unnamed decode error: %v", err)
		}
	})
}

// FuzzManifestDecode asserts the manifest decoder never panics on
// arbitrary bytes: it returns *Manifest or an error wrapping
// ErrBadManifest, and anything it accepts must re-encode cleanly.
func FuzzManifestDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte("not json{"))
	f.Add([]byte(`{"schema":1,"seg_version":1,"fingerprint":"fp"}`))
	valid := encodeManifest(&Manifest{
		Schema: manifestSchema, SegVersion: segVersion, Fingerprint: "fp",
		Segments: []SegmentRecord{
			{Offset: 8, Length: 40, CRC: 0xdeadbeef, Stage: "sweep", Traces: 2},
			{Offset: 48, Length: 33, CRC: 7, Stage: "direct", Traces: 1},
		},
		Checkpoints: []Checkpoint{
			{Offset: 48, Paths: 2, State: json.RawMessage(`{"win":0}`)},
			{Offset: 81, Paths: 3, State: json.RawMessage(`{"win":1}`)},
		},
	})
	f.Add(valid)
	complete := encodeManifest(&Manifest{
		Schema: manifestSchema, SegVersion: segVersion, Fingerprint: "fp",
		Segments:    []SegmentRecord{{Offset: 8, Length: 40, CRC: 1, Stage: "sweep", Traces: 2}},
		Checkpoints: []Checkpoint{{Offset: 48, Paths: 2}},
		Complete:    true,
	})
	f.Add(complete)
	for _, i := range []int{10, len(valid) / 2, len(valid) - 3} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrBadManifest) {
				t.Fatalf("unnamed manifest error: %v", err)
			}
			return
		}
		if m == nil {
			t.Fatal("nil manifest with nil error")
		}
		if rt, err := DecodeManifest(encodeManifest(m)); err != nil || rt == nil {
			t.Fatalf("accepted manifest failed round-trip: %v", err)
		}
	})
}

// validLogBytesFuzz builds seed-corpus bytes without a *testing.T.
func validLogBytesFuzz() []byte {
	rng := rand.New(rand.NewSource(9))
	var store HopStore
	views := randomTraces(rng, &store, 8)
	dir, err := os.MkdirTemp("", "segfuzz")
	if err != nil {
		return nil
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "seed.seg")
	w, err := CreateSegmentLog(path)
	if err != nil {
		return nil
	}
	for _, tv := range views {
		if w.Append("sweep", tv) != nil {
			return nil
		}
	}
	if w.Close() != nil {
		return nil
	}
	data, _ := os.ReadFile(path)
	return data
}
