//go:build unix

package traceroute

import (
	"os"
	"syscall"
)

// platformMapSegmentFile maps path read-only. Replay then decodes
// straight out of the page cache — the kernel streams pages in and
// drops them behind the sequential scan, so an archive-sized log never
// needs archive-sized memory. An empty file maps to an empty slice
// (mmap of length 0 is an error on Linux).
func platformMapSegmentFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if fi.Size() == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap (some tmpfs-less containers, network
		// mounts) fall back to reading the whole file.
		return readSegmentFile(path)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
