package traceroute

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/probesched"
)

func TestTraceOutcomeLedgerAccountsEveryProbe(t *testing.T) {
	net, vp, tgt, _ := testNet(t, 5)
	net.SetFaultPlan(netsim.FaultPlan{Seed: 7, LinkLoss: 0.2})
	for _, mode := range []Mode{Sequential, Parallel} {
		e := &Engine{Net: net, Clock: start(), Mode: mode, Attempts: 3}
		tr := e.Trace(vp.Addr, tgt.Addr)
		s := tr.Stats()
		if !s.Consistent() {
			t.Errorf("mode %d: ledger inconsistent: %+v", mode, s)
		}
		if s.Sent != tr.Probes {
			t.Errorf("mode %d: Stats().Sent = %d, Probes = %d", mode, s.Sent, tr.Probes)
		}
		if s.Sent == 0 || s.Replied == 0 {
			t.Errorf("mode %d: degenerate ledger %+v", mode, s)
		}
		if s.Lost == 0 {
			t.Errorf("mode %d: 20%% link loss over a 5-hop chain lost nothing: %+v", mode, s)
		}
	}
}

func TestRetryBackoffConsumesVirtualTime(t *testing.T) {
	net, vp, tgt, rs := testNet(t, 3)
	// Silence the first hop so every trace retries it to exhaustion.
	net.SetFaultPlan(netsim.FaultPlan{Silent: []netsim.RouterID{rs[1].ID}})

	run := func(backoff time.Duration) (Trace, time.Duration) {
		clk := start()
		t0 := clk.Now()
		e := &Engine{Net: net, Clock: clk, Attempts: 3, RetryBackoff: backoff}
		tr := e.Trace(vp.Addr, tgt.Addr)
		return tr, clk.Since(t0)
	}

	plain, plainElapsed := run(0)
	backed, backedElapsed := run(400 * time.Millisecond)
	if plain.Retries == 0 || backed.Retries == 0 {
		t.Fatalf("silent hop produced no retries: plain %+v backed %+v", plain.Stats(), backed.Stats())
	}
	// The silent hop burns 3 attempts; retries 1 and 2 wait an extra
	// 1*backoff and 2*backoff, so the traces differ by exactly 3*backoff.
	wantExtra := 3 * 400 * time.Millisecond
	if got := backedElapsed - plainElapsed; got != wantExtra {
		t.Errorf("backoff added %v of virtual time, want %v", got, wantExtra)
	}
	if got := backed.ActiveTime - plain.ActiveTime; got != wantExtra {
		t.Errorf("backoff added %v of active time, want %v", got, wantExtra)
	}
	// Identical hop output: backoff changes when retries fire, not what
	// they observe on a time-independent fault.
	if len(backed.Hops) != len(plain.Hops) {
		t.Errorf("hop counts differ: %d vs %d", len(backed.Hops), len(plain.Hops))
	}
}

func TestRetryBackoffOutwaitsBlackout(t *testing.T) {
	// Every router blacks out for 3s somewhere in each hour-long period.
	// A plain schedule (2 attempts, 1s timeout) that hits the window
	// dies inside it; a backed-off schedule's later retries can land
	// after the blackout lifts, so it must never see fewer hops.
	net, vp, tgt, _ := testNet(t, 3)
	net.SetFaultPlan(netsim.FaultPlan{
		BlackoutFrac:   1,
		BlackoutPeriod: time.Hour,
		BlackoutDur:    3 * time.Second,
	})
	responsive := func(tr Trace) int {
		n := 0
		for _, h := range tr.Hops {
			if h.Responded() {
				n++
			}
		}
		return n
	}
	plain := responsive((&Engine{Net: net, Clock: start(), Attempts: 2}).Trace(vp.Addr, tgt.Addr))
	backed := responsive((&Engine{Net: net, Clock: start(), Attempts: 4, RetryBackoff: 2 * time.Second}).Trace(vp.Addr, tgt.Addr))
	if backed < plain {
		t.Errorf("backoff schedule saw %d responsive hops, plain saw %d", backed, plain)
	}
}

func TestProbeBudgetTruncates(t *testing.T) {
	net, vp, tgt, _ := testNet(t, 6)
	// A silent middle makes the trace burn attempts.
	net.SetFaultPlan(netsim.FaultPlan{SilentFrac: 1})
	for _, mode := range []Mode{Sequential, Parallel} {
		e := &Engine{Net: net, Clock: start(), Mode: mode, Attempts: 3, ProbeBudget: 4}
		tr := e.Trace(vp.Addr, tgt.Addr)
		if !tr.Truncated {
			t.Errorf("mode %d: budget-exhausted trace not marked truncated", mode)
		}
		// The budget may be overshot only by the in-flight attempt row
		// semantics: checks run before each send, so Probes <= budget+0.
		if tr.Probes > 4 {
			t.Errorf("mode %d: sent %d probes on a budget of 4", mode, tr.Probes)
		}
		for _, h := range tr.Hops {
			if h.TTL == 0 {
				t.Errorf("mode %d: zero-probe hop row appended", mode)
			}
		}
		if !tr.Stats().Consistent() {
			t.Errorf("mode %d: inconsistent ledger %+v", mode, tr.Stats())
		}
	}
}

func TestApplyResilience(t *testing.T) {
	e := &Engine{}
	e.ApplyResilience(probesched.Resilience{})
	if e.Attempts != 0 || e.RetryBackoff != 0 || e.ProbeBudget != 0 {
		t.Errorf("zero policy mutated engine: %+v", e)
	}
	e.ApplyResilience(probesched.Resilience{Attempts: 5, RetryBackoff: 100 * time.Millisecond, TraceBudget: 64})
	if e.Attempts != 5 || e.RetryBackoff != 100*time.Millisecond || e.ProbeBudget != 64 {
		t.Errorf("policy not applied: %+v", e)
	}
}

func TestZeroResilienceTraceBitIdentical(t *testing.T) {
	netA, vp, tgt, _ := testNet(t, 4)
	netB, vp2, tgt2, _ := testNet(t, 4)
	netB.SetFaultPlan(netsim.FaultPlan{})
	a := (&Engine{Net: netA, Clock: start()}).Trace(vp.Addr, tgt.Addr)
	b := (&Engine{Net: netB, Clock: start()}).Trace(vp2.Addr, tgt2.Addr)
	if len(a.Hops) != len(b.Hops) || a.Probes != b.Probes || a.ActiveTime != b.ActiveTime {
		t.Fatalf("empty fault plan changed trace shape: %+v vs %+v", a, b)
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			t.Errorf("hop %d differs: %+v vs %+v", i, a.Hops[i], b.Hops[i])
		}
	}
}
