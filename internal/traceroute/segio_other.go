//go:build !unix

package traceroute

// platformMapSegmentFile on platforms without unix mmap reads the
// whole log.
func platformMapSegmentFile(path string) ([]byte, func() error, error) {
	return readSegmentFile(path)
}
