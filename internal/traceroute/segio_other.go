//go:build !unix

package traceroute

// mapSegmentFile on platforms without unix mmap reads the whole log.
func mapSegmentFile(path string) ([]byte, func() error, error) {
	return readSegmentFile(path)
}
