// Package traceroute implements a scamper-style Paris traceroute engine
// over the simulated network. It supports the stock sequential probing
// mode and the parallel consecutive-hop mode the paper added to scamper
// for ShipTraceroute (§7.1.2), which shrinks radio-active time and hence
// energy per round.
package traceroute

import (
	"net/netip"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/probesched"
	"repro/internal/vclock"
)

// Mode selects the probing schedule.
type Mode uint8

const (
	// Sequential probes one TTL at a time, waiting for each response or
	// timeout before the next probe (stock scamper).
	Sequential Mode = iota
	// Parallel probes a window of consecutive TTLs at once, overlapping
	// the waits for unresponsive hops (the ShipTraceroute modification).
	Parallel
)

// Engine runs traceroutes on a network with a virtual clock.
type Engine struct {
	Net   *netsim.Network
	Clock *vclock.Clock

	// MaxTTL bounds probing (default 32).
	MaxTTL int
	// Attempts per hop before declaring it unresponsive (default 2).
	Attempts int
	// GapLimit stops the trace after this many consecutive unresponsive
	// hops (default 5).
	GapLimit int
	// Timeout is the per-probe response wait (default 1s).
	Timeout time.Duration
	// Mode selects sequential or parallel probing.
	Mode Mode
	// Window is the parallel-mode burst width (default 8).
	Window int
	// Proto is the probe protocol (default ICMP echo).
	Proto netsim.Proto

	// RetryBackoff, when nonzero, adds k*RetryBackoff of extra wait
	// before the k-th retry of a timed-out hop, letting rate-limit and
	// blackout windows pass. Zero (the default) keeps the historical
	// fixed-timeout retry schedule bit-identical.
	RetryBackoff time.Duration
	// ProbeBudget, when nonzero, caps the probes one trace may send;
	// an exhausted trace stops early with Truncated set.
	ProbeBudget int

	// arena is the per-trace hop scratch source, bound by traceWith on
	// the engine's stack copy; never set on a shared Engine.
	arena *hopArena

	// cols, when non-nil, redirects hop rows into a columnar store
	// instead of per-trace []Hop slices; colsLo remembers where this
	// trace's rows begin. Both are bound by traceColumnar on the
	// engine's stack copy, never on a shared Engine.
	cols   *HopStore
	colsLo int
}

// arenaChunk is the hopArena refill size. At campaign scale most traces
// want a handful of rows (hopCap of an unreachable flow is just
// GapLimit), so one chunk serves hundreds of traces.
const arenaChunk = 2048

// hopArena hands out hop buffers carved from large shared chunks, so a
// campaign of N traces costs ~N/hundreds slice allocations instead of
// N. Regions are disjoint and capacity-clamped (three-index slicing),
// so an append past a trace's estimate falls back to an ordinary copy
// rather than running into the next trace's rows. Arenas recycle
// through a sync.Pool; a chunk stays reachable while any returned
// trace still references it, which is the same retention as per-trace
// allocation.
type hopArena struct {
	buf []Hop
}

var hopArenas = sync.Pool{New: func() any { return new(hopArena) }}

// take returns an empty hop buffer with capacity n.
func (a *hopArena) take(n int) []Hop {
	if n > arenaChunk {
		return make([]Hop, 0, n)
	}
	if n > len(a.buf) {
		a.buf = make([]Hop, arenaChunk)
	}
	s := a.buf[0:0:n]
	a.buf = a.buf[n:]
	return s
}

// takeHops sizes and carves one trace's hop buffer.
func (e *Engine) takeHops(flow *netsim.Flow) []Hop {
	n := e.hopCap(flow)
	if e.arena == nil {
		return make([]Hop, 0, n)
	}
	return e.arena.take(n)
}

// HopStore is the columnar (struct-of-arrays) hop row store of the
// campaign fast path: instead of one []Hop per trace, every trace in a
// fold chunk appends its rows to one shared store and hands the fold a
// TraceView holding [lo, hi) offsets. The five parallel slices hold
// exactly the Hop fields, so view.Hop(k) reconstructs rows losslessly;
// what changes is the allocation shape — one growing buffer per chunk,
// recycled after the fold, instead of thousands of per-trace slices.
// A HopStore is single-goroutine scratch (one per worker chunk).
type HopStore struct {
	addrs     []netip.Addr
	ttls      []int32
	rtts      []time.Duration
	types     []netsim.ReplyType
	replyTTLs []uint8
}

// Len reports the number of stored hop rows.
func (s *HopStore) Len() int { return len(s.addrs) }

// Reset truncates the store to empty, keeping capacity for reuse.
func (s *HopStore) Reset() { s.truncate(0) }

// push appends one hop row.
func (s *HopStore) push(h Hop) {
	s.addrs = append(s.addrs, h.Addr)
	s.ttls = append(s.ttls, int32(h.TTL))
	s.rtts = append(s.rtts, h.RTT)
	s.types = append(s.types, h.Type)
	s.replyTTLs = append(s.replyTTLs, h.ReplyTTL)
}

// row reconstructs the k-th stored hop.
func (s *HopStore) row(k int) Hop {
	return Hop{
		TTL:      int(s.ttls[k]),
		Addr:     s.addrs[k],
		RTT:      s.rtts[k],
		Type:     s.types[k],
		ReplyTTL: s.replyTTLs[k],
	}
}

func (s *HopStore) truncate(n int) {
	s.addrs = s.addrs[:n]
	s.ttls = s.ttls[:n]
	s.rtts = s.rtts[:n]
	s.types = s.types[:n]
	s.replyTTLs = s.replyTTLs[:n]
}

// trimReached drops the rows after the destination response in the
// current trace's span [lo, Len) — the columnar form of the
// scamper-style trim traceParallel applies to []Hop output.
func (s *HopStore) trimReached(lo int) {
	for k := lo; k < len(s.types); k++ {
		if s.types[k] == netsim.EchoReply || s.types[k] == netsim.PortUnreachable {
			s.truncate(k + 1)
			return
		}
	}
}

// TraceView is a Trace whose hop rows live in a HopStore span instead
// of an owned Hops slice. The embedded Trace carries every scalar field
// (ledger, Reached, ActiveTime, ...) with Hops nil; rows are read
// through Hop/HopResponded. A view is only valid until its chunk's
// store is recycled — campaign folds consume views immediately and
// keep only what they extract, which is the whole point.
type TraceView struct {
	Trace
	store  *HopStore
	lo, hi int
}

// NumHops reports the trace's hop row count.
func (v *TraceView) NumHops() int { return v.hi - v.lo }

// Hop reconstructs the trace's k-th hop row.
func (v *TraceView) Hop(k int) Hop { return v.store.row(v.lo + k) }

// HopResponded reports whether the k-th hop produced any answer,
// without materializing the row.
func (v *TraceView) HopResponded(k int) bool {
	return v.store.types[v.lo+k] != netsim.Timeout
}

// Hop is one row of traceroute output.
type Hop struct {
	TTL int
	// Addr is the responding address; an invalid Addr renders as "*".
	Addr netip.Addr
	RTT  time.Duration
	Type netsim.ReplyType
	// ReplyTTL is the remaining TTL on the response (Appendix C uses
	// it to reason about return paths).
	ReplyTTL uint8
}

// Responded reports whether the hop produced any answer.
func (h Hop) Responded() bool { return h.Type != netsim.Timeout }

// Trace is one completed traceroute.
type Trace struct {
	Src, Dst netip.Addr
	FlowID   uint16
	Hops     []Hop
	// Reached is true when the destination itself answered.
	Reached bool
	// Probes counts packets sent, and ActiveTime accumulates the time
	// the prober spent waiting with the radio up — the two inputs to
	// the Fig. 14 energy model.
	Probes     int
	ActiveTime time.Duration

	// Typed outcome ledger: every probe sent lands in exactly one of
	// Replied / Lost / RateLimited, so Probes == Replied + Lost +
	// RateLimited always holds. Retries counts retransmissions within
	// Probes, and Truncated marks a trace stopped by ProbeBudget.
	Replied     int
	Lost        int
	RateLimited int
	Retries     int
	Truncated   bool
}

// Stats exports the trace's outcome ledger for campaign accounting.
func (t *Trace) Stats() probesched.ProbeStats {
	return probesched.ProbeStats{
		Sent:        t.Probes,
		Replied:     t.Replied,
		Lost:        t.Lost,
		RateLimited: t.RateLimited,
		Retries:     t.Retries,
	}
}

// observe files one reply into the trace's outcome ledger.
func (t *Trace) observe(r netsim.Reply, retry bool) {
	switch r.Outcome() {
	case netsim.OutcomeReply:
		t.Replied++
	case netsim.OutcomeRateLimited:
		t.RateLimited++
	default:
		t.Lost++
	}
	if retry {
		t.Retries++
	}
}

// ResponsiveHops returns the hops that answered, in TTL order.
func (t *Trace) ResponsiveHops() []Hop {
	var out []Hop
	for _, h := range t.Hops {
		if h.Responded() {
			out = append(out, h)
		}
	}
	return out
}

// LastResponsive returns the highest-TTL responsive hop, if any.
func (t *Trace) LastResponsive() (Hop, bool) {
	for i := len(t.Hops) - 1; i >= 0; i-- {
		if t.Hops[i].Responded() {
			return t.Hops[i], true
		}
	}
	return Hop{}, false
}

func (e *Engine) defaults() {
	if e.MaxTTL == 0 {
		e.MaxTTL = 32
	}
	if e.Attempts == 0 {
		e.Attempts = 2
	}
	if e.GapLimit == 0 {
		e.GapLimit = 5
	}
	if e.Timeout == 0 {
		e.Timeout = time.Second
	}
	if e.Window == 0 {
		e.Window = 8
	}
}

// hopCap sizes a trace's hop buffer from the compiled flow: a fully
// responsive trace stops at the destination's hop count, and an
// unresponsive tail adds at most GapLimit rows before the trace aborts.
// Random mid-path losses can still exceed the estimate; append just
// grows then.
func (e *Engine) hopCap(flow *netsim.Flow) int {
	est := flow.HopsToDst() + e.GapLimit
	if est > e.MaxTTL {
		est = e.MaxTTL
	}
	return est
}

// flowID derives the Paris flow identifier from the destination, so
// every probe of one trace rides the same ECMP path while different
// destinations may diverge.
func flowID(src, dst netip.Addr) uint16 {
	b := dst.As16()
	s := src.As16()
	var h uint32 = 2166136261
	for _, x := range b {
		h = (h ^ uint32(x)) * 16777619
	}
	for _, x := range s {
		h = (h ^ uint32(x)) * 16777619
	}
	return uint16(h)
}

// Trace runs one traceroute from src (a registered vantage-point host)
// toward dst. The engine's configuration is treated as read-only (the
// defaults are applied to a stack copy), so one Engine may serve
// concurrent traceroutes as long as each carries its own clock — which
// is how the probe scheduler drives it.
func (e *Engine) Trace(src, dst netip.Addr) Trace {
	return e.traceWith(e.Clock, src, dst)
}

// traceWith runs one traceroute on the supplied clock. The defaulted
// configuration copy stays on this frame (nothing returns a pointer to
// it), so the per-job engine binding costs no allocation — unlike the
// WithClock path, whose returned pointer must escape.
func (e *Engine) traceWith(clk *vclock.Clock, src, dst netip.Addr) Trace {
	cfg := *e
	cfg.Clock = clk
	cfg.defaults()
	cfg.arena = hopArenas.Get().(*hopArena)
	defer hopArenas.Put(cfg.arena)
	if cfg.Mode == Parallel {
		return cfg.traceParallel(src, dst)
	}
	return cfg.traceSequential(src, dst)
}

// pushHop files one finished hop row: into the columnar store when the
// engine runs on the fold fast path, else onto the trace's own slice.
func (e *Engine) pushHop(tr *Trace, h Hop) {
	if e.cols != nil {
		e.cols.push(h)
		return
	}
	tr.Hops = append(tr.Hops, h)
}

// traceColumnar runs one traceroute whose hop rows land in store,
// returning a view over the rows it appended. Probing order, sequence
// numbers, and clock advances are identical to traceWith — only where
// the rows live changes — so columnar campaigns stay bit-identical.
func (e *Engine) traceColumnar(clk *vclock.Clock, store *HopStore, src, dst netip.Addr) TraceView {
	cfg := *e
	cfg.Clock = clk
	cfg.defaults()
	cfg.cols = store
	cfg.colsLo = store.Len()
	var tr Trace
	if cfg.Mode == Parallel {
		tr = cfg.traceParallel(src, dst)
	} else {
		tr = cfg.traceSequential(src, dst)
	}
	return TraceView{Trace: tr, store: store, lo: cfg.colsLo, hi: store.Len()}
}

// hopStores recycles columnar stores across fold chunks; a store grows
// to its chunk's row count once and is then reused at full capacity.
var hopStores = sync.Pool{New: func() any { return new(HopStore) }}

// FoldTracesColumnar is FoldTraces on the columnar store: each worker
// chunk leases one pooled HopStore, every trace in the chunk appends
// its rows there, and fold receives TraceViews in request order. The
// store is reset and repooled only after its chunk has been folded
// (probesched.MapFoldScratch's scratch lifecycle), so views stay valid
// exactly as long as the fold can see them. Campaign collection uses
// this to drop the per-trace []Hop and result-slice allocations.
func (e *Engine) FoldTracesColumnar(pool *probesched.Pool, reqs []probesched.Request, fold func(i int, tv TraceView)) {
	probesched.MapFoldScratch(pool, reqs,
		func() *HopStore { return hopStores.Get().(*HopStore) },
		func(s *HopStore) { s.Reset(); hopStores.Put(s) },
		func(clk *vclock.Clock, s *HopStore, req probesched.Request) TraceView {
			return e.traceColumnar(clk, s, req.Src, req.Dst)
		}, fold)
}

// ApplyResilience overlays a resilience policy on the engine: a
// positive Attempts overrides the per-hop attempt count, and the
// retry backoff and trace budget are installed as given. The zero
// policy is a no-op, keeping default engines bit-identical to their
// historical behavior.
func (e *Engine) ApplyResilience(r probesched.Resilience) {
	if r.Attempts > 0 {
		e.Attempts = r.Attempts
	}
	if r.RetryBackoff > 0 {
		e.RetryBackoff = r.RetryBackoff
	}
	if r.TraceBudget > 0 {
		e.ProbeBudget = r.TraceBudget
	}
}

// WithClock returns a copy of the engine bound to clk, for callers that
// want to hold the binding; the scheduler path avoids it (see
// traceWith).
func (e *Engine) WithClock(clk *vclock.Clock) *Engine {
	cfg := *e
	cfg.Clock = clk
	return &cfg
}

// Probe implements probesched.Prober: one traceroute from req.Src
// toward req.Dst on the supplied clock. The result is a Trace.
func (e *Engine) Probe(clk *vclock.Clock, req probesched.Request) probesched.Result {
	return e.traceWith(clk, req.Src, req.Dst)
}

// Traces runs one traceroute per request across the pool and returns
// the traces in request order, with Pool.Fan's clock semantics. Unlike
// Fan, the result slice is concretely typed: at campaign scale the
// interface boxing Fan implies is one heap allocation per trace, which
// this path avoids.
func (e *Engine) Traces(pool *probesched.Pool, reqs []probesched.Request) []Trace {
	return probesched.Map(pool, reqs, func(clk *vclock.Clock, req probesched.Request) Trace {
		return e.traceWith(clk, req.Src, req.Dst)
	})
}

// FoldTraces runs one traceroute per request across the pool and
// streams the traces, in request order, to fold while later requests
// are still probing — probesched.MapFold's semantics with the same
// concrete Trace typing as Traces. Campaign collection uses this to
// overlap result folding with in-flight probing instead of waiting for
// a whole stage to finish.
func (e *Engine) FoldTraces(pool *probesched.Pool, reqs []probesched.Request, fold func(i int, tr Trace)) {
	probesched.MapFold(pool, reqs, func(clk *vclock.Clock, req probesched.Request) Trace {
		return e.traceWith(clk, req.Src, req.Dst)
	}, fold)
}

func (e *Engine) traceSequential(src, dst netip.Addr) Trace {
	tr := Trace{Src: src, Dst: dst, FlowID: flowID(src, dst)}
	// Resolve the flow's forwarding path once; every TTL below replays
	// it instead of re-resolving per probe.
	flow := e.Net.CompileFlow(src, dst, tr.FlowID)
	if e.cols == nil {
		tr.Hops = e.takeHops(&flow)
	}
	gap := 0
	var seq uint32
	for ttl := 1; ttl <= e.MaxTTL; ttl++ {
		if e.ProbeBudget > 0 && tr.Probes >= e.ProbeBudget {
			tr.Truncated = true
			break
		}
		hop := Hop{TTL: ttl}
		for att := 0; att < e.Attempts; att++ {
			// Budget can only trip on a retry here: the TTL-loop check
			// above covers attempt 0, so no zero-probe hop rows appear.
			if att > 0 && e.ProbeBudget > 0 && tr.Probes >= e.ProbeBudget {
				tr.Truncated = true
				break
			}
			seq++
			r := flow.Probe(e.Clock.Now(), uint8(ttl), e.Proto, seq)
			tr.Probes++
			tr.observe(r, att > 0)
			if r.Type == netsim.Timeout {
				wait := e.Timeout
				if e.RetryBackoff > 0 && att+1 < e.Attempts {
					wait += time.Duration(att+1) * e.RetryBackoff
				}
				e.Clock.Advance(wait)
				tr.ActiveTime += wait
				continue
			}
			e.Clock.Advance(r.RTT)
			tr.ActiveTime += r.RTT
			hop.Addr = r.From
			hop.RTT = r.RTT
			hop.Type = r.Type
			hop.ReplyTTL = r.ReplyTTL
			break
		}
		e.pushHop(&tr, hop)
		if hop.Responded() {
			gap = 0
			if hop.Type == netsim.EchoReply || hop.Type == netsim.PortUnreachable {
				tr.Reached = true
				break
			}
		} else {
			gap++
			if gap >= e.GapLimit {
				break
			}
		}
	}
	return tr
}

// traceParallel sends Window consecutive TTLs per burst; the burst wait
// is the maximum individual wait rather than the sum, which is where the
// energy saving comes from.
func (e *Engine) traceParallel(src, dst netip.Addr) Trace {
	tr := Trace{Src: src, Dst: dst, FlowID: flowID(src, dst)}
	flow := e.Net.CompileFlow(src, dst, tr.FlowID)
	if e.cols == nil {
		tr.Hops = e.takeHops(&flow)
	}
	// burstHops is scratch for the in-flight burst, reused across
	// bursts; rows are copied into tr.Hops before the next reset.
	burstHops := make([]Hop, 0, e.Window)
	var seq uint32
	gap := 0
	for base := 1; base <= e.MaxTTL; base += e.Window {
		var burstWait time.Duration
		burstHops = burstHops[:0]
		done := false
		for off := 0; off < e.Window; off++ {
			ttl := base + off
			if ttl > e.MaxTTL {
				break
			}
			if e.ProbeBudget > 0 && tr.Probes >= e.ProbeBudget {
				tr.Truncated = true
				done = true
				break
			}
			hop := Hop{TTL: ttl}
			for att := 0; att < e.Attempts; att++ {
				if att > 0 && e.ProbeBudget > 0 && tr.Probes >= e.ProbeBudget {
					tr.Truncated = true
					break
				}
				seq++
				r := flow.Probe(e.Clock.Now(), uint8(ttl), e.Proto, seq)
				tr.Probes++
				tr.observe(r, att > 0)
				if r.Type == netsim.Timeout {
					wait := e.Timeout
					if e.RetryBackoff > 0 && att+1 < e.Attempts {
						wait += time.Duration(att+1) * e.RetryBackoff
					}
					if wait > burstWait {
						burstWait = wait
					}
					continue
				}
				if r.RTT > burstWait {
					burstWait = r.RTT
				}
				hop.Addr = r.From
				hop.RTT = r.RTT
				hop.Type = r.Type
				hop.ReplyTTL = r.ReplyTTL
				break
			}
			burstHops = append(burstHops, hop)
			if hop.Type == netsim.EchoReply || hop.Type == netsim.PortUnreachable {
				done = true
				break
			}
		}
		e.Clock.Advance(burstWait)
		tr.ActiveTime += burstWait
		for _, h := range burstHops {
			e.pushHop(&tr, h)
			if h.Responded() {
				gap = 0
				if h.Type == netsim.EchoReply || h.Type == netsim.PortUnreachable {
					tr.Reached = true
				}
			} else {
				gap++
			}
		}
		if done || tr.Reached || gap >= e.GapLimit {
			break
		}
	}
	// Trim the trace after the destination response, mirroring scamper
	// output.
	if e.cols != nil {
		e.cols.trimReached(e.colsLo)
	} else {
		for i, h := range tr.Hops {
			if h.Type == netsim.EchoReply || h.Type == netsim.PortUnreachable {
				tr.Hops = tr.Hops[:i+1]
				break
			}
		}
	}
	return tr
}
