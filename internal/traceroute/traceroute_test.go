package traceroute

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/vclock"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// testNet builds a linear VP -> r1 ... rN -> target topology.
func testNet(t *testing.T, n int) (*netsim.Network, *netsim.Host, *netsim.Host, []*netsim.Router) {
	t.Helper()
	net := netsim.New(11)
	rs := make([]*netsim.Router, n)
	for i := range rs {
		rs[i] = net.AddRouter(&netsim.Router{Name: fmt.Sprintf("r%d", i+1), ISP: "t", CO: fmt.Sprintf("co%d", i+1)})
	}
	for i := 0; i+1 < n; i++ {
		if _, err := net.ConnectRouters(rs[i], rs[i+1],
			addr(fmt.Sprintf("10.0.%d.1", i)), addr(fmt.Sprintf("10.0.%d.2", i)), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	vp := &netsim.Host{Addr: addr("192.168.1.1"), Router: rs[0], ISP: "t", RespondsToPing: true}
	tgt := &netsim.Host{Addr: addr("192.168.9.1"), Router: rs[n-1], ISP: "t", RespondsToPing: true, AccessDelay: time.Millisecond}
	if err := net.AddHost(vp); err != nil {
		t.Fatal(err)
	}
	if err := net.AddHost(tgt); err != nil {
		t.Fatal(err)
	}
	return net, vp, tgt, rs
}

func start() *vclock.Clock {
	return vclock.New(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
}

func TestSequentialTraceReachesDestination(t *testing.T) {
	net, vp, tgt, _ := testNet(t, 4)
	e := &Engine{Net: net, Clock: start()}
	tr := e.Trace(vp.Addr, tgt.Addr)
	if !tr.Reached {
		t.Fatal("trace did not reach destination")
	}
	if len(tr.Hops) != 4 {
		t.Fatalf("hops = %d, want 4 (r2, r3, r4, host)", len(tr.Hops))
	}
	want := []string{"10.0.0.2", "10.0.1.2", "10.0.2.2", "192.168.9.1"}
	for i, h := range tr.Hops {
		if !h.Responded() {
			t.Fatalf("hop %d unresponsive", i+1)
		}
		if h.Addr != addr(want[i]) {
			t.Errorf("hop %d = %v, want %v", i+1, h.Addr, want[i])
		}
		if h.TTL != i+1 {
			t.Errorf("hop %d TTL = %d", i+1, h.TTL)
		}
	}
	last := tr.Hops[len(tr.Hops)-1]
	if last.Type != netsim.EchoReply {
		t.Errorf("final hop type = %v", last.Type)
	}
}

func TestParisFlowConsistency(t *testing.T) {
	net, vp, tgt, _ := testNet(t, 4)
	e := &Engine{Net: net, Clock: start()}
	tr1 := e.Trace(vp.Addr, tgt.Addr)
	tr2 := e.Trace(vp.Addr, tgt.Addr)
	if tr1.FlowID != tr2.FlowID {
		t.Error("same src/dst produced different flow IDs")
	}
	for i := range tr1.Hops {
		if tr1.Hops[i].Addr != tr2.Hops[i].Addr {
			t.Errorf("hop %d differs across runs", i+1)
		}
	}
}

func TestGapLimitStopsTrace(t *testing.T) {
	net, vp, _, rs := testNet(t, 12)
	// Routers beyond r4 are silent, and the destination is unreachable
	// (a prefix behind the last router with no live host).
	for _, r := range rs[4:] {
		r.ResponseProb = 0
	}
	net.AddPrefix(netip.MustParsePrefix("203.0.113.0/24"), rs[11], "t")
	e := &Engine{Net: net, Clock: start(), GapLimit: 5}
	tr := e.Trace(vp.Addr, addr("203.0.113.9"))
	if tr.Reached {
		t.Fatal("trace claims to have reached a silent destination")
	}
	unresponsive := 0
	for _, h := range tr.Hops {
		if !h.Responded() {
			unresponsive++
		} else {
			unresponsive = 0
		}
	}
	if unresponsive != 5 {
		t.Errorf("trace ended with %d trailing gaps, want GapLimit=5", unresponsive)
	}
}

func TestAttemptsRetryTransientLoss(t *testing.T) {
	net, vp, tgt, rs := testNet(t, 4)
	rs[1].ResponseProb = 0.5
	e := &Engine{Net: net, Clock: start(), Attempts: 8}
	tr := e.Trace(vp.Addr, tgt.Addr)
	if h := tr.Hops[0]; !h.Responded() {
		t.Error("hop 1 (50% responsive, 8 attempts) never answered")
	}
	if tr.Probes <= len(tr.Hops) {
		t.Errorf("probes = %d, expected retries beyond %d hops", tr.Probes, len(tr.Hops))
	}
}

func TestParallelMatchesSequentialHops(t *testing.T) {
	net, vp, tgt, rs := testNet(t, 6)
	rs[2].ResponseProb = 0 // one silent mid-path hop
	seq := &Engine{Net: net, Clock: start(), Mode: Sequential}
	par := &Engine{Net: net, Clock: start(), Mode: Parallel}
	st := seq.Trace(vp.Addr, tgt.Addr)
	pt := par.Trace(vp.Addr, tgt.Addr)
	if !st.Reached || !pt.Reached {
		t.Fatalf("reached: seq=%v par=%v", st.Reached, pt.Reached)
	}
	if len(st.Hops) != len(pt.Hops) {
		t.Fatalf("hop counts differ: seq=%d par=%d", len(st.Hops), len(pt.Hops))
	}
	for i := range st.Hops {
		if st.Hops[i].Addr != pt.Hops[i].Addr {
			t.Errorf("hop %d differs: seq=%v par=%v", i+1, st.Hops[i].Addr, pt.Hops[i].Addr)
		}
	}
}

func TestParallelSavesActiveTime(t *testing.T) {
	net, vp, _, rs := testNet(t, 10)
	// Several unresponsive hops: sequential pays a full timeout per
	// attempt per hop; parallel overlaps them.
	for _, r := range rs[3:7] {
		r.ResponseProb = 0
	}
	tgt2 := &netsim.Host{Addr: addr("192.168.9.2"), Router: rs[9], ISP: "t", RespondsToPing: true}
	if err := net.AddHost(tgt2); err != nil {
		t.Fatal(err)
	}
	seq := &Engine{Net: net, Clock: start(), Mode: Sequential}
	par := &Engine{Net: net, Clock: start(), Mode: Parallel}
	st := seq.Trace(vp.Addr, tgt2.Addr)
	pt := par.Trace(vp.Addr, tgt2.Addr)
	if pt.ActiveTime >= st.ActiveTime {
		t.Errorf("parallel active time %v not less than sequential %v", pt.ActiveTime, st.ActiveTime)
	}
	// The paper reports ~38% energy reduction; require a substantial
	// saving here too.
	if float64(pt.ActiveTime) > 0.7*float64(st.ActiveTime) {
		t.Errorf("parallel saving too small: %v vs %v", pt.ActiveTime, st.ActiveTime)
	}
}

func TestResponsiveHopsAndLastResponsive(t *testing.T) {
	net, vp, tgt, rs := testNet(t, 5)
	rs[2].ResponseProb = 0
	e := &Engine{Net: net, Clock: start(), Attempts: 1}
	tr := e.Trace(vp.Addr, tgt.Addr)
	resp := tr.ResponsiveHops()
	for _, h := range resp {
		if !h.Responded() {
			t.Error("ResponsiveHops returned a timeout")
		}
	}
	last, ok := tr.LastResponsive()
	if !ok || last.Addr != tgt.Addr {
		t.Errorf("LastResponsive = %v, %v", last.Addr, ok)
	}
	if len(resp) != len(tr.Hops)-1 {
		t.Errorf("responsive = %d of %d hops; exactly one should be silent", len(resp), len(tr.Hops))
	}
}

func TestClockAdvances(t *testing.T) {
	net, vp, tgt, _ := testNet(t, 4)
	c := start()
	e := &Engine{Net: net, Clock: c}
	before := c.Now()
	tr := e.Trace(vp.Addr, tgt.Addr)
	if !c.Now().After(before) {
		t.Error("virtual clock did not advance")
	}
	if got := c.Since(before); got != tr.ActiveTime {
		t.Errorf("clock advanced %v, trace active time %v", got, tr.ActiveTime)
	}
}

func TestUDPMode(t *testing.T) {
	net, vp, tgt, _ := testNet(t, 4)
	e := &Engine{Net: net, Clock: start(), Proto: netsim.UDP}
	tr := e.Trace(vp.Addr, tgt.Addr)
	if !tr.Reached {
		t.Fatal("UDP trace did not reach")
	}
	last := tr.Hops[len(tr.Hops)-1]
	if last.Type != netsim.PortUnreachable {
		t.Errorf("final hop type = %v, want port-unreachable", last.Type)
	}
}

func TestMaxTTLTruncates(t *testing.T) {
	net, vp, tgt, _ := testNet(t, 12)
	e := &Engine{Net: net, Clock: start(), MaxTTL: 5}
	tr := e.Trace(vp.Addr, tgt.Addr)
	if tr.Reached {
		t.Error("trace claims to reach a destination 12 hops away with MaxTTL 5")
	}
	if len(tr.Hops) > 5 {
		t.Errorf("hops = %d, want <= MaxTTL", len(tr.Hops))
	}
}

func TestParallelWindowBoundaries(t *testing.T) {
	// Destination exactly on a window boundary.
	for _, n := range []int{8, 9, 16} {
		net, vp, tgt, _ := testNet(t, n)
		e := &Engine{Net: net, Clock: start(), Mode: Parallel, Window: 8}
		tr := e.Trace(vp.Addr, tgt.Addr)
		if !tr.Reached {
			t.Errorf("n=%d: parallel trace did not reach", n)
		}
		if got := tr.Hops[len(tr.Hops)-1]; got.Type != netsim.EchoReply {
			t.Errorf("n=%d: final hop %v", n, got.Type)
		}
		// No hops after the destination response.
		for i, h := range tr.Hops[:len(tr.Hops)-1] {
			if h.Type == netsim.EchoReply {
				t.Errorf("n=%d: echo reply at non-final hop %d", n, i)
			}
		}
	}
}

func TestProbeAccounting(t *testing.T) {
	net, vp, tgt, _ := testNet(t, 4)
	e := &Engine{Net: net, Clock: start(), Attempts: 1}
	tr := e.Trace(vp.Addr, tgt.Addr)
	if tr.Probes != len(tr.Hops) {
		t.Errorf("fully responsive path: probes=%d hops=%d", tr.Probes, len(tr.Hops))
	}
	if tr.ActiveTime <= 0 {
		t.Error("no active time accounted")
	}
}
