// Package cli is the shared flag surface of the study cmds. Every cmd
// used to re-declare the same knobs — -seed, -parallel, -budget, -loss,
// -icmp-rate, -retries, -cpuprofile, -memprofile — with copy-pasted
// usage strings and copy-pasted wiring into core options; regiond would
// have been the seventh copy. Config centralizes the declarations (each
// Bind* method registers one knob, with the historical wording as the
// default usage and an override for cmds that documented it
// differently) and the one Config → core.Option bridge, so a flag's
// semantics can only be changed in one place.
package cli

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/probesched"
	"repro/internal/profiling"
	"repro/internal/topogen"
)

// Canonical usage strings — the exact historical wording of the flags
// as regionmap declared them. Cmds that shipped a different wording
// pass it as the override so their -h output stays byte-identical.
const (
	SeedUsage     = "scenario seed (same seed, same maps)"
	ParallelUsage = "probe-scheduler workers (0 = GOMAXPROCS); output is identical at any value"
	BudgetUsage   = "cap total campaign traceroutes (0 = unlimited)"
	LossUsage     = "inject per-link loss at this rate (0 = pristine plane)"
	ICMPRateUsage = "cap per-router ICMP replies/sec (0 = no rate limiting)"
	RetriesUsage  = "per-hop attempts with backoff for the resilient campaign (0 = historical behavior)"
	CPUProfUsage  = "write a CPU profile of the run to this file"
	MemProfUsage  = "write a heap profile to this file at exit"
	RegionsUsage  = "replicate every generated region this many times (1 = paper-size topology)"
	SubsUsage     = "floor on allocated subscriber addresses per operator (0 = paper-size default)"
	WindowUsage   = "stream campaigns through trace windows of this size, spilling to disk (0 = resident archive); fault-free output is identical at any value"
	SpillUsage    = "directory for the windowed engine's spill log (default: a fresh .spill-* temp dir)"
	DurableUsage  = "crash-safe spill: fsync sealed windows, checkpoint every flush, resume interrupted campaigns from -spill-dir bit-identically (requires -trace-window and -spill-dir)"
)

// Config carries the parsed values of the shared study knobs. Bind only
// what the cmd supports; unbound fields stay zero, which every consumer
// treats as "off".
type Config struct {
	Seed        int64
	Parallel    int
	Budget      int
	Loss        float64
	ICMPRate    float64
	Retries     int
	Regions     int
	Subscribers int
	TraceWindow int
	SpillDir    string
	Durable     bool
	CPUProfile  string
	MemProfile  string
}

func usageOr(canonical string, override []string) string {
	if len(override) > 0 {
		return override[0]
	}
	return canonical
}

// BindSeed registers -seed with the cmd's default.
func (c *Config) BindSeed(fs *flag.FlagSet, def int64, usage ...string) {
	fs.Int64Var(&c.Seed, "seed", def, usageOr(SeedUsage, usage))
}

// BindParallel registers -parallel.
func (c *Config) BindParallel(fs *flag.FlagSet) {
	fs.IntVar(&c.Parallel, "parallel", 0, ParallelUsage)
}

// BindBudget registers -budget.
func (c *Config) BindBudget(fs *flag.FlagSet) {
	fs.IntVar(&c.Budget, "budget", 0, BudgetUsage)
}

// BindLoss registers -loss.
func (c *Config) BindLoss(fs *flag.FlagSet, usage ...string) {
	fs.Float64Var(&c.Loss, "loss", 0, usageOr(LossUsage, usage))
}

// BindICMPRate registers -icmp-rate.
func (c *Config) BindICMPRate(fs *flag.FlagSet, usage ...string) {
	fs.Float64Var(&c.ICMPRate, "icmp-rate", 0, usageOr(ICMPRateUsage, usage))
}

// BindRetries registers -retries with the cmd's default.
func (c *Config) BindRetries(fs *flag.FlagSet, def int, usage ...string) {
	fs.IntVar(&c.Retries, "retries", def, usageOr(RetriesUsage, usage))
}

// BindScale registers -regions and -subscribers, the topology scale
// knobs. The defaults (1 region copy, no subscriber floor) keep the
// paper-size topology and its pinned digests.
func (c *Config) BindScale(fs *flag.FlagSet) {
	fs.IntVar(&c.Regions, "regions", 1, RegionsUsage)
	fs.IntVar(&c.Subscribers, "subscribers", 0, SubsUsage)
}

// BindWindow registers -trace-window, -spill-dir, and -durable, the
// streaming campaign engine knobs. The defaults keep the resident
// archive.
func (c *Config) BindWindow(fs *flag.FlagSet) {
	fs.IntVar(&c.TraceWindow, "trace-window", 0, WindowUsage)
	fs.StringVar(&c.SpillDir, "spill-dir", "", SpillUsage)
	fs.BoolVar(&c.Durable, "durable", false, DurableUsage)
}

// BindProfiles registers -cpuprofile and -memprofile.
func (c *Config) BindProfiles(fs *flag.FlagSet, cpuUsage ...string) {
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", usageOr(CPUProfUsage, cpuUsage))
	fs.StringVar(&c.MemProfile, "memprofile", "", MemProfUsage)
}

// Options is the Config → core.Option bridge, reproducing the wiring
// every cmd previously hand-rolled: parallelism and probe budget
// always; a fault plan (seeded by the scenario seed) only when -loss or
// -icmp-rate is set; the resilient-probing policy (200ms backoff,
// breaker threshold 10) only when -retries is set. extra options append
// after the shared ones.
func (c *Config) Options(extra ...core.Option) []core.Option {
	opts := []core.Option{core.WithParallelism(c.Parallel), core.WithProbeBudget(c.Budget)}
	if c.Loss > 0 || c.ICMPRate > 0 {
		opts = append(opts, core.WithFaults(netsim.FaultPlan{
			Seed: uint64(c.Seed), LinkLoss: c.Loss, ICMPRate: c.ICMPRate,
		}))
	}
	if c.Retries > 0 {
		opts = append(opts, core.WithResilience(probesched.Resilience{
			Attempts:         c.Retries,
			RetryBackoff:     200 * time.Millisecond,
			BreakerThreshold: 10,
		}))
	}
	if c.Scaled() {
		opts = append(opts, core.WithScale(c.ScaleValue()))
	}
	if c.TraceWindow > 0 {
		opts = append(opts, core.WithTraceWindow(c.TraceWindow))
		if c.SpillDir != "" {
			opts = append(opts, core.WithSpillDir(c.SpillDir))
		}
		if c.Durable {
			opts = append(opts, core.WithDurable())
		}
	}
	return append(opts, extra...)
}

// ScaleValue returns the topology scale the flags request; zero when
// the scale knobs are unbound or left at their defaults.
func (c *Config) ScaleValue() topogen.Scale {
	return topogen.Scale{Regions: c.Regions, Subscribers: c.Subscribers}
}

// Scaled reports whether the run asks for a larger-than-paper topology.
func (c *Config) Scaled() bool {
	return !c.ScaleValue().IsZero()
}

// ScaleTag renders the requested scale as a benchmark-name suffix
// ("" at paper size, "/scale=10x" for -regions 10, with "/subs=N"
// appended when a subscriber floor is set) so scaled benchmark runs
// archive under names distinct from the paper-size ones.
func (c *Config) ScaleTag() string {
	if !c.Scaled() {
		return ""
	}
	r := c.Regions
	if r < 1 {
		r = 1
	}
	tag := fmt.Sprintf("/scale=%dx", r)
	if c.Subscribers > 0 {
		tag += fmt.Sprintf("/subs=%d", c.Subscribers)
	}
	return tag
}

// Faulted reports whether any degraded-plane knob is set — the cmds
// print the coverage report exactly then.
func (c *Config) Faulted() bool {
	return c.Loss > 0 || c.ICMPRate > 0 || c.Retries > 0
}

// StartProfiling begins CPU/heap profiling per the flags; defer the
// returned stop function.
func (c *Config) StartProfiling() func() {
	return profiling.Start(c.CPUProfile, c.MemProfile)
}
