// Package cli is the shared flag surface of the study cmds. Every cmd
// used to re-declare the same knobs — -seed, -parallel, -budget, -loss,
// -icmp-rate, -retries, -cpuprofile, -memprofile — with copy-pasted
// usage strings and copy-pasted wiring into core options; regiond would
// have been the seventh copy. Config centralizes the declarations (each
// Bind* method registers one knob, with the historical wording as the
// default usage and an override for cmds that documented it
// differently) and the one Config → core.Option bridge, so a flag's
// semantics can only be changed in one place.
package cli

import (
	"flag"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/probesched"
	"repro/internal/profiling"
)

// Canonical usage strings — the exact historical wording of the flags
// as regionmap declared them. Cmds that shipped a different wording
// pass it as the override so their -h output stays byte-identical.
const (
	SeedUsage     = "scenario seed (same seed, same maps)"
	ParallelUsage = "probe-scheduler workers (0 = GOMAXPROCS); output is identical at any value"
	BudgetUsage   = "cap total campaign traceroutes (0 = unlimited)"
	LossUsage     = "inject per-link loss at this rate (0 = pristine plane)"
	ICMPRateUsage = "cap per-router ICMP replies/sec (0 = no rate limiting)"
	RetriesUsage  = "per-hop attempts with backoff for the resilient campaign (0 = historical behavior)"
	CPUProfUsage  = "write a CPU profile of the run to this file"
	MemProfUsage  = "write a heap profile to this file at exit"
)

// Config carries the parsed values of the shared study knobs. Bind only
// what the cmd supports; unbound fields stay zero, which every consumer
// treats as "off".
type Config struct {
	Seed       int64
	Parallel   int
	Budget     int
	Loss       float64
	ICMPRate   float64
	Retries    int
	CPUProfile string
	MemProfile string
}

func usageOr(canonical string, override []string) string {
	if len(override) > 0 {
		return override[0]
	}
	return canonical
}

// BindSeed registers -seed with the cmd's default.
func (c *Config) BindSeed(fs *flag.FlagSet, def int64, usage ...string) {
	fs.Int64Var(&c.Seed, "seed", def, usageOr(SeedUsage, usage))
}

// BindParallel registers -parallel.
func (c *Config) BindParallel(fs *flag.FlagSet) {
	fs.IntVar(&c.Parallel, "parallel", 0, ParallelUsage)
}

// BindBudget registers -budget.
func (c *Config) BindBudget(fs *flag.FlagSet) {
	fs.IntVar(&c.Budget, "budget", 0, BudgetUsage)
}

// BindLoss registers -loss.
func (c *Config) BindLoss(fs *flag.FlagSet, usage ...string) {
	fs.Float64Var(&c.Loss, "loss", 0, usageOr(LossUsage, usage))
}

// BindICMPRate registers -icmp-rate.
func (c *Config) BindICMPRate(fs *flag.FlagSet, usage ...string) {
	fs.Float64Var(&c.ICMPRate, "icmp-rate", 0, usageOr(ICMPRateUsage, usage))
}

// BindRetries registers -retries with the cmd's default.
func (c *Config) BindRetries(fs *flag.FlagSet, def int, usage ...string) {
	fs.IntVar(&c.Retries, "retries", def, usageOr(RetriesUsage, usage))
}

// BindProfiles registers -cpuprofile and -memprofile.
func (c *Config) BindProfiles(fs *flag.FlagSet, cpuUsage ...string) {
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", usageOr(CPUProfUsage, cpuUsage))
	fs.StringVar(&c.MemProfile, "memprofile", "", MemProfUsage)
}

// Options is the Config → core.Option bridge, reproducing the wiring
// every cmd previously hand-rolled: parallelism and probe budget
// always; a fault plan (seeded by the scenario seed) only when -loss or
// -icmp-rate is set; the resilient-probing policy (200ms backoff,
// breaker threshold 10) only when -retries is set. extra options append
// after the shared ones.
func (c *Config) Options(extra ...core.Option) []core.Option {
	opts := []core.Option{core.WithParallelism(c.Parallel), core.WithProbeBudget(c.Budget)}
	if c.Loss > 0 || c.ICMPRate > 0 {
		opts = append(opts, core.WithFaults(netsim.FaultPlan{
			Seed: uint64(c.Seed), LinkLoss: c.Loss, ICMPRate: c.ICMPRate,
		}))
	}
	if c.Retries > 0 {
		opts = append(opts, core.WithResilience(probesched.Resilience{
			Attempts:         c.Retries,
			RetryBackoff:     200 * time.Millisecond,
			BreakerThreshold: 10,
		}))
	}
	return append(opts, extra...)
}

// Faulted reports whether any degraded-plane knob is set — the cmds
// print the coverage report exactly then.
func (c *Config) Faulted() bool {
	return c.Loss > 0 || c.ICMPRate > 0 || c.Retries > 0
}

// StartProfiling begins CPU/heap profiling per the flags; defer the
// returned stop function.
func (c *Config) StartProfiling() func() {
	return profiling.Start(c.CPUProfile, c.MemProfile)
}
