package cli_test

import (
	"flag"
	"reflect"
	"testing"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/probesched"
)

func bindAll(cfg *cli.Config) *flag.FlagSet {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cfg.BindSeed(fs, 7)
	cfg.BindParallel(fs)
	cfg.BindBudget(fs)
	cfg.BindLoss(fs)
	cfg.BindICMPRate(fs)
	cfg.BindRetries(fs, 0)
	cfg.BindProfiles(fs)
	return fs
}

// optionsConfig applies the bridged options to an empty core.Config the
// way the study constructors do.
func optionsConfig(opts []core.Option) (p, b int, faults *netsim.FaultPlan, r probesched.Resilience) {
	var c core.Config
	for _, o := range opts {
		o(&c)
	}
	return c.Parallelism, c.ProbeBudget, c.Faults, c.Resilience
}

// TestDefaultsMatchHistoricalWiring: with no flags set, the bridge must
// produce exactly the pre-extraction option list — parallelism and
// budget only, no fault plan, zero resilience.
func TestDefaultsMatchHistoricalWiring(t *testing.T) {
	var cfg cli.Config
	fs := bindAll(&cfg)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 {
		t.Errorf("Seed = %d, want default 7", cfg.Seed)
	}
	p, b, faults, r := optionsConfig(cfg.Options())
	if p != 0 || b != 0 {
		t.Errorf("parallelism/budget = %d/%d, want 0/0", p, b)
	}
	if faults != nil {
		t.Errorf("pristine flags installed a fault plan: %+v", faults)
	}
	if r != (probesched.Resilience{}) {
		t.Errorf("pristine flags installed resilience: %+v", r)
	}
	if cfg.Faulted() {
		t.Error("pristine flags report Faulted")
	}
}

// TestFaultAndResilienceBridge: the flag combinations regionmap shipped
// must bridge to the identical FaultPlan / Resilience values it built
// by hand.
func TestFaultAndResilienceBridge(t *testing.T) {
	var cfg cli.Config
	fs := bindAll(&cfg)
	args := []string{"-seed", "11", "-parallel", "4", "-budget", "500",
		"-loss", "0.05", "-icmp-rate", "2", "-retries", "3"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	p, b, faults, r := optionsConfig(cfg.Options())
	if p != 4 || b != 500 {
		t.Errorf("parallelism/budget = %d/%d, want 4/500", p, b)
	}
	want := netsim.FaultPlan{Seed: 11, LinkLoss: 0.05, ICMPRate: 2}
	if faults == nil || !reflect.DeepEqual(*faults, want) {
		t.Errorf("fault plan = %+v, want %+v", faults, want)
	}
	if r.Attempts != 3 || r.BreakerThreshold != 10 || r.RetryBackoff <= 0 {
		t.Errorf("resilience = %+v, want attempts=3 breaker=10 backoff>0", r)
	}
	if !cfg.Faulted() {
		t.Error("faulted flags do not report Faulted")
	}
}

// TestExtraOptionsAppend: cmd-specific options ride after the shared
// bridge so they can override it.
func TestExtraOptionsAppend(t *testing.T) {
	var cfg cli.Config
	fs := bindAll(&cfg)
	if err := fs.Parse([]string{"-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
	p, _, _, _ := optionsConfig(cfg.Options(core.WithParallelism(9)))
	if p != 9 {
		t.Errorf("extra option did not override: parallelism = %d, want 9", p)
	}
}
