package snapshot_test

import (
	"net/netip"
	"reflect"
	"testing"

	"repro/internal/comap"
	"repro/internal/snapshot"
	"repro/internal/topogen"
	"repro/internal/vclock"
)

// quickstartResult runs the quickstart-scale single-region cable
// campaign (the same scenario the probesched golden tests pin) and
// returns its pipeline result.
func quickstartResult(t testing.TB) *comap.Result {
	t.Helper()
	scenario := topogen.NewScenario(42)
	profile := topogen.ComcastProfile()
	profile.Regions = []topogen.CableRegionSpec{{
		Name:     "bverton",
		Anchor:   "Beaverton",
		Backbone: []string{"Seattle", "Sunnyvale"},
		Type:     topogen.DualAgg,
		EdgeCOs:  12,
	}}
	isp := scenario.BuildCable(profile)
	var vps []netip.Addr
	for _, city := range []string{"Seattle", "San Francisco", "Denver", "Chicago", "New York"} {
		vps = append(vps, scenario.AddTransitVP(city).Addr)
	}
	c := &comap.Campaign{
		Net:       scenario.Net,
		DNS:       scenario.DNS,
		Clock:     vclock.New(scenario.Epoch()),
		ISP:       "comcast",
		Seed:      42,
		VPs:       vps,
		Announced: isp.Announced,
	}
	return comap.Run(c)
}

func buildQuickstart(t testing.TB, res *comap.Result) *snapshot.Snapshot {
	t.Helper()
	s, err := snapshot.Build(snapshot.Meta{Study: "cable", ISP: "comcast", Seed: 42}, res)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildConsistentAndCountsMatchReport(t *testing.T) {
	res := quickstartResult(t)
	s := buildQuickstart(t, res)
	if !s.Consistent() {
		t.Fatal("freshly built snapshot reports inconsistent")
	}
	rep := res.BuildReport("comcast")
	st := s.Stats()
	if st.Regions != len(rep.Regions) {
		t.Errorf("Stats.Regions = %d, report has %d", st.Regions, len(rep.Regions))
	}
	wantCOs, wantEdges, wantAddrs, wantAggs := 0, 0, 0, 0
	for _, rr := range rep.Regions {
		wantCOs += len(rr.COs)
		wantEdges += len(rr.Edges)
		for _, co := range rr.COs {
			wantAddrs += len(co.Addrs)
			if co.IsAgg {
				wantAggs++
			}
		}
	}
	if st.COs != wantCOs || st.Edges != wantEdges || st.Addrs != wantAddrs || st.AggCOs != wantAggs {
		t.Errorf("Stats = %+v, want COs=%d edges=%d addrs=%d aggs=%d", st, wantCOs, wantEdges, wantAddrs, wantAggs)
	}
	if st.SchemaVersion != comap.ReportSchemaVersion {
		t.Errorf("SchemaVersion = %d, want %d", st.SchemaVersion, comap.ReportSchemaVersion)
	}
	if s.Report().GeneratedSeed != 42 {
		t.Errorf("report generated_seed = %d, want 42", s.Report().GeneratedSeed)
	}
	total := 0
	for _, n := range s.Table1() {
		total += n
	}
	if total != st.Regions {
		t.Errorf("Table1 counts %d regions, want %d", total, st.Regions)
	}
	if got := len(s.Figure7()); got != st.Regions {
		t.Errorf("Figure7 rows = %d, want %d", got, st.Regions)
	}
}

func TestLookupAddrResolvesEveryMappedInterface(t *testing.T) {
	res := quickstartResult(t)
	s := buildQuickstart(t, res)
	rep := res.BuildReport("comcast")
	checked := 0
	for _, rr := range rep.Regions {
		for _, co := range rr.COs {
			for _, a := range co.Addrs {
				got, ok := s.LookupAddr(a)
				if !ok {
					t.Fatalf("LookupAddr(%s): no CO, want %s", a, co.Key)
				}
				if got.Key != co.Key {
					t.Fatalf("LookupAddr(%s) = %s, want %s", a, got.Key, co.Key)
				}
				if got.Region != rr.Name {
					t.Fatalf("LookupAddr(%s) region = %s, want %s", a, got.Region, rr.Name)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("report carried no mapped interface addresses")
	}
	if _, ok := s.LookupAddr(netip.MustParseAddr("203.0.113.99")); ok {
		t.Error("LookupAddr resolved an address outside the mapped space")
	}
}

// TestLookupAddrBlockAggregate checks that an unprobed address inside a
// /24 whose known interfaces all belong to one CO resolves to that CO —
// the prefix-aggregate half of the compiled LPM tables.
func TestLookupAddrBlockAggregate(t *testing.T) {
	res := quickstartResult(t)
	s := buildQuickstart(t, res)
	rep := res.BuildReport("comcast")
	// Find a /24 owned by exactly one CO, then query an address in it
	// that is not a known interface.
	owners := map[netip.Addr]map[string]bool{}
	known := map[netip.Addr]bool{}
	for _, rr := range rep.Regions {
		for _, co := range rr.COs {
			for _, a := range co.Addrs {
				known[a] = true
				p, err := a.Prefix(24)
				if err != nil {
					continue
				}
				if owners[p.Addr()] == nil {
					owners[p.Addr()] = map[string]bool{}
				}
				owners[p.Addr()][co.Key] = true
			}
		}
	}
	tried := false
	for base, cos := range owners {
		if len(cos) != 1 {
			continue
		}
		probe := base
		for i := 0; i < 253; i++ {
			probe = probe.Next()
			if !known[probe] {
				break
			}
		}
		if known[probe] {
			continue
		}
		tried = true
		got, ok := s.LookupAddr(probe)
		if !ok {
			t.Fatalf("LookupAddr(%s): no CO via /24 aggregate", probe)
		}
		for key := range cos {
			if got.Key != key {
				t.Fatalf("LookupAddr(%s) = %s, want %s", probe, got.Key, key)
			}
		}
		break
	}
	if !tried {
		t.Skip("no single-owner /24 in this scenario")
	}
}

func TestLookupPrefixReturnsRangeOwners(t *testing.T) {
	res := quickstartResult(t)
	s := buildQuickstart(t, res)
	rep := res.BuildReport("comcast")
	// Whole-space query returns every CO that has addresses.
	all := s.LookupPrefix(netip.MustParsePrefix("0.0.0.0/0"))
	withAddrs := map[string]bool{}
	for _, rr := range rep.Regions {
		for _, co := range rr.COs {
			if len(co.Addrs) > 0 {
				withAddrs[co.Key] = true
			}
		}
	}
	if len(all) != len(withAddrs) {
		t.Fatalf("LookupPrefix(0/0) returned %d COs, want %d", len(all), len(withAddrs))
	}
	for _, co := range all {
		if !withAddrs[co.Key] {
			t.Errorf("LookupPrefix(0/0) returned unmapped CO %s", co.Key)
		}
	}
	// A /24 query returns exactly the COs owning addresses in it.
	if len(all) > 0 {
		a := all[0].Addrs[0]
		p, _ := a.Prefix(24)
		got := s.LookupPrefix(p)
		if len(got) == 0 {
			t.Fatalf("LookupPrefix(%s) empty, but %s lives there", p, a)
		}
		for _, co := range got {
			in := false
			for _, ca := range co.Addrs {
				if p.Contains(ca) {
					in = true
				}
			}
			if !in {
				t.Errorf("LookupPrefix(%s) returned %s with no address in range", p, co.Key)
			}
		}
	}
}

func TestRegionExtractMatchesReport(t *testing.T) {
	res := quickstartResult(t)
	s := buildQuickstart(t, res)
	rep := res.BuildReport("comcast")
	names := s.RegionNames()
	if len(names) != len(rep.Regions) {
		t.Fatalf("RegionNames() = %d names, want %d", len(names), len(rep.Regions))
	}
	for i, name := range names {
		got, ok := s.Region(name)
		if !ok {
			t.Fatalf("Region(%s) missing", name)
		}
		if !reflect.DeepEqual(*got, rep.Regions[i]) {
			t.Errorf("Region(%s) extract differs from report", name)
		}
		cos := s.RegionCOs(name)
		if len(cos) != len(rep.Regions[i].COs) {
			t.Errorf("RegionCOs(%s) = %d, want %d", name, len(cos), len(rep.Regions[i].COs))
		}
	}
	if _, ok := s.Region("atlantis"); ok {
		t.Error("Region(atlantis) resolved")
	}
}

// TestBuildDeterministic checks two builds of the same result are
// bit-identical artifacts (equal report JSON and equal Consistent
// digests), so a refresh that re-measures an unchanged world publishes
// an identical — merely re-versioned — snapshot.
func TestBuildDeterministic(t *testing.T) {
	res := quickstartResult(t)
	a := buildQuickstart(t, res)
	b := buildQuickstart(t, res)
	if string(a.ReportJSON()) != string(b.ReportJSON()) {
		t.Error("two builds of one result encode different report JSON")
	}
	if !reflect.DeepEqual(a.Stats(), b.Stats()) {
		t.Errorf("stats differ across builds: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestStorePublishLoadAndVersioning(t *testing.T) {
	res := quickstartResult(t)
	var store snapshot.Store
	if store.Load() != nil {
		t.Fatal("empty store loaded a snapshot")
	}
	s1 := buildQuickstart(t, res)
	v1, err := store.Publish(s1)
	if err != nil || v1 != 1 {
		t.Fatalf("first Publish = (%d, %v), want (1, nil)", v1, err)
	}
	if _, err := store.Publish(s1); err == nil {
		t.Fatal("re-publishing the same snapshot did not error")
	}
	s2 := buildQuickstart(t, res)
	v2, err := store.Publish(s2)
	if err != nil || v2 != 2 {
		t.Fatalf("second Publish = (%d, %v), want (2, nil)", v2, err)
	}
	cur := store.Load()
	if cur != s2 || cur.Version() != 2 {
		t.Fatalf("Load() returned version %d, want 2", cur.Version())
	}
	// The superseded artifact remains fully valid.
	if !s1.Consistent() || s1.Version() != 1 {
		t.Error("superseded snapshot no longer consistent")
	}
}
