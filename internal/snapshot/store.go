package snapshot

import (
	"fmt"
	"sync/atomic"
)

// Store publishes snapshots to concurrent readers. The entire
// synchronization contract is one atomic pointer: Publish seals a fully
// built snapshot (stamping its monotonic version) and swaps it in;
// Load is a single atomic pointer read. Readers take no locks, ever —
// a reader that loaded version N keeps using it, unperturbed, while
// version N+1 is built and swapped in beside it, and the old artifact
// is garbage-collected when its last reader drops it. There is no
// read-copy-update grace period to manage because snapshots are never
// mutated after publication.
type Store struct {
	cur     atomic.Pointer[Snapshot]
	version atomic.Uint64
}

// Publish stamps the snapshot with the next version and installs it as
// the current artifact, returning the assigned version. A snapshot may
// be published exactly once: its version field is written here, before
// the pointer is shared, which is what keeps every published snapshot
// immutable afterwards.
func (st *Store) Publish(s *Snapshot) (uint64, error) {
	if s == nil {
		return 0, fmt.Errorf("snapshot: publish nil snapshot")
	}
	if s.version != 0 {
		return 0, fmt.Errorf("snapshot: snapshot already published as version %d", s.version)
	}
	s.version = st.version.Add(1)
	st.cur.Store(s)
	return s.version, nil
}

// Load returns the current snapshot, or nil before the first Publish.
// The returned artifact is immutable and remains fully valid after any
// number of subsequent publications.
func (st *Store) Load() *Snapshot { return st.cur.Load() }

// Version returns the most recently assigned publication version (zero
// before the first Publish).
func (st *Store) Version() uint64 { return st.version.Load() }
