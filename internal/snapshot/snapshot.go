// Package snapshot turns a one-shot inference result into a long-lived,
// queryable topology artifact. A Snapshot is an immutable compilation
// of one comap pipeline run: symtab-interned CO identifiers, columnar
// CO/edge storage (structure-of-arrays, region-major spans), a compiled
// longest-prefix-match table from interface address to central office,
// a sorted address index for prefix-range queries, and the pre-encoded
// schema-versioned report JSON. Build it once, publish it through a
// Store, and any number of goroutines query it concurrently with zero
// locks — immutability is the whole synchronization story on the read
// side.
//
// Versioning: a Snapshot's content is fixed at Build; its Version is
// stamped by the Store at publication (monotonic per Store). Refreshing
// a served topology is therefore one atomic pointer swap — readers in
// flight keep the version they loaded, new readers see the new one, and
// no reader ever observes a half-installed artifact (Consistent()
// re-derives the content digest to prove it).
package snapshot

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"
	"time"

	"repro/internal/comap"
	"repro/internal/prefixset"
	"repro/internal/symtab"
)

// Meta names the study run a snapshot was compiled from.
type Meta struct {
	// Study is the registry name of the study ("cable") and ISP the
	// operator whose inference this snapshot serves.
	Study string
	ISP   string
	// Seed is the scenario seed; BuiltAt the campaign's final
	// virtual-clock reading (the artifact's logical timestamp).
	Seed    int64
	BuiltAt time.Time
}

// CO is the materialized view of one central office, as returned by
// lookups. Addrs aliases the snapshot's columnar storage — callers must
// not mutate it.
type CO struct {
	Key        string       `json:"key"`
	Tag        string       `json:"tag"`
	Region     string       `json:"region"`
	IsAgg      bool         `json:"is_agg"`
	Addrs      []netip.Addr `json:"addrs,omitempty"`
	Confidence float64      `json:"confidence"`
}

// Stats summarizes a snapshot for the service's stats endpoint.
type Stats struct {
	Version       uint64    `json:"version"`
	Study         string    `json:"study"`
	ISP           string    `json:"isp"`
	Seed          int64     `json:"seed"`
	SchemaVersion int       `json:"schema_version"`
	BuiltAt       time.Time `json:"built_at"`
	Regions       int       `json:"regions"`
	COs           int       `json:"cos"`
	AggCOs        int       `json:"agg_cos"`
	Edges         int       `json:"edges"`
	Addrs         int       `json:"addrs"`
	// MeanConfidence averages per-CO evidence confidence across every
	// CO; MinConfidence is the weakest CO's score.
	MeanConfidence float64 `json:"mean_confidence"`
	MinConfidence  float64 `json:"min_confidence"`
}

// regionMeta is one region's spans into the columnar CO/edge storage.
type regionMeta struct {
	name           symtab.Sym
	aggType        string
	coLo, coHi     uint32
	edgeLo, edgeHi uint32
}

// Snapshot is the immutable artifact. All fields are written by Build
// (and Version once, by Store.Publish, before the pointer is ever
// shared); afterwards every method is safe for unlimited concurrent use
// with no locking.
type Snapshot struct {
	version uint64
	meta    Meta

	syms *symtab.Table

	// Columnar CO storage, region-major: COs of region r occupy
	// [regions[r].coLo, regions[r].coHi).
	coKey     []symtab.Sym
	coTag     []symtab.Sym
	coRegion  []uint32
	coIsAgg   []bool
	coConf    []float64
	coAddrOff []uint32 // len = len(coKey)+1; spans into coAddrs
	coAddrs   []netip.Addr

	// Columnar edge storage, region-major, (from, to, count).
	edgeFrom  []symtab.Sym
	edgeTo    []symtab.Sym
	edgeCount []int32

	regions   []regionMeta
	regionIdx map[string]int

	// addrSorted/addrCO is the sorted address index for prefix-range
	// queries; addrToCO is the compiled prefix-set trie for point
	// lookups (exact interface entries plus unambiguous block
	// aggregates — the IPv6-ready replacement for the per-bit-length
	// masked tables).
	addrSorted []netip.Addr
	addrCO     []uint32
	addrToCO   *prefixset.Compiled

	report     *comap.Report
	reportJSON []byte
	coverage   comap.CoverageReport

	// digest is the FNV-1a content digest computed as the final build
	// step; Consistent() re-derives it. Version is deliberately outside
	// the digest: publication stamps it after content is sealed.
	digest uint64
}

// Build compiles a pipeline result into a servable snapshot. The
// traversal orders everything canonically (regions and CO keys sorted,
// edges sorted by endpoints), so equal results compile to byte-equal
// artifacts regardless of map iteration order.
func Build(meta Meta, res *comap.Result) (*Snapshot, error) {
	if res == nil || res.Inference == nil {
		return nil, fmt.Errorf("snapshot: nil result for study %q isp %q", meta.Study, meta.ISP)
	}
	rep := res.BuildReport(meta.ISP)
	js, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("snapshot: encode report: %w", err)
	}
	js = append(js, '\n')

	s := &Snapshot{
		meta:       meta,
		syms:       symtab.New(256),
		regionIdx:  map[string]int{},
		report:     &rep,
		reportJSON: js,
		coverage:   res.Coverage,
	}

	names := make([]string, 0, len(res.Inference.Regions))
	for n := range res.Inference.Regions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		g := res.Inference.Regions[name]
		rm := regionMeta{
			name:    s.syms.Intern(name),
			aggType: g.Classify().String(),
			coLo:    uint32(len(s.coKey)),
			edgeLo:  uint32(len(s.edgeFrom)),
		}
		keys := make([]string, 0, len(g.COs))
		for k := range g.COs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			node := g.COs[k]
			s.coKey = append(s.coKey, s.syms.Intern(k))
			s.coTag = append(s.coTag, s.syms.Intern(node.Tag))
			s.coRegion = append(s.coRegion, uint32(len(s.regions)))
			s.coIsAgg = append(s.coIsAgg, node.IsAgg)
			s.coConf = append(s.coConf, comap.COConfidence(g, k))
			addrs := append([]netip.Addr(nil), node.Addrs...)
			sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
			s.coAddrs = append(s.coAddrs, addrs...)
			s.coAddrOff = append(s.coAddrOff, uint32(len(s.coAddrs)))
		}
		type edge struct {
			from, to string
			n        int
		}
		edges := make([]edge, 0, len(g.Edges))
		for e, n := range g.Edges {
			edges = append(edges, edge{e[0], e[1], n})
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].from != edges[j].from {
				return edges[i].from < edges[j].from
			}
			return edges[i].to < edges[j].to
		})
		for _, e := range edges {
			s.edgeFrom = append(s.edgeFrom, s.syms.Intern(e.from))
			s.edgeTo = append(s.edgeTo, s.syms.Intern(e.to))
			s.edgeCount = append(s.edgeCount, int32(e.n))
		}
		rm.coHi = uint32(len(s.coKey))
		rm.edgeHi = uint32(len(s.edgeFrom))
		s.regionIdx[name] = len(s.regions)
		s.regions = append(s.regions, rm)
	}
	// coAddrOff needs the leading 0 sentinel; it was appended per-CO
	// above, so prepend once.
	s.coAddrOff = append([]uint32{0}, s.coAddrOff...)

	s.buildAddrIndex()
	s.digest = s.computeDigest()
	return s, nil
}

// buildAddrIndex compiles the two address-query structures: the sorted
// (addr, CO) index for range scans, and the compiled prefix-set trie
// for point lookups — a /32 (or /128) entry per interface address, plus
// a /24 (or /48) aggregate for every block whose addresses all belong
// to one CO, so a query for an unprobed address still resolves to its
// CO when the block is unambiguous. Longest-prefix semantics make the
// exact entry beat its block aggregate, exactly as the per-bit-length
// tables (probed longest first) did before the trie.
func (s *Snapshot) buildAddrIndex() {
	n := len(s.coAddrs)
	s.addrSorted = make([]netip.Addr, 0, n)
	s.addrCO = make([]uint32, 0, n)
	type pair struct {
		a  netip.Addr
		co uint32
	}
	pairs := make([]pair, 0, n)
	for co := 0; co < len(s.coKey); co++ {
		for _, a := range s.coAddrs[s.coAddrOff[co]:s.coAddrOff[co+1]] {
			pairs = append(pairs, pair{a, uint32(co)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a.Less(pairs[j].a)
		}
		return pairs[i].co < pairs[j].co
	})
	for _, p := range pairs {
		s.addrSorted = append(s.addrSorted, p.a)
		s.addrCO = append(s.addrCO, p.co)
	}

	// Exact entries first, then unambiguous block aggregates, all in
	// one trie. An ambiguous block (two COs sharing it) is marked -1
	// and deleted before compilation: a miss is better than a guess,
	// and the trie re-collapses on delete, so the compiled layout is
	// identical to one that never saw the ambiguous block.
	var tbl prefixset.Table
	put := func(p netip.Prefix, co int32) {
		if prev, ok := tbl.Get(p); ok {
			if prev != co {
				tbl.Put(p, -1) // ambiguous
			}
			return
		}
		tbl.Put(p, co)
	}
	for i, a := range s.addrSorted {
		put(netip.PrefixFrom(a, a.BitLen()), int32(s.addrCO[i]))
		blockBits := 24
		if a.Is6() && !a.Is4In6() {
			blockBits = 48
		}
		if p, err := a.Prefix(blockBits); err == nil {
			put(p, int32(s.addrCO[i]))
		}
	}
	var ambiguous []netip.Prefix
	tbl.Each(func(p netip.Prefix, co int32) bool {
		if co < 0 {
			ambiguous = append(ambiguous, p)
		}
		return true
	})
	for _, p := range ambiguous {
		tbl.Delete(p)
	}
	s.addrToCO = tbl.Compile()
}

// computeDigest folds every content column (never the publication
// version) into one FNV-1a value.
func (s *Snapshot) computeDigest() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "meta %s/%s seed=%d built=%d\n", s.meta.Study, s.meta.ISP, s.meta.Seed, s.meta.BuiltAt.UnixNano())
	for i := 0; i < s.syms.Len(); i++ {
		h.Write([]byte(s.syms.Str(symtab.Sym(i))))
		h.Write([]byte{0})
	}
	var scratch [8]byte
	wu32 := func(v uint32) {
		scratch[0], scratch[1], scratch[2], scratch[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(scratch[:4])
	}
	for i := range s.coKey {
		wu32(uint32(s.coKey[i]))
		wu32(uint32(s.coTag[i]))
		wu32(s.coRegion[i])
		if s.coIsAgg[i] {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	for _, off := range s.coAddrOff {
		wu32(off)
	}
	for _, a := range s.coAddrs {
		b, _ := a.MarshalBinary()
		h.Write(b)
	}
	for i := range s.edgeFrom {
		wu32(uint32(s.edgeFrom[i]))
		wu32(uint32(s.edgeTo[i]))
		wu32(uint32(s.edgeCount[i]))
	}
	for _, rm := range s.regions {
		wu32(uint32(rm.name))
		wu32(rm.coLo)
		wu32(rm.coHi)
		wu32(rm.edgeLo)
		wu32(rm.edgeHi)
		h.Write([]byte(rm.aggType))
	}
	h.Write(s.reportJSON)
	return h.Sum64()
}

// Consistent re-derives the content digest and structural invariants.
// A torn or half-built artifact — which the atomic publication
// discipline makes impossible to observe, and the race test hammers —
// would fail here.
func (s *Snapshot) Consistent() bool {
	n := len(s.coKey)
	if len(s.coTag) != n || len(s.coRegion) != n || len(s.coIsAgg) != n ||
		len(s.coConf) != n || len(s.coAddrOff) != n+1 {
		return false
	}
	if n > 0 && int(s.coAddrOff[n]) != len(s.coAddrs) {
		return false
	}
	for i := 0; i < n; i++ {
		if s.coAddrOff[i] > s.coAddrOff[i+1] {
			return false
		}
	}
	if len(s.edgeTo) != len(s.edgeFrom) || len(s.edgeCount) != len(s.edgeFrom) {
		return false
	}
	if len(s.addrCO) != len(s.addrSorted) || s.addrToCO == nil {
		return false
	}
	return s.digest == s.computeDigest()
}

// Version is the Store-assigned publication version; zero means the
// snapshot was never published.
func (s *Snapshot) Version() uint64 { return s.version }

// Meta returns the identifying metadata.
func (s *Snapshot) Meta() Meta { return s.meta }

// co materializes CO index i.
func (s *Snapshot) co(i uint32) CO {
	return CO{
		Key:        s.syms.Str(s.coKey[i]),
		Tag:        s.syms.Str(s.coTag[i]),
		Region:     s.syms.Str(s.regions[s.coRegion[i]].name),
		IsAgg:      s.coIsAgg[i],
		Addrs:      s.coAddrs[s.coAddrOff[i]:s.coAddrOff[i+1]],
		Confidence: s.coConf[i],
	}
}

// LookupAddr resolves an interface address to its central office via
// the compiled prefix-set trie: longest match, so an exact interface
// entry beats its block aggregate. ok is false when no mapped CO
// covers the address.
func (s *Snapshot) LookupAddr(a netip.Addr) (CO, bool) {
	if s.addrToCO == nil {
		return CO{}, false
	}
	co, ok := s.addrToCO.Lookup(a)
	if !ok {
		return CO{}, false
	}
	return s.co(uint32(co)), true
}

// LookupPrefix returns every CO with at least one interface address
// inside the prefix, in address order with duplicates removed, via a
// binary search over the sorted address index.
func (s *Snapshot) LookupPrefix(p netip.Prefix) []CO {
	p = p.Masked()
	lo := sort.Search(len(s.addrSorted), func(i int) bool {
		return !s.addrSorted[i].Less(p.Addr())
	})
	var out []CO
	seen := map[uint32]bool{}
	for i := lo; i < len(s.addrSorted) && p.Contains(s.addrSorted[i]); i++ {
		co := s.addrCO[i]
		if !seen[co] {
			seen[co] = true
			out = append(out, s.co(co))
		}
	}
	return out
}

// RegionNames returns the region names in canonical (sorted) order.
func (s *Snapshot) RegionNames() []string {
	out := make([]string, len(s.regions))
	for i, rm := range s.regions {
		out[i] = s.syms.Str(rm.name)
	}
	return out
}

// Region returns the serialized extract of one region graph — the same
// schema-versioned RegionReport the full report carries — or ok=false
// for an unknown region.
func (s *Snapshot) Region(name string) (*comap.RegionReport, bool) {
	i, ok := s.regionIdx[name]
	if !ok {
		return nil, false
	}
	return &s.report.Regions[i], true
}

// RegionCOs returns one region's COs as materialized views, in key
// order; nil for an unknown region.
func (s *Snapshot) RegionCOs(name string) []CO {
	i, ok := s.regionIdx[name]
	if !ok {
		return nil
	}
	rm := s.regions[i]
	out := make([]CO, 0, rm.coHi-rm.coLo)
	for c := rm.coLo; c < rm.coHi; c++ {
		out = append(out, s.co(c))
	}
	return out
}

// Report returns the full schema-versioned report.
func (s *Snapshot) Report() *comap.Report { return s.report }

// ReportJSON returns the report pre-encoded as indented JSON (with a
// trailing newline), so serving it costs no per-request marshaling.
func (s *Snapshot) ReportJSON() []byte { return s.reportJSON }

// Coverage returns the campaign's measurement-coverage accounting.
func (s *Snapshot) Coverage() comap.CoverageReport { return s.coverage }

// Table1 counts regions per aggregation archetype — the paper's Table 1
// as a service endpoint.
func (s *Snapshot) Table1() map[string]int {
	out := map[string]int{}
	for _, rm := range s.regions {
		out[rm.aggType]++
	}
	return out
}

// RegionSize is one row of the Figure 7 endpoint.
type RegionSize struct {
	Region string `json:"region"`
	COs    int    `json:"cos"`
	AggCOs int    `json:"agg_cos"`
}

// Figure7 returns per-region CO and AggCO counts in region order — the
// paper's Figure 7 CDF inputs as a service endpoint.
func (s *Snapshot) Figure7() []RegionSize {
	out := make([]RegionSize, 0, len(s.regions))
	for _, rm := range s.regions {
		row := RegionSize{Region: s.syms.Str(rm.name), COs: int(rm.coHi - rm.coLo)}
		for c := rm.coLo; c < rm.coHi; c++ {
			if s.coIsAgg[c] {
				row.AggCOs++
			}
		}
		out = append(out, row)
	}
	return out
}

// Stats summarizes the snapshot.
func (s *Snapshot) Stats() Stats {
	st := Stats{
		Version:       s.version,
		Study:         s.meta.Study,
		ISP:           s.meta.ISP,
		Seed:          s.meta.Seed,
		SchemaVersion: s.report.SchemaVersion,
		BuiltAt:       s.meta.BuiltAt,
		Regions:       len(s.regions),
		COs:           len(s.coKey),
		Edges:         len(s.edgeFrom),
		Addrs:         len(s.addrSorted),
		MinConfidence: 1,
	}
	var sum float64
	for i := range s.coKey {
		if s.coIsAgg[i] {
			st.AggCOs++
		}
		sum += s.coConf[i]
		if s.coConf[i] < st.MinConfidence {
			st.MinConfidence = s.coConf[i]
		}
	}
	if len(s.coKey) > 0 {
		st.MeanConfidence = sum / float64(len(s.coKey))
	} else {
		st.MinConfidence = 0
	}
	return st
}
