package snapshot_test

import (
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/snapshot"
)

// TestStoreSwapUnderConcurrentReads is the torn-snapshot hammer: N
// reader goroutines spin on Load while the writer builds and publishes
// several refresh snapshots. Every read must observe a complete,
// internally consistent artifact (content digest re-derives, structural
// invariants hold, lookups resolve) and a per-reader monotonically
// non-decreasing version. Run under -race (make verify does) this also
// proves the read path takes zero locks against the publication path:
// the only shared write is the atomic pointer swap itself.
func TestStoreSwapUnderConcurrentReads(t *testing.T) {
	res := quickstartResult(t)
	base := buildQuickstart(t, res)
	var store snapshot.Store
	if _, err := store.Publish(base); err != nil {
		t.Fatal(err)
	}
	// A known-good probe address for the lookup assertion.
	probe := base.LookupPrefix(netip.MustParsePrefix("0.0.0.0/0"))[0].Addrs[0]

	const refreshes = 4 // >= 3 background swaps per the acceptance bar
	readers := runtime.GOMAXPROCS(0) * 4
	if readers < 8 {
		readers = 8
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			reads := 0
			for !done.Load() || reads == 0 {
				s := store.Load()
				reads++
				v := s.Version()
				if v == 0 {
					errs <- "read an unpublished (version 0) snapshot"
					return
				}
				if v < lastVersion {
					errs <- "version went backwards"
					return
				}
				lastVersion = v
				if !s.Consistent() {
					errs <- "read an inconsistent snapshot"
					return
				}
				if co, ok := s.LookupAddr(probe); !ok || co.Key == "" {
					errs <- "lookup failed against a live snapshot"
					return
				}
				if s.Stats().Version != v {
					errs <- "stats version disagrees with snapshot version"
					return
				}
			}
		}()
	}

	// The writer rebuilds the artifact from the same result — a real
	// compile (interning, columns, LPM), not a copy — and swaps it in,
	// refreshes times, while the readers hammer.
	for i := 0; i < refreshes; i++ {
		s := buildQuickstart(t, res)
		if _, err := store.Publish(s); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if got := store.Version(); got != refreshes+1 {
		t.Errorf("final version %d, want %d", got, refreshes+1)
	}
}
