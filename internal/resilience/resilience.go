// Package resilience implements the paper's first future-work direction
// (§8): using the inferred regional topologies to reason about failure
// impact. For an inferred region graph it computes, for every CO and
// entry point, how many EdgeCOs lose all connectivity to the region's
// entries when that element fails — the "blast radius" that turned the
// Christmas 2020 Nashville BackboneCO attack into a region-wide outage.
//
// The analysis runs on comap.RegionGraph output only: like the rest of
// the inference stack it never sees generator ground truth.
package resilience

import (
	"sort"

	"repro/internal/comap"
)

// Impact is the consequence of one element's failure.
type Impact struct {
	// Element is the failed CO key, or an entry key ("bb:..." or a
	// feeder-region CO).
	Element string
	// Kind is "co" or "entry".
	Kind string
	// DisconnectedEdgeCOs counts EdgeCOs with no remaining path to any
	// entry point.
	DisconnectedEdgeCOs int
	// TotalEdgeCOs is the region's EdgeCO count, for fractions.
	TotalEdgeCOs int
}

// Frac returns the fraction of EdgeCOs disconnected.
func (i Impact) Frac() float64 {
	if i.TotalEdgeCOs == 0 {
		return 0
	}
	return float64(i.DisconnectedEdgeCOs) / float64(i.TotalEdgeCOs)
}

// Report is the per-region resilience summary.
type Report struct {
	Region string
	// Impacts holds one entry per CO and per entry point, sorted by
	// descending blast radius then element name.
	Impacts []Impact
	// SinglePointsOfFailure are the elements whose loss disconnects
	// more than half the EdgeCOs.
	SinglePointsOfFailure []string
	// BaselineUnreachable counts EdgeCOs with no path to any entry even
	// before a failure (inference gaps).
	BaselineUnreachable int
}

// Analyze computes failure impact for every CO and entry point of an
// inferred region.
func Analyze(g *comap.RegionGraph) Report {
	rep := Report{Region: g.Region}
	edges := undirected(g)
	entryFeeds := map[string][]string{} // entry element -> in-region COs it feeds
	for _, e := range g.Entries {
		entryFeeds[e.From] = append(entryFeeds[e.From], e.FirstCOs...)
	}
	var edgeCOs []string
	for key, node := range g.COs {
		if !node.IsAgg {
			edgeCOs = append(edgeCOs, key)
		}
	}
	sort.Strings(edgeCOs)
	total := len(edgeCOs)

	reachable := func(failedCO, failedEntry string) map[string]bool {
		// BFS from every entry's first COs, skipping failed elements.
		seen := map[string]bool{}
		var queue []string
		for entry, feeds := range entryFeeds {
			if entry == failedEntry {
				continue
			}
			for _, co := range feeds {
				if co != failedCO && !seen[co] && g.COs[co] != nil {
					seen[co] = true
					queue = append(queue, co)
				}
			}
		}
		sort.Strings(queue) // determinism
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range edges[cur] {
				if nb == failedCO || seen[nb] {
					continue
				}
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
		return seen
	}

	countDisconnected := func(reach map[string]bool, failedCO string) int {
		n := 0
		for _, e := range edgeCOs {
			if e == failedCO {
				continue // the failed element itself is not "stranded"
			}
			if !reach[e] {
				n++
			}
		}
		return n
	}

	base := reachable("", "")
	rep.BaselineUnreachable = countDisconnected(base, "")

	var elements []Impact
	var coKeys []string
	for key := range g.COs {
		coKeys = append(coKeys, key)
	}
	sort.Strings(coKeys)
	for _, key := range coKeys {
		reach := reachable(key, "")
		elements = append(elements, Impact{
			Element:             key,
			Kind:                "co",
			DisconnectedEdgeCOs: countDisconnected(reach, key) - rep.BaselineUnreachable,
			TotalEdgeCOs:        total,
		})
	}
	var entryKeys []string
	for entry := range entryFeeds {
		entryKeys = append(entryKeys, entry)
	}
	sort.Strings(entryKeys)
	for _, entry := range entryKeys {
		reach := reachable("", entry)
		elements = append(elements, Impact{
			Element:             entry,
			Kind:                "entry",
			DisconnectedEdgeCOs: countDisconnected(reach, "") - rep.BaselineUnreachable,
			TotalEdgeCOs:        total,
		})
	}
	for i := range elements {
		if elements[i].DisconnectedEdgeCOs < 0 {
			elements[i].DisconnectedEdgeCOs = 0
		}
	}
	sort.Slice(elements, func(i, j int) bool {
		if elements[i].DisconnectedEdgeCOs != elements[j].DisconnectedEdgeCOs {
			return elements[i].DisconnectedEdgeCOs > elements[j].DisconnectedEdgeCOs
		}
		return elements[i].Element < elements[j].Element
	})
	rep.Impacts = elements
	for _, im := range elements {
		if im.Frac() > 0.5 {
			rep.SinglePointsOfFailure = append(rep.SinglePointsOfFailure, im.Element)
		}
	}
	return rep
}

// undirected builds an adjacency list treating CO edges as bidirectional
// fiber (the paper's operators confirmed all paths are active).
func undirected(g *comap.RegionGraph) map[string][]string {
	adj := map[string]map[string]bool{}
	add := func(a, b string) {
		if adj[a] == nil {
			adj[a] = map[string]bool{}
		}
		adj[a][b] = true
	}
	for e := range g.Edges {
		add(e[0], e[1])
		add(e[1], e[0])
	}
	out := map[string][]string{}
	for k, set := range adj {
		for n := range set {
			out[k] = append(out[k], n)
		}
		sort.Strings(out[k])
	}
	return out
}

// WorstCO returns the CO whose failure strands the most EdgeCOs.
func (r Report) WorstCO() (Impact, bool) {
	for _, im := range r.Impacts {
		if im.Kind == "co" {
			return im, true
		}
	}
	return Impact{}, false
}

// EntryLossSurvivable reports whether the region keeps every EdgeCO
// connected after losing any single entry point (the dual-backbone
// design goal the operators described in §5.4).
func (r Report) EntryLossSurvivable() bool {
	for _, im := range r.Impacts {
		if im.Kind == "entry" && im.DisconnectedEdgeCOs > 0 {
			return false
		}
	}
	return true
}
