package resilience

import (
	"fmt"
	"testing"

	"repro/internal/comap"
)

// mk builds a RegionGraph with the given edges and entries.
func mk(edges [][2]string, aggs []string, entries []comap.Entry) *comap.RegionGraph {
	g := &comap.RegionGraph{Region: "r", COs: map[string]*comap.CONode{}, Edges: map[[2]string]int{}}
	for _, e := range edges {
		g.Edges[e] = 2
		for _, key := range e {
			if g.COs[key] == nil {
				g.COs[key] = &comap.CONode{Key: key, Tag: key}
			}
		}
	}
	for _, a := range aggs {
		if g.COs[a] == nil {
			g.COs[a] = &comap.CONode{Key: a, Tag: a}
		}
		g.COs[a].IsAgg = true
	}
	g.Entries = entries
	return g
}

func dualStar(n int) ([][2]string, []string) {
	var edges [][2]string
	for i := 0; i < n; i++ {
		e := fmt.Sprintf("e%02d", i)
		edges = append(edges, [2]string{"aggA", e}, [2]string{"aggB", e})
	}
	return edges, []string{"aggA", "aggB"}
}

func TestDualStarSurvivesAnySingleFailure(t *testing.T) {
	edges, aggs := dualStar(10)
	g := mk(edges, aggs, []comap.Entry{
		{From: "bb:x", FirstCOs: []string{"aggA"}},
		{From: "bb:y", FirstCOs: []string{"aggB"}},
	})
	rep := Analyze(g)
	if rep.BaselineUnreachable != 0 {
		t.Fatalf("baseline unreachable = %d", rep.BaselineUnreachable)
	}
	if !rep.EntryLossSurvivable() {
		t.Error("dual-entry dual-star should survive entry loss")
	}
	worst, ok := rep.WorstCO()
	if !ok {
		t.Fatal("no CO impact")
	}
	// Losing either AggCO strands nothing (the other still reaches all).
	if worst.DisconnectedEdgeCOs != 0 {
		t.Errorf("worst CO failure strands %d EdgeCOs, want 0 (%s)", worst.DisconnectedEdgeCOs, worst.Element)
	}
	if len(rep.SinglePointsOfFailure) != 0 {
		t.Errorf("SPOFs = %v, want none", rep.SinglePointsOfFailure)
	}
}

func TestSingleAggIsSPOF(t *testing.T) {
	// Single-AggCO region with one entry: the Nashville shape.
	var edges [][2]string
	for i := 0; i < 8; i++ {
		edges = append(edges, [2]string{"agg", fmt.Sprintf("e%02d", i)})
	}
	g := mk(edges, []string{"agg"}, []comap.Entry{
		{From: "bb:x", FirstCOs: []string{"agg"}},
	})
	rep := Analyze(g)
	worst, _ := rep.WorstCO()
	if worst.Element != "agg" || worst.DisconnectedEdgeCOs != 8 {
		t.Errorf("worst = %+v, want agg stranding all 8", worst)
	}
	if rep.EntryLossSurvivable() {
		t.Error("single-entry region should not survive entry loss")
	}
	if len(rep.SinglePointsOfFailure) == 0 {
		t.Error("no SPOFs found")
	}
	if got := worst.Frac(); got != 1.0 {
		t.Errorf("Frac = %v", got)
	}
}

func TestChainAmplifiesImpact(t *testing.T) {
	// e2 hangs off e1 which hangs off the agg: losing e1 strands e2.
	edges := [][2]string{
		{"agg", "e1"}, {"e1", "e2"}, {"agg", "e3"},
	}
	g := mk(edges, []string{"agg"}, []comap.Entry{{From: "bb:x", FirstCOs: []string{"agg"}}})
	rep := Analyze(g)
	var e1Impact Impact
	for _, im := range rep.Impacts {
		if im.Element == "e1" {
			e1Impact = im
		}
	}
	if e1Impact.DisconnectedEdgeCOs != 1 {
		t.Errorf("losing e1 strands %d, want 1 (e2)", e1Impact.DisconnectedEdgeCOs)
	}
}

func TestBaselineUnreachableNotCharged(t *testing.T) {
	// An island CO disconnected from every entry: baseline, not blamed
	// on any failure.
	edges := [][2]string{
		{"agg", "e1"}, {"island1", "island2"},
	}
	g := mk(edges, []string{"agg"}, []comap.Entry{{From: "bb:x", FirstCOs: []string{"agg"}}})
	rep := Analyze(g)
	if rep.BaselineUnreachable != 2 {
		t.Fatalf("baseline unreachable = %d, want 2", rep.BaselineUnreachable)
	}
	for _, im := range rep.Impacts {
		if im.Element == "e1" && im.DisconnectedEdgeCOs != 0 {
			t.Errorf("e1 failure charged with island loss: %d", im.DisconnectedEdgeCOs)
		}
	}
}

func TestImpactsSortedAndComplete(t *testing.T) {
	edges, aggs := dualStar(6)
	g := mk(edges, aggs, []comap.Entry{{From: "bb:x", FirstCOs: []string{"aggA", "aggB"}}})
	rep := Analyze(g)
	// One impact per CO plus one per entry.
	if want := len(g.COs) + 1; len(rep.Impacts) != want {
		t.Fatalf("impacts = %d, want %d", len(rep.Impacts), want)
	}
	for i := 1; i < len(rep.Impacts); i++ {
		if rep.Impacts[i-1].DisconnectedEdgeCOs < rep.Impacts[i].DisconnectedEdgeCOs {
			t.Fatal("impacts not sorted by severity")
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := &comap.RegionGraph{Region: "empty", COs: map[string]*comap.CONode{}, Edges: map[[2]string]int{}}
	rep := Analyze(g)
	if len(rep.Impacts) != 0 || rep.BaselineUnreachable != 0 {
		t.Errorf("empty graph report: %+v", rep)
	}
	if _, ok := rep.WorstCO(); ok {
		t.Error("WorstCO on empty graph")
	}
}

func TestEntryLossSurvivableVacuousWithoutEntries(t *testing.T) {
	// A region observed with COs but no inferred entry points: there is
	// no entry to lose, so EntryLossSurvivable is vacuously true — the
	// claim is about surviving any single entry failure, and zero
	// entries admit zero failures. Callers who need "has redundant
	// entries" must check len(Entries) >= 2 themselves.
	edges, aggs := dualStar(4)
	g := mk(edges, aggs, nil)
	rep := Analyze(g)
	if !rep.EntryLossSurvivable() {
		t.Error("zero-entry region must be vacuously survivable")
	}
	for _, im := range rep.Impacts {
		if im.Kind == "entry" {
			t.Fatalf("entry impact materialized from no entries: %+v", im)
		}
	}
}
