// Package energy models the ShipTraceroute phone's battery budget
// (§7.1.2, Fig. 14): energy per measurement round as a function of
// radio-active time, the cost of leaving airplane mode, sleep drain with
// and without airplane mode, and projected battery life under hourly
// rounds.
package energy

import "time"

// Model holds the power constants. Defaults are calibrated against the
// paper's USB-C power-monitor measurements of a Galaxy A71.
type Model struct {
	// ActiveDrawmAhPerSec is the radio-active drain while probing.
	ActiveDrawmAhPerSec float64
	// WakeEnergymAh is the cost of exiting airplane mode and
	// re-registering with the packet core (the paper saw 1.4-2.6 mAh).
	WakeEnergymAh float64
	// SleepAirplanemAhPerHour and SleepIdlemAhPerHour are the drain
	// while asleep with and without airplane mode (the paper measured
	// 9 vs 14.5 mAh per 55 minutes).
	SleepAirplanemAhPerHour float64
	SleepIdlemAhPerHour     float64
	// BatterymAh is the usable battery capacity.
	BatterymAh float64
}

// Default returns the calibrated Galaxy-A71-like model.
func Default() Model {
	return Model{
		ActiveDrawmAhPerSec:     0.0108,
		WakeEnergymAh:           1.4,
		SleepAirplanemAhPerHour: 9.0 * 60 / 55,
		SleepIdlemAhPerHour:     14.5 * 60 / 55,
		BatterymAh:              4500,
	}
}

// RoundEnergy returns the mAh consumed by one measurement round with
// the given radio-active time: wake-up plus active drain (the Fig. 14
// curves).
func (m Model) RoundEnergy(active time.Duration) float64 {
	return m.WakeEnergymAh + active.Seconds()*m.ActiveDrawmAhPerSec
}

// HourlyEnergy returns the mAh consumed per hour of operation: one
// round plus the remaining sleep, in or out of airplane mode.
func (m Model) HourlyEnergy(roundActive time.Duration, airplane bool) float64 {
	sleep := m.SleepIdlemAhPerHour
	if airplane {
		sleep = m.SleepAirplanemAhPerHour
	}
	sleepFrac := 1 - roundActive.Hours()
	if sleepFrac < 0 {
		sleepFrac = 0
	}
	return m.RoundEnergy(roundActive) + sleep*sleepFrac
}

// BatteryLifeDays projects how long the battery sustains hourly rounds.
func (m Model) BatteryLifeDays(roundActive time.Duration, airplane bool) float64 {
	perHour := m.HourlyEnergy(roundActive, airplane)
	if perHour <= 0 {
		return 0
	}
	return m.BatterymAh / perHour / 24
}

// Savings returns the fractional energy reduction of one round versus
// another (the paper's 38% claim comparing stock and modified scamper).
func (m Model) Savings(oldActive, newActive time.Duration) float64 {
	oldE := m.RoundEnergy(oldActive)
	newE := m.RoundEnergy(newActive)
	if oldE == 0 {
		return 0
	}
	return 1 - newE/oldE
}
