package energy

import (
	"testing"
	"time"
)

func TestRoundEnergyShape(t *testing.T) {
	m := Default()
	// Calibration targets from Fig. 14: stock scamper ~8.6 mAh per
	// round, ShipTraceroute's ~5.3 mAh; active times in the simulator
	// land around 11 and 6 minutes respectively.
	old := m.RoundEnergy(11 * time.Minute)
	new_ := m.RoundEnergy(6 * time.Minute)
	if old < 7 || old > 10.5 {
		t.Errorf("stock round = %.1f mAh, want ~8.6", old)
	}
	if new_ < 4 || new_ > 6.5 {
		t.Errorf("modified round = %.1f mAh, want ~5.3", new_)
	}
	s := m.Savings(11*time.Minute, 6*time.Minute)
	if s < 0.3 || s > 0.5 {
		t.Errorf("savings = %.2f, want ~0.38", s)
	}
}

func TestBatteryLife(t *testing.T) {
	m := Default()
	// ~12 days with the efficient implementation and airplane-mode
	// sleep (§7.1.2).
	days := m.BatteryLifeDays(6*time.Minute, true)
	if days < 10 || days > 14 {
		t.Errorf("battery life = %.1f days, want ~12", days)
	}
	// The stock implementation loses roughly four days.
	oldDays := m.BatteryLifeDays(11*time.Minute, true)
	if gain := days - oldDays; gain < 1.5 || gain > 6 {
		t.Errorf("gain = %.1f days, want ~4", gain)
	}
	// Airplane-mode sleep extends life.
	if m.BatteryLifeDays(6*time.Minute, false) >= days {
		t.Error("airplane mode should extend battery life")
	}
}

func TestMonotonicity(t *testing.T) {
	m := Default()
	if m.RoundEnergy(10*time.Minute) <= m.RoundEnergy(5*time.Minute) {
		t.Error("more active time must cost more energy")
	}
	if m.HourlyEnergy(70*time.Minute, true) < m.RoundEnergy(70*time.Minute) {
		t.Error("hourly energy must not be below the round energy")
	}
	if m.Savings(5*time.Minute, 5*time.Minute) != 0 {
		t.Error("identical rounds should save nothing")
	}
}
