// Package profiling wires the conventional -cpuprofile/-memprofile file
// flags into the repo's commands, so `make profile` (and ad-hoc runs)
// can hand pprof-ready captures of a full campaign straight to
// `go tool pprof` without a test harness in the loop.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpu is non-empty and returns a stop
// function that flushes the CPU profile and, when mem is non-empty,
// writes a heap profile (after a GC, so the capture reflects live
// retention rather than garbage awaiting collection). Defer the stop
// function in main: it runs on every normal return, while error paths
// that os.Exit lose the profile — acceptable for a performance tool,
// since a failed run is not the one being profiled.
func Start(cpu, mem string) func() {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profiling:", err)
	os.Exit(1)
}
