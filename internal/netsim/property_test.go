package netsim

// Property-based tests over randomly generated topologies: routing and
// probing invariants that must hold for any network the generators can
// produce.

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

// randomNet builds a connected random network of n routers with a host
// on each of two random routers.
func randomNet(seed int64, n int) (*Network, *Host, *Host) {
	rng := rand.New(rand.NewSource(seed))
	net := New(uint64(seed))
	rs := make([]*Router, n)
	for i := range rs {
		rs[i] = net.AddRouter(&Router{Name: fmt.Sprintf("r%d", i), ISP: "t", IPID: IPIDShared})
		rs[i].IPIDVelocity = 10 + rng.Float64()*100
	}
	addrSeq := 0
	nextPair := func() (netip.Addr, netip.Addr) {
		addrSeq++
		return netip.AddrFrom4([4]byte{10, byte(addrSeq >> 6), byte(addrSeq << 2), 1}),
			netip.AddrFrom4([4]byte{10, byte(addrSeq >> 6), byte(addrSeq << 2), 2})
	}
	// Spanning tree first (connectivity), then random extra edges.
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		a, b := nextPair()
		if _, err := net.ConnectRouters(rs[i], rs[j], a, b, time.Duration(1+rng.Intn(5))*time.Millisecond); err != nil {
			panic(err)
		}
	}
	for k := 0; k < n/2; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		a, b := nextPair()
		// Ignore failures from already-linked interface reuse; every
		// ConnectRouters call allocates fresh interfaces so none occur.
		if _, err := net.ConnectRouters(rs[i], rs[j], a, b, time.Duration(1+rng.Intn(5))*time.Millisecond); err != nil {
			panic(err)
		}
	}
	src := &Host{Addr: netip.AddrFrom4([4]byte{192, 168, 0, 1}), Router: rs[rng.Intn(n)], ISP: "t", RespondsToPing: true}
	dst := &Host{Addr: netip.AddrFrom4([4]byte{192, 168, 0, 2}), Router: rs[rng.Intn(n)], ISP: "t", RespondsToPing: true, AccessDelay: time.Millisecond}
	if err := net.AddHost(src); err != nil {
		panic(err)
	}
	if err := net.AddHost(dst); err != nil {
		panic(err)
	}
	return net, src, dst
}

var pt0 = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

// TestPathConnectivityProperty: every traceroute over a random network
// yields hops that are physically adjacent in the simulated topology.
func TestPathConnectivityProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, flow uint16) bool {
		n := int(nRaw%30) + 3
		net, src, dst := randomNet(seed, n)
		var prevRouter *Router
		for ttl := uint8(1); ttl <= 40; ttl++ {
			r := net.Probe(pt0, ProbeSpec{Src: src.Addr, Dst: dst.Addr, TTL: ttl, FlowID: flow})
			if r.Type == Timeout {
				return false // fully responsive net: no timeouts allowed
			}
			if r.Type == EchoReply {
				return true // reached the destination
			}
			ifc, ok := net.IfaceByAddr(r.From)
			if !ok {
				return false
			}
			if prevRouter != nil {
				// The replying router must be adjacent to the previous
				// hop's router.
				adjacent := false
				for _, pifc := range prevRouter.Interfaces() {
					if pifc.Link != nil && pifc.Link.Other(pifc).Router == ifc.Router {
						adjacent = true
						break
					}
				}
				if !adjacent {
					return false
				}
			}
			prevRouter = ifc.Router
		}
		// Never reached the destination within 40 hops on a <=33-router
		// network: something is broken.
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRTTMonotoneInTTLProperty: along one flow, deeper hops never have
// smaller jitter-free RTT floors (sampled via min over several seqs).
func TestRTTMonotoneInTTLProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 4
		net, src, dst := randomNet(seed, n)
		minRTT := func(ttl uint8) (time.Duration, ReplyType) {
			var best time.Duration
			var typ ReplyType
			for seq := uint32(0); seq < 8; seq++ {
				r := net.Probe(pt0, ProbeSpec{Src: src.Addr, Dst: dst.Addr, TTL: ttl, FlowID: 5, Seq: seq})
				typ = r.Type
				if r.Type == Timeout {
					return 0, r.Type
				}
				if best == 0 || r.RTT < best {
					best = r.RTT
				}
			}
			return best, typ
		}
		prev := time.Duration(0)
		for ttl := uint8(1); ttl <= 40; ttl++ {
			rtt, typ := minRTT(ttl)
			if typ == Timeout {
				return false
			}
			// Jitter bound is 400us; propagation per hop is >= 1ms, so
			// the floor must not shrink by more than the jitter bound.
			if rtt+net.JitterMax < prev {
				return false
			}
			if typ == EchoReply {
				return true
			}
			prev = rtt
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestParisInvariantProperty: identical (src,dst,flow,ttl,seq) probes
// always produce identical replies.
func TestParisInvariantProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, flow uint16, ttlRaw uint8) bool {
		n := int(nRaw%20) + 4
		net, src, dst := randomNet(seed, n)
		ttl := ttlRaw%20 + 1
		r1 := net.Probe(pt0, ProbeSpec{Src: src.Addr, Dst: dst.Addr, TTL: ttl, FlowID: flow, Seq: 3})
		r2 := net.Probe(pt0, ProbeSpec{Src: src.Addr, Dst: dst.Addr, TTL: ttl, FlowID: flow, Seq: 3})
		return r1.Type == r2.Type && r1.From == r2.From && r1.RTT == r2.RTT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReachabilitySymmetry: Reachable is symmetric on our undirected
// link model.
func TestReachabilitySymmetry(t *testing.T) {
	f := func(seed int64, nRaw uint8, i, j uint8) bool {
		n := int(nRaw%20) + 4
		net, _, _ := randomNet(seed, n)
		rs := net.Routers()
		a := rs[int(i)%len(rs)]
		b := rs[int(j)%len(rs)]
		return net.Reachable(a, b) == net.Reachable(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSharedIPIDMonotoneProperty: consecutive replies from a shared-
// counter router carry strictly increasing (mod 2^16) IP-IDs at a
// bounded rate.
func TestSharedIPIDMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		net, src, dst := randomNet(seed, 6)
		at := pt0
		var prev uint16
		for i := 0; i < 20; i++ {
			r := net.Probe(at, ProbeSpec{Src: src.Addr, Dst: dst.Addr, TTL: 1, Seq: uint32(i), FlowID: 1})
			if r.Type != TTLExceeded {
				return true // src and dst share a router: nothing to test
			}
			if i > 0 {
				d := int32(r.IPID) - int32(prev)
				if d < 0 {
					d += 65536
				}
				if d <= 0 || d > 2000 {
					return false
				}
			}
			prev = r.IPID
			at = at.Add(time.Second)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
