package netsim

import (
	"encoding/binary"
	"math/rand"
	"net/netip"
	"testing"
)

// TestTrieFIBMatchesMaskedReference is the differential gate behind
// the FIB swap: the compiled prefix-set trie (the live FIB) and the
// retired per-bit-length masked-prefix index (kept as the reference
// implementation) must agree on every longest-prefix match — same
// owner or same miss — over seeded randomized route tables. Probes mix
// addresses targeted inside declared prefixes (so deep nestings are
// actually exercised) with uniform random ones, across both families
// and including duplicate declarations (first wins on both sides).
// `make fib-diff` runs exactly this test inside `make verify`.
func TestTrieFIBMatchesMaskedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20210823)) // the paper's IMC year+day, pinned

	randV4 := func() netip.Addr {
		return netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
	}
	randV6 := func() netip.Addr {
		var b [16]byte
		rng.Read(b[:])
		b[0] = 0x20 // keep it global-unicast-shaped
		return netip.AddrFrom16(b)
	}

	for round := 0; round < 25; round++ {
		nOwners := 1 + rng.Intn(3000)
		owners := make([]prefixOwner, 0, nOwners)
		for i := 0; i < nOwners; i++ {
			var a netip.Addr
			var bits int
			if rng.Intn(10) == 0 {
				a = randV6()
				bits = 16 + rng.Intn(113)
			} else {
				a = randV4()
				bits = 8 + rng.Intn(25)
			}
			p, err := a.Prefix(bits)
			if err != nil {
				continue
			}
			owners = append(owners, prefixOwner{prefix: p, router: &Router{Name: p.String()}})
			if rng.Intn(20) == 0 {
				// Duplicate declaration with a different owner: both
				// implementations must keep the first.
				owners = append(owners, prefixOwner{prefix: p, router: &Router{Name: p.String() + "-dup"}})
			}
		}

		ref := buildLPM(owners)
		trie := buildTrieFIB(owners)

		check := func(dst netip.Addr) {
			t.Helper()
			want := ref.lookup(dst)
			got := trie.lookup(dst)
			switch {
			case want == nil && got == nil:
			case want == nil || got == nil:
				t.Fatalf("round %d: lookup(%s): reference %v, trie %v", round, dst, ownerStr(want), ownerStr(got))
			case want.prefix != got.prefix || want.router != got.router:
				t.Fatalf("round %d: lookup(%s): reference %s, trie %s", round, dst, ownerStr(want), ownerStr(got))
			}
		}

		// Targeted probes: addresses inside (and one bit off) declared
		// prefixes, hitting nesting boundaries.
		for i := 0; i < 2000 && i < len(owners); i++ {
			po := owners[rng.Intn(len(owners))]
			check(po.prefix.Addr())
			if po.prefix.Addr().Is4() {
				b := po.prefix.Addr().As4()
				b[3] ^= byte(rng.Intn(256))
				b[2] ^= byte(rng.Intn(4))
				check(netip.AddrFrom4(b))
			}
		}
		// Uniform random probes, both families.
		for i := 0; i < 2000; i++ {
			check(randV4())
			if i%4 == 0 {
				check(randV6())
			}
		}
	}
}

// FuzzTrieFIBDifferential is the fuzzable form of the differential
// gate: the fuzzer controls the route-table seed and the probed
// address, so it can search for (table, address) pairs where the trie
// and the masked reference disagree. The seed corpus runs on every
// plain `go test`; `go test -fuzz FuzzTrieFIBDifferential
// ./internal/netsim/` explores further.
func FuzzTrieFIBDifferential(f *testing.F) {
	f.Add(int64(1), uint32(0x64400101))
	f.Add(int64(42), uint32(0xc0a80001))
	f.Add(int64(20210823), uint32(0xffffffff))
	f.Fuzz(func(t *testing.T, seed int64, probe uint32) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		owners := make([]prefixOwner, 0, n)
		for i := 0; i < n; i++ {
			a := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
			bits := 8 + rng.Intn(25)
			p, err := a.Prefix(bits)
			if err != nil {
				continue
			}
			owners = append(owners, prefixOwner{prefix: p, router: &Router{Name: p.String()}})
		}
		if len(owners) == 0 {
			t.Skip()
		}
		ref := buildLPM(owners)
		trie := buildTrieFIB(owners)
		check := func(dst netip.Addr) {
			t.Helper()
			want, got := ref.lookup(dst), trie.lookup(dst)
			if (want == nil) != (got == nil) ||
				(want != nil && (want.prefix != got.prefix || want.router != got.router)) {
				t.Fatalf("lookup(%s): reference %s, trie %s", dst, ownerStr(want), ownerStr(got))
			}
		}
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], probe)
		check(netip.AddrFrom4(b))
		// And one address inside a declared prefix, chosen by the same
		// fuzzed word, so nestings get probed even when the raw address
		// misses the table entirely.
		check(owners[int(probe)%len(owners)].prefix.Addr())
	})
}

func ownerStr(po *prefixOwner) string {
	if po == nil {
		return "miss"
	}
	return po.prefix.String() + "@" + po.router.Name
}

// TestTrieFIBNetworkIntegration checks the live lookup path end to
// end: owners declared through AddPrefix resolve identically through
// the network's trie FIB and a reference index built from the same
// owner list, including after an invalidating mutation.
func TestTrieFIBNetworkIntegration(t *testing.T) {
	c := buildChain(t, 3)
	for _, p := range []string{"100.64.0.0/10", "100.64.0.0/12", "100.64.32.0/19", "2001:db8::/48"} {
		c.net.AddPrefix(netip.MustParsePrefix(p), c.rs[2], "testnet")
	}
	probes := []string{"100.64.1.1", "100.64.32.9", "100.80.0.1", "100.127.255.255", "203.0.113.5", "2001:db8::9"}
	verify := func() {
		t.Helper()
		ref := buildLPM(c.net.prefixOwners)
		fib := c.net.lpm()
		for _, s := range probes {
			dst := netip.MustParseAddr(s)
			want, got := ref.lookup(dst), fib.lookup(dst)
			if (want == nil) != (got == nil) || (want != nil && want.prefix != got.prefix) {
				t.Fatalf("lookup(%s): reference %s, live %s", dst, ownerStr(want), ownerStr(got))
			}
		}
	}
	verify()
	c.net.AddPrefix(netip.MustParsePrefix("100.64.1.0/26"), c.rs[0], "testnet")
	verify()
}
