package netsim

import (
	"net/netip"
	"testing"
	"time"
)

func owners(ps ...string) []prefixOwner {
	out := make([]prefixOwner, len(ps))
	for i, p := range ps {
		out[i] = prefixOwner{prefix: netip.MustParsePrefix(p)}
	}
	return out
}

// sameReply compares replies ignoring IPID, which is a per-router
// counter that advances with every answered probe by design.
func sameReply(a, b Reply) bool {
	return a.Type == b.Type && a.From == b.From && a.RTT == b.RTT && a.ReplyTTL == b.ReplyTTL
}

func wantPrefix(t *testing.T, x *lpmIndex, dst, want string) {
	t.Helper()
	po := x.lookup(netip.MustParseAddr(dst))
	if want == "" {
		if po != nil {
			t.Errorf("lookup(%s) = %s, want miss", dst, po.prefix)
		}
		return
	}
	if po == nil {
		t.Fatalf("lookup(%s) = miss, want %s", dst, want)
	}
	if po.prefix != netip.MustParsePrefix(want) {
		t.Errorf("lookup(%s) = %s, want %s", dst, po.prefix, want)
	}
}

func TestLPMNestedPrefixes(t *testing.T) {
	x := buildLPM(owners("100.64.0.0/10", "100.64.0.0/12", "100.64.0.0/16"))
	wantPrefix(t, x, "100.64.1.1", "100.64.0.0/16") // innermost wins
	wantPrefix(t, x, "100.65.0.1", "100.64.0.0/12") // outside the /16
	wantPrefix(t, x, "100.90.0.1", "100.64.0.0/10") // outside the /12
	wantPrefix(t, x, "203.0.113.1", "")             // outside everything
}

func TestLPMPointToPointMates(t *testing.T) {
	// A /31 point-to-point pair nested in a /30: the mate addresses of
	// the /31 must resolve to it, the other half of the /30 to the /30.
	x := buildLPM(owners("10.9.0.0/30", "10.9.0.0/31"))
	wantPrefix(t, x, "10.9.0.0", "10.9.0.0/31")
	wantPrefix(t, x, "10.9.0.1", "10.9.0.0/31")
	wantPrefix(t, x, "10.9.0.2", "10.9.0.0/30")
	wantPrefix(t, x, "10.9.0.3", "10.9.0.0/30")
	wantPrefix(t, x, "10.9.0.4", "")
}

func TestLPMMixedFamilies(t *testing.T) {
	// A v6 table length longer than 32 bits must not break v4 lookups
	// (Addr.Prefix errors on a too-long length; the index skips it).
	x := buildLPM(owners("2001:db8::/48", "10.0.0.0/8"))
	wantPrefix(t, x, "2001:db8::1", "2001:db8::/48")
	wantPrefix(t, x, "10.1.2.3", "10.0.0.0/8")
	wantPrefix(t, x, "2001:db9::1", "")
}

func TestLPMFirstDeclarationWins(t *testing.T) {
	rA, rB := &Router{Name: "a"}, &Router{Name: "b"}
	x := buildLPM([]prefixOwner{
		{prefix: netip.MustParsePrefix("172.16.0.0/12"), router: rA},
		{prefix: netip.MustParsePrefix("172.16.0.0/12"), router: rB},
	})
	po := x.lookup(netip.MustParseAddr("172.16.5.5"))
	if po == nil || po.router != rA {
		t.Fatalf("duplicate prefix: got %+v, want first declaration (router a)", po)
	}
}

func TestShortcut24BeatsLongerGeneralPrefix(t *testing.T) {
	// The /24 shortcut table is consulted before the general LPM index
	// (legacy resolution order), so a /24 owned by the VP's gateway wins
	// over a nested /26 owned by a distant router.
	c := buildChain(t, 3)
	c.net.AddPrefix(netip.MustParsePrefix("100.64.5.0/24"), c.rs[0], "testnet")
	c.net.AddPrefix(netip.MustParsePrefix("100.64.5.0/26"), c.rs[2], "testnet")
	r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: addr("100.64.5.5"), TTL: 1})
	// Owned by the source's own router: no TTL-consuming hop ever
	// answers, so the probe times out instead of expiring toward rs[2].
	if r.Type != Timeout {
		t.Errorf("/24-shortcut dst = %v, want timeout at the gateway", r.Type)
	}
}

func TestFIBInvalidatedByAddPrefix(t *testing.T) {
	c := buildChain(t, 3)
	c.net.AddPrefix(netip.MustParsePrefix("100.64.0.0/10"), c.rs[2], "testnet")
	// Warm the compiled FIB: routed toward rs[2], expires at hop 1.
	if r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: addr("100.64.5.5"), TTL: 1}); r.Type != TTLExceeded {
		t.Fatalf("warmup probe = %v, want ttl-exceeded", r.Type)
	}
	// A longer general prefix declared afterwards must take effect: the
	// destination now belongs to the gateway router, so the same probe
	// dies unanswered instead of expiring downstream.
	c.net.AddPrefix(netip.MustParsePrefix("100.64.5.0/26"), c.rs[0], "testnet")
	if r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: addr("100.64.5.5"), TTL: 1}); r.Type != Timeout {
		t.Errorf("post-AddPrefix probe = %v, want timeout (stale FIB?)", r.Type)
	}
}

// TestPathCacheInvalidatedByMutation warms the compiled-path cache,
// mutates the topology, and checks every subsequent reply matches a
// fresh network built with the mutation in place from the start —
// i.e. no stale compiled path survives Connect or AddTunnel.
func TestPathCacheInvalidatedByMutation(t *testing.T) {
	spec := func(c *chain, ttl uint8) ProbeSpec {
		return ProbeSpec{Src: c.vp.Addr, Dst: c.target.Addr, TTL: ttl, Proto: ICMPEcho, FlowID: 9, Seq: uint32(ttl)}
	}
	warm := func(c *chain) {
		f := c.net.CompileFlow(c.vp.Addr, c.target.Addr, 9)
		for ttl := uint8(1); ttl <= 8; ttl++ {
			f.Probe(t0, ttl, ICMPEcho, uint32(ttl))
			c.net.Probe(t0, spec(c, ttl))
		}
	}
	compare := func(t *testing.T, mutated, fresh *chain) {
		t.Helper()
		mf := mutated.net.CompileFlow(mutated.vp.Addr, mutated.target.Addr, 9)
		ff := fresh.net.CompileFlow(fresh.vp.Addr, fresh.target.Addr, 9)
		for ttl := uint8(1); ttl <= 8; ttl++ {
			got := mutated.net.Probe(t0, spec(mutated, ttl))
			want := fresh.net.Probe(t0, spec(fresh, ttl))
			if !sameReply(got, want) {
				t.Errorf("ttl %d: mutated net %+v, fresh net %+v", ttl, got, want)
			}
			if g, w := mf.Probe(t0, ttl, ICMPEcho, uint32(ttl)), ff.Probe(t0, ttl, ICMPEcho, uint32(ttl)); !sameReply(g, w) {
				t.Errorf("ttl %d: mutated flow %+v, fresh flow %+v", ttl, g, w)
			}
		}
	}

	t.Run("connect", func(t *testing.T) {
		mutated, fresh := buildChain(t, 5), buildChain(t, 5)
		warm(mutated)
		for _, c := range []*chain{mutated, fresh} {
			// Shortcut link past the middle routers: the flow's visible
			// path shrinks, so stale compiled paths would be detectable.
			if _, err := c.net.ConnectRouters(c.rs[0], c.rs[4], addr("10.200.0.1"), addr("10.200.0.2"), time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		compare(t, mutated, fresh)
	})

	t.Run("tunnel", func(t *testing.T) {
		mutated, fresh := buildChain(t, 5), buildChain(t, 5)
		warm(mutated)
		for _, c := range []*chain{mutated, fresh} {
			c.net.AddTunnel(c.rs[1], c.rs[3])
		}
		compare(t, mutated, fresh)
	})
}

// TestFlowProbeMatchesNetworkProbe pins the compiled fast path to the
// uncompiled entry point across protocols, TTLs, and sequence numbers.
func TestFlowProbeMatchesNetworkProbe(t *testing.T) {
	c := buildChain(t, 4)
	c.net.AddTunnel(c.rs[1], c.rs[2])
	for _, proto := range []Proto{ICMPEcho, UDP} {
		flow := c.net.CompileFlow(c.vp.Addr, c.target.Addr, 21)
		for ttl := uint8(0); ttl <= 10; ttl++ {
			for seq := uint32(0); seq < 3; seq++ {
				got := flow.Probe(t0, ttl, proto, seq)
				want := c.net.Probe(t0, ProbeSpec{
					Src: c.vp.Addr, Dst: c.target.Addr, TTL: ttl,
					Proto: proto, FlowID: 21, Seq: seq,
				})
				if !sameReply(got, want) {
					t.Fatalf("proto %v ttl %d seq %d: flow %+v, network %+v", proto, ttl, seq, got, want)
				}
			}
		}
	}
}
