package netsim

import (
	"fmt"
	"net/netip"
	"testing"
	"time"
)

// probeAt is c.probe with an explicit virtual instant, for the
// time-windowed fault families.
func (c *chain) probeAt(at time.Time, ttl uint8) Reply {
	return c.net.Probe(at, ProbeSpec{Src: c.vp.Addr, Dst: c.target.Addr, TTL: ttl, Proto: ICMPEcho, FlowID: 7, Seq: uint32(ttl)})
}

// eqNoIPID compares replies ignoring IP-ID: the per-router counters
// advance on every reply, so two otherwise-identical probes differ
// there by design.
func eqNoIPID(a, b Reply) bool {
	a.IPID, b.IPID = 0, 0
	return a == b
}

// sweepReplies probes every TTL 1..max over a set of distinct flows and
// sequence numbers, returning all replies — enough trials for the
// statistical assertions below.
func sweepReplies(c *chain, at time.Time, maxTTL uint8, flows int) []Reply {
	var out []Reply
	for f := 0; f < flows; f++ {
		for ttl := uint8(1); ttl <= maxTTL; ttl++ {
			out = append(out, c.net.Probe(at, ProbeSpec{
				Src: c.vp.Addr, Dst: c.target.Addr, TTL: ttl,
				Proto: ICMPEcho, FlowID: uint16(f), Seq: uint32(f)<<8 | uint32(ttl),
			}))
		}
	}
	return out
}

func TestEmptyFaultPlanBitIdentical(t *testing.T) {
	base := buildChain(t, 4)
	faulted := buildChain(t, 4)
	faulted.net.SetFaultPlan(FaultPlan{})
	for ttl := uint8(1); ttl <= 6; ttl++ {
		a, b := base.probe(ttl), faulted.probe(ttl)
		if a != b {
			t.Fatalf("TTL %d: empty plan changed reply: %+v vs %+v", ttl, a, b)
		}
		if b.Drop != DropNone {
			t.Fatalf("TTL %d: empty plan set Drop=%v", ttl, b.Drop)
		}
	}
}

func TestLinkLossMonotoneAndTotal(t *testing.T) {
	rates := []float64{0, 0.05, 0.2, 1}
	var lost []int
	for _, loss := range rates {
		c := buildChain(t, 4)
		c.net.SetFaultPlan(FaultPlan{Seed: 9, LinkLoss: loss})
		n := 0
		for _, r := range sweepReplies(c, t0, 5, 40) {
			if r.Drop == DropLoss {
				n++
			}
		}
		lost = append(lost, n)
	}
	for i := 1; i < len(lost); i++ {
		if lost[i] < lost[i-1] {
			t.Errorf("loss rate %v dropped %d probes, less than rate %v's %d", rates[i], lost[i], rates[i-1], lost[i-1])
		}
	}
	if lost[0] != 0 {
		t.Errorf("zero loss rate still dropped %d probes", lost[0])
	}
	if want := 5 * 40; lost[len(lost)-1] != want {
		t.Errorf("loss=1 dropped %d of %d probes", lost[len(lost)-1], want)
	}
}

func TestLossCompoundsWithPathLength(t *testing.T) {
	// Per-link trials mean deeper TTLs on the same flow lose more often.
	c := buildChain(t, 8)
	c.net.SetFaultPlan(FaultPlan{Seed: 3, LinkLoss: 0.10})
	countLost := func(ttl uint8) int {
		n := 0
		for f := 0; f < 400; f++ {
			r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: c.target.Addr, TTL: ttl,
				Proto: ICMPEcho, FlowID: uint16(f), Seq: uint32(f)})
			if r.Drop == DropLoss {
				n++
			}
		}
		return n
	}
	near, far := countLost(1), countLost(7)
	if far <= near {
		t.Errorf("deep hop lost %d <= shallow hop's %d; loss should compound with path length", far, near)
	}
}

func TestSilentRouterForwardsButNeverReplies(t *testing.T) {
	c := buildChain(t, 4)
	c.net.SetFaultPlan(FaultPlan{Silent: []RouterID{c.rs[1].ID}})
	// TTL 1 expires at rs[1] (the source router rs[0] consumes no TTL).
	if r := c.probe(1); r.Type != Timeout || r.Drop != DropSilent {
		t.Fatalf("silent hop replied: %+v", r)
	}
	// Routers beyond it still answer — forwarding is unaffected.
	if r := c.probe(2); r.Type != TTLExceeded {
		t.Fatalf("hop beyond silent router = %+v, want ttl-exceeded", r)
	}
	// The destination host beyond it answers too.
	if r := c.probe(6); r.Type != EchoReply {
		t.Fatalf("host beyond silent router = %+v, want echo-reply", r)
	}
}

func TestSilentFracSelectsDeterministically(t *testing.T) {
	c1 := buildChain(t, 6)
	c1.net.SetFaultPlan(FaultPlan{Seed: 5, SilentFrac: 0.5})
	c2 := buildChain(t, 6)
	c2.net.SetFaultPlan(FaultPlan{Seed: 5, SilentFrac: 0.5})
	anySilent := false
	for ttl := uint8(1); ttl <= 5; ttl++ {
		a, b := c1.probe(ttl), c2.probe(ttl)
		if a != b {
			t.Fatalf("TTL %d: same plan, different replies: %+v vs %+v", ttl, a, b)
		}
		if a.Drop == DropSilent {
			anySilent = true
		}
	}
	if !anySilent {
		t.Error("SilentFrac 0.5 over 5 probed routers silenced none")
	}
}

func TestBlackoutWindows(t *testing.T) {
	c := buildChain(t, 3)
	c.net.SetFaultPlan(FaultPlan{
		Seed:           11,
		BlackoutFrac:   1, // every router blacks out
		BlackoutPeriod: time.Minute,
		BlackoutDur:    10 * time.Second,
	})
	// Scan one period in 1s steps: the hop must be silent for exactly
	// the blackout duration and answer otherwise.
	dark := 0
	for sec := 0; sec < 60; sec++ {
		r := c.probeAt(t0.Add(time.Duration(sec)*time.Second), 1)
		switch {
		case r.Type == TTLExceeded && r.Drop == DropNone:
		case r.Type == Timeout && r.Drop == DropBlackout:
			dark++
		default:
			t.Fatalf("t+%ds: unexpected reply %+v", sec, r)
		}
	}
	if dark < 9 || dark > 11 {
		t.Errorf("blackout covered %d of 60 one-second samples, want ~10", dark)
	}
	// Identical instants give identical answers (determinism; IP-ID
	// counters advance per reply so that field is excluded).
	a := c.probeAt(t0.Add(17*time.Second), 1)
	b := c.probeAt(t0.Add(17*time.Second), 1)
	if !eqNoIPID(a, b) {
		t.Errorf("same instant, different replies: %+v vs %+v", a, b)
	}
}

func TestRateLimitWindowedAndMonotone(t *testing.T) {
	// With window 250ms and rate 2/s, duty = 0.5: about half of all
	// windows are silent, and all probes within one window agree.
	answered := func(rate float64) int {
		c := buildChain(t, 3)
		c.net.SetFaultPlan(FaultPlan{Seed: 21, ICMPRate: rate, ICMPWindow: 250 * time.Millisecond})
		n := 0
		for w := 0; w < 200; w++ {
			at := t0.Add(time.Duration(w) * 250 * time.Millisecond)
			r := c.probeAt(at, 1)
			r2 := c.probeAt(at.Add(100*time.Millisecond), 1)
			if (r.Type == Timeout) != (r2.Type == Timeout) {
				t.Fatalf("rate %v window %d: probes in one window disagree: %v vs %v", rate, w, r.Type, r2.Type)
			}
			if r.Type == TTLExceeded {
				n++
			} else if r.Drop != DropRateLimited {
				t.Fatalf("rate %v window %d: drop = %v, want rate-limited", rate, w, r.Drop)
			}
		}
		return n
	}
	lo, mid := answered(0.8), answered(2)
	if lo >= mid {
		t.Errorf("rate 0.8/s answered %d windows, rate 2/s answered %d; higher rate should answer more", lo, mid)
	}
	if mid < 60 || mid > 140 {
		t.Errorf("duty 0.5 answered %d of 200 windows, want ~100", mid)
	}
	// Duty >= 1 disables the limiter entirely.
	if n := answered(10); n != 200 {
		t.Errorf("rate 10/s (duty 2.5) answered %d of 200 windows, want all", n)
	}
}

func TestVPChurnAndOfflineVPs(t *testing.T) {
	c := buildChain(t, 3)
	c.net.SetFaultPlan(FaultPlan{OfflineVPs: []netip.Addr{c.vp.Addr}})
	if r := c.probe(1); r.Type != Timeout || r.Drop != DropVPDown {
		t.Fatalf("offline VP probed successfully: %+v", r)
	}

	// Churn: with frac 1 and offline-frac 0.5, roughly half the minutes
	// are dead, deterministically per window.
	c2 := buildChain(t, 3)
	c2.net.SetFaultPlan(FaultPlan{Seed: 4, VPChurnFrac: 1, VPChurnPeriod: time.Minute, VPOfflineFrac: 0.5})
	down := 0
	for m := 0; m < 120; m++ {
		at := t0.Add(time.Duration(m) * time.Minute)
		r := c2.probeAt(at, 1)
		r2 := c2.probeAt(at.Add(30*time.Second), 1)
		if (r.Drop == DropVPDown) != (r2.Drop == DropVPDown) {
			t.Fatalf("minute %d: churn state flipped within one window", m)
		}
		if r.Drop == DropVPDown {
			down++
		}
	}
	if down < 40 || down > 80 {
		t.Errorf("VP down %d of 120 minutes, want ~60", down)
	}
}

func TestFlowProbeMatchesNetworkProbeUnderFaults(t *testing.T) {
	c := buildChain(t, 5)
	c.net.SetFaultPlan(FaultPlan{
		Seed:         13,
		LinkLoss:     0.15,
		ICMPRate:     1.5,
		BlackoutFrac: 0.4,
		SilentFrac:   0.2,
		VPChurnFrac:  0.5,
	})
	flow := c.net.CompileFlow(c.vp.Addr, c.target.Addr, 7)
	for seq := uint32(0); seq < 8; seq++ {
		for ttl := uint8(1); ttl <= 7; ttl++ {
			at := t0.Add(time.Duration(seq) * 40 * time.Second)
			want := c.net.Probe(at, ProbeSpec{Src: c.vp.Addr, Dst: c.target.Addr, TTL: ttl,
				Proto: ICMPEcho, FlowID: 7, Seq: seq})
			got := flow.Probe(at, ttl, ICMPEcho, seq)
			if !eqNoIPID(got, want) {
				t.Fatalf("seq %d TTL %d: Flow.Probe %+v != Network.Probe %+v", seq, ttl, got, want)
			}
		}
	}
}

func TestOutcomeClassification(t *testing.T) {
	cases := []struct {
		r    Reply
		want ProbeOutcome
	}{
		{Reply{Type: EchoReply}, OutcomeReply},
		{Reply{Type: TTLExceeded}, OutcomeReply},
		{Reply{Type: PortUnreachable}, OutcomeReply},
		{Reply{Type: Timeout}, OutcomeTimeout},
		{Reply{Type: Timeout, Drop: DropLoss}, OutcomeTimeout},
		{Reply{Type: Timeout, Drop: DropVPDown}, OutcomeTimeout},
		{Reply{Type: Timeout, Drop: DropRateLimited}, OutcomeRateLimited},
	}
	for i, tc := range cases {
		if got := tc.r.Outcome(); got != tc.want {
			t.Errorf("case %d (%v/%v): outcome = %v, want %v", i, tc.r.Type, tc.r.Drop, got, tc.want)
		}
	}
}

func TestRetransmissionsDrawIndependently(t *testing.T) {
	// Distinct Seq values must see independent loss draws — that is
	// what makes retries worthwhile.
	c := buildChain(t, 4)
	c.net.SetFaultPlan(FaultPlan{Seed: 2, LinkLoss: 0.3})
	varies := false
	var first Reply
	for seq := uint32(0); seq < 32; seq++ {
		r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: c.target.Addr, TTL: 2,
			Proto: ICMPEcho, FlowID: 7, Seq: seq})
		if seq == 0 {
			first = r
		} else if (r.Type == Timeout) != (first.Type == Timeout) {
			varies = true
		}
	}
	if !varies {
		t.Error("32 retransmissions at 30% loss all agreed; Seq should vary the loss draw")
	}
}

func TestFaultPlanString(t *testing.T) {
	for d := DropNone; d <= DropVPDown; d++ {
		if s := d.String(); s == "" || s == "unknown" {
			t.Errorf("DropCause(%d).String() = %q", d, s)
		}
	}
	if s := DropCause(99).String(); s != "unknown" {
		t.Errorf("invalid DropCause string = %q", s)
	}
	_ = fmt.Sprint(DropLoss)
}
