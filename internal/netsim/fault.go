package netsim

import (
	"net/netip"
	"time"
)

// DropCause explains why a probe produced no usable answer. It is
// diagnostic metadata for the measurement plane's accounting (typed
// probe outcomes, coverage reports); inference never reads it — a real
// prober cannot see why a packet vanished, only that it did. The zero
// value, DropNone, covers both successful replies and the simulator's
// pre-existing silent deaths (dead sweep addresses, DstPolicy denials).
type DropCause uint8

const (
	// DropNone: the probe was answered, or died for a non-fault reason
	// (unreachable prefix, destination policy, host not pinging).
	DropNone DropCause = iota
	// DropLoss: a link-loss draw ate the probe or its reply in flight.
	DropLoss
	// DropRateLimited: the replying device's ICMP generation was rate
	// limited (the FaultPlan's windowed limiter, or the router's
	// pre-existing ResponseProb model).
	DropRateLimited
	// DropBlackout: the replying router was inside a transient
	// control-plane blackout window.
	DropBlackout
	// DropSilent: the replying router is permanently silent.
	DropSilent
	// DropVPDown: the probing vantage point itself was offline (churn).
	DropVPDown
)

func (d DropCause) String() string {
	switch d {
	case DropNone:
		return "none"
	case DropLoss:
		return "loss"
	case DropRateLimited:
		return "rate-limited"
	case DropBlackout:
		return "blackout"
	case DropSilent:
		return "silent"
	case DropVPDown:
		return "vp-down"
	}
	return "unknown"
}

// ProbeOutcome is the three-way classification resilient probing code
// keys its accounting on: every probe either got an answer, hit a rate
// limiter, or was lost (for whatever reason).
type ProbeOutcome uint8

const (
	// OutcomeReply: something answered (any non-timeout reply type).
	OutcomeReply ProbeOutcome = iota
	// OutcomeTimeout: nothing came back and no rate limiter is to blame.
	OutcomeTimeout
	// OutcomeRateLimited: the reply was suppressed by ICMP rate limiting.
	OutcomeRateLimited
)

// Outcome classifies the reply for probe accounting.
func (r Reply) Outcome() ProbeOutcome {
	if r.Type != Timeout {
		return OutcomeReply
	}
	if r.Drop == DropRateLimited {
		return OutcomeRateLimited
	}
	return OutcomeTimeout
}

// FaultPlan describes deterministic measurement-plane faults. Every
// fault decision is a pure splitmix-style hash of (network seed, plan
// seed, fault-specific salt, probe/router/time-window parameters) — no
// shared RNG state, no counters — so a faulted campaign remains
// byte-identical at any worker count and GOMAXPROCS, exactly like the
// fault-free simulator (see internal/probesched). Time-dependent
// faults (rate-limit windows, blackouts, VP churn) quantize the
// virtual-clock instant of the probe, which the scheduler already
// keeps schedule-independent.
//
// The zero FaultPlan (and an uninstalled plan) injects nothing: every
// reply is bit-identical to the fault-free simulator.
//
// This models *measurement* faults — who answers probes — and is
// distinct from internal/resilience, which analyzes *topology* failure
// impact on inferred graphs.
type FaultPlan struct {
	// Seed decorrelates this plan's draws from the network's own jitter
	// and rate-limit hashes (and from other plans on the same network).
	Seed uint64

	// LinkLoss is the per-link, per-direction packet loss probability.
	// Each probe draws one Bernoulli trial per link it traverses on the
	// full round trip (access links included), so longer paths lose
	// more probes — the classic compounding the paper's campaigns face.
	// Retransmissions (distinct Seq) draw independently.
	LinkLoss float64

	// ICMPRate models per-router ICMP rate limiting as a windowed duty
	// cycle driven by virtual time: a router answers probes only during
	// windows in which its token bucket, refilled at ICMPRate tokens/s
	// and observed under saturating probe load, still has tokens. A
	// window of length ICMPWindow is responsive with probability
	// min(1, ICMPRate*ICMPWindow), decided by a per-(router, window)
	// hash — so silence comes in realistic correlated bursts rather
	// than i.i.d. per-probe drops. 0 disables limiting.
	ICMPRate float64
	// ICMPWindow is the limiter's window length (default 250ms).
	ICMPWindow time.Duration

	// BlackoutFrac hash-selects this fraction of routers to suffer
	// transient control-plane blackouts: in every BlackoutPeriod each
	// selected router is fully ICMP-silent for one BlackoutDur window
	// at a per-(router, period) hashed phase. Forwarding is unaffected
	// — a blacked-out router still carries transit packets, it just
	// originates nothing, like a busy control plane.
	BlackoutFrac   float64
	BlackoutPeriod time.Duration // default 10m
	BlackoutDur    time.Duration // default 30s

	// SilentFrac hash-selects this fraction of routers to never answer
	// any probe (permanently silent hops); Silent adds explicit routers
	// on top. As with blackouts, forwarding is unaffected.
	SilentFrac float64
	Silent     []RouterID

	// VPChurnFrac hash-selects this fraction of vantage-point hosts to
	// churn: in each VPChurnPeriod window a churning VP is offline
	// (every probe it sources is dropped) with probability
	// VPOfflineFrac, decided per (VP, window). This models the ship /
	// WiFi probers whose connectivity comes and goes. OfflineVPs lists
	// VPs that are down for the whole campaign.
	VPChurnFrac   float64
	VPChurnPeriod time.Duration // default 1m
	VPOfflineFrac float64       // default 0.2
	OfflineVPs    []netip.Addr

	// Normalized lookup sets, built by SetFaultPlan.
	silentSet  map[RouterID]bool
	offlineSet map[netip.Addr]bool
}

// Draw salts keep the fault families' hash streams independent of each
// other and of the simulator's jitter/ResponseProb/ECMP draws.
const (
	saltLoss     = 0xFA017_1
	saltSilent   = 0xFA017_2
	saltBlackSel = 0xFA017_3
	saltBlackPh  = 0xFA017_4
	saltRate     = 0xFA017_5
	saltChurnSel = 0xFA017_6
	saltChurnWin = 0xFA017_7
)

// thresh maps a probability to the draw threshold in parts-per-million.
func thresh(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1_000_000
	}
	return uint64(p * 1_000_000)
}

func (p *FaultPlan) normalize() {
	if p.ICMPWindow == 0 {
		p.ICMPWindow = 250 * time.Millisecond
	}
	if p.BlackoutPeriod == 0 {
		p.BlackoutPeriod = 10 * time.Minute
	}
	if p.BlackoutDur == 0 {
		p.BlackoutDur = 30 * time.Second
	}
	if p.BlackoutDur > p.BlackoutPeriod {
		p.BlackoutDur = p.BlackoutPeriod
	}
	if p.VPChurnPeriod == 0 {
		p.VPChurnPeriod = time.Minute
	}
	if p.VPOfflineFrac == 0 {
		p.VPOfflineFrac = 0.2
	}
	if len(p.Silent) > 0 {
		p.silentSet = make(map[RouterID]bool, len(p.Silent))
		for _, id := range p.Silent {
			p.silentSet[id] = true
		}
	}
	if len(p.OfflineVPs) > 0 {
		p.offlineSet = make(map[netip.Addr]bool, len(p.OfflineVPs))
		for _, a := range p.OfflineVPs {
			p.offlineSet[a] = true
		}
	}
}

// active reports whether any fault is configured; nil-safe so the
// probe path pays one pointer load and a few compares when no plan is
// installed.
func (p *FaultPlan) active() bool {
	return p != nil && (p.LinkLoss > 0 || p.ICMPRate > 0 || p.BlackoutFrac > 0 ||
		p.SilentFrac > 0 || len(p.silentSet) > 0 ||
		p.VPChurnFrac > 0 || len(p.offlineSet) > 0)
}

// probeKey folds the probe identity into one hash input, so each
// retransmission (distinct Seq) draws fresh loss trials while repeats
// of the identical packet draw identically.
func probeKey(s ProbeSpec) uint64 {
	return mix(u64(s.Src), u64(s.Dst), uint64(s.TTL), uint64(s.Seq), uint64(s.FlowID), uint64(s.Proto))
}

// lossDrop draws one Bernoulli trial per link traversal of the probe's
// round trip; any hit loses the packet (or its reply).
func (p *FaultPlan) lossDrop(netSeed uint64, s ProbeSpec, links int) bool {
	th := thresh(p.LinkLoss)
	if th == 0 {
		return false
	}
	key := probeKey(s)
	for i := 0; i < links; i++ {
		if mix(netSeed, p.Seed, saltLoss, key, uint64(i))%1_000_000 < th {
			return true
		}
	}
	return false
}

// routerSilent reports whether the router never answers under this plan.
func (p *FaultPlan) routerSilent(netSeed uint64, id RouterID) bool {
	if p.silentSet[id] {
		return true
	}
	th := thresh(p.SilentFrac)
	return th > 0 && mix(netSeed, p.Seed, saltSilent, uint64(id))%1_000_000 < th
}

// blackedOut reports whether the router is inside its transient outage
// window at the given virtual instant.
func (p *FaultPlan) blackedOut(netSeed uint64, id RouterID, at time.Time) bool {
	th := thresh(p.BlackoutFrac)
	if th == 0 || mix(netSeed, p.Seed, saltBlackSel, uint64(id))%1_000_000 >= th {
		return false
	}
	period := int64(p.BlackoutPeriod)
	w := at.UnixNano() / period
	off := at.UnixNano() % period
	span := period - int64(p.BlackoutDur)
	var phase int64
	if span > 0 {
		phase = int64(mix(netSeed, p.Seed, saltBlackPh, uint64(id), uint64(w)) % uint64(span))
	}
	return off >= phase && off < phase+int64(p.BlackoutDur)
}

// rateLimited reports whether the router's ICMP limiter is dry in the
// window containing the given instant.
func (p *FaultPlan) rateLimited(netSeed uint64, id RouterID, at time.Time) bool {
	if p.ICMPRate <= 0 {
		return false
	}
	duty := p.ICMPRate * p.ICMPWindow.Seconds()
	if duty >= 1 {
		return false
	}
	w := at.UnixNano() / int64(p.ICMPWindow)
	return mix(netSeed, p.Seed, saltRate, uint64(id), uint64(w))%1_000_000 >= thresh(duty)
}

// vpOffline reports whether the probing source host is offline at the
// given instant.
func (p *FaultPlan) vpOffline(netSeed uint64, src netip.Addr, at time.Time) bool {
	if p.offlineSet[src] {
		return true
	}
	th := thresh(p.VPChurnFrac)
	if th == 0 {
		return false
	}
	h := u64(src)
	if mix(netSeed, p.Seed, saltChurnSel, h)%1_000_000 >= th {
		return false
	}
	w := at.UnixNano() / int64(p.VPChurnPeriod)
	return mix(netSeed, p.Seed, saltChurnWin, h, uint64(w))%1_000_000 < thresh(p.VPOfflineFrac)
}

// SetFaultPlan installs (or replaces) the measurement-fault plan. The
// plan is copied and normalized, and the swap is atomic, so it is safe
// to install between probe batches while other goroutines probe; for
// reproducible campaigns install it before the first probe. Installing
// the zero FaultPlan (or never calling SetFaultPlan) leaves every
// reply bit-identical to the fault-free simulator.
func (n *Network) SetFaultPlan(p FaultPlan) {
	cp := p
	cp.normalize()
	n.faults.Store(&cp)
}

// Faults returns the installed fault plan, or nil when none was set.
func (n *Network) Faults() *FaultPlan { return n.faults.Load() }
