package netsim

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/geo"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// chainNet builds VP -> R1 -> R2 -> R3 -> target host, with 1ms links.
// Interface addressing: link i uses 10.0.i.1 (near side) / 10.0.i.2 (far).
type chain struct {
	net    *Network
	vp     *Host
	target *Host
	rs     []*Router
}

func buildChain(t *testing.T, nRouters int) *chain {
	t.Helper()
	n := New(42)
	rs := make([]*Router, nRouters)
	for i := range rs {
		rs[i] = n.AddRouter(&Router{Name: fmt.Sprintf("r%d", i+1), ISP: "testnet", CO: fmt.Sprintf("co%d", i+1)})
	}
	for i := 0; i+1 < nRouters; i++ {
		_, err := n.ConnectRouters(rs[i], rs[i+1],
			addr(fmt.Sprintf("10.0.%d.1", i)), addr(fmt.Sprintf("10.0.%d.2", i)),
			time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
	}
	vp := &Host{Addr: addr("192.168.1.10"), Router: rs[0], ISP: "testnet", AccessDelay: 500 * time.Microsecond, RespondsToPing: true}
	tgt := &Host{Addr: addr("192.168.2.10"), Router: rs[nRouters-1], ISP: "testnet", AccessDelay: 2 * time.Millisecond, RespondsToPing: true}
	if err := n.AddHost(vp); err != nil {
		t.Fatal(err)
	}
	if err := n.AddHost(tgt); err != nil {
		t.Fatal(err)
	}
	return &chain{net: n, vp: vp, target: tgt, rs: rs}
}

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func (c *chain) probe(ttl uint8) Reply {
	return c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: c.target.Addr, TTL: ttl, Proto: ICMPEcho, FlowID: 7, Seq: uint32(ttl)})
}

func TestTracerouteSemantics(t *testing.T) {
	c := buildChain(t, 3)
	// TTL 1 expires at R2 (the VP's gateway R1 is the source router and
	// does not consume TTL; hop 1 is the next router).
	r1 := c.probe(1)
	if r1.Type != TTLExceeded {
		t.Fatalf("TTL1 reply type = %v", r1.Type)
	}
	// Inbound interface of R2 on the link from R1 is 10.0.0.2.
	if r1.From != addr("10.0.0.2") {
		t.Errorf("TTL1 from = %v, want 10.0.0.2 (inbound iface)", r1.From)
	}
	r2 := c.probe(2)
	if r2.Type != TTLExceeded || r2.From != addr("10.0.1.2") {
		t.Errorf("TTL2 = %v from %v, want ttl-exceeded from 10.0.1.2", r2.Type, r2.From)
	}
	r3 := c.probe(3)
	if r3.Type != EchoReply || r3.From != c.target.Addr {
		t.Errorf("TTL3 = %v from %v, want echo-reply from target", r3.Type, r3.From)
	}
	// Higher TTLs still reach the destination.
	if r := c.probe(10); r.Type != EchoReply {
		t.Errorf("TTL10 = %v, want echo-reply", r.Type)
	}
}

func TestRTTMonotonicAlongPath(t *testing.T) {
	c := buildChain(t, 5)
	var prev time.Duration
	for ttl := uint8(1); ttl <= 5; ttl++ {
		r := c.probe(ttl)
		if r.Type == Timeout {
			t.Fatalf("ttl %d timed out", ttl)
		}
		// Jitter is bounded by JitterMax; each extra hop adds 2ms
		// propagation, far more than jitter, so RTT must increase.
		if r.RTT <= prev {
			t.Errorf("RTT not increasing at ttl %d: %v <= %v", ttl, r.RTT, prev)
		}
		prev = r.RTT
	}
	// End-to-end RTT: 4 links * 1ms * 2 + access delays (0.5+2)*2 = 13ms
	// + processing + jitter.
	got := c.probe(5).RTT
	if got < 13*time.Millisecond || got > 15*time.Millisecond {
		t.Errorf("end-to-end RTT = %v, want ~13-15ms", got)
	}
}

func TestProbeDeterminism(t *testing.T) {
	c := buildChain(t, 4)
	a := c.probe(2)
	b := c.probe(2)
	if a.Type != b.Type || a.From != b.From || a.RTT != b.RTT {
		t.Errorf("identical probes gave different replies: %+v vs %+v", a, b)
	}
}

func TestReplyTTL(t *testing.T) {
	c := buildChain(t, 4)
	r := c.probe(1)
	if r.ReplyTTL != 254 {
		t.Errorf("router reply TTL = %d, want 254 (255 initial, 1 hop back)", r.ReplyTTL)
	}
	h := c.probe(4)
	if h.ReplyTTL != 60 {
		t.Errorf("host reply TTL = %d, want 60 (64 initial, 4 hops back)", h.ReplyTTL)
	}
}

func TestUDPProbeGetsPortUnreachable(t *testing.T) {
	c := buildChain(t, 3)
	r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: c.target.Addr, TTL: 10, Proto: UDP})
	if r.Type != PortUnreachable {
		t.Errorf("UDP to host = %v, want port-unreachable", r.Type)
	}
}

func TestProbeToRouterInterface(t *testing.T) {
	c := buildChain(t, 3)
	// Ping the far interface of R3 directly.
	r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: addr("10.0.1.2"), TTL: 30, Proto: ICMPEcho})
	if r.Type != EchoReply || r.From != addr("10.0.1.2") {
		t.Errorf("echo to iface = %v from %v", r.Type, r.From)
	}
}

func TestMercatorSignal(t *testing.T) {
	c := buildChain(t, 3)
	r3 := c.rs[2]
	r3.ReplyAddr = ReplyCanonical
	lo, err := c.net.AddIface(r3, addr("10.255.0.3"))
	if err != nil {
		t.Fatal(err)
	}
	_ = lo
	r3.Canonical = addr("10.255.0.3")
	// UDP probe to the inbound interface address returns the canonical
	// address: the Mercator alias signal.
	r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: addr("10.0.1.2"), TTL: 30, Proto: UDP})
	if r.Type != PortUnreachable {
		t.Fatalf("mercator probe type = %v", r.Type)
	}
	if r.From != addr("10.255.0.3") {
		t.Errorf("mercator reply from %v, want canonical 10.255.0.3", r.From)
	}
	// An inbound-mode router gives no signal.
	r2 := c.rs[1]
	r2.ReplyAddr = ReplyInbound
	got := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: addr("10.0.0.2"), TTL: 30, Proto: UDP})
	if got.From != addr("10.0.0.2") {
		t.Errorf("inbound-mode reply from %v, want probed addr", got.From)
	}
}

func TestDstPolicy(t *testing.T) {
	c := buildChain(t, 3)
	c.rs[1].DstPolicy = DstInternalOnly
	ext := &Host{Addr: addr("172.16.0.9"), Router: c.rs[0], ISP: "othernet", AccessDelay: time.Millisecond, RespondsToPing: true}
	if err := c.net.AddHost(ext); err != nil {
		t.Fatal(err)
	}
	// Echo addressed to the router's interface: blocked for external
	// sources, answered for internal ones.
	ifaceAddr := addr("10.0.0.2") // r2's inbound interface
	if r := c.net.Probe(t0, ProbeSpec{Src: ext.Addr, Dst: ifaceAddr, TTL: 30}); r.Type != Timeout {
		t.Errorf("internal-only router answered external echo: %v", r.Type)
	}
	if r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: ifaceAddr, TTL: 30}); r.Type != EchoReply {
		t.Errorf("internal-only router refused internal echo: %v", r.Type)
	}
	// TTL-exceeded for transit packets is NOT blocked: external
	// traceroutes through the router still see the hop (the §6.3
	// behaviour).
	if r := c.net.Probe(t0, ProbeSpec{Src: ext.Addr, Dst: c.target.Addr, TTL: 1}); r.Type != TTLExceeded {
		t.Errorf("transit TTL-exceeded suppressed: %v", r.Type)
	}
	// DstClosed refuses even internal sources.
	c.rs[1].DstPolicy = DstClosed
	if r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: ifaceAddr, TTL: 30}); r.Type != Timeout {
		t.Errorf("closed router answered: %v", r.Type)
	}
	if r := c.probe(1); r.Type != TTLExceeded {
		t.Errorf("closed router suppressed transit TTL-exceeded: %v", r.Type)
	}
}

func TestResponseProb(t *testing.T) {
	c := buildChain(t, 3)
	c.rs[1].ResponseProb = 0.00001 // effectively silent
	timeouts := 0
	for seq := uint32(0); seq < 50; seq++ {
		r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: c.target.Addr, TTL: 1, Seq: seq})
		if r.Type == Timeout {
			timeouts++
		}
	}
	if timeouts < 49 {
		t.Errorf("nearly-silent router answered %d/50 probes", 50-timeouts)
	}
	// Destination is still reachable through the silent hop.
	if r := c.probe(3); r.Type != EchoReply {
		t.Errorf("probe through silent hop = %v", r.Type)
	}
}

func TestMPLSTunnelHidesInterior(t *testing.T) {
	c := buildChain(t, 5) // r1..r5, target behind r5
	// LSP from R2 to R4: R3 is interior.
	c.net.AddTunnel(c.rs[1], c.rs[3])
	// Traceroute to the host (beyond egress): hops are R2, R4, R5, host.
	hops := map[int]netip.Addr{}
	for ttl := uint8(1); ttl <= 6; ttl++ {
		r := c.probe(ttl)
		if r.Type == TTLExceeded || r.Type == EchoReply {
			hops[int(ttl)] = r.From
		}
	}
	if hops[1] != addr("10.0.0.2") { // R2 inbound
		t.Errorf("hop1 = %v", hops[1])
	}
	if hops[2] != addr("10.0.2.2") { // R4 inbound (from R3's link!)
		t.Errorf("hop2 = %v, want R4 inbound 10.0.2.2 (R3 hidden)", hops[2])
	}
	if hops[3] != addr("10.0.3.2") { // R5
		t.Errorf("hop3 = %v", hops[3])
	}
	if hops[4] != c.target.Addr {
		t.Errorf("hop4 = %v, want target", hops[4])
	}
	// DPR: traceroute to the egress interface reveals the interior hop.
	r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: addr("10.0.2.2"), TTL: 2, Proto: ICMPEcho})
	if r.Type != TTLExceeded || r.From != addr("10.0.1.2") {
		t.Errorf("DPR hop2 = %v from %v, want ttl-exceeded from R3 (10.0.1.2)", r.Type, r.From)
	}
}

func TestECMPFlowStability(t *testing.T) {
	// Diamond: r1 -> {r2a, r2b} -> r3 with equal costs.
	n := New(7)
	r1 := n.AddRouter(&Router{Name: "r1", ISP: "t"})
	r2a := n.AddRouter(&Router{Name: "r2a", ISP: "t"})
	r2b := n.AddRouter(&Router{Name: "r2b", ISP: "t"})
	r3 := n.AddRouter(&Router{Name: "r3", ISP: "t"})
	must := func(_ *Link, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.ConnectRouters(r1, r2a, addr("10.1.0.1"), addr("10.1.0.2"), time.Millisecond))
	must(n.ConnectRouters(r1, r2b, addr("10.2.0.1"), addr("10.2.0.2"), time.Millisecond))
	must(n.ConnectRouters(r2a, r3, addr("10.3.0.1"), addr("10.3.0.2"), time.Millisecond))
	must(n.ConnectRouters(r2b, r3, addr("10.4.0.1"), addr("10.4.0.2"), time.Millisecond))
	vp := &Host{Addr: addr("192.168.0.1"), Router: r1, ISP: "t", RespondsToPing: true}
	tgt := &Host{Addr: addr("192.168.0.2"), Router: r3, ISP: "t", RespondsToPing: true}
	if err := n.AddHost(vp); err != nil {
		t.Fatal(err)
	}
	if err := n.AddHost(tgt); err != nil {
		t.Fatal(err)
	}
	// Same flow ID -> same middle hop every time.
	first := n.Probe(t0, ProbeSpec{Src: vp.Addr, Dst: tgt.Addr, TTL: 1, FlowID: 99}).From
	for i := 0; i < 20; i++ {
		got := n.Probe(t0, ProbeSpec{Src: vp.Addr, Dst: tgt.Addr, TTL: 1, FlowID: 99, Seq: uint32(i)}).From
		if got != first {
			t.Fatalf("flow 99 switched paths: %v then %v", first, got)
		}
	}
	// Different flow IDs eventually use both paths.
	seen := map[netip.Addr]bool{}
	for f := uint16(0); f < 64; f++ {
		seen[n.Probe(t0, ProbeSpec{Src: vp.Addr, Dst: tgt.Addr, TTL: 1, FlowID: f}).From] = true
	}
	if len(seen) != 2 {
		t.Errorf("ECMP used %d distinct next hops over 64 flows, want 2", len(seen))
	}
}

func TestSharedIPIDMonotonic(t *testing.T) {
	c := buildChain(t, 3)
	r2 := c.rs[1]
	r2.IPID = IPIDShared
	r2.IPIDVelocity = 10
	var prev uint16
	at := t0
	for i := 0; i < 30; i++ {
		r := c.net.Probe(at, ProbeSpec{Src: c.vp.Addr, Dst: c.target.Addr, TTL: 1, Seq: uint32(i)})
		if r.Type != TTLExceeded {
			t.Fatal("probe failed")
		}
		if i > 0 {
			delta := int32(r.IPID) - int32(prev)
			if delta < 0 {
				delta += 65536
			}
			// Velocity 10/s over 1s plus one per reply: small positive.
			if delta <= 0 || delta > 100 {
				t.Errorf("IPID delta %d out of bounds at sample %d", delta, i)
			}
		}
		prev = r.IPID
		at = at.Add(time.Second)
	}
}

func TestPrefixOnlyDestinationsTimeout(t *testing.T) {
	c := buildChain(t, 3)
	c.net.AddPrefix(netip.MustParsePrefix("192.168.2.0/24"), c.rs[2], "testnet")
	// Unassigned address inside the covered /24: intermediate hops reply,
	// destination never does.
	r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: addr("192.168.2.200"), TTL: 1})
	if r.Type != TTLExceeded {
		t.Errorf("intermediate hop for prefix-only dst = %v", r.Type)
	}
	end := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: addr("192.168.2.200"), TTL: 10})
	if end.Type != Timeout {
		t.Errorf("prefix-only destination answered: %v", end.Type)
	}
	// Address outside all prefixes: unroutable.
	if r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: addr("203.0.113.77"), TTL: 10}); r.Type != Timeout {
		t.Errorf("unroutable destination answered: %v", r.Type)
	}
}

func TestConnectErrors(t *testing.T) {
	n := New(1)
	r1 := n.AddRouter(&Router{Name: "a", ISP: "t"})
	r2 := n.AddRouter(&Router{Name: "b", ISP: "t"})
	i1, err := n.AddIface(r1, addr("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddIface(r2, addr("10.0.0.1")); err == nil {
		t.Error("duplicate interface address accepted")
	}
	i1b, err := n.AddIface(r1, addr("10.0.0.3"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect(i1, i1b, 0); err == nil {
		t.Error("self-link accepted")
	}
	i2, err := n.AddIface(r2, addr("10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect(i1, i2, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	i3, err := n.AddIface(r2, addr("10.0.0.6"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect(i1, i3, time.Millisecond); err == nil {
		t.Error("double-link on one interface accepted")
	}
	if err := n.AddHost(&Host{Addr: addr("1.2.3.4")}); err == nil {
		t.Error("host without router accepted")
	}
}

func TestUnreachableHostTimesOut(t *testing.T) {
	n := New(3)
	r1 := n.AddRouter(&Router{Name: "a", ISP: "t"})
	r2 := n.AddRouter(&Router{Name: "b", ISP: "t"}) // island
	vp := &Host{Addr: addr("10.0.0.1"), Router: r1, ISP: "t"}
	tgt := &Host{Addr: addr("10.0.0.2"), Router: r2, ISP: "t", RespondsToPing: true}
	if err := n.AddHost(vp); err != nil {
		t.Fatal(err)
	}
	if err := n.AddHost(tgt); err != nil {
		t.Fatal(err)
	}
	if r := n.Probe(t0, ProbeSpec{Src: vp.Addr, Dst: tgt.Addr, TTL: 10}); r.Type != Timeout {
		t.Errorf("probe across partition = %v", r.Type)
	}
	if n.Reachable(r1, r2) {
		t.Error("Reachable across partition")
	}
}

func TestHostNotRespondingToPing(t *testing.T) {
	c := buildChain(t, 3)
	c.target.RespondsToPing = false
	if r := c.probe(5); r.Type != Timeout {
		t.Errorf("silent host answered: %v", r.Type)
	}
}

func TestRoutingPrefersLowDelay(t *testing.T) {
	// r1 connects to r3 directly (5ms) and via r2 (1ms+1ms): path via r2
	// must win.
	n := New(5)
	r1 := n.AddRouter(&Router{Name: "r1", ISP: "t", Loc: geo.Point{}})
	r2 := n.AddRouter(&Router{Name: "r2", ISP: "t"})
	r3 := n.AddRouter(&Router{Name: "r3", ISP: "t"})
	mustLink := func(_ *Link, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	mustLink(n.ConnectRouters(r1, r3, addr("10.9.0.1"), addr("10.9.0.2"), 5*time.Millisecond))
	mustLink(n.ConnectRouters(r1, r2, addr("10.1.0.1"), addr("10.1.0.2"), time.Millisecond))
	mustLink(n.ConnectRouters(r2, r3, addr("10.2.0.1"), addr("10.2.0.2"), time.Millisecond))
	vp := &Host{Addr: addr("192.168.0.1"), Router: r1, ISP: "t"}
	if err := n.AddHost(vp); err != nil {
		t.Fatal(err)
	}
	got := n.Probe(t0, ProbeSpec{Src: vp.Addr, Dst: addr("10.2.0.2"), TTL: 1})
	if got.From != addr("10.1.0.2") {
		t.Errorf("first hop = %v, want via r2 (10.1.0.2)", got.From)
	}
}

func TestIPv6Forwarding(t *testing.T) {
	n := New(9)
	r1 := n.AddRouter(&Router{Name: "v6a", ISP: "m"})
	r2 := n.AddRouter(&Router{Name: "v6b", ISP: "m"})
	if _, err := n.ConnectRouters(r1, r2,
		addr("2001:db8:1::1"), addr("2001:db8:1::2"), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	vp := &Host{Addr: addr("2001:db8:99::1"), Router: r1, ISP: "m", RespondsToPing: true}
	tgt := &Host{Addr: addr("2001:db8:99::2"), Router: r2, ISP: "m", RespondsToPing: true}
	for _, h := range []*Host{vp, tgt} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	r := n.Probe(t0, ProbeSpec{Src: vp.Addr, Dst: tgt.Addr, TTL: 1})
	if r.Type != TTLExceeded || r.From != addr("2001:db8:1::2") {
		t.Errorf("v6 hop = %v from %v", r.Type, r.From)
	}
	if r := n.Probe(t0, ProbeSpec{Src: vp.Addr, Dst: tgt.Addr, TTL: 8}); r.Type != EchoReply {
		t.Errorf("v6 end-to-end = %v", r.Type)
	}
	// Mixed-family destination lookup must not cross families silently:
	// a v4 probe to an unknown v4 address on a v6-only network times
	// out.
	if r := n.Probe(t0, ProbeSpec{Src: vp.Addr, Dst: addr("192.0.2.1"), TTL: 8}); r.Type != Timeout {
		t.Errorf("v4 dst on v6 net = %v", r.Type)
	}
}

func TestGeneralPrefixFallback(t *testing.T) {
	// Non-/24 prefixes go through the linear owner table.
	c := buildChain(t, 3)
	c.net.AddPrefix(netip.MustParsePrefix("100.64.0.0/10"), c.rs[2], "testnet")
	r := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: addr("100.64.5.5"), TTL: 1})
	if r.Type != TTLExceeded {
		t.Errorf("general-prefix dst hop = %v", r.Type)
	}
	// Longest-prefix match prefers the /24 index over the general entry.
	c.net.AddPrefix(netip.MustParsePrefix("100.64.5.0/24"), c.rs[0], "testnet")
	r2 := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: addr("100.64.5.5"), TTL: 10})
	// Routed to rs[0] (the VP's own gateway) and dies there unanswered.
	if r2.Type != Timeout {
		t.Errorf("/24-owned dst = %v", r2.Type)
	}
}

func TestLinkMetricOverride(t *testing.T) {
	// r1 connects to r3 directly (3ms) and via r2 (1ms+1ms). Routing
	// normally prefers the two-hop path; an operator metric on the
	// direct link pulls traffic onto it without changing its RTT.
	n := New(13)
	r1 := n.AddRouter(&Router{Name: "m1", ISP: "t"})
	r2 := n.AddRouter(&Router{Name: "m2", ISP: "t"})
	r3 := n.AddRouter(&Router{Name: "m3", ISP: "t"})
	direct, err := n.ConnectRouters(r1, r3, addr("10.5.0.1"), addr("10.5.0.2"), 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.ConnectRouters(r1, r2, addr("10.6.0.1"), addr("10.6.0.2"), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := n.ConnectRouters(r2, r3, addr("10.7.0.1"), addr("10.7.0.2"), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	vp := &Host{Addr: addr("192.168.7.1"), Router: r1, ISP: "t"}
	tgt := &Host{Addr: addr("192.168.7.2"), Router: r3, ISP: "t", RespondsToPing: true}
	for _, h := range []*Host{vp, tgt} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	probe := func(ttl uint8) Reply {
		return n.Probe(t0, ProbeSpec{Src: vp.Addr, Dst: tgt.Addr, TTL: ttl, FlowID: 4})
	}
	if r := probe(1); r.From != addr("10.6.0.2") {
		t.Fatalf("without metric, first hop = %v, want via r2", r.From)
	}
	direct.Metric = time.Microsecond
	n.InvalidateRoutes()
	if r := probe(1); r.From != addr("10.5.0.2") {
		t.Errorf("with preferential metric, first hop = %v, want the direct link", r.From)
	}
	// RTT still reflects the real 3ms propagation, not the metric.
	if r := probe(8); r.Type != EchoReply || r.RTT < 6*time.Millisecond {
		t.Errorf("end-to-end %v RTT %v should reflect the physical delay", r.Type, r.RTT)
	}
}
