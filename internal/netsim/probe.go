package netsim

import (
	"net/netip"
	"time"
)

// Proto selects the probe type.
type Proto uint8

const (
	// ICMPEcho is an ICMP echo request (ping / icmp-paris traceroute).
	ICMPEcho Proto = iota
	// UDP is a UDP datagram to a high port (classic traceroute probe and
	// Mercator's alias probe).
	UDP
)

// ReplyType classifies what came back for a probe.
type ReplyType uint8

const (
	// Timeout means nothing came back.
	Timeout ReplyType = iota
	// TTLExceeded is an ICMP time-exceeded from an intermediate router.
	TTLExceeded
	// EchoReply is the destination answering a ping.
	EchoReply
	// PortUnreachable is an ICMP destination-unreachable (port) from the
	// destination of a UDP probe.
	PortUnreachable
)

func (t ReplyType) String() string {
	switch t {
	case Timeout:
		return "timeout"
	case TTLExceeded:
		return "ttl-exceeded"
	case EchoReply:
		return "echo-reply"
	case PortUnreachable:
		return "port-unreachable"
	}
	return "unknown"
}

// ProbeSpec describes one probe packet.
type ProbeSpec struct {
	// Src must be a registered Host address (the vantage point).
	Src   netip.Addr
	Dst   netip.Addr
	TTL   uint8
	Proto Proto
	// FlowID keeps ECMP decisions stable: probes sharing a FlowID take
	// identical paths (Paris traceroute invariant).
	FlowID uint16
	// Seq distinguishes retransmissions for jitter and rate-limit draws.
	Seq uint32
}

// Reply is what the prober observes. The zero Reply is a Timeout.
type Reply struct {
	Type ReplyType
	// From is the source address of the response packet.
	From netip.Addr
	RTT  time.Duration
	// ReplyTTL is the TTL remaining on the response when it arrived,
	// the signal Appendix C's figures display (reply-ttl column).
	ReplyTTL uint8
	// IPID is the IP identifier of the response, the signal MIDAR uses.
	IPID uint16
	// Drop records why a Timeout happened when an injected fault is to
	// blame (see DropCause); DropNone otherwise. Accounting metadata
	// only — inference must never branch on it.
	Drop DropCause
}

// resolveDst locates the router that serves dst and whether dst is a
// live host, a router interface, or a bare covered prefix.
type dstKind uint8

const (
	dstNone dstKind = iota
	dstHost
	dstIface
	dstPrefixOnly
)

func (n *Network) resolveDst(dst netip.Addr) (dstKind, *Router, *Host, *Iface) {
	if h, ok := n.hosts[dst]; ok {
		return dstHost, h.Router, h, nil
	}
	if ifc, ok := n.ifaces[dst]; ok {
		return dstIface, ifc.Router, nil, ifc
	}
	if dst.Is4() && n.prefix24 != nil {
		if po, ok := n.prefix24[netip.PrefixFrom(dst, 24).Masked().Addr()]; ok {
			return dstPrefixOnly, po.router, nil, nil
		}
	}
	if po := n.lpm().lookup(dst); po != nil {
		return dstPrefixOnly, po.router, nil, nil
	}
	return dstNone, nil, nil, nil
}

// visibleHop is a hop that consumes TTL (MPLS-hidden hops removed).
type visibleHop struct {
	router *Router
	in     *Iface
	delay  time.Duration
	// hops is the count of physical routers traversed from the source
	// up to and including this one (for processing-delay accounting).
	hops int
}

// visiblePath applies MPLS no-ttl-propagate semantics to a router path:
// hops strictly inside a tunnel are removed unless the probe is addressed
// to an interface of the egress or of an interior router (Direct Path
// Revelation, per Vanaubel et al.). Probes toward hosts or bare prefixes
// beyond the egress ride the LSP and never see the interior. The source
// router itself is not included in the result.
func (n *Network) visiblePath(path []pathHop, dstRouter *Router, dstIsRouterAddr bool) []visibleHop {
	// Router paths are a handful of hops, so position lookups scan the
	// path directly and the hidden mask lives on the stack — a map and a
	// heap slice per compiled flow otherwise.
	pos := func(id RouterID) (int, bool) {
		for i, h := range path {
			if h.router.ID == id {
				return i, true
			}
		}
		return 0, false
	}
	var hiddenBuf [64]bool
	var hidden []bool
	if len(path) <= len(hiddenBuf) {
		hidden = hiddenBuf[:len(path)]
	} else {
		hidden = make([]bool, len(path))
	}
	dstPos := len(path) // beyond every hop unless the dst is a router
	if dstIsRouterAddr {
		if p, ok := pos(dstRouter.ID); ok {
			dstPos = p
		}
	}
	for i, h := range path {
		for _, t := range n.tunnels[h.router.ID] {
			e, ok := pos(t.Egress.ID)
			if !ok || e <= i {
				continue
			}
			// DPR: destinations on or before the egress keep the
			// interior visible.
			if dstPos <= e {
				continue
			}
			for j := i + 1; j < e; j++ {
				hidden[j] = true
			}
		}
	}
	out := make([]visibleHop, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		if hidden[i] {
			continue
		}
		out = append(out, visibleHop{
			router: path[i].router,
			in:     path[i].in,
			delay:  path[i].delay,
			hops:   i,
		})
	}
	return out
}

// Probe injects one probe at virtual time `at` and returns the response.
//
// This is the convenience entry point: it resolves the destination
// through the compiled FIB and computes the flow's visible path on
// every call (reading, but never populating, the compiled-path cache —
// one-shot probes tend to carry single-use flow IDs). Callers that send
// many probes along one flow, such as a traceroute walking TTLs, should
// compile the flow once with CompileFlow and replay it.
func (n *Network) Probe(at time.Time, s ProbeSpec) Reply {
	srcHost, ok := n.hosts[s.Src]
	if !ok {
		return Reply{Type: Timeout}
	}
	kind, dstRouter, dHost, dIface := n.resolveDst(s.Dst)
	if kind == dstNone || dstRouter == nil {
		return Reply{Type: Timeout}
	}
	cp := n.compiledVisible(srcHost.Router.ID, dstRouter.ID, s.FlowID, kind == dstIface, false)
	return n.replay(at, s, srcHost, kind, dstRouter, dHost, dIface, cp)
}

// replay answers one probe from a compiled path. It allocates nothing:
// every hop decision indexes into the immutable compiled hop sequence.
func (n *Network) replay(at time.Time, s ProbeSpec, srcHost *Host, kind dstKind, dstRouter *Router, dHost *Host, dIface *Iface, cp *compiledPath) Reply {
	plan := n.faults.Load()
	if !plan.active() {
		plan = nil
	}
	if plan != nil && plan.vpOffline(n.seed, s.Src, at) {
		return Reply{Type: Timeout, Drop: DropVPDown}
	}
	if s.TTL == 0 || !cp.reachable {
		return Reply{Type: Timeout}
	}
	vis := cp.vis

	// Number of TTL-consuming hops to reach the destination endpoint:
	// each visible router is one, plus one more when the destination is
	// a host behind the final router.
	hopsToDst := len(vis)
	if kind == dstHost {
		hopsToDst++
	}

	if int(s.TTL) <= len(vis) && int(s.TTL) < hopsToDst {
		// Expires at an intermediate router.
		h := vis[s.TTL-1]
		return n.routerReply(at, s, srcHost, h, TTLExceeded, plan)
	}
	if int(s.TTL) < hopsToDst {
		return Reply{Type: Timeout}
	}

	// Probe reaches the destination.
	switch kind {
	case dstHost:
		return n.hostReply(at, s, srcHost, dHost, vis, plan)
	case dstIface:
		var h visibleHop
		if len(vis) == 0 {
			// Destination router is the VP's own gateway.
			h = visibleHop{router: dstRouter, in: dIface, delay: 0, hops: 0}
		} else {
			h = vis[len(vis)-1]
			h.in = dIface // echo/udp responses come from the probed address
		}
		kindReply := EchoReply
		if s.Proto == UDP {
			kindReply = PortUnreachable
		}
		return n.routerReply(at, s, srcHost, h, kindReply, plan)
	default: // dstPrefixOnly: address not live; the packet dies silently.
		return Reply{Type: Timeout}
	}
}

// Flow is a compiled probe flow: the source host, the resolved
// destination, and the visible hop sequence for one (src, dst, flowID)
// triple, with MPLS tunnel spans already applied. Compiling once and
// replaying answers each TTL with pure indexing — no map lookups, path
// walks, or allocations per probe — which is what makes TTL sweeps
// (traceroute) cheap.
//
// A Flow is immutable and safe for concurrent use, but it snapshots the
// topology: like an in-flight probe, it must not outlive a topology
// mutation (Connect, AddTunnel, InvalidateRoutes).
type Flow struct {
	net       *Network
	src, dst  netip.Addr
	flowID    uint16
	srcHost   *Host
	kind      dstKind
	dstRouter *Router
	dstHost   *Host
	dstIface  *Iface
	cp        *compiledPath
}

// unreachableFlow answers every probe with a timeout.
var unreachableFlow = &compiledPath{}

// CompileFlow resolves src, dst, and the flow's forwarding path once.
// The returned Flow answers probes for any TTL, protocol, and sequence
// number of that flow; an unresolvable source or destination yields a
// Flow whose probes all time out, exactly as Probe would.
func (n *Network) CompileFlow(src, dst netip.Addr, flowID uint16) Flow {
	f := Flow{net: n, src: src, dst: dst, flowID: flowID, cp: unreachableFlow}
	srcHost, ok := n.hosts[src]
	if !ok {
		return f
	}
	f.srcHost = srcHost
	kind, dstRouter, dHost, dIface := n.resolveDst(dst)
	if kind == dstNone || dstRouter == nil {
		return f
	}
	f.kind = kind
	f.dstRouter = dstRouter
	f.dstHost = dHost
	f.dstIface = dIface
	f.cp = n.compiledVisible(srcHost.Router.ID, dstRouter.ID, flowID, kind == dstIface, true)
	return f
}

// HopsToDst returns the number of TTL-consuming hops a probe needs to
// reach the destination endpoint: one per visible router, plus one when
// the destination is a host behind the final router. It returns 0 when
// the destination is unresolvable or unreachable — callers sizing hop
// buffers should treat that as "unknown".
func (f *Flow) HopsToDst() int {
	if !f.cp.reachable {
		return 0
	}
	h := len(f.cp.vis)
	if f.kind == dstHost {
		h++
	}
	return h
}

// Probe replays the compiled flow for one TTL. It is equivalent to —
// and bit-identical with — Network.Probe with the same parameters.
func (f *Flow) Probe(at time.Time, ttl uint8, proto Proto, seq uint32) Reply {
	if f.srcHost == nil {
		return Reply{Type: Timeout}
	}
	s := ProbeSpec{Src: f.src, Dst: f.dst, TTL: ttl, Proto: proto, FlowID: f.flowID, Seq: seq}
	return f.net.replay(at, s, f.srcHost, f.kind, f.dstRouter, f.dstHost, f.dstIface, f.cp)
}

// routerReply builds a response originated by a router, applying the
// router's ICMP policies and any injected faults. A router in
// ReplyCanonical mode answers from its fixed address even when the
// probe was addressed to a different interface — the signal
// Mercator-style alias resolution exploits.
//
// Fault ordering: policy denials first (they are intrinsic, not
// faults), then in-flight loss, then control-plane silence (permanent,
// blackout, rate limit), then the router's own ResponseProb draw. Each
// check is a pure hash, so the ordering only decides which DropCause a
// multiply-doomed probe reports.
func (n *Network) routerReply(at time.Time, s ProbeSpec, src *Host, h visibleHop, typ ReplyType, plan *FaultPlan) Reply {
	r := h.router
	if typ != TTLExceeded {
		switch r.DstPolicy {
		case DstClosed:
			return Reply{Type: Timeout}
		case DstInternalOnly:
			if src.ISP != r.ISP {
				return Reply{Type: Timeout}
			}
		}
	}
	if plan != nil {
		// Round trip traverses each of the h.hops+1 links (access link
		// included) in both directions.
		if plan.lossDrop(n.seed, s, 2*(h.hops+1)) {
			return Reply{Type: Timeout, Drop: DropLoss}
		}
		if plan.routerSilent(n.seed, r.ID) {
			return Reply{Type: Timeout, Drop: DropSilent}
		}
		if plan.blackedOut(n.seed, r.ID, at) {
			return Reply{Type: Timeout, Drop: DropBlackout}
		}
		if plan.rateLimited(n.seed, r.ID, at) {
			return Reply{Type: Timeout, Drop: DropRateLimited}
		}
	}
	if r.ResponseProb < 1 {
		draw := float64(mix(n.seed, 0xA11CE, u64(s.Src), u64(s.Dst), uint64(s.TTL), uint64(s.Seq))%1_000_000) / 1_000_000
		if draw >= r.ResponseProb {
			// ResponseProb has always modelled ICMP rate limiting
			// (see Router docs), so classify its silence accordingly.
			return Reply{Type: Timeout, Drop: DropRateLimited}
		}
	}
	from := r.Canonical
	replyIface := (*Iface)(nil)
	if r.ReplyAddr == ReplyInbound && h.in != nil {
		from = h.in.Addr
		replyIface = h.in
	}
	rtt := n.rtt(s, src, h.delay, h.hops, 0)
	return Reply{
		Type:     typ,
		From:     from,
		RTT:      rtt,
		ReplyTTL: replyTTL(255, h.hops),
		IPID:     r.nextIPID(at, replyIface),
	}
}

func (n *Network) hostReply(at time.Time, s ProbeSpec, src, dst *Host, vis []visibleHop, plan *FaultPlan) Reply {
	if !dst.RespondsToPing {
		return Reply{Type: Timeout}
	}
	var pathDelay time.Duration
	hops := 0
	if len(vis) > 0 {
		last := vis[len(vis)-1]
		pathDelay = last.delay
		hops = last.hops
	}
	// Round trip crosses hops+2 links (transit plus both access links)
	// in each direction.
	if plan != nil && plan.lossDrop(n.seed, s, 2*(hops+2)) {
		return Reply{Type: Timeout, Drop: DropLoss}
	}
	typ := EchoReply
	if s.Proto == UDP {
		typ = PortUnreachable
	}
	rtt := n.rtt(s, src, pathDelay, hops, dst.AccessDelay)
	return Reply{
		Type:     typ,
		From:     dst.Addr,
		RTT:      rtt,
		ReplyTTL: replyTTL(64, hops+1),
		IPID:     uint16(mix(n.seed, 0x1D, u64(dst.Addr), uint64(s.Seq))),
	}
}

// rtt assembles a round-trip time: symmetric propagation, per-router
// processing both ways, both access links, and bounded per-probe jitter.
func (n *Network) rtt(s ProbeSpec, src *Host, oneWay time.Duration, hops int, dstAccess time.Duration) time.Duration {
	rtt := 2*oneWay + 2*src.AccessDelay + 2*dstAccess
	rtt += time.Duration(2*hops) * n.ProcessingDelay
	if n.JitterMax > 0 {
		j := time.Duration(mix(n.seed, 0x717, u64(s.Src), u64(s.Dst), uint64(s.TTL), uint64(s.Seq)) % uint64(n.JitterMax))
		rtt += j
	}
	return rtt
}

func replyTTL(initial int, hopsBack int) uint8 {
	v := initial - hopsBack
	if v < 0 {
		v = 0
	}
	return uint8(v)
}

// u64 folds an address into a hash input.
func u64(a netip.Addr) uint64 {
	b := a.As16()
	var h uint64
	for i := 0; i < 16; i += 8 {
		var w uint64
		for j := 0; j < 8; j++ {
			w = w<<8 | uint64(b[i+j])
		}
		h = mix(h, w)
	}
	return h
}

// nextIPID advances and returns the router's IP-ID for a reply sent at
// the given virtual time from the given interface (nil for canonical).
// The counters are atomics so concurrent probes never race; their value
// after a batch of probes depends only on how many replies each counter
// produced, not on the interleaving, which keeps the (strictly
// sequential) MIDAR stage deterministic after a parallel campaign.
func (r *Router) nextIPID(at time.Time, ifc *Iface) uint16 {
	switch r.IPID {
	case IPIDRandom:
		return uint16(mix(uint64(r.ID), 0x5EED, uint64(at.UnixNano())))
	case IPIDPerInterface:
		if ifc == nil {
			return uint16(r.ipidBase.Add(1))
		}
		base := mix(uint64(r.ID), u64(ifc.Addr)) // independent counter origins
		return uint16(base + ifc.perIfIPID.Add(1) + uint64(float64(at.Unix())*r.IPIDVelocity))
	default: // IPIDShared
		elapsed := float64(at.UnixNano()) / 1e9
		return uint16(uint64(r.ID)*7919 + r.ipidBase.Add(1) + uint64(elapsed*r.IPIDVelocity))
	}
}
