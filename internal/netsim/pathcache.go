package netsim

import "sync"

// flowKey identifies one compiled forwarding decision: everything that
// the visible hop sequence depends on. Two probes that agree on the
// source router, destination router, Paris flow identifier, and whether
// the destination is a router-owned address traverse identical visible
// hops, whatever their TTL, protocol, or sequence number.
type flowKey struct {
	src, dst     RouterID
	flowID       uint16
	toRouterAddr bool
}

// compiledPath is the replayable result of routerPath + visiblePath for
// one flowKey. It is immutable after publication: probes index into vis
// but never write it, so one copy serves any number of goroutines.
type compiledPath struct {
	reachable bool
	// vis is the TTL-consuming hop sequence with MPLS-hidden hops
	// already removed (the source router is not included).
	vis []visibleHop
}

// pathShards is the fan-out of the compiled-path cache. Probing is
// read-mostly (each flow is compiled once and replayed for every TTL and
// attempt), so a small power-of-two shard count suffices to keep writer
// stalls off the read path.
const pathShards = 32

type pathShard struct {
	mu sync.RWMutex
	m  map[flowKey]*compiledPath
}

// pathCache is the sharded read-mostly cache of compiled paths.
type pathCache struct {
	shards [pathShards]pathShard
}

func (k flowKey) shard() uint64 {
	return mix(uint64(k.src), uint64(k.dst), uint64(k.flowID)) % pathShards
}

// invalidate drops every compiled path. Called whenever topology or
// routing inputs change (new links, route invalidation, new tunnels).
func (c *pathCache) invalidate() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
	}
}

// compiledVisible returns the compiled path for a flow, computing it on
// a miss. When store is true the result is also published to the cache
// for replay by later probes of the same flow; CompileFlow stores (a
// compiled flow is about to be replayed for many TTLs, and campaign
// stages re-trace the same flows), while one-shot Probe calls do not —
// sweeps and ping series deliberately vary the flow ID per probe, and
// caching those single-use paths would grow the cache without a single
// future hit. The computation is deterministic, so racing builders
// agree on content and the first stored copy wins — identical to the
// SPT cache's double-checked publication.
func (n *Network) compiledVisible(src, dst RouterID, flowID uint16, toRouterAddr bool, store bool) *compiledPath {
	k := flowKey{src: src, dst: dst, flowID: flowID, toRouterAddr: toRouterAddr}
	sh := &n.paths.shards[k.shard()]
	sh.mu.RLock()
	cp := sh.m[k]
	sh.mu.RUnlock()
	if cp != nil {
		return cp
	}
	cp = &compiledPath{}
	if path := n.routerPath(src, dst, flowID); path != nil {
		cp.reachable = true
		cp.vis = n.visiblePath(path, n.routers[dst], toRouterAddr)
	}
	if !store {
		return cp
	}
	sh.mu.Lock()
	if prev, ok := sh.m[k]; ok {
		sh.mu.Unlock()
		return prev
	}
	if sh.m == nil {
		sh.m = map[flowKey]*compiledPath{}
	}
	sh.m[k] = cp
	sh.mu.Unlock()
	return cp
}
