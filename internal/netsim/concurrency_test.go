package netsim

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentProbesMatchSequential hammers one network from many
// goroutines — cold route cache, shared and per-interface IP-ID
// counters — and checks every reply matches a sequential rerun of the
// same probe. Run under -race this also proves the lock layout: the
// double-checked SPT cache and the atomic IP-ID counters.
func TestConcurrentProbesMatchSequential(t *testing.T) {
	c := buildChain(t, 6)
	for _, r := range c.rs {
		r.IPID = IPIDShared
		r.IPIDVelocity = 3
	}

	const goroutines = 8
	const perG = 200
	type probeKey struct {
		ttl uint8
		seq uint32
	}
	results := make([]map[probeKey]Reply, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		results[g] = make(map[probeKey]Reply, perG)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ttl := uint8(1 + (g+i)%8)
				seq := uint32(g*perG + i)
				r := c.net.Probe(t0, ProbeSpec{
					Src: c.vp.Addr, Dst: c.target.Addr, TTL: ttl,
					Proto: ICMPEcho, FlowID: 7, Seq: seq,
				})
				results[g][probeKey{ttl, seq}] = r
			}
		}()
	}
	wg.Wait()

	// Everything except the IP-ID (a counter shared across probes by
	// design) must equal a sequential rerun.
	for g := range results {
		for k, got := range results[g] {
			want := c.net.Probe(t0, ProbeSpec{
				Src: c.vp.Addr, Dst: c.target.Addr, TTL: k.ttl,
				Proto: ICMPEcho, FlowID: 7, Seq: k.seq,
			})
			if got.Type != want.Type || got.From != want.From ||
				got.RTT != want.RTT || got.ReplyTTL != want.ReplyTTL {
				t.Fatalf("probe ttl=%d seq=%d: concurrent %+v != sequential %+v",
					k.ttl, k.seq, got, want)
			}
		}
	}
}

// TestConcurrentRouteCacheBuild races many goroutines into a cold
// shortest-path-tree cache across distinct sources and checks the
// routes agree with a fresh network's sequential answers.
func TestConcurrentRouteCacheBuild(t *testing.T) {
	build := func() *chain {
		c := buildChain(t, 8)
		return c
	}
	hot := build()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ttl := uint8(1); ttl <= 8; ttl++ {
				hot.net.Probe(t0, ProbeSpec{Src: hot.vp.Addr, Dst: hot.target.Addr, TTL: ttl, FlowID: uint16(ttl)})
			}
		}()
	}
	wg.Wait()

	cold := build()
	for ttl := uint8(1); ttl <= 8; ttl++ {
		a := hot.net.Probe(t0, ProbeSpec{Src: hot.vp.Addr, Dst: hot.target.Addr, TTL: ttl, FlowID: 3, Seq: 99})
		b := cold.net.Probe(t0, ProbeSpec{Src: cold.vp.Addr, Dst: cold.target.Addr, TTL: ttl, FlowID: 3, Seq: 99})
		if a.Type != b.Type || a.From != b.From || a.RTT != b.RTT {
			t.Fatalf("ttl=%d: racing-built cache gives %+v, fresh network gives %+v", ttl, a, b)
		}
	}
}

// TestInvalidateRoutesSafe checks topology edits between probe batches
// reset the cache without racing in-flight probes (construction is
// documented single-threaded; this exercises the documented sequence:
// probe, edit, probe).
func TestInvalidateRoutesSafe(t *testing.T) {
	c := buildChain(t, 3)
	before := c.probe(2)
	if before.Type != TTLExceeded {
		t.Fatalf("before edit: %v", before.Type)
	}
	// A new parallel link with lower delay changes the best path.
	if _, err := c.net.ConnectRouters(c.rs[0], c.rs[2], addr("10.9.0.1"), addr("10.9.0.2"), 100*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	after := c.net.Probe(t0, ProbeSpec{Src: c.vp.Addr, Dst: c.target.Addr, TTL: 1, Proto: ICMPEcho, FlowID: 7, Seq: 1})
	if after.From != addr("10.9.0.2") {
		t.Fatalf("after shortcut: hop 1 from %v, want 10.9.0.2", after.From)
	}
}
