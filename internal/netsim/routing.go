package netsim

import (
	"time"
)

// sptResult is a shortest-path tree rooted at one router, retaining every
// equal-cost predecessor so ECMP path selection can hash on flow IDs the
// way Paris traceroute expects.
type sptResult struct {
	dist  []time.Duration
	preds [][]predEdge
}

type predEdge struct {
	from  int32
	iface *Iface // interface on the successor (current) router
	link  *Link
}

type pqItem struct {
	router int32
	dist   time.Duration
}

// pq is a hand-rolled binary min-heap ordered by (dist, router).
// container/heap would box every pqItem through interface{} on Push and
// Pop — two heap allocations per queue operation, tens of thousands per
// campaign. Distinct items order strictly (equal dist ties break on
// router, and same-router-same-dist entries are identical values), so
// the pop sequence is the unique minimum each step regardless of heap
// internals — the Dijkstra result cannot depend on this representation.
type pq []pqItem

func (p pq) less(i, j int) bool {
	if p[i].dist != p[j].dist {
		return p[i].dist < p[j].dist
	}
	return p[i].router < p[j].router
}

func (p *pq) push(it pqItem) {
	q := append(*p, it)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*p = q
}

func (p *pq) pop() pqItem {
	q := *p
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q) && q.less(l, small) {
			small = l
		}
		if r < len(q) && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	*p = q
	return top
}

const unreachable = time.Duration(1<<62 - 1)

// shortestPaths computes (and caches) the SPT rooted at src. Link weight
// is propagation delay plus a constant hop cost, so the simulator prefers
// the same low-latency, few-hop paths an IGP with delay-derived metrics
// would pick. Safe for concurrent probing: the tree is computed outside
// the write lock (it is deterministic, so concurrent builders agree) and
// the first stored copy is shared thereafter.
func (n *Network) shortestPaths(src RouterID) *sptResult {
	n.sptMu.RLock()
	r, ok := n.spt[src]
	n.sptMu.RUnlock()
	if ok {
		return r
	}
	nr := len(n.routers)
	res := &sptResult{
		dist:  make([]time.Duration, nr),
		preds: make([][]predEdge, nr),
	}
	for i := range res.dist {
		res.dist[i] = unreachable
	}
	res.dist[src] = 0
	q := make(pq, 0, nr)
	q.push(pqItem{router: int32(src), dist: 0})
	done := make([]bool, nr)
	// Single-predecessor nodes — the overwhelming majority — carve their
	// one-entry preds slice out of a shared arena instead of allocating
	// individually (one allocation per reachable node per SPT root adds
	// up to millions across a scaled campaign's vantage points). Carves
	// are capacity-clamped, so a node that later gains an equal-cost
	// predecessor appends out of the arena into its own slice without
	// touching its neighbor's entry.
	arena := make([]predEdge, 0, nr)
	carve := func(pe predEdge) []predEdge {
		if cap(arena)-len(arena) >= 1 {
			s := arena[len(arena) : len(arena)+1 : len(arena)+1]
			arena = arena[:len(arena)+1]
			s[0] = pe
			return s
		}
		return []predEdge{pe}
	}
	for len(q) > 0 {
		it := q.pop()
		u := it.router
		if done[u] {
			continue
		}
		done[u] = true
		for _, ifc := range n.routers[u].ifaces {
			if ifc.Link == nil {
				continue
			}
			peer := ifc.Link.Other(ifc)
			v := peer.Router.idx
			metric := ifc.Link.Delay
			if ifc.Link.Metric != 0 {
				metric = ifc.Link.Metric
			}
			w := it.dist + quantizeDelay(metric) + hopCost
			switch {
			case w < res.dist[v]:
				res.dist[v] = w
				if res.preds[v] == nil {
					res.preds[v] = carve(predEdge{from: u, iface: peer, link: ifc.Link})
				} else {
					res.preds[v] = append(res.preds[v][:0], predEdge{from: u, iface: peer, link: ifc.Link})
				}
				q.push(pqItem{router: v, dist: w})
			case w == res.dist[v]:
				res.preds[v] = append(res.preds[v], predEdge{from: u, iface: peer, link: ifc.Link})
			}
		}
	}
	n.sptMu.Lock()
	if prev, ok := n.spt[src]; ok {
		n.sptMu.Unlock()
		return prev
	}
	n.spt[src] = res
	n.sptMu.Unlock()
	return res
}

// hopCost biases routing toward fewer hops when propagation delays tie
// (parallel links inside a metro).
const hopCost = 10 * time.Microsecond

// quantizeDelay coarsens a link delay into IGP-metric buckets for
// routing decisions. Real IGP metrics are quantized (reference-bandwidth
// or rounded-delay derived), which is what makes equal-cost multipath
// common in practice; without it, microsecond-level geographic
// differences would make every routing decision unique and traceroute
// would never observe redundant paths. RTTs still use the exact delays.
func quantizeDelay(d time.Duration) time.Duration {
	const bucket = time.Millisecond
	return (d + bucket/2) / bucket * bucket
}

// pathHop is one router visited by a forwarded packet.
type pathHop struct {
	router *Router
	in     *Iface // interface the packet arrived on; nil at the source
	// delay is the cumulative one-way physical propagation delay from
	// the source router to this router along the chosen path. It is
	// rebuilt from the links' true delays, NOT from the routing metric:
	// IGP metrics are quantized (and sometimes operator-overridden), but
	// packets still experience the real fiber.
	delay time.Duration
}

// routerPath returns the routers a packet traverses from src to dst,
// choosing among equal-cost alternatives with a hash of flowID so equal
// flow IDs always take identical paths (Paris traceroute invariant).
// Returns nil when dst is unreachable from src.
func (n *Network) routerPath(src, dst RouterID, flowID uint16) []pathHop {
	spt := n.shortestPaths(src)
	if spt.dist[dst] == unreachable {
		return nil
	}
	// Walk predecessors from dst back to src — twice. The first walk
	// only counts, so the retained path gets one exact-size allocation;
	// the picks are pure functions of (seed, flowID, router), so both
	// walks agree. Compiled paths live in the flow cache, where the 2-3
	// append-growth reallocations per path used to dominate compile
	// allocations.
	hops := 1
	for cur := int32(dst); cur != int32(src); {
		preds := spt.preds[cur]
		cur = preds[int(mix(n.seed, uint64(flowID), uint64(cur))%uint64(len(preds)))].from
		hops++
	}
	rev := make([]pathHop, 0, hops)
	cur := int32(dst)
	for cur != int32(src) {
		preds := spt.preds[cur]
		pick := preds[int(mix(n.seed, uint64(flowID), uint64(cur))%uint64(len(preds)))]
		rev = append(rev, pathHop{router: n.routers[cur], in: pick.iface})
		cur = pick.from
	}
	rev = append(rev, pathHop{router: n.routers[src], in: nil, delay: 0})
	// Reverse into forward order and accumulate the physical delays of
	// the links actually traversed.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	for i := 1; i < len(rev); i++ {
		rev[i].delay = rev[i-1].delay + rev[i].in.Link.Delay
	}
	return rev
}

// Reachable reports whether dst's serving router can be reached from
// src's serving router.
func (n *Network) Reachable(src, dst *Router) bool {
	return n.shortestPaths(src.ID).dist[dst.idx] != unreachable
}

// mix is a splitmix64-style hash combiner used everywhere the simulator
// needs deterministic pseudo-randomness keyed by probe parameters.
func mix(vs ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
