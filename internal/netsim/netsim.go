// Package netsim simulates an internetwork of routers at the fidelity the
// paper's measurement toolchain needs: IP forwarding with TTL expiry,
// ICMP generation (time-exceeded, echo-reply, port-unreachable), MPLS
// tunnels with no-ttl-propagate opacity and DPR revelation, per-router
// ICMP policies (rate limiting, external-probe blocking), shared IP-ID
// counters for alias resolution, and a latency model driven by fiber
// propagation physics.
//
// Measurement code must treat a Network as a black box reachable only
// through Probe; the struct fields consumed by generators and scoring
// (router CO assignments and the like) are ground truth and must never
// leak into inference.
//
// # Concurrency
//
// Topology construction (AddRouter, AddIface, Connect, AddHost,
// AddPrefix, AddTunnel) is single-threaded: wire the network before the
// first probe. Once built, Probe is safe to call from any number of
// goroutines: the shortest-path cache is guarded by a read-write mutex,
// the per-router and per-interface IP-ID counters are atomics, and
// every other per-probe "random" draw (jitter, rate-limit, ECMP tie
// breaks) is a pure splitmix-style hash of (seed, probe parameters), so
// no probe can perturb another's outcome regardless of interleaving.
// The only order-sensitive state is the IP-ID counters, and their
// post-batch values depend only on the multiset of replies generated —
// which is itself deterministic — so any schedule of the same probe set
// leaves the network in an identical state.
//
// Injected measurement faults (SetFaultPlan) keep this property: every
// fault decision — link loss, rate-limit windows, blackouts, silent
// hops, vantage-point churn — is likewise a pure hash of (seeds, probe
// parameters, virtual-time window), never a counter or shared RNG, so
// a faulted probe set is exactly as schedule-independent as a
// fault-free one.
package netsim

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
)

// RouterID identifies a router within one Network.
type RouterID int32

// IPIDMode describes how a router generates IP-ID values, which controls
// whether MIDAR-style alias resolution can group its interfaces.
type IPIDMode uint8

const (
	// IPIDShared is a single counter shared by all interfaces, the
	// common case MIDAR exploits.
	IPIDShared IPIDMode = iota
	// IPIDRandom draws random IP-IDs; such routers defeat counter-based
	// alias resolution.
	IPIDRandom
	// IPIDPerInterface keeps an independent counter per interface,
	// which also defeats cross-interface grouping.
	IPIDPerInterface
)

// DstPolicy describes who may probe a router's own addresses.
type DstPolicy uint8

const (
	// DstOpen answers dst-addressed probes from anywhere (typical cable
	// operators).
	DstOpen DstPolicy = iota
	// DstInternalOnly answers only sources inside the router's ISP
	// (AT&T regional routers and lightspeed gateways).
	DstInternalOnly
	// DstClosed never answers dst-addressed probes (mobile carrier
	// packet-core infrastructure).
	DstClosed
)

// ReplyAddrMode describes which source address a router uses in ICMP
// responses it originates.
type ReplyAddrMode uint8

const (
	// ReplyInbound answers from the interface the probe arrived on;
	// the standard behaviour traceroute interprets.
	ReplyInbound ReplyAddrMode = iota
	// ReplyCanonical answers from a fixed (loopback-like) address, the
	// behaviour Mercator exploits for alias resolution.
	ReplyCanonical
)

// Router is one L3 device. Fields other than ID are ground truth owned by
// the generator; measurement code never reads them.
type Router struct {
	ID   RouterID
	Name string // generator-internal label, e.g. "comcast/boston/agg1"
	ISP  string // operator tag, e.g. "comcast"
	// CO is the central office identifier this router lives in (ground
	// truth for scoring). Empty for hosts' gateways outside the study.
	CO string
	// Loc is the router's physical location.
	Loc geo.Point

	// Canonical is the fixed source address used when ReplyAddr is
	// ReplyCanonical, and the address Mercator discovers.
	Canonical netip.Addr
	ReplyAddr ReplyAddrMode

	// ResponseProb is the probability the router answers any given
	// probe (models ICMP rate limiting); 0 means fully silent.
	ResponseProb float64
	// DstPolicy governs probes addressed to the router's own interfaces
	// (echo and UDP alias probes). TTL-exceeded generation for transit
	// packets is unaffected: blocking networks still reveal hops on
	// paths to customer destinations, which is what the paper's
	// TTL-limited echo trick (§6.3) exploits.
	DstPolicy DstPolicy

	IPID     IPIDMode
	ipidBase atomic.Uint64
	// IPIDVelocity is counter increments per second from background
	// traffic; MIDAR's monotonic bound test needs it to be modest.
	IPIDVelocity float64

	ifaces []*Iface
	net    *Network
	idx    int32 // index into Network.routers
}

// Iface is a router interface with one address.
type Iface struct {
	Addr   netip.Addr
	Router *Router
	// Link is the attached point-to-point link, nil for loopbacks and
	// host-facing aggregation interfaces.
	Link *Link

	// perIfIPID supports IPIDPerInterface mode.
	perIfIPID atomic.Uint64
}

// Link is an undirected point-to-point connection between two interfaces.
type Link struct {
	A, B *Iface
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Metric optionally overrides the routing weight (before
	// quantization). Operators set IGP metrics below the delay-derived
	// default to pull traffic onto preferred links (e.g. regional
	// interconnects instead of long-haul transit); RTTs always use
	// Delay.
	Metric time.Duration
}

// Other returns the interface on the far side of the link from i.
func (l *Link) Other(i *Iface) *Iface {
	if l.A == i {
		return l.B
	}
	return l.A
}

// Host is a last-mile endpoint: a subscriber CPE, an IP-DSLAM/ONT, a WiFi
// gateway, or a phone. Hosts attach to a router (their EdgeCO router)
// through an access link with its own delay.
type Host struct {
	Addr   netip.Addr
	Router *Router
	// AccessDelay is the one-way last-mile delay (DOCSIS/DSL/air).
	AccessDelay time.Duration
	// RespondsToPing controls whether the host answers echo requests.
	RespondsToPing bool
	// ISP tags which operator's address space the host lives in; used
	// for the internal/external probing policy.
	ISP string
	// Loc is the host's physical location.
	Loc geo.Point
}

// Network is the simulated internetwork: every ISP under study, the
// shared long-haul backbone, cloud providers, and last-mile hosts live in
// one Network so probes can cross operator boundaries like real packets.
type Network struct {
	routers []*Router
	ifaces  map[netip.Addr]*Iface
	hosts   map[netip.Addr]*Host

	// prefixOwner routes destination prefixes that are not interface or
	// host addresses (e.g. a /24 swept by a campaign where only some
	// addresses exist) to the router that would have served them.
	prefixOwners []prefixOwner
	// prefix24 indexes the common case of /24 owners for O(1) lookup.
	prefix24 map[netip.Addr]*prefixOwner
	// fib is the compiled longest-prefix-match trie over prefixOwners
	// (see lpm.go); nil means "rebuild on next lookup". AddPrefix
	// invalidates it.
	fib atomic.Pointer[trieFIB]

	// paths caches compiled visible-hop sequences per (src router, dst
	// router, flow, dst-is-router-address) so a traceroute resolves its
	// path once instead of once per TTL (see pathcache.go). Invalidated
	// together with the SPT cache and by AddTunnel.
	paths pathCache

	// tunnels maps an ingress router to the MPLS LSPs it originates.
	tunnels map[RouterID][]*Tunnel

	// sptMu guards spt, the lazily built shortest-path-tree cache.
	// Probing goroutines share cached trees; a miss is computed outside
	// the write lock (Dijkstra is deterministic, so racing builders
	// produce identical trees and the first store wins).
	sptMu sync.RWMutex
	spt   map[RouterID]*sptResult
	seed  uint64

	// faults is the installed measurement-fault plan (see fault.go);
	// nil or the zero plan means every probe behaves as if the
	// measurement plane were perfect.
	faults atomic.Pointer[FaultPlan]

	// ProcessingDelay is the per-hop forwarding cost added to RTTs.
	ProcessingDelay time.Duration
	// JitterMax bounds the per-probe queueing jitter added to RTTs.
	JitterMax time.Duration
}

type prefixOwner struct {
	prefix netip.Prefix
	router *Router
	isp    string
}

// Tunnel is an MPLS LSP. With no-ttl-propagate semantics a traceroute
// through the tunnel shows the ingress and egress as adjacent hops; the
// interior only appears when the probe's destination is an address on
// the egress or an interior router (Direct Path Revelation).
type Tunnel struct {
	Ingress *Router
	Egress  *Router
}

// New returns an empty network with the given jitter seed.
func New(seed uint64) *Network {
	return &Network{
		ifaces:          map[netip.Addr]*Iface{},
		hosts:           map[netip.Addr]*Host{},
		tunnels:         map[RouterID][]*Tunnel{},
		spt:             map[RouterID]*sptResult{},
		seed:            seed,
		ProcessingDelay: 60 * time.Microsecond,
		JitterMax:       400 * time.Microsecond,
	}
}

// AddRouter registers a router and returns it. The caller fills policy
// fields before the first probe.
func (n *Network) AddRouter(r *Router) *Router {
	r.ID = RouterID(len(n.routers))
	r.idx = int32(len(n.routers))
	r.net = n
	if r.ResponseProb == 0 {
		r.ResponseProb = 1
	}
	n.routers = append(n.routers, r)
	return r
}

// AddIface attaches a new addressed interface to r.
func (n *Network) AddIface(r *Router, addr netip.Addr) (*Iface, error) {
	if !addr.IsValid() {
		return nil, fmt.Errorf("netsim: invalid interface address for %s", r.Name)
	}
	if _, dup := n.ifaces[addr]; dup {
		return nil, fmt.Errorf("netsim: duplicate interface address %s", addr)
	}
	ifc := &Iface{Addr: addr, Router: r}
	r.ifaces = append(r.ifaces, ifc)
	n.ifaces[addr] = ifc
	if !r.Canonical.IsValid() {
		r.Canonical = addr
	}
	return ifc, nil
}

// Connect creates a point-to-point link between two interfaces with the
// given one-way delay. Both interfaces must be link-free.
func (n *Network) Connect(a, b *Iface, delay time.Duration) (*Link, error) {
	if a.Link != nil || b.Link != nil {
		return nil, fmt.Errorf("netsim: interface already linked (%s - %s)", a.Addr, b.Addr)
	}
	if a.Router == b.Router {
		return nil, fmt.Errorf("netsim: self-link on router %s", a.Router.Name)
	}
	l := &Link{A: a, B: b, Delay: delay}
	a.Link = l
	b.Link = l
	n.InvalidateRoutes()
	return l, nil
}

// ConnectRouters is a convenience that allocates one interface on each
// router from the two usable addresses of a point-to-point subnet and
// links them. addrA and addrB are the two subnet addresses.
func (n *Network) ConnectRouters(a, b *Router, addrA, addrB netip.Addr, delay time.Duration) (*Link, error) {
	ia, err := n.AddIface(a, addrA)
	if err != nil {
		return nil, err
	}
	ib, err := n.AddIface(b, addrB)
	if err != nil {
		return nil, err
	}
	return n.Connect(ia, ib, delay)
}

// AddHost registers a last-mile endpoint.
func (n *Network) AddHost(h *Host) error {
	if _, dup := n.hosts[h.Addr]; dup {
		return fmt.Errorf("netsim: duplicate host address %s", h.Addr)
	}
	if h.Router == nil {
		return fmt.Errorf("netsim: host %s has no gateway router", h.Addr)
	}
	n.hosts[h.Addr] = h
	return nil
}

// InvalidateRoutes drops the cached shortest-path trees and the
// compiled-path cache derived from them. Connect calls it
// automatically; callers that tune Link.Metric or Link.Delay after
// wiring must call it themselves.
func (n *Network) InvalidateRoutes() {
	n.sptMu.Lock()
	n.spt = map[RouterID]*sptResult{}
	n.sptMu.Unlock()
	n.paths.invalidate()
}

// AddPrefix declares that unassigned addresses within prefix are served
// by r (probes toward them route to r and then die unanswered, as when a
// campaign sweeps a /24 with few live addresses).
func (n *Network) AddPrefix(p netip.Prefix, r *Router, isp string) {
	po := prefixOwner{prefix: p, router: r, isp: isp}
	if p.Addr().Is4() && p.Bits() == 24 {
		if n.prefix24 == nil {
			n.prefix24 = map[netip.Addr]*prefixOwner{}
		}
		n.prefix24[p.Masked().Addr()] = &po
		return
	}
	n.prefixOwners = append(n.prefixOwners, po)
	n.invalidateFIB()
}

// AddTunnel installs an MPLS LSP from ingress to egress.
func (n *Network) AddTunnel(ingress, egress *Router) {
	n.tunnels[ingress.ID] = append(n.tunnels[ingress.ID], &Tunnel{Ingress: ingress, Egress: egress})
	// Tunnel visibility is baked into compiled paths; drop them.
	n.paths.invalidate()
}

// Routers returns the ground-truth router list; for generators and
// scoring only.
func (n *Network) Routers() []*Router { return n.routers }

// IfaceByAddr returns the ground-truth interface for an address; for
// generators and scoring only.
func (n *Network) IfaceByAddr(a netip.Addr) (*Iface, bool) {
	ifc, ok := n.ifaces[a]
	return ifc, ok
}

// HostByAddr returns the ground-truth host for an address; for
// generators and scoring only.
func (n *Network) HostByAddr(a netip.Addr) (*Host, bool) {
	h, ok := n.hosts[a]
	return h, ok
}

// Hosts returns all hosts; for generators and scoring only.
func (n *Network) Hosts() []*Host {
	out := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		out = append(out, h)
	}
	return out
}

// Interfaces returns ground-truth interfaces of a router.
func (r *Router) Interfaces() []*Iface { return r.ifaces }
