package netsim

// Microbenchmarks for the simulator's hot paths; campaign cost is
// dominated by Probe, so its throughput bounds every study's runtime.

import (
	"testing"
	"time"
)

func benchNet(b *testing.B, n int) (*Network, *Host, *Host) {
	b.Helper()
	net, src, dst := randomNet(1234, n)
	// Warm the route cache the way campaigns do.
	net.Probe(pt0, ProbeSpec{Src: src.Addr, Dst: dst.Addr, TTL: 4})
	return net, src, dst
}

func BenchmarkProbeWarmCache(b *testing.B) {
	net, src, dst := benchNet(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Probe(pt0, ProbeSpec{Src: src.Addr, Dst: dst.Addr, TTL: uint8(i%12 + 1), Seq: uint32(i)})
	}
}

// BenchmarkProbeCompiledFlow measures the replay fast path: the flow is
// resolved once and every probe indexes into the compiled hop sequence.
// This is the loop traceroute and TTL-limited ping drive; it should not
// allocate.
func BenchmarkProbeCompiledFlow(b *testing.B) {
	net, src, dst := benchNet(b, 200)
	flow := net.CompileFlow(src.Addr, dst.Addr, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flow.Probe(pt0, uint8(i%12+1), ICMPEcho, uint32(i))
	}
}

func BenchmarkProbeColdRoutes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net, src, dst := randomNet(int64(i), 200)
		b.StartTimer()
		net.Probe(pt0, ProbeSpec{Src: src.Addr, Dst: dst.Addr, TTL: 8})
	}
}

func BenchmarkTracerouteEquivalent(b *testing.B) {
	// A full 20-TTL sweep, the unit of campaign work.
	net, src, dst := benchNet(b, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ttl := uint8(1); ttl <= 20; ttl++ {
			r := net.Probe(pt0, ProbeSpec{Src: src.Addr, Dst: dst.Addr, TTL: ttl, Seq: uint32(i)})
			if r.Type == EchoReply {
				break
			}
		}
	}
}

func BenchmarkShortestPaths(b *testing.B) {
	net, src, _ := randomNet(99, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delete(net.spt, src.Router.ID)
		net.shortestPaths(src.Router.ID)
	}
}

func BenchmarkIPIDGeneration(b *testing.B) {
	net, _, _ := randomNet(7, 4)
	r := net.Routers()[1]
	r.IPID = IPIDShared
	r.IPIDVelocity = 100
	at := pt0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.nextIPID(at, nil)
		at = at.Add(time.Millisecond)
	}
}
