package netsim

import "net/netip"

// WarmReply advances the IP-ID counter that generating one recorded
// reply advanced, without probing. A campaign resuming from a spill log
// replays every responsive hop row through this to bring a freshly
// built Network's counters to exactly the state the crashed process
// left them in — the alias stage's MIDAR samples read those counters,
// so a cold replay would shift every subsequent IP-ID and break
// bit-identical resume.
//
// from is the reply's recorded source address; firstHop and
// ttlExceeded describe the recorded hop (TTL == 1, TTL-exceeded). They
// disambiguate the one case the address alone cannot: under
// ReplyInbound a canonical-addressed reply is either the source
// gateway answering a TTL-1 expiry (no inbound interface — the shared
// base counter) or a transit reply that happened to arrive on the
// canonical interface (that interface's counter).
//
// The mapping mirrors nextIPID exactly:
//   - host replies and IPIDRandom routers draw pure hashes — no state;
//   - IPIDShared bumps the router's shared base counter;
//   - IPIDPerInterface bumps the base counter when the reply had no
//     inbound interface (ReplyCanonical routers, or the source-gateway
//     case above), else the inbound interface's counter.
//
// Counters are atomic sums, so replay order across traces does not
// matter — only the per-counter bump counts, which the log preserves.
func (n *Network) WarmReply(from netip.Addr, firstHop, ttlExceeded bool) {
	ifc, ok := n.IfaceByAddr(from)
	if !ok {
		// Hosts (and unknown addresses) use stateless hash IP-IDs.
		return
	}
	r := ifc.Router
	switch r.IPID {
	case IPIDRandom:
		return
	case IPIDPerInterface:
		if r.ReplyAddr == ReplyCanonical {
			r.ipidBase.Add(1)
			return
		}
		if from == r.Canonical && firstHop && ttlExceeded {
			// Source gateway: the reply was generated with no inbound
			// interface, off the base counter.
			r.ipidBase.Add(1)
			return
		}
		ifc.perIfIPID.Add(1)
	default: // IPIDShared
		r.ipidBase.Add(1)
	}
}
