package netsim

import (
	"net/netip"
	"sort"

	"repro/internal/prefixset"
)

// The live FIB is a compiled prefix-set trie (see trieFIB below): one
// path-compressed walk per lookup instead of one masked-map probe per
// distinct declared bit length, which is what lets topogen's scaled
// route tables (hundreds of thousands of subscriber /24 equivalents
// plus the general owner set) resolve at near-constant cost. The
// masked-per-length lpmIndex it replaced is retained below, unchanged,
// as the independently-implemented reference the differential fuzz
// test (lpm_diff_test.go, run by `make fib-diff` inside `make verify`)
// checks the trie against.
//
// The v4 /24 shortcut map (Network.prefix24) stays a separate front-end
// table consulted before either index, preserving the legacy resolution
// order: a /24 declared through the shortcut wins over any owner in the
// general set, and only a miss falls through to longest-first matching.

// trieFIB is the compiled trie over the declared prefix owners, built
// once per topology (lazily, on the first probe that needs it) and
// dropped whenever AddPrefix mutates the owner set; the build is
// deterministic, so racing builders produce equivalent FIBs and the
// first published copy wins (same contract as the SPT cache).
type trieFIB struct {
	trie *prefixset.Compiled
	// owners pins the slice the trie's int32 values index into; a
	// later AddPrefix may grow (and reallocate) Network.prefixOwners,
	// but it also invalidates this FIB, so the pinned header is never
	// stale while reachable.
	owners []prefixOwner
}

// buildTrieFIB compiles the general (non-shortcut) owner list into a
// trie keyed by prefix with the owner's index as the value.
// First-declaration-wins on identical prefixes, matching buildLPM (and
// the linear scan both descend from).
func buildTrieFIB(owners []prefixOwner) *trieFIB {
	var t prefixset.Table
	for i := range owners {
		t.PutIfAbsent(owners[i].prefix.Masked(), int32(i))
	}
	return &trieFIB{trie: t.Compile(), owners: owners}
}

// lookup returns the longest-prefix owner covering dst, or nil.
func (f *trieFIB) lookup(dst netip.Addr) *prefixOwner {
	idx, ok := f.trie.Lookup(dst)
	if !ok {
		return nil
	}
	return &f.owners[idx]
}

// lpmIndex is the retired per-bit-length masked-prefix FIB, kept as
// the differential-test reference implementation: one masked-prefix
// hash table per distinct bit length, probed longest-first.
type lpmIndex struct {
	// lens holds the distinct prefix bit lengths present, longest first.
	lens []int
	// tables[i] maps a destination masked to lens[i] bits to its owner.
	tables []map[netip.Addr]*prefixOwner
}

// buildLPM compiles the general (non-shortcut) owner list. Later
// declarations of an identical prefix override earlier ones, matching
// the linear scan's behaviour of keeping the first best only when bit
// lengths strictly increase — identical-length duplicates never both
// won under the scan either, and generators do not declare duplicates.
func buildLPM(owners []prefixOwner) *lpmIndex {
	byLen := map[int]map[netip.Addr]*prefixOwner{}
	for i := range owners {
		po := &owners[i]
		bits := po.prefix.Bits()
		t := byLen[bits]
		if t == nil {
			t = map[netip.Addr]*prefixOwner{}
			byLen[bits] = t
		}
		key := po.prefix.Masked().Addr()
		if _, taken := t[key]; !taken {
			// First declaration wins, mirroring the linear scan: it kept
			// the earliest owner among equal-length matches.
			t[key] = po
		}
	}
	x := &lpmIndex{}
	for bits := range byLen {
		x.lens = append(x.lens, bits)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(x.lens)))
	x.tables = make([]map[netip.Addr]*prefixOwner, len(x.lens))
	for i, bits := range x.lens {
		x.tables[i] = byLen[bits]
	}
	return x
}

// lookup returns the longest-prefix owner covering dst, or nil.
func (x *lpmIndex) lookup(dst netip.Addr) *prefixOwner {
	for i, bits := range x.lens {
		p, err := dst.Prefix(bits)
		if err != nil {
			// Bit length exceeds the address family width (e.g. a v6
			// prefix probed with a v4 destination): no such owner can
			// contain dst.
			continue
		}
		if po, ok := x.tables[i][p.Addr()]; ok {
			return po
		}
	}
	return nil
}

// lpm returns the compiled FIB, building it on first use.
func (n *Network) lpm() *trieFIB {
	if x := n.fib.Load(); x != nil {
		return x
	}
	x := buildTrieFIB(n.prefixOwners)
	n.fib.CompareAndSwap(nil, x)
	return n.fib.Load()
}

// invalidateFIB drops the compiled FIB; the next lookup rebuilds it.
func (n *Network) invalidateFIB() {
	n.fib.Store(nil)
}
