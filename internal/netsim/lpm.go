package netsim

import (
	"net/netip"
	"sort"
)

// lpmIndex is a compiled longest-prefix-match FIB over the declared
// prefix owners: one masked-prefix hash table per distinct bit length,
// probed longest-first, so a destination lookup costs one map access per
// distinct declared length instead of a linear scan over every owner.
// The index is built once per topology (lazily, on the first probe that
// needs it) and dropped whenever AddPrefix mutates the owner set; the
// build is deterministic, so racing builders produce equivalent indexes
// and the first published copy wins (same contract as the SPT cache).
//
// The v4 /24 shortcut map (Network.prefix24) stays a separate front-end
// table consulted before this index, preserving the legacy resolution
// order: a /24 declared through the shortcut wins over any owner in the
// general set, and only a miss falls through to longest-first matching.
type lpmIndex struct {
	// lens holds the distinct prefix bit lengths present, longest first.
	lens []int
	// tables[i] maps a destination masked to lens[i] bits to its owner.
	tables []map[netip.Addr]*prefixOwner
}

// buildLPM compiles the general (non-shortcut) owner list. Later
// declarations of an identical prefix override earlier ones, matching
// the linear scan's behaviour of keeping the first best only when bit
// lengths strictly increase — identical-length duplicates never both
// won under the scan either, and generators do not declare duplicates.
func buildLPM(owners []prefixOwner) *lpmIndex {
	byLen := map[int]map[netip.Addr]*prefixOwner{}
	for i := range owners {
		po := &owners[i]
		bits := po.prefix.Bits()
		t := byLen[bits]
		if t == nil {
			t = map[netip.Addr]*prefixOwner{}
			byLen[bits] = t
		}
		key := po.prefix.Masked().Addr()
		if _, taken := t[key]; !taken {
			// First declaration wins, mirroring the linear scan: it kept
			// the earliest owner among equal-length matches.
			t[key] = po
		}
	}
	x := &lpmIndex{}
	for bits := range byLen {
		x.lens = append(x.lens, bits)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(x.lens)))
	x.tables = make([]map[netip.Addr]*prefixOwner, len(x.lens))
	for i, bits := range x.lens {
		x.tables[i] = byLen[bits]
	}
	return x
}

// lookup returns the longest-prefix owner covering dst, or nil.
func (x *lpmIndex) lookup(dst netip.Addr) *prefixOwner {
	for i, bits := range x.lens {
		p, err := dst.Prefix(bits)
		if err != nil {
			// Bit length exceeds the address family width (e.g. a v6
			// prefix probed with a v4 destination): no such owner can
			// contain dst.
			continue
		}
		if po, ok := x.tables[i][p.Addr()]; ok {
			return po
		}
	}
	return nil
}

// lpm returns the compiled FIB, building it on first use.
func (n *Network) lpm() *lpmIndex {
	if x := n.fib.Load(); x != nil {
		return x
	}
	x := buildLPM(n.prefixOwners)
	n.fib.CompareAndSwap(nil, x)
	return n.fib.Load()
}

// invalidateFIB drops the compiled FIB; the next lookup rebuilds it.
func (n *Network) invalidateFIB() {
	n.fib.Store(nil)
}
