package symtab

import (
	"errors"
	"math/rand"
	"testing"
)

func TestRemapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		remap := make([]Sym, n)
		for i := range remap {
			// Mix ascending runs (the common Merge shape) with jumps.
			if rng.Intn(4) == 0 {
				remap[i] = Sym(rng.Uint32())
			} else if i > 0 {
				remap[i] = remap[i-1] + Sym(rng.Intn(3))
			}
		}
		tail := []byte("trailing")
		b := AppendRemap(nil, remap)
		b = append(b, tail...)
		got, rest, err := DecodeRemap(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(remap) {
			t.Fatalf("trial %d: %d entries, want %d", trial, len(got), len(remap))
		}
		for i := range remap {
			if got[i] != remap[i] {
				t.Fatalf("trial %d entry %d: %d != %d", trial, i, got[i], remap[i])
			}
		}
		if string(rest) != string(tail) {
			t.Fatalf("trial %d: remainder %q", trial, rest)
		}
	}
}

func TestDecodeRemapMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":           {},
		"huge-count":      {0xff, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"short-entries":   AppendRemap(nil, []Sym{1, 2, 3})[:2],
		"overlong-varint": {1, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
	}
	for name, b := range cases {
		if _, _, err := DecodeRemap(b); !errors.Is(err, ErrBadRemap) {
			t.Errorf("%s: got %v, want ErrBadRemap", name, err)
		}
	}
}

func TestInternBytes(t *testing.T) {
	tab := New(0)
	a := tab.InternBytes([]byte{10, 0, 0, 1})
	b := tab.InternBytes([]byte{10, 0, 0, 2})
	if a == b {
		t.Fatal("distinct keys collided")
	}
	if got := tab.InternBytes([]byte{10, 0, 0, 1}); got != a {
		t.Fatalf("re-intern returned %d, want %d", got, a)
	}
	if got := tab.Intern(string([]byte{10, 0, 0, 2})); got != b {
		t.Fatalf("string intern returned %d, want %d", got, b)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if allocs := testing.AllocsPerRun(100, func() { tab.InternBytes([]byte{10, 0, 0, 1}) }); allocs > 0 {
		t.Fatalf("hit path allocates %v per op", allocs)
	}
}
