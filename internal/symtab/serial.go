package symtab

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Remap serialization: the binary form of the []Sym translation table
// Merge returns. The streaming campaign engine's spill segments encode
// hop addresses as segment-local symbols and carry the local→global
// remap in each frame, so a sequential reader rebuilds the log-level
// table without re-hashing a single string — the on-disk analogue of
// the shard-merge discipline the parallel pipeline already relies on.
//
// Encoding: uvarint count, then one uvarint per entry, delta-coded
// against the previous entry (zig-zag, since remaps are usually
// ascending runs with small jumps). Little-endian throughout, matching
// the segment log's framing.

// ErrBadRemap is the named decode failure for a malformed remap block.
var ErrBadRemap = errors.New("symtab: malformed remap encoding")

// AppendRemap appends the serialized form of remap to dst and returns
// the extended slice.
func AppendRemap(dst []byte, remap []Sym) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(remap)))
	prev := int64(0)
	for _, s := range remap {
		d := int64(s) - prev
		dst = binary.AppendUvarint(dst, uint64((d<<1)^(d>>63))) // zig-zag
		prev = int64(s)
	}
	return dst
}

// DecodeRemap decodes a remap block produced by AppendRemap from the
// front of b, returning the remap and the unconsumed remainder. The
// count is bounded by len(b) (every entry costs at least one byte), so
// a corrupt length cannot force a huge allocation.
func DecodeRemap(b []byte) ([]Sym, []byte, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("%w: count", ErrBadRemap)
	}
	b = b[n:]
	if count > uint64(len(b))+1 {
		return nil, nil, fmt.Errorf("%w: count %d exceeds buffer", ErrBadRemap, count)
	}
	remap := make([]Sym, count)
	prev := int64(0)
	for i := range remap {
		z, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: entry %d", ErrBadRemap, i)
		}
		b = b[n:]
		d := int64(z>>1) ^ -int64(z&1) // un-zig-zag
		v := prev + d
		if v < 0 || v > int64(^uint32(0)) {
			return nil, nil, fmt.Errorf("%w: entry %d out of range", ErrBadRemap, i)
		}
		remap[i] = Sym(v)
		prev = v
	}
	return remap, b, nil
}

// InternBytes is Intern for a byte-slice key. The map lookup on the hit
// path performs no conversion allocation (the compiler recognizes the
// map[string] index with a converted []byte); only a first-seen miss
// materializes the string. The segment writer interns packed address
// bytes through this without per-row garbage.
func (t *Table) InternBytes(b []byte) Sym {
	if id, ok := t.ids[string(b)]; ok {
		return id
	}
	return t.Intern(string(b))
}
