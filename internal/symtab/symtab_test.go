package symtab_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/symtab"
)

// TestRoundTrip pins the basic interner contract: Intern is idempotent,
// IDs are dense in first-seen order, and Str inverts Intern.
func TestRoundTrip(t *testing.T) {
	tb := symtab.New(0)
	words := []string{"socal", "socal/sndgcaxk", "bb:sunnyvale.ca", "", "socal", "maine"}
	want := map[string]symtab.Sym{}
	for _, w := range words {
		id := tb.Intern(w)
		if prev, seen := want[w]; seen {
			if id != prev {
				t.Fatalf("Intern(%q) = %d, previously %d", w, id, prev)
			}
			continue
		}
		if int(id) != len(want) {
			t.Fatalf("Intern(%q) = %d, want dense next ID %d", w, id, len(want))
		}
		want[w] = id
	}
	if tb.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(want))
	}
	for w, id := range want {
		if got := tb.Str(id); got != w {
			t.Fatalf("Str(%d) = %q, want %q", id, got, w)
		}
		if got, ok := tb.Lookup(w); !ok || got != id {
			t.Fatalf("Lookup(%q) = %d,%v, want %d,true", w, got, ok, id)
		}
	}
	if _, ok := tb.Lookup("never-interned"); ok {
		t.Fatal("Lookup of unknown string reported ok")
	}
}

// TestMergeOrder is the determinism property the parallel pipeline
// leans on: splitting a stream into contiguous shards, interning each
// shard locally, and merging the shard tables in shard order must
// reproduce the sequential first-seen ID assignment exactly — for any
// shard-boundary choice.
func TestMergeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		stream := make([]string, n)
		for i := range stream {
			stream[i] = fmt.Sprintf("id%d", rng.Intn(20))
		}

		seq := symtab.New(0)
		for _, s := range stream {
			seq.Intern(s)
		}

		// Random contiguous shard boundaries.
		var cuts []int
		for i := 1; i < n; i++ {
			if rng.Intn(3) == 0 {
				cuts = append(cuts, i)
			}
		}
		cuts = append(cuts, n)
		merged := symtab.New(0)
		lo := 0
		for _, hi := range cuts {
			shard := symtab.New(0)
			localSyms := make([]symtab.Sym, 0, hi-lo)
			for _, s := range stream[lo:hi] {
				localSyms = append(localSyms, shard.Intern(s))
			}
			remap := shard.Merge(shard) // self-merge must be identity
			for i := range remap {
				if remap[i] != symtab.Sym(i) {
					t.Fatalf("self-merge remap[%d] = %d", i, remap[i])
				}
			}
			remap = merged.Merge(shard)
			// The remap must send every shard-local observation to the
			// symbol the canonical table assigns that string.
			for i, s := range stream[lo:hi] {
				want, _ := merged.Lookup(s)
				if remap[localSyms[i]] != want {
					t.Fatalf("trial %d: remap(%q) = %d, canonical %d", trial, s, remap[localSyms[i]], want)
				}
			}
			lo = hi
		}

		if merged.Len() != seq.Len() {
			t.Fatalf("trial %d: merged Len %d != sequential %d", trial, merged.Len(), seq.Len())
		}
		for id := 0; id < seq.Len(); id++ {
			if merged.Str(symtab.Sym(id)) != seq.Str(symtab.Sym(id)) {
				t.Fatalf("trial %d: ID %d = %q merged vs %q sequential (cuts %v)",
					trial, id, merged.Str(symtab.Sym(id)), seq.Str(symtab.Sym(id)), cuts)
			}
		}
	}
}

// TestConcurrentReaders exercises the frozen-table read contract under
// the race detector: once interning stops, Str/Lookup/Len from many
// goroutines must be race-clean.
func TestConcurrentReaders(t *testing.T) {
	tb := symtab.New(64)
	for i := 0; i < 64; i++ {
		tb.Intern(fmt.Sprintf("region%d", i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				id := symtab.Sym((i + w) % tb.Len())
				s := tb.Str(id)
				got, ok := tb.Lookup(s)
				if !ok || got != id {
					t.Errorf("Lookup(Str(%d)) = %d,%v", id, got, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// FuzzInternRoundTrip fuzzes the round-trip invariant over arbitrary
// byte strings, including embedded NULs and invalid UTF-8.
func FuzzInternRoundTrip(f *testing.F) {
	f.Add("socal/sndgcaxk", "bb:sunnyvale.ca")
	f.Add("", "\x00\xffregion")
	f.Fuzz(func(t *testing.T, a, b string) {
		tb := symtab.New(0)
		ia := tb.Intern(a)
		ib := tb.Intern(b)
		if (a == b) != (ia == ib) {
			t.Fatalf("identity broken: %q=%d %q=%d", a, ia, b, ib)
		}
		if tb.Str(ia) != a || tb.Str(ib) != b {
			t.Fatalf("round trip broken: %q->%d->%q, %q->%d->%q", a, ia, tb.Str(ia), b, ib, tb.Str(ib))
		}
		if tb.Intern(a) != ia || tb.Intern(b) != ib {
			t.Fatal("re-Intern moved an ID")
		}
	})
}
