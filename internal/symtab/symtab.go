// Package symtab is the campaign memory engine's string interner: a
// deterministic mapping from the pipeline's highly redundant identifier
// strings (CO keys, CLLI codes, region tags, hostname-derived labels)
// to dense uint32 symbols. Hot aggregation passes key their maps by
// Sym instead of string — a 4-byte comparison and hash instead of a
// 16-byte header plus byte-wise compare — and convert back to strings
// only at report and digest boundaries, so interning can never move a
// byte of pinned output.
//
// # Why symbol IDs are deterministic under sharding
//
// A sequential pass interns identifiers in first-seen order, so IDs are
// a pure function of the input stream. The parallel pipeline shards
// inputs into contiguous spans, builds one shard-local Table per span,
// and merges the shard tables in span order (probesched.Reduce's merge
// discipline). Every symbol first seen in span k has a stream position
// strictly before every symbol first seen only in span k+1, and
// Merge assigns new IDs in the from-table's own first-seen order — so
// the merged table equals the sequential first-seen table exactly,
// independent of worker count. That is the property TestMergeOrder
// pins.
package symtab

// Sym is a dense interned-string identifier. IDs start at 0 and are
// assigned in first-Intern order; a Sym is only meaningful relative to
// the Table that produced it.
type Sym uint32

// Table interns strings to dense Syms. The zero value is not usable;
// construct with New. A Table is not safe for concurrent mutation, but
// any number of goroutines may call Str, Lookup, and Len concurrently
// once no more Intern/Merge calls occur (the sharded passes freeze the
// canonical table before fan-out, which is what keeps them race-clean).
type Table struct {
	ids  map[string]Sym
	strs []string
}

// New returns an empty table. sizeHint presizes the index for the
// expected number of distinct strings; 0 is fine.
func New(sizeHint int) *Table {
	return &Table{
		ids:  make(map[string]Sym, sizeHint),
		strs: make([]string, 0, sizeHint),
	}
}

// Intern returns the symbol for s, assigning the next dense ID on
// first sight. Interning an already-known string allocates nothing.
func (t *Table) Intern(s string) Sym {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := Sym(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// Lookup returns the symbol for s without interning; ok is false when
// s has never been interned.
func (t *Table) Lookup(s string) (Sym, bool) {
	id, ok := t.ids[s]
	return id, ok
}

// Str returns the string a symbol stands for. Sym identity guarantees
// string identity: Str(x) == Str(y) iff x == y.
func (t *Table) Str(y Sym) string { return t.strs[y] }

// Len reports the number of distinct interned strings; valid Syms are
// exactly [0, Len).
func (t *Table) Len() int { return len(t.strs) }

// Merge interns every symbol of from into t, in from's own ID order,
// and returns the remap table: remap[fromSym] is the corresponding Sym
// in t. Merging contiguous-shard tables in shard order reproduces the
// sequential first-seen ID assignment (see the package comment).
func (t *Table) Merge(from *Table) []Sym {
	remap := make([]Sym, len(from.strs))
	for i, s := range from.strs {
		remap[i] = t.Intern(s)
	}
	return remap
}
