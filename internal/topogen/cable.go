package topogen

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"repro/internal/clli"
	"repro/internal/geo"
	"repro/internal/ipalloc"
	"repro/internal/netsim"
)

// AggType is a region's aggregation archetype (paper Fig. 8).
type AggType uint8

const (
	// SingleAgg regions funnel every EdgeCO through one AggCO.
	SingleAgg AggType = iota
	// DualAgg regions use a redundant AggCO pair.
	DualAgg
	// MultiLevel regions add a second aggregation tier below the top
	// pair.
	MultiLevel
)

// CableRegionSpec describes one cable regional network to generate.
type CableRegionSpec struct {
	// Name is the rDNS region tag (e.g. "socal", "bverton").
	Name string
	// Anchor is the city housing the top-tier AggCO(s).
	Anchor string
	// SecondAnchor optionally places the second top AggCO in a
	// different city; otherwise it is a second building in Anchor.
	SecondAnchor string
	// Backbone lists the operator backbone PoP cities with entry links
	// into this region.
	Backbone []string
	// ViaRegion routes this region's top AggCOs through another
	// region's top AggCOs (the Connecticut pattern). May coexist with
	// Backbone entries (the Central California pattern).
	ViaRegion string
	Type      AggType
	// EdgeCOs is the number of edge central offices in the region.
	EdgeCOs int
	// SubAnchors are the cities anchoring tier-2 aggregation groups in
	// MultiLevel regions; one group is generated per entry.
	SubAnchors []string
	// EdgeAnchors optionally scatter EdgeCOs around several cities in
	// Single/Dual regions (used for multi-state regions like Boston's
	// MA/NH/VT footprint); defaults to the Anchor.
	EdgeAnchors []string
	// MPLS turns on LSPs from the top AggCO routers to every EdgeCO
	// router, hiding the middle tier from transit traceroutes (observed
	// by the paper in one Charter region).
	MPLS bool
	// HideRedundancy penalizes the delay of every redundant uplink so
	// no forwarding path ever crosses it; physical redundancy then
	// becomes invisible to traceroute (the paper's Charter southeast
	// anomaly).
	HideRedundancy bool
}

// CableProfile parameterizes a cable operator.
type CableProfile struct {
	ISP string
	// Style selects hostname conventions: "comcast" location-style or
	// "rr" CLLI-style.
	Style string
	// P2PBits is the point-to-point subnet size between CO routers
	// (/30 for Comcast, /31 for Charter, per Appendix B.1).
	P2PBits int
	// P2PPool and SubsPool are the operator's infrastructure and
	// subscriber address blocks.
	P2PPool  netip.Prefix
	SubsPool netip.Prefix
	// SingleHomeFrac is the fraction of EdgeCOs connected to a single
	// upstream CO (§B.4: 11.4% Comcast, 37.7% Charter).
	SingleHomeFrac float64
	// EdgeChainFrac is, among single-homed EdgeCOs, the fraction that
	// hang off another EdgeCO rather than an AggCO (§B.4: 33.7% and
	// 42.2%).
	EdgeChainFrac float64
	// SubSingleFrac is the fraction of tier-2 aggregation groups with a
	// single AggCO rather than a pair (Charter "uses a mix").
	SubSingleFrac float64
	// TwoRouterEdgeFrac is the fraction of EdgeCOs with two routers.
	TwoRouterEdgeFrac float64
	// Noise probabilities for interface rDNS (see nameIfaces).
	UnnamedProb   float64
	StaleBothProb float64
	StaleSnapProb float64
	// CrossRegionStaleFrac is how often a stale name points at a CO in
	// a different region (driving the Appendix B.2 pruning).
	CrossRegionStaleFrac float64
	// SubsPerEdge is how many responsive subscriber hosts to place in
	// each EdgeCO's subscriber /24.
	SubsPerEdge int
	// MinSubscribers, when positive, floors the operator's allocated
	// subscriber address count: each EdgeCO receives however many /24s
	// (256 addresses apiece) are needed to reach it in aggregate. Zero
	// keeps the paper-size default of one /24 per EdgeCO. Set via
	// CableProfile.Scaled (see scale.go).
	MinSubscribers int
	// EdgeScatterMaxKm bounds how far EdgeCO towns scatter from their
	// ring anchor in multi-level regions (vast Charter rings reach
	// farther, stretching the Fig. 10b AggCO-to-EdgeCO latency tail).
	EdgeScatterMaxKm float64
	// MercatorFrac is the fraction of routers replying from a canonical
	// address; the rest reply from the inbound interface.
	MercatorFrac float64
	// RandomIPIDFrac and PerIfaceIPIDFrac control how many routers
	// defeat counter-based alias resolution.
	RandomIPIDFrac   float64
	PerIfaceIPIDFrac float64

	Regions []CableRegionSpec
}

// cableBuilder carries state across one BuildCable call.
type cableBuilder struct {
	s      *Scenario
	p      CableProfile
	isp    *ISP
	p2p    *ipalloc.Pool
	subs   *ipalloc.Pool
	towns  *townNamer
	jobs   []nameJob
	allCOs []*CO
	// routerSeq numbers routers within a CO for hostname suffixes.
	routerSeq map[string]int
	// sub24PerEdge is how many subscriber /24s each EdgeCO gets;
	// derived from MinSubscribers in BuildCable, 1 at paper size.
	sub24PerEdge int
}

// nameJob defers rDNS assignment until every CO exists, so stale names
// can reference real other COs.
type nameJob struct {
	iface  *netsim.Iface
	co     *CO
	router *netsim.Router
	// role is "cr" (backbone), "ar" (agg), "er" (edge).
	role string
	// routerNum and ifaceNum feed the hostname format.
	routerNum, ifaceNum int
}

// BuildCable generates a cable operator into the scenario and returns
// its ground truth.
func (s *Scenario) BuildCable(p CableProfile) *ISP {
	b := &cableBuilder{
		s:         s,
		p:         p,
		isp:       s.ispByName(p.ISP),
		p2p:       ipalloc.NewPool(p.P2PPool),
		subs:      ipalloc.NewPool(p.SubsPool),
		towns:     newTownNamer(),
		routerSeq: map[string]int{},
	}
	b.isp.Announced = append(b.isp.Announced, p.P2PPool, p.SubsPool)
	b.sub24PerEdge = 1
	if p.MinSubscribers > 0 {
		totalEdge := 0
		for i := range p.Regions {
			totalEdge += p.Regions[i].EdgeCOs
		}
		if totalEdge > 0 {
			if per := (p.MinSubscribers + totalEdge*256 - 1) / (totalEdge * 256); per > 1 {
				b.sub24PerEdge = per
			}
		}
	}
	for i := range p.Regions {
		b.buildRegion(&p.Regions[i])
	}
	// Second pass: inter-region entries (ViaRegion).
	for i := range p.Regions {
		spec := &p.Regions[i]
		if spec.ViaRegion == "" {
			continue
		}
		b.wireViaRegion(spec)
	}
	b.nameIfaces()
	return b.isp
}

// addCORouter creates a router inside a CO with profile-driven policies.
func (b *cableBuilder) addCORouter(co *CO, role string) *netsim.Router {
	b.routerSeq[co.ID]++
	num := b.routerSeq[co.ID]
	r := b.s.Net.AddRouter(&netsim.Router{
		Name:         fmt.Sprintf("%s/%s%d", co.ID, role, num),
		ISP:          b.p.ISP,
		CO:           co.ID,
		Loc:          co.Loc,
		ResponseProb: 0.97,
	})
	rng := b.s.rng
	switch f := rng.Float64(); {
	case f < b.p.RandomIPIDFrac:
		r.IPID = netsim.IPIDRandom
	case f < b.p.RandomIPIDFrac+b.p.PerIfaceIPIDFrac:
		r.IPID = netsim.IPIDPerInterface
	default:
		r.IPID = netsim.IPIDShared
	}
	r.IPIDVelocity = 20 + rng.Float64()*300
	if rng.Float64() < b.p.MercatorFrac {
		r.ReplyAddr = netsim.ReplyCanonical
		// Allocate a loopback-style canonical address.
		lb, err := b.p2p.NextHost()
		if err != nil {
			panic(err)
		}
		ifc, err := b.s.Net.AddIface(r, lb)
		if err != nil {
			panic(err)
		}
		r.Canonical = lb
		b.jobs = append(b.jobs, nameJob{iface: ifc, co: co, router: r, role: role, routerNum: num, ifaceNum: 0})
	}
	return r
}

// linkRouters connects two CO routers with a point-to-point subnet and
// queues both interface names. It returns the link for metric tuning.
func (b *cableBuilder) linkRouters(ra, rb *netsim.Router, coA, coB *CO, roleA, roleB string, delay time.Duration) *netsim.Link {
	p2p, err := b.p2p.NextP2P(b.p.P2PBits)
	if err != nil {
		panic(err)
	}
	ia, err := b.s.Net.AddIface(ra, p2p.A)
	if err != nil {
		panic(err)
	}
	ib, err := b.s.Net.AddIface(rb, p2p.B)
	if err != nil {
		panic(err)
	}
	link, err := b.s.Net.Connect(ia, ib, delay)
	if err != nil {
		panic(err)
	}
	b.jobs = append(b.jobs,
		nameJob{iface: ia, co: coA, router: ra, role: roleA, routerNum: routerNum(ra), ifaceNum: len(ra.Interfaces())},
		nameJob{iface: ib, co: coB, router: rb, role: roleB, routerNum: routerNum(rb), ifaceNum: len(rb.Interfaces())},
	)
	return link
}

// routerNum recovers the per-CO router number from the generator name.
func routerNum(r *netsim.Router) int {
	name := r.Name
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	var n int
	fmt.Sscanf(name[i:], "%d", &n)
	if n == 0 {
		n = 1
	}
	return n
}

// backbonePoP returns (creating on demand) the operator's backbone CO in
// a city, with two core routers attached to transit.
func (b *cableBuilder) backbonePoP(cityName string) *CO {
	city := geo.MustByName(cityName)
	id := coID(b.p.ISP, "backbone", clli.CityCode(city))
	if co, ok := b.isp.BackbonePoPs[id]; ok {
		return co
	}
	co := &CO{
		ID:     id,
		Tag:    b.backboneTag(city),
		Role:   BackboneCO,
		City:   city,
		Loc:    city.Point,
		Region: "backbone",
	}
	b.isp.BackbonePoPs[id] = co
	b.allCOs = append(b.allCOs, co)
	var prev *netsim.Router
	for i := 0; i < 2; i++ {
		r := b.addCORouter(co, "cr")
		// Backbone PoPs multihome to the two nearest long-haul carriers,
		// so regions with two backbone entries see both exercised.
		for _, upIface := range b.s.AttachToTransitN(r, 2) {
			b.jobs = append(b.jobs, nameJob{iface: upIface, co: co, router: r, role: "cr", routerNum: routerNum(r), ifaceNum: len(r.Interfaces())})
		}
		co.Routers = append(co.Routers, r)
		if prev != nil {
			b.linkRouters(prev, r, co, co, "cr", "cr", 20*time.Microsecond)
		}
		prev = r
	}
	return co
}

func (b *cableBuilder) backboneTag(city geo.City) string {
	if b.p.Style == "rr" {
		return strings.ToLower(clli.CityCode(city)) + "rc"
	}
	return strings.ToLower(strings.ReplaceAll(city.Name, " ", "")) + "." + strings.ToLower(city.State)
}

// newCO creates a CO in a region.
func (b *cableBuilder) newCO(reg *Region, tag string, role CORole, tier int, city geo.City) *CO {
	co := &CO{
		ID:     coID(b.p.ISP, reg.Name, tag),
		Tag:    tag,
		Role:   role,
		Tier:   tier,
		City:   city,
		Loc:    city.Point,
		Region: reg.Name,
	}
	reg.COs[co.ID] = co
	b.allCOs = append(b.allCOs, co)
	return co
}

// coTag derives the rDNS-visible CO tag for a city/building pair.
func (b *cableBuilder) coTag(city geo.City, building int) string {
	if b.p.Style == "rr" {
		// 8-character CLLI: 6-char city code + 2 building letters.
		bl := string(rune('a'+(building*7)%26)) + string(rune('a'+(building*13+23)%26))
		return strings.ToLower(b.s.CLLI.CodeFor(city)) + bl
	}
	loc := strings.ToLower(strings.ReplaceAll(city.Name, " ", ""))
	if building > 0 {
		loc = fmt.Sprintf("%s%d", loc, building+1)
	}
	return loc + "." + strings.ToLower(city.State)
}

func (b *cableBuilder) buildRegion(spec *CableRegionSpec) {
	reg := &Region{
		Name: spec.Name,
		ISP:  b.p.ISP,
		COs:  map[string]*CO{},
	}
	switch spec.Type {
	case SingleAgg:
		reg.AggLayers = 1
	case DualAgg:
		reg.AggLayers = 2
	case MultiLevel:
		reg.AggLayers = 3
	}
	b.isp.Regions[spec.Name] = reg

	anchor := geo.MustByName(spec.Anchor)

	// Top aggregation layer.
	var top []*CO
	switch spec.Type {
	case SingleAgg:
		top = []*CO{b.newCO(reg, b.coTag(anchor, 0), AggCO, 1, anchor)}
	default:
		second := anchor
		secondBuilding := 1
		if spec.SecondAnchor != "" {
			second = geo.MustByName(spec.SecondAnchor)
			secondBuilding = 0
		}
		top = []*CO{
			b.newCO(reg, b.coTag(anchor, 0), AggCO, 1, anchor),
			b.newCO(reg, b.coTag(second, secondBuilding), AggCO, 1, second),
		}
	}
	for _, co := range top {
		r1 := b.addCORouter(co, "ar")
		r2 := b.addCORouter(co, "ar")
		co.Routers = append(co.Routers, r1, r2)
		b.linkRouters(r1, r2, co, co, "ar", "ar", 20*time.Microsecond)
	}

	// Backbone entries: each top AggCO connects both of its routers to
	// the backbone CO (redundant routers with redundant uplinks), so
	// paths through either AggCO router cost the same and traceroute
	// can observe the redundancy.
	for _, bbCity := range spec.Backbone {
		bb := b.backbonePoP(bbCity)
		reg.BackboneEntries = append(reg.BackboneEntries, bb.ID)
		for _, co := range top {
			for k, ar := range co.Routers {
				bbr := bb.Routers[k%len(bb.Routers)]
				b.linkRouters(bbr, ar, bb, co, "cr", "ar", geo.PropagationDelay(bb.Loc, co.Loc))
			}
			co.Upstream = append(co.Upstream, bb.ID)
		}
	}

	// Tier-2 aggregation groups; each group aggregates a share of the
	// region's EdgeCOs.
	type aggGroup struct {
		cos    []*CO
		anchor geo.City
	}
	var groups []aggGroup
	if spec.Type == MultiLevel {
		for _, subCity := range spec.SubAnchors {
			city := geo.MustByName(subCity)
			nAgg := 2
			if b.s.rng.Float64() < b.p.SubSingleFrac {
				nAgg = 1
			}
			g := aggGroup{anchor: city}
			for k := 0; k < nAgg; k++ {
				co := b.newCO(reg, b.coTag(city, k+2), AggCO, 2, city)
				r := b.addCORouter(co, "ar")
				co.Routers = append(co.Routers, r)
				// Cross-connect to both top AggCOs.
				for _, t := range top {
					b.linkRouters(t.Routers[k%len(t.Routers)], r, t, co, "ar", "ar", geo.PropagationDelay(t.Loc, co.Loc))
					co.Upstream = append(co.Upstream, t.ID)
				}
				g.cos = append(g.cos, co)
			}
			groups = append(groups, g)
		}
	} else {
		// The top layer itself terminates the edge rings, scattered
		// around the edge anchors.
		anchors := spec.EdgeAnchors
		if len(anchors) == 0 {
			anchors = []string{spec.Anchor}
		}
		for _, a := range anchors {
			groups = append(groups, aggGroup{cos: top, anchor: geo.MustByName(a)})
		}
	}

	// EdgeCOs. Chain children attach to the group's last ring-connected
	// EdgeCO, so chain heads accumulate several dependents (the small
	// local aggregation points Appendix B.4 observes behind 33.7-42.2%
	// of single-homed EdgeCOs).
	chainHead := map[int]*CO{}
	chainChildren := map[*CO]int{}
	for e := 0; e < spec.EdgeCOs; e++ {
		g := groups[e%len(groups)]
		townName := b.towns.next(b.s.rng)
		minKm, maxKm := 10.0, 90.0
		if spec.Type == MultiLevel {
			minKm, maxKm = 15.0, b.p.EdgeScatterMaxKm
			if maxKm == 0 {
				maxKm = 220.0
			}
		}
		town := b.s.scatterTown(title(townName), g.anchor, minKm, maxKm)
		co := b.newCO(reg, b.coTag(town, 0), EdgeCO, 0, town)
		nR := 1
		if b.s.rng.Float64() < b.p.TwoRouterEdgeFrac {
			nR = 2
		}
		for k := 0; k < nR; k++ {
			co.Routers = append(co.Routers, b.addCORouter(co, "er"))
		}
		if nR == 2 {
			b.linkRouters(co.Routers[0], co.Routers[1], co, co, "er", "er", 20*time.Microsecond)
		}

		groupIdx := e % len(groups)
		singleHomed := b.s.rng.Float64() < b.p.SingleHomeFrac
		switch {
		case singleHomed && chainHead[groupIdx] != nil && b.s.rng.Float64() < b.p.EdgeChainFrac:
			// Hang off the group's chain head rather than an AggCO.
			// Heads keep collecting children until they serve two, so
			// they look like the small local aggregation points the
			// paper's B.3 exception preserves.
			up := chainHead[groupIdx]
			b.linkRouters(up.Routers[0], co.Routers[0], up, co, "er", "er", geo.PropagationDelay(up.Loc, co.Loc))
			co.Upstream = append(co.Upstream, up.ID)
			chainChildren[up]++
			if chainChildren[up] >= 2 {
				delete(chainHead, groupIdx)
			}
		case singleHomed || len(g.cos) == 1:
			up := g.cos[e%len(g.cos)]
			b.linkRouters(up.Routers[0], co.Routers[0], up, co, "ar", "er", geo.PropagationDelay(up.Loc, co.Loc))
			co.Upstream = append(co.Upstream, up.ID)
		default:
			// Dual-homed to the first two AggCOs of the group.
			for k := 0; k < 2 && k < len(g.cos); k++ {
				up := g.cos[k]
				delay := geo.PropagationDelay(up.Loc, co.Loc)
				if k == 1 && spec.HideRedundancy {
					// The redundant pair rides a longer protection
					// path; forwarding never prefers it, so traceroute
					// cannot see it.
					delay = delay*3 + 2*time.Millisecond
				}
				er := co.Routers[k%len(co.Routers)]
				b.linkRouters(up.Routers[k%len(up.Routers)], er, up, co, "ar", "er", delay)
				co.Upstream = append(co.Upstream, up.ID)
			}
		}
		// The most recent ring-connected EdgeCO without children yet
		// becomes the group's chain head.
		if chainHead[groupIdx] == nil && len(co.Upstream) > 0 {
			if parent := reg.COs[co.Upstream[0]]; parent == nil || parent.Role != EdgeCO {
				chainHead[groupIdx] = co
			}
		}

		// Subscriber /24s behind the first edge router: one at paper
		// size, more when MinSubscribers floors the operator's
		// allocated subscriber space (the loop body is unchanged for
		// sub24PerEdge == 1, so the RNG stream — and every pinned
		// golden digest — is untouched at default scale).
		for s24 := 0; s24 < b.sub24PerEdge; s24++ {
			sub24, err := b.subs.NextSubnet(24)
			if err != nil {
				panic(err)
			}
			b.s.Net.AddPrefix(sub24, co.Routers[0], b.p.ISP)
			reg.SubscriberPrefixes = append(reg.SubscriberPrefixes, sub24)
			pool := ipalloc.NewPool(sub24)
			for i := 0; i < b.p.SubsPerEdge; i++ {
				a, err := pool.NextHost()
				if err != nil {
					panic(err)
				}
				h := &netsim.Host{
					Addr:           a,
					Router:         co.Routers[0],
					ISP:            b.p.ISP,
					Loc:            co.Loc,
					AccessDelay:    time.Duration(3+b.s.rng.Float64()*6) * time.Millisecond,
					RespondsToPing: b.s.rng.Float64() < 0.7,
				}
				if err := b.s.Net.AddHost(h); err != nil {
					panic(err)
				}
				b.s.DNS.SetLive(a, b.subscriberName(a, reg))
				b.s.DNS.SetSnapshot(a, b.subscriberName(a, reg))
			}
		}
	}

	// MPLS: LSPs from top AggCO routers to every EdgeCO router.
	if spec.MPLS {
		for _, t := range top {
			for _, tr := range t.Routers {
				for _, co := range reg.COs {
					if co.Role != EdgeCO {
						continue
					}
					for _, er := range co.Routers {
						b.s.Net.AddTunnel(tr, er)
					}
				}
			}
		}
	}
}

// wireViaRegion links a region's top AggCOs to the top AggCOs of
// another region.
func (b *cableBuilder) wireViaRegion(spec *CableRegionSpec) {
	reg := b.isp.Regions[spec.Name]
	via := b.isp.Regions[spec.ViaRegion]
	if via == nil {
		panic("topogen: unknown ViaRegion " + spec.ViaRegion)
	}
	reg.EntryRegions = append(reg.EntryRegions, spec.ViaRegion)
	var viaTop []*CO
	for _, co := range via.COs {
		if co.Role == AggCO && co.Tier == 1 {
			viaTop = append(viaTop, co)
		}
	}
	sortCOs(viaTop)
	var myTop []*CO
	for _, co := range reg.COs {
		if co.Role == AggCO && co.Tier == 1 {
			myTop = append(myTop, co)
		}
	}
	sortCOs(myTop)
	for i, mine := range myTop {
		if len(viaTop) == 0 {
			break
		}
		up := viaTop[i%len(viaTop)]
		// Inter-region interconnects ride indirect protection fiber,
		// lengthening the physical path (the paper's 3.5-4ms Connecticut
		// penalty); the preferential metric below still attracts the
		// neighbor-region traffic.
		delay := geo.PropagationDelay(up.Loc, mine.Loc) * 3 / 2
		link := b.linkRouters(up.Routers[0], mine.Routers[0], up, mine, "ar", "ar", delay)
		// Regional interconnects carry a preferential IGP metric so
		// neighbor-region traffic stays off the long-haul backbone
		// without turning the link into a national shortcut.
		link.Metric = link.Delay / 2
		mine.Upstream = append(mine.Upstream, up.ID)
	}
}

// subscriberName formats last-mile rDNS (no CO information, matching
// real cable subscriber names).
func (b *cableBuilder) subscriberName(a netip.Addr, reg *Region) string {
	dashed := strings.ReplaceAll(a.String(), ".", "-")
	if b.p.Style == "rr" {
		return fmt.Sprintf("cpe-%s.%s.res.rr.com", dashed, reg.Name)
	}
	return fmt.Sprintf("c-%s.hsd1.%s.comcast.net", dashed, "us")
}
