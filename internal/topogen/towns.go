package topogen

import (
	"math/rand"
	"strings"
)

// townNamer produces unique, plausible U.S. town names for synthetic
// EdgeCO locations. Comcast-style hostnames expose these names directly
// (po-1-1-cbr01.troutdale.or...), Charter-style hostnames expose their
// CLLI codes, so the names must be deterministic, unique, and lowercase-
// hostname-safe.
type townNamer struct {
	// used keys are (prefix, suffix, disambiguator) triples encoded as
	// ints — prefix+suffix concatenations are injective across the two
	// word lists, so the integer key is equivalent to the name string
	// while keeping the saturated-retry loop (thousands of towns draw
	// from ~900 base combinations, so late draws retry a lot)
	// allocation-free. Only a successful draw builds the string.
	used map[int]bool
}

var townPrefixes = []string{
	"oak", "maple", "cedar", "pine", "elm", "birch", "willow", "ash",
	"river", "lake", "spring", "fair", "glen", "mill", "stone", "clear",
	"east", "west", "north", "south", "new", "mid", "high", "long",
	"green", "silver", "gold", "red", "bell", "brook", "mead", "marl",
	"hart", "clay", "dun", "farn", "graf", "kings", "lyn", "nor",
}

var townSuffixes = []string{
	"ville", "ton", "field", "wood", "burg", "ford", "dale", "port",
	"view", "mont", "haven", "crest", "side", "grove", "land", "boro",
	"ham", "wick", "ley", "worth", "bury", "stead", "moor", "gate",
}

func newTownNamer() *townNamer {
	return &townNamer{used: map[int]bool{}}
}

// next returns a fresh town name drawn from rng, never repeating within
// one scenario. The rng draw sequence (two Intn per attempt, a third
// once attempts pass 200) is part of the pinned-digest contract: every
// later topology draw shifts with it.
func (t *townNamer) next(rng *rand.Rand) string {
	for i := 0; ; i++ {
		pi := rng.Intn(len(townPrefixes))
		si := rng.Intn(len(townSuffixes))
		p, s := townPrefixes[pi], townSuffixes[si]
		if p[len(p)-1] == s[0] {
			// avoid doubled letters like "oakkirk"; retry cheaply
			continue
		}
		key := (pi*len(townSuffixes) + si) * 27
		if i > 200 {
			// Add a letter disambiguator once combinations run low.
			key += 1 + rng.Intn(26)
		}
		if !t.used[key] {
			t.used[key] = true
			name := p + s
			if d := key % 27; d > 0 {
				name += string(rune('a' + d - 1))
			}
			return name
		}
	}
}

// title uppercases the first letter for use as a geo.City name.
func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
