package topogen

import (
	"math/rand"
	"strings"
)

// townNamer produces unique, plausible U.S. town names for synthetic
// EdgeCO locations. Comcast-style hostnames expose these names directly
// (po-1-1-cbr01.troutdale.or...), Charter-style hostnames expose their
// CLLI codes, so the names must be deterministic, unique, and lowercase-
// hostname-safe.
type townNamer struct {
	used map[string]bool
}

var townPrefixes = []string{
	"oak", "maple", "cedar", "pine", "elm", "birch", "willow", "ash",
	"river", "lake", "spring", "fair", "glen", "mill", "stone", "clear",
	"east", "west", "north", "south", "new", "mid", "high", "long",
	"green", "silver", "gold", "red", "bell", "brook", "mead", "marl",
	"hart", "clay", "dun", "farn", "graf", "kings", "lyn", "nor",
}

var townSuffixes = []string{
	"ville", "ton", "field", "wood", "burg", "ford", "dale", "port",
	"view", "mont", "haven", "crest", "side", "grove", "land", "boro",
	"ham", "wick", "ley", "worth", "bury", "stead", "moor", "gate",
}

func newTownNamer() *townNamer {
	return &townNamer{used: map[string]bool{}}
}

// next returns a fresh town name drawn from rng, never repeating within
// one scenario.
func (t *townNamer) next(rng *rand.Rand) string {
	for i := 0; ; i++ {
		p := townPrefixes[rng.Intn(len(townPrefixes))]
		s := townSuffixes[rng.Intn(len(townSuffixes))]
		name := p + s
		if strings.HasSuffix(p, string(s[0])) {
			// avoid doubled letters like "oakkirk"; retry cheaply
			continue
		}
		if i > 200 {
			// Add a numeric disambiguator once combinations run low.
			name = name + string(rune('a'+rng.Intn(26)))
		}
		if !t.used[name] {
			t.used[name] = true
			return name
		}
	}
}

// title uppercases the first letter for use as a geo.City name.
func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
