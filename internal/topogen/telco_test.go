package topogen

import (
	"net/netip"
	"strings"
	"testing"

	"repro/internal/hostnames"
	"repro/internal/netsim"
)

var telcoScenario *Scenario
var telcoTruth *Telco

func getTelco(t *testing.T) (*Scenario, *Telco) {
	t.Helper()
	if telcoScenario == nil {
		s := NewScenario(11)
		telcoTruth = s.BuildTelco(ATTProfile())
		telcoScenario = s
	}
	return telcoScenario, telcoTruth
}

func TestTelcoInventory(t *testing.T) {
	_, tel := getTelco(t)
	if got := len(tel.ISP.Regions); got != 37 {
		t.Fatalf("regions = %d, want 37", got)
	}
	sd := tel.ISP.Regions["sd2ca"]
	if sd == nil {
		t.Fatal("sd2ca missing")
	}
	edges := sd.COsByRole(EdgeCO)
	if len(edges) != 42 {
		t.Errorf("San Diego EdgeCOs = %d, want 42", len(edges))
	}
	if aggs := sd.COsByRole(AggCO); len(aggs) != 4 {
		t.Errorf("San Diego AggCOs = %d, want 4", len(aggs))
	}
	if bbs := sd.COsByRole(BackboneCO); len(bbs) != 1 {
		t.Errorf("San Diego BackboneCOs = %d, want 1", len(bbs))
	}
	// Every EdgeCO has two routers and two upstream AggCOs.
	for _, co := range edges {
		if len(co.Routers) != 2 {
			t.Errorf("%s routers = %d, want 2", co.ID, len(co.Routers))
		}
		if len(co.Upstream) != 2 {
			t.Errorf("%s upstreams = %d, want 2", co.ID, len(co.Upstream))
		}
	}
	// Calexico and El Centro appear as EdgeCO towns.
	var far int
	for _, co := range edges {
		if co.City.Name == "Calexico" || co.City.Name == "El Centro" {
			far++
		}
	}
	if far != 2 {
		t.Errorf("far towns = %d, want 2", far)
	}
	// Roughly 7 router /24s (6-7 edge + 1 agg) in San Diego (Table 6).
	n := len(tel.EdgePrefixes["sd2ca"]) + len(tel.AggPrefixes["sd2ca"])
	if n < 6 || n > 9 {
		t.Errorf("San Diego router /24s = %d, want ~7", n)
	}
}

func TestLightspeedNames(t *testing.T) {
	s, tel := getTelco(t)
	if len(tel.DSLAMs["sd2ca"]) == 0 {
		t.Fatal("no DSLAMs")
	}
	for _, a := range tel.DSLAMs["sd2ca"][:5] {
		name, ok := s.DNS.Dig(a)
		if !ok {
			t.Fatalf("no rDNS for DSLAM %v", a)
		}
		info, ok := hostnames.Parse(name)
		if !ok || info.ISP != "att" || info.CO != "sndgca" || info.Role != hostnames.RoleLastMile {
			t.Errorf("lightspeed name %q parsed %+v", name, info)
		}
	}
}

func TestIntraRegionTraceMatchesFig20a(t *testing.T) {
	s, tel := getTelco(t)
	vp := s.AddTelcoVP(tel, "sd2ca", 0)
	// Choose a DSLAM in a different EdgeCO.
	dst := tel.DSLAMs["sd2ca"][len(tel.DSLAMs["sd2ca"])-1]
	// Expected shape (Fig. 20a): own DSLAM, then EdgeCO router hop(s),
	// then the destination lspgw; the MPLS tunnels hide the agg layer.
	var hops []string
	var addrsSeen []string
	for ttl := uint8(1); ttl <= 12; ttl++ {
		r := s.Net.Probe(s.Epoch(), netsim.ProbeSpec{Src: vp.Addr, Dst: dst, TTL: ttl, FlowID: 5})
		if r.Type == netsim.Timeout {
			hops = append(hops, "*")
			continue
		}
		name, _ := s.DNS.Dig(r.From)
		hops = append(hops, name)
		addrsSeen = append(addrsSeen, r.From.String())
		if r.Type == netsim.EchoReply {
			break
		}
	}
	if len(hops) < 2 {
		t.Fatalf("path too short: %v", hops)
	}
	last := hops[len(hops)-1]
	if !strings.Contains(last, "lightspeed") {
		t.Errorf("last hop should be the destination lspgw, got %q", last)
	}
	// Middle hops are unnamed EdgeCO routers; the agg layer is hidden.
	for _, h := range hops[1 : len(hops)-1] {
		if h != "" && h != "*" {
			t.Errorf("middle hop has a name (%q); AT&T CO routers must be unnamed", h)
		}
	}
	// No agg-prefix address appears (MPLS hides the middle tier).
	aggPfx := tel.AggPrefixes["sd2ca"][0]
	for _, a := range addrsSeen {
		if aggPfx.Contains(mustAddr(a)) {
			t.Errorf("agg router %s visible despite MPLS", a)
		}
	}
}

func TestDPRRevealsAggRouters(t *testing.T) {
	s, tel := getTelco(t)
	vp := s.AddTelcoVP(tel, "sd2ca", 3)
	// Find an EdgeCO router interface address inside an edge /24 by
	// probing addresses of the first edge prefix (the campaign does the
	// same sweep).
	aggPfx := tel.AggPrefixes["sd2ca"][0]
	sawAgg := false
	for _, pfx := range tel.EdgePrefixes["sd2ca"][:2] {
		for a := pfx.Addr().Next(); pfx.Contains(a); a = a.Next() {
			// Traceroute to the router address itself: DPR.
			for ttl := uint8(1); ttl <= 10; ttl++ {
				r := s.Net.Probe(s.Epoch(), netsim.ProbeSpec{Src: vp.Addr, Dst: a, TTL: ttl, FlowID: 9})
				if r.Type == netsim.Timeout {
					continue
				}
				if aggPfx.Contains(r.From) {
					sawAgg = true
				}
				if r.Type != netsim.TTLExceeded {
					break
				}
			}
			if sawAgg {
				return
			}
		}
	}
	t.Error("DPR traceroutes toward edge-router addresses never revealed an agg router")
}

func TestExternalProbingBlocked(t *testing.T) {
	s, tel := getTelco(t)
	ext := s.AddTransitVP("Denver")
	dst := tel.DSLAMs["sd2ca"][0]
	// Echo addressed to the lspgw from outside: silent.
	if r := s.Net.Probe(s.Epoch(), netsim.ProbeSpec{Src: ext.Addr, Dst: dst, TTL: 40}); r.Type != netsim.Timeout {
		t.Errorf("external echo to lspgw answered: %v", r.Type)
	}
	// But a traceroute toward a customer shows backbone and penultimate
	// hops (TTL-exceeded is not blocked).
	var responded int
	var sawBackboneName bool
	for c := 0; c < 3; c++ {
		cust := tel.Customers["sd2ca"][c]
		for ttl := uint8(1); ttl <= 16; ttl++ {
			for seq := uint32(0); seq < 2; seq++ {
				r := s.Net.Probe(s.Epoch(), netsim.ProbeSpec{Src: ext.Addr, Dst: cust, TTL: ttl, FlowID: 2, Seq: seq})
				if r.Type == netsim.TTLExceeded {
					responded++
					if name, ok := s.DNS.Dig(r.From); ok && strings.Contains(name, "ip.att.net") {
						sawBackboneName = true
					}
				}
			}
		}
	}
	if responded == 0 {
		t.Error("no hops visible on external trace to customer")
	}
	if !sawBackboneName {
		t.Error("backbone router name never appeared")
	}
}

func TestWiFiHotspots(t *testing.T) {
	s, tel := getTelco(t)
	spots := s.BuildWiFiHotspots(tel, "sd2ca", 58, 0.4)
	if len(spots) != 58 {
		t.Fatalf("hotspots = %d", len(spots))
	}
	onATT := 0
	cos := map[string]bool{}
	for _, h := range spots {
		if h.Host != nil {
			onATT++
			cos[h.EdgeCO] = true
			if h.ISP != "att" {
				t.Error("host attached but ISP not att")
			}
		}
	}
	if onATT < 15 || onATT > 30 {
		t.Errorf("AT&T hotspots = %d, want ~23", onATT)
	}
	if len(cos) < 10 {
		t.Errorf("AT&T hotspots cover %d EdgeCOs, want broad coverage", len(cos))
	}
}

func mustAddr(s string) netip.Addr {
	return netip.MustParseAddr(s)
}

func TestVPPanicsOnUnknownRegion(t *testing.T) {
	s, tel := getTelco(t)
	defer func() {
		if recover() == nil {
			t.Error("AddTelcoVP with unknown region should panic (generator programming error)")
		}
	}()
	s.AddTelcoVP(tel, "nosuch", 0)
}
