package topogen

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/geo"
	"repro/internal/ipalloc"
	"repro/internal/netsim"
)

// AddTransitVP attaches a measurement host directly to the transit PoP
// in a city (an Ark-style VP hosted in a transit network).
func (s *Scenario) AddTransitVP(cityName string) *netsim.Host {
	city := geo.MustByName(cityName)
	pop := s.TransitPoP(city.Point)
	addr := s.nextVPAddr()
	h := &netsim.Host{
		Addr:           addr,
		Router:         pop,
		ISP:            "transit",
		Loc:            city.Point,
		AccessDelay:    200 * time.Microsecond,
		RespondsToPing: true,
	}
	if err := s.Net.AddHost(h); err != nil {
		panic(err)
	}
	return h
}

// AddAccessVP attaches a measurement host behind a subscriber line in
// one of the region's EdgeCOs (an Atlas/Ark-style VP in a home). The
// EdgeCO is chosen by index modulo the region's EdgeCO count so callers
// can spread VPs deterministically.
func (s *Scenario) AddAccessVP(isp *ISP, regionName string, edgeIdx int) *netsim.Host {
	reg := isp.Regions[regionName]
	if reg == nil {
		panic("topogen: unknown region " + regionName)
	}
	edges := reg.COsByRole(EdgeCO)
	if len(edges) == 0 {
		panic("topogen: region has no EdgeCOs: " + regionName)
	}
	co := edges[edgeIdx%len(edges)]
	return s.attachSubscriberVP(co, isp.Name)
}

// attachSubscriberVP places a VP host on a fresh address behind the
// given EdgeCO's first router.
func (s *Scenario) attachSubscriberVP(co *CO, isp string) *netsim.Host {
	addr := s.nextVPAddr()
	h := &netsim.Host{
		Addr:           addr,
		Router:         co.Routers[0],
		ISP:            isp,
		Loc:            co.Loc,
		AccessDelay:    time.Duration(3+s.rng.Float64()*6) * time.Millisecond,
		RespondsToPing: true,
	}
	if err := s.Net.AddHost(h); err != nil {
		panic(err)
	}
	return h
}

// StandardVPCities are the transit cities used for the default
// 47-VP deployment mirroring the paper's access/cloud/transit mix.
var StandardVPCities = []string{
	"Seattle", "San Francisco", "Los Angeles", "Denver", "Dallas",
	"Houston", "Kansas City", "Chicago", "Minneapolis", "Atlanta",
	"Miami", "Washington", "New York", "Boston", "Phoenix",
	"Salt Lake City", "Saint Louis", "Detroit", "Charlotte", "Nashville",
}

// StandardVPs deploys the paper-style vantage point set: one VP in each
// standard transit city, every cloud VM, and a handful of access VPs
// spread across the given operators' regions. It returns the VP host
// addresses.
func (s *Scenario) StandardVPs(isps ...*ISP) []netip.Addr {
	var out []netip.Addr
	for _, city := range StandardVPCities {
		out = append(out, s.AddTransitVP(city).Addr)
	}
	for _, vm := range s.Clouds {
		out = append(out, vm.Host.Addr)
	}
	for _, isp := range isps {
		names := make([]string, 0, len(isp.Regions))
		feeders := map[string]bool{}
		for name, reg := range isp.Regions {
			names = append(names, name)
			// Regions that feed another region must host a VP: the
			// inter-region link only carries traffic sourced inside
			// the feeder.
			for _, entry := range reg.EntryRegions {
				feeders[entry] = true
			}
		}
		sortStringsVP(names)
		// A VP in every third region plus feeders. Scaled topologies
		// widen the stride so the access fleet stays roughly paper-size
		// (~12 per operator plus feeders) instead of growing with the
		// region count: the paper measured full-size operators with a
		// fixed ~50-VP fleet, and a fleet proportional to the footprint
		// would make per-VP work (path compilation, shortest-path
		// trees) scale superlinearly. Operators with <=36 regions — all
		// paper-size profiles — keep stride 3 exactly.
		stride := 3
		if len(names) > 36 {
			stride = (len(names) + 11) / 12
		}
		for i, name := range names {
			if i%stride != 0 && !feeders[name] {
				continue
			}
			out = append(out, s.AddAccessVP(isp, name, i).Addr)
		}
	}
	return out
}

func sortStringsVP(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// vpPool hands out addresses for vantage points from a block disjoint
// from every operator pool.
var vpPoolPrefix = netip.MustParsePrefix("198.18.0.0/15")

func (s *Scenario) nextVPAddr() netip.Addr {
	if s.vpPool == nil {
		s.vpPool = ipalloc.NewPool(vpPoolPrefix)
	}
	a, err := s.vpPool.NextHost()
	if err != nil {
		panic(fmt.Errorf("topogen: VP pool exhausted: %w", err))
	}
	return a
}
