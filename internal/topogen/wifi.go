package topogen

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
)

// WiFiHotspot is a public restaurant WiFi network (the McTraceroute
// substrate, §6.1). Restaurants are placed across a region's EdgeCO
// footprint; only those whose franchise buys service from the target
// operator yield usable vantage points.
type WiFiHotspot struct {
	Name string
	Loc  geo.Point
	// ISP is the operator serving the restaurant's access line.
	ISP string
	// Host is the probing vantage point behind the hotspot; nil when
	// the restaurant is not on the target operator (the paper found 23
	// of 58 San Diego McDonald's on AT&T).
	Host *netsim.Host
	// EdgeCO is the ground-truth CO serving the line (scoring only).
	EdgeCO string
}

// BuildWiFiHotspots scatters n restaurants across a telco region's
// EdgeCOs. A fraction attFrac of them use the telco's DSL service and
// become vantage points attached behind a DSLAM of their nearest EdgeCO.
func (s *Scenario) BuildWiFiHotspots(t *Telco, regionTag string, n int, attFrac float64) []WiFiHotspot {
	reg := t.ISP.Regions[regionTag]
	if reg == nil {
		panic("topogen: unknown telco region " + regionTag)
	}
	edges := reg.COsByRole(EdgeCO)
	var out []WiFiHotspot
	for i := 0; i < n; i++ {
		// Restaurants cluster where people are: near EdgeCO towns.
		co := edges[i%len(edges)]
		loc := geo.Point{
			Lat: co.Loc.Lat + (s.rng.Float64()-0.5)*0.05,
			Lon: co.Loc.Lon + (s.rng.Float64()-0.5)*0.05,
		}
		h := WiFiHotspot{
			Name:   fmt.Sprintf("restaurant-%s-%02d", regionTag, i+1),
			Loc:    loc,
			EdgeCO: co.ID,
		}
		if s.rng.Float64() < attFrac {
			h.ISP = t.ISP.Name
			dslams := t.DSLAMRouters[co.ID]
			dr := dslams[i%len(dslams)]
			host := &netsim.Host{
				Addr:   s.nextVPAddr(),
				Router: dr,
				ISP:    t.ISP.Name,
				Loc:    loc,
				// DSL line plus WiFi hop.
				AccessDelay:    time.Duration(8+s.rng.Float64()*12) * time.Millisecond,
				RespondsToPing: true,
			}
			if err := s.Net.AddHost(host); err != nil {
				panic(err)
			}
			h.Host = host
		} else {
			h.ISP = "cable-competitor"
		}
		out = append(out, h)
	}
	return out
}
