package topogen

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/ipalloc"
	"repro/internal/netsim"
)

// TelcoRegionSpec describes one AT&T-like regional network.
type TelcoRegionSpec struct {
	// Tag is the backbone rDNS region token (cr1.<tag>.ip.att.net).
	Tag string
	// Code is the six-character lightspeed city code
	// (*.lightspeed.<code>.sbcglobal.net).
	Code string
	// City anchors the region.
	City string
	// EdgeCOs is the edge office count (42 in the San Diego case study,
	// reflecting telephone-era copper loop-length constraints).
	EdgeCOs int
	// FarTowns places specific EdgeCOs in distant named cities (the
	// paper's Calexico / El Centro latency outliers).
	FarTowns []string
	// DSLAMsPerEdge and SubsPerDSLAM control last-mile density.
	DSLAMsPerEdge int
	SubsPerDSLAM  int
}

// TelcoProfile parameterizes the telco operator.
type TelcoProfile struct {
	ISP string
	// EdgePrefixes is roughly how many EdgeCO router /24s each region
	// uses (the paper found 7 in San Diego: 6 edge + 1 agg).
	EdgeCOsPer24 int
	Regions      []TelcoRegionSpec
}

// Telco is the generated ground truth for the telco operator.
type Telco struct {
	ISP *ISP
	// EdgePrefixes lists, per region tag, the /24s holding EdgeCO
	// router addresses (Table 6's ground truth).
	EdgePrefixes map[string][]netip.Prefix
	// AggPrefixes lists, per region tag, the AggCO router /24.
	AggPrefixes map[string][]netip.Prefix
	// Customers lists, per region tag, subscriber host addresses (the
	// pool an M-Lab-style public dataset samples from).
	Customers map[string][]netip.Addr
	// DSLAMs lists, per region tag, the lightspeed gateway addresses.
	DSLAMs map[string][]netip.Addr
	// DSLAMRouters lists the last-mile gateway devices per CO ID, for
	// attaching subscriber vantage points.
	DSLAMRouters map[string][]*netsim.Router
}

// MLabSample returns a deterministic sample of the region's customer
// addresses, standing in for the public M-Lab NDT dataset the paper
// mines for responsive AT&T customer targets (§6.3). Real NDT data only
// covers customers who ran speed tests; frac models that coverage.
func (t *Telco) MLabSample(regionTag string, frac float64) []netip.Addr {
	all := t.Customers[regionTag]
	if frac >= 1 {
		return append([]netip.Addr(nil), all...)
	}
	step := int(1 / frac)
	if step < 1 {
		step = 1
	}
	var out []netip.Addr
	for i := 0; i < len(all); i += step {
		out = append(out, all[i])
	}
	return out
}

// AddTelcoVP attaches a measurement host (an Ark/Atlas-style probe on a
// DSL line) behind a DSLAM of the region's (idx mod N)-th EdgeCO.
func (s *Scenario) AddTelcoVP(t *Telco, regionTag string, idx int) *netsim.Host {
	reg := t.ISP.Regions[regionTag]
	if reg == nil {
		panic("topogen: unknown telco region " + regionTag)
	}
	edges := reg.COsByRole(EdgeCO)
	co := edges[idx%len(edges)]
	dslams := t.DSLAMRouters[co.ID]
	dr := dslams[idx%len(dslams)]
	h := &netsim.Host{
		Addr:           s.nextVPAddr(),
		Router:         dr,
		ISP:            t.ISP.Name,
		Loc:            co.Loc,
		AccessDelay:    time.Duration(6+s.rng.Float64()*10) * time.Millisecond,
		RespondsToPing: true,
	}
	if err := s.Net.AddHost(h); err != nil {
		panic(err)
	}
	return h
}

// BuildTelco generates an AT&T-like operator: per-region single
// BackboneCO (two named core routers), four unnamed AggCOs fully meshed
// to the backbone, dozens of unnamed dual-router EdgeCOs, lightspeed
// DSLAM gateways with rDNS, MPLS LSPs that hide the aggregation layer,
// and internal-only probe policies.
func (s *Scenario) BuildTelco(p TelcoProfile) *Telco {
	isp := s.ispByName(p.ISP)
	t := &Telco{
		ISP:          isp,
		EdgePrefixes: map[string][]netip.Prefix{},
		AggPrefixes:  map[string][]netip.Prefix{},
		Customers:    map[string][]netip.Addr{},
		DSLAMs:       map[string][]netip.Addr{},
		DSLAMRouters: map[string][]*netsim.Router{},
	}
	// Address plan: backbone 12/8-style, regional router /24s from
	// 71.0.0.0/9-style space, last-mile lightspeed addresses from
	// 107.0.0.0/9-style space.
	bbPool := ipalloc.NewPool(netip.MustParsePrefix("12.83.0.0/16"))
	routerPool := ipalloc.NewPool(netip.MustParsePrefix("71.144.0.0/12"))
	lastMilePool := ipalloc.NewPool(netip.MustParsePrefix("107.192.0.0/10"))
	isp.Announced = append(isp.Announced,
		netip.MustParsePrefix("12.83.0.0/16"),
		netip.MustParsePrefix("71.144.0.0/12"),
		netip.MustParsePrefix("107.192.0.0/10"))

	if p.EdgeCOsPer24 == 0 {
		p.EdgeCOsPer24 = 7
	}
	towns := newTownNamer()
	for i := range p.Regions {
		s.buildTelcoRegion(isp, t, &p.Regions[i], p, towns, bbPool, routerPool, lastMilePool)
	}
	return t
}

func (s *Scenario) buildTelcoRegion(isp *ISP, t *Telco, spec *TelcoRegionSpec, p TelcoProfile, towns *townNamer, bbPool, routerPool, lastMilePool *ipalloc.Pool) {
	city := geo.MustByName(spec.City)
	reg := &Region{Name: spec.Tag, ISP: isp.Name, COs: map[string]*CO{}, AggLayers: 2}
	isp.Regions[spec.Tag] = reg

	if spec.DSLAMsPerEdge == 0 {
		spec.DSLAMsPerEdge = 3
	}
	if spec.SubsPerDSLAM == 0 {
		spec.SubsPerDSLAM = 2
	}

	newIface := func(r *netsim.Router, pool *ipalloc.Pool) *netsim.Iface {
		a, err := pool.NextHost()
		if err != nil {
			panic(err)
		}
		ifc, err := s.Net.AddIface(r, a)
		if err != nil {
			panic(err)
		}
		return ifc
	}
	link := func(ra, rb *netsim.Router, poolA, poolB *ipalloc.Pool, delay time.Duration) {
		ia := newIface(ra, poolA)
		ib := newIface(rb, poolB)
		if _, err := s.Net.Connect(ia, ib, delay); err != nil {
			panic(err)
		}
	}

	// The lone BackboneCO: the old Long Lines building downtown.
	bbCO := &CO{
		ID:     coID(isp.Name, spec.Tag, "bb-"+spec.Code),
		Tag:    spec.Tag,
		Role:   BackboneCO,
		City:   city,
		Loc:    city.Point,
		Region: spec.Tag,
	}
	reg.COs[bbCO.ID] = bbCO
	reg.BackboneEntries = append(reg.BackboneEntries, bbCO.ID)
	var bbRouters []*netsim.Router
	for i := 0; i < 2; i++ {
		r := s.Net.AddRouter(&netsim.Router{
			Name:         fmt.Sprintf("%s/cr%d", bbCO.ID, i+1),
			ISP:          isp.Name,
			CO:           bbCO.ID,
			Loc:          city.Point,
			ResponseProb: 0.98,
			IPID:         netsim.IPIDShared,
		})
		r.IPIDVelocity = 100 + s.rng.Float64()*300
		for _, up := range s.AttachToTransitN(r, 2) {
			name := fmt.Sprintf("cr%d.%s.ip.att.net", i+1, spec.Tag)
			s.DNS.SetLive(up.Addr, name)
			s.DNS.SetSnapshot(up.Addr, name)
		}
		// A named backbone-side loopback, plus intra-ISP interfaces.
		lo := newIface(r, bbPool)
		name := fmt.Sprintf("cr%d.%s.ip.att.net", i+1, spec.Tag)
		s.DNS.SetLive(lo.Addr, name)
		s.DNS.SetSnapshot(lo.Addr, name)
		r.Canonical = lo.Addr
		bbCO.Routers = append(bbCO.Routers, r)
		bbRouters = append(bbRouters, r)
	}
	link(bbRouters[0], bbRouters[1], bbPool, bbPool, 20*time.Microsecond)

	// Four AggCOs, one unnamed router each, fully meshed to both
	// backbone routers (Fig. 13). Their addresses share one /24.
	agg24, err := routerPool.NextSubnet(24)
	if err != nil {
		panic(err)
	}
	t.AggPrefixes[spec.Tag] = append(t.AggPrefixes[spec.Tag], agg24)
	aggPool := ipalloc.NewPool(agg24)
	s.Net.AddPrefix(agg24, bbRouters[0], isp.Name)
	var aggRouters []*netsim.Router
	var aggCOs []*CO
	for i := 0; i < 4; i++ {
		town := s.scatterTown(title(towns.next(s.rng)), city, 4, 25)
		co := &CO{
			ID:       coID(isp.Name, spec.Tag, fmt.Sprintf("agg%d", i+1)),
			Tag:      fmt.Sprintf("agg%d", i+1),
			Role:     AggCO,
			Tier:     1,
			City:     town,
			Loc:      town.Point,
			Region:   spec.Tag,
			Upstream: []string{bbCO.ID},
		}
		reg.COs[co.ID] = co
		aggCOs = append(aggCOs, co)
		r := s.Net.AddRouter(&netsim.Router{
			Name:         co.ID + "/ar1",
			ISP:          isp.Name,
			CO:           co.ID,
			Loc:          town.Point,
			ResponseProb: 0.97,
			DstPolicy:    netsim.DstInternalOnly,
			IPID:         netsim.IPIDShared,
		})
		r.IPIDVelocity = 50 + s.rng.Float64()*250
		co.Routers = append(co.Routers, r)
		aggRouters = append(aggRouters, r)
		for _, bbr := range bbRouters {
			link(bbr, r, bbPool, aggPool, geo.PropagationDelay(city.Point, town.Point))
		}
	}

	// EdgeCO router /24s (about one per EdgeCOsPer24 offices).
	n24 := (spec.EdgeCOs*2 + 253) / 254
	if min := (spec.EdgeCOs + p.EdgeCOsPer24 - 1) / p.EdgeCOsPer24; min > n24 {
		n24 = min
	}
	var edgePools []*ipalloc.Pool
	for i := 0; i < n24; i++ {
		pfx, err := routerPool.NextSubnet(24)
		if err != nil {
			panic(err)
		}
		t.EdgePrefixes[spec.Tag] = append(t.EdgePrefixes[spec.Tag], pfx)
		s.Net.AddPrefix(pfx, bbRouters[0], isp.Name)
		edgePools = append(edgePools, ipalloc.NewPool(pfx))
	}

	// EdgeCOs: two unnamed routers each, both connected to the two agg
	// routers of their sub-region half.
	var edgeRouters []*netsim.Router
	for e := 0; e < spec.EdgeCOs; e++ {
		var town geo.City
		far := e < len(spec.FarTowns)
		if far {
			town = geo.MustByName(spec.FarTowns[e])
			s.CLLI.Add(town)
		} else {
			town = s.scatterTown(title(towns.next(s.rng)), city, 5, 45)
		}
		co := &CO{
			ID:     coID(isp.Name, spec.Tag, fmt.Sprintf("wc%02d", e+1)),
			Tag:    fmt.Sprintf("wc%02d", e+1),
			Role:   EdgeCO,
			City:   town,
			Loc:    town.Point,
			Region: spec.Tag,
		}
		reg.COs[co.ID] = co
		pair := aggRouters[:2]
		pairCOs := aggCOs[:2]
		if e%2 == 1 {
			pair = aggRouters[2:]
			pairCOs = aggCOs[2:]
		}
		co.Upstream = append(co.Upstream, pairCOs[0].ID, pairCOs[1].ID)
		pool := edgePools[e%len(edgePools)]
		var ers []*netsim.Router
		for k := 0; k < 2; k++ {
			r := s.Net.AddRouter(&netsim.Router{
				Name:         fmt.Sprintf("%s/er%d", co.ID, k+1),
				ISP:          isp.Name,
				CO:           co.ID,
				Loc:          town.Point,
				ResponseProb: 0.97,
				DstPolicy:    netsim.DstInternalOnly,
				IPID:         netsim.IPIDShared,
			})
			r.IPIDVelocity = 30 + s.rng.Float64()*200
			co.Routers = append(co.Routers, r)
			ers = append(ers, r)
			edgeRouters = append(edgeRouters, r)
			for _, ar := range pair {
				delay := geo.PropagationDelay(ar.Loc, town.Point)
				if far {
					// Remote offices reach the metro over circuitous
					// long-haul fiber (mountain and desert routing),
					// the source of the paper's Table 2 outliers.
					delay = delay * 5 / 2
				}
				link(ar, r, aggPool, pool, delay)
			}
		}
		link(ers[0], ers[1], pool, pool, 20*time.Microsecond)

		// DSLAMs: lightspeed gateways with rDNS, dual-homed to both
		// edge routers, replying from their canonical lspgw address.
		for d := 0; d < spec.DSLAMsPerEdge; d++ {
			lspgw, err := lastMilePool.NextHost()
			if err != nil {
				panic(err)
			}
			dr := s.Net.AddRouter(&netsim.Router{
				Name:         fmt.Sprintf("%s/dslam%d", co.ID, d+1),
				ISP:          isp.Name,
				CO:           co.ID,
				Loc:          town.Point,
				ResponseProb: 0.95,
				DstPolicy:    netsim.DstInternalOnly,
				ReplyAddr:    netsim.ReplyCanonical,
				IPID:         netsim.IPIDRandom,
			})
			ifc, err := s.Net.AddIface(dr, lspgw)
			if err != nil {
				panic(err)
			}
			_ = ifc
			dr.Canonical = lspgw
			name := fmt.Sprintf("%s.lightspeed.%s.sbcglobal.net",
				strings.ReplaceAll(lspgw.String(), ".", "-"), spec.Code)
			s.DNS.SetLive(lspgw, name)
			s.DNS.SetSnapshot(lspgw, name)
			t.DSLAMs[spec.Tag] = append(t.DSLAMs[spec.Tag], lspgw)
			t.DSLAMRouters[co.ID] = append(t.DSLAMRouters[co.ID], dr)
			// Both uplinks of a dual-homed DSLAM share one conduit and
			// cost the same, so forwarding load-balances across the two
			// EdgeCO routers.
			dslamDelay := time.Duration(100+s.rng.Intn(400)) * time.Microsecond
			for _, er := range ers {
				link(er, dr, pool, lastMilePool, dslamDelay)
			}
			// Customers behind the DSLAM: silent to ping, with DSL
			// interleaving latency.
			for c := 0; c < spec.SubsPerDSLAM; c++ {
				addr, err := lastMilePool.NextHost()
				if err != nil {
					panic(err)
				}
				h := &netsim.Host{
					Addr:           addr,
					Router:         dr,
					ISP:            isp.Name,
					Loc:            town.Point,
					AccessDelay:    time.Duration(6+s.rng.Float64()*14) * time.Millisecond,
					RespondsToPing: false,
				}
				if err := s.Net.AddHost(h); err != nil {
					panic(err)
				}
				t.Customers[spec.Tag] = append(t.Customers[spec.Tag], addr)
			}
		}
	}

	// MPLS: LSPs from the backbone routers to every EdgeCO router and
	// between EdgeCO routers, hiding the aggregation layer from plain
	// traceroutes (§6.1, Appendix C).
	for _, bbr := range bbRouters {
		for _, er := range edgeRouters {
			s.Net.AddTunnel(bbr, er)
		}
	}
	for _, a := range edgeRouters {
		for _, b := range edgeRouters {
			if a != b {
				s.Net.AddTunnel(a, b)
			}
		}
	}
}
