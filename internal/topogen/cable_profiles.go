package topogen

import "net/netip"

// ComcastProfile returns a Comcast-like operator: 28 smaller regions in
// the three Fig. 8 archetypes (5 single-AggCO, 11 dual-AggCO, 12
// multi-level, per Table 1), location-style rDNS with relatively high
// staleness, /30 point-to-point subnets, and mostly redundant EdgeCO
// homing (11.4% single-homed, §B.4).
func ComcastProfile() CableProfile {
	return CableProfile{
		ISP:                  "comcast",
		Style:                "comcast",
		P2PBits:              30,
		P2PPool:              netip.MustParsePrefix("68.80.0.0/13"),
		SubsPool:             netip.MustParsePrefix("73.0.0.0/10"),
		SingleHomeFrac:       0.125,
		EdgeChainFrac:        0.337,
		SubSingleFrac:        0.08,
		TwoRouterEdgeFrac:    0.3,
		UnnamedProb:          0.09,
		StaleBothProb:        0.035,
		StaleSnapProb:        0.05,
		CrossRegionStaleFrac: 0.25,
		SubsPerEdge:          3,
		EdgeScatterMaxKm:     250,
		MercatorFrac:         0.25,
		RandomIPIDFrac:       0.15,
		PerIfaceIPIDFrac:     0.10,
		Regions:              comcastRegions,
	}
}

// comcastRegions spans the national footprint: 5 single-AggCO, 11
// dual-AggCO, and 12 multi-level regions (Table 1). The "boston" region
// covers MA/NH/VT from Boston-area AggCOs, and "hartford" (Connecticut)
// reaches the backbone only through the boston region — the Fig. 9
// configuration. "centralca" connects both to the backbone and to the
// sanfrancisco region (§5.2.5). "spokane" and "albuquerque" have a
// single backbone entry, which with hartford makes the three regions
// the paper observed with fewer than two entries.
var comcastRegions = []CableRegionSpec{
	// Single-AggCO regions (5).
	{Name: "spokane", Anchor: "Spokane", Backbone: []string{"Seattle"}, Type: SingleAgg, EdgeCOs: 12},
	{Name: "saltlake", Anchor: "Salt Lake City", Backbone: []string{"Denver", "Sunnyvale"}, Type: SingleAgg, EdgeCOs: 14},
	{Name: "albuquerque", Anchor: "Albuquerque", Backbone: []string{"Denver"}, Type: SingleAgg, EdgeCOs: 10},
	{Name: "oklahoma", Anchor: "Oklahoma City", Backbone: []string{"Dallas", "Denver"}, Type: SingleAgg, EdgeCOs: 11},
	{Name: "jacksonville", Anchor: "Jacksonville", Backbone: []string{"Atlanta", "Ashburn"}, Type: SingleAgg, EdgeCOs: 12},

	// Dual-AggCO regions (11).
	{Name: "bverton", Anchor: "Beaverton", Backbone: []string{"Seattle", "Sunnyvale"}, Type: DualAgg, EdgeCOs: 28,
		EdgeAnchors: []string{"Portland", "Salem", "Eugene"}},
	{Name: "sacramento", Anchor: "Sacramento", Backbone: []string{"Sunnyvale", "Denver"}, Type: DualAgg, EdgeCOs: 24},
	{Name: "centralca", Anchor: "Fresno", Backbone: []string{"Sunnyvale", "Denver"}, ViaRegion: "sanfrancisco", Type: DualAgg, EdgeCOs: 20,
		EdgeAnchors: []string{"Fresno", "Visalia", "Bakersfield"}},
	{Name: "kansascity", Anchor: "Kansas City", Backbone: []string{"Chicago", "Dallas"}, Type: DualAgg, EdgeCOs: 18},
	{Name: "indianapolis", Anchor: "Indianapolis", Backbone: []string{"Chicago", "Atlanta"}, Type: DualAgg, EdgeCOs: 22},
	{Name: "pittsburgh", Anchor: "Pittsburgh", Backbone: []string{"New York", "Chicago"}, Type: DualAgg, EdgeCOs: 25},
	{Name: "richmond", Anchor: "Richmond", Backbone: []string{"Ashburn", "Atlanta"}, Type: DualAgg, EdgeCOs: 18},
	{Name: "nashville", Anchor: "Nashville", Backbone: []string{"Atlanta", "Chicago"}, Type: DualAgg, EdgeCOs: 20},
	{Name: "boston", Anchor: "Boston", SecondAnchor: "Westborough", Backbone: []string{"New York", "Newark"}, Type: DualAgg, EdgeCOs: 58,
		EdgeAnchors: []string{"Boston", "Worcester", "Springfield, MA", "Lowell", "Manchester", "Nashua", "Concord", "Burlington", "Montpelier"}},
	{Name: "hartford", Anchor: "Hartford", ViaRegion: "boston", Type: DualAgg, EdgeCOs: 24,
		EdgeAnchors: []string{"Hartford", "New Haven", "Stamford", "Waterbury"}},
	{Name: "cleveland", Anchor: "Cleveland", Backbone: []string{"Chicago", "New York"}, Type: DualAgg, EdgeCOs: 26,
		EdgeAnchors: []string{"Cleveland", "Akron", "Toledo"}},

	// Multi-level regions (12).
	{Name: "seattle", Anchor: "Seattle", Backbone: []string{"Seattle", "Sunnyvale"}, Type: MultiLevel, EdgeCOs: 42,
		SubAnchors: []string{"Tacoma", "Bellingham"}},
	{Name: "sanfrancisco", Anchor: "San Francisco", SecondAnchor: "Oakland", Backbone: []string{"Sunnyvale", "Seattle"}, Type: MultiLevel, EdgeCOs: 40,
		SubAnchors: []string{"San Jose", "Santa Rosa"}},
	{Name: "denver", Anchor: "Denver", Backbone: []string{"Denver", "Chicago"}, Type: MultiLevel, EdgeCOs: 34,
		SubAnchors: []string{"Colorado Springs", "Fort Collins"}},
	{Name: "houston", Anchor: "Houston", Backbone: []string{"Dallas", "Atlanta"}, Type: MultiLevel, EdgeCOs: 44,
		SubAnchors: []string{"Houston", "Corpus Christi"}},
	{Name: "chicago", Anchor: "Chicago", Backbone: []string{"Chicago", "New York"}, Type: MultiLevel, EdgeCOs: 78,
		SubAnchors: []string{"Rockford", "South Bend", "Springfield, IL"}},
	{Name: "twincities", Anchor: "Minneapolis", Backbone: []string{"Chicago", "Denver"}, Type: MultiLevel, EdgeCOs: 32,
		SubAnchors: []string{"Duluth", "Rochester, MN"}},
	{Name: "stlouis", Anchor: "Saint Louis", Backbone: []string{"Chicago", "Dallas"}, Type: MultiLevel, EdgeCOs: 28,
		SubAnchors: []string{"Springfield, MO", "Topeka"}},
	{Name: "detroit", Anchor: "Detroit", Backbone: []string{"Chicago", "New York"}, Type: MultiLevel, EdgeCOs: 40,
		SubAnchors: []string{"Grand Rapids", "Lansing"}},
	{Name: "philadelphia", Anchor: "Philadelphia", Backbone: []string{"New York", "Ashburn"}, Type: MultiLevel, EdgeCOs: 48,
		SubAnchors: []string{"Harrisburg", "Allentown"}},
	{Name: "dcmetro", Anchor: "Washington", Backbone: []string{"Ashburn", "New York"}, Type: MultiLevel, EdgeCOs: 46,
		SubAnchors: []string{"Baltimore", "Frederick"}},
	{Name: "atlanta", Anchor: "Atlanta", Backbone: []string{"Atlanta", "Ashburn"}, Type: MultiLevel, EdgeCOs: 50,
		SubAnchors: []string{"Savannah", "Augusta"}},
	{Name: "miami", Anchor: "Miami", Backbone: []string{"Atlanta", "Dallas"}, Type: MultiLevel, EdgeCOs: 44,
		SubAnchors: []string{"Orlando", "Tampa"}},
}

// CharterProfile returns a Charter-like operator: 6 vast multi-level
// regions, CLLI-style rDNS under rr.com with lower staleness, /31
// point-to-point subnets, less redundant EdgeCO homing (37.7%
// single-homed), MPLS in the "maine" region, and physically present but
// traceroute-invisible redundancy in the "southeast" region (§B.4).
func CharterProfile() CableProfile {
	return CableProfile{
		ISP:                  "charter",
		Style:                "rr",
		P2PBits:              31,
		P2PPool:              netip.MustParsePrefix("72.128.0.0/13"),
		SubsPool:             netip.MustParsePrefix("76.0.0.0/10"),
		SingleHomeFrac:       0.25,
		EdgeChainFrac:        0.422,
		SubSingleFrac:        0.30,
		TwoRouterEdgeFrac:    0.25,
		UnnamedProb:          0.06,
		StaleBothProb:        0.012,
		StaleSnapProb:        0.02,
		CrossRegionStaleFrac: 0.15,
		SubsPerEdge:          3,
		EdgeScatterMaxKm:     430,
		MercatorFrac:         0.25,
		RandomIPIDFrac:       0.15,
		PerIfaceIPIDFrac:     0.10,
		Regions:              charterRegions,
	}
}

// charterRegions are the six former-Time-Warner-style regions. All are
// multi-level (Table 1) and far larger than Comcast's (Fig. 7).
var charterRegions = []CableRegionSpec{
	{Name: "socal", Anchor: "Los Angeles", Backbone: []string{"Los Angeles", "Dallas"}, Type: MultiLevel, EdgeCOs: 118,
		SubAnchors: []string{"San Diego", "Anaheim", "Riverside", "Bakersfield", "Long Beach"}},
	{Name: "texas", Anchor: "Dallas", Backbone: []string{"Dallas", "Atlanta"}, Type: MultiLevel, EdgeCOs: 136,
		SubAnchors: []string{"Austin", "San Antonio", "El Paso", "Amarillo", "Lubbock", "Shreveport"}},
	{Name: "midwest", Anchor: "Columbus", Backbone: []string{"Chicago", "Saint Louis"}, Type: MultiLevel, EdgeCOs: 230,
		SubAnchors: []string{"Cleveland", "Cincinnati", "Louisville", "Lexington", "Milwaukee", "Madison", "Green Bay", "Fort Wayne", "Kansas City", "Lincoln"}},
	{Name: "northeast", Anchor: "New York", Backbone: []string{"New York", "Chicago"}, Type: MultiLevel, EdgeCOs: 156,
		SubAnchors: []string{"Buffalo", "Rochester, NY", "Syracuse", "Albany", "Allentown"}},
	{Name: "southeast", Anchor: "Charlotte", Backbone: []string{"Atlanta", "Dallas"}, Type: MultiLevel, EdgeCOs: 128, HideRedundancy: true,
		SubAnchors: []string{"Raleigh", "Greensboro", "Columbia", "Charleston, SC", "Greenville"}},
	{Name: "maine", Anchor: "Portland, ME", Backbone: []string{"New York", "Chicago"}, Type: MultiLevel, EdgeCOs: 76, MPLS: true,
		SubAnchors: []string{"Bangor", "Augusta, ME", "Manchester"}},
}
