package topogen

import (
	"strings"
	"testing"
)

// TestScaledZeroIsIdentity pins the golden-safety contract: a zero
// Scale must hand back the profile untouched, Regions slice included.
func TestScaledZeroIsIdentity(t *testing.T) {
	p := ComcastProfile()
	q := p.Scaled(Scale{})
	if q.MinSubscribers != 0 || len(q.Regions) != len(p.Regions) {
		t.Fatalf("zero scale changed the profile: %+v", q)
	}
	if &q.Regions[0] != &p.Regions[0] {
		t.Fatal("zero scale cloned the region list")
	}
}

// TestScaledBuild builds a 2x-region Comcast with a subscriber floor
// and checks the replication invariants: originals first and verbatim,
// replicas suffixed (alphanumeric, for the rDNS region grammar),
// ViaRegion wiring resolved inside each replica set, and the allocated
// subscriber space at or above the floor.
func TestScaledBuild(t *testing.T) {
	base := ComcastProfile()
	const floor = 600000
	p := base.Scaled(Scale{Regions: 2, Subscribers: floor})
	if len(p.Regions) != 2*len(base.Regions) {
		t.Fatalf("regions: got %d, want %d", len(p.Regions), 2*len(base.Regions))
	}
	for i, r := range base.Regions {
		if p.Regions[i].Name != r.Name {
			t.Fatalf("original region %d renamed to %q", i, p.Regions[i].Name)
		}
		rep := p.Regions[len(base.Regions)+i]
		if rep.Name != r.Name+"2" {
			t.Fatalf("replica of %q named %q", r.Name, rep.Name)
		}
		if strings.ContainsAny(rep.Name, "-._") {
			t.Fatalf("replica name %q not hostname-tag safe", rep.Name)
		}
		if r.ViaRegion != "" && rep.ViaRegion != r.ViaRegion+"2" {
			t.Fatalf("replica of %q routes via %q", r.Name, rep.ViaRegion)
		}
	}

	s := NewScenario(99)
	isp := s.BuildCable(p)
	if got := len(isp.Regions); got != len(p.Regions) {
		t.Fatalf("built %d regions, want %d", got, len(p.Regions))
	}
	if isp.Regions["hartford2"] == nil || isp.Regions["boston2"] == nil {
		t.Fatal("replica regions missing from ground truth")
	}
	// The Connecticut pattern must hold inside the replica set too.
	h2 := isp.Regions["hartford2"]
	viaOK := false
	for _, e := range h2.EntryRegions {
		if e == "boston2" {
			viaOK = true
		}
	}
	if !viaOK {
		t.Fatalf("hartford2 entries %v lack boston2", h2.EntryRegions)
	}

	subs := 0
	for _, reg := range isp.Regions {
		for _, pfx := range reg.SubscriberPrefixes {
			subs += 1 << (32 - pfx.Bits())
		}
	}
	if subs < floor {
		t.Fatalf("allocated %d subscriber addresses, floor is %d", subs, floor)
	}
}
